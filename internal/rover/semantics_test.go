package rover

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/verify"
)

// TestHeatingWindowsInScheduledOutput: in every scheduled cold
// iteration, each steering heater starts 5..50 s before st1 and each
// wheel heater 5..50 s before dr1 (Table 1 semantics).
func TestHeatingWindowsInScheduledOutput(t *testing.T) {
	for _, c := range Cases {
		p := BuildIteration(c, Cold)
		r, err := sched.Run(p, sched.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		idx := p.TaskIndex()
		st1 := r.Schedule.Start[idx["st1"]]
		dr1 := r.Schedule.Start[idx["dr1"]]
		for _, h := range []string{"sh1", "sh2"} {
			sep := st1 - r.Schedule.Start[idx[h]]
			if sep < HeatMin || sep > HeatMax {
				t.Errorf("%s: %s -> st1 separation %d outside [%d,%d]", c, h, sep, HeatMin, HeatMax)
			}
		}
		for _, h := range []string{"wh1", "wh2", "wh3"} {
			sep := dr1 - r.Schedule.Start[idx[h]]
			if sep < HeatMin || sep > HeatMax {
				t.Errorf("%s: %s -> dr1 separation %d outside [%d,%d]", c, h, sep, HeatMin, HeatMax)
			}
		}
	}
}

// TestMechanicalChainOrder: hazard -> steer -> drive -> next hazard
// with the Table 1 minimum separations, in scheduler output.
func TestMechanicalChainOrder(t *testing.T) {
	p := BuildIteration(Typical, Cold)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := p.TaskIndex()
	at := func(name string) model.Time { return r.Schedule.Start[idx[name]] }
	checks := []struct {
		from, to string
		min      model.Time
	}{
		{"hz1", "st1", HazardSep},
		{"st1", "dr1", SteerSep},
		{"dr1", "hz2", DriveSep},
		{"hz2", "st2", HazardSep},
		{"st2", "dr2", SteerSep},
	}
	for _, c := range checks {
		if at(c.to)-at(c.from) < c.min {
			t.Errorf("%s -> %s separation %d < %d", c.from, c.to, at(c.to)-at(c.from), c.min)
		}
	}
}

// TestPreheatWindowCoversNextIteration: in a scheduled warm iteration
// repeated back-to-back, the pre-heat tasks heat within HeatMax of the
// next iteration's first steering/driving.
func TestPreheatWindowCoversNextIteration(t *testing.T) {
	p := BuildIteration(Best, Warm)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := p.TaskIndex()
	tau := r.Finish()
	// Back-to-back repetition: next hz1 starts at dr2.start+DriveSep;
	// next st1 at +HazardSep more; next dr1 at +SteerSep more.
	nextSt1 := r.Schedule.Start[idx["dr2"]] + DriveSep + HazardSep
	nextDr1 := nextSt1 + SteerSep
	if sep := nextSt1 - r.Schedule.Start[idx["psh"]]; sep < HeatMin || sep > HeatMax {
		t.Errorf("psh -> next st1 separation %d outside [%d,%d]", sep, HeatMin, HeatMax)
	}
	if sep := nextDr1 - r.Schedule.Start[idx["pwh"]]; sep < HeatMin || sep > HeatMax {
		t.Errorf("pwh -> next dr1 separation %d outside [%d,%d]", sep, HeatMin, HeatMax)
	}
	// Pre-heats finish within the iteration.
	for _, h := range []string{"psh", "pwh"} {
		if end := r.Schedule.Start[idx[h]] + HeatDelay; end > tau {
			t.Errorf("%s finishes at %d, after the iteration end %d", h, end, tau)
		}
	}
}

func TestHeaterResources(t *testing.T) {
	p := BuildIteration(Best, Cold)
	heaters := map[string]string{}
	for _, task := range p.Tasks {
		if strings.HasPrefix(task.Resource, "H") {
			if prev, dup := heaters[task.Resource]; dup {
				t.Errorf("heater %s shared by %s and %s within one iteration",
					task.Resource, prev, task.Name)
			}
			heaters[task.Resource] = task.Name
		}
	}
	if len(heaters) != 5 {
		t.Fatalf("heaters used = %d, want 5", len(heaters))
	}
	if HeaterResource(3) != "H3" {
		t.Fatalf("HeaterResource(3) = %q", HeaterResource(3))
	}
}

func TestColdPreheatSharesHeaters(t *testing.T) {
	// The pre-heat tasks reuse heaters H1 and H3, so within the
	// unrolled iteration they serialize against the cold heats.
	p := BuildIteration(Best, ColdPreheat)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Check(p, r.Schedule); !rep.OK() {
		t.Fatalf("cold+preheat invalid: %v", rep.Err())
	}
	idx := p.TaskIndex()
	// sh1 and psh share H1: no overlap (verify checks it; assert order
	// explicitly for clarity).
	sh1End := r.Schedule.Start[idx["sh1"]] + HeatDelay
	if r.Schedule.Start[idx["psh"]] < sh1End {
		t.Errorf("psh starts at %d before sh1 ends at %d on H1",
			r.Schedule.Start[idx["psh"]], sh1End)
	}
}

func TestCaseAndKindStrings(t *testing.T) {
	if Best.String() != "best" || Typical.String() != "typical" || Worst.String() != "worst" {
		t.Error("case strings wrong")
	}
	if !strings.Contains(Case(9).String(), "9") {
		t.Error("unknown case not numeric")
	}
	if Cold.String() != "cold" || ColdPreheat.String() != "cold+preheat" || Warm.String() != "warm" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(IterationKind(9).String(), "9") {
		t.Error("unknown kind not numeric")
	}
}

func TestTable2Values(t *testing.T) {
	b := Table2(Best)
	if b.Solar != 14.9 || b.CPU != 2.5 || b.Heat != 7.6 || b.Drive != 7.5 || b.Steer != 4.3 || b.Hazard != 5.1 {
		t.Fatalf("best params wrong: %+v", b)
	}
	if b.Pmax() != 24.9 || b.Pmin() != 14.9 {
		t.Fatalf("best levels wrong: Pmax=%g Pmin=%g", b.Pmax(), b.Pmin())
	}
	w := Table2(Worst)
	if w.Solar != 9 || w.Heat != 11.3 || w.Drive != 13.8 {
		t.Fatalf("worst params wrong: %+v", w)
	}
	defer func() {
		if recover() == nil {
			t.Error("Table2 of unknown case did not panic")
		}
	}()
	Table2(Case(42))
}

// TestJPLIndependentVerification runs the oracle over the baseline.
func TestJPLIndependentVerification(t *testing.T) {
	for _, c := range Cases {
		p, s := JPL(c)
		if rep := verify.Check(p, s); !rep.OK() {
			t.Errorf("%s: %v", c, rep.Err())
		}
	}
}
