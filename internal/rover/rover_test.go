package rover

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/schedule"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestJPLScheduleIsValid verifies the hand-crafted baseline satisfies
// every constraint of the cold iteration graph in all three cases.
func TestJPLScheduleIsValid(t *testing.T) {
	for _, c := range Cases {
		p, s := JPL(c)
		comp, err := schedule.Compile(p)
		if err != nil {
			t.Fatalf("%s: compile: %v", c, err)
		}
		if err := schedule.CheckTimeValid(comp.Base, comp, s); err != nil {
			t.Errorf("%s: JPL schedule invalid: %v", c, err)
		}
		m := Measure(p, s)
		if m.Peak > p.Pmax {
			t.Errorf("%s: JPL peak %.3g exceeds Pmax %.3g", c, m.Peak, p.Pmax)
		}
		if m.Finish != JPLIterationSeconds {
			t.Errorf("%s: JPL finish = %d, want %d", c, m.Finish, JPLIterationSeconds)
		}
	}
}

// TestJPLTable3 checks the JPL column of Table 3 exactly: the paper's
// published energy costs and utilizations follow from the Table 2 power
// figures and the serialized 75 s schedule.
func TestJPLTable3(t *testing.T) {
	want := map[Case]struct {
		cost float64
		util float64
	}{
		Best:    {cost: 0, util: 0.60},
		Typical: {cost: 55, util: 0.91},
		Worst:   {cost: 388, util: 1.00},
	}
	for _, c := range Cases {
		p, s := JPL(c)
		m := Measure(p, s)
		w := want[c]
		if !approx(m.EnergyCost, w.cost, 0.5) {
			t.Errorf("%s: JPL energy cost = %.2f J, want %.1f J (Table 3)", c, m.EnergyCost, w.cost)
		}
		if !approx(m.Utilization, w.util, 0.005) {
			t.Errorf("%s: JPL utilization = %.4f, want %.2f (Table 3)", c, m.Utilization, w.util)
		}
	}
}

// TestWorstCaseEnergyBreakdown pins the individual contributions that
// sum to the 388 J worst-case cost, catching any drift in Table 2 data.
func TestWorstCaseEnergyBreakdown(t *testing.T) {
	par := Table2(Worst)
	heat := (par.Heat + par.CPU - par.Solar) * HeatDelay * 5
	hz := (par.Hazard + par.CPU - par.Solar) * HazardDelay * 2
	st := (par.Steer + par.CPU - par.Solar) * SteerDelay * 2
	dr := (par.Drive + par.CPU - par.Solar) * DriveDelay * 2
	if total := heat + hz + st + dr; !approx(total, 388, 1e-9) {
		t.Fatalf("analytic worst-case cost = %.4f, want 388", total)
	}
}

func TestBuildIterationValidates(t *testing.T) {
	for _, c := range Cases {
		for _, k := range []IterationKind{Cold, ColdPreheat, Warm} {
			p := BuildIteration(c, k)
			if err := p.Validate(); err != nil {
				t.Errorf("%s/%s: %v", c, k, err)
			}
		}
	}
}

func TestIterationTaskCounts(t *testing.T) {
	counts := map[IterationKind]int{
		Cold:        6 + 5, // mechanical chain + five heaters
		ColdPreheat: 6 + 5 + 2,
		Warm:        6 + 2,
	}
	for k, want := range counts {
		if got := len(BuildIteration(Best, k).Tasks); got != want {
			t.Errorf("%s: %d tasks, want %d", k, got, want)
		}
	}
}

// TestPowerAwareBestCase: the scheduler should exploit the 24.9 W
// budget to overlap heating with the mechanical chain, finishing a cold
// iteration in the 50 s critical path (Table 3: 50 s vs JPL's 75 s).
func TestPowerAwareBestCase(t *testing.T) {
	p := BuildIteration(Best, Cold)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Finish(); got != 50 {
		t.Errorf("best-case finish = %d s, want 50 s", got)
	}
	if r.Peak() > p.Pmax {
		t.Errorf("peak %.3g exceeds Pmax %.3g", r.Peak(), p.Pmax)
	}
}

// TestPowerAwareWorstCase: with only 19 W no operations can overlap, so
// the power-aware schedule degenerates to the serialized baseline:
// 75 s and 388 J, identical to JPL (the paper's key "subsumes
// low-power" claim).
func TestPowerAwareWorstCase(t *testing.T) {
	p := BuildIteration(Worst, Cold)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Finish(); got != 75 {
		t.Errorf("worst-case finish = %d s, want 75 s", got)
	}
	if !approx(r.EnergyCost(), 388, 0.5) {
		t.Errorf("worst-case energy cost = %.2f J, want 388 J", r.EnergyCost())
	}
	if r.Peak() > p.Pmax {
		t.Errorf("peak %.3g exceeds Pmax %.3g", r.Peak(), p.Pmax)
	}
}

// TestPowerAwareTypicalCase: partial overlap; the paper reports 60 s.
// The exact finish depends on heuristic details, so accept the paper's
// value with one heating-slot granularity of tolerance, and require a
// strict improvement over the 75 s baseline.
func TestPowerAwareTypicalCase(t *testing.T) {
	p := BuildIteration(Typical, Cold)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Finish()
	if got < 50 || got > 65 {
		t.Errorf("typical-case finish = %d s, want ~60 s (paper)", got)
	}
	if got >= 75 {
		t.Errorf("typical-case finish %d s is not better than the 75 s baseline", got)
	}
	if r.Peak() > p.Pmax {
		t.Errorf("peak %.3g exceeds Pmax %.3g", r.Peak(), p.Pmax)
	}
}

// TestWarmIterationCheap: with motors pre-heated, the repeating
// best-case iteration draws almost nothing from the battery (paper:
// 6 J for the 2nd iteration).
func TestWarmIterationCheap(t *testing.T) {
	p := BuildIteration(Best, Warm)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Finish(); got != 50 {
		t.Errorf("warm best-case finish = %d s, want 50 s", got)
	}
	if cost := r.EnergyCost(); cost > 15 {
		t.Errorf("warm best-case energy cost = %.2f J, want <= ~6 J ballpark", cost)
	}
}

// TestPowerAwareBeatsJPLUtilization: in every case the power-aware
// schedule should use at least as much of the free solar energy as the
// hand-crafted baseline (Table 3's utilization column).
func TestPowerAwareBeatsJPLUtilization(t *testing.T) {
	for _, c := range Cases {
		pJPL, sJPL := JPL(c)
		mJPL := Measure(pJPL, sJPL)

		p := BuildIteration(c, Cold)
		r, err := sched.Run(p, sched.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		m := Measure(p, r.Schedule)
		if m.Utilization+1e-9 < mJPL.Utilization {
			t.Errorf("%s: power-aware utilization %.4f < JPL %.4f", c, m.Utilization, mJPL.Utilization)
		}
		if m.Finish > mJPL.Finish {
			t.Errorf("%s: power-aware finish %d s worse than JPL %d s", c, m.Finish, mJPL.Finish)
		}
	}
}
