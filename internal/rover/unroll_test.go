package rover

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/verify"
)

func TestBuildUnrolledValidates(t *testing.T) {
	for _, c := range Cases {
		for _, k := range []int{1, 2, 4} {
			for _, pre := range []bool{false, true} {
				p := BuildUnrolled(c, k, pre)
				if err := p.Validate(); err != nil {
					t.Errorf("%s x%d preheat=%v: %v", c, k, pre, err)
				}
			}
		}
	}
}

func TestBuildUnrolledTaskCounts(t *testing.T) {
	// 2 iterations with preheat: iter1 = 6 mech + 5 heat + 2 preheat,
	// iter2 = 6 mech.
	if got := len(BuildUnrolled(Best, 2, true).Tasks); got != 19 {
		t.Errorf("2-iter preheat tasks = %d, want 19", got)
	}
	// Without preheat both iterations heat cold: 2*(6+5).
	if got := len(BuildUnrolled(Best, 2, false).Tasks); got != 22 {
		t.Errorf("2-iter cold tasks = %d, want 22", got)
	}
	if got := len(BuildUnrolled(Best, 1, true).Tasks); got != 11 {
		t.Errorf("1-iter tasks = %d, want 11 (no preheat on the final iteration)", got)
	}
}

func TestBuildUnrolledPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	BuildUnrolled(Best, 0, true)
}

// TestFig9TwoIterations reproduces Fig. 9: the first two best-case
// iterations with the inserted pre-heat tasks run in 100 s (50 s each),
// the second far cheaper than the first because its motors were warmed
// with free solar power during the first.
func TestFig9TwoIterations(t *testing.T) {
	p := BuildUnrolled(Best, 2, true)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Check(p, r.Schedule); !rep.OK() {
		t.Fatalf("invalid: %v", rep.Err())
	}
	if got := r.Finish(); got != 100 {
		t.Errorf("two-iteration finish = %d s, want 100 s (2 x 50)", got)
	}
	// Total battery cost close to the paper's 79.5 + 6 = 85.5 J.
	if cost := r.EnergyCost(); cost > 100 {
		t.Errorf("total cost = %.1f J, want <= ~85.5 J ballpark", cost)
	}
	// Cost attribution: almost everything is spent in the first 50 s.
	firstHalf, secondHalf := splitCost(r, 50)
	if secondHalf > firstHalf {
		t.Errorf("second iteration (%.1f J) costs more than the first (%.1f J)", secondHalf, firstHalf)
	}
	if secondHalf > 20 {
		t.Errorf("second iteration cost = %.1f J, want small (paper: 6 J)", secondHalf)
	}
}

// splitCost integrates the over-Pmin energy before and after a split
// point.
func splitCost(r *sched.Result, split int) (before, after float64) {
	pmin := r.Compiled.Prob.Pmin
	for _, seg := range r.Profile.Segs {
		if seg.P <= pmin {
			continue
		}
		over := seg.P - pmin
		for t := seg.T0; t < seg.T1; t++ {
			if t < split {
				before += over
			} else {
				after += over
			}
		}
	}
	return before, after
}

// TestUnrolledPreheatBeatsCold: over two best-case iterations, the
// pre-heat unrolling must cost less battery energy than re-heating
// cold, at equal or better performance — the entire point of the
// paper's manual unroll.
func TestUnrolledPreheatBeatsCold(t *testing.T) {
	pre := BuildUnrolled(Best, 2, true)
	rPre, err := sched.Run(pre, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold := BuildUnrolled(Best, 2, false)
	rCold, err := sched.Run(cold, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rPre.Finish() > rCold.Finish() {
		t.Errorf("preheat finish %d > cold finish %d", rPre.Finish(), rCold.Finish())
	}
	if rPre.EnergyCost() >= rCold.EnergyCost() {
		t.Errorf("preheat cost %.1f >= cold cost %.1f", rPre.EnergyCost(), rCold.EnergyCost())
	}
}

// TestUnrolledWorstCaseChains: in the worst case the unrolled schedule
// is simply the serial iteration repeated: 150 s for two iterations.
func TestUnrolledWorstCaseChains(t *testing.T) {
	p := BuildUnrolled(Worst, 2, false)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Finish(); got != 150 {
		t.Errorf("worst 2-iteration finish = %d s, want 150 s", got)
	}
	if r.Peak() > p.Pmax {
		t.Errorf("peak %.1f over budget", r.Peak())
	}
}
