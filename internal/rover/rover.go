// Package rover models the NASA/JPL Mars Pathfinder rover case study of
// the paper (section 3 and Fig. 8): the mechanical and thermal
// subsystems, their timing constraints (Table 1), the power sources and
// consumers in the three environmental cases (Table 2), and the
// hand-crafted fully-serialized JPL baseline schedule the paper compares
// against (section 6).
//
// One schedule iteration moves the rover two steps (14 cm). The
// constraint graph of an iteration contains, per step, a hazard
// detection (laser, 10 s), a steering operation (4 steering motors as
// one resource, 5 s), and a driving operation (6 wheel motors as one
// resource, 10 s), chained hazard -> steer -> drive -> next hazard.
// Heating uses five independent heaters, each warming two motors per
// 5 s task: two heaters for the four steering motors, three for the six
// wheel motors. Heating must occur at least 5 s and at most 50 s before
// the operation it enables. The CPU is a constant load for the whole
// schedule.
//
// Reconstruction note: the paper's Fig. 8 is available only as an
// image; the edge set here is reconstructed from Table 1 with heating
// windows bound to the first use of the heated motors in the iteration
// (the second use follows within the staleness window by construction,
// exactly as in the JPL baseline schedule, whose energy figures this
// model reproduces to the joule).
package rover

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/schedule"
)

// Case selects the environmental condition of Table 2, which sets both
// the solar output and the temperature-dependent task powers.
type Case int

const (
	// Best is full sun at noon, -40 C: 14.9 W solar.
	Best Case = iota
	// Typical is -60 C: 12 W solar.
	Typical
	// Worst is dusk, -80 C: 9 W solar.
	Worst
)

func (c Case) String() string {
	switch c {
	case Best:
		return "best"
	case Typical:
		return "typical"
	case Worst:
		return "worst"
	}
	return fmt.Sprintf("Case(%d)", int(c))
}

// Cases lists all three environmental cases in Table 2 order.
var Cases = []Case{Best, Typical, Worst}

// Params are the Table 2 power figures for one case, in watts.
type Params struct {
	Solar      float64 // solar panel output (free power)
	BatteryMax float64 // battery pack maximum output
	CPU        float64 // constant CPU load
	Heat       float64 // heating two motors (one heater task)
	Drive      float64 // driving the six wheel motors
	Steer      float64 // steering the four steering motors
	Hazard     float64 // laser-guided hazard detection
}

// Table2 returns the power parameters of the given case.
func Table2(c Case) Params {
	switch c {
	case Best:
		return Params{Solar: 14.9, BatteryMax: 10, CPU: 2.5, Heat: 7.6, Drive: 7.5, Steer: 4.3, Hazard: 5.1}
	case Typical:
		return Params{Solar: 12, BatteryMax: 10, CPU: 3.1, Heat: 9.5, Drive: 10.9, Steer: 6.2, Hazard: 6.1}
	case Worst:
		return Params{Solar: 9, BatteryMax: 10, CPU: 3.7, Heat: 11.3, Drive: 13.8, Steer: 8.1, Hazard: 7.3}
	default:
		panic(fmt.Sprintf("rover: unknown case %d", int(c)))
	}
}

// Pmax returns the hard power budget of the case: solar plus battery.
func (p Params) Pmax() float64 { return p.Solar + p.BatteryMax }

// Pmin returns the free power level of the case: the solar output.
func (p Params) Pmin() float64 { return p.Solar }

// Timing constants of Table 1, in seconds.
const (
	HazardDelay = 10 // hazard detection duration
	SteerDelay  = 5  // steering duration
	DriveDelay  = 10 // driving duration
	HeatDelay   = 5  // one heating task duration
	HeatMin     = 5  // heating at least this long before the operation
	HeatMax     = 50 // heating at most this long before the operation
	HazardSep   = 10 // hazard detection at least 10 s before steering
	SteerSep    = 5  // steering at least 5 s before driving
	DriveSep    = 10 // driving at least 10 s before next hazard detection
)

// StepsPerIteration is how many 7 cm steps one schedule iteration moves.
const StepsPerIteration = 2

// IterationKind selects which variant of the iteration graph to build.
type IterationKind int

const (
	// Cold is the plain iteration: all five heaters must fire before
	// the motors they warm are first used. This is the Fig. 8 graph.
	Cold IterationKind = iota
	// ColdPreheat is Cold plus the paper's two manually inserted
	// heating tasks that pre-warm the motors for the *next* iteration
	// ("we manually unroll the loop and insert two heating tasks"),
	// used for the first best-case iteration of Fig. 9.
	ColdPreheat
	// Warm assumes the previous iteration pre-heated the motors: no
	// own-use heating, but the iteration re-inserts the two pre-heat
	// tasks for its successor. This is the repeating best-case
	// iteration whose energy cost the paper reports as the "2nd" row
	// of Table 3.
	Warm
)

func (k IterationKind) String() string {
	switch k {
	case Cold:
		return "cold"
	case ColdPreheat:
		return "cold+preheat"
	case Warm:
		return "warm"
	}
	return fmt.Sprintf("IterationKind(%d)", int(k))
}

// Resource names of the rover model.
const (
	ResLaser  = "laser"
	ResSteer  = "steer"
	ResWheels = "wheels"
)

// HeaterResource returns the resource name of heater i in [1,5].
// Heaters 1-2 warm the steering motors, heaters 3-5 the wheel motors.
func HeaterResource(i int) string { return fmt.Sprintf("H%d", i) }

// BuildIteration constructs the constraint-graph problem for one
// iteration (two steps) of the given case and kind. The returned
// problem carries the case's Pmax/Pmin and CPU base power.
func BuildIteration(c Case, kind IterationKind) *model.Problem {
	par := Table2(c)
	p := &model.Problem{
		Name:      fmt.Sprintf("rover-%s-%s", c, kind),
		Pmax:      par.Pmax(),
		Pmin:      par.Pmin(),
		BasePower: par.CPU,
	}

	// Mechanical chain for both steps.
	for step := 1; step <= StepsPerIteration; step++ {
		p.AddTask(model.Task{Name: fmt.Sprintf("hz%d", step), Resource: ResLaser, Delay: HazardDelay, Power: par.Hazard})
		p.AddTask(model.Task{Name: fmt.Sprintf("st%d", step), Resource: ResSteer, Delay: SteerDelay, Power: par.Steer})
		p.AddTask(model.Task{Name: fmt.Sprintf("dr%d", step), Resource: ResWheels, Delay: DriveDelay, Power: par.Drive})
		p.MinSep(fmt.Sprintf("hz%d", step), fmt.Sprintf("st%d", step), HazardSep)
		p.MinSep(fmt.Sprintf("st%d", step), fmt.Sprintf("dr%d", step), SteerSep)
		if step > 1 {
			p.MinSep(fmt.Sprintf("dr%d", step-1), fmt.Sprintf("hz%d", step), DriveSep)
		}
	}

	// Own-use heating: required before the first steering and first
	// driving of a cold iteration.
	if kind == Cold || kind == ColdPreheat {
		for i := 1; i <= 2; i++ {
			name := fmt.Sprintf("sh%d", i)
			p.AddTask(model.Task{Name: name, Resource: HeaterResource(i), Delay: HeatDelay, Power: par.Heat})
			p.Window(name, "st1", HeatMin, HeatMax)
		}
		for i := 1; i <= 3; i++ {
			name := fmt.Sprintf("wh%d", i)
			p.AddTask(model.Task{Name: name, Resource: HeaterResource(2 + i), Delay: HeatDelay, Power: par.Heat})
			p.Window(name, "dr1", HeatMin, HeatMax)
		}
	}

	// Pre-heat tasks for the next iteration. The next iteration's
	// first steering starts DriveSep+HazardSep = 20 s after dr2 starts
	// (back-to-back iterations), and its first driving 25 s after, so
	// the staleness window HeatMax translates to lower bounds relative
	// to dr2; both pre-heats must also finish by the iteration's end
	// (dr2's completion).
	if kind == ColdPreheat || kind == Warm {
		p.AddTask(model.Task{Name: "psh", Resource: HeaterResource(1), Delay: HeatDelay, Power: par.Heat})
		p.Window("dr2", "psh", (DriveSep+HazardSep)-HeatMax, DriveDelay-HeatDelay)
		p.AddTask(model.Task{Name: "pwh", Resource: HeaterResource(3), Delay: HeatDelay, Power: par.Heat})
		p.Window("dr2", "pwh", (DriveSep+HazardSep+SteerSep)-HeatMax, DriveDelay-HeatDelay)
	}
	return p
}

// JPL returns the paper's baseline: the cold-iteration problem together
// with the hand-crafted, fully serialized, case-independent schedule
// used in past missions (75 s per iteration regardless of available
// solar power). Wheel heaters run first so that every heating task
// stays within the 50 s staleness window of the operations it warms.
func JPL(c Case) (*model.Problem, schedule.Schedule) {
	p := BuildIteration(c, Cold)
	starts := map[string]model.Time{
		"wh1": 0, "wh2": 5, "wh3": 10,
		"sh1": 15, "sh2": 20,
		"hz1": 25, "st1": 35, "dr1": 40,
		"hz2": 50, "st2": 60, "dr2": 65,
	}
	s := schedule.Schedule{Start: make([]model.Time, len(p.Tasks))}
	for i, t := range p.Tasks {
		st, ok := starts[t.Name]
		if !ok {
			panic(fmt.Sprintf("rover: JPL schedule missing task %q", t.Name))
		}
		s.Start[i] = st
	}
	return p, s
}

// JPLIterationSeconds is the fixed duration of one JPL iteration.
const JPLIterationSeconds = 75
