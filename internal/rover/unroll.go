package rover

import (
	"fmt"

	"repro/internal/model"
)

// BuildUnrolled constructs one constraint graph covering `iterations`
// consecutive iterations of the rover loop, as in the paper's Fig. 9
// ("Fig. 9 gives first two iterations in the best case. To utilize the
// available free energy, we manually unroll the loop and insert two
// heating tasks...").
//
// Iteration 1 is cold: all five heaters fire before the motors' first
// use. When preheat is true, every non-final iteration additionally
// carries the two inserted heating tasks (psh/pwh on heaters H1/H3)
// whose staleness windows bind directly to the *next* iteration's first
// steering and driving, so later iterations run warm. Task names carry
// an iteration suffix: hz1#2 is the first hazard detection of the
// second iteration.
func BuildUnrolled(c Case, iterations int, preheat bool) *model.Problem {
	if iterations < 1 {
		panic(fmt.Sprintf("rover: BuildUnrolled with %d iterations", iterations))
	}
	par := Table2(c)
	p := &model.Problem{
		Name:      fmt.Sprintf("rover-%s-unrolled-%d", c, iterations),
		Pmax:      par.Pmax(),
		Pmin:      par.Pmin(),
		BasePower: par.CPU,
	}
	name := func(base string, iter int) string { return fmt.Sprintf("%s#%d", base, iter) }

	for iter := 1; iter <= iterations; iter++ {
		for step := 1; step <= StepsPerIteration; step++ {
			hz := name(fmt.Sprintf("hz%d", step), iter)
			st := name(fmt.Sprintf("st%d", step), iter)
			dr := name(fmt.Sprintf("dr%d", step), iter)
			p.AddTask(model.Task{Name: hz, Resource: ResLaser, Delay: HazardDelay, Power: par.Hazard})
			p.AddTask(model.Task{Name: st, Resource: ResSteer, Delay: SteerDelay, Power: par.Steer})
			p.AddTask(model.Task{Name: dr, Resource: ResWheels, Delay: DriveDelay, Power: par.Drive})
			p.MinSep(hz, st, HazardSep)
			p.MinSep(st, dr, SteerSep)
			if step > 1 {
				p.MinSep(name(fmt.Sprintf("dr%d", step-1), iter), hz, DriveSep)
			}
		}
		if iter > 1 {
			p.MinSep(name("dr2", iter-1), name("hz1", iter), DriveSep)
		}

		if iter == 1 {
			// Cold start: full heating before first use.
			for i := 1; i <= 2; i++ {
				h := name(fmt.Sprintf("sh%d", i), iter)
				p.AddTask(model.Task{Name: h, Resource: HeaterResource(i), Delay: HeatDelay, Power: par.Heat})
				p.Window(h, name("st1", iter), HeatMin, HeatMax)
			}
			for i := 1; i <= 3; i++ {
				h := name(fmt.Sprintf("wh%d", i), iter)
				p.AddTask(model.Task{Name: h, Resource: HeaterResource(2 + i), Delay: HeatDelay, Power: par.Heat})
				p.Window(h, name("dr1", iter), HeatMin, HeatMax)
			}
		} else if !preheat {
			// No pre-heating: every iteration re-heats cold.
			for i := 1; i <= 2; i++ {
				h := name(fmt.Sprintf("sh%d", i), iter)
				p.AddTask(model.Task{Name: h, Resource: HeaterResource(i), Delay: HeatDelay, Power: par.Heat})
				p.Window(h, name("st1", iter), HeatMin, HeatMax)
			}
			for i := 1; i <= 3; i++ {
				h := name(fmt.Sprintf("wh%d", i), iter)
				p.AddTask(model.Task{Name: h, Resource: HeaterResource(2 + i), Delay: HeatDelay, Power: par.Heat})
				p.Window(h, name("dr1", iter), HeatMin, HeatMax)
			}
		}

		// The two inserted heating tasks, warming the next iteration.
		if preheat && iter < iterations {
			psh := name("psh", iter)
			p.AddTask(model.Task{Name: psh, Resource: HeaterResource(1), Delay: HeatDelay, Power: par.Heat})
			p.Window(psh, name("st1", iter+1), HeatMin, HeatMax)
			pwh := name("pwh", iter)
			p.AddTask(model.Task{Name: pwh, Resource: HeaterResource(3), Delay: HeatDelay, Power: par.Heat})
			p.Window(pwh, name("dr1", iter+1), HeatMin, HeatMax)
		}
	}
	return p
}
