package rover

import (
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

// Metrics are the evaluation quantities of the paper's Table 3 for one
// schedule of one iteration.
type Metrics struct {
	// Finish is the schedule finish time tau in seconds.
	Finish model.Time
	// EnergyCost is Ec_sigma(Pmin) in joules: energy drawn from the
	// non-rechargeable battery.
	EnergyCost float64
	// Utilization is rho_sigma(Pmin): the fraction of available free
	// (solar) energy actually used.
	Utilization float64
	// Peak is the maximum of the power profile in watts.
	Peak float64
	// Energy is the total energy of the schedule in joules, including
	// the CPU base load.
	Energy float64
}

// Measure computes the metrics of schedule s for problem p using the
// problem's Pmin and base power.
func Measure(p *model.Problem, s schedule.Schedule) Metrics {
	prof := power.Build(p.Tasks, s, p.BasePower)
	return Metrics{
		Finish:      s.Finish(p.Tasks),
		EnergyCost:  prof.EnergyCost(p.Pmin),
		Utilization: prof.Utilization(p.Pmin),
		Peak:        prof.Peak(),
		Energy:      prof.Energy(),
	}
}
