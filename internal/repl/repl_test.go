package repl

import (
	"strings"
	"testing"

	"repro/internal/editor"
	"repro/internal/paperex"
	"repro/internal/sched"
)

// run feeds a script to a fresh session and returns the output.
func run(t *testing.T, script string) string {
	t.Helper()
	s, err := editor.New(paperex.Nine(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	r := &REPL{S: s, In: strings.NewReader(script), Out: &out}
	if err := r.Run(); err != nil {
		t.Fatalf("repl: %v", err)
	}
	return out.String()
}

func TestShowAndMetrics(t *testing.T) {
	out := run(t, "show\nmetrics\nquit\n")
	for _, want := range []string{"power view:", "finish=12 s", "utilization="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTasksListing(t *testing.T) {
	out := run(t, "lock h\ntasks\nquit\n")
	if !strings.Contains(out, "* h") {
		t.Errorf("locked task not starred:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "[") {
		t.Errorf("task rows malformed:\n%s", out)
	}
}

func TestMoveAndUndo(t *testing.T) {
	out := run(t, "drag d 7\nundo\nredo\nquit\n")
	for _, want := range []string{"d now starts at 7", "undone", "redone"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestErrorsAreReportedNotFatal(t *testing.T) {
	out := run(t, "move nosuch 3\nmove d -1\nbogus\nundo\nmetrics\nquit\n")
	if strings.Count(out, "error:") < 3 {
		t.Errorf("expected several error lines:\n%s", out)
	}
	// The loop survived to execute metrics.
	if !strings.Contains(out, "finish=") {
		t.Errorf("loop did not continue after errors:\n%s", out)
	}
}

func TestLockRescheduleFlow(t *testing.T) {
	out := run(t, "lock h\nreschedule\nunlock h\ngaps\nquit\n")
	for _, want := range []string{"locked h", "rescheduled", "unlocked h", "gaps:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	out := run(t, "# a comment\n\nmetrics\nquit\n")
	if strings.Contains(out, "error") {
		t.Errorf("comments mishandled:\n%s", out)
	}
}

func TestEOFEndsSession(t *testing.T) {
	out := run(t, "metrics\n") // no quit: EOF ends it
	if !strings.Contains(out, "finish=") {
		t.Errorf("command before EOF not executed:\n%s", out)
	}
}

func TestHelpAndPrompt(t *testing.T) {
	s, err := editor.New(paperex.Nine(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	r := &REPL{S: s, In: strings.NewReader("help\nquit\n"), Out: &out, Prompt: "> "}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "commands:") {
		t.Error("help text missing")
	}
	if !strings.Contains(out.String(), "> ") {
		t.Error("prompt missing")
	}
}
