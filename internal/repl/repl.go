// Package repl is a line-oriented interactive front-end to the
// schedule editor: the terminal counterpart of the paper's power-aware
// Gantt chart tool. It reads commands from any reader (a terminal, a
// script, a test) and writes renderings and diagnostics to any writer.
//
// Commands:
//
//	show                 render the power-aware Gantt chart
//	metrics              print finish/cost/utilization
//	tasks                list tasks with starts, slacks and locks
//	move <task> <t>      drag a task to start t (validated)
//	drag <task> <t>      move with automatic repair of the rest
//	lock <task>          pin a task at its slot
//	unlock <task>        release a task
//	reschedule           re-run the pipeline around the locks
//	undo / redo          step through the edit history
//	gaps                 list min-power gaps
//	help                 this list
//	quit                 leave the session
package repl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/editor"
	"repro/internal/model"
)

// REPL couples an editor session with an input/output stream.
type REPL struct {
	S   *editor.Session
	In  io.Reader
	Out io.Writer
	// Prompt is printed before each command read ("" disables it,
	// which scripts and tests usually want).
	Prompt string
}

// Run processes commands until quit or EOF. Command errors are printed
// and do not stop the loop; only I/O errors are returned.
func (r *REPL) Run() error {
	sc := bufio.NewScanner(r.In)
	for {
		if r.Prompt != "" {
			fmt.Fprint(r.Out, r.Prompt)
		}
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := r.exec(line); err != nil {
			fmt.Fprintf(r.Out, "error: %v\n", err)
		}
	}
}

func (r *REPL) exec(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		fmt.Fprint(r.Out, helpText)
	case "show":
		fmt.Fprint(r.Out, r.S.Chart().ASCII(1))
	case "metrics":
		m := r.S.Metrics()
		fmt.Fprintf(r.Out, "finish=%d s  peak=%.4g W  cost=%.4g J  utilization=%.1f%%\n",
			m.Finish, m.Peak, m.EnergyCost, 100*m.Utilization)
	case "tasks":
		r.listTasks()
	case "gaps":
		fmt.Fprintf(r.Out, "gaps: %v\n", r.S.Gaps())
	case "move", "drag":
		task, at, err := taskTime(fields)
		if err != nil {
			return err
		}
		if fields[0] == "move" {
			err = r.S.Move(task, at)
		} else {
			err = r.S.MoveAndReschedule(task, at)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "%s now starts at %d\n", task, at)
	case "lock":
		if len(fields) != 2 {
			return fmt.Errorf("lock wants <task>")
		}
		if err := r.S.Lock(fields[1]); err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "locked %s\n", fields[1])
	case "unlock":
		if len(fields) != 2 {
			return fmt.Errorf("unlock wants <task>")
		}
		if err := r.S.Unlock(fields[1]); err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "unlocked %s\n", fields[1])
	case "reschedule":
		if err := r.S.Reschedule(); err != nil {
			return err
		}
		fmt.Fprintln(r.Out, "rescheduled")
	case "undo":
		if !r.S.Undo() {
			return fmt.Errorf("nothing to undo")
		}
		fmt.Fprintln(r.Out, "undone")
	case "redo":
		if !r.S.Redo() {
			return fmt.Errorf("nothing to redo")
		}
		fmt.Fprintln(r.Out, "redone")
	default:
		return fmt.Errorf("unknown command %q (try help)", fields[0])
	}
	return nil
}

func taskTime(fields []string) (string, model.Time, error) {
	if len(fields) != 3 {
		return "", 0, fmt.Errorf("%s wants <task> <time>", fields[0])
	}
	at, err := strconv.Atoi(fields[2])
	if err != nil {
		return "", 0, fmt.Errorf("bad time %q", fields[2])
	}
	return fields[1], at, nil
}

func (r *REPL) listTasks() {
	p := r.S.Problem()
	s := r.S.Schedule()
	locked := map[string]bool{}
	for _, n := range r.S.Locked() {
		locked[n] = true
	}
	idxs := make([]int, len(p.Tasks))
	for i := range idxs {
		idxs[i] = i
	}
	sort.Slice(idxs, func(a, b int) bool { return s.Start[idxs[a]] < s.Start[idxs[b]] })
	for _, i := range idxs {
		t := p.Tasks[i]
		mark := " "
		if locked[t.Name] {
			mark = "*"
		}
		fmt.Fprintf(r.Out, "%s %-10s %-10s [%3d,%3d)  %.4g W\n",
			mark, t.Name, t.Resource, s.Start[i], s.Start[i]+t.Delay, t.Power)
	}
}

const helpText = `commands:
  show | metrics | tasks | gaps
  move <task> <t>    drag a bin (strictly validated)
  drag <task> <t>    drag with automatic repair
  lock <task> | unlock <task> | reschedule
  undo | redo | quit
`
