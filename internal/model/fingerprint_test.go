package model

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// genFingerprintProblem builds a small deterministic-random problem;
// shared by the table tests and FuzzFingerprint.
func genFingerprintProblem(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(5)
	p := &Problem{
		Name:      fmt.Sprintf("fp-%d", seed),
		Pmax:      10 + rng.Float64()*10,
		Pmin:      rng.Float64() * 10,
		BasePower: rng.Float64() * 3,
	}
	for i := 0; i < n; i++ {
		p.AddTask(Task{
			Name:     fmt.Sprintf("t%d", i),
			Resource: fmt.Sprintf("R%d", rng.Intn(3)),
			Delay:    1 + rng.Intn(9),
			Power:    rng.Float64() * 8,
		})
	}
	for i := 1; i < n; i++ {
		if rng.Float64() < 0.6 {
			from, to := p.Tasks[rng.Intn(i)].Name, p.Tasks[i].Name
			if rng.Float64() < 0.3 {
				p.Window(from, to, rng.Intn(5), 5+rng.Intn(50))
			} else {
				p.MinSep(from, to, rng.Intn(10))
			}
		}
	}
	return p
}

// genHeteroFingerprintProblem extends the generator with the machine
// and DVS dimensions, so the hetero section of the digest is exercised.
func genHeteroFingerprintProblem(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := genFingerprintProblem(seed)
	m := 1 + rng.Intn(3)
	for j := 0; j < m; j++ {
		p.Machines = append(p.Machines, Machine{
			Name:       fmt.Sprintf("m%d", j),
			Speed:      1 + rng.Float64(),
			PowerScale: 0.5 + rng.Float64(),
		})
	}
	for i := range p.Tasks {
		if rng.Float64() < 0.5 {
			p.Tasks[i].Levels = []DVSLevel{
				{Mult: 1, Power: p.Tasks[i].Power},
				{Mult: 1 + rng.Float64(), Power: rng.Float64() * 5},
			}
		}
		if rng.Float64() < 0.3 {
			p.Tasks[i].Machine = p.Machines[rng.Intn(m)].Name
		}
	}
	return p
}

func TestFingerprintStableAcrossClones(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := genFingerprintProblem(seed)
		if got, want := p.Clone().Fingerprint(), p.Fingerprint(); got != want {
			t.Fatalf("seed %d: clone fingerprint %s != %s", seed, got, want)
		}
	}
}

func TestFingerprintGolden(t *testing.T) {
	// Pin the encoding: a changed fingerprint silently invalidates
	// every deployed cache, so changing it must be a conscious act.
	p := &Problem{Name: "golden", Pmax: 16, Pmin: 14}
	p.AddTask(Task{Name: "a", Resource: "A", Delay: 3, Power: 6})
	p.AddTask(Task{Name: "b", Resource: "B", Delay: 4, Power: 4})
	p.MinSep("a", "b", 3)
	const want = "23c0c7585f88571a3ab55fe259f01499"
	if got := p.Fingerprint(); got != want {
		t.Errorf("Fingerprint() = %s, want %s (encoding changed?)", got, want)
	}
}

func TestFingerprintFieldSensitivity(t *testing.T) {
	base := genFingerprintProblem(7)
	mutations := map[string]func(*Problem){
		"name":              func(p *Problem) { p.Name += "x" },
		"pmax":              func(p *Problem) { p.Pmax++ },
		"pmin":              func(p *Problem) { p.Pmin++ },
		"base-power":        func(p *Problem) { p.BasePower++ },
		"task-name":         func(p *Problem) { p.Tasks[0].Name += "x" },
		"task-resource":     func(p *Problem) { p.Tasks[0].Resource += "x" },
		"task-delay":        func(p *Problem) { p.Tasks[0].Delay++ },
		"task-power":        func(p *Problem) { p.Tasks[0].Power++ },
		"task-order":        func(p *Problem) { p.Tasks[0], p.Tasks[1] = p.Tasks[1], p.Tasks[0] },
		"task-appended":     func(p *Problem) { p.AddTask(Task{Name: "zz", Resource: "Z", Delay: 1}) },
		"constraint-added":  func(p *Problem) { p.MinSep(p.Tasks[0].Name, p.Tasks[1].Name, 99) },
		"constraint-window": func(p *Problem) { p.Window(p.Tasks[1].Name, p.Tasks[0].Name, 0, 7) },
	}
	want := base.Fingerprint()
	for label, mutate := range mutations {
		q := base.Clone()
		mutate(q)
		if q.Fingerprint() == want {
			t.Errorf("%s: mutation did not change the fingerprint", label)
		}
	}
}

// TestFingerprintHeteroFieldSensitivity is the field-sensitivity table
// for the machine/DVS dimensions, run against a heterogeneous base (a
// pin or level mutation on a problem without machines never reaches a
// scheduler: Validate rejects it, so the digest ignoring it is fine).
func TestFingerprintHeteroFieldSensitivity(t *testing.T) {
	base := genHeteroFingerprintProblem(7)
	if len(base.Tasks[0].Levels) == 0 {
		base.Tasks[0].Levels = []DVSLevel{{Mult: 1, Power: base.Tasks[0].Power}}
	}
	mutations := map[string]func(*Problem){
		"machine-added":      func(p *Problem) { p.Machines = append(p.Machines, Machine{Name: "mz", Speed: 1, PowerScale: 1}) },
		"machine-removed":    func(p *Problem) { p.Machines = p.Machines[:len(p.Machines)-1] },
		"machine-name":       func(p *Problem) { p.Machines[0].Name += "x" },
		"machine-speed":      func(p *Problem) { p.Machines[0].Speed++ },
		"machine-powerscale": func(p *Problem) { p.Machines[0].PowerScale++ },
		"task-pin":           func(p *Problem) { p.Tasks[0].Machine += "x" },
		"level-added": func(p *Problem) {
			p.Tasks[0].Levels = append(p.Tasks[0].Levels, DVSLevel{Mult: 9, Power: 9})
		},
		"level-mult":  func(p *Problem) { p.Tasks[0].Levels[0].Mult++ },
		"level-power": func(p *Problem) { p.Tasks[0].Levels[0].Power++ },
	}
	want := base.Fingerprint()
	for label, mutate := range mutations {
		q := base.Clone()
		mutate(q)
		if q.Fingerprint() == want {
			t.Errorf("%s: mutation did not change the fingerprint", label)
		}
	}
}

// TestFingerprintDegenerateUnchanged pins the compatibility contract of
// the hetero section: a problem that uses neither machines nor levels
// hashes exactly as it did before the dimensions existed (the golden
// digest above), and zero-value new fields do not perturb it.
func TestFingerprintDegenerateUnchanged(t *testing.T) {
	p := genFingerprintProblem(11)
	want := p.Fingerprint()
	q := p.Clone()
	q.Machines = []Machine{}
	for i := range q.Tasks {
		q.Tasks[i].Levels = []DVSLevel{}
	}
	if q.Fingerprint() != want {
		t.Error("empty (vs nil) machine and level slices changed the digest")
	}
}

// TestFingerprintCoversAllFields walks every exported field of the
// model structs by reflection and requires a registered mutation that
// moves the digest. Unlike the hand-written tables above, this fails
// the moment someone adds a field and forgets to hash it — the digest
// is a cache key, and an unhashed field silently serves wrong cached
// schedules.
func TestFingerprintCoversAllFields(t *testing.T) {
	base := genHeteroFingerprintProblem(5)
	if len(base.Tasks[0].Levels) == 0 {
		base.Tasks[0].Levels = []DVSLevel{{Mult: 1, Power: base.Tasks[0].Power}}
	}
	mutations := map[string]func(*Problem){
		"Problem.Name":        func(p *Problem) { p.Name += "x" },
		"Problem.Tasks":       func(p *Problem) { p.AddTask(Task{Name: "zz", Resource: "Z", Delay: 1}) },
		"Problem.Constraints": func(p *Problem) { p.MinSep(p.Tasks[0].Name, p.Tasks[1].Name, 99) },
		"Problem.Pmax":        func(p *Problem) { p.Pmax++ },
		"Problem.Pmin":        func(p *Problem) { p.Pmin++ },
		"Problem.BasePower":   func(p *Problem) { p.BasePower++ },
		"Problem.Machines":    func(p *Problem) { p.Machines[0].Name += "x" },
		"Task.Name":           func(p *Problem) { p.Tasks[0].Name += "x" },
		"Task.Resource":       func(p *Problem) { p.Tasks[0].Resource += "x" },
		"Task.Delay":          func(p *Problem) { p.Tasks[0].Delay++ },
		"Task.Power":          func(p *Problem) { p.Tasks[0].Power++ },
		"Task.Levels":         func(p *Problem) { p.Tasks[0].Levels[0].Mult++ },
		"Task.Machine":        func(p *Problem) { p.Tasks[0].Machine += "x" },
		"Constraint.From":     func(p *Problem) { p.Constraints[0].From += "x" },
		"Constraint.To":       func(p *Problem) { p.Constraints[0].To += "x" },
		"Constraint.Min":      func(p *Problem) { p.Constraints[0].Min += 3 },
		"Constraint.Max":      func(p *Problem) { p.Constraints[0].Max += 3 },
		"Constraint.HasMax":   func(p *Problem) { p.Constraints[0].HasMax = !p.Constraints[0].HasMax },
		"Machine.Name":        func(p *Problem) { p.Machines[0].Name += "x" },
		"Machine.Speed":       func(p *Problem) { p.Machines[0].Speed++ },
		"Machine.PowerScale":  func(p *Problem) { p.Machines[0].PowerScale++ },
		"DVSLevel.Mult":       func(p *Problem) { p.Tasks[0].Levels[0].Mult++ },
		"DVSLevel.Power":      func(p *Problem) { p.Tasks[0].Levels[0].Power++ },
	}
	if len(base.Constraints) == 0 {
		base.MinSep(base.Tasks[0].Name, base.Tasks[1].Name, 2)
	}
	want := base.Fingerprint()
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Problem{}),
		reflect.TypeOf(Task{}),
		reflect.TypeOf(Constraint{}),
		reflect.TypeOf(Machine{}),
		reflect.TypeOf(DVSLevel{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				continue
			}
			key := typ.Name() + "." + f.Name
			mutate, ok := mutations[key]
			if !ok {
				t.Errorf("%s: no fingerprint-sensitivity mutation registered; is the new field hashed?", key)
				continue
			}
			q := base.Clone()
			mutate(q)
			if q.Fingerprint() == want {
				t.Errorf("%s: mutation did not change the fingerprint", key)
			}
		}
	}
}

// TestFingerprintSelfDelimiting guards the classic concatenation
// ambiguity: moving a character between adjacent strings must change
// the hash.
func TestFingerprintSelfDelimiting(t *testing.T) {
	mk := func(name, res string) *Problem {
		p := &Problem{Name: "sd"}
		p.AddTask(Task{Name: name, Resource: res, Delay: 1, Power: 1})
		return p
	}
	if mk("ab", "c").Fingerprint() == mk("a", "bc").Fingerprint() {
		t.Error(`("ab","c") and ("a","bc") collide: encoding is not self-delimiting`)
	}
}
