package model

import (
	"fmt"
	"math/rand"
	"testing"
)

// genFingerprintProblem builds a small deterministic-random problem;
// shared by the table tests and FuzzFingerprint.
func genFingerprintProblem(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(5)
	p := &Problem{
		Name:      fmt.Sprintf("fp-%d", seed),
		Pmax:      10 + rng.Float64()*10,
		Pmin:      rng.Float64() * 10,
		BasePower: rng.Float64() * 3,
	}
	for i := 0; i < n; i++ {
		p.AddTask(Task{
			Name:     fmt.Sprintf("t%d", i),
			Resource: fmt.Sprintf("R%d", rng.Intn(3)),
			Delay:    1 + rng.Intn(9),
			Power:    rng.Float64() * 8,
		})
	}
	for i := 1; i < n; i++ {
		if rng.Float64() < 0.6 {
			from, to := p.Tasks[rng.Intn(i)].Name, p.Tasks[i].Name
			if rng.Float64() < 0.3 {
				p.Window(from, to, rng.Intn(5), 5+rng.Intn(50))
			} else {
				p.MinSep(from, to, rng.Intn(10))
			}
		}
	}
	return p
}

func TestFingerprintStableAcrossClones(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := genFingerprintProblem(seed)
		if got, want := p.Clone().Fingerprint(), p.Fingerprint(); got != want {
			t.Fatalf("seed %d: clone fingerprint %s != %s", seed, got, want)
		}
	}
}

func TestFingerprintGolden(t *testing.T) {
	// Pin the encoding: a changed fingerprint silently invalidates
	// every deployed cache, so changing it must be a conscious act.
	p := &Problem{Name: "golden", Pmax: 16, Pmin: 14}
	p.AddTask(Task{Name: "a", Resource: "A", Delay: 3, Power: 6})
	p.AddTask(Task{Name: "b", Resource: "B", Delay: 4, Power: 4})
	p.MinSep("a", "b", 3)
	const want = "23c0c7585f88571a3ab55fe259f01499"
	if got := p.Fingerprint(); got != want {
		t.Errorf("Fingerprint() = %s, want %s (encoding changed?)", got, want)
	}
}

func TestFingerprintFieldSensitivity(t *testing.T) {
	base := genFingerprintProblem(7)
	mutations := map[string]func(*Problem){
		"name":              func(p *Problem) { p.Name += "x" },
		"pmax":              func(p *Problem) { p.Pmax++ },
		"pmin":              func(p *Problem) { p.Pmin++ },
		"base-power":        func(p *Problem) { p.BasePower++ },
		"task-name":         func(p *Problem) { p.Tasks[0].Name += "x" },
		"task-resource":     func(p *Problem) { p.Tasks[0].Resource += "x" },
		"task-delay":        func(p *Problem) { p.Tasks[0].Delay++ },
		"task-power":        func(p *Problem) { p.Tasks[0].Power++ },
		"task-order":        func(p *Problem) { p.Tasks[0], p.Tasks[1] = p.Tasks[1], p.Tasks[0] },
		"task-appended":     func(p *Problem) { p.AddTask(Task{Name: "zz", Resource: "Z", Delay: 1}) },
		"constraint-added":  func(p *Problem) { p.MinSep(p.Tasks[0].Name, p.Tasks[1].Name, 99) },
		"constraint-window": func(p *Problem) { p.Window(p.Tasks[1].Name, p.Tasks[0].Name, 0, 7) },
	}
	want := base.Fingerprint()
	for label, mutate := range mutations {
		q := base.Clone()
		mutate(q)
		if q.Fingerprint() == want {
			t.Errorf("%s: mutation did not change the fingerprint", label)
		}
	}
}

// TestFingerprintSelfDelimiting guards the classic concatenation
// ambiguity: moving a character between adjacent strings must change
// the hash.
func TestFingerprintSelfDelimiting(t *testing.T) {
	mk := func(name, res string) *Problem {
		p := &Problem{Name: "sd"}
		p.AddTask(Task{Name: name, Resource: res, Delay: 1, Power: 1})
		return p
	}
	if mk("ab", "c").Fingerprint() == mk("a", "bc").Fingerprint() {
		t.Error(`("ab","c") and ("a","bc") collide: encoding is not self-delimiting`)
	}
}
