package model

import "testing"

// FuzzFingerprint checks the two cache-key invariants over
// fuzzer-chosen problems and mutations: equal problems hash equal, and
// mutating any single field changes the hash. `which` selects the
// mutated field, `delta` perturbs its value (forced non-zero so the
// mutation is a real change).
func FuzzFingerprint(f *testing.F) {
	f.Add(int64(0), uint8(0), int64(1))
	f.Add(int64(3), uint8(4), int64(-2))
	f.Add(int64(9), uint8(7), int64(40))
	f.Add(int64(17), uint8(11), int64(7))
	f.Add(int64(5), uint8(10), int64(2))
	f.Add(int64(6), uint8(12), int64(3))
	f.Add(int64(8), uint8(14), int64(-5))
	f.Fuzz(func(t *testing.T, seed int64, which uint8, delta int64) {
		if delta == 0 {
			delta = 1
		}
		// Mutations 10+ target the machine/DVS section, which is hashed
		// only for heterogeneous problems, so they run on the hetero
		// generator (a pin or level on a machine-less problem never
		// survives Validate, so the digest ignoring it is intended).
		kind := which % 15
		p := genFingerprintProblem(seed)
		if kind >= 10 {
			p = genHeteroFingerprintProblem(seed)
		}
		q := p.Clone()
		if p.Fingerprint() != q.Fingerprint() {
			t.Fatalf("seed %d: equal problems hash differently", seed)
		}

		fd := float64(delta)
		ti := int(uint64(delta) % uint64(len(q.Tasks)))
		switch kind {
		case 0:
			q.Name += "m"
		case 1:
			q.Pmax += fd
		case 2:
			q.Pmin += fd
		case 3:
			q.BasePower += fd
		case 4:
			q.Tasks[ti].Name += "m"
		case 5:
			q.Tasks[ti].Resource += "m"
		case 6:
			q.Tasks[ti].Delay += int(delta)
		case 7:
			q.Tasks[ti].Power += fd
		case 8:
			q.AddTask(Task{Name: "fuzz-extra", Resource: "Z", Delay: 1, Power: 1})
		case 9:
			q.MinSep(q.Tasks[0].Name, q.Tasks[len(q.Tasks)-1].Name, int(delta))
		case 10:
			q.Machines = append(q.Machines, Machine{Name: "fuzz-mach", Speed: 1, PowerScale: 1})
		case 11:
			q.Machines[int(uint64(delta)%uint64(len(q.Machines)))].Speed += fd
		case 12:
			q.Machines[int(uint64(delta)%uint64(len(q.Machines)))].PowerScale += fd
		case 13:
			q.Tasks[ti].Levels = append(q.Tasks[ti].Levels, DVSLevel{Mult: 2, Power: fd})
		case 14:
			q.Tasks[ti].Machine += "m"
		}
		if p.Fingerprint() == q.Fingerprint() {
			t.Fatalf("seed %d: mutation %d (delta %d) did not change the fingerprint",
				seed, kind, delta)
		}
	})
}
