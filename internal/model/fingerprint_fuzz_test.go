package model

import "testing"

// FuzzFingerprint checks the two cache-key invariants over
// fuzzer-chosen problems and mutations: equal problems hash equal, and
// mutating any single field changes the hash. `which` selects the
// mutated field, `delta` perturbs its value (forced non-zero so the
// mutation is a real change).
func FuzzFingerprint(f *testing.F) {
	f.Add(int64(0), uint8(0), int64(1))
	f.Add(int64(3), uint8(4), int64(-2))
	f.Add(int64(9), uint8(7), int64(40))
	f.Add(int64(17), uint8(11), int64(7))
	f.Fuzz(func(t *testing.T, seed int64, which uint8, delta int64) {
		if delta == 0 {
			delta = 1
		}
		p := genFingerprintProblem(seed)
		q := p.Clone()
		if p.Fingerprint() != q.Fingerprint() {
			t.Fatalf("seed %d: equal problems hash differently", seed)
		}

		fd := float64(delta)
		ti := int(uint64(delta) % uint64(len(q.Tasks)))
		switch which % 10 {
		case 0:
			q.Name += "m"
		case 1:
			q.Pmax += fd
		case 2:
			q.Pmin += fd
		case 3:
			q.BasePower += fd
		case 4:
			q.Tasks[ti].Name += "m"
		case 5:
			q.Tasks[ti].Resource += "m"
		case 6:
			q.Tasks[ti].Delay += int(delta)
		case 7:
			q.Tasks[ti].Power += fd
		case 8:
			q.AddTask(Task{Name: "fuzz-extra", Resource: "Z", Delay: 1, Power: 1})
		case 9:
			q.MinSep(q.Tasks[0].Name, q.Tasks[len(q.Tasks)-1].Name, int(delta))
		}
		if p.Fingerprint() == q.Fingerprint() {
			t.Fatalf("seed %d: mutation %d (delta %d) did not change the fingerprint",
				seed, which%10, delta)
		}
	})
}
