package model

import (
	"fmt"
	"math"
	"sort"
)

// Machine is an execution element of a heterogeneous platform: a
// processor (or mechanical controller) with its own speed factor and
// power rating. Two tasks assigned to the same machine must be
// serialized, exactly like two tasks mapped to the same resource.
//
// The paper's single-system model is the degenerate case: a problem
// with no machines behaves as if every resource were its own implicit
// unit-speed, unit-rating machine, and every schedule it produced
// before the machine dimension existed is reproduced byte for byte.
type Machine struct {
	// Name identifies the machine; unique within a Problem.
	Name string
	// Speed divides task durations: a task with effective duration d at
	// unit speed runs in ceil(d/Speed) on this machine. Must be > 0.
	Speed float64
	// PowerScale multiplies task power draw on this machine (a faster
	// machine typically burns more watts per op). Must be > 0.
	PowerScale float64
}

// DVSLevel is one point on a task's voltage/frequency tradeoff curve
// (Leung & Tsui's duration-power tradeoff): running the task at this
// level stretches its nominal delay by Mult and draws Power watts
// (before the machine's PowerScale is applied).
type DVSLevel struct {
	// Mult multiplies the task's nominal delay. Must be > 0; 1 is the
	// nominal operating point, > 1 is a slow-down level.
	Mult float64
	// Power is the absolute power draw at this level in watts,
	// replacing the task's nominal Power. Must be >= 0.
	Power float64
}

// Choice fixes one task's machine assignment and DVS level. Machine is
// an index into Problem.Machines, or -1 when the problem has no
// machine set; Level indexes the task's Levels (0 for the implicit
// nominal level of a task with no explicit curve).
type Choice struct {
	Machine int
	Level   int
}

// Assignment is a per-task vector of choices, indexed like
// Problem.Tasks. A nil Assignment means "degenerate": every task at
// its nominal level with no machine dimension.
type Assignment []Choice

// Clone returns an independent copy of the assignment.
func (a Assignment) Clone() Assignment {
	if a == nil {
		return nil
	}
	return append(Assignment(nil), a...)
}

// TaskChoice is one concrete (machine, level) option for a task with
// its effective duration and power draw precomputed.
type TaskChoice struct {
	Machine int // index into Problem.Machines, -1 when the problem has none
	Level   int // index into Task.Levels (0 for the implicit level)
	Delay   Time
	Power   float64
}

// EffDelay returns the effective execution delay of a nominal delay d
// stretched by a level multiplier and divided by a machine speed,
// rounded up to whole time units and floored at 1. With mult == 1 and
// speed == 1 the result is exactly d.
func EffDelay(d Time, mult, speed float64) Time {
	e := Time(math.Ceil(float64(d) * mult / speed))
	if e < 1 {
		return 1
	}
	return e
}

// levelsOf returns the task's explicit tradeoff curve, or the implicit
// single nominal level.
func levelsOf(t Task) []DVSLevel {
	if len(t.Levels) > 0 {
		return t.Levels
	}
	return []DVSLevel{{Mult: 1, Power: t.Power}}
}

// Heterogeneous reports whether the problem uses the machine or DVS
// dimension at all. A problem that is not heterogeneous is the paper's
// degenerate case: schedulers take the exact code paths (and produce
// the exact bytes) they did before the dimensions existed.
func (p *Problem) Heterogeneous() bool {
	if len(p.Machines) > 0 {
		return true
	}
	for _, t := range p.Tasks {
		if len(t.Levels) > 0 {
			return true
		}
	}
	return false
}

// MachineIndex returns a map from machine name to its index.
func (p *Problem) MachineIndex() map[string]int {
	m := make(map[string]int, len(p.Machines))
	for i, mc := range p.Machines {
		m[mc.Name] = i
	}
	return m
}

// TaskChoices returns task i's concrete (machine, level) options with
// effective delays and powers, ordered by the scheduler's preference:
// shortest effective delay first, then lowest effective power, then
// machine index, then level index. Options a task cannot legally take
// are excluded: machines other than the task's pin, and (when Pmax is
// set) choices whose effective power alone already breaks the budget —
// such a choice can never appear in any power-valid schedule, so both
// the heuristic search and the exact enumeration may skip it.
//
// For a degenerate problem the result is exactly one choice with the
// task's nominal delay and power.
func (p *Problem) TaskChoices(i int) []TaskChoice {
	t := p.Tasks[i]
	levels := levelsOf(t)
	var out []TaskChoice
	add := func(mi int, speed, scale float64) {
		for li, lvl := range levels {
			c := TaskChoice{
				Machine: mi,
				Level:   li,
				Delay:   EffDelay(t.Delay, lvl.Mult, speed),
				Power:   lvl.Power * scale,
			}
			if p.Pmax != 0 && c.Power+p.BasePower > p.Pmax {
				continue
			}
			out = append(out, c)
		}
	}
	if len(p.Machines) == 0 {
		add(-1, 1, 1)
	} else {
		for mi, m := range p.Machines {
			if t.Machine != "" && t.Machine != m.Name {
				continue
			}
			add(mi, m.Speed, m.PowerScale)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Delay != y.Delay {
			return x.Delay < y.Delay
		}
		if x.Power != y.Power {
			return x.Power < y.Power
		}
		if x.Machine != y.Machine {
			return x.Machine < y.Machine
		}
		return x.Level < y.Level
	})
	return out
}

// ChoiceFor resolves an assignment entry for task i into its concrete
// effective delay and power. A nil assignment (or a -1 machine on a
// machine-less problem) yields the nominal values.
func (p *Problem) ChoiceFor(i int, a Assignment) (TaskChoice, error) {
	t := p.Tasks[i]
	if a == nil {
		return TaskChoice{Machine: -1, Delay: t.Delay, Power: t.Power}, nil
	}
	if i >= len(a) {
		return TaskChoice{}, fmt.Errorf("model: assignment has %d entries for task index %d", len(a), i)
	}
	c := a[i]
	levels := levelsOf(t)
	if c.Level < 0 || c.Level >= len(levels) {
		return TaskChoice{}, fmt.Errorf("model: task %q assigned unknown level %d", t.Name, c.Level)
	}
	lvl := levels[c.Level]
	speed, scale := 1.0, 1.0
	if len(p.Machines) == 0 {
		if c.Machine != -1 {
			return TaskChoice{}, fmt.Errorf("model: task %q assigned machine %d but the problem has no machines", t.Name, c.Machine)
		}
	} else {
		if c.Machine < 0 || c.Machine >= len(p.Machines) {
			return TaskChoice{}, fmt.Errorf("model: task %q assigned unknown machine %d", t.Name, c.Machine)
		}
		m := p.Machines[c.Machine]
		if t.Machine != "" && t.Machine != m.Name {
			return TaskChoice{}, fmt.Errorf("model: task %q pinned to machine %q but assigned %q", t.Name, t.Machine, m.Name)
		}
		speed, scale = m.Speed, m.PowerScale
	}
	return TaskChoice{
		Machine: c.Machine,
		Level:   c.Level,
		Delay:   EffDelay(t.Delay, lvl.Mult, speed),
		Power:   lvl.Power * scale,
	}, nil
}

// EffectiveTasks materializes the task list under an assignment: same
// names, resources, and order, with each task's Delay and Power
// replaced by the effective values of its chosen machine and level.
// With a nil assignment the problem's own task slice is returned
// unchanged (no copy), which is the degenerate identity.
func (p *Problem) EffectiveTasks(a Assignment) ([]Task, error) {
	if a == nil {
		return p.Tasks, nil
	}
	out := append([]Task(nil), p.Tasks...)
	for i := range out {
		c, err := p.ChoiceFor(i, a)
		if err != nil {
			return nil, err
		}
		out[i].Delay = c.Delay
		out[i].Power = c.Power
	}
	return out, nil
}

// validateMachines checks the machine set and the tasks' level curves
// and pins; called from Validate.
func (p *Problem) validateMachines() error {
	names := make(map[string]bool, len(p.Machines))
	for i, m := range p.Machines {
		if m.Name == "" {
			return fmt.Errorf("model: machine %d has empty name", i)
		}
		if names[m.Name] {
			return fmt.Errorf("model: duplicate machine name %q", m.Name)
		}
		names[m.Name] = true
		if !(m.Speed > 0) {
			return fmt.Errorf("model: machine %q has non-positive speed %g", m.Name, m.Speed)
		}
		if !(m.PowerScale > 0) {
			return fmt.Errorf("model: machine %q has non-positive power scale %g", m.Name, m.PowerScale)
		}
	}
	for _, t := range p.Tasks {
		if t.Machine != "" {
			if len(p.Machines) == 0 {
				return fmt.Errorf("model: task %q pinned to machine %q but the problem declares no machines", t.Name, t.Machine)
			}
			if !names[t.Machine] {
				return fmt.Errorf("model: task %q pinned to unknown machine %q", t.Name, t.Machine)
			}
		}
		for li, lvl := range t.Levels {
			if !(lvl.Mult > 0) {
				return fmt.Errorf("model: task %q level %d has non-positive duration multiplier %g", t.Name, li, lvl.Mult)
			}
			if lvl.Power < 0 {
				return fmt.Errorf("model: task %q level %d has negative power %g", t.Name, li, lvl.Power)
			}
		}
	}
	return nil
}
