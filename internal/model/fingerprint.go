package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Fingerprint returns a stable, content-addressed hash of the problem:
// two problems with identical field values (in identical order) always
// produce the same fingerprint, and any differing field produces a
// different one with cryptographic probability. Task and constraint
// order is part of the identity on purpose — the schedulers break ties
// by task index, so reordered problems can legitimately schedule
// differently.
//
// The encoding is canonical and self-delimiting: every string is
// length-prefixed, every number is fixed-width little-endian, and each
// section is preceded by its element count, so no two distinct
// problems share an encoding. The result is the hex form of the first
// 16 bytes of a SHA-256 digest, suitable as a cache key.
func (p *Problem) Fingerprint() string {
	h := sha256.New()
	hashString(h, p.Name)
	hashFloat(h, p.Pmax)
	hashFloat(h, p.Pmin)
	hashFloat(h, p.BasePower)
	hashInt(h, int64(len(p.Tasks)))
	for _, t := range p.Tasks {
		hashString(h, t.Name)
		hashString(h, t.Resource)
		hashInt(h, int64(t.Delay))
		hashFloat(h, t.Power)
	}
	hashInt(h, int64(len(p.Constraints)))
	for _, c := range p.Constraints {
		hashString(h, c.From)
		hashString(h, c.To)
		hashInt(h, int64(c.Min))
		hashInt(h, int64(c.Max))
		if c.HasMax {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	// The heterogeneous machine/DVS section is appended only when the
	// problem actually uses those dimensions, behind a domain-separating
	// tag: every degenerate (paper-model) problem keeps the exact digest
	// it had before the dimensions existed, so deployed cache keys for
	// the m=1, one-speed case survive the representation change.
	if p.Heterogeneous() {
		hashString(h, "hetero/v1")
		hashInt(h, int64(len(p.Machines)))
		for _, m := range p.Machines {
			hashString(h, m.Name)
			hashFloat(h, m.Speed)
			hashFloat(h, m.PowerScale)
		}
		for _, t := range p.Tasks {
			hashString(h, t.Machine)
			hashInt(h, int64(len(t.Levels)))
			for _, l := range t.Levels {
				hashFloat(h, l.Mult)
				hashFloat(h, l.Power)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// hashString writes a length-prefixed string, making the stream
// self-delimiting ("ab"+"c" hashes differently from "a"+"bc").
func hashString(h hash.Hash, s string) {
	hashInt(h, int64(len(s)))
	h.Write([]byte(s))
}

func hashInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func hashFloat(h hash.Hash, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.Write(buf[:])
}
