package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a stable, content-addressed hash of the problem:
// two problems with identical field values (in identical order) always
// produce the same fingerprint, and any differing field produces a
// different one with cryptographic probability. Task and constraint
// order is part of the identity on purpose — the schedulers break ties
// by task index, so reordered problems can legitimately schedule
// differently.
//
// The encoding is canonical and self-delimiting: every string is
// length-prefixed, every number is fixed-width little-endian, and each
// section is preceded by its element count, so no two distinct
// problems share an encoding. The result is the hex form of the first
// 16 bytes of a SHA-256 digest, suitable as a cache key.
//
// The canonical bytes are assembled into one buffer and digested with
// a single Sum256 — identical byte stream, identical digests to the
// historical incremental-Write form, but two allocations instead of
// one per field (hash.Hash's interface boundary forces every written
// chunk to escape). Fault campaigns fingerprint every residual
// problem; this is one of their hottest paths.
func (p *Problem) Fingerprint() string {
	b := make([]byte, 0, 64+48*len(p.Tasks)+40*len(p.Constraints))
	b = appendHashString(b, p.Name)
	b = appendHashFloat(b, p.Pmax)
	b = appendHashFloat(b, p.Pmin)
	b = appendHashFloat(b, p.BasePower)
	b = appendHashInt(b, int64(len(p.Tasks)))
	for _, t := range p.Tasks {
		b = appendHashString(b, t.Name)
		b = appendHashString(b, t.Resource)
		b = appendHashInt(b, int64(t.Delay))
		b = appendHashFloat(b, t.Power)
	}
	b = appendHashInt(b, int64(len(p.Constraints)))
	for _, c := range p.Constraints {
		b = appendHashString(b, c.From)
		b = appendHashString(b, c.To)
		b = appendHashInt(b, int64(c.Min))
		b = appendHashInt(b, int64(c.Max))
		if c.HasMax {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	// The heterogeneous machine/DVS section is appended only when the
	// problem actually uses those dimensions, behind a domain-separating
	// tag: every degenerate (paper-model) problem keeps the exact digest
	// it had before the dimensions existed, so deployed cache keys for
	// the m=1, one-speed case survive the representation change.
	if p.Heterogeneous() {
		b = appendHashString(b, "hetero/v1")
		b = appendHashInt(b, int64(len(p.Machines)))
		for _, m := range p.Machines {
			b = appendHashString(b, m.Name)
			b = appendHashFloat(b, m.Speed)
			b = appendHashFloat(b, m.PowerScale)
		}
		for _, t := range p.Tasks {
			b = appendHashString(b, t.Machine)
			b = appendHashInt(b, int64(len(t.Levels)))
			for _, l := range t.Levels {
				b = appendHashFloat(b, l.Mult)
				b = appendHashFloat(b, l.Power)
			}
		}
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// appendHashString appends a length-prefixed string, keeping the
// stream self-delimiting ("ab"+"c" encodes differently from "a"+"bc").
func appendHashString(b []byte, s string) []byte {
	b = appendHashInt(b, int64(len(s)))
	return append(b, s...)
}

func appendHashInt(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendHashFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
