// Package model defines the task, resource, and constraint vocabulary of
// the power-aware scheduling problem from Liu et al., DAC 2001.
//
// A Problem is a constraint graph G(V,E) in source form: the vertices are
// Tasks, each carrying an execution delay d(v), a power consumption p(v),
// and an execution resource r(v); the edges are min/max timing separations
// between task start times. Min/max separations subsume release times,
// deadlines, and precedence dependencies. The system-level power profile is
// constrained by a hard max power budget Pmax and a soft min power goal
// Pmin (the free-power level, e.g. available solar power).
package model

import (
	"fmt"
	"sort"
)

// Time is a point or duration on the schedule's discrete time axis.
// The paper's examples use integral seconds throughout.
type Time = int

// Anchor is the reserved name of the virtual task that starts at time 0.
// Constraints whose From or To field equals Anchor constrain a task
// against the schedule origin: a release time is a min separation from
// the anchor, a deadline is a max separation from the anchor.
const Anchor = "$anchor"

// Task is a vertex of the constraint graph: a non-preemptive unit of work
// with a bounded execution delay, an exact power consumption, and a
// resource mapping. Two tasks mapped to the same resource must be
// serialized by the scheduler.
type Task struct {
	// Name identifies the task; it must be unique within a Problem and
	// must not equal Anchor.
	Name string
	// Resource names the execution resource r(v) the task is mapped to.
	// Resources are not limited to computing elements; mechanical
	// subsystems and heaters are resources too.
	Resource string
	// Delay is the execution delay d(v) in time units; it must be > 0.
	// It is the nominal delay: the chosen machine speed and DVS level
	// scale it (see EffDelay); with no machines and no levels it is
	// the effective delay, exactly as in the paper.
	Delay Time
	// Power is the power consumption p(v) in watts while the task
	// executes; it must be >= 0. Energy consumption is Delay*Power.
	// Tasks with an explicit Levels curve draw the level's power
	// instead.
	Power float64
	// Levels is the task's optional DVS duration-power tradeoff curve.
	// Empty means the single implicit nominal level {Mult: 1, Power}.
	Levels []DVSLevel `json:",omitempty"`
	// Machine optionally pins the task to the named machine. Empty
	// means any machine (or none, when the problem declares none).
	Machine string `json:",omitempty"`
}

// Energy returns the task's total energy expenditure d(v)*p(v) in joules.
func (t Task) Energy() float64 { return float64(t.Delay) * t.Power }

// Constraint is a timing edge between two task start times:
//
//	sigma(To) >= sigma(From) + Min          (always)
//	sigma(To) <= sigma(From) + Max          (when HasMax)
//
// A plain precedence "u before v" is Min = u.Delay. A window such as the
// rover's "heating at least 5 s, at most 50 s before steering" is
// Min = 5, Max = 50 on the heat->steer edge.
type Constraint struct {
	From   string
	To     string
	Min    Time
	Max    Time
	HasMax bool
}

// String renders the constraint in the form used by the spec format.
func (c Constraint) String() string {
	if c.HasMax {
		return fmt.Sprintf("%s -> %s [%d,%d]", c.From, c.To, c.Min, c.Max)
	}
	return fmt.Sprintf("%s -> %s [%d,]", c.From, c.To, c.Min)
}

// Problem is a complete power-aware scheduling problem: a constraint
// graph plus the system power constraints.
type Problem struct {
	// Name labels the problem in reports and rendered charts.
	Name string
	// Tasks are the vertices of the constraint graph.
	Tasks []Task
	// Constraints are the min/max separation edges.
	Constraints []Constraint
	// Pmax is the hard maximum power budget in watts. The power profile
	// of a valid schedule never exceeds Pmax.
	Pmax float64
	// Pmin is the soft minimum power goal in watts, typically the free
	// (solar) power level. Consumption below Pmin wastes free energy.
	Pmin float64
	// BasePower is a constant system load present for the entire
	// schedule (the rover's CPU in Table 2 is "constant"). It is added
	// to the power profile but is not a schedulable task.
	BasePower float64
	// Machines is the optional heterogeneous machine set. Empty means
	// the paper's single-system model: no assignment dimension, tasks
	// serialized by resource only.
	Machines []Machine `json:",omitempty"`
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := *p
	q.Tasks = append([]Task(nil), p.Tasks...)
	for i := range q.Tasks {
		if len(q.Tasks[i].Levels) > 0 {
			q.Tasks[i].Levels = append([]DVSLevel(nil), q.Tasks[i].Levels...)
		}
	}
	q.Constraints = append([]Constraint(nil), p.Constraints...)
	if len(p.Machines) > 0 {
		q.Machines = append([]Machine(nil), p.Machines...)
	}
	return &q
}

// TaskIndex returns a map from task name to its index in Tasks.
func (p *Problem) TaskIndex() map[string]int {
	m := make(map[string]int, len(p.Tasks))
	for i, t := range p.Tasks {
		m[t.Name] = i
	}
	return m
}

// TaskByName returns the task with the given name.
func (p *Problem) TaskByName(name string) (Task, bool) {
	for _, t := range p.Tasks {
		if t.Name == name {
			return t, true
		}
	}
	return Task{}, false
}

// Resources returns the sorted set of resource names used by the tasks.
func (p *Problem) Resources() []string {
	seen := make(map[string]bool)
	var rs []string
	for _, t := range p.Tasks {
		if !seen[t.Resource] {
			seen[t.Resource] = true
			rs = append(rs, t.Resource)
		}
	}
	sort.Strings(rs)
	return rs
}

// TotalEnergy returns the energy of all tasks, excluding BasePower
// (which depends on the schedule's finish time).
func (p *Problem) TotalEnergy() float64 {
	var e float64
	for _, t := range p.Tasks {
		e += t.Energy()
	}
	return e
}

// AddTask appends a task and returns its index.
func (p *Problem) AddTask(t Task) int {
	p.Tasks = append(p.Tasks, t)
	return len(p.Tasks) - 1
}

// Precede adds the plain precedence constraint "from finishes before to
// starts": a min separation equal to from's delay.
func (p *Problem) Precede(from, to string) error {
	t, ok := p.TaskByName(from)
	if !ok {
		return fmt.Errorf("model: precede: unknown task %q", from)
	}
	p.Constraints = append(p.Constraints, Constraint{From: from, To: to, Min: t.Delay})
	return nil
}

// MinSep adds sigma(to) >= sigma(from) + s.
func (p *Problem) MinSep(from, to string, s Time) {
	p.Constraints = append(p.Constraints, Constraint{From: from, To: to, Min: s})
}

// Window adds min <= sigma(to) - sigma(from) <= max.
func (p *Problem) Window(from, to string, min, max Time) {
	p.Constraints = append(p.Constraints, Constraint{From: from, To: to, Min: min, Max: max, HasMax: true})
}

// Release constrains the task to start no earlier than t.
func (p *Problem) Release(task string, t Time) {
	p.Constraints = append(p.Constraints, Constraint{From: Anchor, To: task, Min: t})
}

// Deadline constrains the task to start no later than t.
func (p *Problem) Deadline(task string, t Time) {
	p.Constraints = append(p.Constraints, Constraint{From: Anchor, To: task, Min: 0, Max: t, HasMax: true})
}

// Validate checks structural well-formedness: unique non-empty task
// names, positive delays, non-negative powers, constraints referencing
// known tasks (or the anchor), consistent windows, and sane power
// constraints. It does not check feasibility; that is the scheduler's
// job.
func (p *Problem) Validate() error {
	if len(p.Tasks) == 0 {
		return fmt.Errorf("model: problem %q has no tasks", p.Name)
	}
	names := make(map[string]bool, len(p.Tasks))
	for i, t := range p.Tasks {
		if t.Name == "" {
			return fmt.Errorf("model: task %d has empty name", i)
		}
		if t.Name == Anchor {
			return fmt.Errorf("model: task %d uses reserved name %q", i, Anchor)
		}
		if names[t.Name] {
			return fmt.Errorf("model: duplicate task name %q", t.Name)
		}
		names[t.Name] = true
		if t.Delay <= 0 {
			return fmt.Errorf("model: task %q has non-positive delay %d", t.Name, t.Delay)
		}
		if t.Power < 0 {
			return fmt.Errorf("model: task %q has negative power %g", t.Name, t.Power)
		}
		if t.Resource == "" {
			return fmt.Errorf("model: task %q has empty resource", t.Name)
		}
	}
	known := func(name string) bool { return name == Anchor || names[name] }
	for _, c := range p.Constraints {
		if !known(c.From) {
			return fmt.Errorf("model: constraint %s references unknown task %q", c, c.From)
		}
		if !known(c.To) {
			return fmt.Errorf("model: constraint %s references unknown task %q", c, c.To)
		}
		if c.From == c.To {
			return fmt.Errorf("model: constraint %s is a self-loop", c)
		}
		if c.HasMax && c.Max < c.Min {
			return fmt.Errorf("model: constraint %s has max < min", c)
		}
	}
	if p.Pmax < 0 || p.Pmin < 0 {
		return fmt.Errorf("model: negative power constraint (Pmax=%g, Pmin=%g)", p.Pmax, p.Pmin)
	}
	if p.Pmax != 0 && p.Pmin > p.Pmax {
		return fmt.Errorf("model: Pmin %g exceeds Pmax %g", p.Pmin, p.Pmax)
	}
	if p.BasePower < 0 {
		return fmt.Errorf("model: negative base power %g", p.BasePower)
	}
	if err := p.validateMachines(); err != nil {
		return err
	}
	if p.Pmax != 0 {
		if !p.Heterogeneous() {
			for _, t := range p.Tasks {
				if t.Power+p.BasePower > p.Pmax {
					return fmt.Errorf("model: task %q alone (%g W + base %g W) exceeds Pmax %g W",
						t.Name, t.Power, p.BasePower, p.Pmax)
				}
			}
		} else {
			// A task must have at least one (machine, level) choice
			// whose effective power fits under the budget; TaskChoices
			// already filters solo-overbudget choices out.
			for i, t := range p.Tasks {
				if len(p.TaskChoices(i)) == 0 {
					return fmt.Errorf("model: task %q has no machine/level choice within Pmax %g W (base %g W)",
						t.Name, p.Pmax, p.BasePower)
				}
			}
		}
	}
	return nil
}
