package model

import (
	"strings"
	"testing"
)

func validProblem() *Problem {
	p := &Problem{
		Name: "ok",
		Tasks: []Task{
			{Name: "a", Resource: "R", Delay: 2, Power: 3},
			{Name: "b", Resource: "S", Delay: 4, Power: 1},
		},
		Pmax: 10,
		Pmin: 5,
	}
	return p
}

func TestValidateAccepts(t *testing.T) {
	if err := validProblem().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Problem)
		want   string
	}{
		{"no tasks", func(p *Problem) { p.Tasks = nil }, "no tasks"},
		{"empty name", func(p *Problem) { p.Tasks[0].Name = "" }, "empty name"},
		{"anchor name", func(p *Problem) { p.Tasks[0].Name = Anchor }, "reserved"},
		{"duplicate", func(p *Problem) { p.Tasks[1].Name = "a" }, "duplicate"},
		{"zero delay", func(p *Problem) { p.Tasks[0].Delay = 0 }, "non-positive delay"},
		{"negative power", func(p *Problem) { p.Tasks[0].Power = -1 }, "negative power"},
		{"empty resource", func(p *Problem) { p.Tasks[0].Resource = "" }, "empty resource"},
		{"unknown from", func(p *Problem) { p.MinSep("zz", "a", 1) }, "unknown task"},
		{"unknown to", func(p *Problem) { p.MinSep("a", "zz", 1) }, "unknown task"},
		{"self loop", func(p *Problem) { p.MinSep("a", "a", 1) }, "self-loop"},
		{"max < min", func(p *Problem) { p.Window("a", "b", 5, 2) }, "max < min"},
		{"negative pmax", func(p *Problem) { p.Pmax = -1 }, "negative power constraint"},
		{"pmin > pmax", func(p *Problem) { p.Pmin = 20 }, "exceeds Pmax"},
		{"negative base", func(p *Problem) { p.BasePower = -2 }, "negative base power"},
		{"task over budget", func(p *Problem) { p.Tasks[0].Power = 11 }, "exceeds Pmax"},
		{"task+base over budget", func(p *Problem) { p.BasePower = 8 }, "exceeds Pmax"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validProblem()
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAllowsNoBudget(t *testing.T) {
	p := validProblem()
	p.Pmax, p.Pmin = 0, 0
	p.Tasks[0].Power = 1000 // no budget: any power is fine
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTaskEnergy(t *testing.T) {
	task := Task{Delay: 4, Power: 2.5}
	if got := task.Energy(); got != 10 {
		t.Fatalf("Energy = %g, want 10", got)
	}
}

func TestBuilders(t *testing.T) {
	p := validProblem()
	if err := p.Precede("a", "b"); err != nil {
		t.Fatal(err)
	}
	c := p.Constraints[len(p.Constraints)-1]
	if c.Min != 2 || c.HasMax {
		t.Fatalf("Precede built %+v, want min=delay(a)=2", c)
	}
	if err := p.Precede("zz", "b"); err == nil {
		t.Fatal("Precede accepted unknown task")
	}

	p.Release("b", 7)
	c = p.Constraints[len(p.Constraints)-1]
	if c.From != Anchor || c.Min != 7 {
		t.Fatalf("Release built %+v", c)
	}

	p.Deadline("b", 9)
	c = p.Constraints[len(p.Constraints)-1]
	if c.From != Anchor || !c.HasMax || c.Max != 9 {
		t.Fatalf("Deadline built %+v", c)
	}

	p.Window("a", "b", 1, 3)
	c = p.Constraints[len(p.Constraints)-1]
	if c.Min != 1 || c.Max != 3 || !c.HasMax {
		t.Fatalf("Window built %+v", c)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := validProblem()
	p.MinSep("a", "b", 1)
	q := p.Clone()
	q.Tasks[0].Name = "changed"
	q.Constraints[0].Min = 99
	q.AddTask(Task{Name: "c", Resource: "R", Delay: 1})
	if p.Tasks[0].Name != "a" || p.Constraints[0].Min != 1 || len(p.Tasks) != 2 {
		t.Fatal("Clone shares state with the original")
	}
}

func TestLookupsAndResources(t *testing.T) {
	p := validProblem()
	idx := p.TaskIndex()
	if idx["a"] != 0 || idx["b"] != 1 {
		t.Fatalf("TaskIndex = %v", idx)
	}
	if _, ok := p.TaskByName("b"); !ok {
		t.Fatal("TaskByName missed b")
	}
	if _, ok := p.TaskByName("zz"); ok {
		t.Fatal("TaskByName invented zz")
	}
	rs := p.Resources()
	if len(rs) != 2 || rs[0] != "R" || rs[1] != "S" {
		t.Fatalf("Resources = %v", rs)
	}
}

func TestTotalEnergy(t *testing.T) {
	p := validProblem() // 2*3 + 4*1 = 10
	if got := p.TotalEnergy(); got != 10 {
		t.Fatalf("TotalEnergy = %g, want 10", got)
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{From: "a", To: "b", Min: 2, Max: 9, HasMax: true}
	if got := c.String(); got != "a -> b [2,9]" {
		t.Fatalf("String = %q", got)
	}
	c.HasMax = false
	if got := c.String(); got != "a -> b [2,]" {
		t.Fatalf("String = %q", got)
	}
}
