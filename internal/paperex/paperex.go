// Package paperex holds the reconstructed nine-task example of the
// paper's Figs. 1, 2, 5 and 7: tasks a..i mapped onto three resources
// A, B and C with min/max timing constraints, Pmax = 16 W and
// Pmin = 14 W.
//
// The original instance exists only as a figure, so the exact delays,
// powers, and edges are not recoverable from the paper text. This
// reconstruction is engineered to exhibit every property the paper
// reports about the example:
//
//   - the time-valid schedule of Fig. 2 contains a power spike and
//     several power gaps;
//   - max-power scheduling (Fig. 5) removes the spike by delaying
//     tasks chosen by the slack heuristics;
//   - min-power scheduling (Fig. 7) then improves min-power
//     utilization at unchanged performance;
//   - the final schedule remains valid for a whole range of
//     constraints (Pmax >= its peak, full utilization for Pmin <= its
//     floor), which the runtime package exposes.
package paperex

import (
	"repro/internal/model"
)

// Pmax and Pmin are the example's power constraints.
const (
	Pmax = 16
	Pmin = 14
)

// Nine returns a fresh copy of the nine-task example problem.
func Nine() *model.Problem {
	p := &model.Problem{
		Name: "nine-task-example",
		Pmax: Pmax,
		Pmin: Pmin,
	}
	// Resource A: a -> d -> g pipeline; d is the heavy consumer whose
	// alignment against the other rows creates the Fig. 2 spike.
	p.AddTask(model.Task{Name: "a", Resource: "A", Delay: 3, Power: 6})
	p.AddTask(model.Task{Name: "d", Resource: "A", Delay: 4, Power: 10})
	p.AddTask(model.Task{Name: "g", Resource: "A", Delay: 3, Power: 6})
	// Resource B: b -> e chain plus the floating h.
	p.AddTask(model.Task{Name: "b", Resource: "B", Delay: 4, Power: 4})
	p.AddTask(model.Task{Name: "e", Resource: "B", Delay: 4, Power: 2})
	p.AddTask(model.Task{Name: "h", Resource: "B", Delay: 2, Power: 4})
	// Resource C: c -> f -> i chain.
	p.AddTask(model.Task{Name: "c", Resource: "C", Delay: 3, Power: 6})
	p.AddTask(model.Task{Name: "f", Resource: "C", Delay: 3, Power: 4})
	p.AddTask(model.Task{Name: "i", Resource: "C", Delay: 4, Power: 6})

	p.MinSep("a", "d", 3) // a precedes d
	p.MinSep("d", "g", 4) // d precedes g
	p.MinSep("b", "e", 4) // b precedes e
	p.MinSep("c", "f", 3) // c precedes f
	p.MinSep("f", "i", 3) // f precedes i
	return p
}
