package paperex

import (
	"testing"

	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/schedule"
)

func TestNineValidates(t *testing.T) {
	if err := Nine().Validate(); err != nil {
		t.Fatal(err)
	}
	p := Nine()
	if len(p.Tasks) != 9 {
		t.Fatalf("tasks = %d, want 9", len(p.Tasks))
	}
	if len(p.Resources()) != 3 {
		t.Fatalf("resources = %v, want A,B,C", p.Resources())
	}
}

func TestNineReturnsFreshCopies(t *testing.T) {
	a, b := Nine(), Nine()
	a.Tasks[0].Power = 99
	if b.Tasks[0].Power == 99 {
		t.Fatal("Nine shares state between calls")
	}
}

// TestFig2TimingScheduleHasSpike: the time-valid schedule violates the
// max power constraint, as in the paper's Fig. 2.
func TestFig2TimingScheduleHasSpike(t *testing.T) {
	r, err := sched.Timing(Nine(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.CheckTimeValid(r.Graph, r.Compiled, r.Schedule); err != nil {
		t.Fatalf("not time-valid: %v", err)
	}
	if len(r.Profile.Spikes(Pmax)) == 0 {
		t.Fatalf("expected a power spike; profile %v", r.Profile)
	}
}

// TestFig5MaxPowerRemovesSpike: after max-power scheduling the
// schedule is valid (paper Fig. 5).
func TestFig5MaxPowerRemovesSpike(t *testing.T) {
	r, err := sched.MaxPower(Nine(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Profile.Valid(Pmax) {
		t.Fatalf("spikes remain: %v", r.Profile.Spikes(Pmax))
	}
	if err := schedule.CheckTimeValid(r.Graph, r.Compiled, r.Schedule); err != nil {
		t.Fatalf("not time-valid: %v", err)
	}
}

// TestFig7MinPowerImproves: the min-power scheduler strictly improves
// utilization over the merely-valid schedule at unchanged performance
// (paper Fig. 7 improves on Fig. 5).
func TestFig7MinPowerImproves(t *testing.T) {
	rm, err := sched.MaxPower(Nine(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := sched.MinPower(Nine(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Finish() > rm.Finish() {
		t.Errorf("min-power degraded performance: %d -> %d", rm.Finish(), rf.Finish())
	}
	if rf.Utilization() <= rm.Utilization() {
		t.Errorf("utilization did not improve: %.4f -> %.4f", rm.Utilization(), rf.Utilization())
	}
	if rf.EnergyCost() >= rm.EnergyCost() {
		t.Errorf("energy cost did not drop: %.1f -> %.1f", rm.EnergyCost(), rf.EnergyCost())
	}
}

// TestFig7ValidityRange: the final schedule is valid for every budget
// at or above the example's Pmax of 16 W — the paper's "can be directly
// applied to all cases where Pmax >= 16" remark — because its profile
// peaks at exactly 16 W.
func TestFig7ValidityRange(t *testing.T) {
	rf, err := sched.MinPower(Nine(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := runtime.NewEntry("fig7", Nine(), rf.Schedule)
	if e.RequiredPmax != Pmax {
		t.Errorf("RequiredPmax = %g, want %g", e.RequiredPmax, float64(Pmax))
	}
	for _, pmax := range []float64{16, 17, 100} {
		if !e.ValidFor(pmax) {
			t.Errorf("schedule invalid at Pmax=%g", pmax)
		}
	}
	if e.ValidFor(15.9) {
		t.Error("schedule claimed valid below its peak")
	}
}
