package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/web"
)

// newBackend boots one backend exactly as cmd/serve wires it: the web
// handler plus the standalone /verify endpoint.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := web.NewServer(sched.Options{})
	srv.Add(paperex.Nine())
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("POST /verify", srv.VerifyHandlerFunc)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func newRouterServer(t *testing.T, backends ...string) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(backends, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// heteroSpec is a spec document exercising the heterogeneous-machines
// and DVS-levels extensions, so the differential test covers the full
// model surface over the wire.
func heteroSpec() string {
	p := paperex.Nine().Clone()
	p.Name = "nine-hetero"
	p.Machines = []model.Machine{
		{Name: "fast", Speed: 2, PowerScale: 1.5},
		{Name: "slow", Speed: 1, PowerScale: 1},
	}
	p.Tasks[0].Levels = []model.DVSLevel{{Mult: 1, Power: p.Tasks[0].Power}, {Mult: 2, Power: p.Tasks[0].Power / 3}}
	return spec.Format(p)
}

type wireReq struct {
	method, path, body string
}

// play replays a request stream against one base URL and returns each
// response as "status\nbody".
func play(t *testing.T, base string, reqs []wireReq) []string {
	t.Helper()
	out := make([]string, len(reqs))
	for i, rq := range reqs {
		var resp *http.Response
		var err error
		if rq.method == http.MethodGet {
			resp, err = http.Get(base + rq.path)
		} else {
			resp, err = http.Post(base+rq.path, "application/json", strings.NewReader(rq.body))
		}
		if err != nil {
			t.Fatalf("request %d %s %s: %v", i, rq.method, rq.path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("request %d %s %s: %v", i, rq.method, rq.path, err)
		}
		out[i] = fmt.Sprintf("%d\n%s", resp.StatusCode, body)
	}
	return out
}

// TestDifferentialSingleVsSharded is the serving tier's core
// correctness claim: a router over two shards answers an entire
// request stream — uploads, every pipeline stage, heterogeneous/DVS
// problems, batches mixing names and inline specs, and the whole error
// contract — byte-identically to one single-process server. The
// deterministic pipeline is what makes this hold with zero
// inter-shard coordination.
func TestDifferentialSingleVsSharded(t *testing.T) {
	hetero := heteroSpec()
	batchDoc, err := json.Marshal(map[string]any{"items": []map[string]any{
		{"problem": "nine-task-example"},
		{"spec": hetero, "stage": "minpower"},
		{"problem": "nine-hetero", "stage": "timing"},
		{"problem": "no-such-problem"},
		{"spec": "task bogus"},
		{},
	}})
	if err != nil {
		t.Fatal(err)
	}
	stream := []wireReq{
		{http.MethodPost, "/problems", hetero},
		{http.MethodGet, "/schedule?problem=nine-hetero&format=json", ""},
		{http.MethodGet, "/schedule?problem=nine-hetero&stage=timing&format=json", ""},
		{http.MethodGet, "/schedule?problem=nine-hetero&stage=maxpower&format=ascii", ""},
		{http.MethodGet, "/schedule?problem=nine-task-example&format=json&seed=7&restarts=2", ""},
		{http.MethodGet, "/schedule?problem=no-such-problem", ""},
		{http.MethodGet, "/schedule?problem=nine-task-example&stage=bogus", ""},
		{http.MethodPost, "/verify", hetero},
		{http.MethodGet, "/simulate?problem=nine-task-example&n=20&seed=5&format=json", ""},
		{http.MethodPost, "/schedule/batch", string(batchDoc)},
		{http.MethodPost, "/schedule/batch", "{not json"},
		{http.MethodPost, "/schedule/batch", `{"items":[]}`},
	}

	single := newBackend(t)
	want := play(t, single.URL, stream)

	b1, b2 := newBackend(t), newBackend(t)
	_, rts := newRouterServer(t, b1.URL, b2.URL)
	got := play(t, rts.URL, stream)

	for i := range stream {
		if got[i] != want[i] {
			t.Errorf("request %d (%s %s): sharded response differs from single-process\nsingle:\n%s\nsharded:\n%s",
				i, stream[i].method, stream[i].path, want[i], got[i])
		}
	}
}

// TestRendezvousProperties pins the hash's contract: identical
// placement across independent router instances, reasonable balance,
// and minimal disruption — removing a backend remaps only the keys it
// owned.
func TestRendezvousProperties(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	rt1, err := New(names, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := New(names, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rtAB, err := New(names[:2], Config{})
	if err != nil {
		t.Fatal(err)
	}

	counts := make(map[string]int)
	moved := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("fp/%d", i)
		o1, o2 := rt1.rank(key), rt2.rank(key)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("key %q: instances disagree: %v vs %v", key, o1, o2)
		}
		owner := rt1.backends[o1[0]].name
		counts[owner]++
		if owner != names[2] {
			if ab := rtAB.backends[rtAB.rank(key)[0]].name; ab != owner {
				moved++
			}
		}
	}
	for _, n := range names {
		if counts[n] < 50 {
			t.Errorf("backend %s owns only %d/300 keys; want a roughly uniform split (%v)", n, counts[n], counts)
		}
	}
	if moved != 0 {
		t.Errorf("removing one backend moved %d keys owned by the survivors; rendezvous must move none", moved)
	}
}

// TestFailoverRetry kills the shard owning a key and asserts the
// router transparently retries its requests — single and batch —
// against the next replica.
func TestFailoverRetry(t *testing.T) {
	live := newBackend(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // the port is now refused: a transport error, not an HTTP answer

	rt, rts := newRouterServer(t, dead.URL, live.URL)

	// Find a problem name whose owner is the dead backend. Scores hash
	// the backend URL (which carries an ephemeral port), so probe a few
	// names instead of hardcoding one.
	name := ""
	for i := 0; i < 64; i++ {
		n := fmt.Sprintf("probe-%d", i)
		if rt.backends[rt.rank("name/" + n)[0]].name == dead.URL {
			name = n
			break
		}
	}
	if name == "" {
		t.Fatal("no probe name hashed onto the dead backend in 64 tries")
	}
	p := paperex.Nine().Clone()
	p.Name = name
	specDoc := spec.Format(p)

	// Upload routes to the dead owner, fails over to the live replica,
	// and registers there; the follow-up GET and batch items fail over
	// identically, so they find the registration.
	resp, err := http.Post(rts.URL+"/problems", "text/plain", strings.NewReader(specDoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload through dead owner: status %d", resp.StatusCode)
	}
	resp, err = http.Get(rts.URL + "/schedule?problem=" + name + "&format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule through dead owner: status %d", resp.StatusCode)
	}

	doc, _ := json.Marshal(map[string]any{"items": []map[string]any{{"problem": name}}})
	resp, err = http.Post(rts.URL+"/schedule/batch", "application/json", strings.NewReader(string(doc)))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Items []web.BatchItemResult `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Items) != 1 || batch.Items[0].Status != http.StatusOK {
		t.Fatalf("batch through dead owner: %+v", batch)
	}

	if rt.Retries() < 3 {
		t.Errorf("retries = %d, want >= 3 (upload, schedule, batch)", rt.Retries())
	}
}

// TestAllReplicasDown pins the router's own failure mode: when every
// replica is unreachable, single requests get a 502 and batch items
// get per-item 502 entries.
func TestAllReplicasDown(t *testing.T) {
	d1 := httptest.NewServer(http.NotFoundHandler())
	d1.Close()
	d2 := httptest.NewServer(http.NotFoundHandler())
	d2.Close()
	_, rts := newRouterServer(t, d1.URL, d2.URL)

	resp, err := http.Get(rts.URL + "/schedule?problem=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("single: status %d, want 502", resp.StatusCode)
	}

	doc := `{"items":[{"problem":"x"},{"problem":"y"}]}`
	resp, err = http.Post(rts.URL+"/schedule/batch", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Items []web.BatchItemResult `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("batch envelope: status %d, want 200", resp.StatusCode)
	}
	if len(batch.Items) != 2 {
		t.Fatalf("batch items: %d, want 2", len(batch.Items))
	}
	for i, it := range batch.Items {
		if it.Status != http.StatusBadGateway {
			t.Errorf("item %d: status %d, want 502", i, it.Status)
		}
	}
}

// TestStatsAggregation drives work through the router and checks that
// GET /stats sums the shard counters.
func TestStatsAggregation(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	_, rts := newRouterServer(t, b1.URL, b2.URL)

	for _, path := range []string{
		"/schedule?problem=nine-task-example&format=json",
		"/schedule?problem=nine-task-example&stage=timing&format=json",
	} {
		resp, err := http.Get(rts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(rts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Shards) != 2 {
		t.Fatalf("shards: %d, want 2", len(doc.Shards))
	}
	var misses int64
	for i, sh := range doc.Shards {
		if sh.Stats == nil {
			t.Fatalf("shard %d: no stats (%s)", i, sh.Error)
		}
		misses += sh.Stats.Misses
	}
	if doc.Aggregate.Misses != misses || misses < 2 {
		t.Errorf("aggregate misses %d, shard sum %d, want equal and >= 2", doc.Aggregate.Misses, misses)
	}
	if doc.Aggregate.UptimeSeconds < 0 {
		t.Errorf("aggregate uptime %f, want >= 0", doc.Aggregate.UptimeSeconds)
	}
}

// TestStatsDegradesOnUnreachableShard pins satellite behavior: an
// unreachable shard yields a marked "unreachable" entry and a health
// verdict, while the aggregate still sums whoever answered.
func TestStatsDegradesOnUnreachableShard(t *testing.T) {
	live := newBackend(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	_, rts := newRouterServer(t, live.URL, dead.URL)

	// Put at least one counter into the live shard.
	resp, err := http.Get(rts.URL + "/schedule?problem=nine-task-example&format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(rts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats with a dead shard: status %d, want 200", resp.StatusCode)
	}
	var doc StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	var deadEntry, liveEntry *ShardStats
	for i := range doc.Shards {
		switch doc.Shards[i].Backend {
		case dead.URL:
			deadEntry = &doc.Shards[i]
		case live.URL:
			liveEntry = &doc.Shards[i]
		}
	}
	if deadEntry == nil || liveEntry == nil {
		t.Fatalf("missing shard entries: %+v", doc.Shards)
	}
	if !strings.HasPrefix(deadEntry.Error, "unreachable: ") || deadEntry.Stats != nil {
		t.Errorf("dead shard entry: error=%q stats=%v, want unreachable marker and no stats", deadEntry.Error, deadEntry.Stats)
	}
	if liveEntry.Stats == nil {
		t.Fatalf("live shard entry carries no stats: %+v", liveEntry)
	}
	if doc.Aggregate.Misses != liveEntry.Stats.Misses || doc.Aggregate.Misses < 1 {
		t.Errorf("aggregate misses=%d, live shard misses=%d; aggregate must cover whoever answered",
			doc.Aggregate.Misses, liveEntry.Stats.Misses)
	}
	if len(doc.Router.Backends) != 2 {
		t.Errorf("router health view has %d backends, want 2", len(doc.Router.Backends))
	}
}

// TestProberEvictsAndRecovers runs the active membership state
// machine against a backend whose readiness flips: DOWN after
// FailThreshold failed probes, requests skipping it without retries,
// and UP again after RiseThreshold successes.
func TestProberEvictsAndRecovers(t *testing.T) {
	var notReady atomic.Bool
	flaky := web.NewServer(sched.Options{})
	flaky.Add(paperex.Nine())
	fts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && notReady.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		flaky.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(fts.Close)
	steady := newBackend(t)

	rt, err := New([]string{fts.URL, steady.URL}, Config{
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 2,
		RiseThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	state := func(url string) string {
		for _, h := range rt.Health() {
			if h.Backend == url {
				return h.State
			}
		}
		return "unknown"
	}
	waitState := func(url, want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if state(url) == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("backend %s never reached state %q (now %q)", url, want, state(url))
	}

	waitState(fts.URL, "up")
	waitState(steady.URL, "up")

	notReady.Store(true)
	waitState(fts.URL, "down")
	// While down, requests owned by the flaky backend are skipped in
	// rank order — served by the steady one with zero retries.
	pre := rt.Retries()
	for i := 0; i < 8; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/schedule?problem=nine-task-example&format=json&seed=%d", rts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d during eviction: status %d", i, resp.StatusCode)
		}
	}
	if got := rt.Retries(); got != pre {
		t.Errorf("retries grew %d -> %d while the down shard should be skipped at rank time", pre, got)
	}

	notReady.Store(false)
	waitState(fts.URL, "up")
	// /readyz reflects the tier: with one backend up it is ready.
	resp, err := http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("router /readyz with live backends: status %d", resp.StatusCode)
	}
}
