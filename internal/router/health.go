package router

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Config tunes a Router's failure-handling layer. The zero value keeps
// the router passive (no active prober, no hedging, one retry) so
// embedded uses — tests, single-shot tools — get the historical
// behaviour; cmd/router turns the active pieces on via flags.
type Config struct {
	// Client issues every proxied request. Nil selects one with a
	// 60-second serving-tier timeout.
	Client *http.Client

	// ProbeInterval is the period of the active health prober. Zero or
	// negative disables active probing: every backend is assumed UP and
	// only the per-backend circuit breakers react to forward failures.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 500ms). A probe
	// that times out counts as a failure, which is how a SIGSTOPped or
	// livelocked shard — reachable but unresponsive — gets evicted.
	ProbeTimeout time.Duration
	// ProbePath is the endpoint probed on each backend (default
	// "/readyz"). Readiness rather than liveness is what routing wants:
	// a draining shard flips /readyz to 503 while /healthz stays 200,
	// so the prober evicts it before its listener closes and its keys
	// re-route with zero failed requests.
	ProbePath string
	// FailThreshold is how many consecutive probe failures mark a
	// backend DOWN (default 3).
	FailThreshold int
	// RiseThreshold is how many consecutive probe successes mark a DOWN
	// backend UP again (default 2) — the half-open recovery gate that
	// keeps a flapping shard from rejoining on one lucky probe.
	RiseThreshold int

	// BreakerThreshold is how many consecutive forward transport errors
	// open a backend's circuit breaker (default 3). The breaker is the
	// passive complement of the prober: it reacts between probes, from
	// real traffic, and needs no prober to be running at all.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects sends before
	// going half-open (default 2s). In half-open state requests flow
	// again; the first success closes the breaker, the first failure
	// re-opens it for another cooldown.
	BreakerCooldown time.Duration

	// Retries is how many additional replicas a failed forward walks
	// down the rendezvous rank order (default 1, the historical
	// retry-once). Attempts after the first sleep a jittered
	// exponential backoff (RetryBackoff * 2^(attempt-1) * [0.5,1.5)).
	Retries int
	// RetryBackoff is the base backoff before a retry (default 10ms).
	// Negative disables sleeping entirely (tests).
	RetryBackoff time.Duration

	// HedgeAfter, when positive, arms tail hedging for body-less
	// forwards (GETs): if the first replica has not answered within
	// this duration the rank-next live replica is fired too and the
	// first success wins. The pipeline is deterministic, so both
	// answers are byte-identical and taking the earlier one is safe.
	HedgeAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.ProbePath == "" {
		c.ProbePath = "/readyz"
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RiseThreshold <= 0 {
		c.RiseThreshold = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	return c
}

// health is one backend's failure-tracking state: the prober's
// UP/DOWN verdict and the circuit breaker fed by forward outcomes.
// Both influence routing the same way — an unavailable backend is
// skipped in rank order, never re-ranked, so two routers with the same
// view still place keys identically.
type health struct {
	mu sync.Mutex

	// Prober state machine: UP --FailThreshold consecutive probe
	// failures--> DOWN --RiseThreshold consecutive successes--> UP.
	down       bool
	probeFails int
	probeOKs   int
	probed     bool   // at least one probe has completed
	lastErr    string // last probe failure, for /stats

	// Breaker state: consecutive forward transport errors; while
	// now < openUntil the breaker is open and sends are rejected.
	// After openUntil it is half-open: sends flow, one success closes
	// it, one failure re-opens it.
	consecErrs int
	openUntil  time.Time
}

// canSend reports whether forwards may use this backend right now.
func (h *health) canSend(now time.Time, breakerThreshold int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down {
		return false
	}
	if h.consecErrs >= breakerThreshold && now.Before(h.openUntil) {
		return false
	}
	return true
}

// recordForward feeds a forward outcome (transport success/failure)
// into the breaker.
func (h *health) recordForward(err error, threshold int, cooldown time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil {
		h.consecErrs = 0
		return
	}
	h.consecErrs++
	if h.consecErrs >= threshold {
		h.openUntil = time.Now().Add(cooldown)
	}
}

// recordProbe feeds one probe outcome into the membership state
// machine and reports whether the backend's UP/DOWN verdict flipped.
func (h *health) recordProbe(err error, fail, rise int) (flipped bool, nowDown bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.probed = true
	if err != nil {
		h.lastErr = err.Error()
		h.probeOKs = 0
		h.probeFails++
		if !h.down && h.probeFails >= fail {
			h.down = true
			return true, true
		}
		return false, h.down
	}
	h.lastErr = ""
	h.probeFails = 0
	h.probeOKs++
	if h.down && h.probeOKs >= rise {
		h.down = false
		// A recovered backend deserves a fresh breaker too: its old
		// consecutive-error streak belongs to the previous incarnation.
		h.consecErrs = 0
		return true, false
	}
	return false, h.down
}

// BackendHealth is one backend's health snapshot in the router's
// /stats document.
type BackendHealth struct {
	Backend string `json:"backend"`
	// State is "up", "down", or "unprobed" (prober disabled or no
	// probe completed yet; treated as up for routing).
	State string `json:"state"`
	// BreakerOpen reports the passive circuit breaker's verdict.
	BreakerOpen bool   `json:"breaker_open"`
	ProbeError  string `json:"probe_error,omitempty"`
}

// Health snapshots every backend's membership and breaker state, in
// configured order.
func (rt *Router) Health() []BackendHealth {
	now := time.Now()
	out := make([]BackendHealth, len(rt.backends))
	for i := range rt.backends {
		h := rt.health[i]
		h.mu.Lock()
		state := "unprobed"
		if h.probed {
			if h.down {
				state = "down"
			} else {
				state = "up"
			}
		}
		out[i] = BackendHealth{
			Backend:     rt.backends[i].name,
			State:       state,
			BreakerOpen: h.consecErrs >= rt.cfg.BreakerThreshold && now.Before(h.openUntil),
			ProbeError:  h.lastErr,
		}
		h.mu.Unlock()
	}
	return out
}

// probeLoop runs the active prober for one backend until the router is
// closed. Each tick issues GET <backend><ProbePath> under ProbeTimeout;
// any transport error or non-200 status is a failure.
func (rt *Router) probeLoop(idx int) {
	defer rt.probeWG.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-t.C:
			rt.probeOnce(idx)
		}
	}
}

// probeOnce issues a single health probe against backend idx and feeds
// the result into its state machine. Split out so tests can drive the
// membership machine deterministically without a ticker.
func (rt *Router) probeOnce(idx int) {
	b := rt.backends[idx]
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	u := *b.url
	u.Path = strings.TrimSuffix(u.Path, "/") + rt.cfg.ProbePath
	err := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
		if err != nil {
			return err
		}
		resp, err := rt.probeClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("probe status %d", resp.StatusCode)
		}
		return nil
	}()
	if flipped, nowDown := rt.health[idx].recordProbe(err, rt.cfg.FailThreshold, rt.cfg.RiseThreshold); flipped {
		if nowDown {
			rt.transitions.Add(1)
		} else {
			rt.transitions.Add(1)
			rt.recoveries.Add(1)
		}
	}
}

// liveOrder filters a rank order down to the backends that are
// currently sendable, preserving rank order (that preservation is what
// keeps two routers with the same health view placing keys
// identically). When every backend looks dead the full order is
// returned instead: with nothing to lose, trying beats failing fast,
// and an all-down verdict is more often a router-side network blip
// than a whole-tier outage.
func (rt *Router) liveOrder(order []int) []int {
	now := time.Now()
	out := make([]int, 0, len(order))
	for _, idx := range order {
		if rt.health[idx].canSend(now, rt.cfg.BreakerThreshold) {
			out = append(out, idx)
		}
	}
	if len(out) == 0 {
		return order
	}
	return out
}

// backoffSleep sleeps the jittered exponential backoff before retry
// attempt n (1-based), honouring context cancellation. The jitter
// decorrelates replica storms after a shard death; it perturbs only
// timing, never results, so determinism of responses is untouched.
func (rt *Router) backoffSleep(ctx context.Context, attempt int) {
	if rt.cfg.RetryBackoff <= 0 {
		return
	}
	d := rt.cfg.RetryBackoff << (attempt - 1)
	if max := 2 * time.Second; d > max {
		d = max
	}
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}
