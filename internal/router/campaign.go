package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/web"
)

// campaign shards POST /simulate/campaign: an inline-spec campaign
// over the full run range is split into contiguous seed sub-ranges,
// one per live backend in the spec's rendezvous rank order, executed
// concurrently with Partial=true, and the returned reducers are merged
// in range order and finalized locally. Reducer folding is
// integer-exact, so the merged summary is byte-identical to one
// backend running the whole campaign — sharding is purely a
// wall-clock win, never a statistics change.
//
// Everything else is forwarded whole to a single shard: name-addressed
// campaigns (only the owner and its replica registered the problem, so
// a fan-out would 404), explicit sub-range or Partial requests (the
// caller is already a coordinator), campaigns too small to split, and
// documents the router cannot confidently decode (the owner of their
// key produces the canonical error bytes).
func (rt *Router) campaign(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	req, key, shardable := splitCampaign(body)
	live := rt.liveOrder(rt.rank(key))
	if !shardable || len(live) < 2 {
		rt.forward(w, r, key, body)
		return
	}

	// Contiguous sub-ranges in rank order: chunk i runs [lo_i, hi_i).
	// Ascending order here is what lets the merge below just fold
	// left-to-right.
	chunks := len(live)
	if chunks > req.Runs {
		chunks = req.Runs
	}
	type chunk struct {
		lo, hi int
	}
	parts := make([]chunk, chunks)
	base, rem := req.Runs/chunks, req.Runs%chunks
	lo := 0
	for i := range parts {
		hi := lo + base
		if i < rem {
			hi++
		}
		parts[i] = chunk{lo: lo, hi: hi}
		lo = hi
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		reds = make([]*sim.Reducer, chunks)
		errs = make([]error, chunks)
	)
	run := func(i, b int) {
		defer wg.Done()
		red, err := rt.sendCampaignChunk(r, b, req, parts[i].lo, parts[i].hi)
		mu.Lock()
		reds[i], errs[i] = red, err
		mu.Unlock()
	}
	for i := range parts {
		wg.Add(1)
		go run(i, live[i])
	}
	wg.Wait()

	// One retry per failed chunk, on the next live replica after the
	// one that failed it (with a single survivor that is a plain
	// resend). Ranges are disjoint, so a retried chunk can never
	// double-count a run.
	for i := range parts {
		if errs[i] == nil {
			continue
		}
		next := live[(i+1)%len(live)]
		rt.retries.Add(1)
		wg.Add(1)
		go run(i, next)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			writeError(w, http.StatusBadGateway, "campaign shard failed: "+err.Error())
			return
		}
	}
	merged := reds[0]
	for i := 1; i < chunks; i++ {
		merged.Merge(reds[i])
	}
	data, err := merged.Finalize(req.Seed).JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// splitCampaign decodes a campaign document and decides how to route
// it. shardable=true means the request is an inline-spec, full-range,
// non-partial campaign the router may fan out; otherwise it must be
// forwarded whole under key (empty when the document is malformed —
// some deterministic backend then produces the canonical error).
func splitCampaign(body []byte) (req web.CampaignRequest, key string, shardable bool) {
	if len(body) > maxBatchBytes {
		return req, "", false
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, "", false
	}
	switch {
	case req.Problem != "" && req.Spec == "":
		return req, "name/" + req.Problem, false
	case req.Spec != "" && req.Problem == "" && len(req.Spec) <= maxSpecBytes:
		p, err := spec.ParseString(req.Spec)
		if err != nil {
			return req, "", false
		}
		key = "fp/" + p.Fingerprint()
	default:
		return req, "", false
	}
	fullRange := req.Lo == 0 && (req.Hi == 0 || req.Hi == req.Runs)
	if req.Partial || !fullRange || req.Runs < 2 {
		return req, key, false
	}
	return req, key, true
}

// sendCampaignChunk posts one sub-range of the campaign to backend b
// with Partial=true and returns the rebuilt reducer.
func (rt *Router) sendCampaignChunk(r *http.Request, b int, req web.CampaignRequest, lo, hi int) (*sim.Reducer, error) {
	sub := web.CampaignRequest{
		Spec:    req.Spec,
		Runs:    req.Runs,
		Seed:    req.Seed,
		Faults:  req.Faults,
		Lo:      lo,
		Hi:      hi,
		Partial: true,
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	be := rt.backends[b]
	u := *be.url
	u.Path = strings.TrimSuffix(u.Path, "/") + "/simulate/campaign"
	httpReq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(httpReq)
	// Transport outcome only: a non-200 below is a backend answer, not
	// a reachability signal.
	rt.health[b].recordForward(err, rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("backend %s: status %d: %s", be.name, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var part web.CampaignPartial
	if err := json.NewDecoder(resp.Body).Decode(&part); err != nil {
		return nil, fmt.Errorf("backend %s: %v", be.name, err)
	}
	if part.Lo != lo || part.Hi != hi {
		return nil, fmt.Errorf("backend %s: range [%d, %d) back for [%d, %d) sent", be.name, part.Lo, part.Hi, lo, hi)
	}
	return sim.ReducerFromWire(part.Reducer), nil
}
