// Package router is the thin serving-tier front: it spreads requests
// over N backend serve processes by consistent hashing of each
// request's content address, so every shard's caches (in-memory L1,
// persistent L2) see a stable slice of the key space and cache hits
// stay network-local.
//
// # Why rendezvous hashing
//
// The shard function is rendezvous (highest-random-weight) hashing:
// for a key k, every backend b gets the score
// SHA-256(b || 0x00 || k) and the highest score owns the key; the
// runner-up is the retry replica. Compared to a ring with virtual
// nodes, rendezvous needs no vnode-count tuning to reach uniform
// balance (every (backend, key) pair is an independent draw), has no
// state to persist or rebuild — the backend list is the whole
// configuration, so every router instance computes identical
// placements — and losing a backend remaps exactly the keys it owned,
// like a ring. Its O(N) score scan per lookup is irrelevant at
// serving-tier fan-outs (N is single-digit to low double-digit).
//
// The backends need no coordination layer on top: the scheduling
// pipeline is deterministic, so two shards given the same request
// compute byte-identical results. Routing is therefore purely an
// efficiency concern (cache locality), never a correctness one — a
// misrouted or failed-over request costs a cold compute, not a wrong
// answer.
//
// Routing keys: requests that name a registered problem
// (GET /schedule, GET /simulate, POST /problems, POST /verify) hash
// "name/<problem>"; batch items carrying an inline spec hash
// "fp/<Problem.Fingerprint()>", the same content address the backend
// caches under. Unroutable inputs (malformed documents, missing
// parameters) hash the empty key so some deterministic backend
// produces the canonical error response.
package router

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/spec"
	"repro/internal/web"
)

// Bounds mirrored from the backend contract (internal/web): the
// router enforces the same byte limits before buffering bodies.
const (
	maxSpecBytes  = 1 << 20
	maxBatchBytes = 8 << 20
	maxBatchItems = 256
)

// Router fans requests out to a fixed set of backend serve processes.
// Create one with New.
type Router struct {
	backends []backend
	client   *http.Client
	retries  atomic.Int64
}

type backend struct {
	name string // scoring identity: the normalized URL string
	url  *url.URL
}

// New creates a router over the given backend base URLs (e.g.
// "http://127.0.0.1:8081"). A nil client selects one with sane
// serving-tier timeouts.
func New(backendURLs []string, client *http.Client) (*Router, error) {
	if len(backendURLs) == 0 {
		return nil, fmt.Errorf("router: no backends")
	}
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	rt := &Router{client: client}
	seen := make(map[string]bool)
	for _, raw := range backendURLs {
		raw = strings.TrimSuffix(strings.TrimSpace(raw), "/")
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: bad backend url %q", raw)
		}
		if seen[raw] {
			return nil, fmt.Errorf("router: duplicate backend %q", raw)
		}
		seen[raw] = true
		rt.backends = append(rt.backends, backend{name: raw, url: u})
	}
	if len(rt.backends) == 0 {
		return nil, fmt.Errorf("router: no backends")
	}
	return rt, nil
}

// Retries reports how many requests were retried against a second
// replica after their primary backend failed.
func (rt *Router) Retries() int64 { return rt.retries.Load() }

// rank returns backend indices ordered by rendezvous score for key,
// highest first: rank[0] is the owner, rank[1] the retry replica.
func (rt *Router) rank(key string) []int {
	type scored struct {
		score uint64
		idx   int
	}
	ss := make([]scored, len(rt.backends))
	for i, b := range rt.backends {
		h := sha256.New()
		io.WriteString(h, b.name)
		h.Write([]byte{0})
		io.WriteString(h, key)
		ss[i] = scored{score: binary.BigEndian.Uint64(h.Sum(nil)[:8]), idx: i}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].idx < ss[b].idx
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

// Handler returns the router's HTTP handler:
//
//	GET  /                 backend roster (HTML)
//	GET  /schedule         forwarded to the problem's shard
//	GET  /simulate         forwarded to the problem's shard
//	POST /problems         forwarded to the shard owning the spec's name
//	POST /verify           forwarded likewise
//	POST /schedule/batch   split per item across shards, one sub-batch
//	                       per shard, responses stitched in order
//	GET  /stats            every shard's stats plus a summed aggregate
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", rt.index)
	mux.HandleFunc("GET /schedule", rt.byProblem)
	mux.HandleFunc("GET /simulate", rt.byProblem)
	mux.HandleFunc("POST /problems", rt.bySpecName)
	mux.HandleFunc("POST /verify", rt.bySpecName)
	mux.HandleFunc("POST /schedule/batch", rt.batch)
	mux.HandleFunc("GET /stats", rt.stats)
	return mux
}

func (rt *Router) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<html><head><title>impacct router</title></head><body><h1>Serving tier</h1><ul>")
	for _, b := range rt.backends {
		fmt.Fprintf(w, "<li>%s</li>", html.EscapeString(b.name))
	}
	fmt.Fprint(w, `</ul><p><a href="/stats">aggregated stats</a></p></body></html>`)
}

// byProblem routes name-addressed GET endpoints.
func (rt *Router) byProblem(w http.ResponseWriter, r *http.Request) {
	key := ""
	if name := r.URL.Query().Get("problem"); name != "" {
		key = "name/" + name
	}
	rt.forward(w, r, key, nil)
}

// bySpecName routes spec-carrying POST endpoints by the problem name
// inside the document, so a follow-up GET /schedule?problem=<name>
// lands on the shard that registered it.
func (rt *Router) bySpecName(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	key := ""
	if len(body) <= maxSpecBytes {
		if p, err := spec.Parse(bytes.NewReader(body)); err == nil && p.Name != "" {
			key = "name/" + p.Name
		}
	}
	// Oversized or unparseable bodies still forward (key ""): the
	// owner of the empty key produces the canonical 413/400 bytes.
	rt.forward(w, r, key, body)
}

// forward proxies one request to the key's owning backend, retrying
// exactly once against the next replica if the owner is unreachable
// (transport error — an HTTP response of any status is a backend
// answer, not a backend failure, and is relayed as-is). body is the
// pre-read request body for POSTs (nil = no body).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	order := rt.rank(key)
	if len(order) > 2 {
		order = order[:2]
	}
	var lastErr error
	for attempt, idx := range order {
		if attempt > 0 {
			rt.retries.Add(1)
		}
		resp, err := rt.send(r, rt.backends[idx], body)
		if err != nil {
			if r.Context().Err() != nil {
				writeError(w, web.StatusClientClosedRequest, "client closed request")
				return
			}
			lastErr = err
			continue
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
		return
	}
	writeError(w, http.StatusBadGateway, fmt.Sprintf("all replicas failed: %v", lastErr))
}

// send issues one proxied request.
func (rt *Router) send(r *http.Request, b backend, body []byte) (*http.Response, error) {
	u := *b.url
	u.Path = strings.TrimSuffix(u.Path, "/") + r.URL.Path
	u.RawQuery = r.URL.RawQuery
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), rd)
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.client.Do(req)
}

// copyResponse relays a backend response verbatim (status, entity
// headers, body bytes).
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // headers already sent
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck // headers already sent
}
