// Package router is the thin serving-tier front: it spreads requests
// over N backend serve processes by consistent hashing of each
// request's content address, so every shard's caches (in-memory L1,
// persistent L2) see a stable slice of the key space and cache hits
// stay network-local.
//
// # Why rendezvous hashing
//
// The shard function is rendezvous (highest-random-weight) hashing:
// for a key k, every backend b gets the score
// SHA-256(b || 0x00 || k) and the highest score owns the key; the
// runner-up is the retry replica. Compared to a ring with virtual
// nodes, rendezvous needs no vnode-count tuning to reach uniform
// balance (every (backend, key) pair is an independent draw), has no
// state to persist or rebuild — the backend list is the whole
// configuration, so every router instance computes identical
// placements — and losing a backend remaps exactly the keys it owned,
// like a ring. Its O(N) score scan per lookup is irrelevant at
// serving-tier fan-outs (N is single-digit to low double-digit).
//
// The backends need no coordination layer on top: the scheduling
// pipeline is deterministic, so two shards given the same request
// compute byte-identical results. Routing is therefore purely an
// efficiency concern (cache locality), never a correctness one — a
// misrouted or failed-over request costs a cold compute, not a wrong
// answer.
//
// # Failure-aware membership
//
// On top of the static configured set the router maintains a live
// view: an active health prober (Config.ProbeInterval) walks each
// backend's readiness endpoint and a consecutive-failure /
// consecutive-success state machine marks backends DOWN and UP, while
// per-backend circuit breakers react to forward transport errors
// between probes. Ranking is always computed over the full configured
// set and unavailable backends are *skipped in rank order* — never
// re-ranked — so any two routers sharing a health view place keys
// identically, and a recovered backend slots back into exactly the
// keys it owned. Retries walk the live rank order under jittered
// exponential backoff; optional tail hedging (Config.HedgeAfter)
// races the rank-next replica against a slow owner and takes the
// first answer, which determinism guarantees is byte-identical to the
// one it raced. A forward that lands on a non-owner (failover, hedge,
// or a DOWN owner skipped at rank time) carries the owner's base URL
// in the X-Handoff-Owner header, so the answering shard can ship the
// computed record to the owner asynchronously — hinted handoff
// without a coordinator (see internal/web).
//
// Routing keys: requests that name a registered problem
// (GET /schedule, GET /simulate, POST /problems, POST /verify) hash
// "name/<problem>"; batch items carrying an inline spec hash
// "fp/<Problem.Fingerprint()>", the same content address the backend
// caches under. Unroutable inputs (malformed documents, missing
// parameters) hash the empty key so some deterministic backend
// produces the canonical error response.
package router

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spec"
	"repro/internal/web"
)

// Bounds mirrored from the backend contract (internal/web): the
// router enforces the same byte limits before buffering bodies.
const (
	maxSpecBytes  = 1 << 20
	maxBatchBytes = 8 << 20
	maxBatchItems = 256
)

// Router fans requests out to a fixed configured set of backend serve
// processes, tracking each backend's health to skip dead or draining
// shards. Create one with New; Close stops the prober.
type Router struct {
	backends []backend
	health   []*health
	cfg      Config
	client   *http.Client
	// probeClient issues health probes; separate from client so the
	// per-probe timeout (short) never fights the forward timeout
	// (long).
	probeClient *http.Client

	retries     atomic.Int64 // forwards retried on another replica
	hedges      atomic.Int64 // hedge requests fired
	transitions atomic.Int64 // UP<->DOWN membership flips
	recoveries  atomic.Int64 // DOWN->UP flips (subset of transitions)

	probeStop chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

type backend struct {
	name string // scoring identity: the normalized URL string
	url  *url.URL
}

// New creates a router over the given backend base URLs (e.g.
// "http://127.0.0.1:8081"). The zero Config keeps the router passive:
// no active prober, breakers only, one retry, no hedging.
func New(backendURLs []string, cfg Config) (*Router, error) {
	if len(backendURLs) == 0 {
		return nil, fmt.Errorf("router: no backends")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:         cfg,
		client:      cfg.Client,
		probeClient: &http.Client{Timeout: cfg.ProbeTimeout},
		probeStop:   make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, raw := range backendURLs {
		raw = strings.TrimSuffix(strings.TrimSpace(raw), "/")
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: bad backend url %q", raw)
		}
		if seen[raw] {
			return nil, fmt.Errorf("router: duplicate backend %q", raw)
		}
		seen[raw] = true
		rt.backends = append(rt.backends, backend{name: raw, url: u})
		rt.health = append(rt.health, &health{})
	}
	if len(rt.backends) == 0 {
		return nil, fmt.Errorf("router: no backends")
	}
	if cfg.ProbeInterval > 0 {
		for i := range rt.backends {
			rt.probeWG.Add(1)
			go rt.probeLoop(i)
		}
	}
	return rt, nil
}

// Close stops the active prober (if running). The router keeps
// forwarding afterwards; Close exists for orderly shutdown and tests.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.probeStop) })
	rt.probeWG.Wait()
}

// Retries reports how many requests were retried against another
// replica after a backend failed.
func (rt *Router) Retries() int64 { return rt.retries.Load() }

// Hedges reports how many hedge requests were fired against the
// rank-next replica of a slow owner.
func (rt *Router) Hedges() int64 { return rt.hedges.Load() }

// rank returns backend indices ordered by rendezvous score for key,
// highest first: rank[0] is the owner, rank[1] the retry replica. The
// order is always computed over the full configured set; health is
// applied by *skipping* entries afterwards (liveOrder), never by
// re-ranking, so placement agrees across routers and across time.
func (rt *Router) rank(key string) []int {
	type scored struct {
		score uint64
		idx   int
	}
	ss := make([]scored, len(rt.backends))
	for i, b := range rt.backends {
		h := sha256.New()
		io.WriteString(h, b.name)
		h.Write([]byte{0})
		io.WriteString(h, key)
		ss[i] = scored{score: binary.BigEndian.Uint64(h.Sum(nil)[:8]), idx: i}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].idx < ss[b].idx
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

// Handler returns the router's HTTP handler:
//
//	GET  /                 backend roster (HTML)
//	GET  /healthz          router process liveness (always 200)
//	GET  /readyz           readiness: 200 while at least one backend
//	                       is believed live, 503 otherwise
//	GET  /schedule         forwarded to the problem's shard
//	GET  /simulate         forwarded to the problem's shard
//	POST /problems         forwarded to the shard owning the spec's
//	                       name, then replicated to the runner-up so
//	                       failover finds the registration
//	POST /verify           forwarded to the owning shard
//	POST /schedule/batch   split per item across shards, one sub-batch
//	                       per shard, responses stitched in order
//	POST /simulate/campaign
//	                       inline-spec campaigns split into contiguous
//	                       seed sub-ranges across shards, reducers
//	                       merged in range order (byte-identical to a
//	                       single shard); everything else forwarded
//	GET  /stats            every shard's stats plus a summed
//	                       aggregate and the router's own health view
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", rt.index)
	mux.HandleFunc("GET /healthz", rt.healthz)
	mux.HandleFunc("GET /readyz", rt.readyz)
	mux.HandleFunc("GET /schedule", rt.byProblem)
	mux.HandleFunc("GET /simulate", rt.byProblem)
	mux.HandleFunc("POST /problems", rt.bySpecName)
	mux.HandleFunc("POST /verify", rt.byVerify)
	mux.HandleFunc("POST /schedule/batch", rt.batch)
	mux.HandleFunc("POST /simulate/campaign", rt.campaign)
	mux.HandleFunc("GET /stats", rt.stats)
	return mux
}

func (rt *Router) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<html><head><title>impacct router</title></head><body><h1>Serving tier</h1><ul>")
	for _, b := range rt.backends {
		fmt.Fprintf(w, "<li>%s</li>", html.EscapeString(b.name))
	}
	fmt.Fprint(w, `</ul><p><a href="/stats">aggregated stats</a></p></body></html>`)
}

// healthz is process liveness: if this handler runs, the router runs.
func (rt *Router) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// readyz is tier readiness: 200 while at least one backend is
// believed sendable, 503 when the whole tier looks down (a load
// balancer in front of several routers can then prefer a healthier
// one).
func (rt *Router) readyz(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	for i := range rt.backends {
		if rt.health[i].canSend(now, rt.cfg.BreakerThreshold) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, "ready\n")
			return
		}
	}
	writeError(w, http.StatusServiceUnavailable, "no live backends")
}

// byProblem routes name-addressed GET endpoints.
func (rt *Router) byProblem(w http.ResponseWriter, r *http.Request) {
	key := ""
	if name := r.URL.Query().Get("problem"); name != "" {
		key = "name/" + name
	}
	rt.forward(w, r, key, nil)
}

// bySpecName routes spec-carrying POST endpoints by the problem name
// inside the document, so a follow-up GET /schedule?problem=<name>
// lands on the shard that registered it. Successful registrations are
// additionally replicated to the rank-next replica: registration is
// in-memory per shard, so without the copy a failover for the name
// would 404 on the runner-up exactly when the owner is down — the
// moment it is needed.
func (rt *Router) bySpecName(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	key := ""
	if len(body) <= maxSpecBytes {
		if p, err := spec.Parse(bytes.NewReader(body)); err == nil && p.Name != "" {
			key = "name/" + p.Name
		}
	}
	// Oversized or unparseable bodies still forward (key ""): the
	// owner of the empty key produces the canonical 413/400 bytes.
	status := rt.forward(w, r, key, body)
	if key != "" && status >= 200 && status < 300 {
		rt.replicateRegistration(r, key, body)
	}
}

// byVerify routes POST /verify by the spec's name. Verification is
// stateless, so no replication is needed.
func (rt *Router) byVerify(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	key := ""
	if len(body) <= maxSpecBytes {
		if p, err := spec.Parse(bytes.NewReader(body)); err == nil && p.Name != "" {
			key = "name/" + p.Name
		}
	}
	rt.forward(w, r, key, body)
}

// replicateRegistration best-effort copies a successful registration
// body to the rank-next replica (skipping whoever just answered).
// Registration is idempotent and deterministic, so the copy needs no
// acknowledgement protocol; a failed copy costs only a 404 on a later
// failover, which the client can retry after re-registering.
func (rt *Router) replicateRegistration(r *http.Request, key string, body []byte) {
	order := rt.rank(key)
	if len(order) < 2 {
		return
	}
	// The owner answered (or its stand-in did); copy to the first
	// other live backend in rank order.
	live := rt.liveOrder(order)
	target := -1
	for _, idx := range live {
		if idx != live[0] {
			target = idx
			break
		}
	}
	if target < 0 {
		return
	}
	req, err := http.NewRequestWithContext(context.WithoutCancel(r.Context()),
		http.MethodPost, rt.backendURL(target, r.URL.Path, ""), bytes.NewReader(body))
	if err != nil {
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort replica copy
	resp.Body.Close()
}

// backendURL builds the proxied URL for backend idx.
func (rt *Router) backendURL(idx int, path, rawQuery string) string {
	u := *rt.backends[idx].url
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = rawQuery
	return u.String()
}

// forward proxies one request along the key's live rank order:
// the first sendable replica is tried, transport failures walk to the
// next one under jittered exponential backoff (an HTTP response of
// any status is a backend answer, not a backend failure, and is
// relayed as-is), and — for body-less requests with hedging armed — a
// slow owner is raced against the rank-next replica. body is the
// pre-read request body for POSTs (nil = no body). Returns the status
// relayed to the client (0 if the client went away).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) int {
	order := rt.rank(key)
	owner := order[0]
	cands := rt.liveOrder(order)
	if n := rt.cfg.Retries + 1; len(cands) > n {
		cands = cands[:n]
	}
	if rt.cfg.HedgeAfter > 0 && body == nil && len(cands) > 1 {
		return rt.forwardHedged(w, r, cands, owner)
	}
	var lastErr error
	for attempt, idx := range cands {
		if attempt > 0 {
			rt.retries.Add(1)
			rt.backoffSleep(r.Context(), attempt)
		}
		resp, err := rt.send(r.Context(), r, idx, owner, body)
		rt.health[idx].recordForward(err, rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
		if err != nil {
			if r.Context().Err() != nil {
				writeError(w, web.StatusClientClosedRequest, "client closed request")
				return 0
			}
			lastErr = err
			continue
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
		return resp.StatusCode
	}
	writeError(w, http.StatusBadGateway, fmt.Sprintf("all replicas failed: %v", lastErr))
	return http.StatusBadGateway
}

// forwardHedged races the first candidate against later ones: each
// time HedgeAfter elapses without an answer the next replica is fired
// too, and the first transport-level success wins. Determinism makes
// the race safe — every replica computes byte-identical bytes for the
// same request — so hedging bounds tail latency without a consistency
// protocol. Losers are canceled and drained in the background.
func (rt *Router) forwardHedged(w http.ResponseWriter, r *http.Request, cands []int, owner int) int {
	ctx, cancel := context.WithCancel(r.Context())
	type answer struct {
		resp *http.Response
		err  error
		idx  int
	}
	ch := make(chan answer, len(cands))
	launch := func(idx int) {
		resp, err := rt.send(ctx, r, idx, owner, nil)
		ch <- answer{resp: resp, err: err, idx: idx}
	}
	inflight := 1
	launched := 1
	go launch(cands[0])
	timer := time.NewTimer(rt.cfg.HedgeAfter)
	defer timer.Stop()

	// finish cancels the losers and drains their answers off the
	// buffered channel so response bodies are closed promptly.
	finish := func(pending int) {
		cancel()
		if pending > 0 {
			go func() {
				for i := 0; i < pending; i++ {
					if a := <-ch; a.resp != nil {
						a.resp.Body.Close()
					}
				}
			}()
		}
	}

	var lastErr error
	for {
		select {
		case <-timer.C:
			if launched < len(cands) {
				rt.hedges.Add(1)
				go launch(cands[launched])
				launched++
				inflight++
				timer.Reset(rt.cfg.HedgeAfter)
			}
		case a := <-ch:
			inflight--
			rt.health[a.idx].recordForward(a.err, rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
			if a.err == nil {
				status := a.resp.StatusCode
				copyResponse(w, a.resp)
				a.resp.Body.Close()
				finish(inflight)
				return status
			}
			if r.Context().Err() != nil {
				finish(inflight)
				writeError(w, web.StatusClientClosedRequest, "client closed request")
				return 0
			}
			lastErr = a.err
			if inflight == 0 {
				if launched < len(cands) {
					// Every fired attempt failed fast; fall through to the
					// next replica immediately (this is a retry, not a hedge).
					rt.retries.Add(1)
					go launch(cands[launched])
					launched++
					inflight++
					continue
				}
				finish(0)
				writeError(w, http.StatusBadGateway, fmt.Sprintf("all replicas failed: %v", lastErr))
				return http.StatusBadGateway
			}
		}
	}
}

// send issues one proxied request to backend idx. A forward landing on
// a non-owner (failover, hedge, or a DOWN owner skipped at rank time)
// carries the owner's base URL in X-Handoff-Owner so the answering
// backend can ship the owner its record (hinted handoff).
func (rt *Router) send(ctx context.Context, r *http.Request, idx, owner int, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, rt.backendURL(idx, r.URL.Path, r.URL.RawQuery), rd)
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if idx != owner {
		req.Header.Set(web.HandoffOwnerHeader, rt.backends[owner].name)
	}
	return rt.client.Do(req)
}

// copyResponse relays a backend response verbatim (status, entity
// headers, body bytes).
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // headers already sent
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck // headers already sent
}
