package router

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/web"
)

func campaignDoc(t *testing.T, req web.CampaignRequest) string {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestCampaignDifferentialSingleVsSharded extends the serving tier's
// differential guarantee to POST /simulate/campaign: a router over
// three shards — fanning inline-spec campaigns out as contiguous
// seed sub-ranges and merging the partial reducers — answers the
// whole campaign surface byte-identically to one single-process
// server. That includes name-addressed campaigns (forwarded whole to
// the owner), partial sub-range requests (coordinator passthrough),
// and the error contract.
func TestCampaignDifferentialSingleVsSharded(t *testing.T) {
	hetero := heteroSpec()
	stream := []wireReq{
		{http.MethodPost, "/problems", hetero},
		// Inline spec, full range: the router shards this one.
		{http.MethodPost, "/simulate/campaign", campaignDoc(t, web.CampaignRequest{Spec: hetero, Runs: 30, Seed: 9})},
		// Name-addressed: forwarded whole to the registered owner.
		{http.MethodPost, "/simulate/campaign", campaignDoc(t, web.CampaignRequest{Problem: "nine-hetero", Runs: 30, Seed: 9})},
		{http.MethodPost, "/simulate/campaign", campaignDoc(t, web.CampaignRequest{Problem: "nine-task-example", Runs: 16, Seed: 4, Faults: "none"})},
		// Partial sub-range: the caller is a coordinator; passthrough.
		{http.MethodPost, "/simulate/campaign", campaignDoc(t, web.CampaignRequest{Spec: hetero, Runs: 10, Seed: 3, Lo: 0, Hi: 5, Partial: true})},
		// Error contract: canonical backend bytes through the router.
		{http.MethodPost, "/simulate/campaign", campaignDoc(t, web.CampaignRequest{Spec: hetero, Runs: 0, Seed: 1})},
		{http.MethodPost, "/simulate/campaign", campaignDoc(t, web.CampaignRequest{Problem: "no-such-problem", Runs: 4, Seed: 1})},
		{http.MethodPost, "/simulate/campaign", campaignDoc(t, web.CampaignRequest{Problem: "nine-hetero", Spec: hetero, Runs: 4, Seed: 1})},
		{http.MethodPost, "/simulate/campaign", campaignDoc(t, web.CampaignRequest{Spec: hetero, Runs: 10, Seed: 1, Lo: 2, Hi: 6})},
		{http.MethodPost, "/simulate/campaign", "not json"},
	}

	single := newBackend(t)
	want := play(t, single.URL, stream)

	b1, b2, b3 := newBackend(t), newBackend(t), newBackend(t)
	_, rts := newRouterServer(t, b1.URL, b2.URL, b3.URL)
	got := play(t, rts.URL, stream)

	for i := range stream {
		if want[i] != got[i] {
			t.Errorf("request %d (%s %s): sharded response differs from single process:\n--- single\n%s\n--- sharded\n%s",
				i, stream[i].method, stream[i].path, want[i], got[i])
		}
	}
}

// TestSplitCampaign pins the router's shard-or-forward decisions.
func TestSplitCampaign(t *testing.T) {
	spec := heteroSpec()
	mustDoc := func(req web.CampaignRequest) []byte {
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name      string
		body      []byte
		wantKey   string
		shardable bool
	}{
		{"name-routed", mustDoc(web.CampaignRequest{Problem: "p", Runs: 10}), "name/p", false},
		{"inline full range", mustDoc(web.CampaignRequest{Spec: spec, Runs: 10, Seed: 1}), "", true},
		{"inline explicit hi", mustDoc(web.CampaignRequest{Spec: spec, Runs: 10, Hi: 10}), "", true},
		{"partial", mustDoc(web.CampaignRequest{Spec: spec, Runs: 10, Partial: true}), "", false},
		{"sub-range", mustDoc(web.CampaignRequest{Spec: spec, Runs: 10, Lo: 2, Hi: 6}), "", false},
		{"single run", mustDoc(web.CampaignRequest{Spec: spec, Runs: 1}), "", false},
		{"both set", mustDoc(web.CampaignRequest{Problem: "p", Spec: spec, Runs: 10}), "", false},
		{"neither set", mustDoc(web.CampaignRequest{Runs: 10}), "", false},
		{"bad spec", mustDoc(web.CampaignRequest{Spec: "task bogus", Runs: 10}), "", false},
		{"malformed", []byte("not json"), "", false},
	}
	for _, tc := range cases {
		_, key, shardable := splitCampaign(tc.body)
		if shardable != tc.shardable {
			t.Errorf("%s: shardable = %v, want %v", tc.name, shardable, tc.shardable)
		}
		if tc.wantKey != "" && key != tc.wantKey {
			t.Errorf("%s: key = %q, want %q", tc.name, key, tc.wantKey)
		}
		if tc.shardable && key == "" {
			t.Errorf("%s: shardable request must carry a non-empty key", tc.name)
		}
	}
}
