package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/spec"
	"repro/internal/web"
)

// rawBatch is the wire shape of POST /schedule/batch with the items
// left opaque, so the router can regroup them across shards without
// re-encoding anything a backend will parse.
type rawBatch struct {
	Items []json.RawMessage `json:"items"`
}

// batch splits POST /schedule/batch across shards: each item routes by
// its content address, one sub-batch flies to each owning backend
// concurrently, and the per-item responses are stitched back in
// request order. Because every backend computes deterministically, the
// stitched document is byte-identical to what a single process would
// have produced for the whole batch.
//
// Anything the router cannot confidently split — oversized or
// malformed documents, empty or over-long item lists, items that do
// not decode — is forwarded whole to the empty-key owner instead:
// determinism makes that merely a load-balancing miss, and
// document-level errors come back as the canonical backend bytes.
func (rt *Router) batch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	items, keys, ok := splitBatch(body)
	if !ok {
		rt.forward(w, r, "", body)
		return
	}

	// Group items by the first *live* backend in their rank order:
	// rank is computed over the full configured set and DOWN backends
	// are skipped, not re-ranked, so the grouping agrees with every
	// other router sharing this health view.
	groups := make(map[int][]int)
	owners := make([]int, len(keys))
	for i, k := range keys {
		owner := rt.liveOrder(rt.rank(k))[0]
		owners[i] = owner
		groups[owner] = append(groups[owner], i)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		failed  []int
		results = make([]json.RawMessage, len(items))
	)
	run := func(b int, idxs []int, retry bool) {
		defer wg.Done()
		if retry {
			rt.retries.Add(1)
		}
		got, err := rt.sendSubBatch(r, b, items, idxs)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if !retry {
				failed = append(failed, idxs...)
				return
			}
			for _, i := range idxs {
				results[i] = errorItem(err)
			}
			return
		}
		for j, i := range idxs {
			results[i] = got[j]
		}
	}
	for b, idxs := range groups {
		wg.Add(1)
		go run(b, idxs, false)
	}
	wg.Wait()

	if len(failed) > 0 {
		// One retry: regroup each failed item onto the next live replica
		// after the one that just failed it. With a single backend that
		// replica is the owner again, which doubles as a plain resend.
		retryGroups := make(map[int][]int)
		for _, i := range failed {
			live := rt.liveOrder(rt.rank(keys[i]))
			next := live[0]
			for _, idx := range live {
				if idx != owners[i] {
					next = idx
					break
				}
			}
			retryGroups[next] = append(retryGroups[next], i)
		}
		for b, idxs := range retryGroups {
			wg.Add(1)
			go run(b, idxs, true)
		}
		wg.Wait()
	}

	data, err := json.Marshal(rawBatch{Items: results})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// splitBatch decodes a batch document into routable items. ok=false
// means the router should not split — the document is out of bounds or
// would not survive a round-trip through the router's decoder — and
// must instead be forwarded whole.
func splitBatch(body []byte) (items []json.RawMessage, keys []string, ok bool) {
	if len(body) > maxBatchBytes {
		return nil, nil, false
	}
	var doc rawBatch
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, nil, false
	}
	if len(doc.Items) == 0 || len(doc.Items) > maxBatchItems {
		return nil, nil, false
	}
	keys = make([]string, len(doc.Items))
	for i, raw := range doc.Items {
		var it web.BatchItem
		if err := json.Unmarshal(raw, &it); err != nil {
			return nil, nil, false
		}
		keys[i] = itemKey(it)
	}
	return doc.Items, keys, true
}

// itemKey is an item's routing key: registered problems route by name
// (co-locating them with their upload), inline specs by fingerprint —
// the very content address the backend caches under, so repeats of the
// same problem always land on the shard holding its cached result.
// Items the backend will reject route by the empty key; the rejection
// bytes are deterministic wherever they are computed.
func itemKey(it web.BatchItem) string {
	if it.Problem != "" {
		return "name/" + it.Problem
	}
	if it.Spec != "" && len(it.Spec) <= maxSpecBytes {
		if p, err := spec.ParseString(it.Spec); err == nil {
			return "fp/" + p.Fingerprint()
		}
	}
	return ""
}

// sendSubBatch posts the given items to one backend's batch endpoint
// and returns the per-item response documents, in the order sent.
func (rt *Router) sendSubBatch(r *http.Request, b int, items []json.RawMessage, idxs []int) ([]json.RawMessage, error) {
	sub := rawBatch{Items: make([]json.RawMessage, len(idxs))}
	for j, i := range idxs {
		sub.Items[j] = items[i]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	be := rt.backends[b]
	u := *be.url
	u.Path = strings.TrimSuffix(u.Path, "/") + "/schedule/batch"
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	// Only the transport outcome feeds the breaker: a non-200 envelope
	// below is a backend answer (e.g. overload shedding), not a reach-
	// ability signal.
	rt.health[b].recordForward(err, rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("backend %s: status %d", be.name, resp.StatusCode)
	}
	var out rawBatch
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("backend %s: %v", be.name, err)
	}
	if len(out.Items) != len(idxs) {
		return nil, fmt.Errorf("backend %s: %d items back for %d sent", be.name, len(out.Items), len(idxs))
	}
	return out.Items, nil
}

// errorItem synthesizes a per-item result for an item whose shard
// (and retry replica) could not be reached at all.
func errorItem(err error) json.RawMessage {
	data, mErr := json.Marshal(web.BatchItemResult{
		Status: http.StatusBadGateway,
		Error:  "all replicas failed: " + err.Error(),
	})
	if mErr != nil {
		return json.RawMessage(`{"status":502,"error":"all replicas failed"}`)
	}
	return data
}
