package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/service"
	"repro/internal/web"
)

// ShardStats is one backend's contribution to the aggregated /stats
// document: either its stats snapshot or the error that kept the
// router from fetching one ("unreachable: ..." for transport
// failures), plus the router's health verdict for the backend.
type ShardStats struct {
	Backend string        `json:"backend"`
	Health  string        `json:"health"` // "up", "down", or "unprobed"
	Error   string        `json:"error,omitempty"`
	Stats   *web.StatsDoc `json:"stats,omitempty"`
}

// RouterStats is the router's own counter block inside the /stats
// document: failovers, hedges, and membership churn observed at this
// router, plus the live per-backend health view.
type RouterStats struct {
	Retries     int64           `json:"retries"`
	Hedges      int64           `json:"hedges"`
	Transitions int64           `json:"membership_transitions"`
	Recoveries  int64           `json:"membership_recoveries"`
	Backends    []BackendHealth `json:"backends"`
}

// StatsResponse is the router's GET /stats document: the per-shard
// snapshots plus an aggregate summing every counter across reachable
// shards (gauges like Queued and store sizes sum too — the tier-wide
// totals are what capacity planning wants) and the router's own
// failover/health counters.
type StatsResponse struct {
	Aggregate service.Stats `json:"aggregate"`
	Router    RouterStats   `json:"router"`
	Shards    []ShardStats  `json:"shards"`
}

// stats fans GET /stats out to every backend concurrently and answers
// with the per-shard snapshots and their sum. A dead shard degrades to
// an "unreachable" entry — never an error for the whole fan-out — and
// the aggregate covers whoever answered.
func (rt *Router) stats(w http.ResponseWriter, r *http.Request) {
	shards := make([]ShardStats, len(rt.backends))
	var wg sync.WaitGroup
	for i, b := range rt.backends {
		wg.Add(1)
		go func(i int, b backend) {
			defer wg.Done()
			shards[i].Backend = b.name
			u := *b.url
			u.Path = strings.TrimSuffix(u.Path, "/") + "/stats"
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u.String(), nil)
			if err != nil {
				shards[i].Error = err.Error()
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				shards[i].Error = "unreachable: " + err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				shards[i].Error = fmt.Sprintf("status %d", resp.StatusCode)
				return
			}
			var doc web.StatsDoc
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				shards[i].Error = err.Error()
				return
			}
			shards[i].Stats = &doc
		}(i, b)
	}
	wg.Wait()

	for i, h := range rt.Health() {
		shards[i].Health = h.State
	}
	var agg service.Stats
	for _, sh := range shards {
		if sh.Stats != nil {
			addStats(&agg, sh.Stats.Stats)
		}
	}
	self := RouterStats{
		Retries:     rt.retries.Load(),
		Hedges:      rt.hedges.Load(),
		Transitions: rt.transitions.Load(),
		Recoveries:  rt.recoveries.Load(),
		Backends:    rt.Health(),
	}
	data, err := json.MarshalIndent(StatsResponse{Aggregate: agg, Router: self, Shards: shards}, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// addStats folds one shard's snapshot into the aggregate. Counters and
// capacity gauges sum; StartTime keeps the earliest boot and
// UptimeSeconds the shortest uptime (the weakest-link warm-up age of
// the tier); ComputeNS merges per bucket.
func addStats(agg *service.Stats, s service.Stats) {
	agg.Hits += s.Hits
	agg.Misses += s.Misses
	agg.Joins += s.Joins
	agg.Evictions += s.Evictions
	agg.Inflight += s.Inflight
	agg.Entries += s.Entries
	agg.HitsL2 += s.HitsL2
	agg.StoreEntries += s.StoreEntries
	agg.StoreBytes += s.StoreBytes
	agg.StorePutErrors += s.StorePutErrors
	agg.Canceled += s.Canceled
	agg.DeadlineExceeded += s.DeadlineExceeded
	agg.Shed += s.Shed
	agg.Panics += s.Panics
	agg.Queued += s.Queued
	agg.HandoffsSent += s.HandoffsSent
	agg.HandoffSendErrors += s.HandoffSendErrors
	agg.HandoffsReceived += s.HandoffsReceived
	agg.HandoffsRejected += s.HandoffsRejected
	if agg.StartTime == 0 || (s.StartTime != 0 && s.StartTime < agg.StartTime) {
		agg.StartTime = s.StartTime
	}
	if agg.UptimeSeconds == 0 || (s.UptimeSeconds != 0 && s.UptimeSeconds < agg.UptimeSeconds) {
		agg.UptimeSeconds = s.UptimeSeconds
	}
	if len(s.ComputeNS) > 0 && agg.ComputeNS == nil {
		agg.ComputeNS = make(map[string]int64)
	}
	for k, v := range s.ComputeNS {
		agg.ComputeNS[k] += v
	}
}
