// Package store is a persistent, content-addressed result cache: an
// append-only log of key→value records with an in-memory index. It is
// the second cache level under internal/service's LRU — the service's
// keys are already content hashes (problem fingerprint + options
// digest + stage), so the store never needs invalidation, only
// last-write-wins replacement of byte-identical recomputations.
//
// On-disk format (little-endian, one record after another, no file
// header):
//
//	record := keyLen uint32 | valLen uint32 | crc uint32 | key | val
//
// where crc is the IEEE CRC-32 of key||val. The format is crash-safe
// by construction: a record is visible only if its full frame is on
// disk and its CRC matches. Open replays the log to rebuild the index,
// stopping at the first incomplete or corrupt frame and truncating the
// file there (a torn tail from a crash mid-append loses at most the
// records after the tear, never the prefix). Duplicate keys resolve
// last-write-wins, so a replayed log converges to the same index the
// writing process had.
//
// Appends are buffered in user space only as a single write(2) per
// record; Sync flushes the OS cache with fsync. Callers that need
// durability at a point in time (graceful shutdown) call Sync or
// Close; in between, a crash can lose only suffix records, which for a
// content-addressed cache means recomputing them.
//
// When the log's dead weight (overwritten duplicates) exceeds half the
// file beyond Options.CompactMinBytes, Put compacts: live records are
// rewritten to a temp file which atomically replaces the log. The cost
// is bounded by the live set, and the rewrite is itself crash-safe
// (the original log is replaced only by a fully synced temp file).
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Options tunes a Store. The zero value selects sensible defaults.
type Options struct {
	// MaxValueBytes bounds a single value (default 16 MiB). Larger
	// Puts are rejected; larger lengths found during recovery are
	// treated as corruption (the tail is truncated there).
	MaxValueBytes int
	// MaxKeyBytes bounds a key (default 4 KiB), same recovery role.
	MaxKeyBytes int
	// CompactMinBytes is the log size below which compaction is never
	// attempted (default 1 MiB), bounding compaction frequency.
	CompactMinBytes int64
	// NoAutoCompact disables the automatic compaction check inside
	// Put; Compact can still be called explicitly. Tests use it to pin
	// log layouts.
	NoAutoCompact bool
}

func (o Options) withDefaults() Options {
	if o.MaxValueBytes == 0 {
		o.MaxValueBytes = 16 << 20
	}
	if o.MaxKeyBytes == 0 {
		o.MaxKeyBytes = 4 << 10
	}
	if o.CompactMinBytes == 0 {
		o.CompactMinBytes = 1 << 20
	}
	return o
}

const headerSize = 12 // keyLen + valLen + crc, uint32 each

// compactSuffix names the temp file a compaction streams into before
// the atomic rename. Open removes a stale one (crash mid-compaction).
const compactSuffix = ".compact"

// entry locates one live value inside the log.
type entry struct {
	off     int64 // offset of the value bytes
	vlen    int
	recSize int64 // full record size including header and key
}

// Store is an append-log key→value store with an in-memory index. All
// methods are safe for concurrent use; reads and writes serialize on
// one mutex (records are small, so the critical sections are a pread
// or a write syscall).
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[string]entry
	size  int64 // current append offset == file size
	live  int64 // bytes occupied by live (indexed) records
	opts  Options
	drops int64 // records dropped by recovery (corrupt/torn tail)
}

// Open opens or creates the log at path and rebuilds the index from
// it. A torn or corrupt tail is truncated away; the number of records
// lost that way is reported by RecoveredDrops.
func Open(path string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// A leftover compaction temp file means a crash hit between writing
	// the temp and renaming it over the log. The rename never happened,
	// so the original log is still the authoritative copy; the temp is
	// garbage and must not be left around to confuse a later rename.
	if err := os.Remove(path + compactSuffix); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: stale compact temp: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, path: path, index: make(map[string]entry), opts: opts}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the log from the start, indexing every intact record
// (last write wins) and truncating the file at the first frame that is
// incomplete, oversized, or fails its CRC.
func (s *Store) recover() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fileSize := fi.Size()
	var off int64
	var hdr [headerSize]byte
	crcTable := crc32.IEEETable
	for off < fileSize {
		if fileSize-off < headerSize {
			s.drops++
			break
		}
		if _, err := s.f.ReadAt(hdr[:], off); err != nil {
			return fmt.Errorf("store: recover read: %w", err)
		}
		klen := int(binary.LittleEndian.Uint32(hdr[0:4]))
		vlen := int(binary.LittleEndian.Uint32(hdr[4:8]))
		crc := binary.LittleEndian.Uint32(hdr[8:12])
		if klen <= 0 || klen > s.opts.MaxKeyBytes || vlen < 0 || vlen > s.opts.MaxValueBytes {
			s.drops++
			break
		}
		recSize := int64(headerSize + klen + vlen)
		if off+recSize > fileSize {
			s.drops++ // torn tail: the frame promises more bytes than exist
			break
		}
		buf := make([]byte, klen+vlen)
		if _, err := s.f.ReadAt(buf, off+headerSize); err != nil {
			return fmt.Errorf("store: recover read: %w", err)
		}
		if crc32.Checksum(buf, crcTable) != crc {
			s.drops++
			break
		}
		key := string(buf[:klen])
		if old, ok := s.index[key]; ok {
			s.live -= old.recSize
		}
		s.index[key] = entry{off: off + headerSize + int64(klen), vlen: vlen, recSize: recSize}
		s.live += recSize
		off += recSize
	}
	if off < fileSize {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	s.size = off
	return nil
}

// RecoveredDrops reports how many records (or partial frames) the
// opening scan discarded as torn or corrupt.
func (s *Store) RecoveredDrops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		return nil, false
	}
	val := make([]byte, e.vlen)
	if _, err := s.f.ReadAt(val, e.off); err != nil {
		// An unreadable record (disk fault) degrades to a miss; the
		// caller recomputes and the next Put overwrites the index slot.
		return nil, false
	}
	return val, true
}

// Put appends a record for key and updates the index. The store keeps
// its own copy of val. Oversized keys or values are rejected.
func (s *Store) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) > s.opts.MaxKeyBytes {
		return fmt.Errorf("store: key length %d out of range [1,%d]", len(key), s.opts.MaxKeyBytes)
	}
	if len(val) > s.opts.MaxValueBytes {
		return fmt.Errorf("store: value length %d exceeds %d", len(val), s.opts.MaxValueBytes)
	}
	rec := make([]byte, headerSize+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[headerSize:], key)
	copy(rec[headerSize+len(key):], val)
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(rec[headerSize:]))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	// A single write(2) at the append offset: a crash mid-write tears
	// at most this one record, which recovery truncates away.
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if old, ok := s.index[key]; ok {
		s.live -= old.recSize
	}
	recSize := int64(len(rec))
	s.index[key] = entry{off: s.size + headerSize + int64(len(key)), vlen: len(val), recSize: recSize}
	s.live += recSize
	s.size += recSize
	if !s.opts.NoAutoCompact && s.size >= s.opts.CompactMinBytes && s.live*2 < s.size {
		return s.compactLocked()
	}
	return nil
}

// PutIfChanged appends a record only when key is absent or its stored
// bytes differ from val, reporting whether a write happened. In a
// content-addressed store most re-puts carry byte-identical values
// (the pipeline is deterministic), so skipping them keeps replication
// traffic — hinted handoff re-ships in particular — from growing the
// log.
func (s *Store) PutIfChanged(key string, val []byte) (bool, error) {
	s.mu.Lock()
	if e, ok := s.index[key]; ok && e.vlen == len(val) {
		old := make([]byte, e.vlen)
		if _, err := s.f.ReadAt(old, e.off); err == nil && bytes.Equal(old, val) {
			s.mu.Unlock()
			return false, nil
		}
		// An unreadable or differing record falls through to a plain
		// append, which repairs the index slot.
	}
	s.mu.Unlock()
	return true, s.Put(key, val)
}

// ForEach calls fn for every live record, in unspecified order, with a
// private copy of the value. It snapshots the index first and reads
// values outside the lock, so fn may call back into the store; records
// overwritten mid-iteration may surface either version, and a record
// whose bytes become unreadable is skipped.
func (s *Store) ForEach(fn func(key string, val []byte) error) error {
	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	f := s.f
	snap := make(map[string]entry, len(s.index))
	for k, e := range s.index {
		snap[k] = e
	}
	s.mu.Unlock()
	for key, e := range snap {
		val := make([]byte, e.vlen)
		if _, err := f.ReadAt(val, e.off); err != nil {
			continue // same degradation as Get: unreadable record = miss
		}
		if err := fn(key, val); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Size returns the log's on-disk size in bytes.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Sync flushes the log to stable storage (fsync).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the log. The store is unusable afterwards;
// Get misses and Put errors.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	s.index = make(map[string]entry)
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

// Compact rewrites the log to contain only live records. It is called
// automatically by Put when dead weight exceeds half the file (beyond
// Options.CompactMinBytes) and may be called explicitly.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	return s.compactLocked()
}

// compactLocked streams every live record into path+".compact", syncs
// it, and atomically renames it over the log. On any error the
// original log is left untouched.
func (s *Store) compactLocked() error {
	tmpPath := s.path + compactSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	newIndex := make(map[string]entry, len(s.index))
	var off int64
	var hdr [headerSize]byte
	for key, e := range s.index {
		val := make([]byte, e.vlen)
		if _, err := s.f.ReadAt(val, e.off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact read: %w", err)
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(key)))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(val)))
		crc := crc32.ChecksumIEEE(append([]byte(key), val...))
		binary.LittleEndian.PutUint32(hdr[8:12], crc)
		if _, err := tmp.WriteAt(hdr[:], off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact write: %w", err)
		}
		if _, err := tmp.WriteAt([]byte(key), off+headerSize); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact write: %w", err)
		}
		if _, err := tmp.WriteAt(val, off+headerSize+int64(len(key))); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact write: %w", err)
		}
		recSize := int64(headerSize + len(key) + len(val))
		newIndex[key] = entry{off: off + headerSize + int64(len(key)), vlen: len(val), recSize: recSize}
		off += recSize
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact rename: %w", err)
	}
	old := s.f
	s.f = tmp
	s.index = newIndex
	s.size = off
	s.live = off
	old.Close()
	return nil
}

// CorruptForTest flips one byte at the given file offset, bypassing
// the index. It exists for corruption-recovery tests; production code
// must never call it. The store should be Closed first.
func CorruptForTest(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil && err != io.EOF {
		return err
	}
	b[0] ^= 0xFF
	_, err = f.WriteAt(b[:], off)
	return err
}
