package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string, opts Options) *Store {
	t.Helper()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{})
	vals := map[string][]byte{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := bytes.Repeat([]byte{byte(i)}, i+1)
		vals[k] = v
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for k, want := range vals {
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%q) = %v, %v; want %v", k, got, ok, want)
		}
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) hit")
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

func TestWarmStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{})
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A Get/Put on a closed store degrades gracefully.
	if _, ok := s.Get("k0"); ok {
		t.Fatal("Get on closed store hit")
	}
	if err := s.Put("k0", []byte("x")); err == nil {
		t.Fatal("Put on closed store succeeded")
	}

	r := openT(t, path, Options{})
	if r.RecoveredDrops() != 0 {
		t.Fatalf("clean reopen dropped %d records", r.RecoveredDrops())
	}
	if r.Len() != 50 {
		t.Fatalf("reopened Len = %d, want 50", r.Len())
	}
	for i := 0; i < 50; i++ {
		got, ok := r.Get(fmt.Sprintf("k%d", i))
		if !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopened Get(k%d) = %q, %v", i, got, ok)
		}
	}
}

// TestTornTailTruncated crashes mid-append by chopping bytes off the
// file end: every intact prefix record survives, the torn one is
// dropped, and the file is truncated so later appends are clean.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("v"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	full := s.Size()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear off the last 37 bytes: record 9's frame is incomplete.
	if err := os.Truncate(path, full-37); err != nil {
		t.Fatal(err)
	}
	r := openT(t, path, Options{})
	if r.RecoveredDrops() == 0 {
		t.Fatal("torn tail not detected")
	}
	if r.Len() != 9 {
		t.Fatalf("Len after torn tail = %d, want 9", r.Len())
	}
	if _, ok := r.Get("k9"); ok {
		t.Fatal("torn record k9 still visible")
	}
	// The truncated store accepts new appends and they round-trip
	// through another reopen.
	if err := r.Put("k9", []byte("again")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openT(t, path, Options{})
	if got, ok := r2.Get("k9"); !ok || string(got) != "again" {
		t.Fatalf("post-recovery append lost: %q, %v", got, ok)
	}
	if r2.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r2.Len())
	}
}

// TestFlippedCRCByte corrupts one payload byte of a middle record: the
// records before it survive, the corrupt one and everything after are
// truncated (the log has no record boundaries to resync on), and the
// store keeps working.
func TestFlippedCRCByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{})
	var offs []int64
	for i := 0; i < 10; i++ {
		offs = append(offs, s.Size())
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("v"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a value byte inside record 6 (offset + header + key "k6").
	if err := CorruptForTest(path, offs[6]+headerSize+2+10); err != nil {
		t.Fatal(err)
	}
	r := openT(t, path, Options{})
	if r.RecoveredDrops() == 0 {
		t.Fatal("flipped byte not detected")
	}
	if r.Len() != 6 {
		t.Fatalf("Len after corruption = %d, want 6 (k0..k5)", r.Len())
	}
	for i := 0; i < 6; i++ {
		if _, ok := r.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("intact prefix record k%d lost", i)
		}
	}
	if _, ok := r.Get("k6"); ok {
		t.Fatal("corrupt record k6 still visible")
	}
	if r.Size() != offs[6] {
		t.Fatalf("file not truncated at corruption: size %d, want %d", r.Size(), offs[6])
	}
}

// TestDuplicateKeyLastWriteWins overwrites keys repeatedly and checks
// both the live index and a recovery replay resolve to the last write.
func TestDuplicateKeyLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{NoAutoCompact: true})
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			v := fmt.Sprintf("round%d-val%d", round, i)
			if err := s.Put(fmt.Sprintf("k%d", i), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(st *Store, label string) {
		t.Helper()
		if st.Len() != 10 {
			t.Fatalf("%s: Len = %d, want 10", label, st.Len())
		}
		for i := 0; i < 10; i++ {
			want := fmt.Sprintf("round4-val%d", i)
			got, ok := st.Get(fmt.Sprintf("k%d", i))
			if !ok || string(got) != want {
				t.Fatalf("%s: Get(k%d) = %q, %v; want %q", label, i, got, ok, want)
			}
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, path, Options{NoAutoCompact: true})
	check(r, "replayed")
	// Compaction drops the 40 dead duplicates but preserves the
	// last-write-wins view, including across another reopen.
	before := r.Size()
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if r.Size() >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before, r.Size())
	}
	check(r, "compacted")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	check(openT(t, path, Options{}), "compacted+replayed")
}

func TestAutoCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{CompactMinBytes: 4096})
	val := bytes.Repeat([]byte("x"), 512)
	// Hammer one key: dead weight accumulates until auto-compaction
	// kicks in, so the file can never grow past ~2x the live set.
	for i := 0; i < 100; i++ {
		if err := s.Put("hot", val); err != nil {
			t.Fatal(err)
		}
	}
	if s.Size() > 8192 {
		t.Fatalf("auto-compaction never ran: size %d", s.Size())
	}
	if got, ok := s.Get("hot"); !ok || !bytes.Equal(got, val) {
		t.Fatal("hot key lost across auto-compaction")
	}
}

func TestBoundsRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{MaxValueBytes: 128, MaxKeyBytes: 16})
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(string(bytes.Repeat([]byte("k"), 17)), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := s.Put("k", bytes.Repeat([]byte("v"), 129)); err == nil {
		t.Fatal("oversized value accepted")
	}
	if err := s.Put("k", bytes.Repeat([]byte("v"), 128)); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentHammer is the -race gate: concurrent Puts, Gets, and
// explicit Compacts over a shared hot key set must never tear a value
// (every Get observes some complete previously-Put payload).
func TestConcurrentHammer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{CompactMinBytes: 2048})
	const (
		workers = 8
		keys    = 16
		iters   = 200
	)
	payload := func(k, ver int) []byte {
		return bytes.Repeat([]byte{byte('a' + k)}, 32+ver%7)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % keys
				key := fmt.Sprintf("k%d", k)
				if w%2 == 0 {
					if err := s.Put(key, payload(k, i)); err != nil {
						t.Error(err)
						return
					}
				} else if v, ok := s.Get(key); ok {
					if len(v) == 0 || v[0] != byte('a'+k) {
						t.Errorf("torn read for %s: %q", key, v)
						return
					}
				}
				if w == 0 && i%50 == 0 {
					if err := s.Compact(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Fatal("hammer left an empty store")
	}
}

// TestConcurrentAutoCompactHammer hammers a store whose auto-compaction
// threshold is tiny, so compactions fire *during* concurrent puts and
// gets rather than only when asked. Run under -race this pins the
// file-handle swap inside compactLocked against every other code path.
// Each worker owns a private key range, so the expected final value of
// every key is known exactly and must survive both the churn and a
// reopen.
func TestConcurrentAutoCompactHammer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{CompactMinBytes: 2048})
	const (
		workers = 8
		keys    = 4 // per worker
		iters   = 150
	)
	payload := func(w, k, ver int) []byte {
		return []byte(fmt.Sprintf("w%d-k%d-v%03d-%s", w, k, ver, string(bytes.Repeat([]byte{'x'}, 64))))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := i % keys
				key := fmt.Sprintf("w%d-k%d", w, k)
				if err := s.Put(key, payload(w, k, i)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(key); !ok || len(v) == 0 {
					t.Errorf("read-own-write miss for %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	check := func(s *Store, when string) {
		t.Helper()
		for w := 0; w < workers; w++ {
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("w%d-k%d", w, k)
				// Last version written for key k by worker w is the
				// largest i < iters with i%keys == k.
				last := iters - 1 - ((iters - 1 - k) % keys)
				want := payload(w, k, last)
				got, ok := s.Get(key)
				if !ok || !bytes.Equal(got, want) {
					t.Errorf("%s: %s = %q, want %q", when, key, got, want)
				}
			}
		}
	}
	check(s, "after hammer")
	if s.Size() >= int64(workers*keys*iters*40) {
		t.Errorf("log size %d suggests auto-compaction never fired", s.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	check(openT(t, path, Options{}), "after reopen")
}

// TestCrashDuringCompactionRecovery simulates a crash between writing
// the compaction temp file and the atomic rename: the leftover
// ".compact" temp must be swept on Open and the original log must
// warm-start untouched.
func TestCrashDuringCompactionRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{NoAutoCompact: true})
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The "crash artifact": a temp file full of garbage (a torn
	// compaction) sitting exactly where compactLocked writes.
	if err := os.WriteFile(path+compactSuffix, bytes.Repeat([]byte{0xDE, 0xAD}, 500), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, path, Options{})
	if s2.RecoveredDrops() != 0 {
		t.Errorf("recovery dropped %d records; the stale temp must not damage the log", s2.RecoveredDrops())
	}
	if s2.Len() != 20 {
		t.Errorf("warm start found %d keys, want 20", s2.Len())
	}
	if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
		t.Errorf("stale compact temp still present after Open (err=%v)", err)
	}
	// And compaction still works on the recovered store.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 20 {
		t.Errorf("post-recovery compaction lost keys: %d, want 20", s2.Len())
	}
}

// TestPutIfChanged pins the dedup path hinted handoff relies on:
// byte-identical re-puts are skipped without growing the log.
func TestPutIfChanged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{NoAutoCompact: true})

	wrote, err := s.PutIfChanged("k", []byte("v1"))
	if err != nil || !wrote {
		t.Fatalf("first put: wrote=%v err=%v, want true/nil", wrote, err)
	}
	size := s.Size()

	wrote, err = s.PutIfChanged("k", []byte("v1"))
	if err != nil || wrote {
		t.Fatalf("identical re-put: wrote=%v err=%v, want false/nil", wrote, err)
	}
	if s.Size() != size {
		t.Errorf("identical re-put grew the log %d -> %d", size, s.Size())
	}

	wrote, err = s.PutIfChanged("k", []byte("v2"))
	if err != nil || !wrote {
		t.Fatalf("changed put: wrote=%v err=%v, want true/nil", wrote, err)
	}
	if v, _ := s.Get("k"); !bytes.Equal(v, []byte("v2")) {
		t.Errorf("value after changed put: %q", v)
	}
	if s.Size() <= size {
		t.Error("changed put did not append")
	}
}

// TestForEach pins the iteration contract the spec-persistence layer
// uses at startup.
func TestForEach(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openT(t, path, Options{})
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]string{}
	if err := s.ForEach(func(k string, v []byte) error {
		got[k] = string(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("ForEach[%s] = %q, want %q", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("ForEach visited %d keys, want %d", len(got), len(want))
	}
}
