package graph

// AddEdgeRelax adds the edge and incrementally updates dist — a valid
// single-source longest-path solution for the graph *before* the
// addition — to the solution *after* it, by relaxing outward from the
// edge's head. This is the scheduler's inner loop: a delay edge
// typically shifts only a small cone of successors, so relaxing from
// the change is much cheaper than recomputing from the source.
//
// ok is false when the new edge closes a positive cycle; dist is then
// partially updated and the caller must roll the edge back and discard
// dist (Rollback restores the graph; the caller re-derives dist from
// its last good schedule).
func (g *Graph) AddEdgeRelax(dist []int, from, to, w int) (ok bool) {
	_, ok = g.AddEdgeRelaxTouched(dist, from, to, w, nil)
	return ok
}

// AddEdgeRelaxTouched is AddEdgeRelax that additionally reports which
// vertices the relaxation moved: every vertex whose dist entry changed
// is appended (once, in first-touch order) to touched, and the grown
// slice is returned. The incremental scheduler core uses the touched
// set to apply power-profile deltas and to invalidate cached slacks for
// exactly the shifted cone of successors instead of the whole task set.
// When ok is false the touched set is meaningless, like dist.
func (g *Graph) AddEdgeRelaxTouched(dist []int, from, to, w int, touched []int) ([]int, bool) {
	g.AddEdge(from, to, w)
	if dist[from] == NoPath || dist[from]+w <= dist[to] {
		return touched, true
	}
	dist[to] = dist[from] + w

	inQueue := make([]bool, g.n)
	inTouched := make([]bool, g.n)
	relaxed := make([]int, g.n)
	queue := []int{to}
	inQueue[to] = true
	touched = append(touched, to)
	inTouched[to] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		relaxed[u]++
		if relaxed[u] > g.n {
			return touched, false
		}
		du := dist[u]
		for _, e := range g.out[u] {
			if nd := du + e.W; nd > dist[e.To] {
				dist[e.To] = nd
				if !inTouched[e.To] {
					touched = append(touched, e.To)
					inTouched[e.To] = true
				}
				if !inQueue[e.To] {
					queue = append(queue, e.To)
					inQueue[e.To] = true
				}
			}
		}
	}
	return touched, true
}
