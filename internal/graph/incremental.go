package graph

// AddEdgeRelax adds the edge and incrementally updates dist — a valid
// single-source longest-path solution for the graph *before* the
// addition — to the solution *after* it, by relaxing outward from the
// edge's head. This is the scheduler's inner loop: a delay edge
// typically shifts only a small cone of successors, so relaxing from
// the change is much cheaper than recomputing from the source.
//
// ok is false when the new edge closes a positive cycle; dist is then
// partially updated and the caller must roll the edge back and discard
// dist (Rollback restores the graph; the caller re-derives dist from
// its last good schedule).
func (g *Graph) AddEdgeRelax(dist []int, from, to, w int) (ok bool) {
	g.AddEdge(from, to, w)
	if dist[from] == NoPath || dist[from]+w <= dist[to] {
		return true
	}
	dist[to] = dist[from] + w

	inQueue := make([]bool, g.n)
	relaxed := make([]int, g.n)
	queue := []int{to}
	inQueue[to] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		relaxed[u]++
		if relaxed[u] > g.n {
			return false
		}
		du := dist[u]
		for _, e := range g.out[u] {
			if nd := du + e.W; nd > dist[e.To] {
				dist[e.To] = nd
				if !inQueue[e.To] {
					queue = append(queue, e.To)
					inQueue[e.To] = true
				}
			}
		}
	}
	return true
}
