package graph

// AddEdgeRelax adds the edge and incrementally updates dist — a valid
// single-source longest-path solution for the graph *before* the
// addition — to the solution *after* it, by relaxing outward from the
// edge's head. This is the scheduler's inner loop: a delay edge
// typically shifts only a small cone of successors, so relaxing from
// the change is much cheaper than recomputing from the source.
//
// ok is false when the new edge closes a positive cycle; dist is then
// partially updated and the caller must roll the edge back and discard
// dist (Rollback restores the graph; the caller re-derives dist from
// its last good schedule).
func (g *Graph) AddEdgeRelax(dist []int, from, to, w int) (ok bool) {
	_, ok = g.AddEdgeRelaxTouched(dist, from, to, w, nil)
	return ok
}

// AddEdgeRelaxTouched is AddEdgeRelax that additionally reports which
// vertices the relaxation moved: every vertex whose dist entry changed
// is appended (once, in first-touch order) to touched, and the grown
// slice is returned. The incremental scheduler core uses the touched
// set to apply power-profile deltas and to invalidate cached slacks for
// exactly the shifted cone of successors instead of the whole task set.
// When ok is false the touched set is meaningless, like dist.
//
// The relaxation queue and its membership marks live in graph-owned
// scratch reused across calls (epoch-stamped, so reuse needs no
// clearing). Like every mutating graph method, concurrent calls on a
// shared graph are not safe.
func (g *Graph) AddEdgeRelaxTouched(dist []int, from, to, w int, touched []int) ([]int, bool) {
	g.AddEdge(from, to, w)
	if dist[from] == NoPath || dist[from]+w <= dist[to] {
		return touched, true
	}
	dist[to] = dist[from] + w

	s := g.relaxScratch()
	epoch := s.epoch
	queue := s.queue[:0]
	queue = append(queue, to)
	s.queueGen[to] = epoch
	touched = append(touched, to)
	s.touchGen[to] = epoch
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		s.queueGen[u] = 0
		if s.countGen[u] != epoch {
			s.countGen[u] = epoch
			s.count[u] = 0
		}
		s.count[u]++
		if s.count[u] > g.n {
			s.queue = queue
			return touched, false
		}
		du := dist[u]
		for _, e := range g.out[u] {
			if nd := du + e.W; nd > dist[e.To] {
				dist[e.To] = nd
				if s.touchGen[e.To] != epoch {
					touched = append(touched, e.To)
					s.touchGen[e.To] = epoch
				}
				if s.queueGen[e.To] != epoch {
					queue = append(queue, e.To)
					s.queueGen[e.To] = epoch
				}
			}
		}
	}
	s.queue = queue
	return touched, true
}

// DistSave records one overwritten longest-path entry: vertex V held
// Old before the relaxation that journaled it first touched it.
type DistSave struct {
	V   int
	Old int
}

// AddEdgeRelaxUndo is AddEdgeRelaxTouched with an undo journal instead
// of a touched set: the first time a call moves a vertex's dist entry it
// appends (vertex, previous value) to undo, so replaying the returned
// slice backwards — undo[i].V gets undo[i].Old, from the end down to
// the caller's mark — restores dist exactly as it was before the call.
// Unlike the touched set, the journal is valid even when ok is false
// (the edge closed a positive cycle): the entries recorded up to the
// detection point are precisely the writes that must be undone, which
// is what lets callers keep a single live distance vector instead of
// snapshotting it per speculative edge. Entries appear in first-touch
// order, and a caller batching several calls into one journal restores
// across all of them with the same backwards replay.
func (g *Graph) AddEdgeRelaxUndo(dist []int, from, to, w int, undo []DistSave) ([]DistSave, bool) {
	g.AddEdge(from, to, w)
	if dist[from] == NoPath || dist[from]+w <= dist[to] {
		return undo, true
	}
	undo = append(undo, DistSave{V: to, Old: dist[to]})
	dist[to] = dist[from] + w

	s := g.relaxScratch()
	epoch := s.epoch
	queue := s.queue[:0]
	queue = append(queue, to)
	s.queueGen[to] = epoch
	s.touchGen[to] = epoch
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		s.queueGen[u] = 0
		if s.countGen[u] != epoch {
			s.countGen[u] = epoch
			s.count[u] = 0
		}
		s.count[u]++
		if s.count[u] > g.n {
			s.queue = queue
			return undo, false
		}
		du := dist[u]
		for _, e := range g.out[u] {
			if nd := du + e.W; nd > dist[e.To] {
				if s.touchGen[e.To] != epoch {
					undo = append(undo, DistSave{V: e.To, Old: dist[e.To]})
					s.touchGen[e.To] = epoch
				}
				dist[e.To] = nd
				if s.queueGen[e.To] != epoch {
					queue = append(queue, e.To)
					s.queueGen[e.To] = epoch
				}
			}
		}
	}
	s.queue = queue
	return undo, true
}

// LongestFromInto is LongestFrom writing into a caller-provided dist
// slice (length >= N()) and drawing its queue and bookkeeping from the
// graph's scratch area, so repeated calls allocate nothing. Unlike
// LongestFrom it mutates graph-internal scratch, so concurrent calls on
// a shared graph are not safe; the scheduler only uses it on its
// private working graph. ok is false on a reachable positive cycle.
func (g *Graph) LongestFromInto(dist []int, src int) (ok bool) {
	if len(dist) < g.n {
		panic("graph: LongestFromInto dist slice too short")
	}
	for i := 0; i < g.n; i++ {
		dist[i] = NoPath
	}
	dist[src] = 0

	s := g.relaxScratch()
	epoch := s.epoch
	queue := s.queue[:0]
	queue = append(queue, src)
	s.queueGen[src] = epoch
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		s.queueGen[u] = 0
		if s.countGen[u] != epoch {
			s.countGen[u] = epoch
			s.count[u] = 0
		}
		s.count[u]++
		if s.count[u] > g.n {
			s.queue = queue
			return false
		}
		du := dist[u]
		for _, e := range g.out[u] {
			if nd := du + e.W; nd > dist[e.To] {
				dist[e.To] = nd
				if s.queueGen[e.To] != epoch {
					queue = append(queue, e.To)
					s.queueGen[e.To] = epoch
				}
			}
		}
	}
	s.queue = queue
	return true
}

// scratch holds the relaxation workspace reused by AddEdgeRelaxTouched
// and LongestFromInto. Membership marks are epoch-stamped: a vertex is
// marked iff its gen entry equals the current call's epoch, so starting
// a call costs one counter increment instead of three O(n) clears.
// Epochs start at 1; 0 doubles as the dequeued marker.
type scratch struct {
	epoch    int
	queueGen []int // epoch when the vertex was last enqueued
	touchGen []int // epoch when the vertex was last reported touched
	countGen []int // epoch of the vertex's dequeue counter
	count    []int // dequeues this epoch; > n implies a positive cycle
	queue    []int
}

// relaxScratch sizes the scratch to the vertex count and opens a fresh
// epoch.
func (g *Graph) relaxScratch() *scratch {
	s := &g.sc
	if len(s.queueGen) < g.n {
		s.queueGen = make([]int, g.n)
		s.touchGen = make([]int, g.n)
		s.countGen = make([]int, g.n)
		s.count = make([]int, g.n)
	}
	s.epoch++
	return s
}
