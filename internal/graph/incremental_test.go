package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeRelaxSimple(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	dist, ok := g.LongestFrom(0)
	if !ok {
		t.Fatal("infeasible base")
	}
	// New edge 0->2 weight 9 dominates the old path.
	if !g.AddEdgeRelax(dist, 0, 2, 9) {
		t.Fatal("relax reported a cycle")
	}
	if dist[2] != 9 {
		t.Fatalf("dist[2] = %d, want 9", dist[2])
	}
	// Non-binding edge changes nothing.
	if !g.AddEdgeRelax(dist, 0, 1, 1) {
		t.Fatal("relax reported a cycle")
	}
	if dist[1] != 2 {
		t.Fatalf("dist[1] = %d, want 2", dist[1])
	}
}

func TestAddEdgeRelaxDetectsCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5)
	dist, _ := g.LongestFrom(0)
	// 1 -> 0 with weight -3 closes a positive cycle (5-3 > 0).
	if g.AddEdgeRelax(dist, 1, 0, -3) {
		t.Fatal("positive cycle not detected")
	}
}

func TestAddEdgeRelaxPropagates(t *testing.T) {
	// Chain 0->1->2->3; delaying 1 shifts 2 and 3.
	g := New(5)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i+1, 3)
	}
	dist, _ := g.LongestFrom(0)
	if !g.AddEdgeRelax(dist, 0, 1, 10) { // push 1 from 3 to 10
		t.Fatal("cycle reported")
	}
	want := []int{0, 10, 13, 16, NoPath}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], w)
		}
	}
}

// TestAddEdgeRelaxTouched: the touched set is exactly the vertices
// whose dist entry changed, each reported once.
func TestAddEdgeRelaxTouched(t *testing.T) {
	g := New(5)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i+1, 3)
	}
	dist, _ := g.LongestFrom(0)
	touched, ok := g.AddEdgeRelaxTouched(dist, 0, 1, 10, nil)
	if !ok {
		t.Fatal("cycle reported")
	}
	want := map[int]bool{1: true, 2: true, 3: true}
	if len(touched) != len(want) {
		t.Fatalf("touched = %v, want the set %v", touched, want)
	}
	for _, v := range touched {
		if !want[v] {
			t.Fatalf("touched = %v contains unexpected vertex %d", touched, v)
		}
		delete(want, v)
	}
	// A non-binding edge touches nothing and reuses the given buffer.
	buf := touched[:0]
	touched, ok = g.AddEdgeRelaxTouched(dist, 0, 1, 1, buf)
	if !ok || len(touched) != 0 {
		t.Fatalf("non-binding edge: touched = %v, ok = %v", touched, ok)
	}
}

// TestQuickRelaxTouchedIsExact: on random graphs the touched set equals
// the dist diff against a full recompute.
func TestQuickRelaxTouchedIsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := New(n)
		for i := 0; i < n-1; i++ {
			g.AddEdge(i, i+1, rng.Intn(6))
		}
		for k := 0; k < 4; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, rng.Intn(13)-6)
			}
		}
		before, ok := g.LongestFrom(0)
		if !ok {
			return true
		}
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			return true
		}
		incr := append([]int(nil), before...)
		touched, incOK := g.AddEdgeRelaxTouched(incr, u, v, rng.Intn(17)-8, nil)
		if !incOK {
			return true
		}
		set := make(map[int]bool, len(touched))
		for _, x := range touched {
			if set[x] {
				t.Logf("seed %d: vertex %d touched twice", seed, x)
				return false
			}
			set[x] = true
		}
		for i := range incr {
			if (incr[i] != before[i]) != set[i] {
				t.Logf("seed %d: vertex %d changed=%v touched=%v", seed, i, incr[i] != before[i], set[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickRelaxMatchesFullRecompute: on random feasible graphs, the
// incremental update after one random edge equals a full recompute.
func TestQuickRelaxMatchesFullRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := New(n)
		for i := 0; i < n-1; i++ {
			g.AddEdge(i, i+1, rng.Intn(6))
		}
		for k := 0; k < 4; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, rng.Intn(13)-6)
			}
		}
		dist, ok := g.LongestFrom(0)
		if !ok {
			return true // infeasible base: nothing to compare
		}
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			return true
		}
		w := rng.Intn(17) - 8
		incr := append([]int(nil), dist...)
		incOK := g.AddEdgeRelax(incr, u, v, w)
		full, fullOK := g.LongestFrom(0)
		if incOK != fullOK {
			t.Logf("seed %d: ok mismatch inc=%v full=%v", seed, incOK, fullOK)
			return false
		}
		if !incOK {
			return true // both detected the cycle
		}
		for i := range full {
			if full[i] != incr[i] {
				t.Logf("seed %d: dist[%d] inc=%d full=%d", seed, i, incr[i], full[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
