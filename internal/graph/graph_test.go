package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLongestPathChain(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 2)
	dist, ok := g.LongestFrom(0)
	if !ok {
		t.Fatal("unexpected positive cycle")
	}
	want := []int{0, 5, 8, 10}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], w)
		}
	}
}

func TestLongestPathPicksMaximum(t *testing.T) {
	// Two routes 0->3: direct (7) and via 1,2 (4+4=8).
	g := New(4)
	g.AddEdge(0, 3, 7)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 3, 4)
	dist, ok := g.LongestFrom(0)
	if !ok || dist[3] != 8 {
		t.Fatalf("dist[3] = %d (ok=%v), want 8", dist[3], ok)
	}
}

func TestUnreachableVertex(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	dist, ok := g.LongestFrom(0)
	if !ok {
		t.Fatal("unexpected cycle")
	}
	if dist[2] != NoPath {
		t.Errorf("dist[2] = %d, want NoPath", dist[2])
	}
}

func TestNegativeEdgesFeasibleWindow(t *testing.T) {
	// Window: 1 must start within [2,6] after 0: edges (0->1, 2) and
	// (1->0, -6). Feasible; longest path gives the ASAP time 2.
	g := New(2)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, -6)
	dist, ok := g.LongestFrom(0)
	if !ok {
		t.Fatal("feasible window reported as cycle")
	}
	if dist[1] != 2 {
		t.Errorf("dist[1] = %d, want 2", dist[1])
	}
}

func TestPositiveCycleDetected(t *testing.T) {
	// Contradictory window: 1 at least 10 after 0 but at most 6 after.
	g := New(2)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 0, -6)
	if _, ok := g.LongestFrom(0); ok {
		t.Fatal("positive cycle not detected")
	}
	if g.Feasible(0) {
		t.Fatal("Feasible returned true on a positive cycle")
	}
}

func TestCycleUnreachableFromSourceIsIgnored(t *testing.T) {
	// A positive cycle exists among {1,2} but nothing connects the
	// source to it; the constraint system rooted at 0 stays solvable.
	g := New(3)
	g.AddEdge(1, 2, 5)
	g.AddEdge(2, 1, 5)
	if _, ok := g.LongestFrom(0); !ok {
		t.Fatal("unreachable cycle should not fail the source's system")
	}
}

func TestRollbackRestoresEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	cp := g.Mark()
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 9)
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	g.Rollback(cp)
	if g.NumEdges() != 1 {
		t.Fatalf("edges after rollback = %d, want 1", g.NumEdges())
	}
	dist, ok := g.LongestFrom(0)
	if !ok || dist[2] != NoPath {
		t.Fatalf("rollback left stale edges: dist=%v", dist)
	}
}

func TestNestedRollback(t *testing.T) {
	g := New(4)
	cp0 := g.Mark()
	g.AddEdge(0, 1, 1)
	cp1 := g.Mark()
	g.AddEdge(1, 2, 1)
	g.Rollback(cp1)
	g.AddEdge(1, 3, 1)
	g.Rollback(cp0)
	if g.NumEdges() != 0 {
		t.Fatalf("edges = %d, want 0", g.NumEdges())
	}
	if len(g.Out(0)) != 0 || len(g.In(1)) != 0 {
		t.Fatal("adjacency lists not emptied")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 3)
	c := g.Clone()
	c.AddEdge(1, 0, -5)
	if g.NumEdges() != 1 {
		t.Fatalf("clone mutation leaked into original (%d edges)", g.NumEdges())
	}
	if c.NumEdges() != 2 {
		t.Fatalf("clone edges = %d, want 2", c.NumEdges())
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 0) },
		func() { g.AddEdge(0, 2, 0) },
		func() { g.AddEdge(1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRollbackToFutureCheckpointPanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Rollback(Checkpoint(5))
}

// TestQuickRollbackIdentity: for random DAG edge batches, adding edges
// and rolling them back always restores the previous longest-path
// solution exactly.
func TestQuickRollbackIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := New(n)
		// Base forward edges (a DAG: always feasible).
		for i := 0; i < n-1; i++ {
			g.AddEdge(i, i+1, rng.Intn(5))
		}
		before, ok := g.LongestFrom(0)
		if !ok {
			return false
		}
		cp := g.Mark()
		for k := 0; k < 5; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, rng.Intn(21)-10)
			}
		}
		g.Rollback(cp)
		after, ok := g.LongestFrom(0)
		if !ok {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickLongestPathSatisfiesConstraints: whenever LongestFrom
// succeeds, the distances satisfy every edge constraint
// dist[to] >= dist[from] + w for edges reachable from the source.
func TestQuickLongestPathSatisfiesConstraints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := New(n)
		for i := 0; i < n; i++ {
			if i > 0 {
				g.AddEdge(i-1, i, rng.Intn(5))
			}
		}
		// A few random extra edges; skip if they make it infeasible.
		for k := 0; k < 4; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, rng.Intn(15)-7)
			}
		}
		dist, ok := g.LongestFrom(0)
		if !ok {
			return true // infeasible is a legal outcome
		}
		for _, e := range g.Edges() {
			if dist[e.From] == NoPath {
				continue
			}
			if dist[e.To] < dist[e.From]+e.W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
