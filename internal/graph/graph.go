// Package graph implements the weighted constraint graph underlying the
// power-aware scheduler.
//
// A vertex per task plus one virtual anchor vertex; a directed edge
// (u -> v, w) encodes the difference constraint sigma(v) >= sigma(u) + w.
// Max separations sigma(v) <= sigma(u) + m are encoded as the reverse
// edge (v -> u, -m). The single-source longest path from the anchor
// yields the ASAP start times; a positive cycle proves the constraint
// system infeasible.
//
// The scheduling algorithms of the paper mutate the graph incrementally
// (serialization edges, delay edges, lock edges) and must be able to
// "undo changes to G since step B". The graph therefore journals every
// added edge and supports checkpoint/rollback in O(edges added).
package graph

import (
	"fmt"
	"math"
)

// NoPath marks a vertex unreachable from the longest-path source.
const NoPath = math.MinInt / 4

// Edge is a directed, weighted constraint edge.
type Edge struct {
	From, To int
	W        int
}

// Graph is a journaled weighted digraph over a fixed vertex set.
// The zero value is unusable; create graphs with New.
type Graph struct {
	n       int
	out     [][]Edge // adjacency by source vertex
	in      [][]Edge // reverse adjacency by destination vertex
	journal []Edge   // every edge ever added, in order
	sc      scratch  // relaxation workspace (see incremental.go)
}

// Checkpoint is an opaque marker into the mutation journal.
type Checkpoint int

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{
		n:   n,
		out: make([][]Edge, n),
		in:  make([][]Edge, n),
	}
}

// NewSized returns a graph with n vertices and no edges whose adjacency
// lists and journal are preallocated: outDeg[v] and inDeg[v] are the
// expected out- and in-degrees, edges the expected journal length.
// Adjacency storage is carved out of two contiguous banks with exact
// per-vertex capacities, so building a graph of the promised shape
// performs three allocations total instead of O(n log deg) append
// growth. Exceeding a promised degree is legal and merely reallocates
// that vertex's slice.
func NewSized(n int, outDeg, inDeg []int, edges int) *Graph {
	g := &Graph{
		n:       n,
		out:     make([][]Edge, n),
		in:      make([][]Edge, n),
		journal: make([]Edge, 0, edges),
	}
	var totOut, totIn int
	for v := 0; v < n; v++ {
		totOut += outDeg[v]
		totIn += inDeg[v]
	}
	outBank := make([]Edge, totOut)
	inBank := make([]Edge, totIn)
	var po, pi int
	for v := 0; v < n; v++ {
		g.out[v] = outBank[po : po : po+outDeg[v]]
		po += outDeg[v]
		g.in[v] = inBank[pi : pi : pi+inDeg[v]]
		pi += inDeg[v]
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of live edges.
func (g *Graph) NumEdges() int { return len(g.journal) }

// AddEdge appends the constraint edge sigma(to) >= sigma(from) + w.
// Parallel edges are permitted; the effective constraint is the
// strongest (largest w), which longest-path relaxation honors naturally.
func (g *Graph) AddEdge(from, to, w int) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: edge (%d -> %d) out of range [0,%d)", from, to, g.n))
	}
	if from == to {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", from))
	}
	e := Edge{From: from, To: to, W: w}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.journal = append(g.journal, e)
}

// Mark returns a checkpoint capturing the current edge set.
func (g *Graph) Mark() Checkpoint { return Checkpoint(len(g.journal)) }

// Rollback removes, in reverse order, every edge added after the
// checkpoint was taken.
func (g *Graph) Rollback(cp Checkpoint) {
	if int(cp) > len(g.journal) {
		panic("graph: rollback to a future checkpoint")
	}
	for i := len(g.journal) - 1; i >= int(cp); i-- {
		e := g.journal[i]
		g.out[e.From] = g.out[e.From][:len(g.out[e.From])-1]
		g.in[e.To] = g.in[e.To][:len(g.in[e.To])-1]
	}
	g.journal = g.journal[:cp]
}

// Out returns the live outgoing edges of v. The slice is owned by the
// graph; callers must not modify or retain it across mutations.
func (g *Graph) Out(v int) []Edge { return g.out[v] }

// In returns the live incoming edges of v, with the same aliasing
// caveat as Out.
func (g *Graph) In(v int) []Edge { return g.in[v] }

// Edges returns a copy of all live edges in insertion order.
func (g *Graph) Edges() []Edge { return g.AppendEdges(nil) }

// AppendEdges appends all live edges in insertion order to buf and
// returns the grown slice, letting callers reuse one buffer across
// snapshots instead of allocating a fresh copy per call.
func (g *Graph) AppendEdges(buf []Edge) []Edge { return append(buf, g.journal...) }

// JournalPrefix returns the first edges added to the graph, up to the
// checkpoint, without copying. The slice aliases the live journal: it
// stays valid while the graph holds at least cp edges (rollbacks down
// to cp are fine, rollbacks below it invalidate the view), and callers
// must not modify it.
func (g *Graph) JournalPrefix(cp Checkpoint) []Edge { return g.journal[:cp] }

// Clone returns an independent copy of the graph. The copy's adjacency
// lists are carved out of two contiguous banks with exact per-vertex
// capacities (three bulk copies instead of re-adding every edge), so a
// full slice means the first append past a vertex's cloned degree
// reallocates that vertex's slice — bank neighbors can never observe
// each other's writes.
func (g *Graph) Clone() *Graph {
	m := len(g.journal)
	c := &Graph{
		n:       g.n,
		out:     make([][]Edge, g.n),
		in:      make([][]Edge, g.n),
		journal: append(make([]Edge, 0, m+m/2+16), g.journal...),
	}
	outBank := make([]Edge, m)
	inBank := make([]Edge, m)
	var po, pi int
	for v := 0; v < g.n; v++ {
		do, di := len(g.out[v]), len(g.in[v])
		c.out[v] = outBank[po : po+do : po+do]
		copy(c.out[v], g.out[v])
		po += do
		c.in[v] = inBank[pi : pi+di : pi+di]
		copy(c.in[v], g.in[v])
		pi += di
	}
	return c
}

// LongestFrom computes single-source longest path distances from src
// using queue-based relaxation (SPFA). dist[v] is the length of the
// longest path src->v, or NoPath if v is unreachable. ok is false when
// a positive cycle is reachable from src, in which case dist is
// meaningless: the constraint system has no solution.
func (g *Graph) LongestFrom(src int) (dist []int, ok bool) {
	dist = make([]int, g.n)
	for i := range dist {
		dist[i] = NoPath
	}
	dist[src] = 0

	inQueue := make([]bool, g.n)
	relaxed := make([]int, g.n) // times dequeued; > n implies positive cycle
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	inQueue[src] = true

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		relaxed[u]++
		if relaxed[u] > g.n {
			return dist, false
		}
		du := dist[u]
		for _, e := range g.out[u] {
			if nd := du + e.W; nd > dist[e.To] {
				dist[e.To] = nd
				if !inQueue[e.To] {
					queue = append(queue, e.To)
					inQueue[e.To] = true
				}
			}
		}
	}
	return dist, true
}

// Feasible reports whether the constraint system rooted at src has a
// solution (no reachable positive cycle).
func (g *Graph) Feasible(src int) bool {
	_, ok := g.LongestFrom(src)
	return ok
}
