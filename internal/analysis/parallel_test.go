package analysis

import (
	"testing"

	"repro/internal/paperex"
	"repro/internal/sched"
)

func TestSweepGridParallelMatchesSequential(t *testing.T) {
	p := paperex.Nine()
	pmaxs := []float64{12, 14, 16, 18, 20}
	pmins := []float64{8, 12, 14}
	seq := SweepGrid(p, pmaxs, pmins, sched.Options{})
	par := SweepGridParallel(p, pmaxs, pmins, sched.Options{}, 4)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, q := seq[i], par[i]
		if s.Pmax != q.Pmax || s.Pmin != q.Pmin {
			t.Fatalf("point %d ordering differs: (%g,%g) vs (%g,%g)", i, s.Pmax, s.Pmin, q.Pmax, q.Pmin)
		}
		if s.Feasible() != q.Feasible() {
			t.Fatalf("point %d feasibility differs", i)
		}
		if !s.Feasible() {
			continue
		}
		if s.Finish != q.Finish || s.EnergyCost != q.EnergyCost {
			t.Fatalf("point %d results differ: %+v vs %+v", i, s, q)
		}
	}
}

func TestSweepGridParallelDegenerate(t *testing.T) {
	p := paperex.Nine()
	if got := SweepGridParallel(p, nil, nil, sched.Options{}, 4); len(got) != 0 {
		t.Fatalf("empty sweep returned %d points", len(got))
	}
	// One job, many workers.
	got := SweepGridParallel(p, []float64{16}, []float64{14}, sched.Options{}, 64)
	if len(got) != 1 || !got[0].Feasible() {
		t.Fatalf("single-job sweep wrong: %+v", got)
	}
	// Zero workers defaults to GOMAXPROCS.
	got = SweepGridParallel(p, []float64{16}, []float64{14}, sched.Options{}, 0)
	if len(got) != 1 {
		t.Fatalf("auto-worker sweep wrong: %+v", got)
	}
}
