package analysis

import (
	"context"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/service"
)

// SweepGridParallel evaluates the same design points as SweepGrid on a
// bounded worker pool (every scheduler run is independent, so
// exploration parallelizes trivially). Results are returned in the
// same order as the sequential sweep. workers <= 0 selects GOMAXPROCS.
func SweepGridParallel(p *model.Problem, pmaxs, pmins []float64, opts sched.Options, workers int) []Point {
	return SweepGridParallelCtx(context.Background(), p, pmaxs, pmins, opts, workers)
}

// SweepGridParallelCtx is SweepGridParallel under a context. Once ctx
// is done, running points abort inside the pipeline and unstarted
// points are never submitted; every point that did not complete carries
// the context's error in its Err field, so a partial sweep is
// distinguishable point by point.
func SweepGridParallelCtx(ctx context.Context, p *model.Problem, pmaxs, pmins []float64, opts sched.Options, workers int) []Point {
	type job struct {
		pmax, pmin float64
	}
	var jobs []job
	for _, pm := range pmaxs {
		for _, pn := range pmins {
			if pn > pm {
				continue
			}
			jobs = append(jobs, job{pmax: pm, pmin: pn})
		}
	}
	out := make([]Point, len(jobs))
	ran := make([]bool, len(jobs))
	err := service.NewPool(workers).ForEachCtx(ctx, len(jobs), func(i int) {
		ran[i] = true
		q := p.Clone()
		q.Pmax, q.Pmin = jobs[i].pmax, jobs[i].pmin
		out[i] = runCtx(ctx, q, opts)
	})
	if err != nil {
		for i := range out {
			if !ran[i] {
				out[i] = Point{Pmax: jobs[i].pmax, Pmin: jobs[i].pmin, Err: err}
			}
		}
	}
	return out
}

// SweepPmaxParallel is SweepPmax submitted through a scheduling
// service: design points are evaluated concurrently on the service's
// worker pool, and each point's schedule lands in (or is served from)
// the content-addressed cache, so re-sweeping overlapping budget lists
// only computes the new points. A nil svc selects service.Shared().
func SweepPmaxParallel(p *model.Problem, budgets []float64, opts sched.Options, svc *service.Service) []Point {
	return SweepPmaxParallelCtx(context.Background(), p, budgets, opts, svc)
}

// SweepPmaxParallelCtx is SweepPmaxParallel under a context; see
// SweepGridParallelCtx for the partial-sweep contract.
func SweepPmaxParallelCtx(ctx context.Context, p *model.Problem, budgets []float64, opts sched.Options, svc *service.Service) []Point {
	if svc == nil {
		svc = service.Shared()
	}
	reqs := make([]service.Request, len(budgets))
	probs := make([]*model.Problem, len(budgets))
	for i, pm := range budgets {
		q := p.Clone()
		q.Pmax = pm
		if q.Pmin > pm {
			q.Pmin = pm
		}
		probs[i] = q
		reqs[i] = service.Request{Problem: q, Opts: opts, Stage: service.StageMinPower}
	}
	resps := svc.ScheduleBatchCtx(ctx, reqs)
	pts := make([]Point, len(budgets))
	for i, resp := range resps {
		pt := Point{Pmax: probs[i].Pmax, Pmin: probs[i].Pmin}
		if resp.Err != nil {
			pt.Err = resp.Err
		} else {
			pt.Finish = resp.Result.Finish()
			pt.EnergyCost = resp.Result.EnergyCost()
			pt.Utilization = resp.Result.Utilization()
		}
		pts[i] = pt
	}
	return pts
}
