package analysis

import (
	"runtime"
	"sync"

	"repro/internal/model"
	"repro/internal/sched"
)

// SweepGridParallel evaluates the same design points as SweepGrid using
// a worker pool (every scheduler run is independent, so exploration
// parallelizes trivially). Results are returned in the same order as
// the sequential sweep. workers <= 0 selects GOMAXPROCS.
func SweepGridParallel(p *model.Problem, pmaxs, pmins []float64, opts sched.Options, workers int) []Point {
	type job struct {
		idx        int
		pmax, pmin float64
	}
	var jobs []job
	for _, pm := range pmaxs {
		for _, pn := range pmins {
			if pn > pm {
				continue
			}
			jobs = append(jobs, job{idx: len(jobs), pmax: pm, pmin: pn})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]Point, len(jobs))
	if len(jobs) == 0 {
		return out
	}

	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				q := p.Clone()
				q.Pmax, q.Pmin = j.pmax, j.pmin
				out[j.idx] = run(q, opts)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return out
}
