// Package analysis provides the design-space exploration layer of the
// IMPACCT framework: constraint sweeps, Pareto fronts over the
// power/performance trade-off, heuristic comparisons for ablation
// studies, and a random problem generator for scaling experiments.
// The paper's stated purpose for the tool is "to enable the exploration
// of many more points in the design space"; this package is that loop.
package analysis

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/sched"
)

// Point is one evaluated design point.
type Point struct {
	// Pmax and Pmin are the constraints the point was scheduled under.
	Pmax, Pmin float64
	// Finish is the schedule finish time (0 when infeasible).
	Finish model.Time
	// EnergyCost and Utilization are the power metrics at Pmin.
	EnergyCost  float64
	Utilization float64
	// Err records infeasibility or a heuristic failure.
	Err error
}

// Feasible reports whether the point produced a schedule.
func (pt Point) Feasible() bool { return pt.Err == nil }

// SweepPmax schedules the problem once per max-power budget, holding
// Pmin fixed at the problem's value, and returns one point per budget
// in input order. Infeasible budgets yield points with Err set.
func SweepPmax(p *model.Problem, budgets []float64, opts sched.Options) []Point {
	pts := make([]Point, 0, len(budgets))
	for _, pm := range budgets {
		q := p.Clone()
		q.Pmax = pm
		if q.Pmin > pm {
			q.Pmin = pm
		}
		pts = append(pts, run(q, opts))
	}
	return pts
}

// SweepGrid evaluates every (pmax, pmin) combination with pmin <= pmax.
func SweepGrid(p *model.Problem, pmaxs, pmins []float64, opts sched.Options) []Point {
	var pts []Point
	for _, pm := range pmaxs {
		for _, pn := range pmins {
			if pn > pm {
				continue
			}
			q := p.Clone()
			q.Pmax, q.Pmin = pm, pn
			pts = append(pts, run(q, opts))
		}
	}
	return pts
}

func run(q *model.Problem, opts sched.Options) Point {
	return runCtx(context.Background(), q, opts)
}

func runCtx(ctx context.Context, q *model.Problem, opts sched.Options) Point {
	pt := Point{Pmax: q.Pmax, Pmin: q.Pmin}
	r, err := sched.RunCtx(ctx, q, opts)
	if err != nil {
		pt.Err = err
		return pt
	}
	pt.Finish = r.Finish()
	pt.EnergyCost = r.EnergyCost()
	pt.Utilization = r.Utilization()
	return pt
}

// Pareto returns the non-dominated feasible points of the
// finish-time/energy-cost trade-off, sorted by finish time. A point
// dominates another when it is no worse on both metrics and strictly
// better on one.
func Pareto(pts []Point) []Point {
	var feas []Point
	for _, pt := range pts {
		if pt.Feasible() {
			feas = append(feas, pt)
		}
	}
	sort.Slice(feas, func(i, j int) bool {
		if feas[i].Finish != feas[j].Finish {
			return feas[i].Finish < feas[j].Finish
		}
		return feas[i].EnergyCost < feas[j].EnergyCost
	})
	var front []Point
	bestCost := 0.0
	for _, pt := range feas {
		if len(front) == 0 || pt.EnergyCost < bestCost {
			if len(front) > 0 && front[len(front)-1].Finish == pt.Finish {
				continue
			}
			front = append(front, pt)
			bestCost = pt.EnergyCost
		}
	}
	return front
}

// FormatPoints renders points as an aligned table.
func FormatPoints(pts []Point) string {
	out := fmt.Sprintf("%8s %8s %8s %10s %6s\n", "Pmax", "Pmin", "tau(s)", "cost(J)", "util")
	for _, pt := range pts {
		if !pt.Feasible() {
			out += fmt.Sprintf("%8.4g %8.4g %8s %10s %6s  (%v)\n", pt.Pmax, pt.Pmin, "-", "-", "-", pt.Err)
			continue
		}
		out += fmt.Sprintf("%8.4g %8.4g %8d %10.2f %5.1f%%\n",
			pt.Pmax, pt.Pmin, pt.Finish, pt.EnergyCost, 100*pt.Utilization)
	}
	return out
}

// HeuristicRow is the outcome of one scheduler configuration on one
// problem, for ablation tables.
type HeuristicRow struct {
	Label       string
	Finish      model.Time
	EnergyCost  float64
	Utilization float64
	Stats       sched.Stats
	Err         error
}

// FormatHeuristicRows renders an ablation comparison as an aligned
// table.
func FormatHeuristicRows(rows []HeuristicRow) string {
	out := fmt.Sprintf("%-24s %8s %10s %6s %8s %8s\n",
		"configuration", "tau(s)", "cost(J)", "util", "scans", "moves")
	for _, r := range rows {
		if r.Err != nil {
			out += fmt.Sprintf("%-24s failed: %v\n", r.Label, r.Err)
			continue
		}
		out += fmt.Sprintf("%-24s %8d %10.2f %5.1f%% %8d %8d\n",
			r.Label, r.Finish, r.EnergyCost, 100*r.Utilization, r.Stats.Scans, r.Stats.Moves)
	}
	return out
}

// CompareHeuristics runs the full pipeline once per labeled option set.
func CompareHeuristics(p *model.Problem, configs map[string]sched.Options) []HeuristicRow {
	labels := make([]string, 0, len(configs))
	for l := range configs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	rows := make([]HeuristicRow, 0, len(labels))
	for _, l := range labels {
		row := HeuristicRow{Label: l}
		r, err := sched.Run(p.Clone(), configs[l])
		if err != nil {
			row.Err = err
		} else {
			row.Finish = r.Finish()
			row.EnergyCost = r.EnergyCost()
			row.Utilization = r.Utilization()
			row.Stats = r.Stats
		}
		rows = append(rows, row)
	}
	return rows
}
