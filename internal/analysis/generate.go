package analysis

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// GenConfig parameterizes the random problem generator used for
// scaling and stress experiments. Problems are layered DAGs, which are
// always timing-feasible; the power budget is set relative to the
// generated task powers so max-power scheduling has real work to do.
type GenConfig struct {
	// Tasks is the number of tasks (default 20).
	Tasks int
	// Resources is the number of execution resources (default 4).
	Resources int
	// Layers is the precedence depth (default Tasks/5, min 2).
	Layers int
	// MaxDelay bounds task delays in [1, MaxDelay] (default 8).
	MaxDelay int
	// MaxPower bounds task powers in (0, MaxPower] (default 10).
	MaxPower float64
	// EdgeProb is the chance of a precedence edge between tasks in
	// adjacent layers (default 0.3).
	EdgeProb float64
	// WindowProb is the chance a precedence edge also carries a
	// (generous) max separation (default 0.2).
	WindowProb float64
	// BudgetFactor scales Pmax: the sum of the two largest task powers
	// times this factor (default 1.2), so some but not all parallelism
	// survives.
	BudgetFactor float64
	// Seed drives the generator.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Tasks == 0 {
		c.Tasks = 20
	}
	if c.Resources == 0 {
		c.Resources = 4
	}
	if c.Layers == 0 {
		c.Layers = max(2, c.Tasks/5)
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 8
	}
	if c.MaxPower == 0 {
		c.MaxPower = 10
	}
	if c.EdgeProb == 0 {
		c.EdgeProb = 0.3
	}
	if c.WindowProb == 0 {
		c.WindowProb = 0.2
	}
	if c.BudgetFactor == 0 {
		c.BudgetFactor = 1.2
	}
	return c
}

// Generate builds a random, feasible power-aware scheduling problem.
func Generate(cfg GenConfig) *model.Problem {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &model.Problem{Name: fmt.Sprintf("gen-%d-tasks-seed-%d", cfg.Tasks, cfg.Seed)}

	layerOf := make([]int, cfg.Tasks)
	for i := 0; i < cfg.Tasks; i++ {
		layerOf[i] = i * cfg.Layers / cfg.Tasks
		p.AddTask(model.Task{
			Name:     fmt.Sprintf("t%03d", i),
			Resource: fmt.Sprintf("R%d", rng.Intn(cfg.Resources)),
			Delay:    1 + rng.Intn(cfg.MaxDelay),
			Power:    1 + rng.Float64()*(cfg.MaxPower-1),
		})
	}

	for i := 0; i < cfg.Tasks; i++ {
		for j := i + 1; j < cfg.Tasks; j++ {
			if layerOf[j] != layerOf[i]+1 || rng.Float64() >= cfg.EdgeProb {
				continue
			}
			from, to := p.Tasks[i].Name, p.Tasks[j].Name
			min := p.Tasks[i].Delay
			if rng.Float64() < cfg.WindowProb {
				// Generous window: wide enough that a serialized
				// schedule still fits.
				p.Window(from, to, min, min+cfg.MaxDelay*cfg.Tasks)
			} else {
				p.MinSep(from, to, min)
			}
		}
	}

	// Power budget: allow roughly two heavy tasks in parallel.
	first, second := 0.0, 0.0
	for _, t := range p.Tasks {
		if t.Power > first {
			first, second = t.Power, first
		} else if t.Power > second {
			second = t.Power
		}
	}
	p.Pmax = (first + second) * cfg.BudgetFactor
	p.Pmin = p.Pmax / 2
	return p
}
