package analysis

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/schedule"
)

func TestSweepPmaxShape(t *testing.T) {
	p := paperex.Nine()
	budgets := []float64{10, 12, 16, 24}
	pts := SweepPmax(p, budgets, sched.Options{})
	if len(pts) != len(budgets) {
		t.Fatalf("points = %d, want %d", len(pts), len(budgets))
	}
	for i, pt := range pts {
		if pt.Pmax != budgets[i] {
			t.Errorf("point %d pmax = %g, want %g", i, pt.Pmax, budgets[i])
		}
		if !pt.Feasible() {
			t.Errorf("budget %g infeasible: %v", pt.Pmax, pt.Err)
		}
		if pt.Pmin > pt.Pmax {
			t.Errorf("point %d has pmin %g > pmax %g", i, pt.Pmin, pt.Pmax)
		}
	}
	// Finish time must not improve as the budget tightens.
	for i := 1; i < len(pts); i++ {
		if pts[i].Finish > pts[i-1].Finish {
			continue // looser budget, shorter or equal schedule: fine
		}
	}
	if pts[0].Finish < pts[len(pts)-1].Finish {
		t.Errorf("tightest budget (%g) finished faster than loosest (%g): %d < %d",
			budgets[0], budgets[3], pts[0].Finish, pts[3].Finish)
	}
}

func TestSweepPmaxMarksInfeasible(t *testing.T) {
	p := paperex.Nine()
	pts := SweepPmax(p, []float64{1}, sched.Options{})
	if pts[0].Feasible() {
		t.Fatal("1 W budget reported feasible")
	}
}

func TestSweepGridSkipsInvertedPairs(t *testing.T) {
	p := paperex.Nine()
	pts := SweepGrid(p, []float64{16, 20}, []float64{10, 18}, sched.Options{})
	// (16,18) is skipped: 3 combinations remain.
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	for _, pt := range pts {
		if pt.Pmin > pt.Pmax {
			t.Errorf("grid produced pmin %g > pmax %g", pt.Pmin, pt.Pmax)
		}
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point{
		{Finish: 10, EnergyCost: 22},
		{Finish: 12, EnergyCost: 10},
		{Finish: 12, EnergyCost: 15}, // dominated (same tau, worse cost)
		{Finish: 14, EnergyCost: 12}, // dominated by (12,10)
		{Finish: 16, EnergyCost: 0},
		{Finish: 20, EnergyCost: 5, Err: errTest}, // infeasible: excluded
	}
	front := Pareto(pts)
	if len(front) != 3 {
		t.Fatalf("front = %+v, want 3 points", front)
	}
	wantTau := []int{10, 12, 16}
	for i, w := range wantTau {
		if front[i].Finish != w {
			t.Errorf("front[%d].Finish = %d, want %d", i, front[i].Finish, w)
		}
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test" }

// TestQuickParetoIsNonDominated: no front point dominates another and
// every input point is dominated-by-or-equal-to some front point.
func TestQuickParetoIsNonDominated(t *testing.T) {
	f := func(raw []uint16) bool {
		var pts []Point
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{
				Finish:     int(raw[i]%100) + 1,
				EnergyCost: float64(raw[i+1] % 500),
			})
		}
		front := Pareto(pts)
		dominates := func(a, b Point) bool {
			return a.Finish <= b.Finish && a.EnergyCost <= b.EnergyCost &&
				(a.Finish < b.Finish || a.EnergyCost < b.EnergyCost)
		}
		for i, a := range front {
			for j, b := range front {
				if i != j && dominates(a, b) {
					return false
				}
			}
		}
		for _, p := range pts {
			covered := false
			for _, fpt := range front {
				if !dominates(p, fpt) {
					covered = true
					break
				}
			}
			if !covered && len(front) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormatPoints(t *testing.T) {
	out := FormatPoints([]Point{
		{Pmax: 16, Pmin: 14, Finish: 12, EnergyCost: 10, Utilization: 0.9},
		{Pmax: 1, Pmin: 1, Err: errTest},
	})
	if !strings.Contains(out, "16") || !strings.Contains(out, "90.0%") {
		t.Errorf("missing feasible row: %s", out)
	}
	if !strings.Contains(out, "test") {
		t.Errorf("missing infeasible annotation: %s", out)
	}
}

func TestGenerateIsValidAndSchedulable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := Generate(GenConfig{Tasks: 15, Seed: seed})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r, err := sched.Run(p, sched.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := schedule.CheckTimeValid(r.Graph, r.Compiled, r.Schedule); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.Profile.Valid(p.Pmax) {
			t.Fatalf("seed %d: schedule exceeds generated budget", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Tasks: 12, Seed: 3})
	b := Generate(GenConfig{Tasks: 12, Seed: 3})
	if len(a.Tasks) != len(b.Tasks) || len(a.Constraints) != len(b.Constraints) {
		t.Fatal("same seed produced different problems")
	}
	for i := range a.Tasks {
		if !reflect.DeepEqual(a.Tasks[i], b.Tasks[i]) {
			t.Fatalf("task %d differs: %+v vs %+v", i, a.Tasks[i], b.Tasks[i])
		}
	}
	c := Generate(GenConfig{Tasks: 12, Seed: 4})
	same := len(a.Constraints) == len(c.Constraints)
	if same {
		for i := range a.Tasks {
			if !reflect.DeepEqual(a.Tasks[i], c.Tasks[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical problems")
	}
}

func TestCompareHeuristics(t *testing.T) {
	rows := CompareHeuristics(paperex.Nine(), map[string]sched.Options{
		"default":  {},
		"forward":  {ScanOrders: []sched.ScanOrder{sched.ScanForward}},
		"no-locks": {DisableLocks: true},
	})
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Sorted by label.
	if rows[0].Label != "default" || rows[1].Label != "forward" || rows[2].Label != "no-locks" {
		t.Fatalf("label order: %v, %v, %v", rows[0].Label, rows[1].Label, rows[2].Label)
	}
	for _, row := range rows {
		if row.Err != nil {
			t.Errorf("%s failed: %v", row.Label, row.Err)
		}
		if row.Finish == 0 {
			t.Errorf("%s has zero finish", row.Label)
		}
	}
}

func TestFormatHeuristicRows(t *testing.T) {
	rows := []HeuristicRow{
		{Label: "ok", Finish: 12, EnergyCost: 10, Utilization: 0.9},
		{Label: "bad", Err: errTest},
	}
	out := FormatHeuristicRows(rows)
	if !strings.Contains(out, "ok") || !strings.Contains(out, "90.0%") {
		t.Errorf("missing row: %s", out)
	}
	if !strings.Contains(out, "failed: test") {
		t.Errorf("missing failure row: %s", out)
	}
}
