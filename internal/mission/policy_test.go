package mission

import (
	"testing"

	"repro/internal/power"
	"repro/internal/rover"
)

func TestJPLPolicyFixedIteration(t *testing.T) {
	p := &JPLPolicy{}
	if p.Name() != "JPL" {
		t.Fatalf("Name = %q", p.Name())
	}
	for _, c := range rover.Cases {
		it, err := p.Next(Condition{Case: c, Solar: rover.Table2(c).Solar})
		if err != nil {
			t.Fatal(err)
		}
		if it.Duration != rover.JPLIterationSeconds || it.Steps != rover.StepsPerIteration {
			t.Errorf("%s: iteration %+v, want 75 s / 2 steps", c, it)
		}
	}
	// Cached on second call.
	a, _ := p.Next(Condition{Case: rover.Best})
	b, _ := p.Next(Condition{Case: rover.Best})
	if a != b {
		t.Error("JPL iterations not cached/stable")
	}
}

func TestPowerAwarePolicyWarmup(t *testing.T) {
	p := &PowerAwarePolicy{}
	p.Reset()
	best := Condition{Case: rover.Best, Solar: 14.9}

	first, err := p.Next(best)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Next(best)
	if err != nil {
		t.Fatal(err)
	}
	if first.Name == second.Name {
		t.Fatalf("first (%s) and second (%s) iterations should differ (cold+preheat then warm)",
			first.Name, second.Name)
	}
	if second.EnergyCost >= first.EnergyCost {
		t.Errorf("warm iteration cost %.1f not below cold %.1f", second.EnergyCost, first.EnergyCost)
	}

	// A case change resets warmth for the preheated case.
	if _, err := p.Next(Condition{Case: rover.Typical, Solar: 12}); err != nil {
		t.Fatal(err)
	}
	again, err := p.Next(best)
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != first.Name {
		t.Errorf("after case change, best-case iteration = %s, want the cold %s", again.Name, first.Name)
	}

	// Reset also clears warmth.
	if _, err := p.Next(best); err != nil { // warm again
		t.Fatal(err)
	}
	p.Reset()
	cold, err := p.Next(best)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Name != first.Name {
		t.Errorf("after Reset, iteration = %s, want cold %s", cold.Name, first.Name)
	}
}

func TestPowerAwarePolicyNonPreheatCasesAreCold(t *testing.T) {
	p := &PowerAwarePolicy{}
	cond := Condition{Case: rover.Typical, Solar: 12}
	a, err := p.Next(cond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Next(cond)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || a.Duration != 60 {
		t.Errorf("typical iterations: %+v then %+v, want repeated 60 s cold", a, b)
	}
}

func TestPhaseAt(t *testing.T) {
	phases := PaperScenario()
	cases := map[int]int{0: 0, 599: 0, 600: 1, 1199: 1, 1200: 2, 99999: 2}
	for tt, want := range cases {
		if got := phaseAt(phases, tt); got != want {
			t.Errorf("phaseAt(%d) = %d, want %d", tt, got, want)
		}
	}
}

// TestRangePowerAwareTravelsFarther: on a fixed battery, the
// power-aware rover out-ranges the JPL baseline because it spends free
// solar energy in the cheap phases and reaches the expensive dusk phase
// with more charge left.
func TestRangePowerAwareTravelsFarther(t *testing.T) {
	phases := PaperScenario()
	jplRep, err := Range(phases, &JPLPolicy{}, &power.Battery{Capacity: 3000, MaxPower: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	paRep, err := Range(phases, &PowerAwarePolicy{}, &power.Battery{Capacity: 3000, MaxPower: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if paRep.TotalSteps <= jplRep.TotalSteps {
		t.Errorf("power-aware range %d steps not beyond JPL's %d", paRep.TotalSteps, jplRep.TotalSteps)
	}
	if jplRep.BatteryDrawn > 3000 || paRep.BatteryDrawn > 3000 {
		t.Error("range overdrew the battery")
	}
	t.Logf("3000 J battery: JPL %d steps in %d s, power-aware %d steps in %d s",
		jplRep.TotalSteps, jplRep.TotalSeconds, paRep.TotalSteps, paRep.TotalSeconds)
}

func TestRangeValidation(t *testing.T) {
	if _, err := Range(nil, &JPLPolicy{}, &power.Battery{Capacity: 10}, 0); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := Range(PaperScenario(), &JPLPolicy{}, nil, 0); err == nil {
		t.Error("nil battery accepted")
	}
	if _, err := Range(PaperScenario(), &JPLPolicy{}, &power.Battery{MaxPower: 10}, 0); err == nil {
		t.Error("untracked battery accepted")
	}
	// A free-running policy with an effectively infinite battery trips
	// the iteration guard rather than spinning forever.
	if _, err := Range(PaperScenario(), &JPLPolicy{}, &power.Battery{Capacity: 1e12, MaxPower: 10}, 50); err == nil {
		t.Error("runaway range not stopped")
	}
}

func TestMaxIterationsGuard(t *testing.T) {
	cfg := Config{
		TargetSteps:   1000000,
		Phases:        PaperScenario(),
		Policy:        &JPLPolicy{},
		MaxIterations: 10,
	}
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("runaway mission not stopped")
	}
}
