package mission

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/rover"
)

// FaultKind classifies a scenario-scripted environment fault.
type FaultKind string

// Scenario fault kinds.
const (
	// FaultDropout is a total loss of solar output for a window.
	FaultDropout FaultKind = "dropout"
	// FaultBrownout scales the solar output by Factor for a window.
	FaultBrownout FaultKind = "brownout"
)

// FaultPhase is one scripted environment fault: a window of mission
// time during which the solar output is degraded. Scripted faults let
// a scenario pin down the off-nominal conditions a simulation must
// reproduce deterministically, independent of any randomized fault
// model layered on top.
type FaultPhase struct {
	Kind     FaultKind
	Start    model.Time
	Duration model.Time
	// Factor multiplies the solar output during the window (brownout
	// only; a dropout is factor 0 by definition).
	Factor float64
}

// Scenario is a mission description loaded from a scenario file.
type Scenario struct {
	Name        string
	TargetSteps int
	Phases      []Phase
	// Battery is nil when the scenario does not track one.
	Battery *power.Battery
	// Faults are the scripted environment fault windows, in file order.
	Faults []FaultPhase
}

// ParseScenario reads the line-oriented scenario format:
//
//	scenario <name>
//	steps <n>
//	battery <capacity-J> <maxpower-W>     # capacity 0 = untracked
//	phase <duration-s> <case> <solar-W>   # case: best|typical|worst
//	                                      # duration 0 = until done (last)
//	fault dropout <start-s> <duration-s>
//	fault brownout <start-s> <duration-s> <factor>
//
// '#' starts a comment; blank lines are ignored.
func ParseScenario(r io.Reader) (*Scenario, error) {
	sc := &Scenario{}
	scanner := bufio.NewScanner(r)
	lineno := 0
	for scanner.Scan() {
		lineno++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := sc.directive(fields); err != nil {
			return nil, fmt.Errorf("scenario: line %d: %w", lineno, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// ParseScenarioFile loads a scenario from the named file.
func ParseScenarioFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := ParseScenario(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

func (sc *Scenario) directive(f []string) error {
	switch f[0] {
	case "scenario":
		if len(f) != 2 {
			return fmt.Errorf("scenario wants <name>")
		}
		sc.Name = f[1]
	case "steps":
		if len(f) != 2 {
			return fmt.Errorf("steps wants <n>")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("bad steps %q", f[1])
		}
		sc.TargetSteps = n
	case "battery":
		if len(f) != 3 {
			return fmt.Errorf("battery wants <capacity-J> <maxpower-W>")
		}
		capacity, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return fmt.Errorf("bad capacity %q", f[1])
		}
		maxp, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return fmt.Errorf("bad max power %q", f[2])
		}
		sc.Battery = &power.Battery{Capacity: capacity, MaxPower: maxp}
	case "phase":
		if len(f) != 4 {
			return fmt.Errorf("phase wants <duration-s> <case> <solar-W>")
		}
		dur, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("bad duration %q", f[1])
		}
		var c rover.Case
		switch f[2] {
		case "best":
			c = rover.Best
		case "typical":
			c = rover.Typical
		case "worst":
			c = rover.Worst
		default:
			return fmt.Errorf("unknown case %q (want best|typical|worst)", f[2])
		}
		solar, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return fmt.Errorf("bad solar %q", f[3])
		}
		sc.Phases = append(sc.Phases, Phase{
			Duration: model.Time(dur),
			Cond:     Condition{Case: c, Solar: solar},
		})
	case "fault":
		if len(f) < 4 {
			return fmt.Errorf("fault wants <kind> <start-s> <duration-s> [factor]")
		}
		var fp FaultPhase
		switch f[1] {
		case string(FaultDropout):
			if len(f) != 4 {
				return fmt.Errorf("fault dropout wants <start-s> <duration-s>")
			}
			fp.Kind = FaultDropout
		case string(FaultBrownout):
			if len(f) != 5 {
				return fmt.Errorf("fault brownout wants <start-s> <duration-s> <factor>")
			}
			fp.Kind = FaultBrownout
			factor, err := strconv.ParseFloat(f[4], 64)
			if err != nil {
				return fmt.Errorf("bad factor %q", f[4])
			}
			fp.Factor = factor
		default:
			return fmt.Errorf("unknown fault kind %q (want dropout|brownout)", f[1])
		}
		start, err := strconv.Atoi(f[2])
		if err != nil {
			return fmt.Errorf("bad fault start %q", f[2])
		}
		dur, err := strconv.Atoi(f[3])
		if err != nil {
			return fmt.Errorf("bad fault duration %q", f[3])
		}
		fp.Start, fp.Duration = model.Time(start), model.Time(dur)
		sc.Faults = append(sc.Faults, fp)
	default:
		return fmt.Errorf("unknown directive %q", f[0])
	}
	return nil
}

func (sc *Scenario) validate() error {
	if len(sc.Phases) == 0 {
		return fmt.Errorf("scenario: no phases")
	}
	if sc.TargetSteps <= 0 {
		return fmt.Errorf("scenario: steps must be positive, got %d", sc.TargetSteps)
	}
	for i, ph := range sc.Phases {
		if ph.Duration == 0 && i != len(sc.Phases)-1 {
			return fmt.Errorf("scenario: only the final phase may have duration 0 (phase %d)", i+1)
		}
		if ph.Duration < 0 || ph.Cond.Solar < 0 {
			return fmt.Errorf("scenario: phase %d has negative values", i+1)
		}
	}
	if sc.Battery != nil && (sc.Battery.Capacity < 0 || sc.Battery.MaxPower < 0) {
		return fmt.Errorf("scenario: battery has negative values")
	}
	for i, fp := range sc.Faults {
		if fp.Start < 0 || fp.Duration <= 0 {
			return fmt.Errorf("scenario: fault %d needs start >= 0 and duration > 0", i+1)
		}
		if fp.Kind == FaultBrownout && (fp.Factor < 0 || fp.Factor >= 1) {
			return fmt.Errorf("scenario: fault %d brownout factor %g outside [0,1)", i+1, fp.Factor)
		}
	}
	return nil
}

// Config builds a simulator configuration for the scenario and policy.
func (sc *Scenario) Config(policy Policy) Config {
	return Config{
		TargetSteps: sc.TargetSteps,
		Phases:      sc.Phases,
		Policy:      policy,
		Battery:     sc.Battery,
	}
}

// FormatScenario renders a scenario in the file format; output
// round-trips through ParseScenario.
func FormatScenario(sc *Scenario) string {
	var b strings.Builder
	if sc.Name != "" {
		fmt.Fprintf(&b, "scenario %s\n", sc.Name)
	}
	fmt.Fprintf(&b, "steps %d\n", sc.TargetSteps)
	if sc.Battery != nil {
		fmt.Fprintf(&b, "battery %g %g\n", sc.Battery.Capacity, sc.Battery.MaxPower)
	}
	for _, ph := range sc.Phases {
		fmt.Fprintf(&b, "phase %d %s %g\n", ph.Duration, ph.Cond.Case, ph.Cond.Solar)
	}
	for _, fp := range sc.Faults {
		if fp.Kind == FaultBrownout {
			fmt.Fprintf(&b, "fault %s %d %d %g\n", fp.Kind, fp.Start, fp.Duration, fp.Factor)
		} else {
			fmt.Fprintf(&b, "fault %s %d %d\n", fp.Kind, fp.Start, fp.Duration)
		}
	}
	return b.String()
}
