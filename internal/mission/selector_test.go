package mission

import (
	"testing"

	"repro/internal/rover"
	"repro/internal/runtime"
	"repro/internal/sched"
)

func buildLibrary(t *testing.T) *runtime.Selector {
	t.Helper()
	var sel runtime.Selector
	for _, c := range rover.Cases {
		p := rover.BuildIteration(c, rover.Cold)
		r, err := sched.Run(p, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sel.Add(runtime.NewEntry(p.Name, p, r.Schedule))
	}
	return &sel
}

func TestSelectorPolicyPicksPerPhase(t *testing.T) {
	pol := &SelectorPolicy{Library: buildLibrary(t), BatteryMax: 10}
	// Best conditions: the 50 s schedule fits the 24.9 W budget.
	it, err := pol.Next(Condition{Case: rover.Best, Solar: 14.9})
	if err != nil {
		t.Fatal(err)
	}
	if it.Duration != 50 {
		t.Errorf("best-phase iteration = %d s, want 50", it.Duration)
	}
	// Worst conditions (19 W): only the serialized 75 s schedule fits
	// apart from the typical one at 18.8 W; the selector prefers the
	// faster valid schedule, which is the 60 s typical-structure
	// schedule evaluated at 9 W solar.
	it, err = pol.Next(Condition{Case: rover.Worst, Solar: 9})
	if err != nil {
		t.Fatal(err)
	}
	if it.Duration > 75 {
		t.Errorf("worst-phase iteration = %d s, want <= 75", it.Duration)
	}
}

func TestSelectorPolicyMissionCompletes(t *testing.T) {
	pol := &SelectorPolicy{Library: buildLibrary(t), BatteryMax: 10}
	rep, err := Simulate(Config{TargetSteps: 48, Phases: PaperScenario(), Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSteps < 48 {
		t.Fatalf("mission incomplete: %d steps", rep.TotalSteps)
	}
	// The library-driven rover must beat the fixed JPL mission on time.
	jpl, err := Simulate(Config{TargetSteps: 48, Phases: PaperScenario(), Policy: &JPLPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSeconds >= jpl.TotalSeconds {
		t.Errorf("selector mission (%d s) not faster than JPL (%d s)",
			rep.TotalSeconds, jpl.TotalSeconds)
	}
}

func TestSelectorPolicyErrors(t *testing.T) {
	pol := &SelectorPolicy{}
	if _, err := pol.Next(Condition{Solar: 10}); err == nil {
		t.Fatal("missing library accepted")
	}
	var empty runtime.Selector
	pol = &SelectorPolicy{Library: &empty, BatteryMax: 10}
	if _, err := pol.Next(Condition{Solar: 10}); err == nil {
		t.Fatal("empty library accepted")
	}
	if pol.Name() == "" {
		t.Fatal("no name")
	}
}
