package mission

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzScenario feeds arbitrary scenario text through the parser. The
// parser must never panic, every accepted scenario must satisfy the
// documented invariants, and the Format/Parse pair must be a fixed
// point: formatting an accepted scenario and re-parsing it yields the
// same formatted text. Rejected inputs (malformed directives, comment
// and blank-line edge cases, negative values) are fine; an accepted
// scenario that breaks its invariants is not.
func FuzzScenario(f *testing.F) {
	seeds := []string{
		"scenario s\nsteps 48\nbattery 5000 10\nphase 600 best 14.9\nphase 0 worst 9\n",
		"steps 1\nphase 0 typical 12\n",
		"# comment only\n\nsteps 2\nphase 10 best 14.9 # trailing\nphase 0 worst 9\n",
		"steps 4\nphase 600 best 14.9\nfault dropout 100 30\nfault brownout 200 60 0.5\n",
		"steps 4\nphase 0 night 1\n",
		"battery 5000\n",
		"fault dropout 1 1\n",
		"steps 0x10\nphase 0 best 9\n",
		"\n\n#\n  # indented comment\nsteps 3\nphase 0 best 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Seed the corpus with the repository's real scenario documents,
	// mirroring FuzzPipeline's testdata-backed corpus.
	docs, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.scenario"))
	if err != nil {
		f.Fatal(err)
	}
	if len(docs) == 0 {
		f.Fatal("no testdata scenario documents found for the corpus")
	}
	for _, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 4096 {
			return
		}
		sc, err := ParseScenario(strings.NewReader(input))
		if err != nil {
			return
		}
		// Invariants the validator promises.
		if sc.TargetSteps <= 0 || len(sc.Phases) == 0 {
			t.Fatalf("accepted scenario violates invariants: %+v", sc)
		}
		for i, ph := range sc.Phases {
			if ph.Duration < 0 || ph.Cond.Solar < 0 {
				t.Fatalf("phase %d negative: %+v", i, ph)
			}
			if ph.Duration == 0 && i != len(sc.Phases)-1 {
				t.Fatalf("open-ended phase %d is not final", i)
			}
		}
		for i, fp := range sc.Faults {
			if fp.Start < 0 || fp.Duration <= 0 {
				t.Fatalf("fault %d out of range: %+v", i, fp)
			}
			if fp.Kind == FaultBrownout && (fp.Factor < 0 || fp.Factor >= 1) {
				t.Fatalf("fault %d factor out of range: %+v", i, fp)
			}
		}
		// Format must re-parse to the same formatted text.
		out := FormatScenario(sc)
		sc2, err := ParseScenario(strings.NewReader(out))
		if err != nil {
			t.Fatalf("formatted scenario rejected: %v\n%s", err, out)
		}
		if out2 := FormatScenario(sc2); out2 != out {
			t.Fatalf("format not a fixed point:\n--- first\n%s--- second\n%s", out, out2)
		}
	})
}
