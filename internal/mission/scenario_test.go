package mission

import (
	"os"
	"strings"
	"testing"

	"repro/internal/rover"
)

const paperScenarioText = `
# Table 4 scenario
scenario paper
steps 48
battery 5000 10
phase 600 best 14.9
phase 600 typical 12
phase 0 worst 9
`

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(paperScenarioText))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "paper" || sc.TargetSteps != 48 {
		t.Fatalf("header: %+v", sc)
	}
	if sc.Battery == nil || sc.Battery.Capacity != 5000 || sc.Battery.MaxPower != 10 {
		t.Fatalf("battery: %+v", sc.Battery)
	}
	if len(sc.Phases) != 3 {
		t.Fatalf("phases: %d", len(sc.Phases))
	}
	if sc.Phases[1].Cond.Case != rover.Typical || sc.Phases[1].Cond.Solar != 12 || sc.Phases[1].Duration != 600 {
		t.Fatalf("phase 2: %+v", sc.Phases[1])
	}
	if sc.Phases[2].Duration != 0 {
		t.Fatalf("final phase should be open-ended: %+v", sc.Phases[2])
	}
}

func TestScenarioMatchesPaperScenario(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(paperScenarioText))
	if err != nil {
		t.Fatal(err)
	}
	want := PaperScenario()
	for i := range want {
		if sc.Phases[i] != want[i] {
			t.Errorf("phase %d = %+v, want %+v", i, sc.Phases[i], want[i])
		}
	}
}

func TestScenarioSimulates(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(paperScenarioText))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(sc.Config(&JPLPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSteps != 48 || rep.TotalSeconds != 1800 {
		t.Fatalf("report: %d steps in %d s", rep.TotalSteps, rep.TotalSeconds)
	}
	if rep.BatteryDrawn == 0 {
		t.Fatal("battery not tracked through scenario config")
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(paperScenarioText))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseScenario(strings.NewReader(FormatScenario(sc)))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, FormatScenario(sc))
	}
	if again.Name != sc.Name || again.TargetSteps != sc.TargetSteps || len(again.Phases) != len(sc.Phases) {
		t.Fatal("round trip lost data")
	}
	for i := range sc.Phases {
		if again.Phases[i] != sc.Phases[i] {
			t.Errorf("phase %d differs", i)
		}
	}
}

func TestScenarioErrors(t *testing.T) {
	cases := map[string]string{
		"no phases":            "steps 4\n",
		"no steps":             "phase 0 best 14.9\n",
		"bad steps":            "steps x\nphase 0 best 14.9\n",
		"bad case":             "steps 4\nphase 0 night 1\n",
		"bad duration":         "steps 4\nphase x best 14.9\n",
		"bad solar":            "steps 4\nphase 0 best x\n",
		"bad battery":          "steps 4\nbattery x 10\nphase 0 best 14.9\n",
		"unknown directive":    "steps 4\nwarp 9\nphase 0 best 14.9\n",
		"open-ended mid-phase": "steps 4\nphase 0 best 14.9\nphase 600 worst 9\n",
		"phase arity":          "steps 4\nphase 0 best\n",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseScenario(strings.NewReader(text)); err == nil {
				t.Fatalf("accepted %q", text)
			}
		})
	}
}

func TestParseScenarioFile(t *testing.T) {
	path := t.TempDir() + "/m.scenario"
	if err := writeFile(path, paperScenarioText); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseScenarioFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseScenarioFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func writeFile(path, text string) error {
	return os.WriteFile(path, []byte(text), 0o644)
}

const faultyScenarioText = `
scenario faulty
steps 4
battery 5000 10
phase 600 best 14.9
phase 0 worst 9
fault dropout 100 30
fault brownout 200 60 0.5
`

func TestParseScenarioFaults(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(faultyScenarioText))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 2 {
		t.Fatalf("faults: %d, want 2", len(sc.Faults))
	}
	want0 := FaultPhase{Kind: FaultDropout, Start: 100, Duration: 30}
	want1 := FaultPhase{Kind: FaultBrownout, Start: 200, Duration: 60, Factor: 0.5}
	if sc.Faults[0] != want0 || sc.Faults[1] != want1 {
		t.Fatalf("faults = %+v", sc.Faults)
	}
}

func TestScenarioFaultRoundTrip(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(faultyScenarioText))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseScenario(strings.NewReader(FormatScenario(sc)))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, FormatScenario(sc))
	}
	if len(again.Faults) != len(sc.Faults) {
		t.Fatalf("round trip lost faults: %+v", again.Faults)
	}
	for i := range sc.Faults {
		if again.Faults[i] != sc.Faults[i] {
			t.Errorf("fault %d differs: %+v vs %+v", i, again.Faults[i], sc.Faults[i])
		}
	}
}

func TestScenarioFaultErrors(t *testing.T) {
	cases := map[string]string{
		"fault arity":         "steps 4\nphase 0 best 14.9\nfault dropout 100\n",
		"unknown fault kind":  "steps 4\nphase 0 best 14.9\nfault eclipse 100 30\n",
		"bad fault start":     "steps 4\nphase 0 best 14.9\nfault dropout x 30\n",
		"bad fault duration":  "steps 4\nphase 0 best 14.9\nfault dropout 100 x\n",
		"zero duration":       "steps 4\nphase 0 best 14.9\nfault dropout 100 0\n",
		"negative start":      "steps 4\nphase 0 best 14.9\nfault dropout -1 30\n",
		"dropout with factor": "steps 4\nphase 0 best 14.9\nfault dropout 100 30 0.5\n",
		"brownout no factor":  "steps 4\nphase 0 best 14.9\nfault brownout 100 30\n",
		"bad factor":          "steps 4\nphase 0 best 14.9\nfault brownout 100 30 x\n",
		"factor >= 1":         "steps 4\nphase 0 best 14.9\nfault brownout 100 30 1.5\n",
		"negative battery":    "steps 4\nbattery -5 10\nphase 0 best 14.9\n",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseScenario(strings.NewReader(text)); err == nil {
				t.Fatalf("accepted %q", text)
			}
		})
	}
}
