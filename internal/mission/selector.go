package mission

import (
	"fmt"

	"repro/internal/rover"
	"repro/internal/runtime"
)

// SelectorPolicy drives the mission from a precomputed schedule
// library: at each iteration it asks the runtime selector for the best
// schedule valid under the current budget (solar + battery output).
// This is the paper's section 5.3 deployment model — the rover carries
// statically computed schedules and switches between them as the
// environment changes, with no on-board scheduling.
//
// Caveat, inherited from the paper's own validity-range remark: an
// entry's validity is judged against the task powers it was built
// with. Selecting a mild-temperature schedule in a cold phase is valid
// for that entry's power model but optimistic about the real motors;
// restrict the library to one case per condition when that fidelity
// matters.
type SelectorPolicy struct {
	// Library holds the precomputed schedules.
	Library *runtime.Selector
	// BatteryMax is the battery's maximum output power (10 W for the
	// rover's pack).
	BatteryMax float64
	// StepsPerIteration defaults to the rover's two.
	StepsPerIteration int
}

// Name implements Policy.
func (*SelectorPolicy) Name() string { return "runtime-selector" }

// Reset implements Policy.
func (p *SelectorPolicy) Reset() {}

// Next implements Policy: select the fastest valid schedule for the
// condition's budget and charge its cost at the condition's free level.
func (p *SelectorPolicy) Next(cond Condition) (Iteration, error) {
	if p.Library == nil {
		return Iteration{}, fmt.Errorf("mission: selector policy has no library")
	}
	e, ok := p.Library.Select(cond.Solar+p.BatteryMax, cond.Solar)
	if !ok {
		return Iteration{}, fmt.Errorf("mission: no library schedule fits %.4g W solar + %.4g W battery",
			cond.Solar, p.BatteryMax)
	}
	steps := p.StepsPerIteration
	if steps == 0 {
		steps = rover.StepsPerIteration
	}
	return Iteration{
		Name:       e.Name,
		Duration:   e.Finish,
		EnergyCost: e.CostAt(cond.Solar),
		Steps:      steps,
	}, nil
}
