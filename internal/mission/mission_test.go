package mission

import (
	"math"
	"strings"
	"testing"

	"repro/internal/power"
	"repro/internal/rover"
)

func simulateBoth(t *testing.T) (jpl, pa Report) {
	t.Helper()
	cfgJPL := Config{TargetSteps: 48, Phases: PaperScenario(), Policy: &JPLPolicy{}}
	rj, err := Simulate(cfgJPL)
	if err != nil {
		t.Fatalf("JPL: %v", err)
	}
	cfgPA := Config{TargetSteps: 48, Phases: PaperScenario(), Policy: &PowerAwarePolicy{}}
	rp, err := Simulate(cfgPA)
	if err != nil {
		t.Fatalf("power-aware: %v", err)
	}
	return rj, rp
}

// TestTable4JPL reproduces the JPL column of Table 4: 16 steps per
// 600 s phase, 1800 s total, ~3554 J total (the paper's figure; we
// compute 3544 J because the paper's worst-case per-iteration cost is
// internally rounded — see EXPERIMENTS.md).
func TestTable4JPL(t *testing.T) {
	rj, _ := simulateBoth(t)
	for i, wantSteps := range []int{16, 16, 16} {
		if rj.Phases[i].Steps != wantSteps {
			t.Errorf("JPL phase %d steps = %d, want %d", i, rj.Phases[i].Steps, wantSteps)
		}
		if rj.Phases[i].Seconds != 600 {
			t.Errorf("JPL phase %d seconds = %d, want 600", i, rj.Phases[i].Seconds)
		}
	}
	if rj.TotalSeconds != 1800 {
		t.Errorf("JPL total time = %d, want 1800", rj.TotalSeconds)
	}
	wantCosts := []float64{0, 440, 3104}
	for i, w := range wantCosts {
		if math.Abs(rj.Phases[i].EnergyCost-w) > 1 {
			t.Errorf("JPL phase %d cost = %.1f, want %.0f", i, rj.Phases[i].EnergyCost, w)
		}
	}
}

// TestTable4PowerAware reproduces the power-aware column's shape: 24
// steps in the best phase, 20 in the typical phase, the last 4 finished
// quickly in the worst phase; total time 1350 s.
func TestTable4PowerAware(t *testing.T) {
	_, rp := simulateBoth(t)
	wantSteps := []int{24, 20, 4}
	for i, w := range wantSteps {
		if rp.Phases[i].Steps != w {
			t.Errorf("power-aware phase %d steps = %d, want %d", i, rp.Phases[i].Steps, w)
		}
	}
	if rp.TotalSeconds != 1350 {
		t.Errorf("power-aware total time = %d, want 1350", rp.TotalSeconds)
	}
	if rp.Phases[2].Seconds != 150 {
		t.Errorf("worst-phase time = %d, want 150", rp.Phases[2].Seconds)
	}
}

// TestTable4Improvements checks the headline claim: the power-aware
// schedules win on both performance and energy (paper: 33.3 % and
// 32.7 %).
func TestTable4Improvements(t *testing.T) {
	rj, rp := simulateBoth(t)
	timeImp := TimeImprovement(rj, rp)
	energyImp := EnergyImprovement(rj, rp)
	if math.Abs(timeImp-1.0/3.0) > 0.01 {
		t.Errorf("time improvement = %.3f, want ~0.333", timeImp)
	}
	if energyImp < 0.30 || energyImp > 0.40 {
		t.Errorf("energy improvement = %.3f, want ~0.33 (paper 0.327)", energyImp)
	}
}

func TestBatteryAccounting(t *testing.T) {
	bat := &power.Battery{MaxPower: 10}
	cfg := Config{TargetSteps: 48, Phases: PaperScenario(), Policy: &JPLPolicy{}, Battery: bat}
	rep, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.BatteryDrawn-rep.TotalCost) > 1e-9 {
		t.Errorf("battery drawn %.1f != total cost %.1f", rep.BatteryDrawn, rep.TotalCost)
	}
}

func TestBatteryExhaustionAbortsMission(t *testing.T) {
	bat := &power.Battery{MaxPower: 10, Capacity: 100} // far too small
	cfg := Config{TargetSteps: 48, Phases: PaperScenario(), Policy: &JPLPolicy{}, Battery: bat}
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("want battery-exhaustion error, got nil")
	}
}

func TestPhaseAttributionAtBoundary(t *testing.T) {
	// An iteration starting in phase 0 that runs past the boundary is
	// charged entirely to phase 0, as in the paper's accounting.
	phases := []Phase{
		{Duration: 80, Cond: Condition{Case: rover.Best, Solar: 14.9}},
		{Duration: 0, Cond: Condition{Case: rover.Worst, Solar: 9}},
	}
	rep, err := Simulate(Config{TargetSteps: 4, Phases: phases, Policy: &JPLPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	// Iteration 1 starts at t=0 (phase 0, 75 s); iteration 2 starts at
	// t=75 (still phase 0).
	if rep.Phases[0].Steps != 4 || rep.Phases[1].Steps != 0 {
		t.Errorf("phase attribution: %+v", rep.Phases)
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	if _, err := Simulate(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := Simulate(Config{TargetSteps: 2}); err == nil {
		t.Error("missing phases should fail")
	}
	if _, err := Simulate(Config{TargetSteps: 2, Phases: PaperScenario()}); err == nil {
		t.Error("missing policy should fail")
	}
}

func TestFormatTableShape(t *testing.T) {
	rj, rp := simulateBoth(t)
	tbl := FormatTable(rj, rp)
	for _, want := range []string{"JPL", "power-aware", "total", "improvement"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

// TestPreheatEverywhereExtension: enabling the pre-heat unrolling in
// all cases (a framework capability beyond the paper's manual best-case
// unroll) must never be slower than the paper's configuration.
func TestPreheatEverywhereExtension(t *testing.T) {
	_, rp := simulateBoth(t)
	all := &PowerAwarePolicy{Preheat: map[rover.Case]bool{rover.Best: true, rover.Typical: true, rover.Worst: true}}
	rep, err := Simulate(Config{TargetSteps: 48, Phases: PaperScenario(), Policy: all})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSeconds > rp.TotalSeconds {
		t.Errorf("preheat-everywhere total time %d > default %d", rep.TotalSeconds, rp.TotalSeconds)
	}
}
