// Package mission simulates the paper's section 6 mission scenario
// (Table 4): the rover must travel a fixed number of steps while the
// available solar power — and with it the temperature-dependent task
// powers — changes over mission time. A scheduling policy supplies one
// iteration at a time; the simulator advances the clock, counts steps,
// and charges the battery for energy drawn above the free solar level.
package mission

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/service"
)

// Condition is the environment at an instant of mission time.
type Condition struct {
	// Case selects the Table 2 parameter set in force.
	Case rover.Case
	// Solar is the free power level in watts (normally
	// rover.Table2(Case).Solar, kept explicit for experiments that
	// decouple the two).
	Solar float64
}

// Phase is a span of mission time under one condition.
type Phase struct {
	// Duration of the phase in seconds; 0 on the final phase means it
	// lasts until the mission completes.
	Duration model.Time
	Cond     Condition
}

// PaperScenario returns the Table 4 staircase: 14.9 W for 600 s, then
// 12 W for 600 s, then 9 W until done.
func PaperScenario() []Phase {
	return []Phase{
		{Duration: 600, Cond: Condition{Case: rover.Best, Solar: 14.9}},
		{Duration: 600, Cond: Condition{Case: rover.Typical, Solar: 12}},
		{Duration: 0, Cond: Condition{Case: rover.Worst, Solar: 9}},
	}
}

// Iteration is one executed schedule iteration as seen by the
// simulator.
type Iteration struct {
	// Name labels the schedule used.
	Name string
	// Duration is the iteration's finish time tau.
	Duration model.Time
	// EnergyCost is the battery energy the iteration draws.
	EnergyCost float64
	// Steps moved during the iteration.
	Steps int
}

// Policy chooses the next iteration for the current condition. Reset
// clears any internal state (e.g. motor warmth) before a new mission.
type Policy interface {
	Next(cond Condition) (Iteration, error)
	Reset()
	Name() string
}

// PhaseReport aggregates the iterations that started inside one phase,
// matching a row of Table 4.
type PhaseReport struct {
	Cond       Condition
	Steps      int
	Seconds    model.Time
	EnergyCost float64
}

// Report is the outcome of a simulated mission.
type Report struct {
	Policy       string
	Phases       []PhaseReport
	TotalSteps   int
	TotalSeconds model.Time
	TotalCost    float64
	// BatteryDrawn echoes the battery ledger when a battery was
	// configured.
	BatteryDrawn float64
}

// Config describes a mission.
type Config struct {
	// TargetSteps is the travel distance in 7 cm steps (48 in the
	// paper's scenario).
	TargetSteps int
	// Phases is the solar staircase; the final phase is unbounded if
	// its Duration is 0.
	Phases []Phase
	// Policy supplies iterations.
	Policy Policy
	// Battery, when non-nil, has every iteration's energy cost debited
	// against it and aborts the mission when exhausted.
	Battery *power.Battery
	// MaxIterations guards against non-terminating policies
	// (default 10000).
	MaxIterations int
}

// phaseAt returns the index of the phase containing mission time t.
func phaseAt(phases []Phase, t model.Time) int {
	var start model.Time
	for i, ph := range phases {
		if ph.Duration == 0 || t < start+ph.Duration {
			return i
		}
		start += ph.Duration
	}
	return len(phases) - 1
}

// Simulate runs the mission to completion (or battery exhaustion).
// Each iteration executes under the condition in force at its start
// time, exactly as the paper attributes whole iterations to time
// frames.
func Simulate(cfg Config) (Report, error) {
	if cfg.TargetSteps <= 0 {
		return Report{}, fmt.Errorf("mission: target steps must be positive, got %d", cfg.TargetSteps)
	}
	if len(cfg.Phases) == 0 {
		return Report{}, fmt.Errorf("mission: no phases")
	}
	if cfg.Policy == nil {
		return Report{}, fmt.Errorf("mission: no policy")
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 10000
	}
	cfg.Policy.Reset()

	rep := Report{Policy: cfg.Policy.Name(), Phases: make([]PhaseReport, len(cfg.Phases))}
	for i := range rep.Phases {
		rep.Phases[i].Cond = cfg.Phases[i].Cond
	}

	var t model.Time
	steps := 0
	for iter := 0; steps < cfg.TargetSteps; iter++ {
		if iter >= maxIter {
			return rep, fmt.Errorf("mission: exceeded %d iterations at %d/%d steps", maxIter, steps, cfg.TargetSteps)
		}
		pi := phaseAt(cfg.Phases, t)
		cond := cfg.Phases[pi].Cond
		it, err := cfg.Policy.Next(cond)
		if err != nil {
			return rep, fmt.Errorf("mission: t=%d: %w", t, err)
		}
		if it.Duration <= 0 || it.Steps <= 0 {
			return rep, fmt.Errorf("mission: policy returned a degenerate iteration %+v", it)
		}
		if cfg.Battery != nil {
			if err := cfg.Battery.Draw(it.EnergyCost); err != nil {
				rep.TotalSeconds = t
				rep.TotalSteps = steps
				return rep, fmt.Errorf("mission: t=%d: %w", t, err)
			}
		}
		rep.Phases[pi].Steps += it.Steps
		rep.Phases[pi].Seconds += it.Duration
		rep.Phases[pi].EnergyCost += it.EnergyCost
		t += it.Duration
		steps += it.Steps
	}
	rep.TotalSteps = steps
	rep.TotalSeconds = t
	for _, ph := range rep.Phases {
		rep.TotalCost += ph.EnergyCost
	}
	if cfg.Battery != nil {
		rep.BatteryDrawn = cfg.Battery.Drawn()
	}
	return rep, nil
}

// Range runs the policy until the battery is exhausted and reports how
// far the rover got — the mission-lifetime question the paper opens
// with ("the life-time of its mission is limited by the amount of
// remaining battery energy"). Exhaustion is the expected outcome, not
// an error; the error return covers policy failures and runaway
// configurations only.
func Range(phases []Phase, policy Policy, bat *power.Battery, maxIterations int) (Report, error) {
	if len(phases) == 0 {
		return Report{}, fmt.Errorf("mission: no phases")
	}
	if bat == nil || bat.Capacity <= 0 {
		return Report{}, fmt.Errorf("mission: Range needs a capacity-tracked battery")
	}
	if maxIterations == 0 {
		maxIterations = 100000
	}
	policy.Reset()

	rep := Report{Policy: policy.Name(), Phases: make([]PhaseReport, len(phases))}
	for i := range rep.Phases {
		rep.Phases[i].Cond = phases[i].Cond
	}
	var t model.Time
	for iter := 0; ; iter++ {
		if iter >= maxIterations {
			return rep, fmt.Errorf("mission: exceeded %d iterations with battery remaining", maxIterations)
		}
		pi := phaseAt(phases, t)
		it, err := policy.Next(phases[pi].Cond)
		if err != nil {
			return rep, fmt.Errorf("mission: t=%d: %w", t, err)
		}
		if it.Duration <= 0 || it.Steps <= 0 {
			return rep, fmt.Errorf("mission: policy returned a degenerate iteration %+v", it)
		}
		if err := bat.Draw(it.EnergyCost); err != nil {
			break // battery exhausted: the mission ends here
		}
		rep.Phases[pi].Steps += it.Steps
		rep.Phases[pi].Seconds += it.Duration
		rep.Phases[pi].EnergyCost += it.EnergyCost
		rep.TotalSteps += it.Steps
		t += it.Duration
	}
	rep.TotalSeconds = t
	for _, ph := range rep.Phases {
		rep.TotalCost += ph.EnergyCost
	}
	rep.BatteryDrawn = bat.Drawn()
	return rep, nil
}

// JPLPolicy replays the fixed, fully serialized baseline schedule
// regardless of conditions: 75 s and two steps per iteration, with the
// energy cost that schedule incurs under the current case's powers.
type JPLPolicy struct {
	// Svc memoizes the per-case iteration summary; nil selects the
	// process-wide service.Shared().
	Svc *service.Service
}

// Name implements Policy.
func (*JPLPolicy) Name() string { return "JPL" }

// Reset implements Policy.
func (p *JPLPolicy) Reset() {}

// Next implements Policy.
func (p *JPLPolicy) Next(cond Condition) (Iteration, error) {
	svc := p.Svc
	if svc == nil {
		svc = service.Shared()
	}
	key := fmt.Sprintf("mission/jpl/%s", cond.Case)
	v, err := svc.Memo(key, func() (any, error) {
		prob, s := rover.JPL(cond.Case)
		m := rover.Measure(prob, s)
		return Iteration{
			Name:       fmt.Sprintf("jpl-%s", cond.Case),
			Duration:   m.Finish,
			EnergyCost: m.EnergyCost,
			Steps:      rover.StepsPerIteration,
		}, nil
	})
	if err != nil {
		return Iteration{}, err
	}
	return v.(Iteration), nil
}

// PowerAwarePolicy runs the paper's power-aware schedules: per case, a
// schedule computed by the full pipeline. For cases listed in Preheat
// the policy unrolls the loop as in Fig. 9 — the first iteration after
// a condition change is cold with inserted pre-heat tasks and
// subsequent iterations run warm.
type PowerAwarePolicy struct {
	// Preheat marks the cases using the pre-heat unrolling. The paper
	// applies it in the best case only; nil selects that default.
	// Assign an explicitly empty (non-nil) map to disable pre-heating
	// everywhere.
	Preheat map[rover.Case]bool
	// Opts tunes the underlying scheduler.
	Opts sched.Options
	// Svc is the scheduling service the policy computes through; nil
	// selects the process-wide service.Shared(). Schedules are cached
	// content-addressed, so repeated missions (and any other component
	// scheduling the same iterations) compute each schedule once.
	Svc *service.Service

	warmCase rover.Case
	warm     bool
}

// Name implements Policy.
func (*PowerAwarePolicy) Name() string { return "power-aware" }

// Reset implements Policy.
func (p *PowerAwarePolicy) Reset() { p.warm = false }

// Next implements Policy.
func (p *PowerAwarePolicy) Next(cond Condition) (Iteration, error) {
	if p.Preheat == nil {
		p.Preheat = map[rover.Case]bool{rover.Best: true}
	}
	svc := p.Svc
	if svc == nil {
		svc = service.Shared()
	}
	kind := rover.Cold
	if p.Preheat[cond.Case] {
		if p.warm && p.warmCase == cond.Case {
			kind = rover.Warm
		} else {
			kind = rover.ColdPreheat
		}
	}
	key := fmt.Sprintf("%s/%s", cond.Case, kind)
	prob := rover.BuildIteration(cond.Case, kind)
	r, err := svc.Schedule(prob, p.Opts, service.StageMinPower)
	if err != nil {
		return Iteration{}, fmt.Errorf("scheduling %s: %w", key, err)
	}
	it := Iteration{
		Name:       key,
		Duration:   r.Finish(),
		EnergyCost: r.EnergyCost(),
		Steps:      rover.StepsPerIteration,
	}
	// An iteration that inserts pre-heat tasks leaves the motors warm
	// for the next iteration of the same condition.
	p.warm = kind == rover.ColdPreheat || kind == rover.Warm
	p.warmCase = cond.Case
	return it, nil
}

// FormatTable renders two reports side by side in the shape of the
// paper's Table 4.
func FormatTable(a, b Report) string {
	out := fmt.Sprintf("%-22s | %22s | %22s\n", "phase", a.Policy, b.Policy)
	out += fmt.Sprintf("%-22s | %6s %6s %8s | %6s %6s %8s\n",
		"", "steps", "sec", "cost(J)", "steps", "sec", "cost(J)")
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		out += fmt.Sprintf("%-6s solar=%-7.4gW | %6d %6d %8.1f | %6d %6d %8.1f\n",
			pa.Cond.Case, pa.Cond.Solar,
			pa.Steps, pa.Seconds, pa.EnergyCost,
			pb.Steps, pb.Seconds, pb.EnergyCost)
	}
	out += fmt.Sprintf("%-22s | %6d %6d %8.1f | %6d %6d %8.1f\n", "total",
		a.TotalSteps, a.TotalSeconds, a.TotalCost,
		b.TotalSteps, b.TotalSeconds, b.TotalCost)
	if b.TotalSeconds > 0 && a.TotalCost > 0 {
		out += fmt.Sprintf("improvement: time %.1f%% (speed-up), energy %.1f%% (savings)\n",
			100*TimeImprovement(a, b), 100*EnergyImprovement(a, b))
	}
	return out
}

// TimeImprovement returns the speed-up of b over a relative to b's
// time, the convention of the paper's Table 4 (450 s saved over 1350 s
// = 33.3 %).
func TimeImprovement(a, b Report) float64 {
	return float64(a.TotalSeconds-b.TotalSeconds) / float64(b.TotalSeconds)
}

// EnergyImprovement returns b's energy savings relative to a's cost
// (Table 4: 32.7 %).
func EnergyImprovement(a, b Report) float64 {
	return (a.TotalCost - b.TotalCost) / a.TotalCost
}
