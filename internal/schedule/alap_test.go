package schedule

import (
	"testing"

	"repro/internal/model"
)

func chainProblem() *model.Problem {
	p := &model.Problem{
		Name: "chain3",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 2, Power: 1},
			{Name: "b", Resource: "B", Delay: 3, Power: 1},
			{Name: "c", Resource: "C", Delay: 1, Power: 1},
		},
	}
	p.MinSep("a", "b", 2)
	p.MinSep("b", "c", 3)
	return p
}

func TestALAPChain(t *testing.T) {
	c, err := Compile(chainProblem())
	if err != nil {
		t.Fatal(err)
	}
	// Horizon 10: c can start as late as 9; b <= 9-3 = 6 (also <= 10-3 = 7);
	// a <= 6-2 = 4.
	alap, err := ALAP(c.Base, c, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Time{4, 6, 9}
	for i, w := range want {
		if alap[i] != w {
			t.Errorf("ALAP[%s] = %d, want %d", c.Prob.Tasks[i].Name, alap[i], w)
		}
	}
}

func TestALAPTightHorizonIsExactChain(t *testing.T) {
	c, err := Compile(chainProblem())
	if err != nil {
		t.Fatal(err)
	}
	// Critical path is 2+3+1 = 6: at horizon 6 everything is critical.
	slacks, err := GlobalSlacks(c.Base, c, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range slacks {
		if s != 0 {
			t.Errorf("slack[%s] = %d, want 0 at the tight horizon", c.Prob.Tasks[i].Name, s)
		}
	}
	crit, err := CriticalTasks(c.Base, c, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(crit) != 3 {
		t.Errorf("critical = %v, want all three", crit)
	}
}

func TestALAPInfeasibleHorizon(t *testing.T) {
	c, err := Compile(chainProblem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ALAP(c.Base, c, 5); err == nil {
		t.Fatal("horizon below the critical path accepted")
	}
	if _, err := GlobalSlacks(c.Base, c, 5); err == nil {
		t.Fatal("GlobalSlacks accepted an infeasible horizon")
	}
}

func TestALAPContradictoryWindowFails(t *testing.T) {
	p := chainProblem()
	p.Window("a", "c", 0, 4) // contradicts c >= a+5 from the chain
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err) // structural validation passes; infeasibility is semantic
	}
	if _, err := ALAP(c.Base, c, 20); err == nil {
		t.Fatal("ALAP accepted a contradictory constraint system")
	}
}

func TestALAPRespectsMaxSeparationFeasible(t *testing.T) {
	p := chainProblem()
	p.Window("a", "c", 0, 6) // c at most 6 after a
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	alap, err := ALAP(c.Base, c, 30)
	if err != nil {
		t.Fatal(err)
	}
	// c bounded by a's latest + 6; a is bounded transitively by c.
	if alap[2]-alap[0] > 6 {
		t.Errorf("ALAP violates window: c-a = %d > 6", alap[2]-alap[0])
	}
	// Every ALAP assignment must itself be time-valid.
	s := Schedule{Start: alap}
	if err := CheckTimeValid(c.Base, c, s); err != nil {
		t.Errorf("ALAP schedule invalid: %v", err)
	}
}

func TestGlobalSlackVsLocalSlack(t *testing.T) {
	p := chainProblem()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	dist, ok := c.Base.LongestFrom(c.Anchor)
	if !ok {
		t.Fatal("infeasible")
	}
	asap := FromDist(dist, c.NumTasks())
	global, err := GlobalSlacks(c.Base, c, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Local slack holds successors fixed, so it is never more than the
	// global freedom for the last task, and the first task's local
	// slack (b fixed) is <= its global slack.
	if local := Slack(c.Base, c, asap, 0); local > global[0] {
		t.Errorf("local slack %d exceeds global %d for a", local, global[0])
	}
}
