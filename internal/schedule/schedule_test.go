package schedule

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func twoTaskProblem() *model.Problem {
	return &model.Problem{
		Name: "two",
		Tasks: []model.Task{
			{Name: "a", Resource: "R", Delay: 3, Power: 2},
			{Name: "b", Resource: "S", Delay: 2, Power: 1},
		},
	}
}

func TestCompileEdges(t *testing.T) {
	p := twoTaskProblem()
	p.MinSep("a", "b", 5)
	p.Window("b", "a", -9, -4) // a starts 4..9 before b
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Anchor != 2 {
		t.Fatalf("anchor = %d, want 2", c.Anchor)
	}
	// anchor->a, anchor->b, a->b(5), b->a(-9), a->b(4).
	if got := c.Base.NumEdges(); got != 5 {
		t.Fatalf("edges = %d, want 5", got)
	}
	dist, ok := c.Base.LongestFrom(c.Anchor)
	if !ok {
		t.Fatal("compiled graph infeasible")
	}
	if dist[c.Index["b"]] != 5 {
		t.Fatalf("ASAP b = %d, want 5", dist[c.Index["b"]])
	}
}

func TestCompileAnchorConstraints(t *testing.T) {
	p := twoTaskProblem()
	p.Release("a", 4)
	p.Deadline("a", 6)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	dist, ok := c.Base.LongestFrom(c.Anchor)
	if !ok || dist[0] != 4 {
		t.Fatalf("ASAP a = %d (ok=%v), want 4", dist[0], ok)
	}
}

func TestCompileRejectsInvalidProblem(t *testing.T) {
	p := twoTaskProblem()
	p.Tasks[0].Delay = 0
	if _, err := Compile(p); err == nil {
		t.Fatal("Compile accepted an invalid problem")
	}
}

func TestFromDistDropsAnchor(t *testing.T) {
	s := FromDist([]int{3, 7, 0}, 2)
	if len(s.Start) != 2 || s.Start[0] != 3 || s.Start[1] != 7 {
		t.Fatalf("FromDist = %v", s.Start)
	}
}

func TestFinishAndActiveAt(t *testing.T) {
	p := twoTaskProblem()
	s := Schedule{Start: []model.Time{0, 5}}
	if got := s.Finish(p.Tasks); got != 7 {
		t.Fatalf("Finish = %d, want 7", got)
	}
	if act := s.ActiveAt(p.Tasks, 2); len(act) != 1 || act[0] != 0 {
		t.Fatalf("ActiveAt(2) = %v, want [0]", act)
	}
	if act := s.ActiveAt(p.Tasks, 3); len(act) != 0 {
		t.Fatalf("ActiveAt(3) = %v, want [] (a just finished)", act)
	}
	if act := s.ActiveAt(p.Tasks, 5); len(act) != 1 || act[0] != 1 {
		t.Fatalf("ActiveAt(5) = %v, want [1]", act)
	}
}

func TestSlackFormula(t *testing.T) {
	p := twoTaskProblem()
	p.MinSep("a", "b", 5)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	s := Schedule{Start: []model.Time{0, 8}}
	// a's only outgoing edge is a->b (5): slack = 8 - 0 - 5 = 3.
	if got := Slack(c.Base, c, s, 0); got != 3 {
		t.Fatalf("Slack(a) = %d, want 3", got)
	}
	// b has no outgoing edges.
	if got := Slack(c.Base, c, s, 1); got != InfiniteSlack {
		t.Fatalf("Slack(b) = %d, want InfiniteSlack", got)
	}
}

func TestSlackAgainstDeadline(t *testing.T) {
	p := twoTaskProblem()
	p.Deadline("a", 9)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	s := Schedule{Start: []model.Time{4, 0}}
	// Deadline edge a->anchor weight -9: slack = 0 - 4 + 9 = 5.
	if got := Slack(c.Base, c, s, 0); got != 5 {
		t.Fatalf("Slack(a) = %d, want 5", got)
	}
	if all := Slacks(c.Base, c, s); all[0] != 5 || all[1] != InfiniteSlack {
		t.Fatalf("Slacks = %v", all)
	}
}

func TestSlackDelayStaysValid(t *testing.T) {
	// Delaying a task by exactly its slack must keep the schedule
	// time-valid; by slack+1 must break it.
	p := twoTaskProblem()
	p.MinSep("a", "b", 5)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	s := Schedule{Start: []model.Time{0, 8}}
	sl := Slack(c.Base, c, s, 0)
	s2 := s.Clone()
	s2.Start[0] += sl
	if err := CheckTimeValid(c.Base, c, s2); err != nil {
		t.Fatalf("delay by slack broke validity: %v", err)
	}
	s2.Start[0]++
	if err := CheckTimeValid(c.Base, c, s2); err == nil {
		t.Fatal("delay by slack+1 stayed valid")
	}
}

func TestCheckTimeValidCatches(t *testing.T) {
	p := twoTaskProblem()
	p.MinSep("a", "b", 5)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		start []model.Time
		want  string
	}{
		{"negative start", []model.Time{-1, 5}, "negative time"},
		{"violated min sep", []model.Time{0, 4}, "violated"},
		{"wrong length", []model.Time{0}, "starts for"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckTimeValid(c.Base, c, Schedule{Start: tc.start})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	if err := CheckTimeValid(c.Base, c, Schedule{Start: []model.Time{0, 5}}); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestCheckSerialized(t *testing.T) {
	tasks := []model.Task{
		{Name: "x", Resource: "R", Delay: 4},
		{Name: "y", Resource: "R", Delay: 2},
	}
	if err := CheckSerialized(tasks, Schedule{Start: []model.Time{0, 3}}); err == nil {
		t.Fatal("overlap not detected")
	}
	if err := CheckSerialized(tasks, Schedule{Start: []model.Time{0, 4}}); err != nil {
		t.Fatalf("back-to-back flagged: %v", err)
	}
}

func TestScheduleEqualAndClone(t *testing.T) {
	a := Schedule{Start: []model.Time{1, 2}}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Start[0] = 9
	if a.Equal(b) || a.Start[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if a.Equal(Schedule{Start: []model.Time{1}}) {
		t.Fatal("length mismatch reported equal")
	}
}

func TestCompileGraphIsReusable(t *testing.T) {
	p := twoTaskProblem()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating a clone must not corrupt Base for later compiles.
	g := c.Base.Clone()
	g.AddEdge(0, 1, 100)
	dist, ok := c.Base.LongestFrom(c.Anchor)
	if !ok || dist[1] != 0 {
		t.Fatalf("Base polluted: dist=%v", dist)
	}
}
