package schedule

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

// ALAP computes the as-late-as-possible start times under the given
// constraint graph: the maximum start of each task such that all
// difference constraints hold and every task finishes by the horizon.
// Combined with ASAP times (the anchor's longest-path distances) this
// yields each task's global slack — the total scheduling freedom the
// constraint system leaves, as opposed to Slack, which holds the rest
// of a particular schedule fixed.
func ALAP(g *graph.Graph, c *Compiled, horizon model.Time) ([]model.Time, error) {
	n := c.NumTasks()
	up := make([]model.Time, g.N())
	for v := 0; v < n; v++ {
		up[v] = horizon - c.Prob.Tasks[v].Delay
		if up[v] < 0 {
			return nil, fmt.Errorf("schedule: task %q cannot finish by horizon %d",
				c.Prob.Tasks[v].Name, horizon)
		}
	}
	up[c.Anchor] = 0 // the anchor is fixed at time zero

	// Downward relaxation: for each edge (u -> v, w), sigma(u) <=
	// sigma(v) - w. Queue-based, mirroring the longest-path routine.
	inQueue := make([]bool, g.N())
	relaxed := make([]int, g.N())
	queue := make([]int, 0, g.N())
	for v := 0; v < g.N(); v++ {
		queue = append(queue, v)
		inQueue[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		relaxed[v]++
		if relaxed[v] > g.N()+1 {
			return nil, fmt.Errorf("schedule: ALAP did not converge (infeasible constraints)")
		}
		for _, e := range g.In(v) {
			if nu := up[v] - e.W; nu < up[e.From] {
				up[e.From] = nu
				if up[e.From] < 0 && e.From != c.Anchor {
					return nil, fmt.Errorf("schedule: task %q has no feasible start under horizon %d",
						name(c, e.From), horizon)
				}
				if e.From == c.Anchor && nu < 0 {
					return nil, fmt.Errorf("schedule: horizon %d is infeasible", horizon)
				}
				if !inQueue[e.From] {
					queue = append(queue, e.From)
					inQueue[e.From] = true
				}
			}
		}
	}
	return up[:n], nil
}

// GlobalSlacks returns ALAP minus ASAP per task: the total freedom each
// task has within the constraint system under the horizon.
func GlobalSlacks(g *graph.Graph, c *Compiled, horizon model.Time) ([]model.Time, error) {
	dist, ok := g.LongestFrom(c.Anchor)
	if !ok {
		return nil, fmt.Errorf("schedule: constraints contain a positive cycle")
	}
	alap, err := ALAP(g, c, horizon)
	if err != nil {
		return nil, err
	}
	out := make([]model.Time, c.NumTasks())
	for v := range out {
		out[v] = alap[v] - dist[v]
		if out[v] < 0 {
			return nil, fmt.Errorf("schedule: task %q has negative global slack %d (horizon too tight)",
				c.Prob.Tasks[v].Name, out[v])
		}
	}
	return out, nil
}

// CriticalTasks returns the names of tasks with zero global slack under
// the horizon: the timing-critical chain that determines the finish
// time.
func CriticalTasks(g *graph.Graph, c *Compiled, horizon model.Time) ([]string, error) {
	slacks, err := GlobalSlacks(g, c, horizon)
	if err != nil {
		return nil, err
	}
	var out []string
	for v, s := range slacks {
		if s == 0 {
			out = append(out, c.Prob.Tasks[v].Name)
		}
	}
	return out, nil
}
