// Package schedule provides the schedule representation, the compiled
// constraint-graph form of a problem, time-validity checking, and the
// slack analysis the paper's heuristics are built on.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/model"
)

// InfiniteSlack is returned for tasks with no outgoing timing
// constraints: such a task can be delayed arbitrarily (at the cost of
// possibly extending the finish time).
const InfiniteSlack = math.MaxInt / 4

// Compiled is a problem lowered onto a constraint graph: one vertex per
// task plus a virtual anchor vertex that starts at time 0.
type Compiled struct {
	Prob   *model.Problem
	Index  map[string]int // task name -> vertex
	Anchor int            // anchor vertex id (== len(Prob.Tasks))
	// Base holds the problem's own constraint edges (anchor releases,
	// min/max separations). Schedulers clone or extend it with
	// serialization, delay, and lock edges.
	Base *graph.Graph
	// Choices holds, per task, the admissible (machine, level) options
	// with effective delays and powers, in the scheduler's preference
	// order (shortest delay first). For a degenerate problem every task
	// has exactly one choice carrying its nominal delay and power.
	Choices [][]model.TaskChoice
	// Hetero caches Prob.Heterogeneous(): false selects the paper's
	// degenerate code paths (no assignment bookkeeping at all).
	Hetero bool
	// Res maps each task to a dense resource id — tasks sharing a
	// Resource string share an id, numbered by first appearance — and
	// NumRes counts the ids. The timing search's serialization loops
	// compare these ints instead of the resource strings.
	Res    []int
	NumRes int
}

// Compile validates the problem and lowers its constraints to graph
// edges:
//
//	min separation  sigma(v) >= sigma(u) + s   ->  edge (u -> v, s)
//	max separation  sigma(v) <= sigma(u) + m   ->  edge (v -> u, -m)
//	anchor -> every task, weight 0             (start times are >= 0)
func Compile(p *model.Problem) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Tasks)
	c := &Compiled{
		Prob:   p,
		Index:  p.TaskIndex(),
		Anchor: n,
	}
	vertex := func(name string) int {
		if name == model.Anchor {
			return c.Anchor
		}
		return c.Index[name]
	}
	// Size the base graph exactly before building it: one release edge
	// per task plus one (or two, with a max bound) per constraint, so
	// construction performs three bulk allocations instead of per-vertex
	// append growth.
	outDeg := make([]int, n+1)
	inDeg := make([]int, n+1)
	outDeg[c.Anchor] = n
	for v := 0; v < n; v++ {
		inDeg[v] = 1
	}
	edges := n
	for _, con := range p.Constraints {
		u, v := vertex(con.From), vertex(con.To)
		outDeg[u]++
		inDeg[v]++
		edges++
		if con.HasMax {
			outDeg[v]++
			inDeg[u]++
			edges++
		}
	}
	c.Base = graph.NewSized(n+1, outDeg, inDeg, edges)
	for v := 0; v < n; v++ {
		c.Base.AddEdge(c.Anchor, v, 0)
	}
	for _, con := range p.Constraints {
		u, v := vertex(con.From), vertex(con.To)
		c.Base.AddEdge(u, v, con.Min)
		if con.HasMax {
			c.Base.AddEdge(v, u, -con.Max)
		}
	}
	c.Res = make([]int, n)
	resID := make(map[string]int, n)
	for i := range p.Tasks {
		id, ok := resID[p.Tasks[i].Resource]
		if !ok {
			id = len(resID)
			resID[p.Tasks[i].Resource] = id
		}
		c.Res[i] = id
	}
	c.NumRes = len(resID)
	c.Hetero = p.Heterogeneous()
	c.Choices = make([][]model.TaskChoice, n)
	for i := range c.Choices {
		c.Choices[i] = p.TaskChoices(i)
	}
	return c, nil
}

// NumTasks returns the number of real (non-anchor) tasks.
func (c *Compiled) NumTasks() int { return len(c.Prob.Tasks) }

// Schedule assigns a start time to every task of a problem. Start is
// indexed by task position in Problem.Tasks.
type Schedule struct {
	Start []model.Time
}

// FromDist extracts a schedule from longest-path distances over the
// compiled graph (dropping the anchor entry).
func FromDist(dist []int, numTasks int) Schedule {
	return Schedule{Start: append([]model.Time(nil), dist[:numTasks]...)}
}

// Clone returns an independent copy.
func (s Schedule) Clone() Schedule {
	return Schedule{Start: append([]model.Time(nil), s.Start...)}
}

// Finish returns the finish time tau: the latest task completion.
// Indexed field access, not a value range: model.Task is ~88 bytes and
// this is called on scheduler hot paths, where copying every task per
// call shows up as runtime.duffcopy.
func (s Schedule) Finish(tasks []model.Task) model.Time {
	var tau model.Time
	for i := range tasks {
		if end := s.Start[i] + tasks[i].Delay; end > tau {
			tau = end
		}
	}
	return tau
}

// ActiveAt returns the indices of tasks executing at time t
// (start <= t < start+delay), in index order.
func (s Schedule) ActiveAt(tasks []model.Task, t model.Time) []int {
	var act []int
	for i, task := range tasks {
		if s.Start[i] <= t && t < s.Start[i]+task.Delay {
			act = append(act, i)
		}
	}
	return act
}

// Slack computes Delta_sigma(v): the maximum amount task v's start can
// be delayed, all other start times held fixed, without violating any
// constraint edge of g. Per the paper it is determined by v's outgoing
// edges: Delta(v) = min over (v -> u, w) of sigma(u) - sigma(v) - w,
// where sigma(anchor) = 0. Tasks with no outgoing edges have
// InfiniteSlack. A negative result indicates the schedule already
// violates a constraint.
func Slack(g *graph.Graph, c *Compiled, s Schedule, v int) model.Time {
	slack := model.Time(InfiniteSlack)
	sigma := func(x int) model.Time {
		if x == c.Anchor {
			return 0
		}
		return s.Start[x]
	}
	for _, e := range g.Out(v) {
		if d := sigma(e.To) - sigma(v) - e.W; d < slack {
			slack = d
		}
	}
	return slack
}

// Slacks computes Slack for every task.
func Slacks(g *graph.Graph, c *Compiled, s Schedule) []model.Time {
	out := make([]model.Time, c.NumTasks())
	for v := range out {
		out[v] = Slack(g, c, s, v)
	}
	return out
}

// CheckTimeValid reports the first violated requirement of
// time-validity: every start time is >= 0, every constraint edge of g
// holds, and tasks sharing a resource do not overlap. A nil error means
// sigma is time-valid.
func CheckTimeValid(g *graph.Graph, c *Compiled, s Schedule) error {
	return CheckTimeValidTasks(g, c, c.Prob.Tasks, s)
}

// CheckTimeValidTasks is CheckTimeValid against an explicit (effective)
// task view: heterogeneous schedulers pass the tasks carrying the
// chosen machine/level delays, whose serialization the check must use.
// Machine exclusivity is enforced by the scheduler's machine
// serialization edges, which are part of g and therefore checked here
// like every other constraint edge.
func CheckTimeValidTasks(g *graph.Graph, c *Compiled, tasks []model.Task, s Schedule) error {
	if len(s.Start) != c.NumTasks() {
		return fmt.Errorf("schedule: has %d starts for %d tasks", len(s.Start), c.NumTasks())
	}
	sigma := func(x int) model.Time {
		if x == c.Anchor {
			return 0
		}
		return s.Start[x]
	}
	for i, st := range s.Start {
		if st < 0 {
			return fmt.Errorf("schedule: task %q starts at negative time %d", c.Prob.Tasks[i].Name, st)
		}
	}
	for _, e := range g.Edges() {
		if sigma(e.To) < sigma(e.From)+e.W {
			return fmt.Errorf("schedule: constraint sigma(%s) >= sigma(%s)%+d violated (%d < %d)",
				name(c, e.To), name(c, e.From), e.W, sigma(e.To), sigma(e.From)+e.W)
		}
	}
	return CheckSerialized(tasks, s)
}

// CheckSerialized verifies that tasks mapped to the same resource never
// overlap in time.
func CheckSerialized(tasks []model.Task, s Schedule) error {
	byRes := make(map[string][]int)
	for i, t := range tasks {
		byRes[t.Resource] = append(byRes[t.Resource], i)
	}
	for res, idxs := range byRes {
		sort.Slice(idxs, func(a, b int) bool {
			if s.Start[idxs[a]] != s.Start[idxs[b]] {
				return s.Start[idxs[a]] < s.Start[idxs[b]]
			}
			return idxs[a] < idxs[b]
		})
		for k := 0; k+1 < len(idxs); k++ {
			a, b := idxs[k], idxs[k+1]
			if s.Start[a]+tasks[a].Delay > s.Start[b] {
				return fmt.Errorf("schedule: resource %s conflict: %q [%d,%d) overlaps %q [%d,%d)",
					res, tasks[a].Name, s.Start[a], s.Start[a]+tasks[a].Delay,
					tasks[b].Name, s.Start[b], s.Start[b]+tasks[b].Delay)
			}
		}
	}
	return nil
}

// Equal reports whether two schedules assign identical start times.
func (s Schedule) Equal(o Schedule) bool {
	if len(s.Start) != len(o.Start) {
		return false
	}
	for i := range s.Start {
		if s.Start[i] != o.Start[i] {
			return false
		}
	}
	return true
}

func name(c *Compiled, v int) string {
	if v == c.Anchor {
		return model.Anchor
	}
	return c.Prob.Tasks[v].Name
}
