package editor

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
)

func TestNewInfeasibleProblem(t *testing.T) {
	p := &model.Problem{
		Name: "inf",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 5, Power: 1},
			{Name: "b", Resource: "B", Delay: 5, Power: 1},
		},
	}
	p.MinSep("a", "b", 10)
	p.Window("a", "b", 0, 5)
	if _, err := New(p, sched.Options{}); err == nil {
		t.Fatal("session opened on an infeasible problem")
	}
}

func TestStartOfUnknown(t *testing.T) {
	s := newSession(t)
	if _, err := s.StartOf("nosuch"); err == nil {
		t.Fatal("StartOf accepted unknown task")
	}
	if err := s.Unlock("nosuch"); err == nil {
		t.Fatal("Unlock accepted unknown task")
	}
}

func TestLockIdempotent(t *testing.T) {
	s := newSession(t)
	if err := s.Lock("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Lock("a"); err != nil {
		t.Fatal("re-lock errored")
	}
	// Double lock must not push two undo states.
	if !s.Undo() {
		t.Fatal("undo failed")
	}
	if len(s.Locked()) != 0 {
		t.Fatal("one undo should remove the single lock commit")
	}
	if err := s.Unlock("a"); err != nil {
		t.Fatal("unlock of unlocked task errored")
	}
}

func TestRedoClearedByNewEdit(t *testing.T) {
	s := newSession(t)
	if err := s.Lock("a"); err != nil {
		t.Fatal(err)
	}
	if !s.Undo() {
		t.Fatal("undo failed")
	}
	if err := s.Lock("b"); err != nil {
		t.Fatal(err)
	}
	if s.Redo() {
		t.Fatal("redo should be cleared by a fresh edit")
	}
}
