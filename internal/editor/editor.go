// Package editor implements the interactive side of the power-aware
// Gantt chart described in paper section 4.3: "designers can manually
// intervene with the automated scheduling process by dragging and
// locking the bins to alternative time slots in the time view, while
// observing the results in the power view interactively."
//
// A Session holds a problem, a current schedule, and a set of locked
// tasks. Moves are validated immediately (hard constraints only — the
// soft min-power goal may be violated freely, exactly as in the paper);
// Reschedule re-runs the automated pipeline with the locked tasks
// pinned at their chosen slots; every mutation is undoable.
package editor

import (
	"fmt"
	"sort"

	"repro/internal/gantt"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/schedule"
	"repro/internal/verify"
)

// Session is an interactive scheduling session.
type Session struct {
	prob   *model.Problem
	opts   sched.Options
	cur    schedule.Schedule
	locked map[string]bool
	undo   []snapshot
	redo   []snapshot
}

type snapshot struct {
	start  []model.Time
	locked map[string]bool
}

// New starts a session from the automated pipeline's schedule.
func New(p *model.Problem, opts sched.Options) (*Session, error) {
	r, err := sched.Run(p, opts)
	if err != nil {
		return nil, err
	}
	return NewWithSchedule(p, r.Schedule, opts)
}

// NewWithSchedule starts a session from an existing schedule, which
// must be valid.
func NewWithSchedule(p *model.Problem, s schedule.Schedule, opts sched.Options) (*Session, error) {
	if rep := verify.Check(p, s); !rep.OK() {
		return nil, fmt.Errorf("editor: initial schedule invalid: %w", rep.Err())
	}
	return &Session{
		prob:   p,
		opts:   opts,
		cur:    s.Clone(),
		locked: make(map[string]bool),
	}, nil
}

// Problem returns the session's problem.
func (s *Session) Problem() *model.Problem { return s.prob }

// Schedule returns a copy of the current schedule.
func (s *Session) Schedule() schedule.Schedule { return s.cur.Clone() }

// StartOf returns the current start time of the named task.
func (s *Session) StartOf(task string) (model.Time, error) {
	i, err := s.index(task)
	if err != nil {
		return 0, err
	}
	return s.cur.Start[i], nil
}

// Move drags a task bin to a new start time. The move is rejected when
// the task is locked or when the resulting schedule violates a hard
// constraint (timing, resource serialization, or the max power budget).
// Min-power gaps do not block a move.
func (s *Session) Move(task string, newStart model.Time) error {
	i, err := s.index(task)
	if err != nil {
		return err
	}
	if s.locked[task] {
		return fmt.Errorf("editor: task %q is locked", task)
	}
	if newStart == s.cur.Start[i] {
		return nil
	}
	trial := s.cur.Clone()
	trial.Start[i] = newStart
	if rep := verify.Check(s.prob, trial); !rep.OK() {
		return fmt.Errorf("editor: cannot move %q to %d: %w", task, newStart, rep.Err())
	}
	s.commit()
	s.cur = trial
	return nil
}

// Lock pins a task at its current slot: Move refuses it and Reschedule
// keeps it fixed (the "locking the bins" gesture).
func (s *Session) Lock(task string) error {
	if _, err := s.index(task); err != nil {
		return err
	}
	if s.locked[task] {
		return nil
	}
	s.commit()
	s.locked[task] = true
	return nil
}

// Unlock releases a locked task.
func (s *Session) Unlock(task string) error {
	if _, err := s.index(task); err != nil {
		return err
	}
	if !s.locked[task] {
		return nil
	}
	s.commit()
	delete(s.locked, task)
	return nil
}

// Locked lists the locked task names, sorted.
func (s *Session) Locked() []string {
	out := make([]string, 0, len(s.locked))
	for name := range s.locked {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Reschedule re-runs the automated pipeline with every locked task
// pinned at its current slot, letting the scheduler rearrange the rest.
// The session's schedule is replaced on success and untouched on
// failure.
func (s *Session) Reschedule() error {
	p := s.prob.Clone()
	for name := range s.locked {
		i, err := s.index(name)
		if err != nil {
			return err
		}
		at := s.cur.Start[i]
		p.Release(name, at)
		p.Deadline(name, at)
	}
	r, err := sched.Run(p, s.opts)
	if err != nil {
		return fmt.Errorf("editor: reschedule with %d locks: %w", len(s.locked), err)
	}
	if rep := verify.Check(s.prob, r.Schedule); !rep.OK() {
		return fmt.Errorf("editor: rescheduled result invalid: %w", rep.Err())
	}
	s.commit()
	s.cur = r.Schedule.Clone()
	return nil
}

// MoveAndReschedule drags a task to a slot that may be infeasible under
// the current placement of the other tasks, then lets the automated
// pipeline repair the schedule around it: the dragged task and every
// locked task are pinned, everything else is rescheduled. The session
// is unchanged on failure.
func (s *Session) MoveAndReschedule(task string, newStart model.Time) error {
	if _, err := s.index(task); err != nil {
		return err
	}
	if s.locked[task] {
		return fmt.Errorf("editor: task %q is locked", task)
	}
	p := s.prob.Clone()
	p.Release(task, newStart)
	p.Deadline(task, newStart)
	for name := range s.locked {
		i, err := s.index(name)
		if err != nil {
			return err
		}
		p.Release(name, s.cur.Start[i])
		p.Deadline(name, s.cur.Start[i])
	}
	r, err := sched.Run(p, s.opts)
	if err != nil {
		return fmt.Errorf("editor: cannot place %q at %d: %w", task, newStart, err)
	}
	if rep := verify.Check(s.prob, r.Schedule); !rep.OK() {
		return fmt.Errorf("editor: repaired schedule invalid: %w", rep.Err())
	}
	s.commit()
	s.cur = r.Schedule.Clone()
	return nil
}

// Undo reverts the last mutation. It reports whether anything changed.
func (s *Session) Undo() bool {
	if len(s.undo) == 0 {
		return false
	}
	s.redo = append(s.redo, s.snapshot())
	s.restore(s.undo[len(s.undo)-1])
	s.undo = s.undo[:len(s.undo)-1]
	return true
}

// Redo re-applies the last undone mutation.
func (s *Session) Redo() bool {
	if len(s.redo) == 0 {
		return false
	}
	s.undo = append(s.undo, s.snapshot())
	s.restore(s.redo[len(s.redo)-1])
	s.redo = s.redo[:len(s.redo)-1]
	return true
}

// Metrics re-derives the current schedule's metrics (the power view's
// annotations).
func (s *Session) Metrics() verify.Metrics {
	return verify.Check(s.prob, s.cur).Metrics
}

// Profile returns the current power profile.
func (s *Session) Profile() power.Profile {
	return power.Build(s.prob.Tasks, s.cur, s.prob.BasePower)
}

// Gaps returns the current min-power gaps (the soft violations the
// designer is trying to fill).
func (s *Session) Gaps() []power.Interval {
	return s.Profile().Gaps(s.prob.Pmin)
}

// Chart renders the session as a power-aware Gantt chart.
func (s *Session) Chart() *gantt.Chart {
	return gantt.New(s.prob, s.cur)
}

func (s *Session) index(task string) (int, error) {
	for i, t := range s.prob.Tasks {
		if t.Name == task {
			return i, nil
		}
	}
	return 0, fmt.Errorf("editor: unknown task %q", task)
}

// commit pushes the current state onto the undo stack and clears redo.
func (s *Session) commit() {
	s.undo = append(s.undo, s.snapshot())
	s.redo = nil
}

func (s *Session) snapshot() snapshot {
	locked := make(map[string]bool, len(s.locked))
	for k, v := range s.locked {
		locked[k] = v
	}
	return snapshot{start: append([]model.Time(nil), s.cur.Start...), locked: locked}
}

func (s *Session) restore(sn snapshot) {
	s.cur = schedule.Schedule{Start: append([]model.Time(nil), sn.start...)}
	locked := make(map[string]bool, len(sn.locked))
	for k, v := range sn.locked {
		locked[k] = v
	}
	s.locked = locked
}
