package editor

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/schedule"
	"repro/internal/verify"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := New(paperex.Nine(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRunsPipeline(t *testing.T) {
	s := newSession(t)
	if rep := verify.Check(s.Problem(), s.Schedule()); !rep.OK() {
		t.Fatalf("initial schedule invalid: %v", rep.Err())
	}
}

func TestNewWithScheduleRejectsInvalid(t *testing.T) {
	p := paperex.Nine()
	bad := schedule.Schedule{Start: make([]model.Time, len(p.Tasks))} // all at 0: conflicts
	if _, err := NewWithSchedule(p, bad, sched.Options{}); err == nil {
		t.Fatal("invalid initial schedule accepted")
	}
}

func TestMoveWithinSlack(t *testing.T) {
	s := newSession(t)
	// Task h is the B-row floater; move it one second later if its
	// current slot allows, else assert the rejection is justified.
	before, err := s.StartOf("h")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Move("h", before); err != nil {
		t.Fatalf("no-op move failed: %v", err)
	}
	if err := s.Move("nosuch", 0); err == nil {
		t.Fatal("move of unknown task accepted")
	}
}

func TestMoveRejectsHardViolations(t *testing.T) {
	s := newSession(t)
	// Moving a to a negative slot must fail.
	if err := s.Move("a", -5); err == nil {
		t.Fatal("negative move accepted")
	}
	// Moving d onto g's slot (same resource) must fail.
	gStart, _ := s.StartOf("g")
	if err := s.Move("d", gStart); err == nil {
		t.Fatal("resource-conflicting move accepted")
	}
	// The schedule is unchanged after rejections.
	if rep := verify.Check(s.Problem(), s.Schedule()); !rep.OK() {
		t.Fatalf("session corrupted by rejected moves: %v", rep.Err())
	}
}

func TestMoveAllowsGaps(t *testing.T) {
	// Gaps (soft min-power violations) must not block a drag.
	p := &model.Problem{
		Name: "soft",
		Tasks: []model.Task{
			{Name: "x", Resource: "A", Delay: 2, Power: 5},
			{Name: "y", Resource: "B", Delay: 2, Power: 5},
		},
		Pmax: 12,
		Pmin: 9, // parallel = 10 >= 9; separated leaves gaps
	}
	s, err := New(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Move("y", 10); err != nil {
		t.Fatalf("gap-creating move rejected: %v", err)
	}
	if len(s.Gaps()) == 0 {
		t.Fatal("expected gaps after the move")
	}
}

func TestLockBlocksMove(t *testing.T) {
	s := newSession(t)
	if err := s.Lock("h"); err != nil {
		t.Fatal(err)
	}
	at, _ := s.StartOf("h")
	if err := s.Move("h", at+1); err == nil {
		t.Fatal("moved a locked task")
	}
	if got := s.Locked(); len(got) != 1 || got[0] != "h" {
		t.Fatalf("Locked = %v", got)
	}
	if err := s.Unlock("h"); err != nil {
		t.Fatal(err)
	}
	if len(s.Locked()) != 0 {
		t.Fatal("unlock failed")
	}
	if err := s.Lock("nosuch"); err == nil {
		t.Fatal("locked unknown task")
	}
}

func TestRescheduleHonorsLocks(t *testing.T) {
	s := newSession(t)
	at, _ := s.StartOf("h")
	if err := s.Lock("h"); err != nil {
		t.Fatal(err)
	}
	if err := s.Reschedule(); err != nil {
		t.Fatalf("reschedule: %v", err)
	}
	after, _ := s.StartOf("h")
	if after != at {
		t.Fatalf("locked task moved by reschedule: %d -> %d", at, after)
	}
	if rep := verify.Check(s.Problem(), s.Schedule()); !rep.OK() {
		t.Fatalf("rescheduled result invalid: %v", rep.Err())
	}
}

func TestRescheduleFailureLeavesSessionIntact(t *testing.T) {
	// Lock a task at an impossible-to-complete-around slot by first
	// moving it far out and locking, then tightening the problem is not
	// possible via the session; instead lock two same-resource tasks at
	// overlapping... moves reject that. Use a conflicting lock set via
	// direct construction: lock h where e must also run by pinning both
	// through Release/Deadline conflicts is unreachable through the
	// API, so simulate failure with an unknown-task lock removed and
	// assert Reschedule with heavy locks still succeeds or fails
	// cleanly.
	s := newSession(t)
	before := s.Schedule()
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"} {
		if err := s.Lock(name); err != nil {
			t.Fatal(err)
		}
	}
	err := s.Reschedule() // everything locked: identity reschedule
	if err != nil {
		t.Fatalf("fully-locked reschedule failed: %v", err)
	}
	if !s.Schedule().Equal(before) {
		t.Fatal("fully-locked reschedule changed the schedule")
	}
}

func TestUndoRedo(t *testing.T) {
	s := newSession(t)
	orig := s.Schedule()
	origH, _ := s.StartOf("h")

	// Find a legal move for h: try a few offsets.
	moved := false
	for delta := model.Time(1); delta <= 5; delta++ {
		if err := s.Move("h", origH+delta); err == nil {
			moved = true
			break
		}
	}
	if !moved {
		t.Skip("no legal move for h in this schedule")
	}
	if s.Schedule().Equal(orig) {
		t.Fatal("move did not change the schedule")
	}
	if !s.Undo() {
		t.Fatal("undo failed")
	}
	if !s.Schedule().Equal(orig) {
		t.Fatal("undo did not restore the schedule")
	}
	if !s.Redo() {
		t.Fatal("redo failed")
	}
	if s.Schedule().Equal(orig) {
		t.Fatal("redo did not re-apply the move")
	}
	if s.Redo() {
		t.Fatal("redo past the end succeeded")
	}
}

func TestUndoEmpty(t *testing.T) {
	s := newSession(t)
	if s.Undo() {
		t.Fatal("undo on fresh session succeeded")
	}
}

func TestUndoCoversLocks(t *testing.T) {
	s := newSession(t)
	if err := s.Lock("a"); err != nil {
		t.Fatal(err)
	}
	if !s.Undo() {
		t.Fatal("undo failed")
	}
	if len(s.Locked()) != 0 {
		t.Fatal("undo did not revert the lock")
	}
}

func TestMoveAndReschedule(t *testing.T) {
	s := newSession(t)
	// Drag d onto a slot that conflicts with the current layout; the
	// repair shifts everything else around it.
	dStart, _ := s.StartOf("d")
	target := dStart + 3
	if err := s.MoveAndReschedule("d", target); err != nil {
		t.Fatalf("move-and-reschedule: %v", err)
	}
	got, _ := s.StartOf("d")
	if got != target {
		t.Fatalf("d at %d, want %d", got, target)
	}
	if rep := verify.Check(s.Problem(), s.Schedule()); !rep.OK() {
		t.Fatalf("repaired schedule invalid: %v", rep.Err())
	}
	// Undo restores the original layout.
	if !s.Undo() {
		t.Fatal("undo failed")
	}
	back, _ := s.StartOf("d")
	if back != dStart {
		t.Fatalf("undo left d at %d, want %d", back, dStart)
	}
}

func TestMoveAndRescheduleFailureLeavesSession(t *testing.T) {
	s := newSession(t)
	before := s.Schedule()
	// An impossible slot: negative start.
	if err := s.MoveAndReschedule("d", -4); err == nil {
		t.Fatal("impossible drag accepted")
	}
	if !s.Schedule().Equal(before) {
		t.Fatal("failed drag mutated the session")
	}
	// Locked tasks cannot be dragged.
	if err := s.Lock("d"); err != nil {
		t.Fatal(err)
	}
	if err := s.MoveAndReschedule("d", 5); err == nil {
		t.Fatal("dragged a locked task")
	}
	if err := s.MoveAndReschedule("nosuch", 5); err == nil {
		t.Fatal("dragged an unknown task")
	}
}

func TestMetricsAndChart(t *testing.T) {
	s := newSession(t)
	m := s.Metrics()
	if m.Finish == 0 || m.Peak == 0 {
		t.Fatalf("metrics empty: %+v", m)
	}
	out := s.Chart().ASCII(1)
	if !strings.Contains(out, "power view:") {
		t.Fatal("chart rendering broken")
	}
	if s.Profile().Duration() != m.Finish {
		t.Fatal("profile duration disagrees with metrics finish")
	}
}
