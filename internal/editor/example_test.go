package editor_test

import (
	"fmt"

	"repro/internal/editor"
	"repro/internal/model"
	"repro/internal/sched"
)

// Example walks the paper's interactive loop: inspect the automated
// schedule, lock a task where the designer wants it, and let the
// scheduler rearrange the rest.
func Example() {
	p := &model.Problem{Name: "demo", Pmax: 9, Pmin: 4, BasePower: 1}
	p.AddTask(model.Task{Name: "a", Resource: "A", Delay: 4, Power: 4})
	p.AddTask(model.Task{Name: "b", Resource: "B", Delay: 4, Power: 4})

	s, err := editor.New(p, sched.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("finish:", s.Metrics().Finish)

	// The designer wants b pinned at t=6 and everything else redone.
	if err := s.MoveAndReschedule("b", 6); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := s.Lock("b"); err != nil {
		fmt.Println("error:", err)
		return
	}
	at, _ := s.StartOf("b")
	fmt.Println("b locked at:", at)
	fmt.Println("locked:", s.Locked())

	// Change of mind: roll everything back.
	for s.Undo() {
	}
	fmt.Println("after undo, finish:", s.Metrics().Finish)
	// Output:
	// finish: 4
	// b locked at: 6
	// locked: [b]
	// after undo, finish: 4
}
