// Package corners extends the scheduler to the (min, typical, max)
// power form the paper mentions in section 4.1: task power consumption
// varies with operating conditions (for the rover, temperature), so a
// task carries three power corners instead of one exact value.
//
// The package supports two workflows:
//
//   - per-corner scheduling: instantiate the problem at each corner and
//     schedule each independently (the paper's power-aware approach —
//     one schedule per environmental case, selected at run time);
//   - conservative scheduling: schedule once at the max corner, which
//     is power-valid at every corner since instantaneous power only
//     decreases, then evaluate that single schedule under all corners
//     (the fixed-schedule approach of the JPL baseline, generalized).
//
// Comparing the two quantifies exactly the trade-off of the paper's
// Table 3.
package corners

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/schedule"
	"repro/internal/verify"
)

// Corner selects one of the three power corners.
type Corner int

const (
	// Min is the most favorable corner (lowest consumption).
	Min Corner = iota
	// Typ is the typical corner.
	Typ
	// Max is the worst-case corner (highest consumption).
	Max
)

// AllCorners lists the corners in Min, Typ, Max order.
var AllCorners = []Corner{Min, Typ, Max}

func (c Corner) String() string {
	switch c {
	case Min:
		return "min"
	case Typ:
		return "typ"
	case Max:
		return "max"
	}
	return fmt.Sprintf("Corner(%d)", int(c))
}

// TriPower is a three-corner power value in watts.
type TriPower struct {
	Min, Typ, Max float64
}

// At returns the value at a corner.
func (t TriPower) At(c Corner) float64 {
	switch c {
	case Min:
		return t.Min
	case Typ:
		return t.Typ
	default:
		return t.Max
	}
}

// Valid reports whether the corners are ordered and non-negative.
func (t TriPower) Valid() bool {
	return t.Min >= 0 && t.Min <= t.Typ && t.Typ <= t.Max
}

// Env is the power-constraint environment in force at a corner: in the
// rover, hot (best) conditions come with more solar power, so Pmax and
// Pmin are corner-dependent too.
type Env struct {
	Pmax float64
	Pmin float64
}

// Model assigns corner powers to every task of a problem, plus the
// base load and the per-corner environments.
type Model struct {
	// Tasks maps task name to its power corners. Every task of the
	// problem must be present.
	Tasks map[string]TriPower
	// Base is the constant load's corners.
	Base TriPower
	// Envs optionally overrides the problem's Pmax/Pmin per corner. A
	// zero-valued entry keeps the problem's own constraints.
	Envs map[Corner]Env
}

// Validate checks the model against a problem.
func (m Model) Validate(p *model.Problem) error {
	if !m.Base.Valid() {
		return fmt.Errorf("corners: base corners %+v not ordered", m.Base)
	}
	for _, t := range p.Tasks {
		tp, ok := m.Tasks[t.Name]
		if !ok {
			return fmt.Errorf("corners: task %q has no corner powers", t.Name)
		}
		if !tp.Valid() {
			return fmt.Errorf("corners: task %q corners %+v not ordered", t.Name, tp)
		}
	}
	return nil
}

// Instantiate returns a copy of the problem with every power replaced
// by its value at the given corner, and the corner's environment
// applied when one is configured.
func (m Model) Instantiate(p *model.Problem, c Corner) (*model.Problem, error) {
	if err := m.Validate(p); err != nil {
		return nil, err
	}
	q := p.Clone()
	q.Name = fmt.Sprintf("%s@%s", p.Name, c)
	q.BasePower = m.Base.At(c)
	for i := range q.Tasks {
		q.Tasks[i].Power = m.Tasks[q.Tasks[i].Name].At(c)
	}
	if env, ok := m.Envs[c]; ok && (env.Pmax != 0 || env.Pmin != 0) {
		q.Pmax, q.Pmin = env.Pmax, env.Pmin
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// CornerMetrics is one corner's evaluation of a schedule.
type CornerMetrics struct {
	Corner  Corner
	Valid   bool
	Metrics verify.Metrics
}

// Report is the outcome of a conservative-schedule analysis.
type Report struct {
	// Schedule is the single schedule computed at the max corner.
	Schedule schedule.Schedule
	// PerCorner evaluates that schedule under each corner's powers and
	// environment, in Min, Typ, Max order.
	PerCorner []CornerMetrics
}

// Conservative schedules the problem once at the max corner and
// evaluates the resulting schedule at every corner. Power-validity at
// the max corner implies validity at the others whenever the corner
// environments do not tighten Pmax.
func Conservative(p *model.Problem, m Model, opts sched.Options) (Report, error) {
	worst, err := m.Instantiate(p, Max)
	if err != nil {
		return Report{}, err
	}
	r, err := sched.Run(worst, opts)
	if err != nil {
		return Report{}, fmt.Errorf("corners: scheduling max corner: %w", err)
	}
	rep := Report{Schedule: r.Schedule}
	for _, c := range AllCorners {
		q, err := m.Instantiate(p, c)
		if err != nil {
			return Report{}, err
		}
		chk := verify.Check(q, r.Schedule)
		rep.PerCorner = append(rep.PerCorner, CornerMetrics{
			Corner:  c,
			Valid:   chk.OK(),
			Metrics: chk.Metrics,
		})
	}
	return rep, nil
}

// PerCornerResult is one corner's independently scheduled outcome.
type PerCornerResult struct {
	Corner  Corner
	Problem *model.Problem
	Result  *sched.Result
	Metrics verify.Metrics
}

// PerCorner schedules the problem independently at every corner — the
// power-aware approach: one schedule per operating condition.
func PerCorner(p *model.Problem, m Model, opts sched.Options) ([]PerCornerResult, error) {
	var out []PerCornerResult
	for _, c := range AllCorners {
		q, err := m.Instantiate(p, c)
		if err != nil {
			return nil, err
		}
		r, err := sched.Run(q, opts)
		if err != nil {
			return nil, fmt.Errorf("corners: scheduling %s corner: %w", c, err)
		}
		out = append(out, PerCornerResult{
			Corner:  c,
			Problem: q,
			Result:  r,
			Metrics: verify.Check(q, r.Schedule).Metrics,
		})
	}
	return out, nil
}
