package corners

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/rover"
	"repro/internal/sched"
)

func simpleModel() (*model.Problem, Model) {
	p := &model.Problem{
		Name: "tri",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 4, Power: 5},
			{Name: "b", Resource: "B", Delay: 4, Power: 5},
		},
		Pmax: 14,
		Pmin: 6,
	}
	m := Model{
		Tasks: map[string]TriPower{
			"a": {Min: 3, Typ: 5, Max: 8},
			"b": {Min: 3, Typ: 5, Max: 8},
		},
		Base: TriPower{Min: 1, Typ: 1, Max: 2},
	}
	return p, m
}

func TestTriPower(t *testing.T) {
	tp := TriPower{Min: 1, Typ: 2, Max: 3}
	if tp.At(Min) != 1 || tp.At(Typ) != 2 || tp.At(Max) != 3 {
		t.Fatal("At broken")
	}
	if !tp.Valid() {
		t.Fatal("ordered corners rejected")
	}
	if (TriPower{Min: 3, Typ: 2, Max: 4}).Valid() {
		t.Fatal("unordered corners accepted")
	}
	if (TriPower{Min: -1, Typ: 0, Max: 0}).Valid() {
		t.Fatal("negative corner accepted")
	}
}

func TestInstantiate(t *testing.T) {
	p, m := simpleModel()
	q, err := m.Instantiate(p, Max)
	if err != nil {
		t.Fatal(err)
	}
	if q.Tasks[0].Power != 8 || q.BasePower != 2 {
		t.Fatalf("max corner not applied: %+v base %g", q.Tasks[0], q.BasePower)
	}
	if q.Pmax != p.Pmax {
		t.Fatal("env unexpectedly overridden")
	}
	// Original untouched.
	if p.Tasks[0].Power != 5 {
		t.Fatal("Instantiate mutated the source problem")
	}
}

func TestInstantiateEnvOverride(t *testing.T) {
	p, m := simpleModel()
	m.Envs = map[Corner]Env{Min: {Pmax: 20, Pmin: 10}}
	q, err := m.Instantiate(p, Min)
	if err != nil {
		t.Fatal(err)
	}
	if q.Pmax != 20 || q.Pmin != 10 {
		t.Fatalf("env not applied: Pmax=%g Pmin=%g", q.Pmax, q.Pmin)
	}
}

func TestValidateErrors(t *testing.T) {
	p, m := simpleModel()
	delete(m.Tasks, "b")
	if err := m.Validate(p); err == nil {
		t.Fatal("missing task accepted")
	}
	_, m2 := simpleModel()
	m2.Tasks["a"] = TriPower{Min: 9, Typ: 5, Max: 8}
	if err := m2.Validate(p); err == nil {
		t.Fatal("unordered task corners accepted")
	}
}

func TestConservativeValidEverywhere(t *testing.T) {
	p, m := simpleModel()
	rep, err := Conservative(p, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerCorner) != 3 {
		t.Fatalf("corners = %d", len(rep.PerCorner))
	}
	for _, cm := range rep.PerCorner {
		if !cm.Valid {
			t.Errorf("max-corner schedule invalid at %s corner", cm.Corner)
		}
	}
	// Consumption ordering: energy at min <= typ <= max.
	if !(rep.PerCorner[0].Metrics.Energy <= rep.PerCorner[1].Metrics.Energy &&
		rep.PerCorner[1].Metrics.Energy <= rep.PerCorner[2].Metrics.Energy) {
		t.Errorf("energy not monotone across corners: %+v", rep.PerCorner)
	}
}

func TestPerCornerSchedules(t *testing.T) {
	p, m := simpleModel()
	res, err := PerCorner(p, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Result.Peak() > r.Problem.Pmax {
			t.Errorf("%s corner schedule over budget", r.Corner)
		}
	}
	// With the tight 14 W budget, the max corner (8+8+2 = 18 W
	// parallel) must serialize while the min corner (3+3+1 = 7 W) can
	// run parallel: per-corner scheduling buys performance.
	if !(res[0].Metrics.Finish <= res[2].Metrics.Finish) {
		t.Errorf("min corner slower than max corner: %d > %d",
			res[0].Metrics.Finish, res[2].Metrics.Finish)
	}
}

// TestRoverModelReproducesCases: instantiating the rover corner model
// reproduces exactly the per-case problems of the rover package — the
// Table 2 columns are the corners.
func TestRoverModelReproducesCases(t *testing.T) {
	p, m := RoverModel(rover.Cold)
	for _, c := range AllCorners {
		q, err := m.Instantiate(p, c)
		if err != nil {
			t.Fatal(err)
		}
		want := rover.BuildIteration(caseOf(c), rover.Cold)
		if len(q.Tasks) != len(want.Tasks) {
			t.Fatalf("%s: task counts differ", c)
		}
		for i := range q.Tasks {
			if math.Abs(q.Tasks[i].Power-want.Tasks[i].Power) > 1e-12 {
				t.Errorf("%s: task %s power %g, want %g", c, q.Tasks[i].Name,
					q.Tasks[i].Power, want.Tasks[i].Power)
			}
		}
		if q.Pmax != want.Pmax || q.Pmin != want.Pmin || q.BasePower != want.BasePower {
			t.Errorf("%s: env mismatch", c)
		}
	}
}

// TestRoverConservativeIsJPLLike: the single max-corner rover schedule
// takes 75 s at every corner — the corner framework derives the JPL
// baseline's behaviour as "conservative scheduling", while per-corner
// scheduling recovers the paper's 50/60/75 s (Table 3's two columns).
func TestRoverConservativeIsJPLLike(t *testing.T) {
	p, m := RoverModel(rover.Cold)
	cons, err := Conservative(p, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range cons.PerCorner {
		if !cm.Valid {
			t.Errorf("conservative schedule invalid at %s", cm.Corner)
		}
		if cm.Metrics.Finish != 75 {
			t.Errorf("conservative finish at %s = %d, want 75", cm.Corner, cm.Metrics.Finish)
		}
	}

	per, err := PerCorner(p, m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[Corner]int{Min: 50, Typ: 60, Max: 75}
	for _, r := range per {
		if r.Metrics.Finish != want[r.Corner] {
			t.Errorf("per-corner finish at %s = %d, want %d", r.Corner, r.Metrics.Finish, want[r.Corner])
		}
	}
}
