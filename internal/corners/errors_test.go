package corners

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestCornerString(t *testing.T) {
	if Min.String() != "min" || Typ.String() != "typ" || Max.String() != "max" {
		t.Error("corner strings wrong")
	}
	if !strings.Contains(Corner(7).String(), "7") {
		t.Error("unknown corner not numeric")
	}
}

func TestInstantiateRejectsOverBudgetCorner(t *testing.T) {
	p, m := simpleModel()
	// Max corner powers exceed the un-overridden Pmax.
	m.Tasks["a"] = TriPower{Min: 3, Typ: 5, Max: 20}
	if _, err := m.Instantiate(p, Max); err == nil {
		t.Fatal("over-budget corner instantiation accepted")
	}
}

func TestConservativePropagatesErrors(t *testing.T) {
	p, m := simpleModel()
	delete(m.Tasks, "a")
	if _, err := Conservative(p, m, sched.Options{}); err == nil {
		t.Fatal("missing corner data accepted")
	}
	if _, err := PerCorner(p, m, sched.Options{}); err == nil {
		t.Fatal("missing corner data accepted by PerCorner")
	}
}

func TestConservativeInfeasibleMaxCorner(t *testing.T) {
	p, m := simpleModel()
	// Tighten the max-corner environment below any single task's draw.
	m.Envs = map[Corner]Env{Max: {Pmax: 1, Pmin: 1}}
	if _, err := Conservative(p, m, sched.Options{}); err == nil {
		t.Fatal("unschedulable max corner accepted")
	}
	if _, err := PerCorner(p, m, sched.Options{}); err == nil {
		t.Fatal("unschedulable corner accepted by PerCorner")
	}
}
