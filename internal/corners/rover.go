package corners

import (
	"repro/internal/model"
	"repro/internal/rover"
)

// caseOf maps power corners onto the rover's environmental cases: the
// best case (-40 C, full sun) is the minimum-consumption corner, the
// worst case (-80 C, dusk) the maximum.
func caseOf(c Corner) rover.Case {
	switch c {
	case Min:
		return rover.Best
	case Typ:
		return rover.Typical
	default:
		return rover.Worst
	}
}

// RoverModel builds the Mars rover's corner model straight from
// Table 2: every task's power at -40/-60/-80 C, the CPU's constant
// load, and the per-corner power environments (solar + battery).
// The returned problem carries the typical-corner structure; use
// Model.Instantiate or the analysis entry points to retarget it.
func RoverModel(kind rover.IterationKind) (*model.Problem, Model) {
	p := rover.BuildIteration(rover.Typical, kind)
	m := Model{
		Tasks: make(map[string]TriPower, len(p.Tasks)),
		Envs:  make(map[Corner]Env, 3),
	}
	params := map[Corner]rover.Params{}
	for _, c := range AllCorners {
		par := rover.Table2(caseOf(c))
		params[c] = par
		m.Envs[c] = Env{Pmax: par.Pmax(), Pmin: par.Pmin()}
	}
	m.Base = TriPower{Min: params[Min].CPU, Typ: params[Typ].CPU, Max: params[Max].CPU}
	pick := func(sel func(rover.Params) float64) TriPower {
		return TriPower{Min: sel(params[Min]), Typ: sel(params[Typ]), Max: sel(params[Max])}
	}
	for _, t := range p.Tasks {
		switch t.Resource {
		case rover.ResLaser:
			m.Tasks[t.Name] = pick(func(p rover.Params) float64 { return p.Hazard })
		case rover.ResSteer:
			m.Tasks[t.Name] = pick(func(p rover.Params) float64 { return p.Steer })
		case rover.ResWheels:
			m.Tasks[t.Name] = pick(func(p rover.Params) float64 { return p.Drive })
		default: // heaters H1..H5
			m.Tasks[t.Name] = pick(func(p rover.Params) float64 { return p.Heat })
		}
	}
	return p, m
}
