package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/verify"
)

func TestListScheduleChain(t *testing.T) {
	p := &model.Problem{
		Name: "chain",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 2, Power: 1},
			{Name: "b", Resource: "B", Delay: 3, Power: 1},
		},
	}
	p.MinSep("a", "b", 2)
	s, err := ListSchedule(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 0 || s.Start[1] != 2 {
		t.Fatalf("starts = %v, want [0 2]", s.Start)
	}
}

func TestListScheduleSerializesResource(t *testing.T) {
	p := &model.Problem{
		Name: "res",
		Tasks: []model.Task{
			{Name: "a", Resource: "R", Delay: 3, Power: 1},
			{Name: "b", Resource: "R", Delay: 3, Power: 1},
		},
	}
	s, err := ListSchedule(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Check(p, s); !rep.OK() {
		t.Fatal(rep.Err())
	}
	if s.Finish(p.Tasks) != 6 {
		t.Fatalf("finish = %d, want 6", s.Finish(p.Tasks))
	}
}

func TestListScheduleRespectsBudget(t *testing.T) {
	p := &model.Problem{
		Name: "budget",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 4, Power: 5},
			{Name: "b", Resource: "B", Delay: 4, Power: 5},
		},
		Pmax: 8,
	}
	s, err := ListSchedule(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Check(p, s); !rep.OK() {
		t.Fatal(rep.Err())
	}
}

func TestListScheduleOnRover(t *testing.T) {
	for _, c := range rover.Cases {
		p := rover.BuildIteration(c, rover.Cold)
		s, err := ListSchedule(p, 200)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if rep := verify.Check(p, s); !rep.OK() {
			t.Fatalf("%s: %v", c, rep.Err())
		}
	}
}

// TestQuickListScheduleValid: on random layered problems the list
// scheduler's output, when it succeeds, passes the independent oracle.
func TestQuickListScheduleValid(t *testing.T) {
	f := func(seed int64) bool {
		p := analysis.Generate(analysis.GenConfig{Tasks: 12, Seed: seed})
		s, err := ListSchedule(p, 0)
		if err != nil {
			return true // greedy failure is allowed; invalid output is not
		}
		return verify.Check(p, s).OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPipelineBeatsListSchedulerOnUtilization: the list scheduler never
// fills power gaps, so on the rover's typical case the pipeline's
// min-power stage must achieve at least its utilization.
func TestPipelineBeatsListSchedulerOnUtilization(t *testing.T) {
	p := rover.BuildIteration(rover.Typical, rover.Cold)
	ls, err := ListSchedule(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	_, lsCost, lsUtil := Metrics(p, ls)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization()+1e-9 < lsUtil {
		t.Errorf("pipeline utilization %.4f below list scheduler's %.4f", r.Utilization(), lsUtil)
	}
	t.Logf("list: cost=%.1f util=%.3f | pipeline: cost=%.1f util=%.3f",
		lsCost, lsUtil, r.EnergyCost(), r.Utilization())
}
