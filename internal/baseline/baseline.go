// Package baseline implements a conventional power-constrained list
// scheduler as an algorithmic comparator for the paper's pipeline. It
// is the textbook approach a designer without the power-aware framework
// would reach for: dispatch tasks in priority order at the earliest
// instant where timing predecessors, the resource, and the power budget
// all allow. It handles Pmax (greedily, no backtracking, so it can fail
// where the pipeline succeeds) and is oblivious to Pmin — it never
// spends free energy on purpose, which is precisely the behaviour the
// min-power scheduler improves on.
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

// ListSchedule greedily schedules the problem. horizon bounds the
// search for a feasible start per task (0 means a generous default).
// The result is time-valid and respects Pmax when err is nil; max
// separations can defeat the greedy placement, in which case an error
// is returned.
func ListSchedule(p *model.Problem, horizon model.Time) (schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return schedule.Schedule{}, err
	}
	comp, err := schedule.Compile(p)
	if err != nil {
		return schedule.Schedule{}, err
	}
	if horizon == 0 {
		for _, t := range p.Tasks {
			horizon += t.Delay
		}
		for _, c := range p.Constraints {
			if c.Min > 0 {
				horizon += c.Min
			}
		}
	}

	n := len(p.Tasks)
	// Priority: critical-path-style — tasks with longer downstream
	// chains first; computed as longest path to any sink over min
	// edges.
	rank := downstreamRank(p)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if rank[order[a]] != rank[order[b]] {
			return rank[order[a]] > rank[order[b]]
		}
		return order[a] < order[b]
	})

	s := schedule.Schedule{Start: make([]model.Time, n)}
	placed := make([]bool, n)
	for _, v := range order {
		start, ok := earliestFeasible(p, comp, s, placed, v, horizon)
		if !ok {
			return schedule.Schedule{}, fmt.Errorf("baseline: no feasible slot for %q within horizon %d",
				p.Tasks[v].Name, horizon)
		}
		s.Start[v] = start
		placed[v] = true
	}
	// Final full check: greedy placement used only pairwise tests
	// against placed tasks, so verify the complete assignment.
	if err := schedule.CheckTimeValid(comp.Base, comp, s); err != nil {
		return schedule.Schedule{}, fmt.Errorf("baseline: greedy placement invalid: %w", err)
	}
	return s, nil
}

// downstreamRank returns, per task, the length of the longest chain of
// min separations it heads.
func downstreamRank(p *model.Problem) []model.Time {
	idx := p.TaskIndex()
	memo := make([]model.Time, len(p.Tasks))
	seen := make([]bool, len(p.Tasks))
	var visit func(v int) model.Time
	visit = func(v int) model.Time {
		if seen[v] {
			return memo[v]
		}
		seen[v] = true // mark first: cycles through max edges are ignored
		best := model.Time(p.Tasks[v].Delay)
		for _, c := range p.Constraints {
			if c.From != p.Tasks[v].Name || c.Min <= 0 {
				continue
			}
			if u, ok := idx[c.To]; ok {
				if r := model.Time(c.Min) + visit(u); r > best {
					best = r
				}
			}
		}
		memo[v] = best
		return best
	}
	for v := range p.Tasks {
		visit(v)
	}
	return memo
}

// earliestFeasible finds the smallest start in [0, horizon] satisfying
// constraints against already-placed tasks, the resource, and Pmax.
func earliestFeasible(p *model.Problem, comp *schedule.Compiled, s schedule.Schedule, placed []bool, v int, horizon model.Time) (model.Time, bool) {
	idx := comp.Index
	task := p.Tasks[v]
	lo := model.Time(0)
	for _, c := range p.Constraints {
		if c.To != task.Name {
			continue
		}
		if c.From == model.Anchor {
			if c.Min > lo {
				lo = c.Min
			}
		} else if u := idx[c.From]; placed[u] && s.Start[u]+c.Min > lo {
			lo = s.Start[u] + c.Min
		}
	}

try:
	for start := lo; start <= horizon; start++ {
		end := start + task.Delay
		// Window upper bounds against placed tasks.
		for _, c := range p.Constraints {
			if !c.HasMax {
				continue
			}
			if c.To == task.Name {
				from := model.Time(0)
				known := c.From == model.Anchor
				if !known {
					if u := idx[c.From]; placed[u] {
						from, known = s.Start[u], true
					}
				}
				if known && start > from+c.Max {
					return 0, false // only grows with start: no later slot works
				}
			}
			if c.From == task.Name {
				if u := idx[c.To]; c.To != model.Anchor && placed[u] {
					if s.Start[u] > start+c.Max {
						start = s.Start[u] - c.Max - 1 // must start later; loop increments
						continue try
					}
					if s.Start[u] < start+c.Min {
						return 0, false // placed successor too early; no later slot works
					}
				}
			}
		}
		// Resource exclusivity against placed tasks.
		for u := range p.Tasks {
			if !placed[u] || p.Tasks[u].Resource != task.Resource {
				continue
			}
			if s.Start[u] < end && start < s.Start[u]+p.Tasks[u].Delay {
				start = s.Start[u] + p.Tasks[u].Delay - 1 // jump past the conflict
				continue try
			}
		}
		// Power budget against placed tasks.
		if p.Pmax > 0 && !fitsBudget(p, s, placed, v, start) {
			continue
		}
		return start, true
	}
	return 0, false
}

func fitsBudget(p *model.Problem, s schedule.Schedule, placed []bool, v int, start model.Time) bool {
	task := p.Tasks[v]
	for t := start; t < start+task.Delay; t++ {
		sum := p.BasePower + task.Power
		for u, other := range p.Tasks {
			if placed[u] && s.Start[u] <= t && t < s.Start[u]+other.Delay {
				sum += other.Power
			}
		}
		if sum > p.Pmax {
			return false
		}
	}
	return true
}

// Metrics evaluates a baseline schedule with the problem's Pmin.
func Metrics(p *model.Problem, s schedule.Schedule) (finish model.Time, cost, util float64) {
	prof := power.Build(p.Tasks, s, p.BasePower)
	return s.Finish(p.Tasks), prof.EnergyCost(p.Pmin), prof.Utilization(p.Pmin)
}
