package exact_test

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/verify"
)

// TestExactSpreadsAcrossMachines hand-checks the assignment dimension:
// two independent delay-4 tasks and two unit machines have a proven
// optimal finish of 4, achievable only by using both machines.
func TestExactSpreadsAcrossMachines(t *testing.T) {
	p := &model.Problem{
		Name: "exact-two-machines",
		Machines: []model.Machine{
			{Name: "m0", Speed: 1, PowerScale: 1},
			{Name: "m1", Speed: 1, PowerScale: 1},
		},
	}
	p.AddTask(model.Task{Name: "a", Resource: "Ra", Delay: 4, Power: 1})
	p.AddTask(model.Task{Name: "b", Resource: "Rb", Delay: 4, Power: 1})
	sol, err := exact.Solve(p, exact.MinFinish, exact.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal {
		t.Fatal("search truncated on a 2-task instance")
	}
	if sol.Finish != 4 {
		t.Fatalf("optimal finish = %d, want 4", sol.Finish)
	}
	if len(sol.Assignment) != 2 || sol.Assignment[0].Machine == sol.Assignment[1].Machine {
		t.Fatalf("assignment = %v, want the two tasks on distinct machines", sol.Assignment)
	}
	if rep := verify.CheckAssigned(p, sol.Schedule, sol.Assignment); !rep.OK() {
		t.Fatal(rep.Err())
	}
}

// TestExactForcedSlowLevel hand-checks the DVS dimension interacting
// with the power budget: the nominal level alone busts Pmax, so the
// only admissible choice is the stretched low-power level and the
// optimal finish is the stretched delay.
func TestExactForcedSlowLevel(t *testing.T) {
	p := &model.Problem{Name: "exact-forced-slow", Pmax: 5}
	p.AddTask(model.Task{
		Name: "a", Resource: "R", Delay: 3, Power: 10,
		Levels: []model.DVSLevel{{Mult: 1, Power: 10}, {Mult: 2, Power: 4}},
	})
	sol, err := exact.Solve(p, exact.MinFinish, exact.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal || sol.Finish != 6 {
		t.Fatalf("finish = %d (optimal %v), want 6 via the Mult=2 level", sol.Finish, sol.Optimal)
	}
	if sol.Assignment[0].Level != 1 || sol.Assignment[0].Machine != -1 {
		t.Fatalf("assignment = %v, want level 1 on no machine", sol.Assignment)
	}
}

// TestExactFasterMachineWins hand-checks the speed dimension: a single
// delay-6 task on a speed-2 machine finishes in 3; the exact solver
// must find that assignment over the unit machine.
func TestExactFasterMachineWins(t *testing.T) {
	p := &model.Problem{
		Name: "exact-fast-machine",
		Machines: []model.Machine{
			{Name: "slow", Speed: 1, PowerScale: 1},
			{Name: "fast", Speed: 2, PowerScale: 1},
		},
	}
	p.AddTask(model.Task{Name: "a", Resource: "R", Delay: 6, Power: 2})
	sol, err := exact.Solve(p, exact.MinFinish, exact.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal || sol.Finish != 3 {
		t.Fatalf("finish = %d (optimal %v), want 3 on the fast machine", sol.Finish, sol.Optimal)
	}
	if got := p.Machines[sol.Assignment[0].Machine].Name; got != "fast" {
		t.Fatalf("assigned machine %q, want \"fast\"", got)
	}
}
