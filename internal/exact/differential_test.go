package exact_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/verify"
)

// genSmall builds a random problem small enough (<= 6 tasks) for the
// branch-and-bound solver to exhaust, in the style of the sched
// package's property-test generator.
func genSmall(seed int64) *model.Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(4)
	p := &model.Problem{Name: fmt.Sprintf("diff-%d", seed)}
	for i := 0; i < n; i++ {
		p.AddTask(model.Task{
			Name:     fmt.Sprintf("t%d", i),
			Resource: fmt.Sprintf("R%d", rng.Intn(2)),
			Delay:    1 + rng.Intn(4),
			Power:    1 + rng.Float64()*7,
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() >= 0.3 {
				continue
			}
			min := p.Tasks[i].Delay
			if rng.Float64() < 0.2 {
				p.Window(p.Tasks[i].Name, p.Tasks[j].Name, min, min+30)
			} else {
				p.MinSep(p.Tasks[i].Name, p.Tasks[j].Name, min)
			}
		}
	}
	first, second := 0.0, 0.0
	for _, t := range p.Tasks {
		if t.Power > first {
			first, second = t.Power, first
		} else if t.Power > second {
			second = t.Power
		}
	}
	p.Pmax = (first + second) * 1.2
	p.Pmin = p.Pmax / 2
	return p
}

// TestDifferentialHeuristicVsExact cross-checks the heuristic pipeline
// against the branch-and-bound reference on small random problems, in
// both directions:
//
//   - the heuristic's schedule must be time- and power-valid, and its
//     finish time can never beat the provably optimal finish (a
//     "better than optimal" heuristic means the oracle or the exact
//     search is wrong);
//   - the exact optimum must itself pass the independent validity
//     oracle (a fast-but-invalid optimum means the enumeration or its
//     pruning is wrong).
func TestDifferentialHeuristicVsExact(t *testing.T) {
	const seeds = 60
	solved := 0
	for seed := int64(0); seed < seeds; seed++ {
		p := genSmall(seed)

		r, err := sched.Run(p.Clone(), sched.Options{})
		if err != nil {
			// The heuristic may legitimately fail on a tight instance;
			// the success-rate check below keeps this path honest.
			continue
		}
		if rep := verify.Check(p, r.Schedule); !rep.OK() {
			t.Fatalf("seed %d: heuristic schedule invalid: %v", seed, rep.Err())
		}

		sol, err := exact.Solve(p.Clone(), exact.MinFinish, exact.Config{})
		if err != nil {
			t.Fatalf("seed %d: exact solver failed on a heuristically schedulable problem: %v", seed, err)
		}
		if !sol.Optimal {
			continue // truncated search proves nothing either way
		}
		solved++

		if rep := verify.Check(p, sol.Schedule); !rep.OK() {
			t.Fatalf("seed %d: exact optimum invalid: %v", seed, rep.Err())
		}
		if r.Finish() < sol.Finish {
			t.Fatalf("seed %d: heuristic finish %d beats proven optimum %d",
				seed, r.Finish(), sol.Finish)
		}
	}
	if solved < seeds/2 {
		t.Fatalf("only %d/%d instances fully cross-checked; generator or budgets drifted", solved, seeds)
	}
}

// TestDifferentialEnergyCost cross-checks the min-power stage's energy
// cost against the exact minimum-energy schedule at the heuristic's
// achieved finish time: the heuristic can never pay less than the
// optimum allows.
func TestDifferentialEnergyCost(t *testing.T) {
	const seeds = 25
	solved := 0
	for seed := int64(100); seed < 100+seeds; seed++ {
		p := genSmall(seed)
		r, err := sched.Run(p.Clone(), sched.Options{})
		if err != nil {
			continue
		}
		sol, err := exact.Solve(p.Clone(), exact.MinEnergyCost, exact.Config{TauBound: r.Finish()})
		if err != nil || !sol.Optimal {
			continue
		}
		solved++
		if r.EnergyCost() < sol.EnergyCost-1e-9 {
			t.Fatalf("seed %d: heuristic cost %.4f beats optimal %.4f at tau <= %d",
				seed, r.EnergyCost(), sol.EnergyCost, r.Finish())
		}
	}
	if solved < seeds/3 {
		t.Fatalf("only %d/%d instances fully cross-checked; generator or budgets drifted", solved, seeds)
	}
}
