// Package exact is a branch-and-bound reference scheduler for small
// problem instances. The paper observes that finding an energy-optimal
// schedule "should examine all valid partial orderings of tasks, which
// will increase the complexity of computation to an exponential order";
// this package performs exactly that enumeration, with pruning, so the
// heuristic pipeline can be measured against true optima in tests and
// ablation benchmarks. It is not intended for production-size inputs.
package exact

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/schedule"
)

// Objective selects what Solve minimizes.
type Objective int

const (
	// MinFinish minimizes the schedule finish time tau.
	MinFinish Objective = iota
	// MinEnergyCost minimizes Ec(Pmin) subject to finishing within
	// Config.TauBound.
	MinEnergyCost
)

func (o Objective) String() string {
	switch o {
	case MinFinish:
		return "min-finish"
	case MinEnergyCost:
		return "min-energy-cost"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Config bounds the search.
type Config struct {
	// Horizon is the largest start time considered (default: sum of
	// all delays plus the largest anchor separation).
	Horizon model.Time
	// TauBound caps the finish time for MinEnergyCost (default:
	// Horizon + the longest delay).
	TauBound model.Time
	// MaxNodes caps the number of search nodes (default 2,000,000).
	// When exhausted, the best solution so far is returned with
	// Optimal = false.
	MaxNodes int
}

// Solution is the search outcome.
type Solution struct {
	Schedule   schedule.Schedule
	Finish     model.Time
	EnergyCost float64
	// Assignment is the optimal (machine, level) choice per task for a
	// heterogeneous problem; nil for the degenerate case.
	Assignment model.Assignment
	// Nodes is the number of search nodes expanded.
	Nodes int
	// Optimal is true when the search space was exhausted (the
	// solution is provably optimal), false when MaxNodes stopped it.
	Optimal bool
}

// Solve exhaustively schedules p under the given objective. It returns
// an error when the problem is invalid or no schedule exists within the
// horizon.
func Solve(p *model.Problem, obj Objective, cfg Config) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Tasks)
	choices := make([][]model.TaskChoice, n)
	for i := range choices {
		choices[i] = p.TaskChoices(i)
		if len(choices[i]) == 0 {
			return Solution{}, fmt.Errorf("exact: task %q has no admissible machine/level choice", p.Tasks[i].Name)
		}
	}
	// maxDelay is the largest effective delay any choice of task i can
	// take; for a degenerate problem it is exactly the nominal delay, so
	// the default horizon and tau bound are unchanged.
	maxDelay := func(i int) model.Time {
		d := choices[i][0].Delay
		for _, ch := range choices[i][1:] {
			if ch.Delay > d {
				d = ch.Delay
			}
		}
		return d
	}
	if cfg.Horizon == 0 {
		for i := range p.Tasks {
			cfg.Horizon += maxDelay(i)
		}
		for _, c := range p.Constraints {
			if c.From == model.Anchor && c.Min > 0 {
				cfg.Horizon += c.Min
			}
		}
	}
	if cfg.TauBound == 0 {
		cfg.TauBound = cfg.Horizon
		for i := range p.Tasks {
			if cfg.TauBound < cfg.Horizon+maxDelay(i) {
				cfg.TauBound = cfg.Horizon + maxDelay(i)
			}
		}
	}
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = 2_000_000
	}

	s := &solver{p: p, cfg: cfg, obj: obj, idx: p.TaskIndex(), choices: choices, hetero: p.Heterogeneous()}
	s.start = make([]model.Time, n)
	s.assigned = make([]bool, n)
	s.eff = make([]model.TaskChoice, n)
	s.bestCost = -1
	s.search(0)

	if s.bestCost < 0 {
		if s.truncated {
			return Solution{Nodes: s.nodes}, fmt.Errorf("exact: no schedule found within %d nodes", cfg.MaxNodes)
		}
		return Solution{Nodes: s.nodes}, fmt.Errorf("exact: no feasible schedule within horizon %d", cfg.Horizon)
	}
	return Solution{
		Schedule:   schedule.Schedule{Start: s.best},
		Finish:     s.bestFinish,
		EnergyCost: s.bestEc,
		Assignment: s.bestAsg,
		Nodes:      s.nodes,
		Optimal:    !s.truncated,
	}, nil
}

type solver struct {
	p   *model.Problem
	cfg Config
	obj Objective
	idx map[string]int

	start    []model.Time
	assigned []bool
	// choices and eff carry the heterogeneous dimension: choices[i] is
	// task i's admissible (machine, level) options and eff[i] the option
	// the current partial assignment runs it under. For a degenerate
	// problem every task has one choice holding its nominal values.
	choices [][]model.TaskChoice
	eff     []model.TaskChoice
	hetero  bool

	best       []model.Time
	bestFinish model.Time
	bestEc     float64
	bestAsg    model.Assignment
	bestCost   float64 // objective value of best (-1 = none yet)

	nodes     int
	truncated bool
}

// search assigns task k (tasks are assigned in index order; the
// instance generator and the paper's examples list tasks in rough
// topological order, which keeps bounds tight). Every (machine, level)
// choice of the task is enumerated around the start-time loop; a
// degenerate problem has exactly one choice per task, reducing the
// enumeration to the original start-time search node for node.
func (s *solver) search(k int) {
	if s.truncated {
		return
	}
	if k == len(s.p.Tasks) {
		s.leaf()
		return
	}
	lo, hi := s.bounds(k)
	for _, ch := range s.choices[k] {
		s.eff[k] = ch
		for t := lo; t <= hi; t++ {
			s.nodes++
			if s.nodes > s.cfg.MaxNodes {
				s.truncated = true
				return
			}
			s.start[k] = t
			if !s.feasiblePartial(k, t) {
				continue
			}
			s.assigned[k] = true
			if !s.pruned(k) {
				s.search(k + 1)
			}
			s.assigned[k] = false
			if s.truncated {
				return
			}
		}
	}
}

// bounds derives start-time bounds for task k from constraints whose
// other endpoint is already assigned (or the anchor).
func (s *solver) bounds(k int) (lo, hi model.Time) {
	lo, hi = 0, s.cfg.Horizon
	name := s.p.Tasks[k].Name
	for _, c := range s.p.Constraints {
		from, okFrom := s.endpoint(c.From, k)
		to, okTo := s.endpoint(c.To, k)
		if c.To == name && okFrom {
			if v := from + c.Min; v > lo {
				lo = v
			}
			if c.HasMax {
				if v := from + c.Max; v < hi {
					hi = v
				}
			}
		}
		if c.From == name && okTo {
			// to >= from + min  =>  from <= to - min.
			if v := to - c.Min; v < hi {
				hi = v
			}
			if c.HasMax {
				// to <= from + max  =>  from >= to - max.
				if v := to - c.Max; v > lo {
					lo = v
				}
			}
		}
	}
	return lo, hi
}

// endpoint resolves a constraint endpoint to an assigned start time.
// Tasks assigned so far are 0..k-1 (and the anchor).
func (s *solver) endpoint(name string, k int) (model.Time, bool) {
	if name == model.Anchor {
		return 0, true
	}
	i := s.idx[name]
	if i < k {
		return s.start[i], true
	}
	return 0, false
}

// feasiblePartial checks resource conflicts, machine conflicts, and the
// power budget over tasks 0..k (all monotone: violations can only
// persist as more tasks are added, so pruning here is sound). Delays and
// powers are the effective values of each task's current choice.
func (s *solver) feasiblePartial(k int, t model.Time) bool {
	task := s.p.Tasks[k]
	end := t + s.eff[k].Delay
	for i := 0; i < k; i++ {
		if s.p.Tasks[i].Resource != task.Resource &&
			!(s.eff[k].Machine >= 0 && s.eff[i].Machine == s.eff[k].Machine) {
			continue
		}
		oEnd := s.start[i] + s.eff[i].Delay
		if s.start[i] < end && t < oEnd {
			return false
		}
	}
	if s.p.Pmax > 0 {
		for tt := t; tt < end; tt++ {
			sum := s.p.BasePower + s.eff[k].Power
			for i := 0; i < k; i++ {
				if s.start[i] <= tt && tt < s.start[i]+s.eff[i].Delay {
					sum += s.eff[i].Power
				}
			}
			if sum > s.p.Pmax {
				return false
			}
		}
	}
	return true
}

// pruned applies the objective lower bound to the partial assignment
// 0..k (inclusive).
func (s *solver) pruned(k int) bool {
	if s.bestCost < 0 {
		return false
	}
	switch s.obj {
	case MinFinish:
		// Partial makespan only grows.
		var fin model.Time
		for i := 0; i <= k; i++ {
			if end := s.start[i] + s.eff[i].Delay; end > fin {
				fin = end
			}
		}
		return float64(fin) >= s.bestCost
	case MinEnergyCost:
		// Partial cost only grows as tasks are added (power is
		// additive and cost is monotone in the profile).
		return s.partialCost(k) >= s.bestCost
	}
	return false
}

// partialCost integrates max(0, P-Pmin) over the tasks 0..k.
func (s *solver) partialCost(k int) float64 {
	if s.p.Pmin <= 0 {
		return 0
	}
	var fin model.Time
	for i := 0; i <= k; i++ {
		if end := s.start[i] + s.eff[i].Delay; end > fin {
			fin = end
		}
	}
	var cost float64
	for t := model.Time(0); t < fin; t++ {
		sum := s.p.BasePower
		for i := 0; i <= k; i++ {
			if s.start[i] <= t && t < s.start[i]+s.eff[i].Delay {
				sum += s.eff[i].Power
			}
		}
		if sum > s.p.Pmin {
			cost += sum - s.p.Pmin
		}
	}
	return cost
}

// leaf records a complete assignment if it beats the incumbent. All
// pairwise constraints are fully checked here (bounds only used
// assigned endpoints, so this is the authoritative check).
func (s *solver) leaf() {
	sigma := func(name string) model.Time {
		if name == model.Anchor {
			return 0
		}
		return s.start[s.idx[name]]
	}
	for _, c := range s.p.Constraints {
		sep := sigma(c.To) - sigma(c.From)
		if sep < c.Min || (c.HasMax && sep > c.Max) {
			return
		}
	}
	var fin model.Time
	for i := range s.p.Tasks {
		if end := s.start[i] + s.eff[i].Delay; end > fin {
			fin = end
		}
	}
	if s.obj == MinEnergyCost && fin > s.cfg.TauBound {
		return
	}
	ec := s.partialCost(len(s.p.Tasks) - 1)

	var costVal float64
	switch s.obj {
	case MinFinish:
		costVal = float64(fin)
	case MinEnergyCost:
		costVal = ec
	}
	if s.bestCost < 0 || costVal < s.bestCost {
		s.bestCost = costVal
		s.best = append([]model.Time(nil), s.start...)
		s.bestFinish = fin
		s.bestEc = ec
		if s.hetero {
			s.bestAsg = s.bestAsg[:0]
			for _, e := range s.eff {
				s.bestAsg = append(s.bestAsg, model.Choice{Machine: e.Machine, Level: e.Level})
			}
		}
	}
}
