package exact

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/verify"
)

func TestMinFinishSerialization(t *testing.T) {
	// Two tasks on one resource: optimal makespan is back-to-back.
	p := &model.Problem{
		Name: "serial",
		Tasks: []model.Task{
			{Name: "a", Resource: "R", Delay: 3, Power: 1},
			{Name: "b", Resource: "R", Delay: 2, Power: 1},
		},
	}
	sol, err := Solve(p, MinFinish, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal || sol.Finish != 5 {
		t.Fatalf("finish = %d (optimal=%v), want 5", sol.Finish, sol.Optimal)
	}
}

func TestMinFinishPowerForcesSerial(t *testing.T) {
	// Parallel would be 4 s but the 8 W budget forces serialization.
	p := &model.Problem{
		Name: "budget",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 4, Power: 5},
			{Name: "b", Resource: "B", Delay: 4, Power: 5},
		},
		Pmax: 8,
	}
	sol, err := Solve(p, MinFinish, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Finish != 8 {
		t.Fatalf("finish = %d, want 8", sol.Finish)
	}
}

func TestMinEnergyCostSpreading(t *testing.T) {
	// Two 5 W tasks, Pmin 6 (with base 1): running them in parallel
	// wastes free power and costs (11-6)*4 = 20 J; spreading them costs
	// 0 J. TauBound 8 allows the spread.
	p := &model.Problem{
		Name: "spread",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 4, Power: 5},
			{Name: "b", Resource: "B", Delay: 4, Power: 5},
		},
		Pmax:      12,
		Pmin:      6,
		BasePower: 1,
	}
	sol, err := Solve(p, MinEnergyCost, Config{TauBound: 8, Horizon: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sol.EnergyCost != 0 {
		t.Fatalf("cost = %g, want 0 (tasks spread back-to-back)", sol.EnergyCost)
	}
	if sol.Finish > 8 {
		t.Fatalf("finish = %d exceeds TauBound 8", sol.Finish)
	}
}

func TestInfeasibleWithinHorizon(t *testing.T) {
	p := &model.Problem{
		Name: "tight",
		Tasks: []model.Task{
			{Name: "a", Resource: "R", Delay: 5, Power: 1},
			{Name: "b", Resource: "R", Delay: 5, Power: 1},
		},
	}
	p.Deadline("a", 0)
	p.Deadline("b", 0) // both must start at 0 on one resource
	if _, err := Solve(p, MinFinish, Config{}); err == nil {
		t.Fatal("infeasible instance solved")
	}
}

func TestWindowsRespected(t *testing.T) {
	p := &model.Problem{
		Name: "window",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 2, Power: 1},
			{Name: "b", Resource: "B", Delay: 2, Power: 1},
		},
	}
	p.Window("a", "b", 3, 5)
	sol, err := Solve(p, MinFinish, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sep := sol.Schedule.Start[1] - sol.Schedule.Start[0]
	if sep < 3 || sep > 5 {
		t.Fatalf("separation = %d, want within [3,5]", sep)
	}
}

func TestNodeBudgetTruncates(t *testing.T) {
	p := analysis.Generate(analysis.GenConfig{Tasks: 8, Seed: 1})
	sol, err := Solve(p, MinEnergyCost, Config{MaxNodes: 50})
	if err == nil && sol.Optimal {
		t.Fatal("50-node search claimed optimality on an 8-task instance")
	}
}

// TestHeuristicNeverBeatsExact: on small random instances the heuristic
// pipeline can never finish earlier than the exact minimum makespan,
// and its energy cost at the exact solver's own finish bound can never
// be below the exact minimum cost.
func TestHeuristicNeverBeatsExact(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := analysis.Generate(analysis.GenConfig{Tasks: 5, MaxDelay: 4, Seed: seed})
		h, err := sched.Run(p.Clone(), sched.Options{})
		if err != nil {
			t.Fatalf("seed %d: heuristic: %v", seed, err)
		}
		opt, err := Solve(p.Clone(), MinFinish, Config{Horizon: h.Finish() + 2})
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		if !opt.Optimal {
			t.Logf("seed %d: exact truncated, skipping", seed)
			continue
		}
		if h.Finish() < opt.Finish {
			t.Errorf("seed %d: heuristic finish %d beats exact optimum %d",
				seed, h.Finish(), opt.Finish)
		}

		optEc, err := Solve(p.Clone(), MinEnergyCost, Config{Horizon: h.Finish(), TauBound: h.Finish()})
		if err != nil {
			continue // no schedule within the heuristic's own finish: fine
		}
		if optEc.Optimal && h.EnergyCost() < optEc.EnergyCost-1e-9 {
			t.Errorf("seed %d: heuristic cost %.2f beats exact optimum %.2f",
				seed, h.EnergyCost(), optEc.EnergyCost)
		}
	}
}

// TestNineTaskOptima pins the provable optima of the reconstructed
// nine-task example under its Pmax = 16 W budget: no schedule finishes
// by 10 s, the minimum makespan is 11 s at 12 J, and relaxing to 12 s
// admits a 4 J schedule. The heuristic pipeline lands at 12 s / 10 J —
// near-optimal on time, 6 J from the cost optimum, exactly the kind of
// gap the paper's complexity discussion predicts.
func TestNineTaskOptima(t *testing.T) {
	p := paperex.Nine()
	if _, err := Solve(p.Clone(), MinEnergyCost, Config{Horizon: 10, TauBound: 10}); err == nil {
		t.Error("10 s schedule should be infeasible under Pmax=16")
	}
	at11, err := Solve(p.Clone(), MinEnergyCost, Config{Horizon: 11, TauBound: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !at11.Optimal || at11.EnergyCost != 12 {
		t.Errorf("tau<=11 optimum = %.1f J (optimal=%v), want 12 J", at11.EnergyCost, at11.Optimal)
	}
	at12, err := Solve(p.Clone(), MinEnergyCost, Config{Horizon: 12, TauBound: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !at12.Optimal || at12.EnergyCost != 4 {
		t.Errorf("tau<=12 optimum = %.1f J (optimal=%v), want 4 J", at12.EnergyCost, at12.Optimal)
	}
	rep := verify.Check(p, at12.Schedule)
	if !rep.OK() {
		t.Fatalf("optimal schedule invalid: %v", rep.Err())
	}
	// The pipeline must respect these bounds.
	h, err := sched.Run(p.Clone(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Finish() < 11 {
		t.Errorf("pipeline finish %d beats the provable minimum 11", h.Finish())
	}
	if h.Finish() == 12 && h.EnergyCost() < 4 {
		t.Errorf("pipeline cost %.1f beats the provable optimum 4", h.EnergyCost())
	}
}

// TestExactOutputIsValid: exact solutions pass the independent oracle.
func TestExactOutputIsValid(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := analysis.Generate(analysis.GenConfig{Tasks: 5, MaxDelay: 4, Seed: seed})
		sol, err := Solve(p, MinFinish, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := verify.Check(p, sol.Schedule)
		if !rep.OK() {
			t.Errorf("seed %d: exact schedule invalid: %v", seed, rep.Err())
		}
		if math.Abs(rep.Metrics.EnergyCost-sol.EnergyCost) > 1e-9 {
			t.Errorf("seed %d: cost mismatch: solver %.3f oracle %.3f",
				seed, sol.EnergyCost, rep.Metrics.EnergyCost)
		}
	}
}

func TestObjectiveString(t *testing.T) {
	if MinFinish.String() != "min-finish" || MinEnergyCost.String() != "min-energy-cost" {
		t.Error("objective strings wrong")
	}
	if Objective(9).String() == "" {
		t.Error("unknown objective empty")
	}
}

func TestSolveRejectsInvalidProblem(t *testing.T) {
	p := &model.Problem{Tasks: []model.Task{{Name: "a", Resource: "R", Delay: 0}}}
	if _, err := Solve(p, MinFinish, Config{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
