// Package sched implements the paper's three power-aware scheduling
// algorithms as an incremental pipeline (paper section 5):
//
//  1. TimingScheduler (Fig. 3): a backtracking serialization search over
//     topological orderings of the constraint graph that produces a
//     time-valid schedule whenever one exists.
//  2. MaxPowerScheduler (Fig. 4): removes power spikes from a time-valid
//     schedule with slack-based task delaying, lock edges, and
//     backtracking, yielding a (power-)valid schedule.
//  3. MinPowerScheduler (Fig. 6): best-effort fills power gaps by
//     reordering tasks within their slacks, scanning the schedule
//     repeatedly under multiple heuristic orders and keeping the best
//     result, to maximize min-power utilization (equivalently, minimize
//     the energy cost drawn from non-free sources) at unchanged
//     performance.
//
// All graph mutation is journaled: every heuristic step that fails is
// rolled back exactly, mirroring the pseudocode's "undo changes to G
// since step B".
package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

// ErrInfeasible is wrapped by errors reporting that no schedule can
// satisfy the constraints (a positive cycle, or an unremovable spike).
var ErrInfeasible = errors.New("sched: infeasible")

// ScanOrder selects the order in which the min-power scheduler visits
// power gaps during one scan (paper section 5.3: "incremental order,
// reverse order, or random order").
type ScanOrder int

const (
	// ScanForward visits gaps in increasing time order.
	ScanForward ScanOrder = iota
	// ScanReverse visits gaps in decreasing time order.
	ScanReverse
	// ScanRandom visits gaps in a seeded-random order.
	ScanRandom
)

func (o ScanOrder) String() string {
	switch o {
	case ScanForward:
		return "forward"
	case ScanReverse:
		return "reverse"
	case ScanRandom:
		return "random"
	}
	return fmt.Sprintf("ScanOrder(%d)", int(o))
}

// SlotChoice selects the alternative time slot tried when moving a task
// into a power gap (paper section 5.3: "starting v at t, finishing v at
// the end of the power gap beginning at t, or a randomly chosen slot").
type SlotChoice int

const (
	// SlotStartAtGap starts the moved task exactly at the gap time t.
	SlotStartAtGap SlotChoice = iota
	// SlotFinishAtGapEnd finishes the moved task at the end of the gap.
	SlotFinishAtGapEnd
	// SlotRandom picks a seeded-random slot keeping the task active at t.
	SlotRandom
)

func (o SlotChoice) String() string {
	switch o {
	case SlotStartAtGap:
		return "start-at-gap"
	case SlotFinishAtGapEnd:
		return "finish-at-gap-end"
	case SlotRandom:
		return "random-slot"
	}
	return fmt.Sprintf("SlotChoice(%d)", int(o))
}

// Options tunes the schedulers. The zero value selects sensible
// defaults via (Options).withDefaults.
type Options struct {
	// Seed feeds the deterministic RNG used by random heuristics.
	Seed int64
	// MaxBacktracks bounds the timing scheduler's search (default 20000).
	MaxBacktracks int
	// MaxSpikeRounds bounds spike-elimination iterations (default 10000).
	MaxSpikeRounds int
	// MaxScans bounds min-power scans per heuristic combination
	// (default 10).
	MaxScans int
	// ScanOrders lists the gap-visit orders tried; the best outcome
	// wins (default: forward, reverse, random).
	ScanOrders []ScanOrder
	// SlotChoices lists the slot heuristics tried per scan order
	// (default: start-at-gap, finish-at-gap-end).
	SlotChoices []SlotChoice
	// DisableLocks turns off the lock-the-remaining-tasks heuristic of
	// the max-power scheduler (for ablation).
	DisableLocks bool
	// FullRecompute makes every delay re-run the full longest-path
	// computation instead of relaxing incrementally from the new edge
	// (for ablation; results are identical, only speed differs).
	FullRecompute bool
	// Naive disables the incremental scheduler core: the power profile
	// is rebuilt from scratch at every probe instead of maintained as a
	// mutable segment structure, and per-task slack is recomputed from
	// the constraint graph instead of served from the dirty-set cache
	// (for ablation and differential testing; results are identical,
	// only speed differs).
	Naive bool
	// Restarts runs the whole pipeline this many times with perturbed
	// timing-candidate orders and keeps the best outcome (shortest
	// finish, then lowest energy cost). Different serialization orders
	// explore different regions of the partial-order space the paper's
	// single greedy pass cannot reach. Default 1 (no restarts).
	Restarts int
	// Workers bounds how many restarts run concurrently (default
	// GOMAXPROCS, capped by Restarts). The reduction over restart
	// outcomes is a total order whose final tie-break is the restart
	// index, so every Workers value — including 1 — produces
	// byte-identical schedules, profiles, and stats; the option trades
	// wall-clock time only.
	Workers int
	// Compact enables the left-shift pass between max-power and
	// min-power scheduling: spike elimination only pushes tasks later,
	// and compaction reclaims idle time it strands, shrinking the
	// finish time when possible (an extension beyond the paper).
	Compact bool
}

func (o Options) withDefaults() Options {
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 20000
	}
	if o.MaxSpikeRounds == 0 {
		o.MaxSpikeRounds = 10000
	}
	if o.MaxScans == 0 {
		o.MaxScans = 10
	}
	if len(o.ScanOrders) == 0 {
		o.ScanOrders = []ScanOrder{ScanForward, ScanReverse, ScanRandom}
	}
	if len(o.SlotChoices) == 0 {
		o.SlotChoices = []SlotChoice{SlotStartAtGap, SlotFinishAtGapEnd}
	}
	return o
}

// Stats counts the work the heuristics performed.
type Stats struct {
	Backtracks  int // timing-search and spike-fix rollbacks
	SpikeRounds int // spike-elimination iterations
	Scans       int // min-power scans across all heuristic combos
	Moves       int // accepted gap-filling moves
	Rejected    int // attempted gap-filling moves rolled back
}

// Result is the outcome of a scheduling stage.
type Result struct {
	// Compiled is the lowered problem the schedule refers to.
	Compiled *schedule.Compiled
	// Schedule holds the computed start times.
	Schedule schedule.Schedule
	// Graph is the final working constraint graph, including
	// serialization, delay, and lock edges.
	Graph *graph.Graph
	// Profile is the schedule's power profile (including base power).
	Profile power.Profile
	// Stats describes the heuristic effort expended.
	Stats Stats
	// Tasks is the effective task view the schedule refers to: for a
	// heterogeneous problem, each task carries the delay and power of
	// its chosen machine and DVS level; for a degenerate problem it is
	// exactly Compiled.Prob.Tasks.
	Tasks []model.Task
	// Assignment records the chosen (machine, level) per task; nil for
	// a degenerate problem.
	Assignment model.Assignment
}

// Finish returns the schedule's finish time tau.
func (r *Result) Finish() model.Time { return r.Schedule.Finish(r.Tasks) }

// EffectiveProblem returns the problem view the schedule executes:
// the original problem for the degenerate case (no copy — byte-level
// identity for every downstream renderer), or a clone whose tasks
// carry their chosen effective delay and power, with the chosen
// machine recorded as the task's pin, for a heterogeneous one.
func (r *Result) EffectiveProblem() *model.Problem {
	if !r.Compiled.Hetero {
		return r.Compiled.Prob
	}
	q := r.Compiled.Prob.Clone()
	for i := range q.Tasks {
		q.Tasks[i].Delay = r.Tasks[i].Delay
		q.Tasks[i].Power = r.Tasks[i].Power
		q.Tasks[i].Levels = nil
		if r.Assignment != nil && r.Assignment[i].Machine >= 0 {
			q.Tasks[i].Machine = r.Compiled.Prob.Machines[r.Assignment[i].Machine].Name
		}
	}
	return q
}

// EnergyCost returns Ec_sigma(Pmin) for the problem's Pmin.
func (r *Result) EnergyCost() float64 { return r.Profile.EnergyCost(r.Compiled.Prob.Pmin) }

// Utilization returns rho_sigma(Pmin) for the problem's Pmin.
func (r *Result) Utilization() float64 { return r.Profile.Utilization(r.Compiled.Prob.Pmin) }

// Peak returns the maximum of the power profile.
func (r *Result) Peak() float64 { return r.Profile.Peak() }

// stage selects how much of the pipeline to run.
type stage int

const (
	stageTiming stage = iota
	stageMaxPower
	stageMinPower
)

// Timing runs only the timing scheduler, returning a time-valid
// schedule that ignores power constraints (paper Fig. 3).
func Timing(p *model.Problem, opts Options) (*Result, error) {
	return runPipeline(context.Background(), p, opts, stageTiming)
}

// TimingCtx is Timing under a context: the search aborts with the
// context's error (within one cancellation-check interval) when ctx is
// canceled or its deadline passes.
func TimingCtx(ctx context.Context, p *model.Problem, opts Options) (*Result, error) {
	return runPipeline(ctx, p, opts, stageTiming)
}

// MaxPower runs the timing scheduler followed by max-power spike
// elimination, returning a valid schedule (paper Fig. 4).
func MaxPower(p *model.Problem, opts Options) (*Result, error) {
	return runPipeline(context.Background(), p, opts, stageMaxPower)
}

// MaxPowerCtx is MaxPower under a context (see TimingCtx).
func MaxPowerCtx(ctx context.Context, p *model.Problem, opts Options) (*Result, error) {
	return runPipeline(ctx, p, opts, stageMaxPower)
}

// MinPower runs the full pipeline: timing, max-power, then best-effort
// min-power gap filling (paper Fig. 6). This is the power-aware
// scheduler's main entry point.
func MinPower(p *model.Problem, opts Options) (*Result, error) {
	return runPipeline(context.Background(), p, opts, stageMinPower)
}

// MinPowerCtx is MinPower under a context (see TimingCtx). A canceled
// run never returns a partial schedule: the result is the context's
// error, so callers cannot mistake a half-optimized schedule for the
// deterministic full-pipeline outcome.
func MinPowerCtx(ctx context.Context, p *model.Problem, opts Options) (*Result, error) {
	return runPipeline(ctx, p, opts, stageMinPower)
}

// runPipeline executes the pipeline up to the requested stage, once per
// restart, and keeps the best successful outcome under a total order:
// shortest finish time first, then lowest energy cost, then lowest
// restart index. A restart that fails is skipped; the call fails only
// when every restart does (with the lowest-index restart's error).
// Cancellation aborts the whole call, even when earlier restarts
// already produced a result: the best-of-fewer-restarts schedule
// differs from the deterministic full run, and serving it would poison
// content-addressed caches.
//
// Restarts are fanned across up to Options.Workers goroutines. Because
// the reduction is a total order (the restart index breaks every tie)
// and each restart is a deterministic function of its index, the winner
// is identical to the sequential run regardless of completion order.
// Workers additionally share an incumbent bound — the best (finish,
// energy) published so far — and abandon a restart right after its
// timing stage when that stage's finish already exceeds the incumbent's
// strictly: the later stages only ever delay tasks (compaction cannot
// go below the timing graph's longest path), so such a restart provably
// loses the reduction no matter when the incumbent arrived.
func runPipeline(ctx context.Context, p *model.Problem, opts Options, upTo stage) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sched: pipeline aborted: %w", err)
	}
	c, err := schedule.Compile(p)
	if err != nil {
		return nil, err // structural problem error: no restart helps
	}
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > restarts {
		workers = restarts
	}
	var inc *atomic.Pointer[incumbent]
	if restarts > 1 {
		inc = new(atomic.Pointer[incumbent])
	}

	var (
		next    atomic.Int64 // next restart index to claim
		errs    = make([]error, restarts)
		mu      sync.Mutex
		best    *Result
		bestIdx int
	)
	worker := func() {
		st := newState(ctx, c, opts, inc)
		var localBest *Result
		localIdx := -1
		for {
			r := int(next.Add(1)) - 1
			if r >= restarts || ctx.Err() != nil {
				break
			}
			st.reset(r)
			res, err := st.runTo(upTo)
			if err != nil {
				errs[r] = err
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					break
				}
				continue
			}
			st.publish(res)
			if localBest == nil || betterIdx(res, r, localBest, localIdx) {
				if restarts > 1 {
					// Detach the retained result from the state before
					// the next restart mutates the working graph. (With
					// a single restart the state is never reused, so the
					// hot path skips the copy.)
					res.Graph = st.g.Clone()
				}
				localBest, localIdx = res, r
			}
		}
		if localBest != nil {
			mu.Lock()
			if best == nil || betterIdx(localBest, localIdx, best, bestIdx) {
				best, bestIdx = localBest, localIdx
			}
			mu.Unlock()
		}
	}
	if workers == 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	// No partial results on cancellation, whether we noticed it via the
	// context or via a restart's latched error.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sched: pipeline aborted: %w", err)
	}
	for _, err := range errs {
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return nil, err
		}
	}
	if best == nil {
		for _, err := range errs {
			if err != nil && !errors.Is(err, errPruned) {
				return nil, err
			}
		}
		// Unreachable: a pruned restart implies a published incumbent,
		// which implies a successful restart.
		return nil, fmt.Errorf("%w: every restart failed", ErrInfeasible)
	}
	return best, nil
}

func better(a, b *Result) bool {
	af, bf := a.Finish(), b.Finish()
	if af != bf {
		return af < bf
	}
	return a.EnergyCost() < b.EnergyCost()
}

// betterIdx extends better to the portfolio's total order: finish, then
// energy cost, then restart index. Its minimum is associative and
// commutative, so per-worker local minima fold into the same global
// winner the sequential scan picks.
func betterIdx(a *Result, ai int, b *Result, bi int) bool {
	af, bf := a.Finish(), b.Finish()
	if af != bf {
		return af < bf
	}
	ae, be := a.EnergyCost(), b.EnergyCost()
	if ae != be {
		return ae < be
	}
	return ai < bi
}

// errPruned marks a restart abandoned via the incumbent bound: it is a
// provable reduction loser, not a failure, and never surfaces to
// callers (an incumbent implies at least one successful restart).
var errPruned = errors.New("sched: restart pruned by incumbent bound")

// incumbent is the published best (finish, energy) pair of the
// portfolio so far, used for strict-domination pruning.
type incumbent struct {
	finish model.Time
	energy float64
}

// publish offers res's (finish, energy) as the portfolio's incumbent,
// keeping the published pair the lexicographic minimum seen so far.
func (st *state) publish(res *Result) {
	if st.inc == nil {
		return
	}
	f, e := res.Finish(), res.EnergyCost()
	for {
		cur := st.inc.Load()
		if cur != nil && (cur.finish < f || (cur.finish == f && cur.energy <= e)) {
			return
		}
		if st.inc.CompareAndSwap(cur, &incumbent{finish: f, energy: e}) {
			return
		}
	}
}

// pruned reports whether a restart whose timing stage produced sigma is
// already a provable reduction loser: the remaining stages only delay
// tasks, so the restart's final finish time is at least sigma's, and a
// strictly larger finish than the incumbent's loses the (finish,
// energy, index) reduction no matter which restart published it.
// Strict domination only — ties must run to completion, where the
// index tie-break decides deterministically.
func (st *state) pruned(sigma schedule.Schedule) bool {
	if st.inc == nil {
		return false
	}
	cur := st.inc.Load()
	return cur != nil && sigma.Finish(st.tasks) > cur.finish
}

func (st *state) runTo(upTo stage) (*Result, error) {
	var sigma schedule.Schedule
	var err error
	switch upTo {
	case stageTiming:
		sigma, err = st.timing()
		if err == nil && st.pruned(sigma) {
			return nil, errPruned
		}
	case stageMaxPower:
		sigma, err = st.maxPower()
	default:
		sigma, err = st.maxPower()
		if err == nil {
			if st.opts.Compact {
				sigma = st.compact(sigma)
			}
			sigma, err = st.minPower(sigma)
		}
	}
	if err != nil {
		return nil, err
	}
	return st.result(sigma), nil
}

// Run is an alias for MinPower, the complete power-aware scheduler.
func Run(p *model.Problem, opts Options) (*Result, error) { return MinPower(p, opts) }

// RunCtx is an alias for MinPowerCtx.
func RunCtx(ctx context.Context, p *model.Problem, opts Options) (*Result, error) {
	return MinPowerCtx(ctx, p, opts)
}

// cancelCheckEvery is how many heuristic steps pass between
// cooperative cancellation polls. Each step costs one counter
// increment; only every cancelCheckEvery-th step pays for a channel
// select, so the hot loops stay benchmark-neutral while a canceled
// pipeline still stops within one interval of heuristic work.
const cancelCheckEvery = 1024

// state is the mutable working context shared by the three stages. One
// state serves many restarts via reset, so all of its scratch buffers
// are allocated once and recycled; a state is owned by one goroutine
// and shares nothing mutable with its siblings except the incumbent
// pointer.
type state struct {
	c    *schedule.Compiled
	g    *graph.Graph // working graph: base + serialization + delays + locks
	opts Options
	rng  *rand.Rand
	st   Stats
	prio []int // candidate tie-break priority (identity unless perturbed)

	// tasks is the effective task view all three stages operate on. For
	// a degenerate problem it aliases c.Prob.Tasks and is never written;
	// for a heterogeneous one it is a state-owned copy whose Delay and
	// Power are overwritten at timing-visit time with the values of the
	// chosen (machine, level). The backing array is stable for the
	// state's lifetime, so the power tracker can hold a reference to it.
	tasks []model.Task
	// assign records the chosen (machine, level) per task; entries are
	// meaningful only for tasks currently visited by the timing search.
	// Nil for degenerate problems.
	assign model.Assignment
	// machEFT, choiceOrdBufs, and choiceKey are scratch for the timing
	// stage's earliest-finish choice ordering: machEFT is a per-machine
	// completion bound, choiceOrdBufs holds one reusable ordering buffer
	// per search depth (the recursion below a choice must not clobber
	// the orderings of the depths above it), and choiceKey is the
	// transient sort key, safe to share across depths because it is
	// consumed before the recursion descends.
	machEFT       []model.Time
	choiceOrdBufs [][]int
	choiceKey     []model.Time

	// baseMark checkpoints the freshly cloned base graph so reset can
	// roll every restart's edges back instead of re-cloning; rngSrc and
	// perturbSrc let reset reseed the two RNG streams in place.
	baseMark   graph.Checkpoint
	rngSrc     rand.Source
	perturbSrc rand.Source
	perturbRng *rand.Rand

	// inc is the portfolio's shared incumbent bound (nil when the run
	// has a single restart).
	inc *atomic.Pointer[incumbent]

	// ctx is the pipeline's cancellation context; ops counts heuristic
	// steps between polls and ctxErr latches the first observed
	// cancellation so every loop unwinds promptly afterwards.
	ctx    context.Context
	ops    int
	ctxErr error

	// timingMark checkpoints the graph at the end of the timing stage
	// (base constraints + serialization edges); the compaction pass
	// validates leftward moves against exactly this journal prefix.
	timingMark graph.Checkpoint

	// Incremental core (inactive when opts.Naive). tr mirrors the
	// current working schedule's power profile as a mutable segment
	// structure; slackVal/slackOK cache per-task slack with dirty-set
	// invalidation: a cached entry is trusted only while neither the
	// task, the start time of any target of its outgoing edges, nor its
	// outgoing edge set has changed (see applyMove, lock, and the
	// dirtySlackAll calls at stage and combo boundaries).
	tr       *power.Tracker
	slackVal []model.Time
	slackOK  []bool

	// cur is the working longest-path solution — one flat bank of
	// length g.N() that every stage mutates in place. The task prefix
	// cur[:NumTasks] IS the working schedule: stage code wraps it in a
	// schedule.Schedule view instead of materializing per-move copies.
	// The anchor entry stays 0 across every successful mutation: any
	// relaxation raising dist[anchor] must traverse a lock edge
	// (v -> anchor, -t), whose partner (anchor -> v, t) closes a
	// positive cycle with the raising chain, which the relaxation
	// reports as failure — so a successful delay never moves the anchor.
	cur []int
	// undo journals dist overwrites for the in-place mutations of cur:
	// the timing search truncates it to per-choice marks, delay reuses
	// it per call. Replaying it backwards restores cur exactly.
	undo []graph.DistSave
	// curU caches the current schedule's min-power utilization during
	// the min-power stage (invariant: equal to
	// prof(sigma).Utilization(Pmin) after every accepted move), so gap
	// probes compare against a cached float instead of re-integrating
	// the profile per gap time.
	curU float64
	// minDel holds each task's minimum effective delay over its
	// (machine, level) choices: the admissible per-task lower bound the
	// timing search's incumbent pruning uses (see timingLB).
	minDel []model.Time
	// specMiss counts consecutive speculative timing searches that
	// ended in a reference rerun; at specMissLimit the worker stops
	// speculating (see timing). Deliberately NOT cleared by reset: the
	// signal spans the restarts a worker runs.
	specMiss int

	// Reusable scratch for the stage heuristics (see each use site);
	// everything here is overwritten before being read, so reset does
	// not need to clear it.
	dist      []int         // timing search's live longest-path solution
	visited   []bool        // timing search visit marks
	order     startSorter   // allocation-free sort.Interface for compaction
	delayDist []int         // FullRecompute delay's previous-solution snapshot
	feasBuf   []int         // lock feasibility probe output
	active    []slackedTask // tasks active at a spike time
	skipGen   []int         // epoch marks for fixSpike's skipped set
	skipEpoch int
	gapTimes  []model.Time // below-Pmin segment starts per scan
	gapCands  []gapCand    // gap-fill candidates under construction
	gapOrder  []int        // gap-fill candidates, selection-ordered
	bestBuf   []model.Time // min-power best-schedule snapshot
	comboBase []model.Time // min-power combo-entry schedule snapshot
	csrPos    []int        // compact's CSR bucket offsets by head vertex
	csrCur    []int        // compact's CSR fill cursors
	csrEdge   []graph.Edge // compact's timing edges bucketed by head
}

func newState(ctx context.Context, c *schedule.Compiled, opts Options, inc *atomic.Pointer[incumbent]) *state {
	opts = opts.withDefaults()
	st := &state{
		c:          c,
		g:          c.Base.Clone(),
		opts:       opts,
		rngSrc:     rand.NewSource(opts.Seed),
		perturbSrc: rand.NewSource(opts.Seed),
		ctx:        ctx,
		inc:        inc,
	}
	st.rng = rand.New(st.rngSrc)
	st.perturbRng = rand.New(st.perturbSrc)
	st.baseMark = st.g.Mark()
	n := c.NumTasks()
	st.prio = make([]int, n)
	for i := range st.prio {
		st.prio[i] = i
	}
	if !opts.Naive {
		st.slackVal = make([]model.Time, n)
		st.slackOK = make([]bool, n)
	}
	st.dist = make([]int, st.g.N())
	st.cur = make([]int, st.g.N())
	st.delayDist = make([]int, st.g.N())
	st.feasBuf = make([]int, st.g.N())
	st.visited = make([]bool, n)
	st.skipGen = make([]int, n)
	st.minDel = make([]model.Time, n)
	for v := range st.minDel {
		if chs := c.Choices[v]; len(chs) > 0 {
			md := chs[0].Delay
			for _, ch := range chs[1:] {
				if ch.Delay < md {
					md = ch.Delay
				}
			}
			st.minDel[v] = md
		}
	}
	st.csrPos = make([]int, st.g.N()+1)
	st.csrCur = make([]int, st.g.N())
	if c.Hetero {
		st.tasks = append([]model.Task(nil), c.Prob.Tasks...)
		st.assign = make(model.Assignment, n)
		st.machEFT = make([]model.Time, len(c.Prob.Machines))
	} else {
		st.tasks = c.Prob.Tasks
	}
	return st
}

// reset returns the state to the condition a freshly constructed state
// would be in — base graph, zeroed stats, reseeded RNG, identity
// priority, cold caches — then applies restart r's perturbation, so one
// worker runs an entire restart sequence without reallocating.
func (st *state) reset(r int) {
	st.g.Rollback(st.baseMark)
	st.st = Stats{}
	st.ops = 0
	st.ctxErr = nil
	st.rngSrc.Seed(st.opts.Seed)
	for i := range st.prio {
		st.prio[i] = i
	}
	for i := range st.slackOK {
		st.slackOK[i] = false
	}
	st.timingMark = 0
	st.undo = st.undo[:0]
	if st.c.Hetero {
		copy(st.tasks, st.c.Prob.Tasks)
	}
	st.perturb(r)
}

// perturb shuffles the candidate tie-break priority for restart r.
// Restart 0 keeps the deterministic index order, so a single run
// reproduces the paper's greedy behaviour exactly. Each restart's
// shuffle is a function of (Seed, r) alone, which is what makes a
// restart index a complete description of its run.
func (st *state) perturb(r int) {
	if r == 0 {
		return
	}
	st.perturbSrc.Seed(st.opts.Seed + int64(r)*0x9e3779b9)
	st.perturbRng.Shuffle(len(st.prio), func(i, j int) { st.prio[i], st.prio[j] = st.prio[j], st.prio[i] })
}

func (st *state) result(sigma schedule.Schedule) *Result {
	res := &Result{
		Compiled: st.c,
		// Detach the schedule from the state's working bank: sigma views
		// st.cur, which the next restart mutates in place.
		Schedule: sigma.Clone(),
		Graph:    st.g,
		Profile:  power.Build(st.tasks, sigma, st.c.Prob.BasePower),
		Stats:    st.st,
		Tasks:    st.tasks,
	}
	if st.c.Hetero {
		// Detach the task view and assignment from the state: the next
		// restart overwrites both in place. (Degenerate results alias
		// Prob.Tasks, which nothing mutates.)
		res.Tasks = append([]model.Task(nil), st.tasks...)
		res.Assignment = st.assign.Clone()
	}
	return res
}

// delay constrains task v to start no earlier than newStart by adding
// an anchor edge, then updates the working schedule st.cur IN PLACE. By
// default the update relaxes incrementally from the new edge (see
// graph.AddEdgeRelaxUndo), so only the shifted cone of successors is
// touched. ok is false — with the edge rolled back and cur restored —
// when the delay creates a positive cycle.
//
// On success the incremental core is updated for exactly the shifted
// tasks (power-profile deltas applied, affected slack cache entries
// invalidated), and changed journals every overwritten entry of cur. A
// caller that rejects the new schedule rolls the graph back to its own
// pre-call mark and passes changed to undoDelay; changed aliases a
// state-owned buffer that the next delay call reuses.
func (st *state) delay(v int, newStart model.Time) (changed []graph.DistSave, ok bool) {
	cp := st.g.Mark()
	if st.opts.FullRecompute {
		st.g.AddEdge(st.c.Anchor, v, newStart)
		old := st.delayDist
		copy(old, st.cur)
		if !st.g.LongestFromInto(st.cur, st.c.Anchor) {
			st.g.Rollback(cp)
			copy(st.cur, old)
			return nil, false
		}
		undo := st.undo[:0]
		for w := range st.cur {
			if st.cur[w] != old[w] {
				undo = append(undo, graph.DistSave{V: w, Old: old[w]})
			}
		}
		st.undo = undo
		st.applyMove(undo)
		return undo, true
	}
	undo, relaxOK := st.g.AddEdgeRelaxUndo(st.cur, st.c.Anchor, v, newStart, st.undo[:0])
	st.undo = undo
	if !relaxOK {
		st.g.Rollback(cp)
		for i := len(undo) - 1; i >= 0; i-- {
			st.cur[undo[i].V] = undo[i].Old
		}
		return nil, false
	}
	st.applyMove(undo)
	return undo, true
}

// lock pins task v at start t with a pair of edges (sigma(v) >= t and
// sigma(v) <= t).
func (st *state) lock(v int, t model.Time) {
	st.g.AddEdge(st.c.Anchor, v, t)
	st.g.AddEdge(v, st.c.Anchor, -t)
	st.dirtySlack(v) // v gained an outgoing edge
}

// syncProfile (re)builds the incremental profile tracker onto sigma.
// Stages call it at their boundaries, where the working schedule is
// re-derived wholesale rather than by single-task moves.
func (st *state) syncProfile(sigma schedule.Schedule) {
	if st.opts.Naive {
		return
	}
	if st.tr == nil {
		st.tr = power.NewTracker(st.tasks, sigma, st.c.Prob.BasePower)
	} else {
		st.tr.Reset(sigma)
	}
}

// prof returns the power profile of sigma. On the incremental path the
// tracker must be synced to sigma (by construction of the stage loops);
// the naive path rebuilds from scratch. The returned profile's segments
// are owned by the tracker and must not be retained across moves.
func (st *state) prof(sigma schedule.Schedule) power.Profile {
	if st.opts.Naive {
		return power.Build(st.tasks, sigma, st.c.Prob.BasePower)
	}
	return st.tr.Profile()
}

// applyMove updates the incremental core after a delay overwrote the
// entries journaled in changed: the profile tracker follows each moved
// task to its new start (now live in st.cur), and the slack cache
// invalidates the moved tasks plus their constraint-graph
// in-neighborhood (any task with an outgoing edge into a moved task
// reads the moved start in its slack). Anchor entries are skipped — the
// anchor is not a task.
func (st *state) applyMove(changed []graph.DistSave) {
	if st.opts.Naive {
		return
	}
	n := st.c.NumTasks()
	for _, e := range changed {
		if e.V < n {
			st.tr.Move(e.V, st.cur[e.V])
			st.dirtySlack(e.V)
		}
	}
}

// undoDelay reverses a successful delay the caller rejected, after the
// caller rolled the graph back: the journal replays backwards into cur,
// and the tracker and slack cache follow each restored task (the cache
// entries may have been recomputed against the rejected schedule in
// between).
func (st *state) undoDelay(changed []graph.DistSave) {
	n := st.c.NumTasks()
	naive := st.opts.Naive
	for i := len(changed) - 1; i >= 0; i-- {
		e := changed[i]
		st.cur[e.V] = e.Old
		if !naive && e.V < n {
			st.tr.Move(e.V, e.Old)
			st.dirtySlack(e.V)
		}
	}
}

// dirtySlack invalidates the cached slack of task w and of every task
// with an outgoing constraint edge into w.
func (st *state) dirtySlack(w int) {
	if st.opts.Naive {
		return
	}
	st.slackOK[w] = false
	for _, e := range st.g.In(w) {
		if e.From != st.c.Anchor {
			st.slackOK[e.From] = false
		}
	}
}

// dirtySlackAll invalidates every cached slack (used at stage and
// heuristic-combo boundaries, where graph rollbacks remove edges en
// masse).
func (st *state) dirtySlackAll() {
	for i := range st.slackOK {
		st.slackOK[i] = false
	}
}

// pollCancel is the cooperative cancellation point of every heuristic
// loop: it counts one step, polls the context every cancelCheckEvery
// steps, and returns (and latches) the context's error once observed.
// A latched error makes every subsequent call return immediately, so
// the timing search's recursion unwinds without re-polling.
func (st *state) pollCancel() error {
	if st.ctxErr != nil {
		return st.ctxErr
	}
	st.ops++
	if st.ops%cancelCheckEvery != 0 {
		return nil
	}
	select {
	case <-st.ctx.Done():
		st.ctxErr = fmt.Errorf("sched: pipeline aborted: %w", st.ctx.Err())
		return st.ctxErr
	default:
		return nil
	}
}

// powerValid reports whether the profile respects the max power
// budget: Profile.Valid on the naive path, the tracker's O(1)
// materialized peak on the incremental one (bit-identical — both
// compare the same exact segment powers against pmax).
func (st *state) powerValid(np power.Profile, pmax float64) bool {
	if st.opts.Naive {
		return np.Valid(pmax)
	}
	return st.tr.ValidMax(pmax)
}

// timeValid reports whether the working schedule is time-valid. The
// incremental path checks every live constraint edge against cur, an
// allocation-free equivalent of schedule.CheckTimeValidTasks: start
// nonnegativity is implied by the anchor release edges (anchor -> v,
// w >= 0, with cur[anchor] pinned at 0), and same-resource
// serialization needs no pairwise sweep because the timing stage links
// every same-resource pair with an explicit serialization edge
// (visited -> c and c -> unvisited), so edge satisfaction implies
// non-overlap (DESIGN.md section 13). The naive path runs the full
// check, keeping it as the oracle the differential suite compares the
// incremental decisions against.
func (st *state) timeValid(sigma schedule.Schedule) bool {
	if st.opts.Naive {
		return schedule.CheckTimeValidTasks(st.g, st.c, st.tasks, sigma) == nil
	}
	cur := st.cur
	for _, e := range st.g.JournalPrefix(st.g.Mark()) {
		if cur[e.To] < cur[e.From]+e.W {
			return false
		}
	}
	return true
}

// slackOf returns Slack(v) under sigma, served from the dirty-set cache
// on the incremental path.
func (st *state) slackOf(sigma schedule.Schedule, v int) model.Time {
	if st.opts.Naive {
		return schedule.Slack(st.g, st.c, sigma, v)
	}
	if !st.slackOK[v] {
		st.slackVal[v] = schedule.Slack(st.g, st.c, sigma, v)
		st.slackOK[v] = true
	}
	return st.slackVal[v]
}
