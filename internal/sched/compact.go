package sched

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

// compact is the optional left-shift pass between max-power and
// min-power scheduling (Options.Compact): the spike-elimination
// heuristics only ever push tasks later, which can strand idle time
// that a task could legally move back into. Compaction repeatedly
// pulls each task to its earliest start that keeps every timing
// constraint (including the serialization order chosen by the timing
// stage) and the power budget satisfied, until a fixpoint. The finish
// time can only shrink. The working schedule is mutated in place.
//
// The timing-stage edges are read straight off the graph journal's
// timing prefix and bucketed by head vertex (a CSR index built once per
// pass set), so each task's leftward bound costs O(indegree) instead of
// a scan over the whole edge set.
//
// After compaction the working graph is rebuilt from the timing-stage
// edges plus one release edge per task, so the downstream min-power
// machinery sees a consistent longest-path solution.
func (st *state) compact(sigma schedule.Schedule) schedule.Schedule {
	if st.timingMark == 0 {
		return sigma
	}
	tasks := st.tasks
	pmax := st.c.Prob.Pmax
	st.syncProfile(sigma)

	// CSR index over the timing-prefix edges, bucketed by head vertex.
	// The journal prefix view stays valid: nothing below timingMark is
	// rolled back before the final rebuild.
	edges := st.g.JournalPrefix(st.timingMark)
	nv := st.g.N()
	pos := st.csrPos[:nv+1]
	for i := range pos {
		pos[i] = 0
	}
	for _, e := range edges {
		pos[e.To+1]++
	}
	for v := 1; v <= nv; v++ {
		pos[v] += pos[v-1]
	}
	if cap(st.csrEdge) < len(edges) {
		st.csrEdge = make([]graph.Edge, len(edges))
	}
	ce := st.csrEdge[:len(edges)]
	cur := st.csrCur[:nv]
	copy(cur, pos[:nv])
	for _, e := range edges {
		ce[cur[e.To]] = e
		cur[e.To]++
	}

	// powerOK reports whether the current sigma respects the budget;
	// the incremental path probes the tracker (which follows every
	// trial shift below) in O(1), the naive path rebuilds from scratch.
	powerOK := func() bool {
		if pmax == 0 {
			return true
		}
		if st.opts.Naive {
			return power.Build(tasks, sigma, st.c.Prob.BasePower).Valid(pmax)
		}
		return st.tr.ValidMax(pmax)
	}
	const maxPasses = 20
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, v := range st.byStart(sigma, len(tasks)) {
			lb := st.compactBound(sigma, pos, ce, v)
			if lb >= sigma.Start[v] {
				continue
			}
			for s := lb; s < sigma.Start[v]; s++ {
				trial := sigma.Start[v]
				sigma.Start[v] = s
				if !st.opts.Naive {
					st.tr.Move(v, s)
				}
				if powerOK() {
					changed = true
					break
				}
				sigma.Start[v] = trial
				if !st.opts.Naive {
					st.tr.Move(v, trial)
				}
			}
		}
		if !changed {
			break
		}
	}

	// Rebuild the working graph: timing-stage edges plus releases
	// pinning the compacted starts from below.
	st.g.Rollback(st.timingMark)
	for v := range sigma.Start {
		st.g.AddEdge(st.c.Anchor, v, sigma.Start[v])
	}
	return sigma
}

// compactBound returns the earliest start of v permitted by the
// timing-stage constraint edges, holding every other task fixed.
// Only incoming edges bound a leftward move: outgoing min edges relax
// and outgoing max edges (negative weights) stay satisfied as v moves
// earlier.
func (st *state) compactBound(sigma schedule.Schedule, pos []int, ce []graph.Edge, v int) model.Time {
	lb := model.Time(0)
	for _, e := range ce[pos[v]:pos[v+1]] {
		var from model.Time
		if e.From != st.c.Anchor {
			from = sigma.Start[e.From]
		}
		if b := from + e.W; b > lb {
			lb = b
		}
	}
	return lb
}

// byStart returns the task indices ordered by (start, index), in a
// state-owned buffer sorted without allocating. The key is unique per
// task, so the unstable sort is deterministic.
func (st *state) byStart(sigma schedule.Schedule, n int) []int {
	order := st.order.order[:0]
	for i := 0; i < n; i++ {
		order = append(order, i)
	}
	st.order.order, st.order.start = order, sigma.Start
	sort.Sort(&st.order)
	return order
}

// startSorter is byStart's pointer-receiver sort.Interface.
type startSorter struct {
	order []int
	start []model.Time
}

func (s *startSorter) Len() int      { return len(s.order) }
func (s *startSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }
func (s *startSorter) Less(i, j int) bool {
	if s.start[s.order[i]] != s.start[s.order[j]] {
		return s.start[s.order[i]] < s.start[s.order[j]]
	}
	return s.order[i] < s.order[j]
}
