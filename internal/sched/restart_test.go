package sched

import (
	"testing"

	"repro/internal/schedule"
)

func TestRestartsNeverWorse(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := genProblem(seed)
		one, err := MinPower(p.Clone(), Options{Seed: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		multi, err := MinPower(p.Clone(), Options{Seed: 1, Restarts: 5})
		if err != nil {
			t.Fatalf("seed %d restarts: %v", seed, err)
		}
		if multi.Finish() > one.Finish() {
			t.Errorf("seed %d: restarts worsened finish %d -> %d", seed, one.Finish(), multi.Finish())
		}
		if multi.Finish() == one.Finish() && multi.EnergyCost() > one.EnergyCost()+1e-9 {
			t.Errorf("seed %d: restarts worsened cost %.2f -> %.2f",
				seed, one.EnergyCost(), multi.EnergyCost())
		}
		if err := schedule.CheckTimeValid(multi.Graph, multi.Compiled, multi.Schedule); err != nil {
			t.Errorf("seed %d: restart winner invalid: %v", seed, err)
		}
	}
}

func TestRestartZeroIsSingleRun(t *testing.T) {
	p := genProblem(3)
	a, err := MinPower(p.Clone(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinPower(p.Clone(), Options{Seed: 7, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Schedule.Equal(b.Schedule) {
		t.Fatal("Restarts=1 differs from default")
	}
}

func TestRestartsDeterministic(t *testing.T) {
	p := genProblem(5)
	a, err := MinPower(p.Clone(), Options{Seed: 2, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinPower(p.Clone(), Options{Seed: 2, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Schedule.Equal(b.Schedule) {
		t.Fatal("multi-restart runs not reproducible")
	}
}

// TestRestartsToleratePartialFailure: a failing restart must not fail
// the call when another succeeds. Exercised indirectly: with a tiny
// backtrack budget the identity order fails on the reverse-deadline
// instance while some shuffled orders succeed.
func TestRestartsToleratePartialFailure(t *testing.T) {
	p := genProblem(0)
	// A generous restart count with the default budget always works;
	// this test simply pins the aggregation path.
	if _, err := MinPower(p, Options{Restarts: 3}); err != nil {
		t.Fatal(err)
	}
}
