package sched

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"repro/internal/model"
	"repro/internal/rover"
	"repro/internal/spec"
)

// The degenerate-case golden suite pins the scheduler's observable
// output — start times, power profile, stats, fingerprint, and the
// interchange JSON — for every single-machine, single-level problem in
// the repository: the testdata spec documents and the paper's rover
// iteration graphs. The goldens were captured before the heterogeneous
// machine/DVS representation landed; the suite therefore proves, byte
// for byte, that the paper's problems are the degenerate case of the
// generalized representation rather than a separately maintained code
// path. Regenerate (a conscious act, like changing the fingerprint
// encoding) with:
//
//	GOLDEN_UPDATE=1 go test ./internal/sched -run TestGoldenDegenerate
const goldenDir = "../../testdata/golden"

// goldenDoc is one recorded pipeline outcome. Floats are stored both
// as hex-encoded IEEE-754 bits (the comparison key: byte identity, not
// approximate equality) and as text (for humans reading the diff).
type goldenDoc struct {
	Fingerprint string       `json:"fingerprint"`
	Starts      []model.Time `json:"starts"`
	Finish      model.Time   `json:"finish"`
	EnergyBits  string       `json:"energy_cost_bits"`
	EnergyText  string       `json:"energy_cost"`
	UtilBits    string       `json:"utilization_bits"`
	UtilText    string       `json:"utilization"`
	Profile     []goldenSeg  `json:"profile"`
	Stats       Stats        `json:"stats"`
	ScheduleJS  string       `json:"schedule_json"`
}

type goldenSeg struct {
	T0    model.Time
	T1    model.Time
	PBits string
}

func (s goldenSeg) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		T0    model.Time `json:"t0"`
		T1    model.Time `json:"t1"`
		PBits string     `json:"p_bits"`
	}{s.T0, s.T1, s.PBits})
}

func (s *goldenSeg) UnmarshalJSON(data []byte) error {
	var v struct {
		T0    model.Time `json:"t0"`
		T1    model.Time `json:"t1"`
		PBits string     `json:"p_bits"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	s.T0, s.T1, s.PBits = v.T0, v.T1, v.PBits
	return nil
}

func bits(f float64) string { return fmt.Sprintf("%016x", math.Float64bits(f)) }

// goldenOptions are the option sets each case is pinned under: the
// paper's plain deterministic pipeline, and the extended pipeline with
// compaction and a restart portfolio (covering the perturbed searches
// and the parallel reduction).
func goldenOptions() map[string]Options {
	return map[string]Options{
		"default":          {},
		"compact-restarts": {Seed: 9, Compact: true, Restarts: 4, Workers: 2},
	}
}

// goldenCases enumerates every degenerate problem the suite pins.
func goldenCases(t testing.TB) map[string]*model.Problem {
	cases := make(map[string]*model.Problem)
	docs, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.spec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no testdata spec documents found")
	}
	for _, path := range docs {
		p, err := spec.ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if p.Heterogeneous() {
			continue // pinned by the hetero differential suite instead
		}
		cases["spec-"+filepath.Base(path)] = p
	}
	for _, c := range []rover.Case{rover.Best, rover.Typical, rover.Worst} {
		for _, k := range []rover.IterationKind{rover.Cold, rover.ColdPreheat, rover.Warm} {
			cases[fmt.Sprintf("rover-%d-%d", int(c), int(k))] = rover.BuildIteration(c, k)
		}
	}
	return cases
}

func captureGolden(t testing.TB, p *model.Problem, opts Options) *goldenDoc {
	r, err := MinPower(p.Clone(), opts)
	if err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	js, err := spec.FormatScheduleJSON(p, r.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	doc := &goldenDoc{
		Fingerprint: p.Fingerprint(),
		Starts:      r.Schedule.Start,
		Finish:      r.Finish(),
		EnergyBits:  bits(r.EnergyCost()),
		EnergyText:  strconv.FormatFloat(r.EnergyCost(), 'g', -1, 64),
		UtilBits:    bits(r.Utilization()),
		UtilText:    strconv.FormatFloat(r.Utilization(), 'g', -1, 64),
		Stats:       r.Stats,
		ScheduleJS:  string(js),
	}
	for _, s := range r.Profile.Segs {
		doc.Profile = append(doc.Profile, goldenSeg{T0: s.T0, T1: s.T1, PBits: bits(s.P)})
	}
	return doc
}

// TestGoldenDegenerate replays every degenerate case and compares the
// full observable outcome against the committed pre-refactor goldens.
func TestGoldenDegenerate(t *testing.T) {
	update := os.Getenv("GOLDEN_UPDATE") != ""
	if update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	cases := goldenCases(t)
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := cases[name]
		for oname, opts := range goldenOptions() {
			label := name + "-" + oname
			t.Run(label, func(t *testing.T) {
				got := captureGolden(t, p, opts)
				path := filepath.Join(goldenDir, label+".json")
				if update {
					data, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with GOLDEN_UPDATE=1 to capture): %v", err)
				}
				var want goldenDoc
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatal(err)
				}
				gotData, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				wantData, err := json.MarshalIndent(&want, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if string(gotData) != string(wantData) {
					t.Errorf("golden mismatch for %s\n got: %s\nwant: %s", label, gotData, wantData)
				}
			})
		}
	}
}
