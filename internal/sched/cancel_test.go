package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/model"
)

// cancelProblem builds a moderately sized feasible problem whose full
// pipeline does enough heuristic work that a mid-run cancellation lands
// between cooperative checks (resource conflicts force serialization,
// the tight Pmax forces spike fixing, Pmin leaves gaps to fill).
func cancelProblem(n int) *model.Problem {
	p := &model.Problem{Name: "cancel"}
	for i := 0; i < n; i++ {
		p.AddTask(model.Task{
			Name:     string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)),
			Resource: []string{"R", "S", "T"}[i%3],
			Delay:    model.Time(2 + i%5),
			Power:    2 + float64(i%7),
		})
	}
	for i := 0; i+4 < n; i += 4 {
		p.MinSep(p.Tasks[i].Name, p.Tasks[i+4].Name, p.Tasks[i].Delay)
	}
	p.BasePower = 0.5
	p.Pmax = 14
	p.Pmin = 7
	return p
}

// TestCancelPreCanceled: a context that is already dead aborts every
// entry point before any heuristic work runs.
func TestCancelPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := cancelProblem(12)
	for name, run := range map[string]func() (*Result, error){
		"timing":   func() (*Result, error) { return TimingCtx(ctx, p, Options{}) },
		"maxpower": func() (*Result, error) { return MaxPowerCtx(ctx, p, Options{}) },
		"minpower": func() (*Result, error) { return MinPowerCtx(ctx, p, Options{}) },
		"run":      func() (*Result, error) { return RunCtx(ctx, p, Options{}) },
	} {
		res, err := run()
		if res != nil || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: (res=%v, err=%v), want nil result and context.Canceled", name, res, err)
		}
	}
}

// TestCancelMidRun: canceling while the pipeline grinds through many
// restarts stops it promptly with the context's error and no partial
// result. Restarts make the run long-lived without a giant instance:
// the restart loop re-checks the context before every attempt, and the
// in-restart heuristics poll every cancelCheckEvery steps.
func TestCancelMidRun(t *testing.T) {
	p := cancelProblem(30)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = MinPowerCtx(ctx, p, Options{Restarts: 1 << 20})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline did not stop within 10s of cancellation")
	}
	if res != nil {
		t.Fatal("canceled pipeline returned a partial result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelDeadline: an expiring deadline surfaces as
// context.DeadlineExceeded.
func TestCancelDeadline(t *testing.T) {
	p := cancelProblem(30)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res, err := MinPowerCtx(ctx, p, Options{Restarts: 1 << 20})
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("(res=%v, err=%v), want nil result and context.DeadlineExceeded", res, err)
	}
}

// TestCancelBackgroundUnaffected: the context-free entry points still
// produce the deterministic result (the Background context's Done
// channel is nil, so the polls never fire).
func TestCancelBackgroundUnaffected(t *testing.T) {
	p := cancelProblem(20)
	r1, err := MinPower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MinPowerCtx(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Finish() != r2.Finish() || r1.EnergyCost() != r2.EnergyCost() {
		t.Fatalf("ctx and ctx-free runs differ: finish %d vs %d, cost %g vs %g",
			r1.Finish(), r2.Finish(), r1.EnergyCost(), r2.EnergyCost())
	}
}
