package sched

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/rover"
	"repro/internal/spec"
)

// diffOptions are the option sets the differential suite runs both
// paths under: the plain pipeline, the compaction-enabled pipeline
// (exercising the tracker-driven left shifts), a restarted search, and
// the full-recompute longest-path ablation combined with the
// incremental caches.
func diffOptions() []Options {
	return []Options{
		{Seed: 3},
		{Seed: 3, Compact: true},
		{Seed: 9, Compact: true, Restarts: 2},
		{Seed: 3, FullRecompute: true},
	}
}

// assertBothPaths runs the pipeline with and without the incremental
// core and requires byte-identical schedules, profiles, and finish
// metrics. A problem that fails on both paths identically is fine;
// diverging errors are not.
func assertBothPaths(t *testing.T, label string, p *model.Problem, opts Options) {
	t.Helper()
	naiveOpts := opts
	naiveOpts.Naive = true
	inc, incErr := MinPower(p.Clone(), opts)
	naive, naiveErr := MinPower(p.Clone(), naiveOpts)
	if (incErr == nil) != (naiveErr == nil) {
		t.Fatalf("%s: error divergence: incremental=%v naive=%v", label, incErr, naiveErr)
	}
	if incErr != nil {
		return
	}
	if !inc.Schedule.Equal(naive.Schedule) {
		t.Fatalf("%s: schedules diverge\n incremental %v\n naive       %v",
			label, inc.Schedule.Start, naive.Schedule.Start)
	}
	if !reflect.DeepEqual(inc.Profile.Segs, naive.Profile.Segs) {
		t.Fatalf("%s: profiles diverge\n incremental %v\n naive       %v",
			label, inc.Profile, naive.Profile)
	}
	if inc.EnergyCost() != naive.EnergyCost() || inc.Utilization() != naive.Utilization() {
		t.Fatalf("%s: metrics diverge: cost %v vs %v, util %v vs %v",
			label, inc.EnergyCost(), naive.EnergyCost(), inc.Utilization(), naive.Utilization())
	}
	// The per-stage entry points must agree too: MaxPower exercises
	// fixSpike in isolation (no gap filling masking a divergence).
	incMax, e1 := MaxPower(p.Clone(), opts)
	naiveMax, e2 := MaxPower(p.Clone(), naiveOpts)
	if (e1 == nil) != (e2 == nil) {
		t.Fatalf("%s: max-power error divergence: %v vs %v", label, e1, e2)
	}
	if e1 == nil && !incMax.Schedule.Equal(naiveMax.Schedule) {
		t.Fatalf("%s: max-power schedules diverge\n incremental %v\n naive       %v",
			label, incMax.Schedule.Start, naiveMax.Schedule.Start)
	}
}

// TestDifferentialGenerated runs the incremental-vs-naive comparison
// over the property-test generator's random layered problems.
func TestDifferentialGenerated(t *testing.T) {
	for seed := int64(0); seed < 35; seed++ {
		p := genProblem(seed)
		for oi, opts := range diffOptions() {
			assertBothPaths(t, fmt.Sprintf("gen seed %d opts %d", seed, oi), p, opts)
		}
	}
}

// TestDifferentialSpecCorpus replays the pipeline fuzz corpus seeds —
// the synthetic spec snippets plus every spec document in testdata —
// through both paths.
func TestDifferentialSpecCorpus(t *testing.T) {
	inputs := []string{
		"task a R 2 4\ntask b S 2 4\npmax 10\n",
		"pmax 16\npmin 14\ntask a A 3 6\ntask d A 4 10\na -> d [3,]\n",
		"task x R 1 0\nrelease x 5\ndeadline x 5\n",
		"task p H 5 7.6\ntask s M 5 4.3\np -> s [5,50]\n",
		"base 2\npmax 9\ntask a A 4 4\ntask b B 4 4\ntask c C 4 4\n",
	}
	docs, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.spec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no testdata spec documents found")
	}
	for _, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, string(data))
	}
	for i, input := range inputs {
		p, err := spec.ParseString(input)
		if err != nil {
			t.Fatalf("corpus input %d does not parse: %v", i, err)
		}
		for oi, opts := range diffOptions() {
			assertBothPaths(t, fmt.Sprintf("spec %d opts %d", i, oi), p, opts)
		}
	}
}

// TestDifferentialRover runs both paths over the paper's rover
// iteration graphs (all three Table 2 cases, cold and warm).
func TestDifferentialRover(t *testing.T) {
	for _, c := range []rover.Case{rover.Best, rover.Typical, rover.Worst} {
		for _, k := range []rover.IterationKind{rover.Cold, rover.ColdPreheat, rover.Warm} {
			p := rover.BuildIteration(c, k)
			for oi, opts := range diffOptions() {
				assertBothPaths(t, fmt.Sprintf("rover %v/%v opts %d", c, k, oi), p, opts)
			}
		}
	}
}

// TestConcurrentStatesShareNoCache runs many pipelines over the same
// problem value concurrently. Each run owns a private state (tracker,
// slack cache, working graph); under -race this fails if any cached
// slack or profile segment were shared across states. All runs must
// also agree exactly, since they are seeded identically.
func TestConcurrentStatesShareNoCache(t *testing.T) {
	p := genProblem(17)
	ref, err := MinPower(p.Clone(), Options{Seed: 5, Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*Result, 8)
	errs := make([]error, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = MinPower(p, Options{Seed: 5, Compact: true})
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !r.Schedule.Equal(ref.Schedule) {
			t.Fatalf("run %d diverged: %v vs %v", i, r.Schedule.Start, ref.Schedule.Start)
		}
	}
}
