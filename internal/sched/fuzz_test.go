package sched

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/spec"
	"repro/internal/verify"
)

// FuzzPipeline feeds arbitrary spec text through the parser and, when
// it yields a valid problem, through the full scheduling pipeline. The
// pipeline must never panic, and everything it returns must pass the
// independent oracle. Inputs that are unparsable, oversized, or
// infeasible are fine; invalid *output* is not.
func FuzzPipeline(f *testing.F) {
	seeds := []string{
		"task a R 2 4\ntask b S 2 4\npmax 10\n",
		"pmax 16\npmin 14\ntask a A 3 6\ntask d A 4 10\na -> d [3,]\n",
		"task x R 1 0\nrelease x 5\ndeadline x 5\n",
		"task p H 5 7.6\ntask s M 5 4.3\np -> s [5,50]\n",
		"base 2\npmax 9\ntask a A 4 4\ntask b B 4 4\ntask c C 4 4\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Seed the corpus with the repository's real spec documents (the
	// nine-task example, the satellite pass, ...): realistic structure
	// the synthetic seeds above don't reach.
	docs, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.spec"))
	if err != nil {
		f.Fatal(err)
	}
	if len(docs) == 0 {
		f.Fatal("no testdata spec documents found for the corpus")
	}
	for _, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 2048 {
			return
		}
		p, err := spec.ParseString(input)
		if err != nil {
			return
		}
		// Keep the search spaces small so the fuzzer explores inputs,
		// not scheduler effort.
		if len(p.Tasks) > 12 {
			return
		}
		total := 0
		for _, task := range p.Tasks {
			if task.Delay > 100 {
				return
			}
			total += task.Delay
		}
		for _, c := range p.Constraints {
			if c.Min > 500 || c.Min < -500 || (c.HasMax && c.Max > 500) {
				return
			}
		}
		for _, task := range p.Tasks {
			if len(task.Levels) > 4 {
				return
			}
		}
		if len(p.Machines) > 4 {
			return
		}
		opts := Options{MaxBacktracks: 300, MaxSpikeRounds: 500, MaxScans: 2}
		r, err := Run(p, opts)
		if err != nil {
			return // infeasibility and budget exhaustion are legal outcomes
		}
		// CheckAssigned with a nil assignment is exactly Check, so one
		// oracle call covers degenerate and heterogeneous inputs alike.
		if rep := verify.CheckAssigned(p, r.Schedule, r.Assignment); !rep.OK() {
			t.Fatalf("pipeline emitted an invalid schedule for:\n%s\n%v", input, rep.Err())
		}
		// The incremental core (profile tracker + slack cache) is an
		// engineering optimization: the naive path must emit the exact
		// same schedule.
		naiveOpts := opts
		naiveOpts.Naive = true
		nr, err := Run(p.Clone(), naiveOpts)
		if err != nil {
			t.Fatalf("naive path failed where incremental succeeded for:\n%s\n%v", input, err)
		}
		if !r.Schedule.Equal(nr.Schedule) {
			t.Fatalf("incremental and naive schedules diverge for:\n%s\nincremental %v\nnaive %v",
				input, r.Schedule.Start, nr.Schedule.Start)
		}
		if !reflect.DeepEqual(r.Assignment, nr.Assignment) {
			t.Fatalf("incremental and naive assignments diverge for:\n%s\nincremental %v\nnaive %v",
				input, r.Assignment, nr.Assignment)
		}
	})
}
