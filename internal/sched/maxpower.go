package sched

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/schedule"
)

// maxPower implements the max-power scheduling algorithm of paper
// Fig. 4. Starting from a time-valid schedule, it scans the power
// profile for the first power spike, delays active tasks at the spike
// (largest slack first) until the profile drops under Pmax, and
// repeats until no spike remains. When a zero-slack task must be
// delayed (case 2 of the paper's heuristics) the remaining simultaneous
// tasks are locked at their start times so the rescheduling pass cannot
// disturb them; if a lock or delay produces an infeasible graph it is
// rolled back and another choice is tried.
//
// A Pmax of 0 means "no power budget": the time-valid schedule is
// returned unchanged.
func (st *state) maxPower() (schedule.Schedule, error) {
	sigma, err := st.timing()
	if err != nil {
		return schedule.Schedule{}, err
	}
	pmax := st.c.Prob.Pmax
	if pmax == 0 {
		return sigma, nil
	}
	st.syncProfile(sigma)

	for round := 0; ; round++ {
		if err := st.pollCancel(); err != nil {
			return schedule.Schedule{}, err
		}
		if round > st.opts.MaxSpikeRounds {
			return schedule.Schedule{}, fmt.Errorf("sched: spike elimination exceeded %d rounds", st.opts.MaxSpikeRounds)
		}
		spikes := st.prof(sigma).Spikes(pmax)
		if len(spikes) == 0 {
			return sigma, nil
		}
		st.st.SpikeRounds++
		sigma, err = st.fixSpike(sigma, spikes[0].T0)
		if err != nil {
			return schedule.Schedule{}, err
		}
	}
}

// fixSpike removes the power spike at time t by delaying simultaneous
// tasks. Tasks are chosen by descending slack; a chosen task is delayed
// by at most its own execution delay (the paper's delay-distance upper
// bound), further bounded by its slack when the slack is positive.
// Delays are realized as anchor edges followed by a longest-path
// recomputation, so successors shift consistently; an infeasible delay
// is rolled back and the task is skipped. The loop re-selects among the
// (re-sorted) active tasks until P(t) <= Pmax, so a task with a capped
// delay distance can be delayed again in a later step.
func (st *state) fixSpike(sigma schedule.Schedule, t model.Time) (schedule.Schedule, error) {
	pmax := st.c.Prob.Pmax
	rescheduled := false
	var lockCandidates []int

	skipped := make(map[int]bool) // tasks whose delay proved infeasible at this spike
	for iter := 0; st.prof(sigma).At(t) > pmax; iter++ {
		if err := st.pollCancel(); err != nil {
			return schedule.Schedule{}, err
		}
		if iter > st.opts.MaxSpikeRounds {
			return schedule.Schedule{}, fmt.Errorf("sched: spike at t=%d did not converge after %d delays", t, iter)
		}
		act := st.activeBySlack(sigma, t)
		// Pick the first eligible task: largest slack, not yet proven
		// infeasible to delay here.
		v := -1
		var vSlack model.Time
		for _, cand := range act {
			if !skipped[cand.v] {
				v, vSlack = cand.v, cand.slack
				break
			}
		}
		if v < 0 {
			return schedule.Schedule{}, fmt.Errorf("%w: cannot remove power spike at t=%d (%.4g W > Pmax %.4g W)",
				ErrInfeasible, t, st.prof(sigma).At(t), pmax)
		}

		// Delay distance heuristic: aim past the end of the profile
		// segment causing the spike (keeping starts aligned to existing
		// event boundaries), capped by d(v) (the paper's upper bound);
		// when v has positive slack, also capped by the slack so the
		// schedule stays time-valid without rescheduling.
		need := st.spikeEnd(sigma, t) - sigma.Start[v]
		dd := st.c.Prob.Tasks[v].Delay
		if dd > need {
			dd = need
		}
		if vSlack > 0 && dd > vSlack {
			dd = vSlack
		}
		if vSlack <= 0 {
			rescheduled = true
		}
		if dd < 1 {
			dd = 1
		}

		newSigma, _, ok := st.delay(sigma, v, sigma.Start[v]+dd)
		if !ok {
			skipped[v] = true
			st.st.Backtracks++
			continue
		}
		sigma = newSigma
		// Remaining active tasks at t (after the successful delay) are
		// the lock candidates of the paper's case (2).
		lockCandidates = lockCandidates[:0]
		for _, cand := range st.activeBySlack(sigma, t) {
			lockCandidates = append(lockCandidates, cand.v)
		}
	}

	// Lock the start times of the tasks that stayed at the spike time,
	// so the subsequent rescheduling cannot push them back into a
	// spike. Locks that would make the graph infeasible are undone;
	// they are a heuristic, not a requirement.
	if rescheduled && !st.opts.DisableLocks {
		for _, v := range lockCandidates {
			cp := st.g.Mark()
			st.lock(v, sigma.Start[v])
			if !st.g.Feasible(st.c.Anchor) {
				st.g.Rollback(cp)
				st.dirtySlack(v) // v lost the just-added outgoing lock edge
				st.st.Backtracks++
			}
		}
	}
	return sigma, nil
}

// spikeEnd returns the end of the maximal over-budget interval
// containing t (falling back to t+1 when the profile no longer spikes
// at t).
func (st *state) spikeEnd(sigma schedule.Schedule, t model.Time) model.Time {
	for _, iv := range st.prof(sigma).Spikes(st.c.Prob.Pmax) {
		if iv.T0 <= t && t < iv.T1 {
			return iv.T1
		}
	}
	return t + 1
}

type slackedTask struct {
	v     int
	slack model.Time
}

// activeBySlack returns the tasks active at t ordered by decreasing
// slack (the paper's EXTRACT MAX order). Ties are broken by decreasing
// power — moving the biggest consumer out of the spike clears it with
// the fewest delays — then by task index for determinism.
func (st *state) activeBySlack(sigma schedule.Schedule, t model.Time) []slackedTask {
	var out []slackedTask
	for _, v := range sigma.ActiveAt(st.c.Prob.Tasks, t) {
		out = append(out, slackedTask{v: v, slack: st.slackOf(sigma, v)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].slack != out[j].slack {
			return out[i].slack > out[j].slack
		}
		pi, pj := st.c.Prob.Tasks[out[i].v].Power, st.c.Prob.Tasks[out[j].v].Power
		if pi != pj {
			return pi > pj
		}
		return out[i].v < out[j].v
	})
	return out
}
