package sched

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/schedule"
)

// maxPower implements the max-power scheduling algorithm of paper
// Fig. 4. Starting from a time-valid schedule, it scans the power
// profile for the first power spike, delays active tasks at the spike
// (largest slack first) until the profile drops under Pmax, and
// repeats until no spike remains. When a zero-slack task must be
// delayed (case 2 of the paper's heuristics) the remaining simultaneous
// tasks are locked at their start times so the rescheduling pass cannot
// disturb them; if a lock or delay produces an infeasible graph it is
// rolled back and another choice is tried.
//
// A Pmax of 0 means "no power budget": the time-valid schedule is
// returned unchanged.
func (st *state) maxPower() (schedule.Schedule, error) {
	sigma, err := st.timing()
	if err != nil {
		return schedule.Schedule{}, err
	}
	// The timing finish lower-bounds this restart's final finish time
	// (every later stage only delays tasks), so a restart the portfolio
	// incumbent strictly dominates is abandoned here, before the
	// expensive power stages.
	if st.pruned(sigma) {
		return schedule.Schedule{}, errPruned
	}
	pmax := st.c.Prob.Pmax
	if pmax == 0 {
		return sigma, nil
	}
	st.syncProfile(sigma)

	for round := 0; ; round++ {
		if err := st.pollCancel(); err != nil {
			return schedule.Schedule{}, err
		}
		if round > st.opts.MaxSpikeRounds {
			return schedule.Schedule{}, fmt.Errorf("sched: spike elimination exceeded %d rounds", st.opts.MaxSpikeRounds)
		}
		t, spiked := st.firstSpike(sigma, pmax)
		if !spiked {
			return sigma, nil
		}
		st.st.SpikeRounds++
		if err := st.fixSpike(sigma, t); err != nil {
			return schedule.Schedule{}, err
		}
	}
}

// firstSpike returns the start of the earliest over-budget interval.
// Equivalent to Spikes(pmax)[0].T0 without materializing the interval
// list: profile segments are contiguous and time-ordered, so the first
// over-budget segment starts the first spike. The incremental path
// answers from the tracker's segment index in O(log m); the naive path
// walks the rebuilt profile.
func (st *state) firstSpike(sigma schedule.Schedule, pmax float64) (model.Time, bool) {
	if st.opts.Naive {
		for _, s := range st.prof(sigma).Segs {
			if s.P > pmax {
				return s.T0, true
			}
		}
		return 0, false
	}
	return st.tr.FirstAbove(pmax)
}

// fixSpike removes the power spike at time t by delaying simultaneous
// tasks, mutating the working schedule in place. Tasks are chosen by
// descending slack; a chosen task is delayed by at most its own
// execution delay (the paper's delay-distance upper bound), further
// bounded by its slack when the slack is positive. Delays are realized
// as anchor edges followed by an incremental longest-path update, so
// successors shift consistently; an infeasible delay is rolled back and
// the task is skipped. The loop re-selects among the active tasks until
// P(t) <= Pmax, so a task with a capped delay distance can be delayed
// again in a later step. Each selection is a single max-scan over the
// task set under the (slack desc, power desc, index asc) order — no
// sorted active list is materialized per iteration.
func (st *state) fixSpike(sigma schedule.Schedule, t model.Time) error {
	pmax := st.c.Prob.Pmax
	n := st.c.NumTasks()
	tasks := st.tasks
	rescheduled := false

	// Tasks whose delay proved infeasible at this spike, marked in the
	// reusable epoch-stamped set.
	st.skipEpoch++
	skipped := st.skipGen
	for iter := 0; st.prof(sigma).At(t) > pmax; iter++ {
		if err := st.pollCancel(); err != nil {
			return err
		}
		if iter > st.opts.MaxSpikeRounds {
			return fmt.Errorf("sched: spike at t=%d did not converge after %d delays", t, iter)
		}
		// Pick the max-priority eligible task: active at t, not yet
		// proven infeasible to delay here, largest slack first (the
		// paper's EXTRACT MAX), ties by descending power then index.
		v := -1
		var vSlack model.Time
		for u := 0; u < n; u++ {
			if skipped[u] == st.skipEpoch {
				continue
			}
			if !(sigma.Start[u] <= t && t < sigma.Start[u]+tasks[u].Delay) {
				continue
			}
			sl := st.slackOf(sigma, u)
			if v < 0 || st.slackedBefore(slackedTask{v: u, slack: sl}, slackedTask{v: v, slack: vSlack}) {
				v, vSlack = u, sl
			}
		}
		if v < 0 {
			return fmt.Errorf("%w: cannot remove power spike at t=%d (%.4g W > Pmax %.4g W)",
				ErrInfeasible, t, st.prof(sigma).At(t), pmax)
		}

		// Delay distance heuristic: aim past the end of the profile
		// segment causing the spike (keeping starts aligned to existing
		// event boundaries), capped by d(v) (the paper's upper bound);
		// when v has positive slack, also capped by the slack so the
		// schedule stays time-valid without rescheduling.
		need := st.spikeEnd(sigma, t) - sigma.Start[v]
		dd := tasks[v].Delay
		if dd > need {
			dd = need
		}
		if vSlack > 0 && dd > vSlack {
			dd = vSlack
		}
		if vSlack <= 0 {
			rescheduled = true
		}
		if dd < 1 {
			dd = 1
		}

		if _, ok := st.delay(v, sigma.Start[v]+dd); !ok {
			skipped[v] = st.skipEpoch
			st.st.Backtracks++
		}
	}

	// Lock the start times of the tasks that stayed at the spike time,
	// so the subsequent rescheduling cannot push them back into a
	// spike. The spike loop above exits immediately after the delay
	// that cleared the spike (failed delays change nothing), so the
	// active set here is exactly the paper's case (2) lock-candidate
	// set captured after the last successful delay. Locks that would
	// make the graph infeasible are undone; they are a heuristic, not a
	// requirement.
	if rescheduled && !st.opts.DisableLocks {
		for _, cand := range st.activeBySlack(sigma, t) {
			cp := st.g.Mark()
			st.lock(cand.v, sigma.Start[cand.v])
			if !st.g.LongestFromInto(st.feasBuf, st.c.Anchor) {
				st.g.Rollback(cp)
				st.dirtySlack(cand.v) // v lost the just-added outgoing lock edge
				st.st.Backtracks++
			}
		}
	}
	return nil
}

// spikeEnd returns the end of the maximal over-budget interval
// containing t (falling back to t+1 when the profile no longer spikes
// at t). The incremental path answers from the tracker's segment index
// in O(log m); the naive path walks the contiguous segments directly,
// merging adjacent over-budget runs exactly the way Spikes does,
// without materializing the interval list.
func (st *state) spikeEnd(sigma schedule.Schedule, t model.Time) model.Time {
	pmax := st.c.Prob.Pmax
	if !st.opts.Naive {
		return st.tr.RunEndAbove(t, pmax)
	}
	var t0, t1 model.Time
	have := false
	for _, s := range st.prof(sigma).Segs {
		if s.P <= pmax {
			continue
		}
		if have && t1 == s.T0 {
			t1 = s.T1
			continue
		}
		if have && t0 <= t && t < t1 {
			return t1
		}
		t0, t1 = s.T0, s.T1
		have = true
	}
	if have && t0 <= t && t < t1 {
		return t1
	}
	return t + 1
}

type slackedTask struct {
	v     int
	slack model.Time
}

// activeBySlack returns the tasks active at t ordered by decreasing
// slack (the paper's EXTRACT MAX order). Ties are broken by decreasing
// power — moving the biggest consumer out of the spike clears it with
// the fewest delays — then by task index for determinism. The result
// lives in a state-owned buffer, sorted by insertion (active sets are
// small and index-ordered on arrival, and the total-order key makes the
// outcome identical to any comparison sort).
func (st *state) activeBySlack(sigma schedule.Schedule, t model.Time) []slackedTask {
	out := st.active[:0]
	tasks := st.tasks
	for v := range tasks {
		if sigma.Start[v] <= t && t < sigma.Start[v]+tasks[v].Delay {
			out = append(out, slackedTask{v: v, slack: st.slackOf(sigma, v)})
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && st.slackedBefore(out[j], out[j-1]); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	st.active = out
	return out
}

// slackedBefore is the strict (slack desc, power desc, index asc)
// total order shared by activeBySlack and fixSpike's max-scan.
func (st *state) slackedBefore(a, b slackedTask) bool {
	if a.slack != b.slack {
		return a.slack > b.slack
	}
	pa, pb := st.tasks[a.v].Power, st.tasks[b.v].Power
	if pa != pb {
		return pa > pb
	}
	return a.v < b.v
}
