package sched

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

func mustTiming(t *testing.T, p *model.Problem) *Result {
	t.Helper()
	r, err := Timing(p, Options{})
	if err != nil {
		t.Fatalf("Timing(%s): %v", p.Name, err)
	}
	checkTimeValid(t, r)
	return r
}

func mustMaxPower(t *testing.T, p *model.Problem) *Result {
	t.Helper()
	r, err := MaxPower(p, Options{})
	if err != nil {
		t.Fatalf("MaxPower(%s): %v", p.Name, err)
	}
	checkTimeValid(t, r)
	if !r.Profile.Valid(p.Pmax) {
		t.Fatalf("MaxPower(%s): spikes remain: %v (profile %v)", p.Name, r.Profile.Spikes(p.Pmax), r.Profile)
	}
	return r
}

func mustMinPower(t *testing.T, p *model.Problem) *Result {
	t.Helper()
	r, err := MinPower(p, Options{})
	if err != nil {
		t.Fatalf("MinPower(%s): %v", p.Name, err)
	}
	checkTimeValid(t, r)
	if p.Pmax > 0 && !r.Profile.Valid(p.Pmax) {
		t.Fatalf("MinPower(%s): spikes remain: %v", p.Name, r.Profile.Spikes(p.Pmax))
	}
	return r
}

func checkTimeValid(t *testing.T, r *Result) {
	t.Helper()
	if err := schedule.CheckTimeValid(r.Graph, r.Compiled, r.Schedule); err != nil {
		t.Fatalf("schedule not time-valid: %v", err)
	}
}

func TestTimingSerializesSharedResource(t *testing.T) {
	p := &model.Problem{
		Name: "two-on-one",
		Tasks: []model.Task{
			{Name: "a", Resource: "R", Delay: 3, Power: 1},
			{Name: "b", Resource: "R", Delay: 2, Power: 1},
		},
	}
	r := mustTiming(t, p)
	sa, sb := r.Schedule.Start[0], r.Schedule.Start[1]
	if sa == sb {
		t.Fatalf("same-resource tasks start together: a=%d b=%d", sa, sb)
	}
	if err := schedule.CheckSerialized(p.Tasks, r.Schedule); err != nil {
		t.Fatal(err)
	}
	if got := r.Finish(); got != 5 {
		t.Fatalf("finish = %d, want 5 (back-to-back)", got)
	}
}

func TestTimingHonorsPrecedenceChain(t *testing.T) {
	p := &model.Problem{
		Name: "chain",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 2, Power: 1},
			{Name: "b", Resource: "B", Delay: 3, Power: 1},
			{Name: "c", Resource: "C", Delay: 1, Power: 1},
		},
	}
	if err := p.Precede("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := p.Precede("b", "c"); err != nil {
		t.Fatal(err)
	}
	r := mustTiming(t, p)
	want := []model.Time{0, 2, 5}
	for i, w := range want {
		if r.Schedule.Start[i] != w {
			t.Errorf("start[%s] = %d, want %d", p.Tasks[i].Name, r.Schedule.Start[i], w)
		}
	}
}

func TestTimingInfeasibleWindow(t *testing.T) {
	p := &model.Problem{
		Name: "infeasible",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 5, Power: 1},
			{Name: "b", Resource: "B", Delay: 5, Power: 1},
		},
	}
	p.MinSep("a", "b", 10)
	p.Window("a", "b", 0, 5) // contradicts the min separation of 10
	_, err := Timing(p, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestTimingBacktracksOverSerializationOrders(t *testing.T) {
	// b must run in [0,2] (deadline via window from anchor); a shares
	// b's resource and is longer. Visiting a first serializes b after a
	// (start >= 4), violating b's deadline: the search must backtrack
	// and order b before a.
	p := &model.Problem{
		Name: "backtrack",
		Tasks: []model.Task{
			{Name: "a", Resource: "R", Delay: 4, Power: 1},
			{Name: "b", Resource: "R", Delay: 2, Power: 1},
		},
	}
	p.Deadline("b", 0) // b starts at exactly time 0
	r := mustTiming(t, p)
	if r.Schedule.Start[1] != 0 {
		t.Fatalf("b starts at %d, want 0", r.Schedule.Start[1])
	}
	if r.Schedule.Start[0] < 2 {
		t.Fatalf("a starts at %d, want >= 2 (after b)", r.Schedule.Start[0])
	}
}

func TestMaxPowerSerializesForBudget(t *testing.T) {
	// Two independent 5 W tasks on different resources; Pmax 8 W forces
	// them apart even though timing alone would run them in parallel.
	p := &model.Problem{
		Name: "budget",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 4, Power: 5},
			{Name: "b", Resource: "B", Delay: 4, Power: 5},
		},
		Pmax: 8,
	}
	rt := mustTiming(t, p)
	if rt.Profile.Peak() <= 8 {
		t.Fatalf("test premise broken: timing-only peak %.3g <= Pmax", rt.Profile.Peak())
	}
	r := mustMaxPower(t, p)
	if got := r.Profile.Peak(); got > 8 {
		t.Fatalf("peak = %g, want <= 8", got)
	}
	if got := r.Finish(); got != 8 {
		t.Fatalf("finish = %d, want 8 (serialized)", got)
	}
}

func TestMaxPowerRespectsWindows(t *testing.T) {
	// c must start within [2,6] after a; a and c each 6 W with Pmax
	// 10 W, so they cannot overlap; a is 3 long. The only valid layout
	// delays c to start in [3,6].
	p := &model.Problem{
		Name: "window-budget",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 3, Power: 6},
			{Name: "c", Resource: "C", Delay: 3, Power: 6},
		},
		Pmax: 10,
	}
	p.Window("a", "c", 2, 6)
	r := mustMaxPower(t, p)
	sc := r.Schedule.Start[1]
	if sc < 3 || sc > 6 {
		t.Fatalf("c starts at %d, want within [3,6]", sc)
	}
}

func TestMinPowerFillsGap(t *testing.T) {
	// a runs [0,4); b is free to run any time (big window) and at ASAP
	// runs in parallel, leaving [4,8) empty. With Pmin = 5 the min-power
	// scheduler should delay b into the empty region, raising
	// utilization of the free power.
	p := &model.Problem{
		Name: "gapfill",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 4, Power: 5},
			{Name: "b", Resource: "B", Delay: 4, Power: 5},
			{Name: "z", Resource: "Z", Delay: 8, Power: 0.5},
		},
		Pmax: 12,
		Pmin: 5,
	}
	r := mustMinPower(t, p)
	if got := r.Finish(); got != 8 {
		t.Fatalf("finish = %d, want 8", got)
	}
	util := r.Utilization()
	// Parallel a+b: profile 10.5 for [0,4), 0.5 for [4,8): util = (5*4+0.5*4)/40 = 0.55.
	// Spread: 5.5 everywhere: util = 1.
	if util < 0.999 {
		t.Fatalf("utilization = %.3f, want 1.0 (b delayed into the gap); profile %v", util, r.Profile)
	}
}

func TestMinPowerKeepsFinishTime(t *testing.T) {
	p := &model.Problem{
		Name: "keep-tau",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 4, Power: 6},
			{Name: "b", Resource: "B", Delay: 2, Power: 6},
		},
		Pmax: 20,
		Pmin: 8,
	}
	rm := mustMaxPower(t, p)
	tau := rm.Finish()
	r := mustMinPower(t, p)
	if got := r.Finish(); got > tau {
		t.Fatalf("min-power extended finish from %d to %d", tau, got)
	}
}

func TestPipelineMonotoneUtilization(t *testing.T) {
	p := gapProblem()
	rmax := mustMaxPower(t, p)
	rmin := mustMinPower(t, p)
	if rmin.Utilization()+utilEps < rmax.Utilization() {
		t.Fatalf("min-power decreased utilization: %.4f -> %.4f",
			rmax.Utilization(), rmin.Utilization())
	}
	if rmin.EnergyCost() > rmax.EnergyCost()+1e-9 {
		t.Fatalf("min-power increased energy cost: %.4f -> %.4f",
			rmax.EnergyCost(), rmin.EnergyCost())
	}
}

// gapProblem is a small instance with deliberate idle power regions.
func gapProblem() *model.Problem {
	p := &model.Problem{
		Name: "gappy",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 3, Power: 6},
			{Name: "b", Resource: "B", Delay: 3, Power: 6},
			{Name: "c", Resource: "C", Delay: 3, Power: 6},
			{Name: "long", Resource: "L", Delay: 12, Power: 2},
		},
		Pmax:      14,
		Pmin:      8,
		BasePower: 1,
	}
	return p
}

func TestZeroPmaxSkipsSpikeElimination(t *testing.T) {
	p := &model.Problem{
		Name: "nopmax",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 2, Power: 50},
			{Name: "b", Resource: "B", Delay: 2, Power: 50},
		},
	}
	r, err := MaxPower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Profile.Peak() != 100 {
		t.Fatalf("peak = %g, want 100 (both parallel, no budget)", r.Profile.Peak())
	}
}

func TestResultMetricsAgreeWithProfile(t *testing.T) {
	p := gapProblem()
	r := mustMinPower(t, p)
	prof := power.Build(p.Tasks, r.Schedule, p.BasePower)
	if r.Profile.String() != prof.String() {
		t.Fatalf("result profile mismatch:\n got %v\nwant %v", r.Profile, prof)
	}
	if r.EnergyCost() != prof.EnergyCost(p.Pmin) {
		t.Fatal("EnergyCost accessor disagrees with profile")
	}
}
