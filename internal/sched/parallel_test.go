package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// equalResults fails the test unless a and b are byte-identical
// portfolio outcomes: same schedule, same profile segments, same stats,
// same derived metrics.
func equalResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !a.Schedule.Equal(b.Schedule) {
		t.Fatalf("%s: schedules differ:\n  a=%v\n  b=%v", label, a.Schedule.Start, b.Schedule.Start)
	}
	if !reflect.DeepEqual(a.Profile.Segs, b.Profile.Segs) {
		t.Fatalf("%s: profiles differ:\n  a=%v\n  b=%v", label, a.Profile.Segs, b.Profile.Segs)
	}
	if a.Stats != b.Stats {
		t.Fatalf("%s: stats differ: a=%+v b=%+v", label, a.Stats, b.Stats)
	}
	if a.Finish() != b.Finish() || a.EnergyCost() != b.EnergyCost() {
		t.Fatalf("%s: metrics differ: a=(%d, %g) b=(%d, %g)",
			label, a.Finish(), a.EnergyCost(), b.Finish(), b.EnergyCost())
	}
}

// TestParallelRestartsMatchSequential is the tentpole's differential
// proof: for every corpus problem, restart count, and worker count, the
// parallel portfolio returns exactly the sequential (Workers=1) result
// — schedule, profile, stats — through every pipeline stage. This is
// what lets Workers stay out of the semantic contract (though it still
// enters the cache key, conservatively).
func TestParallelRestartsMatchSequential(t *testing.T) {
	stages := []struct {
		name string
		run  func(p *model.Problem, o Options) (*Result, error)
	}{
		{"timing", Timing},
		{"maxpower", MaxPower},
		{"minpower", MinPower},
	}
	seeds := []int64{0, 1, 2, 3, 5, 8, 13, 21, 29, 34}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		p := genProblem(seed)
		for _, restarts := range []int{1, 4, 32} {
			opts := Options{Seed: seed, Restarts: restarts, Compact: restarts%2 == 0}
			for _, stg := range stages {
				opts.Workers = 1
				want, wantErr := stg.run(p, opts)
				for _, workers := range []int{2, 8} {
					opts.Workers = workers
					got, gotErr := stg.run(p, opts)
					label := labelFor(seed, restarts, workers, stg.name)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s: error mismatch: sequential=%v parallel=%v", label, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					equalResults(t, label, got, want)
				}
			}
		}
	}
}

func labelFor(seed int64, restarts, workers int, stage string) string {
	return fmt.Sprintf("%s/seed=%d/restarts=%d/workers=%d", stage, seed, restarts, workers)
}

// TestWorkersDefaultAndOverflow: Workers<=0 resolves to GOMAXPROCS and
// Workers>Restarts is capped, both yielding the sequential result.
func TestWorkersDefaultAndOverflow(t *testing.T) {
	p := genProblem(7)
	want, err := MinPower(p, Options{Seed: 7, Restarts: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, -3, 64} {
		got, err := MinPower(p, Options{Seed: 7, Restarts: 4, Workers: workers})
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		equalResults(t, fmt.Sprintf("workers=%d", workers), got, want)
	}
}

// TestParallelCancellationHammer drives parallel portfolios under
// random mid-flight cancellation (run with -race): every call either
// returns the exact deterministic result or a context error with no
// result — never a partial portfolio.
func TestParallelCancellationHammer(t *testing.T) {
	p := genProblem(11)
	opts := Options{Seed: 11, Restarts: 32, Workers: 8, Compact: true}
	want, err := MinPower(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	iters := 20
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for k := 0; k < iters; k++ {
				ctx, cancel := context.WithCancel(context.Background())
				delay := time.Duration(rng.Intn(300)) * time.Microsecond
				timer := time.AfterFunc(delay, cancel)
				res, err := MinPowerCtx(ctx, p, opts)
				timer.Stop()
				cancel()
				switch {
				case err == nil:
					if !res.Schedule.Equal(want.Schedule) || !reflect.DeepEqual(res.Profile.Segs, want.Profile.Segs) {
						errCh <- errors.New("completed run diverged from the deterministic result")
						return
					}
				case errors.Is(err, context.Canceled):
					if res != nil {
						errCh <- errors.New("canceled run returned a partial result")
						return
					}
				default:
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
