package sched

import (
	"fmt"
	"sort"

	"repro/internal/schedule"
)

// timing implements the time-constrained scheduling algorithm of paper
// Fig. 3. It traverses the constraint graph topologically, visiting one
// candidate task at a time; visiting a candidate c serializes every
// not-yet-visited task sharing c's resource after c (edge c -> u with
// weight d(c)). If the added edges create a positive cycle the choice
// is undone and another topological ordering is attempted, so the
// search finds a time-valid schedule whenever one exists (within the
// MaxBacktracks budget). Start times are the longest-path distances
// from the anchor over the final graph.
//
// The search maintains the longest-path solution incrementally: each
// serialization edge is applied with graph.AddEdgeRelax, which both
// updates only the shifted cone of successors and detects the positive
// cycle that would make the choice infeasible, so a visit step costs
// O(cone) instead of two full single-source recomputations. A rejected
// step restores the saved distance vector alongside the graph rollback.
// Options.FullRecompute falls back to whole-graph recomputation per
// step (for ablation; the distances, and hence the search order and
// result, are identical).
func (st *state) timing() (schedule.Schedule, error) {
	n := st.c.NumTasks()
	dist, ok := st.g.LongestFrom(st.c.Anchor)
	if !ok {
		return schedule.Schedule{}, fmt.Errorf("%w: timing constraints contain a positive cycle", ErrInfeasible)
	}

	visited := make([]bool, n)
	budget := st.opts.MaxBacktracks

	var visit func(count int) bool
	visit = func(count int) bool {
		if count == n {
			return true
		}
		for _, c := range st.candidates(visited, dist) {
			// Cooperative cancellation: once the poll latches an error
			// every recursion level bails on its next candidate, so the
			// whole search unwinds within one check interval.
			if st.pollCancel() != nil {
				return false
			}
			cp := st.g.Mark()
			res := st.c.Prob.Tasks[c].Resource
			d := st.c.Prob.Tasks[c].Delay
			feasible := true
			var saved []int
			if st.opts.FullRecompute {
				// Serialize every untraversed same-resource task after
				// c, then recompute from scratch.
				for u := 0; u < n; u++ {
					if u != c && !visited[u] && st.c.Prob.Tasks[u].Resource == res {
						st.g.AddEdge(c, u, d)
					}
				}
				if nd, ok := st.g.LongestFrom(st.c.Anchor); ok {
					saved, dist = dist, nd
				} else {
					feasible = false
				}
			} else {
				saved = append([]int(nil), dist...)
				for u := 0; u < n; u++ {
					if u != c && !visited[u] && st.c.Prob.Tasks[u].Resource == res {
						if !st.g.AddEdgeRelax(dist, c, u, d) {
							feasible = false
							break
						}
					}
				}
			}
			if feasible {
				visited[c] = true
				if visit(count + 1) {
					return true
				}
				visited[c] = false
			}
			st.g.Rollback(cp)
			if saved != nil {
				if st.opts.FullRecompute {
					dist = saved
				} else {
					copy(dist, saved)
				}
			}
			st.st.Backtracks++
			if st.st.Backtracks > budget {
				return false
			}
		}
		return false
	}

	if !visit(0) {
		if st.ctxErr != nil {
			return schedule.Schedule{}, st.ctxErr
		}
		if st.st.Backtracks > budget {
			return schedule.Schedule{}, fmt.Errorf("sched: timing search exceeded %d backtracks", budget)
		}
		return schedule.Schedule{}, fmt.Errorf("%w: no serialization order yields a time-valid schedule", ErrInfeasible)
	}

	final, ok := st.g.LongestFrom(st.c.Anchor)
	if !ok {
		// Unreachable: every visited step checked feasibility.
		return schedule.Schedule{}, fmt.Errorf("%w: final graph has a positive cycle", ErrInfeasible)
	}
	st.timingMark = st.g.Mark()
	st.structEdges = st.g.Edges()
	return schedule.FromDist(final, st.c.NumTasks()), nil
}

// candidates returns the unvisited tasks in the order the search should
// try them: earliest current ASAP start first (the task the paper's
// traversal would reach next), ties broken by the state's priority
// permutation (the task index on the first restart, a seeded shuffle on
// later restarts). Every unvisited task is a legal candidate; ordering
// only steers the search toward reasonable schedules first. dist is the
// incrementally maintained longest-path solution of the working graph.
func (st *state) candidates(visited []bool, dist []int) []int {
	var cand []int
	for v := 0; v < st.c.NumTasks(); v++ {
		if !visited[v] {
			cand = append(cand, v)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if dist[cand[i]] != dist[cand[j]] {
			return dist[cand[i]] < dist[cand[j]]
		}
		return st.prio[cand[i]] < st.prio[cand[j]]
	})
	return cand
}
