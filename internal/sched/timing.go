package sched

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/schedule"
)

// timing implements the time-constrained scheduling algorithm of paper
// Fig. 3 (see timingSearch for the search itself). When the restart
// portfolio has published an incumbent, the search first runs with
// speculative subtree pruning: choices whose visit-order-independent
// finish lower bound already exceeds the incumbent's finish are skipped
// outright (DESIGN.md section 13). The speculation never leaks into
// observable results:
//
//   - If the pruned search exhausts its SEARCH SPACE, every leaf hidden
//     by a skip finishes strictly beyond the incumbent, so the whole
//     restart is a provable reduction loser and reports errPruned (a
//     real failure would have been a loser too: the reference search's
//     outcome either fails identically or finishes beyond the bound
//     that was live when its subtree was skipped).
//   - The pruned search runs under a small speculation budget
//     (specBacktracks), not the full MaxBacktracks: when the reference
//     search's first solution lies inside a skipped subtree, the pruned
//     search keeps going into space the reference never visits and
//     would otherwise burn the entire budget before concluding anything
//     (measured as a ~500x portfolio slowdown). Exhausting the clipped
//     budget proves nothing about the reference — which may well
//     succeed within its larger budget — so that outcome is
//     inconclusive (gaveUp) and falls through to the deterministic
//     unpruned rerun below. The speculation is profitable exactly when
//     it reaches a verdict within the small budget; when it can't, the
//     only cost is the wasted speculation.
//   - If it succeeds with a finish still beyond the incumbent, the
//     regular restart-level pruning in maxPower/runTo discards it.
//   - Otherwise the restart might win the reduction, so the search is
//     rerun from scratch WITHOUT pruning, reproducing the reference
//     search — schedule, serialization edges, and stats — bit for bit.
//     (The timing search consumes no randomness, so the rerun needs no
//     RNG bookkeeping; Backtracks is the only stat it touches.)
//
// Cancellation errors always pass through unchanged.
//
// Because every speculation outcome is either a provable reduction
// loser or a bit-identical rerun, WHETHER to speculate is a pure cost
// choice — so it can be decided by an adaptive heuristic without
// touching determinism: after specMissLimit consecutive speculations
// that ended in a rerun (the instance ties the incumbent a lot, or
// its skipped subtrees never exhaust), the worker stops speculating;
// a conclusive prune re-arms it.
func (st *state) timing() (schedule.Schedule, error) {
	entry := st.g.Mark()
	prune := st.inc != nil && st.specMiss < specMissLimit
	sigma, skipped, gaveUp, err := st.timingSearch(prune)
	if !gaveUp {
		if !skipped {
			return sigma, err
		}
		if err != nil {
			if st.ctxErr != nil {
				return schedule.Schedule{}, err
			}
			st.specMiss = 0
			return schedule.Schedule{}, errPruned
		}
		if st.pruned(sigma) {
			// Still beyond the incumbent: let the restart-level pruning
			// in the caller discard the restart (the bound only
			// tightens).
			st.specMiss = 0
			return sigma, nil
		}
		st.specMiss++
	} else {
		st.specMiss++
	}
	st.g.Rollback(entry)
	if st.c.Hetero {
		copy(st.tasks, st.c.Prob.Tasks)
	}
	st.st.Backtracks = 0
	sigma, _, _, err = st.timingSearch(false)
	return sigma, err
}

// specBacktracks is the backtrack budget of the speculative pruned
// timing search, and specMissLimit the consecutive-useless-speculation
// count after which a worker stops speculating. Both only trade
// speculation cost against speculation coverage — determinism never
// depends on them, because an exhausted speculation falls back to the
// reference search and a skipped speculation IS the reference search.
// Small values keep the worst case (speculation that keeps proving
// nothing, full rerun each time) close to the unpruned baseline; the
// conclusive cases (skip-free success, or a provable loser within the
// budget) are where the pruning pays.
const (
	specBacktracks = 64
	specMissLimit  = 3
)

// timingSearch traverses the constraint graph topologically, visiting
// one candidate task at a time; visiting a candidate c serializes every
// not-yet-visited task sharing c's resource after c (edge c -> u with
// weight d(c)). If the added edges create a positive cycle the choice
// is undone and another topological ordering is attempted, so the
// search finds a time-valid schedule whenever one exists (within the
// MaxBacktracks budget). Start times are the longest-path distances
// from the anchor over the final graph.
//
// The search maintains the longest-path solution incrementally: each
// serialization edge is applied with graph.AddEdgeRelaxUndo, which
// updates only the shifted cone of successors, detects the positive
// cycle that would make the choice infeasible, and journals every
// overwritten distance entry — so backtracking replays the journal
// backwards instead of restoring an O(n) per-depth snapshot, and a
// visit step costs O(cone) in both directions. Candidates are taken in
// (current ASAP start, priority) order by lazy minimum selection: the
// distance vector is restored between sibling candidates, so the keys
// are fixed for the whole loop and "smallest key strictly greater than
// the last tried key" enumerates exactly the sorted order without
// materializing or sorting a candidate list. Options.FullRecompute
// falls back to whole-graph recomputation per step (for ablation; the
// distances, and hence the search order and result, are identical).
//
// With prune set, a feasible choice is additionally skipped when its
// finish lower bound — every task's current ASAP start plus a per-task
// minimum delay, a bound no completion of this subtree can beat —
// strictly exceeds the portfolio incumbent's finish, and the backtrack
// budget is clipped to specBacktracks. skipped reports whether any
// subtree was actually skipped (see timing for why that taints the
// outcome); gaveUp reports that the clipped budget ran out, which
// proves nothing about the reference search and obligates the caller
// to rerun without pruning.
func (st *state) timingSearch(prune bool) (sigma schedule.Schedule, skipped, gaveUp bool, err error) {
	n := st.c.NumTasks()
	dist := st.dist
	if !st.g.LongestFromInto(dist, st.c.Anchor) {
		return schedule.Schedule{}, false, false, fmt.Errorf("%w: timing constraints contain a positive cycle", ErrInfeasible)
	}

	visited := st.visited
	for i := range visited {
		visited[i] = false
	}
	budget := st.opts.MaxBacktracks
	clipped := false
	if prune && specBacktracks < budget {
		budget = specBacktracks
		clipped = true
	}
	st.undo = st.undo[:0]

	var visit func(count int) bool
	visit = func(count int) bool {
		if count == n {
			return true
		}
		haveLast := false
		var lastD, lastP int
		for {
			// Lazy min-selection of the next candidate: every unvisited
			// task with key (dist, prio) strictly greater than the last
			// tried key, minimal among those. prio is a permutation, so
			// keys are unique and the enumeration reproduces the sorted
			// candidate order.
			c := -1
			var selD, selP int
			for v := 0; v < n; v++ {
				if visited[v] {
					continue
				}
				dv, pv := dist[v], st.prio[v]
				if haveLast && (dv < lastD || (dv == lastD && pv <= lastP)) {
					continue
				}
				if c < 0 || dv < selD || (dv == selD && pv < selP) {
					c, selD, selP = v, dv, pv
				}
			}
			if c < 0 {
				return false
			}
			haveLast, lastD, lastP = true, selD, selP
			for _, ci := range st.choiceOrder(count, c, visited, dist) {
				// Cooperative cancellation: once the poll latches an
				// error every recursion level bails on its next try, so
				// the whole search unwinds within one check interval.
				if st.pollCancel() != nil {
					return false
				}
				ch := st.c.Choices[c][ci]
				cp := st.g.Mark()
				um := len(st.undo)
				res := st.c.Res[c]
				d := ch.Delay
				feasible := true
				var saved []int
				if st.opts.FullRecompute {
					// Serialize c after every traversed task sharing its
					// machine, and every untraversed same-resource task
					// after c, then recompute from scratch. Machine mates
					// on c's own resource are skipped: the earlier task's
					// resource edge into c already carries the same
					// weight, which is why a problem whose machines
					// mirror its resources schedules identically to one
					// with no machines at all.
					if ch.Machine >= 0 {
						for u := 0; u < n; u++ {
							if visited[u] && st.assign[u].Machine == ch.Machine && st.c.Res[u] != res {
								st.g.AddEdge(u, c, st.tasks[u].Delay)
							}
						}
					}
					for u := 0; u < n; u++ {
						if u != c && !visited[u] && st.c.Res[u] == res {
							st.g.AddEdge(c, u, d)
						}
					}
					if nd, ok := st.g.LongestFrom(st.c.Anchor); ok {
						saved, dist = dist, nd
					} else {
						feasible = false
					}
				} else {
					if ch.Machine >= 0 {
						for u := 0; u < n; u++ {
							if visited[u] && st.assign[u].Machine == ch.Machine && st.c.Res[u] != res {
								if st.undo, feasible = st.g.AddEdgeRelaxUndo(dist, u, c, st.tasks[u].Delay, st.undo); !feasible {
									break
								}
							}
						}
					}
					if feasible {
						for u := 0; u < n; u++ {
							if u != c && !visited[u] && st.c.Res[u] == res {
								if st.undo, feasible = st.g.AddEdgeRelaxUndo(dist, c, u, d, st.undo); !feasible {
									break
								}
							}
						}
					}
				}
				if feasible && prune {
					if cur := st.inc.Load(); cur != nil && st.timingLB(dist, visited, c, d) > cur.finish {
						feasible = false
						skipped = true
					}
				}
				if feasible {
					if st.c.Hetero {
						st.assign[c] = model.Choice{Machine: ch.Machine, Level: ch.Level}
						st.tasks[c].Delay = ch.Delay
						st.tasks[c].Power = ch.Power
					}
					visited[c] = true
					if visit(count + 1) {
						return true
					}
					visited[c] = false
				}
				st.g.Rollback(cp)
				if st.opts.FullRecompute {
					if saved != nil {
						dist = saved
					}
				} else {
					for i := len(st.undo) - 1; i >= um; i-- {
						dist[st.undo[i].V] = st.undo[i].Old
					}
					st.undo = st.undo[:um]
				}
				st.st.Backtracks++
				if st.st.Backtracks > budget {
					return false
				}
			}
		}
	}

	if !visit(0) {
		if st.ctxErr != nil {
			return schedule.Schedule{}, skipped, false, st.ctxErr
		}
		if st.st.Backtracks > budget {
			if clipped {
				// The speculation budget ran out, not the real one: the
				// reference search may still succeed within
				// MaxBacktracks, so no verdict — the caller reruns.
				return schedule.Schedule{}, skipped, true, nil
			}
			return schedule.Schedule{}, skipped, false, fmt.Errorf("sched: timing search exceeded %d backtracks", budget)
		}
		return schedule.Schedule{}, skipped, false, fmt.Errorf("%w: no serialization order yields a time-valid schedule", ErrInfeasible)
	}

	if !st.g.LongestFromInto(st.cur, st.c.Anchor) {
		// Unreachable: every visited step checked feasibility.
		return schedule.Schedule{}, skipped, false, fmt.Errorf("%w: final graph has a positive cycle", ErrInfeasible)
	}
	st.timingMark = st.g.Mark()
	return schedule.Schedule{Start: st.cur[:n:n]}, skipped, false, nil
}

// timingLB is the visit-order-independent finish lower bound of every
// completion below the current search node, with candidate c about to
// commit delay cd: each task must start at or after its current ASAP
// distance (distances only grow as serialization edges accumulate) and
// run for at least its committed delay (visited tasks and c) or its
// minimum admissible delay (unvisited tasks). The later stages only
// ever delay tasks beyond the timing solution, so the bound holds for
// the restart's final finish too.
func (st *state) timingLB(dist []int, visited []bool, c int, cd model.Time) model.Time {
	n := st.c.NumTasks()
	var lb model.Time
	for v := 0; v < n; v++ {
		var d model.Time
		switch {
		case v == c:
			d = cd
		case visited[v]:
			d = st.tasks[v].Delay
		default:
			d = st.minDel[v]
		}
		if e := dist[v] + d; e > lb {
			lb = e
		}
	}
	return lb
}

// choiceOrder returns the order — as indices into st.c.Choices[c] — in
// which the search tries task c's (machine, level) choices: earliest
// estimated finish first. A choice's estimate is max(current ASAP start
// of c, latest completion of the visited tasks on the choice's machine)
// plus its effective delay; the second term is exactly the bound the
// machine serialization edges will enforce, so the rule steers the
// search away from piling every task onto the fastest machine when a
// slower idle one finishes it sooner. Ties keep the choice list's own
// (delay, power, machine, level) preference order. A degenerate problem
// has exactly one choice per task, so the ordering degenerates to the
// single index 0 and the search is the paper's.
//
// The returned slice is depth's reusable buffer, invalidated by the
// next call at the same depth (the recursion below runs at deeper
// depths and cannot clobber it).
func (st *state) choiceOrder(depth, c int, visited []bool, dist []int) []int {
	choices := st.c.Choices[c]
	ord := st.choiceOrdBuf(depth)
	for i := range choices {
		ord = append(ord, i)
	}
	st.choiceOrdBufs[depth] = ord
	if len(choices) <= 1 {
		return ord
	}
	// Latest completion per machine over the visited tasks: the bound
	// the machine serialization edges of a machine-sharing choice would
	// impose on c's start.
	avail := st.machEFT
	for m := range avail {
		avail[m] = 0
	}
	for u := 0; u < st.c.NumTasks(); u++ {
		if visited[u] && st.assign[u].Machine >= 0 {
			if end := dist[u] + st.tasks[u].Delay; end > avail[st.assign[u].Machine] {
				avail[st.assign[u].Machine] = end
			}
		}
	}
	key := st.choiceKey[:0]
	for _, ch := range choices {
		start := dist[c]
		if ch.Machine >= 0 && avail[ch.Machine] > start {
			start = avail[ch.Machine]
		}
		key = append(key, start+ch.Delay)
	}
	st.choiceKey = key
	// Insertion sort: choice lists are tiny, and its stability is what
	// preserves the preference order on ties.
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && key[ord[j]] < key[ord[j-1]]; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	return ord
}

// choiceOrdBuf returns depth's reusable choice-ordering buffer, emptied.
func (st *state) choiceOrdBuf(depth int) []int {
	for len(st.choiceOrdBufs) <= depth {
		st.choiceOrdBufs = append(st.choiceOrdBufs, []int(nil))
	}
	return st.choiceOrdBufs[depth][:0]
}
