package sched

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/schedule"
)

// timing implements the time-constrained scheduling algorithm of paper
// Fig. 3. It traverses the constraint graph topologically, visiting one
// candidate task at a time; visiting a candidate c serializes every
// not-yet-visited task sharing c's resource after c (edge c -> u with
// weight d(c)). If the added edges create a positive cycle the choice
// is undone and another topological ordering is attempted, so the
// search finds a time-valid schedule whenever one exists (within the
// MaxBacktracks budget). Start times are the longest-path distances
// from the anchor over the final graph.
//
// The search maintains the longest-path solution incrementally: each
// serialization edge is applied with graph.AddEdgeRelax, which both
// updates only the shifted cone of successors and detects the positive
// cycle that would make the choice infeasible, so a visit step costs
// O(cone) instead of two full single-source recomputations. A rejected
// step restores the saved distance vector alongside the graph rollback.
// Options.FullRecompute falls back to whole-graph recomputation per
// step (for ablation; the distances, and hence the search order and
// result, are identical).
//
// All working storage — the distance vector, the per-depth snapshots
// and candidate orderings, the visit marks — lives in state-owned
// buffers recycled across restarts, so a steady-state search allocates
// nothing.
func (st *state) timing() (schedule.Schedule, error) {
	n := st.c.NumTasks()
	dist := st.dist
	if !st.g.LongestFromInto(dist, st.c.Anchor) {
		return schedule.Schedule{}, fmt.Errorf("%w: timing constraints contain a positive cycle", ErrInfeasible)
	}

	visited := st.visited
	for i := range visited {
		visited[i] = false
	}
	budget := st.opts.MaxBacktracks

	var visit func(count int) bool
	visit = func(count int) bool {
		if count == n {
			return true
		}
		for _, c := range st.candidates(count, visited, dist) {
			for _, ci := range st.choiceOrder(count, c, visited, dist) {
				// Cooperative cancellation: once the poll latches an
				// error every recursion level bails on its next try, so
				// the whole search unwinds within one check interval.
				if st.pollCancel() != nil {
					return false
				}
				ch := st.c.Choices[c][ci]
				cp := st.g.Mark()
				res := st.tasks[c].Resource
				d := ch.Delay
				feasible := true
				var saved []int
				if st.opts.FullRecompute {
					// Serialize c after every traversed task sharing its
					// machine, and every untraversed same-resource task
					// after c, then recompute from scratch. Machine mates
					// on c's own resource are skipped: the earlier task's
					// resource edge into c already carries the same
					// weight, which is why a problem whose machines
					// mirror its resources schedules identically to one
					// with no machines at all.
					if ch.Machine >= 0 {
						for u := 0; u < n; u++ {
							if visited[u] && st.assign[u].Machine == ch.Machine && st.tasks[u].Resource != res {
								st.g.AddEdge(u, c, st.tasks[u].Delay)
							}
						}
					}
					for u := 0; u < n; u++ {
						if u != c && !visited[u] && st.tasks[u].Resource == res {
							st.g.AddEdge(c, u, d)
						}
					}
					if nd, ok := st.g.LongestFrom(st.c.Anchor); ok {
						saved, dist = dist, nd
					} else {
						feasible = false
					}
				} else {
					saved = st.savedBuf(count)
					copy(saved, dist)
					if ch.Machine >= 0 {
						for u := 0; u < n; u++ {
							if visited[u] && st.assign[u].Machine == ch.Machine && st.tasks[u].Resource != res {
								if !st.g.AddEdgeRelax(dist, u, c, st.tasks[u].Delay) {
									feasible = false
									break
								}
							}
						}
					}
					if feasible {
						for u := 0; u < n; u++ {
							if u != c && !visited[u] && st.tasks[u].Resource == res {
								if !st.g.AddEdgeRelax(dist, c, u, d) {
									feasible = false
									break
								}
							}
						}
					}
				}
				if feasible {
					if st.c.Hetero {
						st.assign[c] = model.Choice{Machine: ch.Machine, Level: ch.Level}
						st.tasks[c].Delay = ch.Delay
						st.tasks[c].Power = ch.Power
					}
					visited[c] = true
					if visit(count + 1) {
						return true
					}
					visited[c] = false
				}
				st.g.Rollback(cp)
				if saved != nil {
					if st.opts.FullRecompute {
						dist = saved
					} else {
						copy(dist, saved)
					}
				}
				st.st.Backtracks++
				if st.st.Backtracks > budget {
					return false
				}
			}
		}
		return false
	}

	if !visit(0) {
		if st.ctxErr != nil {
			return schedule.Schedule{}, st.ctxErr
		}
		if st.st.Backtracks > budget {
			return schedule.Schedule{}, fmt.Errorf("sched: timing search exceeded %d backtracks", budget)
		}
		return schedule.Schedule{}, fmt.Errorf("%w: no serialization order yields a time-valid schedule", ErrInfeasible)
	}

	if !st.g.LongestFromInto(st.finalDist, st.c.Anchor) {
		// Unreachable: every visited step checked feasibility.
		return schedule.Schedule{}, fmt.Errorf("%w: final graph has a positive cycle", ErrInfeasible)
	}
	st.timingMark = st.g.Mark()
	st.structEdges = st.g.AppendEdges(st.structEdges[:0])
	return schedule.FromDist(st.finalDist, st.c.NumTasks()), nil
}

// candidates returns the unvisited tasks in the order the search should
// try them: earliest current ASAP start first (the task the paper's
// traversal would reach next), ties broken by the state's priority
// permutation (the task index on the first restart, a seeded shuffle on
// later restarts). Every unvisited task is a legal candidate; ordering
// only steers the search toward reasonable schedules first. dist is the
// incrementally maintained longest-path solution of the working graph.
// The returned slice is the depth's reusable buffer: valid for the
// caller's loop, invalidated by the next call at the same depth.
func (st *state) candidates(depth int, visited []bool, dist []int) []int {
	cand := st.candBuf(depth)
	for v := 0; v < st.c.NumTasks(); v++ {
		if !visited[v] {
			cand = append(cand, v)
		}
	}
	st.candBufs[depth] = cand
	st.sorter.cand, st.sorter.dist, st.sorter.prio = cand, dist, st.prio
	sort.Sort(&st.sorter)
	return cand
}

// choiceOrder returns the order — as indices into st.c.Choices[c] — in
// which the search tries task c's (machine, level) choices: earliest
// estimated finish first. A choice's estimate is max(current ASAP start
// of c, latest completion of the visited tasks on the choice's machine)
// plus its effective delay; the second term is exactly the bound the
// machine serialization edges will enforce, so the rule steers the
// search away from piling every task onto the fastest machine when a
// slower idle one finishes it sooner. Ties keep the choice list's own
// (delay, power, machine, level) preference order. A degenerate problem
// has exactly one choice per task, so the ordering degenerates to the
// single index 0 and the search is the paper's.
//
// The returned slice is depth's reusable buffer, invalidated by the
// next call at the same depth (the recursion below runs at deeper
// depths and cannot clobber it).
func (st *state) choiceOrder(depth, c int, visited []bool, dist []int) []int {
	choices := st.c.Choices[c]
	ord := st.choiceOrdBuf(depth)
	for i := range choices {
		ord = append(ord, i)
	}
	st.choiceOrdBufs[depth] = ord
	if len(choices) <= 1 {
		return ord
	}
	// Latest completion per machine over the visited tasks: the bound
	// the machine serialization edges of a machine-sharing choice would
	// impose on c's start.
	avail := st.machEFT
	for m := range avail {
		avail[m] = 0
	}
	for u := 0; u < st.c.NumTasks(); u++ {
		if visited[u] && st.assign[u].Machine >= 0 {
			if end := dist[u] + st.tasks[u].Delay; end > avail[st.assign[u].Machine] {
				avail[st.assign[u].Machine] = end
			}
		}
	}
	key := st.choiceKey[:0]
	for _, ch := range choices {
		start := dist[c]
		if ch.Machine >= 0 && avail[ch.Machine] > start {
			start = avail[ch.Machine]
		}
		key = append(key, start+ch.Delay)
	}
	st.choiceKey = key
	// Insertion sort: choice lists are tiny, and its stability is what
	// preserves the preference order on ties.
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && key[ord[j]] < key[ord[j-1]]; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	return ord
}

// choiceOrdBuf returns depth's reusable choice-ordering buffer, emptied.
func (st *state) choiceOrdBuf(depth int) []int {
	for len(st.choiceOrdBufs) <= depth {
		st.choiceOrdBufs = append(st.choiceOrdBufs, []int(nil))
	}
	return st.choiceOrdBufs[depth][:0]
}

// savedBuf returns depth's reusable distance-snapshot buffer.
func (st *state) savedBuf(depth int) []int {
	for len(st.savedBufs) <= depth {
		st.savedBufs = append(st.savedBufs, make([]int, st.g.N()))
	}
	return st.savedBufs[depth]
}

// candBuf returns depth's reusable candidate buffer, emptied.
func (st *state) candBuf(depth int) []int {
	for len(st.candBufs) <= depth {
		st.candBufs = append(st.candBufs, make([]int, 0, st.c.NumTasks()))
	}
	return st.candBufs[depth][:0]
}

// candSorter orders candidates by (current ASAP start, priority): a
// pointer-receiver sort.Interface so sorting allocates nothing, unlike
// a sort.Slice closure. The key is unique per candidate (prio is a
// permutation), so the unstable sort is deterministic.
type candSorter struct {
	cand []int
	dist []int
	prio []int
}

func (s *candSorter) Len() int      { return len(s.cand) }
func (s *candSorter) Swap(i, j int) { s.cand[i], s.cand[j] = s.cand[j], s.cand[i] }
func (s *candSorter) Less(i, j int) bool {
	a, b := s.cand[i], s.cand[j]
	if s.dist[a] != s.dist[b] {
		return s.dist[a] < s.dist[b]
	}
	return s.prio[a] < s.prio[b]
}
