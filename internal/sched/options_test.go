package sched

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxBacktracks == 0 || o.MaxSpikeRounds == 0 || o.MaxScans == 0 {
		t.Fatalf("limits not defaulted: %+v", o)
	}
	if len(o.ScanOrders) != 3 || len(o.SlotChoices) != 2 {
		t.Fatalf("heuristics not defaulted: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{MaxScans: 3, ScanOrders: []ScanOrder{ScanReverse}}.withDefaults()
	if o2.MaxScans != 3 || len(o2.ScanOrders) != 1 || o2.ScanOrders[0] != ScanReverse {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}

func TestEnumStrings(t *testing.T) {
	cases := map[string]string{
		ScanForward.String():        "forward",
		ScanReverse.String():        "reverse",
		ScanRandom.String():         "random",
		SlotStartAtGap.String():     "start-at-gap",
		SlotFinishAtGapEnd.String(): "finish-at-gap-end",
		SlotRandom.String():         "random-slot",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if !strings.Contains(ScanOrder(99).String(), "99") {
		t.Error("unknown ScanOrder not reported numerically")
	}
	if !strings.Contains(SlotChoice(99).String(), "99") {
		t.Error("unknown SlotChoice not reported numerically")
	}
}

func TestInvalidProblemRejectedAtEveryEntryPoint(t *testing.T) {
	bad := &model.Problem{
		Name:  "bad",
		Tasks: []model.Task{{Name: "a", Resource: "R", Delay: 0, Power: 1}},
	}
	if _, err := Timing(bad, Options{}); err == nil {
		t.Error("Timing accepted invalid problem")
	}
	if _, err := MaxPower(bad, Options{}); err == nil {
		t.Error("MaxPower accepted invalid problem")
	}
	if _, err := MinPower(bad, Options{}); err == nil {
		t.Error("MinPower accepted invalid problem")
	}
}

func TestInfeasiblePropagatesThroughPipeline(t *testing.T) {
	p := &model.Problem{
		Name: "inf",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 5, Power: 1},
			{Name: "b", Resource: "B", Delay: 5, Power: 1},
		},
		Pmax: 10,
		Pmin: 1,
	}
	p.MinSep("a", "b", 10)
	p.Window("a", "b", 0, 5)
	if _, err := MinPower(p, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBacktrackBudgetError(t *testing.T) {
	// Many same-resource tasks with deadlines in reverse index order
	// force heavy backtracking; a budget of 1 must fail with the budget
	// error, not infeasibility.
	p := &model.Problem{Name: "bt"}
	const n = 7
	for i := 0; i < n; i++ {
		p.AddTask(model.Task{
			Name:     string(rune('a' + i)),
			Resource: "R",
			Delay:    2,
			Power:    1,
		})
	}
	// Deadlines force the reverse of the candidate order (all tasks tie
	// at ASAP 0, so the search tries index order first and must
	// backtrack its way to the reverse order).
	for i := 0; i < n; i++ {
		p.Deadline(p.Tasks[i].Name, model.Time(2*(n-1-i)))
	}
	if _, err := Timing(p, Options{}); err != nil {
		t.Fatalf("default budget should solve it: %v", err)
	}
	_, err := Timing(p, Options{MaxBacktracks: 1})
	if err == nil {
		t.Fatal("budget of 1 succeeded")
	}
	if errors.Is(err, ErrInfeasible) {
		t.Fatalf("budget exhaustion reported as infeasibility: %v", err)
	}
}

func TestStatspopulated(t *testing.T) {
	p := gapProblem()
	r, err := MinPower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Scans == 0 {
		t.Error("no min-power scans recorded")
	}
	if r.Stats.SpikeRounds == 0 {
		t.Error("no spike rounds recorded (gapProblem spikes at ASAP)")
	}
}

func TestDisableLocksStillValid(t *testing.T) {
	p := gapProblem()
	r, err := MinPower(p, Options{DisableLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Profile.Valid(p.Pmax) {
		t.Fatal("lock-free run produced spikes")
	}
}

func TestSingleHeuristicCombos(t *testing.T) {
	p := gapProblem()
	for _, order := range []ScanOrder{ScanForward, ScanReverse, ScanRandom} {
		for _, slot := range []SlotChoice{SlotStartAtGap, SlotFinishAtGapEnd, SlotRandom} {
			r, err := MinPower(p, Options{
				ScanOrders:  []ScanOrder{order},
				SlotChoices: []SlotChoice{slot},
				Seed:        7,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", order, slot, err)
			}
			if !r.Profile.Valid(p.Pmax) {
				t.Errorf("%s/%s: spikes", order, slot)
			}
		}
	}
}

func TestMinPowerSkipsWhenPminZero(t *testing.T) {
	p := gapProblem()
	p.Pmin = 0
	rm, err := MaxPower(p.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := MinPower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rf.Schedule.Equal(rm.Schedule) {
		t.Fatal("Pmin=0 run still moved tasks")
	}
	if rf.Stats.Moves != 0 {
		t.Fatalf("Pmin=0 recorded %d moves", rf.Stats.Moves)
	}
}

func TestRunAliasesMinPower(t *testing.T) {
	p := gapProblem()
	a, err := Run(p.Clone(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinPower(p.Clone(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Schedule.Equal(b.Schedule) {
		t.Fatal("Run and MinPower disagree")
	}
}

func TestResultAccessors(t *testing.T) {
	p := gapProblem()
	r, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Finish() != r.Schedule.Finish(p.Tasks) {
		t.Error("Finish accessor wrong")
	}
	if r.Peak() != r.Profile.Peak() {
		t.Error("Peak accessor wrong")
	}
}
