package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/schedule"
)

// TestCompactRecoversStrandedIdle: spike elimination pushes the second
// task past the spike but leaves a hole the task could legally slide
// back into once the first finishes; compaction reclaims it.
func TestCompactRecoversStrandedIdle(t *testing.T) {
	p := &model.Problem{
		Name: "strand",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 3, Power: 6},
			{Name: "b", Resource: "B", Delay: 5, Power: 6},
			{Name: "c", Resource: "C", Delay: 3, Power: 6},
		},
		Pmax: 13,
	}
	plain, err := Run(p.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := Run(p.Clone(), Options{Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Finish() > plain.Finish() {
		t.Fatalf("compaction lengthened the schedule: %d -> %d", plain.Finish(), compacted.Finish())
	}
	if err := schedule.CheckTimeValid(compacted.Graph, compacted.Compiled, compacted.Schedule); err != nil {
		t.Fatal(err)
	}
	if !compacted.Profile.Valid(p.Pmax) {
		t.Fatal("compaction introduced a spike")
	}
}

// TestQuickCompactNeverWorse: on random problems the compacting
// pipeline finishes no later than the plain one, stays valid, and
// leaves the rover's already-tight schedules untouched.
func TestQuickCompactNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		p := genProblem(seed)
		plain, err := Run(p.Clone(), Options{})
		if err != nil {
			return false
		}
		compacted, err := Run(p.Clone(), Options{Compact: true})
		if err != nil {
			t.Logf("seed %d: compact run failed: %v", seed, err)
			return false
		}
		if compacted.Finish() > plain.Finish() {
			t.Logf("seed %d: finish %d -> %d", seed, plain.Finish(), compacted.Finish())
			return false
		}
		if err := schedule.CheckTimeValid(compacted.Graph, compacted.Compiled, compacted.Schedule); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return compacted.Profile.Valid(p.Pmax)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCompactGraphStaysConsistent: after compaction the working graph's
// longest-path solution still equals the reported schedule (the
// invariant the min-power machinery depends on).
func TestCompactGraphStaysConsistent(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := genProblem(seed)
		r, err := Run(p, Options{Compact: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dist, ok := r.Graph.LongestFrom(r.Compiled.Anchor)
		if !ok {
			t.Fatalf("seed %d: final graph infeasible", seed)
		}
		for v := range r.Schedule.Start {
			if dist[v] != r.Schedule.Start[v] {
				t.Fatalf("seed %d: task %d graph %d != schedule %d",
					seed, v, dist[v], r.Schedule.Start[v])
			}
		}
	}
}
