package sched

import (
	"repro/internal/model"
	"repro/internal/schedule"
)

const utilEps = 1e-9

// minPower implements the min-power scheduling algorithm of paper
// Fig. 6. Given a valid schedule it repeatedly scans for power gaps
// (P(t) < Pmin) and delays tasks that finished before the gap so they
// execute inside it, accepting a move only when the new schedule stays
// valid, keeps the finish time (same performance), and strictly
// improves min-power utilization. Scans repeat until a fixpoint; the
// whole process runs once per heuristic combination (scan order x slot
// choice, section 5.3) and the best schedule wins. Since the min power
// constraint is soft, remaining gaps are tolerated.
//
// The working schedule is one flat bank (st.cur) mutated in place: each
// combo restores the entry schedule from a snapshot instead of cloning,
// and the best schedule is kept as a snapshot copied back at the end.
//
// Cancellation aborts the stage with the context's error rather than
// returning the best-so-far schedule: min-power is best-effort, but a
// partially optimized result must never masquerade as the
// deterministic full-pipeline outcome (callers cache by content key).
func (st *state) minPower(sigma schedule.Schedule) (schedule.Schedule, error) {
	pmin := st.c.Prob.Pmin
	if pmin <= 0 {
		return sigma, nil
	}
	// The graph may have been rebuilt (compaction) and the schedule
	// re-derived since the last stage: re-sync the incremental core.
	st.syncProfile(sigma)
	st.dirtySlackAll()
	entryU := st.prof(sigma).Utilization(pmin)
	bestU := entryU
	st.bestBuf = append(st.bestBuf[:0], sigma.Start...)
	if bestU >= 1 {
		return sigma, nil
	}
	st.comboBase = append(st.comboBase[:0], sigma.Start...)

	base := st.g.Mark()
	for _, order := range st.opts.ScanOrders {
		for _, slot := range st.opts.SlotChoices {
			st.g.Rollback(base)
			copy(sigma.Start, st.comboBase)
			st.syncProfile(sigma)
			st.dirtySlackAll()
			st.curU = entryU
			st.minPowerCombo(sigma, order, slot)
			if st.ctxErr != nil {
				return schedule.Schedule{}, st.ctxErr
			}
			if st.curU > bestU+utilEps {
				bestU = st.curU
				copy(st.bestBuf, sigma.Start)
			}
			if bestU >= 1 {
				break
			}
		}
	}
	// Re-anchor the working graph on the winning schedule: the per-combo
	// edges were rolled back, so pin every task at its final start.
	st.g.Rollback(base)
	st.dirtySlackAll()
	copy(sigma.Start, st.bestBuf)
	for v := range sigma.Start {
		st.lock(v, sigma.Start[v])
	}
	return sigma, nil
}

// minPowerCombo runs repeated improvement scans under one heuristic
// combination until a scan makes no progress or utilization reaches 1,
// mutating the working schedule in place.
func (st *state) minPowerCombo(sigma schedule.Schedule, order ScanOrder, slot SlotChoice) {
	for scan := 0; scan < st.opts.MaxScans; scan++ {
		if st.pollCancel() != nil {
			return
		}
		st.st.Scans++
		if !st.scanOnce(sigma, order, slot) || st.curU >= 1 {
			return
		}
	}
}

// scanOnce performs one pass over the schedule's power gaps in the
// given order, attempting one accepted move per gap time.
func (st *state) scanOnce(sigma schedule.Schedule, order ScanOrder, slot SlotChoice) bool {
	pmin := st.c.Prob.Pmin
	// Visit the start of every below-Pmin profile segment (not merely
	// every maximal gap): a wide gap can require several moves at
	// different depths, and the profitable insertion point is a segment
	// boundary, not necessarily the gap's left edge.
	times := st.gapTimes[:0]
	for _, seg := range st.prof(sigma).Segs {
		if seg.P < pmin {
			times = append(times, seg.T0)
		}
	}
	st.gapTimes = times
	if len(times) == 0 {
		return false
	}
	switch order {
	case ScanReverse:
		for i, j := 0, len(times)-1; i < j; i, j = i+1, j-1 {
			times[i], times[j] = times[j], times[i]
		}
	case ScanRandom:
		st.rng.Shuffle(len(times), func(i, j int) { times[i], times[j] = times[j], times[i] })
	}

	improved := false
	for _, t := range times {
		if st.pollCancel() != nil {
			return false
		}
		// Earlier moves may have already filled (or shifted) this gap.
		if st.prof(sigma).At(t) >= pmin {
			continue
		}
		if st.fillGapAt(sigma, t, slot) {
			improved = true
			if st.curU >= 1 {
				return true
			}
		}
	}
	return improved
}

// fillGapAt tries to delay one task that finished before t so it is
// active at t, mutating the working schedule in place on acceptance.
// Candidates must have enough slack to reach t (the paper's condition
// Delta(v) >= t - sigma(v) - d(v), strict activity). A move is accepted
// when the delayed schedule is time-valid (by construction of the slack
// bound and the incremental longest-path update, re-checked against the
// live constraint edges), power-valid, finishes no later, and strictly
// improves utilization; a rejected move is rolled back exactly via the
// delay's undo journal.
func (st *state) fillGapAt(sigma schedule.Schedule, t model.Time, slot SlotChoice) bool {
	prob := st.c.Prob
	curU := st.curU
	prof := st.prof(sigma)
	// The profile covers [0, Finish), so its extent is the finish time.
	tau := prof.Duration()

	// End of the gap beginning at t, for the finish-at-gap-end slot.
	// The incremental path answers from the tracker's segment index in
	// O(log m); the naive path walks the contiguous segments, merging
	// adjacent below-Pmin runs exactly like Gaps, without materializing
	// the interval list.
	gapEnd := t + 1
	if !st.opts.Naive {
		gapEnd = st.tr.RunEndBelow(t, prob.Pmin)
	} else {
		var g0, g1 model.Time
		have := false
		for _, s := range prof.Segs {
			if s.P >= prob.Pmin {
				continue
			}
			if have && g1 == s.T0 {
				g1 = s.T1
				continue
			}
			if have && g0 <= t && t < g1 {
				break
			}
			g0, g1 = s.T0, s.T1
			have = true
		}
		if have && g0 <= t && t < g1 {
			gapEnd = g1
		}
	}

	for _, v := range st.gapCandidates(sigma, t) {
		if st.pollCancel() != nil {
			return false
		}
		d := st.tasks[v].Delay
		sl := st.slackOf(sigma, v)
		// Latest start keeping the task active at t, clipped by slack.
		latest := t
		if m := sigma.Start[v] + sl; m < latest {
			latest = m
		}
		earliest := t - d + 1 // earliest start that is active at t
		if latest < earliest {
			continue
		}
		var newStart model.Time
		switch slot {
		case SlotFinishAtGapEnd:
			newStart = gapEnd - d
		case SlotRandom:
			newStart = earliest + model.Time(st.rng.Intn(latest-earliest+1))
		default: // SlotStartAtGap
			newStart = t
		}
		if newStart > latest {
			newStart = latest
		}
		if newStart < earliest {
			newStart = earliest
		}
		if newStart <= sigma.Start[v] {
			continue
		}

		cp := st.g.Mark()
		changed, ok := st.delay(v, newStart)
		if ok {
			np := st.prof(sigma)
			if st.powerValid(np, prob.Pmax) && np.Duration() <= tau {
				if u := np.Utilization(prob.Pmin); u > curU+utilEps && st.timeValid(sigma) {
					st.st.Moves++
					st.curU = u
					return true
				}
			}
		}
		st.g.Rollback(cp)
		st.undoDelay(changed)
		st.st.Rejected++
	}
	return false
}

// gapCand is a gap-fill candidate with its selection keys.
type gapCand struct {
	v      int
	power  float64
	finish model.Time
}

// gapCandidates returns tasks that finish at or before t and have
// enough slack to be delayed into activity at t, most powerful first
// (a bigger consumer fills more of the gap), ties broken by later
// finish then index. The result lives in state-owned buffers reused
// across calls.
func (st *state) gapCandidates(sigma schedule.Schedule, t model.Time) []int {
	cs := st.gapCands[:0]
	tasks := st.tasks
	for v := range tasks {
		fin := sigma.Start[v] + tasks[v].Delay
		if fin > t {
			continue // still running at or after t; delaying cannot help
		}
		sl := st.slackOf(sigma, v)
		if sl < t-sigma.Start[v]-tasks[v].Delay+1 {
			continue // cannot reach t
		}
		cs = append(cs, gapCand{v: v, power: tasks[v].Power, finish: fin})
	}
	st.gapCands = cs
	// Selection order: descending power, then latest finish, then index.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			a, b := cs[j-1], cs[j]
			if b.power > a.power || (b.power == a.power && b.finish > a.finish) {
				cs[j-1], cs[j] = b, a
			} else {
				break
			}
		}
	}
	out := st.gapOrder[:0]
	for _, c := range cs {
		out = append(out, c.v)
	}
	st.gapOrder = out
	return out
}
