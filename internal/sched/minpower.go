package sched

import (
	"repro/internal/model"
	"repro/internal/schedule"
)

const utilEps = 1e-9

// minPower implements the min-power scheduling algorithm of paper
// Fig. 6. Given a valid schedule it repeatedly scans for power gaps
// (P(t) < Pmin) and delays tasks that finished before the gap so they
// execute inside it, accepting a move only when the new schedule stays
// valid, keeps the finish time (same performance), and strictly
// improves min-power utilization. Scans repeat until a fixpoint; the
// whole process runs once per heuristic combination (scan order x slot
// choice, section 5.3) and the best schedule wins. Since the min power
// constraint is soft, remaining gaps are tolerated.
//
// Cancellation aborts the stage with the context's error rather than
// returning the best-so-far schedule: min-power is best-effort, but a
// partially optimized result must never masquerade as the
// deterministic full-pipeline outcome (callers cache by content key).
func (st *state) minPower(sigma schedule.Schedule) (schedule.Schedule, error) {
	pmin := st.c.Prob.Pmin
	if pmin <= 0 {
		return sigma, nil
	}
	// The graph may have been rebuilt (compaction) and the schedule
	// re-derived since the last stage: re-sync the incremental core.
	st.syncProfile(sigma)
	st.dirtySlackAll()
	best := sigma.Clone()
	bestU := st.prof(sigma).Utilization(pmin)
	if bestU >= 1 {
		return best, nil
	}

	base := st.g.Mark()
	for _, order := range st.opts.ScanOrders {
		for _, slot := range st.opts.SlotChoices {
			st.g.Rollback(base)
			st.syncProfile(sigma)
			st.dirtySlackAll()
			got := st.minPowerCombo(sigma.Clone(), order, slot)
			if st.ctxErr != nil {
				return schedule.Schedule{}, st.ctxErr
			}
			if u := st.prof(got).Utilization(pmin); u > bestU+utilEps {
				best, bestU = got.Clone(), u
			}
			if bestU >= 1 {
				break
			}
		}
	}
	// Re-anchor the working graph on the winning schedule: the per-combo
	// edges were rolled back, so pin every task at its final start.
	st.g.Rollback(base)
	st.dirtySlackAll()
	for v := range best.Start {
		st.lock(v, best.Start[v])
	}
	return best, nil
}

// minPowerCombo runs repeated improvement scans under one heuristic
// combination until a scan makes no progress or utilization reaches 1.
func (st *state) minPowerCombo(sigma schedule.Schedule, order ScanOrder, slot SlotChoice) schedule.Schedule {
	for scan := 0; scan < st.opts.MaxScans; scan++ {
		if st.pollCancel() != nil {
			return sigma
		}
		st.st.Scans++
		next, improved := st.scanOnce(sigma, order, slot)
		sigma = next
		if !improved || st.prof(sigma).Utilization(st.c.Prob.Pmin) >= 1 {
			break
		}
	}
	return sigma
}

// scanOnce performs one pass over the schedule's power gaps in the
// given order, attempting one accepted move per gap time.
func (st *state) scanOnce(sigma schedule.Schedule, order ScanOrder, slot SlotChoice) (schedule.Schedule, bool) {
	pmin := st.c.Prob.Pmin
	// Visit the start of every below-Pmin profile segment (not merely
	// every maximal gap): a wide gap can require several moves at
	// different depths, and the profitable insertion point is a segment
	// boundary, not necessarily the gap's left edge.
	times := st.gapTimes[:0]
	for _, seg := range st.prof(sigma).Segs {
		if seg.P < pmin {
			times = append(times, seg.T0)
		}
	}
	st.gapTimes = times
	if len(times) == 0 {
		return sigma, false
	}
	switch order {
	case ScanReverse:
		for i, j := 0, len(times)-1; i < j; i, j = i+1, j-1 {
			times[i], times[j] = times[j], times[i]
		}
	case ScanRandom:
		st.rng.Shuffle(len(times), func(i, j int) { times[i], times[j] = times[j], times[i] })
	}

	improved := false
	for _, t := range times {
		if st.pollCancel() != nil {
			return sigma, false
		}
		// Earlier moves may have already filled (or shifted) this gap.
		if st.prof(sigma).At(t) >= pmin {
			continue
		}
		if next, ok := st.fillGapAt(sigma, t, slot); ok {
			sigma = next
			improved = true
			if st.prof(sigma).Utilization(pmin) >= 1 {
				return sigma, true
			}
		}
	}
	return sigma, improved
}

// fillGapAt tries to delay one task that finished before t so it is
// active at t. Candidates must have enough slack to reach t (the
// paper's condition Delta(v) >= t - sigma(v) - d(v), strict activity).
// A move is accepted when the delayed schedule is time-valid (by
// construction of the slack bound and the longest-path recomputation),
// power-valid, finishes no later, and strictly improves utilization.
func (st *state) fillGapAt(sigma schedule.Schedule, t model.Time, slot SlotChoice) (schedule.Schedule, bool) {
	prob := st.c.Prob
	prof := st.prof(sigma)
	curU := prof.Utilization(prob.Pmin)
	tau := sigma.Finish(st.tasks)

	// End of the gap beginning at t, for the finish-at-gap-end slot.
	// The segments are contiguous and time-ordered, so the maximal gap
	// containing t is the run of below-Pmin segments around it — found
	// by a direct walk, merging adjacent runs exactly like Gaps, without
	// materializing the interval list.
	gapEnd := t + 1
	{
		var g0, g1 model.Time
		have := false
		for _, s := range prof.Segs {
			if s.P >= prob.Pmin {
				continue
			}
			if have && g1 == s.T0 {
				g1 = s.T1
				continue
			}
			if have && g0 <= t && t < g1 {
				break
			}
			g0, g1 = s.T0, s.T1
			have = true
		}
		if have && g0 <= t && t < g1 {
			gapEnd = g1
		}
	}

	for _, v := range st.gapCandidates(sigma, t) {
		if st.pollCancel() != nil {
			return sigma, false
		}
		d := st.tasks[v].Delay
		sl := st.slackOf(sigma, v)
		// Latest start keeping the task active at t, clipped by slack.
		latest := t
		if m := sigma.Start[v] + sl; m < latest {
			latest = m
		}
		earliest := t - d + 1 // earliest start that is active at t
		if latest < earliest {
			continue
		}
		var newStart model.Time
		switch slot {
		case SlotFinishAtGapEnd:
			newStart = gapEnd - d
		case SlotRandom:
			newStart = earliest + model.Time(st.rng.Intn(latest-earliest+1))
		default: // SlotStartAtGap
			newStart = t
		}
		if newStart > latest {
			newStart = latest
		}
		if newStart < earliest {
			newStart = earliest
		}
		if newStart <= sigma.Start[v] {
			continue
		}

		cp := st.g.Mark()
		next, changed, ok := st.delay(sigma, v, newStart)
		if ok {
			np := st.prof(next)
			if np.Valid(prob.Pmax) &&
				next.Finish(st.tasks) <= tau &&
				np.Utilization(prob.Pmin) > curU+utilEps &&
				schedule.CheckTimeValidTasks(st.g, st.c, st.tasks, next) == nil {
				st.st.Moves++
				return next, true
			}
		}
		st.g.Rollback(cp)
		st.revertMove(changed, sigma)
		st.st.Rejected++
	}
	return sigma, false
}

// gapCand is a gap-fill candidate with its selection keys.
type gapCand struct {
	v      int
	power  float64
	finish model.Time
}

// gapCandidates returns tasks that finish at or before t and have
// enough slack to be delayed into activity at t, most powerful first
// (a bigger consumer fills more of the gap), ties broken by later
// finish then index. The result lives in state-owned buffers reused
// across calls.
func (st *state) gapCandidates(sigma schedule.Schedule, t model.Time) []int {
	cs := st.gapCands[:0]
	for v, task := range st.tasks {
		fin := sigma.Start[v] + task.Delay
		if fin > t {
			continue // still running at or after t; delaying cannot help
		}
		sl := st.slackOf(sigma, v)
		if sl < t-sigma.Start[v]-task.Delay+1 {
			continue // cannot reach t
		}
		cs = append(cs, gapCand{v: v, power: task.Power, finish: fin})
	}
	st.gapCands = cs
	// Selection order: descending power, then latest finish, then index.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			a, b := cs[j-1], cs[j]
			if b.power > a.power || (b.power == a.power && b.finish > a.finish) {
				cs[j-1], cs[j] = b, a
			} else {
				break
			}
		}
	}
	out := st.gapOrder[:0]
	for _, c := range cs {
		out = append(out, c.v)
	}
	st.gapOrder = out
	return out
}
