package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/schedule"
)

// genProblem builds a random layered problem. It mirrors the generator
// in internal/analysis, which cannot be imported here without creating
// an import cycle (analysis depends on sched).
func genProblem(seed int64) *model.Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(14)
	layers := 2 + n/5
	p := &model.Problem{Name: fmt.Sprintf("prop-%d", seed)}
	layerOf := make([]int, n)
	for i := 0; i < n; i++ {
		layerOf[i] = i * layers / n
		p.AddTask(model.Task{
			Name:     fmt.Sprintf("t%02d", i),
			Resource: fmt.Sprintf("R%d", rng.Intn(3)),
			Delay:    1 + rng.Intn(6),
			Power:    1 + rng.Float64()*9,
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if layerOf[j] != layerOf[i]+1 || rng.Float64() >= 0.3 {
				continue
			}
			min := p.Tasks[i].Delay
			if rng.Float64() < 0.2 {
				p.Window(p.Tasks[i].Name, p.Tasks[j].Name, min, min+200)
			} else {
				p.MinSep(p.Tasks[i].Name, p.Tasks[j].Name, min)
			}
		}
	}
	first, second := 0.0, 0.0
	for _, t := range p.Tasks {
		if t.Power > first {
			first, second = t.Power, first
		} else if t.Power > second {
			second = t.Power
		}
	}
	p.Pmax = (first + second) * 1.2
	p.Pmin = p.Pmax / 2
	return p
}

// TestQuickPipelineValidity: on random problems the full pipeline
// always produces schedules that are time-valid (all constraint edges,
// resource serialization) and power-valid (no spikes).
func TestQuickPipelineValidity(t *testing.T) {
	f := func(seed int64) bool {
		p := genProblem(seed)
		r, err := MinPower(p, Options{})
		if err != nil {
			return false
		}
		if err := schedule.CheckTimeValid(r.Graph, r.Compiled, r.Schedule); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !r.Profile.Valid(p.Pmax) {
			t.Logf("seed %d: spikes %v", seed, r.Profile.Spikes(p.Pmax))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinPowerNeverHurts: the min-power stage never lowers
// utilization, never raises energy cost, and never extends the finish
// time relative to the max-power stage.
func TestQuickMinPowerNeverHurts(t *testing.T) {
	f := func(seed int64) bool {
		p := genProblem(seed)
		rm, err := MaxPower(p.Clone(), Options{})
		if err != nil {
			return false
		}
		rf, err := MinPower(p.Clone(), Options{})
		if err != nil {
			return false
		}
		if rf.Finish() > rm.Finish() {
			t.Logf("seed %d: finish %d -> %d", seed, rm.Finish(), rf.Finish())
			return false
		}
		if rf.Utilization()+utilEps < rm.Utilization() {
			t.Logf("seed %d: util %.4f -> %.4f", seed, rm.Utilization(), rf.Utilization())
			return false
		}
		if rf.EnergyCost() > rm.EnergyCost()+1e-9 {
			t.Logf("seed %d: cost %.2f -> %.2f", seed, rm.EnergyCost(), rf.EnergyCost())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickTimingIsASAPLowerBound: the power stages only ever delay
// tasks, so with identical options (hence the identical serialization
// order) every pipeline start time is at or after its timing-only
// (ASAP) value, and the finish time never shrinks.
func TestQuickTimingIsASAPLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		p := genProblem(seed)
		rt, err := Timing(p.Clone(), Options{})
		if err != nil {
			return false
		}
		rf, err := MinPower(p.Clone(), Options{})
		if err != nil {
			return false
		}
		for v := range rf.Schedule.Start {
			if rf.Schedule.Start[v] < rt.Schedule.Start[v] {
				t.Logf("seed %d: task %d moved earlier (%d < %d)",
					seed, v, rf.Schedule.Start[v], rt.Schedule.Start[v])
				return false
			}
		}
		return rf.Finish() >= rt.Finish()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickFinalGraphPinsSchedule: the pipeline's final graph encodes
// the returned schedule exactly — the longest-path solution of the
// mutated constraint graph equals the reported start times.
func TestQuickFinalGraphPinsSchedule(t *testing.T) {
	f := func(seed int64) bool {
		p := genProblem(seed)
		rf, err := MinPower(p, Options{})
		if err != nil {
			return false
		}
		dist, ok := rf.Graph.LongestFrom(rf.Compiled.Anchor)
		if !ok {
			return false
		}
		for v := range rf.Schedule.Start {
			if dist[v] != rf.Schedule.Start[v] {
				t.Logf("seed %d: task %d graph says %d, schedule says %d",
					seed, v, dist[v], rf.Schedule.Start[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterminism: the same problem and seed produce the same
// schedule; the heuristics contain randomness but it is fully seeded.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		p := genProblem(seed)
		a, err := MinPower(p.Clone(), Options{Seed: 11})
		if err != nil {
			return false
		}
		b, err := MinPower(p.Clone(), Options{Seed: 11})
		if err != nil {
			return false
		}
		return a.Schedule.Equal(b.Schedule)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
