package sched

import (
	"testing"
	"testing/quick"
)

// TestQuickIncrementalEqualsFullRecompute: the incremental longest-path
// update inside delay() is an engineering optimization only — with the
// same seed, the pipeline produces the identical schedule either way.
func TestQuickIncrementalEqualsFullRecompute(t *testing.T) {
	f := func(seed int64) bool {
		p := genProblem(seed)
		inc, err := MinPower(p.Clone(), Options{Seed: 3})
		if err != nil {
			return false
		}
		full, err := MinPower(p.Clone(), Options{Seed: 3, FullRecompute: true})
		if err != nil {
			return false
		}
		if !inc.Schedule.Equal(full.Schedule) {
			t.Logf("seed %d: incremental %v != full %v", seed, inc.Schedule.Start, full.Schedule.Start)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
