package sched

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/exact"
	"repro/internal/model"
	"repro/internal/rover"
	"repro/internal/spec"
	"repro/internal/verify"
)

// genHeteroProblem builds a small random heterogeneous problem: 1-2
// machines with distinct speed/power ratings, 3-4 tasks on 2 resources,
// optional DVS slow-down levels, occasional pins, and sparse
// precedences. Sized so the exact solver can exhaust the (assignment x
// level x start) space.
func genHeteroProblem(seed int64) *model.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &model.Problem{Name: fmt.Sprintf("hetero-%d", seed)}
	m := 1 + rng.Intn(2)
	speeds := []float64{1, 1.5, 2}
	scales := []float64{1, 1.25, 1.5}
	for j := 0; j < m; j++ {
		p.Machines = append(p.Machines, model.Machine{
			Name:       fmt.Sprintf("m%d", j),
			Speed:      speeds[rng.Intn(len(speeds))],
			PowerScale: scales[rng.Intn(len(scales))],
		})
	}
	n := 3 + rng.Intn(2)
	for i := 0; i < n; i++ {
		t := model.Task{
			Name:     fmt.Sprintf("t%d", i),
			Resource: fmt.Sprintf("R%d", rng.Intn(2)),
			Delay:    1 + rng.Intn(3),
			Power:    1 + rng.Float64()*6,
		}
		if rng.Float64() < 0.5 {
			t.Levels = []model.DVSLevel{
				{Mult: 1, Power: t.Power},
				{Mult: 1.5, Power: t.Power * 0.6},
			}
		}
		if rng.Float64() < 0.25 {
			t.Machine = p.Machines[rng.Intn(m)].Name
		}
		p.AddTask(t)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.25 {
				p.MinSep(p.Tasks[i].Name, p.Tasks[j].Name, p.Tasks[i].Delay)
			}
		}
	}
	// A generous budget that still bites occasionally: the two largest
	// nominal powers at the largest machine rating, plus slack.
	first, second := 0.0, 0.0
	for _, t := range p.Tasks {
		if t.Power > first {
			first, second = t.Power, first
		} else if t.Power > second {
			second = t.Power
		}
	}
	p.Pmax = (first + second) * 1.5 * 1.3
	p.Pmin = p.Pmax / 3
	return p
}

// heteroOptions is the option matrix the heterogeneous differential
// suite runs under: the plain pipeline, the naive (non-incremental)
// ablation, compaction, and a restart portfolio at one, two, and eight
// workers.
func heteroOptions() []Options {
	return []Options{
		{Seed: 3},
		{Seed: 3, Naive: true},
		{Seed: 3, Compact: true},
		{Seed: 9, Restarts: 8, Workers: 1},
		{Seed: 9, Restarts: 8, Workers: 2},
		{Seed: 9, Restarts: 8, Workers: 8},
	}
}

// TestHeteroMachinesRunInParallel pins the earliest-finish choice
// ordering: two identical unit machines and two independent equal tasks
// must overlap in time on different machines (finish 4), not pile onto
// one machine greedily (finish 8).
func TestHeteroMachinesRunInParallel(t *testing.T) {
	p := &model.Problem{
		Name: "two-machines",
		Machines: []model.Machine{
			{Name: "m0", Speed: 1, PowerScale: 1},
			{Name: "m1", Speed: 1, PowerScale: 1},
		},
	}
	p.AddTask(model.Task{Name: "a", Resource: "Ra", Delay: 4, Power: 1})
	p.AddTask(model.Task{Name: "b", Resource: "Rb", Delay: 4, Power: 1})
	r, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Finish() != 4 {
		t.Fatalf("finish = %d, want 4 (tasks should spread across machines); assignment %v, starts %v",
			r.Finish(), r.Assignment, r.Schedule.Start)
	}
	if r.Assignment[0].Machine == r.Assignment[1].Machine {
		t.Fatalf("both tasks assigned machine %d", r.Assignment[0].Machine)
	}
	if rep := verify.CheckAssigned(p, r.Schedule, r.Assignment); !rep.OK() {
		t.Fatal(rep.Err())
	}
}

// TestHeteroDVSPicksFastLevel checks that a task with a slow-down curve
// still schedules and that the chosen level's effective values land in
// Result.Tasks.
func TestHeteroDVSPicksLevel(t *testing.T) {
	p := &model.Problem{Name: "dvs", Pmax: 12, Pmin: 0}
	p.AddTask(model.Task{
		Name: "a", Resource: "R", Delay: 4, Power: 10,
		Levels: []model.DVSLevel{{Mult: 1, Power: 10}, {Mult: 2, Power: 4}},
	})
	p.AddTask(model.Task{Name: "b", Resource: "S", Delay: 4, Power: 10})
	r, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.CheckAssigned(p, r.Schedule, r.Assignment); !rep.OK() {
		t.Fatal(rep.Err())
	}
	got := r.Tasks[0]
	want, err := p.ChoiceFor(0, r.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got.Delay != want.Delay || got.Power != want.Power {
		t.Fatalf("Result.Tasks[0] = {Delay:%d Power:%g}, choice says {Delay:%d Power:%g}",
			got.Delay, got.Power, want.Delay, want.Power)
	}
	if r.EffectiveProblem() == p {
		t.Fatal("EffectiveProblem returned the original problem for a heterogeneous result")
	}
}

// embedUnitMachines rewrites a degenerate problem into an explicitly
// heterogeneous one that means exactly the same thing: one unit-speed,
// unit-rating machine per resource, every task pinned to its resource's
// machine, and every task given an explicit single nominal level.
func embedUnitMachines(p *model.Problem) *model.Problem {
	q := p.Clone()
	for _, r := range p.Resources() {
		q.Machines = append(q.Machines, model.Machine{Name: "mach-" + r, Speed: 1, PowerScale: 1})
	}
	for i := range q.Tasks {
		q.Tasks[i].Machine = "mach-" + q.Tasks[i].Resource
		q.Tasks[i].Levels = []model.DVSLevel{{Mult: 1, Power: q.Tasks[i].Power}}
	}
	return q
}

// TestDegenerateEmbedding proves the paper's model is a true degenerate
// case rather than a legacy branch: a problem rewritten with explicit
// per-resource unit machines and explicit nominal levels takes the
// heterogeneous code paths (assignment bookkeeping, choice loops,
// machine-edge logic) yet reproduces the degenerate run's schedule,
// profile, stats, and metrics exactly, for every testdata spec and
// every rover iteration, under both golden option sets.
func TestDegenerateEmbedding(t *testing.T) {
	probs := map[string]*model.Problem{}
	docs, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.spec"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range docs {
		p, err := spec.ParseFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if p.Heterogeneous() {
			continue // the embedding is defined for degenerate inputs only
		}
		probs["spec-"+filepath.Base(path)] = p
	}
	for _, c := range []rover.Case{rover.Best, rover.Typical, rover.Worst} {
		for _, k := range []rover.IterationKind{rover.Cold, rover.ColdPreheat, rover.Warm} {
			probs[fmt.Sprintf("rover-%d-%d", c, k)] = rover.BuildIteration(c, k)
		}
	}
	optSets := map[string]Options{
		"default":          {},
		"compact-restarts": {Seed: 9, Compact: true, Restarts: 4, Workers: 2},
	}
	for name, p := range probs {
		emb := embedUnitMachines(p)
		if !emb.Heterogeneous() {
			t.Fatalf("%s: embedded problem is not heterogeneous", name)
		}
		for oname, opts := range optSets {
			want, err1 := Run(p.Clone(), opts)
			got, err2 := Run(emb.Clone(), opts)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s/%s: error divergence: degenerate=%v embedded=%v", name, oname, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !got.Schedule.Equal(want.Schedule) {
				t.Fatalf("%s/%s: schedules diverge\n degenerate %v\n embedded   %v",
					name, oname, want.Schedule.Start, got.Schedule.Start)
			}
			if !reflect.DeepEqual(got.Profile.Segs, want.Profile.Segs) {
				t.Fatalf("%s/%s: profiles diverge", name, oname)
			}
			if got.Stats != want.Stats {
				t.Fatalf("%s/%s: stats diverge: %+v vs %+v", name, oname, got.Stats, want.Stats)
			}
			if got.Finish() != want.Finish() ||
				math.Float64bits(got.EnergyCost()) != math.Float64bits(want.EnergyCost()) ||
				math.Float64bits(got.Utilization()) != math.Float64bits(want.Utilization()) {
				t.Fatalf("%s/%s: metrics diverge", name, oname)
			}
			// The embedded run must also certify under the assignment
			// view, with every task on its resource's machine.
			if rep := verify.CheckAssigned(emb, got.Schedule, got.Assignment); !rep.OK() {
				t.Fatalf("%s/%s: embedded schedule invalid: %v", name, oname, rep.Err())
			}
		}
	}
}

// TestHeteroDifferentialVsExact cross-checks the heterogeneous pipeline
// against the exact (assignment x level x start) enumeration over the
// random corpus and the whole option matrix:
//
//   - every heuristic schedule must pass the independent oracle under
//     its assignment (machine conflicts included);
//   - no heuristic finish may beat the proven optimal finish;
//   - the heuristic must hit the exact optimum on a healthy fraction of
//     instances (it is a greedy EFT search, not an optimizer, but a
//     collapse below the floor means the choice branching broke);
//   - all Workers values must agree byte-for-byte (the portfolio
//     reduction is a total order, machines or not).
func TestHeteroDifferentialVsExact(t *testing.T) {
	const seeds = 40
	solved, optimal := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		p := genHeteroProblem(seed)
		var workerRef *Result
		for oi, opts := range heteroOptions() {
			r, err := Run(p.Clone(), opts)
			if err != nil {
				continue
			}
			if rep := verify.CheckAssigned(p, r.Schedule, r.Assignment); !rep.OK() {
				t.Fatalf("seed %d opts %d: heuristic schedule invalid: %v", seed, oi, rep.Err())
			}
			if len(r.Assignment) != len(p.Tasks) {
				t.Fatalf("seed %d opts %d: assignment has %d entries for %d tasks",
					seed, oi, len(r.Assignment), len(p.Tasks))
			}
			if opts.Restarts == 8 {
				if workerRef == nil {
					workerRef = r
				} else if !r.Schedule.Equal(workerRef.Schedule) ||
					!reflect.DeepEqual(r.Assignment, workerRef.Assignment) ||
					!reflect.DeepEqual(r.Profile.Segs, workerRef.Profile.Segs) {
					t.Fatalf("seed %d: Workers=%d diverged from the single-worker portfolio",
						seed, opts.Workers)
				}
			}
		}

		r, err := Run(p.Clone(), Options{})
		if err != nil {
			continue
		}
		sol, err := exact.Solve(p.Clone(), exact.MinFinish, exact.Config{})
		if err != nil {
			t.Fatalf("seed %d: exact solver failed on a heuristically schedulable problem: %v", seed, err)
		}
		if !sol.Optimal {
			continue
		}
		solved++
		if rep := verify.CheckAssigned(p, sol.Schedule, sol.Assignment); !rep.OK() {
			t.Fatalf("seed %d: exact optimum invalid: %v", seed, rep.Err())
		}
		if r.Finish() < sol.Finish {
			t.Fatalf("seed %d: heuristic finish %d beats proven optimum %d", seed, r.Finish(), sol.Finish)
		}
		if r.Finish() == sol.Finish {
			optimal++
		}
	}
	if solved < seeds/2 {
		t.Fatalf("only %d/%d instances fully cross-checked; generator or budgets drifted", solved, seeds)
	}
	if optimal < solved/3 {
		t.Fatalf("heuristic matched the optimum on only %d/%d solved instances", optimal, solved)
	}
}

// TestHeteroBothPaths runs the incremental-vs-naive differential over
// the heterogeneous corpus: the incremental core must be bit-exact in
// the presence of assignment moves and effective task views too.
func TestHeteroBothPaths(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := genHeteroProblem(seed)
		for oi, opts := range diffOptions() {
			assertBothPaths(t, fmt.Sprintf("hetero seed %d opts %d", seed, oi), p, opts)
		}
	}
}

// TestHeteroSpecRoundTrip drives the heterogeneous dimension through
// the spec front-end: machine/level/pin directives parse, format, and
// re-parse to the same problem, and the parsed problem schedules.
func TestHeteroSpecRoundTrip(t *testing.T) {
	const src = `
problem hetero-pair
pmax 20
pmin 4

machine fast 2 1.5
machine slow 1 1

task a cpu 4 6
task b cpu 3 5
task c dsp 6 4
level a 1 6
level a 1.5 3.5
pin c slow

precede a b
`
	p, err := spec.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Heterogeneous() || len(p.Machines) != 2 || len(p.Tasks[0].Levels) != 2 || p.Tasks[2].Machine != "slow" {
		t.Fatalf("parse mismatch: %+v", p)
	}
	q, err := spec.ParseString(spec.Format(p))
	if err != nil {
		t.Fatalf("formatted spec does not re-parse: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip diverged:\n first  %+v\n second %+v", p, q)
	}
	r, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.CheckAssigned(p, r.Schedule, r.Assignment); !rep.OK() {
		t.Fatal(rep.Err())
	}
}
