package sched

import (
	"fmt"
	"testing"
)

// TestEpochBankReuseRace: a worker's state — and with it the
// epoch-stamped skip set fixSpike marks infeasible delays in, the
// relaxation undo journal, the slack cache, and the tracker's banks and
// segment index — is reused across every restart that worker runs,
// self-cleaning by epoch bump or truncation rather than a wholesale
// zeroing pass. A stale mark or journal entry surviving into the next
// restart would steer it to a different schedule and break the
// portfolio's deterministic reduction, so hammer portfolios that
// exercise the marking paths (spiky homogeneous and heterogeneous
// instances, with and without compaction) and require the exact
// sequential outcome from every parallel run. Under -race (the CI test
// job) this also proves no bank is shared between concurrently running
// worker states.
func TestEpochBankReuseRace(t *testing.T) {
	cases := []struct {
		name string
		seed int64
	}{
		{"layered", 11},
		{"layered", 17},
		{"hetero", 5},
	}
	iters := 3
	if testing.Short() {
		iters = 1
	}
	for _, tc := range cases {
		p := genProblem(tc.seed)
		if tc.name == "hetero" {
			p = genHeteroProblem(tc.seed)
		}
		for _, compact := range []bool{false, true} {
			opts := Options{Seed: tc.seed, Restarts: 24, Workers: 1, Compact: compact}
			want, err := MinPower(p, opts)
			if err != nil {
				t.Fatalf("%s/seed=%d: sequential portfolio failed: %v", tc.name, tc.seed, err)
			}
			for i := 0; i < iters; i++ {
				opts.Workers = 6
				got, err := MinPower(p, opts)
				if err != nil {
					t.Fatalf("%s/seed=%d iter %d: parallel portfolio failed: %v", tc.name, tc.seed, i, err)
				}
				label := fmt.Sprintf("%s/seed=%d/compact=%v/iter=%d", tc.name, tc.seed, compact, i)
				equalResults(t, label, got, want)
			}
		}
	}
}
