package service

import (
	"container/list"
	"expvar"
)

// lruCache is a plain LRU over string keys. It is not safe for
// concurrent use; Service serializes access under its mutex.
type lruCache struct {
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions *expvar.Int
}

type lruEntry struct {
	key string
	val any
}

// newLRU creates a cache holding up to capacity entries. Capacity 0
// disables caching: add is a no-op and get always misses.
func newLRU(capacity int, evictions *expvar.Int) *lruCache {
	return &lruCache{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		evictions: evictions,
	}
}

func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(key string, val any) {
	if c.cap == 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
