package service

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// blockingMemo starts a compute on svc that parks until release is
// closed, and returns once the compute is definitely holding its
// worker slot.
func blockingMemo(t *testing.T, svc *Service, key string, release <-chan struct{}) (done <-chan error) {
	t.Helper()
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := svc.MemoCtx(context.Background(), key, func(context.Context) (any, error) {
			close(started)
			<-release
			return key, nil
		})
		errc <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("compute never started")
	}
	return errc
}

// TestOverloadShedsImmediately: with one worker busy and no wait queue,
// a second distinct request is rejected with ErrOverloaded without
// blocking, and the shed counter moves.
func TestOverloadShedsImmediately(t *testing.T) {
	svc := New(Config{Workers: 1, MaxQueue: -1})
	release := make(chan struct{})
	done := blockingMemo(t, svc, "slow", release)

	_, err := svc.ScheduleCtx(context.Background(), twoTask(0), sched.Options{}, StageTiming)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := svc.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocked compute failed: %v", err)
	}
	// With the worker free again the identical request now succeeds.
	if _, err := svc.ScheduleCtx(context.Background(), twoTask(0), sched.Options{}, StageTiming); err != nil {
		t.Fatalf("post-overload retry failed: %v", err)
	}
}

// TestBoundedQueueAdmitsThenSheds: one slot in the queue lets exactly
// one extra request wait; the next one sheds.
func TestBoundedQueueAdmitsThenSheds(t *testing.T) {
	svc := New(Config{Workers: 1, MaxQueue: 1})
	release := make(chan struct{})
	done := blockingMemo(t, svc, "slow", release)

	queuedErr := make(chan error, 1)
	go func() {
		_, err := svc.MemoCtx(context.Background(), "queued", func(context.Context) (any, error) { return 1, nil })
		queuedErr <- err
	}()
	// Wait for the second request to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.MemoCtx(context.Background(), "third", func(context.Context) (any, error) { return 2, nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third request: err = %v, want ErrOverloaded", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
	if st := svc.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
}

// TestDefaultTimeoutBudget: a caller without a deadline inherits the
// service's default budget and gets DeadlineExceeded when the compute
// outlives it; the abandoned compute's context is canceled.
func TestDefaultTimeoutBudget(t *testing.T) {
	svc := New(Config{DefaultTimeout: 20 * time.Millisecond})
	computeCanceled := make(chan struct{})
	start := time.Now()
	_, err := svc.MemoCtx(context.Background(), "slow", func(cctx context.Context) (any, error) {
		<-cctx.Done()
		close(computeCanceled)
		return nil, cctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	select {
	case <-computeCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned compute was never canceled")
	}
	if st := svc.Stats(); st.DeadlineExceeded != 1 {
		t.Errorf("deadline_exceeded = %d, want 1", st.DeadlineExceeded)
	}
}

// TestPanicContainment: a panicking compute yields ErrInternal (with
// the panic value in the message), counts in the panics metric with a
// captured stack, is never cached, and leaves the service serving.
func TestPanicContainment(t *testing.T) {
	svc := New(Config{})
	_, err := svc.Memo("boom", func() (any, error) { panic("kaboom") })
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error %q does not name the panic value", err)
	}
	st := svc.Stats()
	if st.Panics != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 panic and nothing cached", st)
	}
	if stack := svc.Vars().Get("last_panic").String(); !strings.Contains(stack, "kaboom") {
		t.Errorf("last_panic does not carry the stack: %q", stack)
	}
	// Same key afterwards: the crash was not cached, the retry runs.
	v, err := svc.Memo("boom", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry after panic = %v, %v", v, err)
	}
}

// TestSingleflightSharedCancelSemantics: one caller abandoning a
// shared flight gets its own context error immediately while the other
// caller still receives the computed value; the compute runs once.
func TestSingleflightSharedCancelSemantics(t *testing.T) {
	svc := New(Config{})
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	bg := make(chan error, 1)
	var bgVal atomic.Value
	go func() {
		v, err := svc.MemoCtx(context.Background(), "shared", func(context.Context) (any, error) {
			computes.Add(1)
			close(started)
			<-release
			return "value", nil
		})
		if v != nil {
			bgVal.Store(v)
		}
		bg <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	joined := make(chan error, 1)
	go func() {
		_, err := svc.MemoCtx(ctx, "shared", func(context.Context) (any, error) {
			computes.Add(1)
			return "second-compute", nil
		})
		joined <- err
	}()
	// Wait for the join to register, then abandon it.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Joins == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second caller never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-joined; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller: err = %v, want Canceled", err)
	}
	// The shared compute must not have been disturbed.
	close(release)
	if err := <-bg; err != nil {
		t.Fatalf("remaining caller: %v", err)
	}
	if v := bgVal.Load(); v != "value" {
		t.Fatalf("remaining caller got %v, want the shared value", v)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1", n)
	}
	if st := svc.Stats(); st.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", st.Canceled)
	}
}

// TestLastWaiterCancelsAndNothingIsCached: when the only caller leaves,
// the compute's context is canceled, its (aborted) outcome is not
// cached, and an identical follow-up request computes fresh.
func TestLastWaiterCancelsAndNothingIsCached(t *testing.T) {
	svc := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	observed := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := svc.MemoCtx(ctx, "solo", func(cctx context.Context) (any, error) {
			cancel() // the only waiter leaves mid-compute
			<-cctx.Done()
			close(observed)
			return "stale-partial", nil // completes anyway — must not be cached
		})
		errc <- err
	}()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context was not canceled by the last waiter leaving")
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Entries != 0 {
		t.Fatalf("canceled compute was cached: %+v", st)
	}
	v, err := svc.MemoCtx(context.Background(), "solo", func(context.Context) (any, error) { return "fresh", nil })
	if err != nil || v != "fresh" {
		t.Fatalf("follow-up = %v, %v; want fresh compute", v, err)
	}
}

// TestDrain: Drain times out while a compute is in flight and returns
// promptly once it finishes.
func TestDrain(t *testing.T) {
	svc := New(Config{})
	release := make(chan struct{})
	done := blockingMemo(t, svc, "slow", release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with busy compute = %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after completion = %v", err)
	}
}

// TestScheduleBatchCtxCancellation: a canceled batch marks unsubmitted
// entries with the context's error instead of hanging or leaking.
func TestScheduleBatchCtxCancellation(t *testing.T) {
	svc := New(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Problem: twoTask(i), Stage: StageTiming}
	}
	resps := svc.ScheduleBatchCtx(ctx, reqs)
	for i, r := range resps {
		if r.Err == nil && r.Result == nil {
			t.Errorf("entry %d has neither result nor error", i)
		}
	}
}
