package service

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/schedule"
)

// BlobStore is the persistent second-level cache interface, satisfied
// by *store.Store. The service treats it as a byte-addressed L2 under
// the in-memory LRU: on an L1 miss it probes the store before
// computing, and every clean compute is written through. Keys are the
// same content-addressed strings as the LRU's (problem fingerprint +
// stage + options digest), so a store outlives process restarts and
// can be consulted by any replica — the pipeline is deterministic, so
// a record written by one process is byte-for-byte the record any
// other process would have written.
type BlobStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) error
	Len() int
	Size() int64
}

// storeKeyPrefix version-tags persisted records: the payload is a gob
// encoding of portableResult, so any change to that struct must bump
// the prefix (old records then simply miss and are recomputed).
const storeKeyPrefix = "sr1/"

// portableResult is the persisted subset of sched.Result: the decision
// variables (start times, machine/level assignment) plus the outputs
// that must survive byte-for-byte (power profile segments — the
// pipeline's float accumulation order is part of the contract — and
// the heuristic-effort stats). Everything else in a Result is
// recomputed deterministically from the problem at rehydration.
type portableResult struct {
	Start      []model.Time
	Segs       []power.Segment
	Stats      sched.Stats
	Tasks      []model.Task // effective task view; nil when degenerate
	Assignment model.Assignment
}

// encodeResult serializes a computed result for the store.
func encodeResult(res *sched.Result) ([]byte, error) {
	pr := portableResult{
		Start: res.Schedule.Start,
		Segs:  res.Profile.Segs,
		Stats: res.Stats,
	}
	if res.Compiled.Hetero {
		pr.Tasks = res.Tasks
		pr.Assignment = res.Assignment
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&pr); err != nil {
		return nil, fmt.Errorf("service: encode result: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeResult rehydrates a persisted record into a *sched.Result for
// problem p. The problem is compiled afresh (cheap and deterministic);
// the profile and stats are restored verbatim rather than recomputed,
// so a rehydrated result is indistinguishable from the original to
// every service consumer. Result.Graph is the one exception: the
// search's working constraint graph is not persisted and stays nil —
// no consumer outside the sched package reads it.
//
// Any decode or shape mismatch (e.g. a record written for a different
// problem revision that happened to collide) returns an error and the
// caller treats it as a store miss.
func decodeResult(p *model.Problem, data []byte) (*sched.Result, error) {
	var pr portableResult
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&pr); err != nil {
		return nil, fmt.Errorf("service: decode result: %w", err)
	}
	q := p.Clone()
	comp, err := schedule.Compile(q)
	if err != nil {
		return nil, fmt.Errorf("service: rehydrate compile: %w", err)
	}
	if len(pr.Start) != len(q.Tasks) {
		return nil, fmt.Errorf("service: rehydrate: %d starts for a %d-task problem", len(pr.Start), len(q.Tasks))
	}
	tasks := pr.Tasks
	if tasks == nil {
		tasks = comp.Prob.Tasks
	} else if len(tasks) != len(q.Tasks) {
		return nil, fmt.Errorf("service: rehydrate: %d effective tasks for a %d-task problem", len(tasks), len(q.Tasks))
	}
	return &sched.Result{
		Compiled:   comp,
		Schedule:   schedule.Schedule{Start: pr.Start},
		Profile:    power.Profile{Segs: pr.Segs},
		Stats:      pr.Stats,
		Tasks:      tasks,
		Assignment: pr.Assignment,
	}, nil
}

// persistCodec carries a request's L2 hooks through do into compute.
// It is nil for requests that have no persistent representation (Memo
// flights, or a service without a store).
type persistCodec struct {
	key    string                    // store key (version-prefixed cache key)
	decode func([]byte) (any, error) // store hit -> live value
	encode func(any) ([]byte, error) // computed value -> store record
}

// scheduleCodec builds the L2 codec for a Schedule request on problem
// p. The closure keeps p alive only until the request resolves.
func (s *Service) scheduleCodec(key string, p *model.Problem) *persistCodec {
	if s.store == nil {
		return nil
	}
	return &persistCodec{
		key: storeKeyPrefix + key,
		decode: func(data []byte) (any, error) {
			return decodeResult(p, data)
		},
		encode: func(v any) ([]byte, error) {
			return encodeResult(v.(*sched.Result))
		},
	}
}
