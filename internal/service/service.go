// Package service is the shared scheduling service layer: a
// concurrency-safe front for the sched pipeline that every entry point
// (web handlers, CLI sweeps, the mission simulator) routes through.
//
// The pipeline is deterministic for a given (problem, options, stage)
// triple, so results are content-addressed: the cache key is a
// canonical hash of the problem (model.Problem.Fingerprint), the
// scheduler options, and the pipeline stage. Around that key the
// service layers
//
//   - an LRU result cache, so repeated queries cost a map lookup;
//   - singleflight deduplication, so concurrent identical requests
//     compute once and share the result; and
//   - a bounded worker pool for batch submission (sweeps, grids).
//
// On top of the cache the service is the system's resilience boundary:
//
//   - every request carries a context.Context threaded into the sched
//     pipeline's cooperative cancellation checks, with an optional
//     default deadline budget (Config.DefaultTimeout);
//   - computes run on a bounded set of worker slots behind a bounded
//     wait queue; when both are full the request is shed immediately
//     with ErrOverloaded instead of queueing without bound;
//   - a panic anywhere in the pipeline is contained here and converted
//     into an error wrapping ErrInternal (stack captured into metrics,
//     process keeps serving); and
//   - cancellation is singleflight-aware: a waiter that leaves a
//     shared flight does not disturb the others, and only when the
//     last waiter leaves is the underlying compute canceled. Canceled
//     and crashed computes are never cached.
//
// Everything observable is counted in expvar-backed metrics (hits,
// misses, singleflight joins, evictions, inflight computes, canceled /
// deadline-exceeded / shed / panicked requests, and compute
// nanoseconds per pipeline stage), exportable at /debug/vars and as a
// /stats JSON snapshot.
//
// Cached *sched.Result values are shared between callers and must be
// treated as immutable.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/sched"
)

// Stage selects how much of the scheduling pipeline a request runs.
type Stage int

const (
	// StageTiming runs only the timing scheduler (paper Fig. 3).
	StageTiming Stage = iota
	// StageMaxPower adds max-power spike elimination (Fig. 4).
	StageMaxPower
	// StageMinPower runs the full pipeline (Fig. 6).
	StageMinPower
)

func (s Stage) String() string {
	switch s {
	case StageTiming:
		return "timing"
	case StageMaxPower:
		return "maxpower"
	case StageMinPower:
		return "minpower"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// ParseStage maps the web API's stage names onto Stage values. The
// empty string selects the full pipeline, matching the /schedule
// endpoint's historical default.
func ParseStage(s string) (Stage, error) {
	switch s {
	case "", "minpower":
		return StageMinPower, nil
	case "maxpower":
		return StageMaxPower, nil
	case "timing":
		return StageTiming, nil
	}
	return 0, fmt.Errorf("service: unknown stage %q", s)
}

// Config tunes a Service. The zero value selects sensible defaults.
type Config struct {
	// CacheSize bounds the number of cached results (default 1024).
	// Negative disables caching (singleflight still applies).
	CacheSize int
	// Workers bounds both the batch worker pool and the number of
	// concurrently running computes (default GOMAXPROCS).
	Workers int
	// MaxQueue bounds how many compute requests may wait for a free
	// worker slot before further ones are shed with ErrOverloaded
	// (default 8x Workers; negative disables waiting entirely, so any
	// request arriving while every worker is busy is shed).
	MaxQueue int
	// DefaultTimeout is the per-request compute budget applied when
	// the caller's context carries no deadline of its own (0 = none).
	DefaultTimeout time.Duration
	// Store is an optional persistent second-level cache (see
	// BlobStore): probed on LRU misses, written through on every clean
	// compute. Nil disables the tier. The store's records are
	// content-addressed by the same keys as the LRU, so it may be
	// shared across restarts (warm start) but must not be shared by
	// two live processes.
	Store BlobStore
}

// Service fronts the scheduling pipeline with a content-addressed
// cache, singleflight deduplication, and a batch worker pool. Create
// one with New; the zero value is not usable.
type Service struct {
	mu       sync.Mutex
	cache    *lruCache
	inflight map[string]*call
	pool     *Pool
	met      metrics

	// slots bounds concurrently running computes; queued counts
	// requests waiting for a slot (guarded by mu, bounded by
	// maxQueue). wg tracks live compute goroutines for Drain.
	slots          chan struct{}
	queued         int
	maxQueue       int
	defaultTimeout time.Duration
	wg             sync.WaitGroup

	// store is the optional persistent L2 (nil = disabled); started
	// anchors the uptime metrics (its monotonic reading survives wall
	// clock adjustments).
	store   BlobStore
	started time.Time
}

// call is one in-flight computation; waiters block on done. waiters is
// the flight's refcount (guarded by Service.mu): every joiner
// increments it, a waiter abandoning the flight decrements it, and the
// last one to leave cancels the compute's context.
type call struct {
	done    chan struct{}
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

// New creates a Service.
func New(cfg Config) *Service {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.CacheSize < 0 {
		cfg.CacheSize = 0
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 8 * cfg.Workers
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	s := &Service{
		inflight:       make(map[string]*call),
		pool:           NewPool(cfg.Workers),
		slots:          make(chan struct{}, cfg.Workers),
		maxQueue:       cfg.MaxQueue,
		defaultTimeout: cfg.DefaultTimeout,
		store:          cfg.Store,
		started:        time.Now(),
	}
	s.cache = newLRU(cfg.CacheSize, &s.met.evictions)
	return s
}

var (
	sharedOnce sync.Once
	shared     *Service
)

// Shared returns the process-wide default service, created on first
// use. Components that are not handed an explicit Service (mission
// policies, facade helpers) route through it so their results are
// deduplicated with everyone else's.
func Shared() *Service {
	sharedOnce.Do(func() { shared = New(Config{}) })
	return shared
}

// Key derives the content-addressed cache key for a request. Two
// requests with equal problems (field-for-field, in order), equal
// options, and the same stage always collide; any difference
// separates them. Options are hashed before default-filling, so the
// zero Options and an explicitly spelled-out default produce distinct
// keys (both deterministic, so at worst one redundant compute).
func Key(p *model.Problem, opts sched.Options, stage Stage) string {
	return KeyFP(p.Fingerprint(), opts, stage)
}

// KeyFP is Key for callers that already hold the problem's fingerprint
// (hot loops like fault campaigns fingerprint each residual problem
// once and reuse it across the three pipeline stages).
func KeyFP(fp string, opts sched.Options, stage Stage) string {
	return fmt.Sprintf("%s/%s/%x", fp, stage, optsDigest(opts))
}

// Schedule runs the pipeline up to stage for the problem under opts,
// serving from the cache when possible and deduplicating concurrent
// identical requests. The returned result is shared: do not mutate it.
//
// The problem is cloned before computing, so later caller-side
// mutation of p cannot corrupt cached results.
func (s *Service) Schedule(p *model.Problem, opts sched.Options, stage Stage) (*sched.Result, error) {
	return s.ScheduleCtx(context.Background(), p, opts, stage)
}

// ScheduleCtx is Schedule under a context. Cache hits and singleflight
// joins are unaffected by load; a request that must compute is subject
// to admission control (ErrOverloaded when every worker is busy and
// the wait queue is full), the default deadline budget, and
// cooperative cancellation inside the pipeline. A caller abandoning a
// shared flight gets its context's error immediately; the flight keeps
// computing for the remaining waiters and is canceled only when the
// last one leaves.
func (s *Service) ScheduleCtx(ctx context.Context, p *model.Problem, opts sched.Options, stage Stage) (*sched.Result, error) {
	return s.ScheduleFPCtx(ctx, p.Fingerprint(), p, opts, stage)
}

// ScheduleFPCtx is ScheduleCtx for callers that already computed the
// problem's fingerprint: fp must equal p.Fingerprint(). It exists for
// hot loops that hit all three pipeline stages for one problem —
// fingerprinting is a canonical serialization plus a hash, and doing
// it once instead of three times is a measurable win per contingency.
func (s *Service) ScheduleFPCtx(ctx context.Context, fp string, p *model.Problem, opts sched.Options, stage Stage) (*sched.Result, error) {
	key := KeyFP(fp, opts, stage)
	v, err := s.do(ctx, key, stage.String(), s.scheduleCodec(key, p), func(cctx context.Context) (any, error) {
		q := p.Clone()
		switch stage {
		case StageTiming:
			return sched.TimingCtx(cctx, q, opts)
		case StageMaxPower:
			return sched.MaxPowerCtx(cctx, q, opts)
		case StageMinPower:
			return sched.MinPowerCtx(cctx, q, opts)
		}
		return nil, fmt.Errorf("service: unknown stage %d", int(stage))
	})
	if err != nil {
		return nil, err
	}
	return v.(*sched.Result), nil
}

// Memo runs fn at most once per key, caching its value alongside
// scheduling results (same LRU, same singleflight, metrics bucketed
// under "memo"). It exists for derived computations that are
// deterministic in some content-addressed key but are not a bare
// pipeline run — e.g. the mission policies' per-condition iteration
// summaries. Keys are namespaced apart from Schedule's internally.
func (s *Service) Memo(key string, fn func() (any, error)) (any, error) {
	return s.MemoCtx(context.Background(), key, func(context.Context) (any, error) { return fn() })
}

// MemoCtx is Memo under a context: fn receives the flight's compute
// context (detached from any single caller, canceled when the last
// waiter leaves) and should poll it if it runs long.
func (s *Service) MemoCtx(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error) {
	return s.do(ctx, "memo:"+key, "memo", nil, fn)
}

// testHook is the chaos-test injection point: when set, every compute
// invokes it with the request's cache key, inside the panic-containment
// boundary and before the pipeline runs. Tests inject latency (to hold
// worker slots) and panics (to exercise containment) through it.
var testHook atomic.Pointer[func(string)]

// TestingSetComputeHook installs fn as the compute-entry hook and
// returns a function restoring the previous hook. It exists so chaos
// tests (including internal/web's) can simulate slow and crashing
// pipelines; production code must never call it.
func TestingSetComputeHook(fn func(key string)) (restore func()) {
	var p *func(string)
	if fn != nil {
		p = &fn
	}
	prev := testHook.Swap(p)
	return func() { testHook.Store(prev) }
}

// withBudget applies the service's default deadline to contexts that
// do not already carry one.
func (s *Service) withBudget(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.defaultTimeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.defaultTimeout)
}

// acquireCompute reserves a compute worker slot. The fast path takes a
// free slot immediately; otherwise the request waits in a queue
// bounded by Config.MaxQueue. A full queue sheds the request with
// ErrOverloaded; a context expiring in the queue returns its error.
// The slot is released by the compute goroutine when it finishes.
func (s *Service) acquireCompute(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	s.mu.Lock()
	if s.queued >= s.maxQueue {
		s.met.shed.Add(1)
		s.mu.Unlock()
		return ErrOverloaded
	}
	s.queued++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
	}()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do is the shared cache + singleflight + admission core. Errors are
// returned to every waiter of the computing flight but are never
// cached: a later identical request retries from scratch.
func (s *Service) do(ctx context.Context, key, bucket string, codec *persistCodec, fn func(context.Context) (any, error)) (any, error) {
	ctx, release := s.withBudget(ctx)
	defer release()
	if err := ctx.Err(); err != nil {
		s.met.countCtxErr(err)
		return nil, err
	}
	s.mu.Lock()
	if v, ok := s.cache.get(key); ok {
		s.met.hits.Add(1)
		s.mu.Unlock()
		return v, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.met.joins.Add(1)
		c.waiters++
		s.mu.Unlock()
		return s.wait(ctx, key, c)
	}
	s.mu.Unlock()

	// L2 probe: a persisted result skips admission control entirely —
	// rehydration is a disk read plus a compile, orders of magnitude
	// cheaper than the pipeline. An undecodable record degrades to a
	// miss. Two racing probes may both rehydrate and both fill L1;
	// that is benign (identical content, last write wins).
	if codec != nil {
		if data, ok := s.store.Get(codec.key); ok {
			if v, err := codec.decode(data); err == nil {
				s.met.hitsL2.Add(1)
				s.mu.Lock()
				s.cache.add(key, v)
				s.mu.Unlock()
				return v, nil
			}
		}
	}

	// No cached value and no flight to join: this request must
	// compute, so it passes admission control before becoming a flight
	// owner. Shedding happens here, before anyone can join, so joined
	// waiters never inherit another caller's overload rejection.
	if err := s.acquireCompute(ctx); err != nil {
		if !errors.Is(err, ErrOverloaded) {
			s.met.countCtxErr(err)
		}
		return nil, err
	}
	s.mu.Lock()
	// Re-check: the cache or another flight may have filled in while
	// this request waited for its slot.
	if v, ok := s.cache.get(key); ok {
		s.met.hits.Add(1)
		s.mu.Unlock()
		<-s.slots
		return v, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.met.joins.Add(1)
		c.waiters++
		s.mu.Unlock()
		<-s.slots
		return s.wait(ctx, key, c)
	}
	// The compute context is detached from this caller's cancellation
	// (other waiters may join the flight) but is canceled by the last
	// waiter to leave, so an abandoned compute stops within one of the
	// pipeline's cancellation-check intervals.
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &call{done: make(chan struct{}), cancel: cancel, waiters: 1}
	s.inflight[key] = c
	s.met.misses.Add(1)
	s.met.inflight.Add(1)
	s.wg.Add(1)
	s.mu.Unlock()
	go s.compute(cctx, key, bucket, codec, c, fn)
	return s.wait(ctx, key, c)
}

// compute runs one flight on a reserved worker slot. Panics are
// contained here: the stack goes into the metrics, the waiters get an
// error wrapping ErrInternal, and the process keeps serving. Only a
// compute that finished cleanly and was never canceled may populate
// the cache.
func (s *Service) compute(ctx context.Context, key, bucket string, codec *persistCodec, c *call, fn func(context.Context) (any, error)) {
	defer s.wg.Done()
	defer func() { <-s.slots }()
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.met.recordPanic(r, debug.Stack())
				c.val, c.err = nil, fmt.Errorf("%w: compute panicked: %v", ErrInternal, r)
			}
		}()
		if hook := testHook.Load(); hook != nil {
			(*hook)(key)
		}
		c.val, c.err = fn(ctx)
	}()
	elapsed := time.Since(start)

	s.mu.Lock()
	if s.inflight[key] == c {
		delete(s.inflight, key)
	}
	s.met.inflight.Add(-1)
	s.met.computeNS(bucket).Add(int64(elapsed))
	// Never cache a canceled compute, even one that happened to finish
	// between the cancellation and this check: only results every
	// still-interested caller could have observed are cacheable.
	cacheable := c.err == nil && ctx.Err() == nil
	if cacheable {
		s.cache.add(key, c.val)
	}
	s.mu.Unlock()
	// Write-through to the persistent tier outside the lock: the store
	// serializes internally, and an encode or disk failure only costs
	// a future recompute, never the response.
	if cacheable && codec != nil {
		if data, err := codec.encode(c.val); err != nil {
			s.met.storeErrs.Add(1)
		} else if err := s.store.Put(codec.key, data); err != nil {
			s.met.storeErrs.Add(1)
		}
	}
	c.cancel()
	close(c.done)
}

// wait blocks until the flight completes or the caller's context is
// done. A waiter that leaves early decrements the flight's refcount;
// the last waiter to leave removes the flight from the dedup map (so
// new requests start fresh instead of joining a dying compute) and
// cancels the compute's context.
func (s *Service) wait(ctx context.Context, key string, c *call) (any, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		s.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		if last && s.inflight[key] == c {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
		if last {
			c.cancel()
		}
		err := ctx.Err()
		s.met.countCtxErr(err)
		return nil, err
	}
}

// Drain blocks until every in-flight compute goroutine has finished,
// or until ctx is done. Graceful shutdown calls it after the HTTP
// server stops accepting requests, so no pipeline work is abandoned
// mid-flight by process exit.
func (s *Service) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Request is one entry of a batch submission.
type Request struct {
	Problem *model.Problem
	Opts    sched.Options
	Stage   Stage
}

// Response pairs a batch entry's result with its error.
type Response struct {
	Result *sched.Result
	Err    error
}

// ScheduleBatch evaluates all requests on the service's bounded worker
// pool and returns responses in request order. Identical requests
// (within the batch or across callers) are deduplicated by the cache
// and singleflight exactly like sequential calls.
func (s *Service) ScheduleBatch(reqs []Request) []Response {
	return s.ScheduleBatchCtx(context.Background(), reqs)
}

// ScheduleBatchCtx is ScheduleBatch under a context: cancellation
// stops further submission, aborts the in-flight entries through their
// pipelines' cooperative checks, and marks every unevaluated entry
// with the context's error. The batch pool fans out at most Workers
// entries at once, each of which then takes a compute slot, so a batch
// cannot trip its own service's admission control.
func (s *Service) ScheduleBatchCtx(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	ran := make([]bool, len(reqs))
	err := s.pool.ForEachCtx(ctx, len(reqs), func(i int) {
		ran[i] = true
		out[i].Result, out[i].Err = s.ScheduleCtx(ctx, reqs[i].Problem, reqs[i].Opts, reqs[i].Stage)
	})
	if err != nil {
		for i := range out {
			if !ran[i] {
				out[i].Err = err
			}
		}
	}
	return out
}

// Pool exposes the service's worker pool for callers that batch
// non-scheduling work (e.g. evaluating design points).
func (s *Service) Pool() *Pool { return s.pool }
