// Package service is the shared scheduling service layer: a
// concurrency-safe front for the sched pipeline that every entry point
// (web handlers, CLI sweeps, the mission simulator) routes through.
//
// The pipeline is deterministic for a given (problem, options, stage)
// triple, so results are content-addressed: the cache key is a
// canonical hash of the problem (model.Problem.Fingerprint), the
// scheduler options, and the pipeline stage. Around that key the
// service layers
//
//   - an LRU result cache, so repeated queries cost a map lookup;
//   - singleflight deduplication, so concurrent identical requests
//     compute once and share the result; and
//   - a bounded worker pool for batch submission (sweeps, grids).
//
// Everything observable is counted in expvar-backed metrics (hits,
// misses, singleflight joins, evictions, inflight computes, and
// compute nanoseconds per pipeline stage), exportable at /debug/vars
// and as a /stats JSON snapshot.
//
// Cached *sched.Result values are shared between callers and must be
// treated as immutable.
package service

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/sched"
)

// Stage selects how much of the scheduling pipeline a request runs.
type Stage int

const (
	// StageTiming runs only the timing scheduler (paper Fig. 3).
	StageTiming Stage = iota
	// StageMaxPower adds max-power spike elimination (Fig. 4).
	StageMaxPower
	// StageMinPower runs the full pipeline (Fig. 6).
	StageMinPower
)

func (s Stage) String() string {
	switch s {
	case StageTiming:
		return "timing"
	case StageMaxPower:
		return "maxpower"
	case StageMinPower:
		return "minpower"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// ParseStage maps the web API's stage names onto Stage values. The
// empty string selects the full pipeline, matching the /schedule
// endpoint's historical default.
func ParseStage(s string) (Stage, error) {
	switch s {
	case "", "minpower":
		return StageMinPower, nil
	case "maxpower":
		return StageMaxPower, nil
	case "timing":
		return StageTiming, nil
	}
	return 0, fmt.Errorf("service: unknown stage %q", s)
}

// Config tunes a Service. The zero value selects sensible defaults.
type Config struct {
	// CacheSize bounds the number of cached results (default 1024).
	// Negative disables caching (singleflight still applies).
	CacheSize int
	// Workers bounds the batch worker pool (default GOMAXPROCS).
	Workers int
}

// Service fronts the scheduling pipeline with a content-addressed
// cache, singleflight deduplication, and a batch worker pool. Create
// one with New; the zero value is not usable.
type Service struct {
	mu       sync.Mutex
	cache    *lruCache
	inflight map[string]*call
	pool     *Pool
	met      metrics
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// New creates a Service.
func New(cfg Config) *Service {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.CacheSize < 0 {
		cfg.CacheSize = 0
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		inflight: make(map[string]*call),
		pool:     NewPool(cfg.Workers),
	}
	s.cache = newLRU(cfg.CacheSize, &s.met.evictions)
	return s
}

var (
	sharedOnce sync.Once
	shared     *Service
)

// Shared returns the process-wide default service, created on first
// use. Components that are not handed an explicit Service (mission
// policies, facade helpers) route through it so their results are
// deduplicated with everyone else's.
func Shared() *Service {
	sharedOnce.Do(func() { shared = New(Config{}) })
	return shared
}

// Key derives the content-addressed cache key for a request. Two
// requests with equal problems (field-for-field, in order), equal
// options, and the same stage always collide; any difference
// separates them. Options are hashed before default-filling, so the
// zero Options and an explicitly spelled-out default produce distinct
// keys (both deterministic, so at worst one redundant compute).
func Key(p *model.Problem, opts sched.Options, stage Stage) string {
	return fmt.Sprintf("%s/%s/%x", p.Fingerprint(), stage, optsDigest(opts))
}

// Schedule runs the pipeline up to stage for the problem under opts,
// serving from the cache when possible and deduplicating concurrent
// identical requests. The returned result is shared: do not mutate it.
//
// The problem is cloned before computing, so later caller-side
// mutation of p cannot corrupt cached results.
func (s *Service) Schedule(p *model.Problem, opts sched.Options, stage Stage) (*sched.Result, error) {
	v, err := s.do(Key(p, opts, stage), stage.String(), func() (any, error) {
		q := p.Clone()
		switch stage {
		case StageTiming:
			return sched.Timing(q, opts)
		case StageMaxPower:
			return sched.MaxPower(q, opts)
		case StageMinPower:
			return sched.MinPower(q, opts)
		}
		return nil, fmt.Errorf("service: unknown stage %d", int(stage))
	})
	if err != nil {
		return nil, err
	}
	return v.(*sched.Result), nil
}

// Memo runs fn at most once per key, caching its value alongside
// scheduling results (same LRU, same singleflight, metrics bucketed
// under "memo"). It exists for derived computations that are
// deterministic in some content-addressed key but are not a bare
// pipeline run — e.g. the mission policies' per-condition iteration
// summaries. Keys are namespaced apart from Schedule's internally.
func (s *Service) Memo(key string, fn func() (any, error)) (any, error) {
	return s.do("memo:"+key, "memo", fn)
}

// do is the shared cache + singleflight core. Errors are returned to
// every waiter of the computing flight but are not cached: a later
// request retries.
func (s *Service) do(key, bucket string, fn func() (any, error)) (any, error) {
	s.mu.Lock()
	if v, ok := s.cache.get(key); ok {
		s.met.hits.Add(1)
		s.mu.Unlock()
		return v, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.met.joins.Add(1)
		s.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.met.misses.Add(1)
	s.met.inflight.Add(1)
	s.mu.Unlock()

	start := time.Now()
	c.val, c.err = fn()
	elapsed := time.Since(start)

	s.mu.Lock()
	delete(s.inflight, key)
	s.met.inflight.Add(-1)
	s.met.computeNS(bucket).Add(int64(elapsed))
	if c.err == nil {
		s.cache.add(key, c.val)
	}
	s.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// Request is one entry of a batch submission.
type Request struct {
	Problem *model.Problem
	Opts    sched.Options
	Stage   Stage
}

// Response pairs a batch entry's result with its error.
type Response struct {
	Result *sched.Result
	Err    error
}

// ScheduleBatch evaluates all requests on the service's bounded worker
// pool and returns responses in request order. Identical requests
// (within the batch or across callers) are deduplicated by the cache
// and singleflight exactly like sequential calls.
func (s *Service) ScheduleBatch(reqs []Request) []Response {
	out := make([]Response, len(reqs))
	s.pool.ForEach(len(reqs), func(i int) {
		out[i].Result, out[i].Err = s.Schedule(reqs[i].Problem, reqs[i].Opts, reqs[i].Stage)
	})
	return out
}

// Pool exposes the service's worker pool for callers that batch
// non-scheduling work (e.g. evaluating design points).
func (s *Service) Pool() *Pool { return s.pool }
