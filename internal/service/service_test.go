package service

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/spec"
)

// twoTask builds a minimal feasible problem whose content varies with
// the tag, so each tag is a distinct cache key.
func twoTask(tag int) *model.Problem {
	p := &model.Problem{Name: fmt.Sprintf("p%d", tag), Pmax: 10, Pmin: 4}
	p.AddTask(model.Task{Name: "a", Resource: "R", Delay: 2 + tag%3, Power: 4})
	p.AddTask(model.Task{Name: "b", Resource: "S", Delay: 2, Power: 4})
	p.MinSep("a", "b", 1)
	return p
}

func infeasible() *model.Problem {
	p := &model.Problem{Name: "cycle", Pmax: 10}
	p.AddTask(model.Task{Name: "a", Resource: "R", Delay: 2, Power: 1})
	p.AddTask(model.Task{Name: "b", Resource: "S", Delay: 2, Power: 1})
	p.MinSep("a", "b", 9)
	p.MinSep("b", "a", 9)
	return p
}

func TestScheduleCacheMissThenHit(t *testing.T) {
	svc := New(Config{})
	p := paperex.Nine()
	r1, err := svc.Schedule(p, sched.Options{}, StageMinPower)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Schedule(p, sched.Options{}, StageMinPower)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second call did not return the cached result")
	}
	st := svc.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 entry", st)
	}
	if st.ComputeNS["minpower"] <= 0 {
		t.Errorf("compute_ns[minpower] = %d, want > 0", st.ComputeNS["minpower"])
	}
}

func TestScheduleStagesAreDistinctKeys(t *testing.T) {
	svc := New(Config{})
	p := paperex.Nine()
	for _, st := range []Stage{StageTiming, StageMaxPower, StageMinPower} {
		if _, err := svc.Schedule(p, sched.Options{}, st); err != nil {
			t.Fatalf("%s: %v", st, err)
		}
	}
	if st := svc.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 3 misses across stages", st)
	}
}

func TestKeySensitivity(t *testing.T) {
	p := twoTask(0)
	base := Key(p, sched.Options{}, StageMinPower)
	if Key(p, sched.Options{}, StageMinPower) != base {
		t.Error("key is not deterministic")
	}
	if Key(p, sched.Options{}, StageTiming) == base {
		t.Error("stage not part of the key")
	}
	if Key(p, sched.Options{Seed: 1}, StageMinPower) == base {
		t.Error("options not part of the key")
	}
	q := p.Clone()
	q.Pmax++
	if Key(q, sched.Options{}, StageMinPower) == base {
		t.Error("problem content not part of the key")
	}
}

// TestScheduleSingleflight hammers one service from GOMAXPROCS*4
// goroutines with overlapping keys and asserts that (a) every unique
// key computed exactly once and (b) all callers of a key observed
// byte-identical schedules. Run under -race this is also the data-race
// certification for the cache.
func TestScheduleSingleflight(t *testing.T) {
	const uniqueKeys = 3
	goroutines := runtime.GOMAXPROCS(0) * 4
	if goroutines < 8 {
		goroutines = 8
	}
	const perG = 6 // requests per goroutine, cycling over the keys

	svc := New(Config{})
	probs := make([]*model.Problem, uniqueKeys)
	for i := range probs {
		probs[i] = twoTask(i)
	}

	got := make([][][]byte, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		got[g] = make([][]byte, perG)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				p := probs[(g+i)%uniqueKeys]
				r, err := svc.Schedule(p, sched.Options{}, StageMinPower)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				data, err := spec.FormatScheduleJSON(r.Compiled.Prob, r.Schedule)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				got[g][i] = data
			}
		}()
	}
	close(start)
	wg.Wait()

	st := svc.Stats()
	if st.Misses != uniqueKeys {
		t.Errorf("misses = %d, want exactly %d (one compute per unique key)", st.Misses, uniqueKeys)
	}
	total := int64(goroutines * perG)
	if st.Hits+st.Joins+st.Misses != total {
		t.Errorf("hits(%d)+joins(%d)+misses(%d) != %d requests", st.Hits, st.Joins, st.Misses, total)
	}
	// Byte-identical results per key, across all goroutines.
	want := make([][]byte, uniqueKeys)
	for g := range got {
		for i, data := range got[g] {
			k := (g + i) % uniqueKeys
			if want[k] == nil {
				want[k] = data
			} else if !bytes.Equal(want[k], data) {
				t.Fatalf("key %d: divergent schedules:\n%s\nvs\n%s", k, want[k], data)
			}
		}
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	svc := New(Config{})
	var computes atomic.Int64
	goroutines := runtime.GOMAXPROCS(0) * 4
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 4; i++ {
				v, err := svc.Memo("answer", func() (any, error) {
					computes.Add(1)
					return 42, nil
				})
				if err != nil || v.(int) != 42 {
					t.Errorf("memo = %v, %v", v, err)
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("memo fn ran %d times, want 1", n)
	}
}

func TestMemoKeysDoNotCollideWithSchedule(t *testing.T) {
	svc := New(Config{})
	p := paperex.Nine()
	if _, err := svc.Schedule(p, sched.Options{}, StageMinPower); err != nil {
		t.Fatal(err)
	}
	key := Key(p, sched.Options{}, StageMinPower)
	v, err := svc.Memo(key, func() (any, error) { return "memo-value", nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(string); !ok {
		t.Fatalf("memo under a schedule-shaped key returned %T (namespace collision)", v)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	svc := New(Config{})
	p := infeasible()
	for i := 0; i < 2; i++ {
		if _, err := svc.Schedule(p, sched.Options{}, StageMinPower); err == nil {
			t.Fatal("infeasible problem scheduled")
		}
	}
	st := svc.Stats()
	if st.Misses != 2 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 2 misses and 0 entries (errors uncached)", st)
	}
}

func TestLRUEviction(t *testing.T) {
	svc := New(Config{CacheSize: 2})
	for i := 0; i < 3; i++ {
		if _, err := svc.Schedule(twoTask(i), sched.Options{}, StageTiming); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	// Key 0 is the LRU victim: requesting it again recomputes.
	if _, err := svc.Schedule(twoTask(0), sched.Options{}, StageTiming); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Misses != 4 || st.Hits != 0 {
		t.Errorf("stats = %+v, want evicted key to recompute", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	svc := New(Config{CacheSize: -1})
	p := twoTask(0)
	for i := 0; i < 2; i++ {
		if _, err := svc.Schedule(p, sched.Options{}, StageTiming); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.Stats(); st.Misses != 2 || st.Entries != 0 {
		t.Errorf("stats = %+v, want caching disabled", st)
	}
}

func TestScheduleBatchOrderAndDedup(t *testing.T) {
	svc := New(Config{Workers: 4})
	reqs := make([]Request, 12)
	for i := range reqs {
		reqs[i] = Request{Problem: twoTask(i % 3), Stage: StageMinPower}
	}
	resps := svc.ScheduleBatch(reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if want := 2 + i%3; r.Result.Compiled.Prob.Tasks[0].Delay != want {
			t.Errorf("request %d: response out of order", i)
		}
	}
	if st := svc.Stats(); st.Misses != 3 {
		t.Errorf("misses = %d, want 3 (batch dedup through cache)", st.Misses)
	}
}

func TestParseStage(t *testing.T) {
	for in, want := range map[string]Stage{
		"": StageMinPower, "minpower": StageMinPower,
		"maxpower": StageMaxPower, "timing": StageTiming,
	} {
		got, err := ParseStage(in)
		if err != nil || got != want {
			t.Errorf("ParseStage(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStage("bogus"); err == nil {
		t.Error("ParseStage accepted garbage")
	}
}

func TestVarsAndPublish(t *testing.T) {
	svc := New(Config{})
	if _, err := svc.Schedule(paperex.Nine(), sched.Options{}, StageMinPower); err != nil {
		t.Fatal(err)
	}
	m := svc.Vars()
	if m.Get("misses").String() != "1" {
		t.Errorf("vars misses = %s, want 1", m.Get("misses"))
	}
	if !svc.Publish("svc_test_metrics") {
		t.Error("first publish failed")
	}
	if svc.Publish("svc_test_metrics") {
		t.Error("duplicate publish did not report the collision")
	}
}

// TestOptionsDigestCoversAllFields mutates each exported sched.Options
// field by reflection and asserts the digest moves: a field optsDigest
// does not cover would alias distinct option sets onto one cache key
// and silently serve wrong results. Unlike a pinned name list, this
// catches a new field even if nobody remembers this test exists.
func TestOptionsDigestCoversAllFields(t *testing.T) {
	base := sched.Options{}
	baseDigest := optsDigest(base)
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		mut := base
		fv := reflect.ValueOf(&mut).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Bool:
			fv.SetBool(true)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(7)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(7)
		case reflect.Float32, reflect.Float64:
			fv.SetFloat(7)
		case reflect.String:
			fv.SetString("x")
		case reflect.Slice:
			// One element with a non-zero scalar, so length-only
			// encodings still change the digest.
			el := reflect.New(f.Type.Elem()).Elem()
			switch f.Type.Elem().Kind() {
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
				el.SetInt(1)
			case reflect.Bool:
				el.SetBool(true)
			}
			fv.Set(reflect.Append(reflect.MakeSlice(f.Type, 0, 1), el))
		default:
			t.Fatalf("field %s has kind %s: teach this test to mutate it", f.Name, f.Type.Kind())
		}
		if optsDigest(mut) == baseDigest {
			t.Errorf("optsDigest ignores sched.Options.%s: distinct option sets would share a cache key", f.Name)
		}
	}
}

// TestKeySeparatesHeteroDimensions pins the cache-key contract for the
// machine/DVS fields: a problem and its heterogeneous variants must
// never share a key, or the cache would serve a schedule computed for
// different hardware.
func TestKeySeparatesHeteroDimensions(t *testing.T) {
	base := twoTask(1)
	variants := map[string]func(*model.Problem){
		"machine added": func(p *model.Problem) {
			p.Machines = []model.Machine{{Name: "m", Speed: 1, PowerScale: 1}}
		},
		"level added": func(p *model.Problem) {
			p.Tasks[0].Levels = []model.DVSLevel{
				{Mult: 1, Power: p.Tasks[0].Power},
				{Mult: 2, Power: p.Tasks[0].Power / 2},
			}
		},
		"machine and pin": func(p *model.Problem) {
			p.Machines = []model.Machine{{Name: "m", Speed: 2, PowerScale: 1}}
			p.Tasks[0].Machine = "m"
		},
	}
	want := Key(base, sched.Options{}, StageMinPower)
	seen := map[string]string{}
	for name, mutate := range variants {
		q := base.Clone()
		mutate(q)
		got := Key(q, sched.Options{}, StageMinPower)
		if got == want {
			t.Errorf("%s: hetero variant shares the degenerate problem's cache key", name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s and %s share a cache key", name, prev)
		}
		seen[got] = name
	}
}
