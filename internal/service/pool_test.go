package service

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolForEachRunsAll(t *testing.T) {
	p := NewPool(3)
	const n = 50
	var ran [n]atomic.Int32
	p.ForEach(n, func(i int) { ran[i].Add(1) })
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("iteration %d ran %d times", i, got)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	if p.Workers() != workers {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	var active, peak atomic.Int32
	p.ForEach(64, func(int) {
		cur := active.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		runtime.Gosched()
		active.Add(-1)
	})
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds bound %d", got, workers)
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS", got)
	}
}

func TestPoolGoWait(t *testing.T) {
	p := NewPool(2)
	var done atomic.Bool
	wait := p.Go(func() { done.Store(true) })
	wait()
	if !done.Load() {
		t.Error("Go's wait returned before fn completed")
	}
	// ForEach(0, ...) must not deadlock or run anything.
	p.ForEach(0, func(int) { t.Error("ForEach(0) ran an iteration") })
}
