package service

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolForEachRunsAll(t *testing.T) {
	p := NewPool(3)
	const n = 50
	var ran [n]atomic.Int32
	p.ForEach(n, func(i int) { ran[i].Add(1) })
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("iteration %d ran %d times", i, got)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	if p.Workers() != workers {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	var active, peak atomic.Int32
	p.ForEach(64, func(int) {
		cur := active.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		runtime.Gosched()
		active.Add(-1)
	})
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds bound %d", got, workers)
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS", got)
	}
}

func TestPoolGoWait(t *testing.T) {
	p := NewPool(2)
	var done atomic.Bool
	wait := p.Go(func() { done.Store(true) })
	wait()
	if !done.Load() {
		t.Error("Go's wait returned before fn completed")
	}
	// ForEach(0, ...) must not deadlock or run anything.
	p.ForEach(0, func(int) { t.Error("ForEach(0) ran an iteration") })
}

func TestPoolGoCtxRejectsWhenCanceled(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	started := make(chan struct{})
	wait, err := p.GoCtx(context.Background(), func() {
		close(started)
		<-release
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if w, err := p.GoCtx(ctx, func() { t.Error("fn ran despite canceled ctx") }); w != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("GoCtx on full pool with canceled ctx: wait=%t err=%v", w != nil, err)
	}
	close(release)
	wait()
}

func TestPoolForEachCtxStopsSubmitting(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	const n = 1000
	err := p.ForEachCtx(ctx, n, func(i int) {
		if ran.Add(1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// With one worker and cancellation on the 3rd iteration, nowhere
	// near all n iterations may run; submitted ones ran to completion.
	if got := ran.Load(); got >= n/2 {
		t.Errorf("ran %d iterations despite cancellation", got)
	}
}
