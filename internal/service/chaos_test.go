package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/schedule"
)

// TestChaosCancelPanicOverload hammers the service with concurrent
// schedule requests under random early cancellations, tight deadlines,
// and hook-injected panics, on a deliberately undersized worker pool so
// admission control sheds. It then certifies the failure envelope:
//
//   - every request terminates with one of the five sanctioned
//     outcomes (success, Canceled, DeadlineExceeded, ErrOverloaded,
//     ErrInternal) — nothing else escapes the boundary;
//   - no goroutines leak once the service drains;
//   - the cache is not poisoned: identical follow-up requests succeed
//     and agree with a direct, service-free pipeline run.
//
// Run it under -race; the CI chaos smoke step does.
func TestChaosCancelPanicOverload(t *testing.T) {
	// A wide key space (problems × seeds) keeps real computes flowing
	// instead of the cache absorbing the whole hammer, so the panic and
	// deadline paths are actually exercised.
	probs := make([]Request, 48)
	for i := range probs {
		probs[i] = Request{Problem: twoTask(i % 6), Opts: sched.Options{Seed: int64(i)}, Stage: StageMinPower}
	}

	baseline := runtime.NumGoroutine()

	svc := New(Config{Workers: 2, MaxQueue: 2, CacheSize: 64})
	var hookCalls atomic.Int64
	restore := TestingSetComputeHook(func(string) {
		n := hookCalls.Add(1)
		if n%7 == 0 {
			panic(fmt.Sprintf("chaos: injected panic #%d", n))
		}
		if n%3 == 0 {
			time.Sleep(200 * time.Microsecond) // hold the slot to force queueing/shedding
		}
	})

	const hammerers = 16
	const iters = 30
	var outcomes [5]atomic.Int64 // ok, canceled, deadline, shed, internal
	var wg sync.WaitGroup
	for g := 0; g < hammerers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for i := 0; i < iters; i++ {
				req := probs[rng.Intn(len(probs))]
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(3) {
				case 0: // cancel shortly after issuing
					ctx, cancel = context.WithCancel(ctx)
					d := time.Duration(rng.Intn(1500)) * time.Microsecond
					time.AfterFunc(d, cancel)
				case 1: // tight deadline, sometimes already expired
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				_, err := svc.ScheduleCtx(ctx, req.Problem, req.Opts, req.Stage)
				cancel()
				switch {
				case err == nil:
					outcomes[0].Add(1)
				case errors.Is(err, context.Canceled):
					outcomes[1].Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					outcomes[2].Add(1)
				case errors.Is(err, ErrOverloaded):
					outcomes[3].Add(1)
				case errors.Is(err, ErrInternal):
					outcomes[4].Add(1)
				default:
					t.Errorf("unsanctioned error escaped the service boundary: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	restore()

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		t.Fatalf("service did not drain after chaos: %v", err)
	}

	t.Logf("outcomes: ok=%d canceled=%d deadline=%d shed=%d internal=%d; stats=%+v",
		outcomes[0].Load(), outcomes[1].Load(), outcomes[2].Load(),
		outcomes[3].Load(), outcomes[4].Load(), svc.Stats())

	// No cache poisoning: every problem still schedules through the
	// service and matches a direct pipeline run that bypasses it.
	for i, req := range probs {
		got, err := svc.ScheduleCtx(context.Background(), req.Problem, req.Opts, req.Stage)
		if err != nil {
			t.Fatalf("follow-up request %d failed after chaos: %v", i, err)
		}
		want, err := sched.MinPower(req.Problem, req.Opts)
		if err != nil {
			t.Fatalf("direct pipeline run %d failed: %v", i, err)
		}
		if !schedulesEqual(got.Schedule, want.Schedule) {
			t.Errorf("problem %d: cached result diverges from direct pipeline run (cache poisoned)", i)
		}
	}

	// No goroutine leaks: allow the runtime a settle window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// schedulesEqual compares two schedules by start times.
func schedulesEqual(a, b schedule.Schedule) bool {
	if len(a.Start) != len(b.Start) {
		return false
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			return false
		}
	}
	return true
}
