package service

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"

	"repro/internal/sched"
)

// optsDigest canonically hashes every field of sched.Options. The
// encoding is fixed-width and length-prefixed, so distinct option sets
// never share a digest. TestOptionsDigestCoversAllFields pins the
// field set; extend this function when sched.Options grows.
func optsDigest(o sched.Options) [8]byte {
	h := sha256.New()
	putInt(h, o.Seed)
	putInt(h, int64(o.MaxBacktracks))
	putInt(h, int64(o.MaxSpikeRounds))
	putInt(h, int64(o.MaxScans))
	putInt(h, int64(len(o.ScanOrders)))
	for _, v := range o.ScanOrders {
		putInt(h, int64(v))
	}
	putInt(h, int64(len(o.SlotChoices)))
	for _, v := range o.SlotChoices {
		putInt(h, int64(v))
	}
	putBool(h, o.DisableLocks)
	putBool(h, o.FullRecompute)
	putBool(h, o.Naive)
	putInt(h, int64(o.Restarts))
	putInt(h, int64(o.Workers))
	putBool(h, o.Compact)
	var out [8]byte
	copy(out[:], h.Sum(nil))
	return out
}

func putInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func putBool(h hash.Hash, v bool) {
	if v {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}
