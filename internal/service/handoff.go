package service

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/sched"
)

// ErrNoStore reports that a handoff record arrived at a service with
// no persistent store to ingest it into. Detect it with errors.Is.
var ErrNoStore = errors.New("service: no persistent store configured")

// ErrHandoffRejected reports that a handoff record failed validation —
// a key that does not address the accompanying problem, a payload that
// does not decode, or a schedule that does not verify against the
// problem. Rejected records are never stored. Detect it with
// errors.Is.
var ErrHandoffRejected = errors.New("service: handoff record rejected")

// StoreKey returns the persistent-store key a (problem, options,
// stage) request is cached under — the version-prefixed content
// address that hinted handoff ships records by.
func StoreKey(p *model.Problem, opts sched.Options, stage Stage) string {
	return storeKeyPrefix + Key(p, opts, stage)
}

// EncodeResult serializes a computed result into the persistent-store
// record format (the same bytes write-through produces), for shipping
// to another shard's store.
func EncodeResult(res *sched.Result) ([]byte, error) {
	return encodeResult(res)
}

// IngestHandoff validates and stores a record shipped by another shard
// (hinted handoff): key must content-address the given problem, data
// must decode into a result for it, and the decoded result must pass
// the caller's check (the web layer passes full schedule verification)
// — a shipped record is an unauthenticated network input, so it
// re-earns its place in the store instead of being trusted. Accepted
// records land last-write-wins (byte-identical re-ships are skipped);
// the next L1 miss for the key rehydrates from the store exactly as if
// this shard had computed the result itself. check may be nil to skip
// the semantic pass (tests only; serving always verifies).
//
// The check is a callback rather than a direct verify call because the
// dependency points the other way: internal/verify's own tests drive
// this service, so service importing verify would cycle.
func (s *Service) IngestHandoff(p *model.Problem, key string, data []byte, check func(*model.Problem, *sched.Result) error) error {
	if s.store == nil {
		return ErrNoStore
	}
	if !strings.HasPrefix(key, storeKeyPrefix+p.Fingerprint()+"/") {
		s.met.handoffsRejected.Add(1)
		return fmt.Errorf("%w: key %q does not address the shipped problem", ErrHandoffRejected, key)
	}
	res, err := decodeResult(p, data)
	if err != nil {
		s.met.handoffsRejected.Add(1)
		return fmt.Errorf("%w: %v", ErrHandoffRejected, err)
	}
	if check != nil {
		if err := check(p, res); err != nil {
			s.met.handoffsRejected.Add(1)
			return fmt.Errorf("%w: %v", ErrHandoffRejected, err)
		}
	}
	// Prefer the dedup ingestion path when the store has one: a re-ship
	// of bytes already live costs no log growth.
	type changer interface {
		PutIfChanged(key string, val []byte) (bool, error)
	}
	var putErr error
	if c, ok := s.store.(changer); ok {
		_, putErr = c.PutIfChanged(key, data)
	} else {
		putErr = s.store.Put(key, data)
	}
	if putErr != nil {
		s.met.storeErrs.Add(1)
		return putErr
	}
	s.met.handoffsReceived.Add(1)
	return nil
}

// NoteHandoffSent records the outcome of one outbound handoff
// shipment (the web layer ships asynchronously; the service owns the
// counters so they aggregate with the rest of /stats).
func (s *Service) NoteHandoffSent(err error) {
	if err != nil {
		s.met.handoffSendErrs.Add(1)
		return
	}
	s.met.handoffsSent.Add(1)
}
