package service

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"sync"
	"time"
)

// metrics is the service's counter set. The counters are expvar values
// so they can be wired straight into /debug/vars, but they are not
// auto-published: tests create many Services, and expvar.Publish
// panics on duplicate names. Publish exports one service explicitly.
type metrics struct {
	hits      expvar.Int // L1 (in-memory LRU) cache hits
	hitsL2    expvar.Int // persistent-store hits rehydrated into L1
	misses    expvar.Int // computes (cache misses that started a flight)
	joins     expvar.Int // singleflight joins onto an in-flight compute
	evictions expvar.Int // LRU evictions
	inflight  expvar.Int // currently computing flights (gauge)
	storeErrs expvar.Int // persistent-store write-through failures

	// Failure-mode counters, per request: canceled requests, requests
	// whose deadline passed (before or during compute), requests shed
	// by admission control, and computes that panicked.
	canceled         expvar.Int
	deadlineExceeded expvar.Int
	shed             expvar.Int
	panics           expvar.Int

	// Hinted-handoff counters: records this shard shipped to an owner
	// after answering a failed-over request (and shipments that failed),
	// and records shipped *to* this shard that were accepted into the
	// store or rejected by validation.
	handoffsSent     expvar.Int
	handoffSendErrs  expvar.Int
	handoffsReceived expvar.Int
	handoffsRejected expvar.Int

	mu        sync.Mutex
	compute   map[string]*expvar.Int // compute nanoseconds per stage bucket
	lastPanic string                 // last contained panic: value + stack (metrics only, never responses)
}

// countCtxErr buckets a request-terminating context error.
func (m *metrics) countCtxErr(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		m.deadlineExceeded.Add(1)
	case errors.Is(err, context.Canceled):
		m.canceled.Add(1)
	}
}

// recordPanic counts a contained compute panic and captures its value
// and stack for /debug/vars. The stack stays in the metrics — the
// error surfaced to callers wraps ErrInternal without it.
func (m *metrics) recordPanic(v any, stack []byte) {
	m.panics.Add(1)
	m.mu.Lock()
	m.lastPanic = fmt.Sprintf("%v\n%s", v, stack)
	m.mu.Unlock()
}

// lastPanicSnapshot returns the captured stack of the most recent
// contained panic ("" when none).
func (m *metrics) lastPanicSnapshot() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastPanic
}

// computeNS returns the compute-time counter for a stage bucket
// ("timing", "maxpower", "minpower", "memo"), creating it on first use.
func (m *metrics) computeNS(bucket string) *expvar.Int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.compute == nil {
		m.compute = make(map[string]*expvar.Int)
	}
	v, ok := m.compute[bucket]
	if !ok {
		v = new(expvar.Int)
		m.compute[bucket] = v
	}
	return v
}

// computeSnapshot copies the per-bucket compute counters.
func (m *metrics) computeSnapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.compute))
	for k, v := range m.compute {
		out[k] = v.Value()
	}
	return out
}

// Stats is a point-in-time snapshot of the service's metrics, shaped
// for JSON (the /stats endpoint).
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Joins     int64 `json:"joins"`
	Evictions int64 `json:"evictions"`
	Inflight  int64 `json:"inflight"`
	Entries   int   `json:"entries"`
	// HitsL2 counts requests served by rehydrating a record from the
	// persistent store; StoreEntries/StoreBytes/StorePutErrors describe
	// that store (all zero when no store is configured).
	HitsL2         int64 `json:"hits_l2"`
	StoreEntries   int   `json:"store_entries"`
	StoreBytes     int64 `json:"store_bytes"`
	StorePutErrors int64 `json:"store_put_errors"`
	// StartTime is the service's creation time in Unix seconds;
	// UptimeSeconds is measured against the monotonic clock, so shard
	// uptimes stay comparable under wall-clock adjustments.
	StartTime     int64   `json:"start_time"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Canceled and DeadlineExceeded count requests terminated by their
	// context; Shed counts requests rejected by admission control;
	// Panics counts computes contained at the panic boundary. Queued is
	// the number of requests currently waiting for a compute slot.
	Canceled         int64 `json:"canceled"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Shed             int64 `json:"shed"`
	Panics           int64 `json:"panics"`
	Queued           int   `json:"queued"`
	// Hinted handoff: records shipped from this shard to an owner (and
	// shipment failures), and inbound records accepted or rejected.
	HandoffsSent      int64 `json:"handoffs_sent"`
	HandoffSendErrors int64 `json:"handoff_send_errors"`
	HandoffsReceived  int64 `json:"handoffs_received"`
	HandoffsRejected  int64 `json:"handoffs_rejected"`
	// ComputeNS is the cumulative compute time per stage bucket in
	// nanoseconds.
	ComputeNS map[string]int64 `json:"compute_ns"`
}

// Stats snapshots the metrics.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	entries := s.cache.len()
	queued := s.queued
	s.mu.Unlock()
	var storeEntries int
	var storeBytes int64
	if s.store != nil {
		storeEntries = s.store.Len()
		storeBytes = s.store.Size()
	}
	return Stats{
		Hits:              s.met.hits.Value(),
		Misses:            s.met.misses.Value(),
		Joins:             s.met.joins.Value(),
		Evictions:         s.met.evictions.Value(),
		Inflight:          s.met.inflight.Value(),
		Entries:           entries,
		HitsL2:            s.met.hitsL2.Value(),
		StoreEntries:      storeEntries,
		StoreBytes:        storeBytes,
		StorePutErrors:    s.met.storeErrs.Value(),
		StartTime:         s.started.Unix(),
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Canceled:          s.met.canceled.Value(),
		DeadlineExceeded:  s.met.deadlineExceeded.Value(),
		Shed:              s.met.shed.Value(),
		Panics:            s.met.panics.Value(),
		Queued:            queued,
		HandoffsSent:      s.met.handoffsSent.Value(),
		HandoffSendErrors: s.met.handoffSendErrs.Value(),
		HandoffsReceived:  s.met.handoffsReceived.Value(),
		HandoffsRejected:  s.met.handoffsRejected.Value(),
		ComputeNS:         s.met.computeSnapshot(),
	}
}

// Vars assembles the live metrics into an expvar.Map. The map shares
// the underlying counters, so a single Vars call wired into an expvar
// page stays current. Metric names: hits, misses, joins, evictions,
// inflight, canceled, deadline_exceeded, shed, panics, queued,
// last_panic (the contained stack, metrics-only), cache_entries,
// hits_l2 / store_entries / store_bytes / store_put_errors for the
// persistent tier, start_time / uptime_seconds, and
// compute_ns_<stage> per stage bucket.
func (s *Service) Vars() *expvar.Map {
	m := new(expvar.Map)
	m.Set("hits", &s.met.hits)
	m.Set("hits_l2", &s.met.hitsL2)
	m.Set("store_put_errors", &s.met.storeErrs)
	m.Set("store_entries", expvar.Func(func() any {
		if s.store == nil {
			return 0
		}
		return s.store.Len()
	}))
	m.Set("store_bytes", expvar.Func(func() any {
		if s.store == nil {
			return int64(0)
		}
		return s.store.Size()
	}))
	m.Set("start_time", expvar.Func(func() any { return s.started.Unix() }))
	m.Set("uptime_seconds", expvar.Func(func() any { return time.Since(s.started).Seconds() }))
	m.Set("misses", &s.met.misses)
	m.Set("joins", &s.met.joins)
	m.Set("evictions", &s.met.evictions)
	m.Set("inflight", &s.met.inflight)
	m.Set("canceled", &s.met.canceled)
	m.Set("deadline_exceeded", &s.met.deadlineExceeded)
	m.Set("shed", &s.met.shed)
	m.Set("panics", &s.met.panics)
	m.Set("handoffs_sent", &s.met.handoffsSent)
	m.Set("handoff_send_errors", &s.met.handoffSendErrs)
	m.Set("handoffs_received", &s.met.handoffsReceived)
	m.Set("handoffs_rejected", &s.met.handoffsRejected)
	m.Set("queued", expvar.Func(func() any {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued
	}))
	m.Set("last_panic", expvar.Func(func() any {
		return s.met.lastPanicSnapshot()
	}))
	m.Set("cache_entries", expvar.Func(func() any {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.cache.len()
	}))
	for _, bucket := range []string{"timing", "maxpower", "minpower", "memo"} {
		m.Set("compute_ns_"+bucket, s.met.computeNS(bucket))
	}
	return m
}

// Publish exports the service's metrics under the given expvar name
// (visible at /debug/vars). It reports false when the name is already
// taken — expvar registration is process-global and permanent, so only
// the first service under a name wins.
func (s *Service) Publish(name string) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, s.Vars())
	return true
}
