package service

import (
	"runtime"
	"sync"
)

// Pool is a bounded worker pool: at most `workers` submitted functions
// run at any instant, regardless of how many goroutines submit. It
// exists so batch entry points (sweeps, grids, bulk schedule requests)
// share one concurrency budget instead of each spawning their own
// unbounded goroutine herds.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool running at most workers tasks concurrently.
// workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Go runs fn on the pool, blocking until a worker slot is free. The
// returned function blocks until fn completes (a per-task join).
func (p *Pool) Go(fn func()) (wait func()) {
	done := make(chan struct{})
	p.sem <- struct{}{}
	go func() {
		defer func() {
			<-p.sem
			close(done)
		}()
		fn()
	}()
	return func() { <-done }
}

// ForEach runs fn(0) .. fn(n-1) on the pool and blocks until all
// complete. Iterations may run in any order but at most Workers() at
// once.
func (p *Pool) ForEach(n int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.sem <- struct{}{}
		go func() {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			fn(i)
		}()
	}
	wg.Wait()
}
