package service

import (
	"context"
	"runtime"
	"sync"
)

// Pool is a bounded worker pool: at most `workers` submitted functions
// run at any instant, regardless of how many goroutines submit. It
// exists so batch entry points (sweeps, grids, bulk schedule requests)
// share one concurrency budget instead of each spawning their own
// unbounded goroutine herds.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool running at most workers tasks concurrently.
// workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Go runs fn on the pool, blocking until a worker slot is free. The
// returned function blocks until fn completes (a per-task join).
func (p *Pool) Go(fn func()) (wait func()) {
	wait, _ = p.GoCtx(context.Background(), fn)
	return wait
}

// GoCtx is Go under a context: it submits fn only if a worker slot
// frees up before ctx is done, returning the context's error (and a
// nil wait function) otherwise. A submitted fn always runs to
// completion — cancellation gates submission, not execution — so no
// goroutine is ever leaked blocked on the pool.
func (p *Pool) GoCtx(ctx context.Context, fn func()) (wait func(), err error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	done := make(chan struct{})
	go func() {
		defer func() {
			<-p.sem
			close(done)
		}()
		fn()
	}()
	return func() { <-done }, nil
}

// ForEach runs fn(0) .. fn(n-1) on the pool and blocks until all
// complete. Iterations may run in any order but at most Workers() at
// once.
func (p *Pool) ForEach(n int, fn func(int)) {
	p.ForEachCtx(context.Background(), n, fn) //nolint:errcheck // Background never errs
}

// ForEachCtx is ForEach under a context: once ctx is done no further
// iterations are submitted, already-running iterations finish (their
// fn should watch the same ctx if it can run long), and the call
// returns the context's error after every submitted iteration has
// completed. Iterations that were never submitted are reported only
// through that error — fn is simply not called for them.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(int)) error {
	var wg sync.WaitGroup
	var err error
	for i := 0; i < n; i++ {
		select {
		case p.sem <- struct{}{}:
		case <-ctx.Done():
			err = ctx.Err()
		}
		if err != nil {
			break
		}
		wg.Add(1)
		i := i
		go func() {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			fn(i)
		}()
	}
	wg.Wait()
	return err
}
