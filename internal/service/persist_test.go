package service

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/store"
)

func testStore(t *testing.T) (*store.Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "results.log")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, path
}

func heteroProblem() *model.Problem {
	p := paperex.Nine().Clone()
	p.Name = "nine-hetero"
	p.Machines = []model.Machine{
		{Name: "fast", Speed: 2, PowerScale: 1.5},
		{Name: "slow", Speed: 1, PowerScale: 1},
	}
	p.Tasks[0].Levels = []model.DVSLevel{{Mult: 1, Power: p.Tasks[0].Power}, {Mult: 2, Power: p.Tasks[0].Power / 3}}
	return p
}

// sameResult asserts the fields service consumers read are identical
// between a computed and a rehydrated result.
func sameResult(t *testing.T, want, got *sched.Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Schedule, got.Schedule) {
		t.Errorf("%s: schedule differs: %v vs %v", label, want.Schedule, got.Schedule)
	}
	if !reflect.DeepEqual(want.Profile, got.Profile) {
		t.Errorf("%s: profile differs", label)
	}
	if want.Stats != got.Stats {
		t.Errorf("%s: stats differ: %+v vs %+v", label, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.Tasks, got.Tasks) {
		t.Errorf("%s: effective tasks differ", label)
	}
	if !reflect.DeepEqual(want.Assignment, got.Assignment) {
		t.Errorf("%s: assignment differs: %v vs %v", label, want.Assignment, got.Assignment)
	}
	if want.Finish() != got.Finish() || want.Peak() != got.Peak() ||
		want.EnergyCost() != got.EnergyCost() || want.Utilization() != got.Utilization() {
		t.Errorf("%s: derived metrics differ", label)
	}
	wp, gp := want.EffectiveProblem(), got.EffectiveProblem()
	if !reflect.DeepEqual(wp.Tasks, gp.Tasks) {
		t.Errorf("%s: effective problem tasks differ", label)
	}
}

// TestStoreWriteThroughAndWarmStart computes through one service,
// then serves the same requests from a fresh service sharing only the
// on-disk store: every request must be an L2 hit yielding a result
// indistinguishable from the computed one — including heterogeneous
// problems, whose machine/level assignment rides in the record.
func TestStoreWriteThroughAndWarmStart(t *testing.T) {
	st, path := testStore(t)
	probs := []*model.Problem{paperex.Nine(), heteroProblem()}
	opts := sched.Options{Seed: 3, Restarts: 2}

	cold := New(Config{Store: st})
	want := make([]*sched.Result, len(probs))
	for i, p := range probs {
		r, err := cold.Schedule(p, opts, StageMinPower)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	cs := cold.Stats()
	if cs.Misses != int64(len(probs)) || cs.HitsL2 != 0 {
		t.Fatalf("cold stats: %+v", cs)
	}
	if cs.StoreEntries != len(probs) || cs.StoreBytes == 0 {
		t.Fatalf("write-through missing: %+v", cs)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := New(Config{Store: st2})
	for i, p := range probs {
		r, err := warm.Schedule(p, opts, StageMinPower)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, want[i], r, p.Name)
	}
	ws := warm.Stats()
	if ws.Misses != 0 || ws.HitsL2 != int64(len(probs)) {
		t.Fatalf("warm start did not serve from the store: %+v", ws)
	}
	// Second round: now in L1, the store untouched.
	for _, p := range probs {
		if _, err := warm.Schedule(p, opts, StageMinPower); err != nil {
			t.Fatal(err)
		}
	}
	ws = warm.Stats()
	if ws.Hits != int64(len(probs)) || ws.HitsL2 != int64(len(probs)) {
		t.Fatalf("L1 did not absorb the second round: %+v", ws)
	}
}

// TestStoreKeySeparation: distinct options and stages must land in
// distinct store records, never rehydrate into each other.
func TestStoreKeySeparation(t *testing.T) {
	st, _ := testStore(t)
	svc := New(Config{Store: st})
	p := paperex.Nine()
	a, err := svc.Schedule(p, sched.Options{Seed: 1}, StageMinPower)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Schedule(p, sched.Options{Seed: 1}, StageTiming); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Schedule(p, sched.Options{Seed: 2}, StageMinPower); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 {
		t.Fatalf("store has %d records, want 3", st.Len())
	}
	// A fresh service over the same store must resolve the original
	// (options, stage) pair to the original result.
	svc2 := New(Config{Store: st})
	b, err := svc2.Schedule(p, sched.Options{Seed: 1}, StageMinPower)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, a, b, "seed1-minpower")
}

// TestStoreCorruptRecordDegradesToMiss: a record that fails to decode
// is recomputed, not served.
func TestStoreCorruptRecordDegradesToMiss(t *testing.T) {
	st, _ := testStore(t)
	p := paperex.Nine()
	key := storeKeyPrefix + Key(p, sched.Options{}, StageMinPower)
	if err := st.Put(key, []byte("not a gob record")); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Store: st})
	if _, err := svc.Schedule(p, sched.Options{}, StageMinPower); err != nil {
		t.Fatal(err)
	}
	s := svc.Stats()
	if s.HitsL2 != 0 || s.Misses != 1 {
		t.Fatalf("corrupt record was served: %+v", s)
	}
}

// TestStoreConcurrentWriteThroughHammer is the -race gate for the
// L1+L2 stack: many goroutines hammer overlapping problems through a
// tiny L1 (to force L2 traffic) and a shared store.
func TestStoreConcurrentWriteThroughHammer(t *testing.T) {
	st, _ := testStore(t)
	svc := New(Config{Store: st, CacheSize: 2, Workers: 4})
	probs := make([]*model.Problem, 6)
	for i := range probs {
		p := paperex.Nine().Clone()
		p.Name = fmt.Sprintf("hammer-%d", i)
		probs[i] = p
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				p := probs[(w+i)%len(probs)]
				if _, err := svc.Schedule(p, sched.Options{}, StageTiming); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := svc.Stats()
	if s.StoreEntries != len(probs) {
		t.Fatalf("store entries = %d, want %d", s.StoreEntries, len(probs))
	}
	if s.HitsL2 == 0 {
		t.Fatalf("tiny L1 never fell through to the store: %+v", s)
	}
	if s.StorePutErrors != 0 {
		t.Fatalf("write-through errors: %+v", s)
	}
}
