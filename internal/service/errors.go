package service

import "errors"

// ErrOverloaded reports that admission control shed the request: every
// compute worker was busy and the bounded wait queue was full. The
// request did no scheduling work; callers should back off and retry
// (the web layer maps this to 429 with a Retry-After header). Detect
// it with errors.Is.
var ErrOverloaded = errors.New("service: overloaded, retry later")

// ErrInternal reports that a pipeline compute panicked. The panic is
// contained at the service boundary: the process keeps serving, the
// stack is captured into the metrics (never into responses), and every
// waiter of the crashed flight receives an error wrapping ErrInternal.
// Crashed computes are never cached, so a follow-up request retries
// from scratch. Detect it with errors.Is.
var ErrInternal = errors.New("service: internal error")
