package benchkit

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/sched"
	"repro/internal/schedule"
	"repro/internal/verify"
)

// TestGenerateDeterministic: the same (n, seed) yields the same
// problem; consecutive seeds differ.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(50, 1), Generate(50, 1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same (n, seed) produced different problems")
	}
	if a.Fingerprint() == Generate(50, 2).Fingerprint() {
		t.Fatal("different seeds produced the same problem")
	}
}

// TestGenerateSchedulable: every ladder instance is feasible under the
// benchmark options, produces a valid schedule, and actually exercises
// the power stages (spikes were fixed, the budget binds). The scale
// tier (n > 1000, ~10-90s per instance) only runs when
// BENCH_FULL_LADDER is set — the nightly benchmark job sets it; the
// tier-1 suite stays fast.
func TestGenerateSchedulable(t *testing.T) {
	for _, n := range Sizes {
		if testing.Short() && n > 200 {
			continue
		}
		if n > ScaleTier && os.Getenv("BENCH_FULL_LADDER") == "" {
			continue
		}
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			p := Generate(n, 1)
			r, err := sched.MinPower(p, Options(n))
			if err != nil {
				t.Fatalf("n=%d infeasible: %v", n, err)
			}
			if err := schedule.CheckTimeValid(r.Graph, r.Compiled, r.Schedule); err != nil {
				t.Fatal(err)
			}
			if !r.Profile.Valid(p.Pmax) {
				t.Fatalf("n=%d: spikes remain: %v", n, r.Profile.Spikes(p.Pmax))
			}
			if r.Stats.SpikeRounds == 0 {
				t.Fatalf("n=%d: max-power stage did no work (budget not binding)", n)
			}
		})
	}
}

// TestGenerateMachinesSchedulable: the heterogeneous ladder instance
// is feasible under the benchmark options and yields a valid assigned
// schedule with every machine actually used.
func TestGenerateMachinesSchedulable(t *testing.T) {
	p := GenerateMachines(50, 4, 1)
	r, err := sched.MinPower(p, Options(50))
	if err != nil {
		t.Fatalf("hetero instance infeasible: %v", err)
	}
	if rep := verify.CheckAssigned(p, r.Schedule, r.Assignment); !rep.OK() {
		t.Fatal(rep.Err())
	}
	used := map[int]bool{}
	for _, c := range r.Assignment {
		used[c.Machine] = true
	}
	if len(used) < 2 {
		t.Fatalf("only %d machine(s) used; the instance does not exercise the assignment dimension", len(used))
	}
}

// benchmarkPipeline measures the full three-stage pipeline (with
// compaction) on the ladder instance of the given size.
func benchmarkPipeline(b *testing.B, n int, naive bool) {
	p := Generate(n, 1)
	opts := Options(n)
	opts.Naive = naive
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.MinPower(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineMachines4 runs the 50-task ladder instance with 4
// machines and DVS levels: the cost of the heterogeneous choice loop
// (machine serialization edges, EFT choice ordering, assignment
// bookkeeping) against BenchmarkPipeline50's degenerate single-choice
// path on the same underlying DAG.
func BenchmarkPipelineMachines4(b *testing.B) {
	p := GenerateMachines(50, 4, 1)
	opts := Options(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.MinPower(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeline10(b *testing.B)   { benchmarkPipeline(b, 10, false) }
func BenchmarkPipeline50(b *testing.B)   { benchmarkPipeline(b, 50, false) }
func BenchmarkPipeline200(b *testing.B)  { benchmarkPipeline(b, 200, false) }
func BenchmarkPipeline1000(b *testing.B) { benchmarkPipeline(b, 1000, false) }

// The scale tier: ~10s (5000) and ~70s (10000) per op, so a single
// iteration is already a stable measurement. Skipped under -short (and
// therefore absent from the PR bench gate); the nightly job runs them.
// No Naive variants: the from-scratch ablation is O(n^2) profile
// rebuilds per probe and would take hours at this size.
func BenchmarkPipeline5000(b *testing.B)  { benchmarkPipelineScale(b, 5000) }
func BenchmarkPipeline10000(b *testing.B) { benchmarkPipelineScale(b, 10000) }

func benchmarkPipelineScale(b *testing.B, n int) {
	if testing.Short() {
		b.Skipf("n=%d is scale-tier; skipped under -short", n)
	}
	benchmarkPipeline(b, n, false)
}

// BenchmarkPipelineCtx50 runs the n=50 instance through the
// context-aware entry point with a live (cancelable, never-fired)
// context: the cost of the cooperative cancellation polls relative to
// BenchmarkPipeline50, which takes the Background fast path.
func BenchmarkPipelineCtx50(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := Generate(50, 1)
	opts := Options(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.MinPowerCtx(ctx, p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkPipelineRestarts measures the restart portfolio on the
// 50-task ladder instance with the given fan-out. The Workers=1 and
// Workers=8 variants produce byte-identical schedules (the reduction is
// a total order ending in the restart index); only wall-clock differs.
func benchmarkPipelineRestarts(b *testing.B, restarts, workers int) {
	p := Generate(50, 1)
	opts := Options(50)
	opts.Restarts = restarts
	opts.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.MinPower(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineRestarts8(b *testing.B)     { benchmarkPipelineRestarts(b, 8, 1) }
func BenchmarkPipelineRestarts32(b *testing.B)    { benchmarkPipelineRestarts(b, 32, 1) }
func BenchmarkPipelineRestarts8Par(b *testing.B)  { benchmarkPipelineRestarts(b, 8, 8) }
func BenchmarkPipelineRestarts32Par(b *testing.B) { benchmarkPipelineRestarts(b, 32, 8) }

// The Naive variants run the same instances with the incremental core
// disabled (power.Build at every probe, slack recomputed from the
// graph): the before/after pair recorded in BENCH_sched.json.
func BenchmarkPipelineNaive10(b *testing.B)   { benchmarkPipeline(b, 10, true) }
func BenchmarkPipelineNaive50(b *testing.B)   { benchmarkPipeline(b, 50, true) }
func BenchmarkPipelineNaive200(b *testing.B)  { benchmarkPipeline(b, 200, true) }
func BenchmarkPipelineNaive1000(b *testing.B) { benchmarkPipeline(b, 1000, true) }
