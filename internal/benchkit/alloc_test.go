package benchkit

import (
	"testing"

	"repro/internal/sched"
)

// TestPipelineAllocBudget pins the flat-memory property of the
// scheduler core with an absolute allocation budget: one full pipeline
// run on the 50-task ladder instance must stay within a fixed number
// of allocations. The budget is ~20% above the measured steady state
// (627 allocs as of the flat-core rewrite, dominated by one-time state
// construction) and far below the pre-rewrite cost (~3.9k) — a single
// accidental allocation on a per-probe hot path (a profile clone, a
// candidate sort buffer) multiplies by the thousands of probes and
// blows the budget immediately, failing fast in the ordinary test
// suite rather than waiting for the CI bench gate.
func TestPipelineAllocBudget(t *testing.T) {
	p := Generate(50, 1)
	opts := Options(50)
	const budget = 750
	avg := testing.AllocsPerRun(5, func() {
		if _, err := sched.MinPower(p, opts); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("full 50-task pipeline run: %.0f allocs, budget %d", avg, budget)
	}
}
