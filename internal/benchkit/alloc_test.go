package benchkit

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sim"
)

// TestPipelineAllocBudget pins the flat-memory property of the
// scheduler core with an absolute allocation budget: one full pipeline
// run on the 50-task ladder instance must stay within a fixed number
// of allocations. The budget is ~20% above the measured steady state
// (627 allocs as of the flat-core rewrite, dominated by one-time state
// construction) and far below the pre-rewrite cost (~3.9k) — a single
// accidental allocation on a per-probe hot path (a profile clone, a
// candidate sort buffer) multiplies by the thousands of probes and
// blows the budget immediately, failing fast in the ordinary test
// suite rather than waiting for the CI bench gate.
func TestPipelineAllocBudget(t *testing.T) {
	p := Generate(50, 1)
	opts := Options(50)
	const budget = 750
	avg := testing.AllocsPerRun(5, func() {
		if _, err := sched.MinPower(p, opts); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("full 50-task pipeline run: %.0f allocs, budget %d", avg, budget)
	}
}

// TestCampaignAllocBudget pins the streaming campaign engine's
// constant-memory property the same way: a warm-cache 16-run campaign
// (schedule cache populated, per-worker scratch in steady state) must
// stay within a fixed allocation budget. Measured steady state is
// ~1,344 allocs per campaign (~84 per run — reducer folding, fault
// draws, and replay bookkeeping only); the budget is ~25% above that
// and two orders of magnitude below the pre-streaming engine
// (~37k allocs for the same campaign), so one accidental per-run
// allocation on the hot loop — a cloned problem, a fresh trace, an
// unmemoized fingerprint — fails here before the CI bench gate sees
// it.
func TestCampaignAllocBudget(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	c := sim.Campaign{
		Mission: sim.PaperMission(),
		Faults:  sim.DefaultFaults(),
		Runs:    16,
		Seed:    1,
		Svc:     svc,
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	const budget = 1700
	avg := testing.AllocsPerRun(5, func() {
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("warm 16-run campaign: %.0f allocs, budget %d", avg, budget)
	}
}
