// Package benchkit generates deterministic synthetic scheduling
// problems at controlled sizes for benchmarking the scheduler core.
// The instances are layered task DAGs with shared resources and a
// power budget tight enough that every pipeline stage does real work:
// the timing stage serializes resource conflicts, the max-power stage
// removes genuine spikes, and the min-power stage finds genuine gaps.
// Instances are feasible by construction for the default scheduler
// budgets.
package benchkit

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/schedule"
)

// Sizes is the canonical instance ladder the scheduler benchmarks and
// cmd/bench run: small enough to iterate quickly, large enough that
// asymptotics show. The 5000- and 10000-task rungs are the scale tier —
// minutes, not milliseconds, per pipeline run — exercised by the
// nightly benchmarks and gated behind BENCH_FULL_LADDER in the
// schedulability test so the tier-1 suite stays fast.
var Sizes = []int{10, 50, 200, 1000, 5000, 10000}

// ScaleTier is the size above which an instance belongs to the scale
// tier: no Naive-ablation measurement (the from-scratch rebuilds take
// hours there) and nightly-only schedulability checks.
const ScaleTier = 1000

// Generate builds the deterministic synthetic problem with n tasks for
// the given seed. The same (n, seed) always yields the same problem.
func Generate(n int, seed int64) *model.Problem {
	rng := rand.New(rand.NewSource(seed ^ int64(n)*0x9e3779b9))
	p := &model.Problem{Name: fmt.Sprintf("bench-%d-%d", n, seed)}

	// Layered DAG: wide layers so several tasks are concurrent, with
	// enough resources that the serialization chains stay short and the
	// timing search does not backtrack pathologically.
	layers := 2 + n/6
	resources := 3 + n/8
	layerOf := make([]int, n)
	for i := 0; i < n; i++ {
		layerOf[i] = i * layers / n
		p.AddTask(model.Task{
			Name:     fmt.Sprintf("t%04d", i),
			Resource: fmt.Sprintf("R%d", rng.Intn(resources)),
			Delay:    2 + rng.Intn(8),
			Power:    1 + rng.Float64()*9,
		})
	}
	// Sparse precedence between consecutive layers, occasionally with a
	// max-separation window. Window width scales with the horizon
	// (roughly 3 time units per task) so that resource serialization
	// and spike-fixing delays cannot easily make the instance
	// infeasible or send the timing search into backtrack thrash.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if layerOf[j] != layerOf[i]+1 || rng.Float64() >= 3.0/float64(1+n/layers) {
				continue
			}
			min := p.Tasks[i].Delay
			if rng.Float64() < 0.15 {
				p.Window(p.Tasks[i].Name, p.Tasks[j].Name, min, min+400+model.Time(3*n))
			} else {
				p.MinSep(p.Tasks[i].Name, p.Tasks[j].Name, min)
			}
		}
	}

	// Power envelope: budget ~55% of the precedence-only ASAP peak, so
	// the time-valid schedule is guaranteed to spike (the max-power
	// stage does real work) while plenty of sub-budget room remains to
	// resolve the spikes by delaying. Pmin at half the budget leaves
	// gaps worth filling for the min-power stage.
	p.BasePower = 0.5
	p.Pmax = p.BasePower + 0.55*(asapPeak(p)-p.BasePower)
	p.Pmin = p.Pmax / 2
	return p
}

// GenerateMachines builds the heterogeneous variant of the ladder
// instance: the Generate(n, seed) problem plus m machines with spread
// speeds (faster machines draw proportionally more power) and a
// two-level DVS ladder on every third task. The machine dimension
// multiplies the backtracker's branching factor by m, so this is the
// instance that prices the choice loop, the machine serialization
// edges, and the EFT choice ordering.
func GenerateMachines(n, m int, seed int64) *model.Problem {
	p := Generate(n, seed)
	p.Name = fmt.Sprintf("bench-%d-m%d-%d", n, m, seed)
	rng := rand.New(rand.NewSource(seed ^ int64(m)*0x85ebca6b))
	for j := 0; j < m; j++ {
		p.Machines = append(p.Machines, model.Machine{
			Name:       fmt.Sprintf("m%d", j),
			Speed:      1 + 0.25*float64(j),
			PowerScale: 1 + 0.1*float64(j),
		})
	}
	for i := range p.Tasks {
		if i%3 != 0 {
			continue
		}
		t := &p.Tasks[i]
		t.Levels = []model.DVSLevel{
			{Mult: 1, Power: t.Power},
			{Mult: 1.5, Power: t.Power * (0.5 + 0.3*rng.Float64())},
		}
	}
	return p
}

// asapPeak returns the peak power of the schedule that starts every
// task at its earliest precedence-feasible time, ignoring resource
// serialization and power limits. Tasks are index-topological by
// construction (constraints only point forward), so one forward pass
// suffices.
func asapPeak(p *model.Problem) float64 {
	idx := p.TaskIndex()
	start := make([]model.Time, len(p.Tasks))
	for _, con := range p.Constraints {
		u, v := idx[con.From], idx[con.To]
		if s := start[u] + con.Min; s > start[v] {
			start[v] = s
		}
	}
	return power.Build(p.Tasks, schedule.Schedule{Start: start}, p.BasePower).Peak()
}

// Options returns the scheduler options the benchmarks run under: a
// single deterministic heuristic combination (so the measurement is
// dominated by the core loops, not by how many combos are tried) with
// compaction enabled, and effort bounds scaled to the instance size.
func Options(n int) sched.Options {
	return sched.Options{
		Seed:           1,
		MaxScans:       3,
		ScanOrders:     []sched.ScanOrder{sched.ScanForward},
		SlotChoices:    []sched.SlotChoice{sched.SlotStartAtGap},
		MaxBacktracks:  50000 + 100*n,
		MaxSpikeRounds: 50000 + 100*n,
		Compact:        true,
	}
}
