package benchkit

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/service"
	"repro/internal/store"
)

// BenchmarkServiceBatch measures the serving tier's amortized bulk
// path: one ScheduleBatchCtx pass dispatching 64 requests cycling over
// 16 warm problems. Everything is served from the in-memory cache, so
// the number is the per-batch dispatch overhead (request fan-out,
// cache lookups, response assembly), not scheduler compute.
func BenchmarkServiceBatch(b *testing.B) {
	svc := service.New(service.Config{})
	base := make([]service.Request, 16)
	for i := range base {
		// Clones of one feasible instance under distinct names: the name
		// is part of the fingerprint, so each clone is its own cache
		// entry without risking an infeasible seed.
		p := Generate(10, 1).Clone()
		p.Name = fmt.Sprintf("svcbatch-%02d", i)
		base[i] = service.Request{Problem: p, Opts: Options(10), Stage: service.StageMinPower}
	}
	reqs := make([]service.Request, 64)
	for i := range reqs {
		reqs[i] = base[i%len(base)]
	}
	ctx := context.Background()
	for _, r := range svc.ScheduleBatchCtx(ctx, reqs) { // warm the cache
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range svc.ScheduleBatchCtx(ctx, reqs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkStoreGet measures a point read from the persistent result
// store with a populated index: one mutex-guarded ReadAt plus a copy,
// over 1024 records of ~2KiB.
func BenchmarkStoreGet(b *testing.B) {
	st, err := store.Open(filepath.Join(b.TempDir(), "bench.log"), store.Options{NoAutoCompact: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	val := make([]byte, 2048)
	for i := range val {
		val[i] = byte(i)
	}
	const n = 1024
	for i := 0; i < n; i++ {
		if err := st.Put(fmt.Sprintf("sr1/key-%04d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Get(fmt.Sprintf("sr1/key-%04d", i%n)); !ok {
			b.Fatal("miss")
		}
	}
}
