package sim

import (
	"math"
	"math/bits"
)

// The campaign engine never retains per-run results: every run is
// folded into a Reducer the moment it finishes, and partial reducers
// (one per worker, one per shard) are merged into the campaign total.
// Summary memory is therefore independent of run count.
//
// Everything a Reducer accumulates is integer arithmetic — int64
// counters, fixed-point energy sums, bucketed histograms — so folding
// and merging are exactly associative AND commutative:
//
//	merge(fold(A), fold(B)) == fold(A ∥ B)
//
// holds bit-for-bit for any partition of the run set, not just
// approximately. That is what makes campaign summaries byte-identical
// at any worker count and any shard count: the only floats in a
// Summary are derived once, at Finalize time, from the same integers
// regardless of how the folds were grouped.

// energyScale is the fixed-point scale for battery-energy accumulation:
// joules are rounded to 1/2^20 J before summing, so the sum is an exact
// int64 no matter the fold order. Headroom: a 5 kJ mission costs
// ~2^33 units, so 10^6-run campaigns stay far below the int64 ceiling.
const energyScale = 1 << 20

// The quantile sketch is an integer log-linear histogram (the HDR
// layout): values below 2^(sketchSubBits+1) get exact buckets; above
// that, each power-of-two tier is split into 2^sketchSubBits linear
// sub-buckets, bounding the relative quantile error at 2^-sketchSubBits
// (~3%). Integer bucketing — bits.Len64, shifts — keeps the sketch
// deterministic across platforms, unlike float-log bucketing.
const (
	sketchSubBits = 5
	sketchSubMask = 1<<sketchSubBits - 1
	// sketchExact is the first non-exact bucket: values < sketchExact
	// are their own bucket index.
	sketchExact = 1 << (sketchSubBits + 1)
	// sketchBucketCount covers every non-negative int64.
	sketchBucketCount = (63-sketchSubBits)<<sketchSubBits + sketchExact
)

// sketch is a streaming quantile summary over non-negative int64
// samples (fixed-point energies, finish seconds). Constant size,
// mergeable by elementwise addition.
type sketch struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [sketchBucketCount]int64
}

// sketchBucket maps a sample to its bucket index.
func sketchBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	if u < sketchExact {
		return int(u)
	}
	n := bits.Len64(u)
	shift := uint(n - sketchSubBits - 1)
	top := u >> shift // in [2^sketchSubBits, 2^(sketchSubBits+1))
	return int(uint64(n-sketchSubBits-1)<<sketchSubBits + top)
}

// sketchBucketValue is the representative sample of a bucket: the exact
// value for exact buckets, the covered interval's midpoint otherwise.
func sketchBucketValue(b int) float64 {
	if b < sketchExact {
		return float64(b)
	}
	shift := uint(b>>sketchSubBits - 1)
	lo := uint64(sketchExact/2+b&sketchSubMask) << shift
	return float64(lo) + float64(uint64(1)<<shift)/2
}

func (k *sketch) add(v int64) {
	if k.count == 0 || v < k.min {
		k.min = v
	}
	if k.count == 0 || v > k.max {
		k.max = v
	}
	k.count++
	k.sum += v
	k.buckets[sketchBucket(v)]++
}

func (k *sketch) merge(o *sketch) {
	if o.count == 0 {
		return
	}
	if k.count == 0 || o.min < k.min {
		k.min = o.min
	}
	if k.count == 0 || o.max > k.max {
		k.max = o.max
	}
	k.count += o.count
	k.sum += o.sum
	for b, c := range o.buckets {
		if c != 0 {
			k.buckets[b] += c
		}
	}
}

// quantile is the nearest-rank q-quantile estimate, clamped to the
// exact observed [min, max] so Max >= P95 >= P50 always orders.
func (k *sketch) quantile(q float64) float64 {
	rank := int64(math.Ceil(q * float64(k.count)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	v := float64(k.max)
	for b := range k.buckets {
		cum += k.buckets[b]
		if cum >= rank {
			v = sketchBucketValue(b)
			break
		}
	}
	if v < float64(k.min) {
		v = float64(k.min)
	}
	if v > float64(k.max) {
		v = float64(k.max)
	}
	return v
}

// dist renders the sketch as a Summary distribution, dividing by scale
// to undo fixed-point encoding.
func (k *sketch) dist(scale float64) Dist {
	if k.count == 0 {
		return Dist{}
	}
	return Dist{
		Mean: float64(k.sum) / scale / float64(k.count),
		P50:  k.quantile(0.50) / scale,
		P95:  k.quantile(0.95) / scale,
		Max:  float64(k.max) / scale,
	}
}

// wire serializes the sketch sparsely for shard transport.
func (k *sketch) wire() DistWire {
	w := DistWire{Count: k.count, Sum: k.sum, Min: k.min, Max: k.max}
	for b, c := range k.buckets {
		if c != 0 {
			w.Buckets = append(w.Buckets, [2]int64{int64(b), c})
		}
	}
	return w
}

func (k *sketch) fromWire(w DistWire) {
	k.count, k.sum, k.min, k.max = w.Count, w.Sum, w.Min, w.Max
	for _, bc := range w.Buckets {
		if bc[0] >= 0 && bc[0] < sketchBucketCount {
			k.buckets[bc[0]] = bc[1]
		}
	}
}

// Reducer is the streaming, mergeable campaign accumulator. Workers
// fold runs into private reducers with Add; partial reducers merge
// with Merge; Finalize renders the Summary. The zero value is ready to
// use (allocate with NewReducer — the bucket arrays make it large).
type Reducer struct {
	runs            int64
	survived        int64
	deadlineMisses  int64
	reschedules     int64
	fallbacks       int64
	waits           int64
	verifyRejects   int64
	constraintDrops int64
	failures        map[string]int64
	reschedHist     []int64
	energy          sketch
	finish          sketch
}

// NewReducer allocates an empty reducer.
func NewReducer() *Reducer { return &Reducer{} }

// Runs reports how many runs have been folded in.
func (r *Reducer) Runs() int64 { return r.runs }

// Add folds one run outcome into the reducer.
func (r *Reducer) Add(res RunResult) {
	r.runs++
	r.reschedules += int64(res.Reschedules)
	r.fallbacks += int64(res.Fallbacks)
	r.waits += int64(res.Waits)
	r.verifyRejects += int64(res.VerifyRejects)
	r.constraintDrops += int64(res.ConstraintDrops)
	for len(r.reschedHist) <= res.Reschedules {
		r.reschedHist = append(r.reschedHist, 0)
	}
	r.reschedHist[res.Reschedules]++
	r.energy.add(int64(math.Round(res.EnergyCost * energyScale)))
	if res.Survived {
		r.survived++
		if res.DeadlineMiss {
			r.deadlineMisses++
		}
		r.finish.add(int64(res.Finish))
	} else {
		if r.failures == nil {
			r.failures = make(map[string]int64)
		}
		r.failures[res.Failure]++
	}
}

// Merge folds another reducer into this one. Merging is exact —
// integer sums, elementwise histogram addition, min/max — so the
// result is independent of merge order and grouping.
func (r *Reducer) Merge(o *Reducer) {
	r.runs += o.runs
	r.survived += o.survived
	r.deadlineMisses += o.deadlineMisses
	r.reschedules += o.reschedules
	r.fallbacks += o.fallbacks
	r.waits += o.waits
	r.verifyRejects += o.verifyRejects
	r.constraintDrops += o.constraintDrops
	for k, v := range o.failures {
		if r.failures == nil {
			r.failures = make(map[string]int64)
		}
		r.failures[k] += v
	}
	for len(r.reschedHist) < len(o.reschedHist) {
		r.reschedHist = append(r.reschedHist, 0)
	}
	for i, v := range o.reschedHist {
		r.reschedHist[i] += v
	}
	r.energy.merge(&o.energy)
	r.finish.merge(&o.finish)
	progReducerMerges.Add(1)
}

// Finalize renders the Summary. The reducer is not consumed; the same
// reducer finalizes to the same bytes every time.
func (r *Reducer) Finalize(seed int64) Summary {
	sum := Summary{
		Runs:            int(r.runs),
		Seed:            seed,
		Survived:        int(r.survived),
		DeadlineMisses:  int(r.deadlineMisses),
		Reschedules:     int(r.reschedules),
		Fallbacks:       int(r.fallbacks),
		Waits:           int(r.waits),
		VerifyRejects:   int(r.verifyRejects),
		ConstraintDrops: int(r.constraintDrops),
	}
	if r.runs > 0 {
		sum.SurvivalRate = float64(r.survived) / float64(r.runs)
		sum.DeadlineMissRate = float64(r.deadlineMisses) / float64(r.runs)
	}
	if len(r.failures) > 0 {
		sum.Failures = make(map[string]int, len(r.failures))
		for k, v := range r.failures {
			sum.Failures[k] = int(v)
		}
	}
	// Trim trailing zeros so the histogram length is determined by the
	// data, not by which worker saw the thrashiest run last.
	hist := r.reschedHist
	for len(hist) > 0 && hist[len(hist)-1] == 0 {
		hist = hist[:len(hist)-1]
	}
	if len(hist) > 0 {
		sum.RescheduleHist = append([]int64(nil), hist...)
	}
	sum.EnergyCost = r.energy.dist(energyScale)
	sum.Finish = r.finish.dist(1)
	return sum
}

// DistWire is the shard transport form of one quantile sketch: sparse
// [bucket, count] pairs in ascending bucket order, all integers.
type DistWire struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// ReducerWire is the shard transport form of a partial reducer — the
// body a sub-campaign endpoint returns and a coordinator merges. All
// fields are integers, so decode(encode(r)) reproduces r exactly.
type ReducerWire struct {
	Runs            int64            `json:"runs"`
	Survived        int64            `json:"survived"`
	DeadlineMisses  int64            `json:"deadline_misses"`
	Reschedules     int64            `json:"reschedules"`
	Fallbacks       int64            `json:"fallbacks"`
	Waits           int64            `json:"waits"`
	VerifyRejects   int64            `json:"verify_rejects"`
	ConstraintDrops int64            `json:"constraint_drops"`
	Failures        map[string]int64 `json:"failures,omitempty"`
	RescheduleHist  []int64          `json:"reschedule_hist,omitempty"`
	Energy          DistWire         `json:"energy"`
	Finish          DistWire         `json:"finish"`
}

// Wire serializes the reducer for shard transport.
func (r *Reducer) Wire() ReducerWire {
	w := ReducerWire{
		Runs:            r.runs,
		Survived:        r.survived,
		DeadlineMisses:  r.deadlineMisses,
		Reschedules:     r.reschedules,
		Fallbacks:       r.fallbacks,
		Waits:           r.waits,
		VerifyRejects:   r.verifyRejects,
		ConstraintDrops: r.constraintDrops,
		Energy:          r.energy.wire(),
		Finish:          r.finish.wire(),
	}
	if len(r.failures) > 0 {
		w.Failures = make(map[string]int64, len(r.failures))
		for k, v := range r.failures {
			w.Failures[k] = v
		}
	}
	if len(r.reschedHist) > 0 {
		w.RescheduleHist = append([]int64(nil), r.reschedHist...)
	}
	return w
}

// ReducerFromWire rebuilds a partial reducer from its transport form.
func ReducerFromWire(w ReducerWire) *Reducer {
	r := &Reducer{
		runs:            w.Runs,
		survived:        w.Survived,
		deadlineMisses:  w.DeadlineMisses,
		reschedules:     w.Reschedules,
		fallbacks:       w.Fallbacks,
		waits:           w.Waits,
		verifyRejects:   w.VerifyRejects,
		constraintDrops: w.ConstraintDrops,
	}
	if len(w.Failures) > 0 {
		r.failures = make(map[string]int64, len(w.Failures))
		for k, v := range w.Failures {
			r.failures[k] = v
		}
	}
	if len(w.RescheduleHist) > 0 {
		r.reschedHist = append([]int64(nil), w.RescheduleHist...)
	}
	r.energy.fromWire(w.Energy)
	r.finish.fromWire(w.Finish)
	return r
}
