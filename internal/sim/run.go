package sim

import (
	"context"

	"repro/internal/model"
	"repro/internal/power"
	rtlib "repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/verify"
)

// Failure kinds reported by Run.
const (
	// FailUnschedulable: the nominal problem (at mission start) has no
	// verified schedule.
	FailUnschedulable = "unschedulable"
	// FailTask: a task's transient failures exhausted the retry budget.
	FailTask = "task-failure"
	// FailInfeasible: no contingency schedule exists and the
	// environment never improves before the deadline.
	FailInfeasible = "infeasible"
	// FailBattery: the battery was exhausted (or over-drawn) with no
	// recoverable contingency.
	FailBattery = "battery"
	// FailRescheduleLimit: the run exceeded MaxReschedules — the
	// thrash guard against pathological fault draws.
	FailRescheduleLimit = "reschedule-limit"
	// FailCanceled: the run's context was canceled mid-flight (the run
	// is abandoned, not a verdict about the mission).
	FailCanceled = "canceled"
)

// DefaultMaxReschedules bounds contingency replanning per run.
const DefaultMaxReschedules = 16

// ContingencyEvent describes one candidate contingency schedule at the
// moment it was checked against the verifier.
type ContingencyEvent struct {
	// Seed identifies the run.
	Seed int64
	// MissionTime is when the contingency was computed.
	MissionTime model.Time
	// Problem is the residual problem (or the nominal one at t=0).
	Problem *model.Problem
	// Schedule is the candidate.
	Schedule schedule.Schedule
	// Source names where it came from: "minpower" for the full
	// pipeline, "maxpower"/"timing" for library fallback entries.
	Source string
	// Adopted reports whether the verifier accepted it.
	Adopted bool
}

// RunConfig configures one simulated run.
type RunConfig struct {
	Mission Mission
	Faults  FaultModel
	Opts    sched.Options
	// Seed drives every random draw of the run.
	Seed int64
	// Svc is the scheduling service (Shared() when nil); residual
	// problems are content-addressed, so identical contingencies
	// across runs hit its cache.
	Svc *service.Service
	// MaxReschedules bounds replanning (DefaultMaxReschedules when 0).
	MaxReschedules int
	// OnContingency, when set, observes every verifier-checked
	// candidate — including the nominal schedule at t=0. Campaigns may
	// call it from multiple goroutines; it must be safe for that.
	OnContingency func(ContingencyEvent)
}

// RunResult is the outcome of one simulated run.
type RunResult struct {
	Seed     int64
	Survived bool
	// Failure is the failure kind ("" when Survived).
	Failure string
	// DeadlineMiss: the mission completed but after the deadline.
	DeadlineMiss bool
	// Finish is the mission time execution stopped (completion or
	// failure instant).
	Finish model.Time
	// Reschedules counts adopted-or-attempted contingency replans.
	Reschedules int
	// Fallbacks counts adoptions that did not come from the full
	// pipeline ("minpower") but from the runtime library selection.
	Fallbacks int
	// Waits counts blackout periods idled through waiting for the
	// environment to improve.
	Waits int
	// VerifyRejects counts candidate schedules the verifier refused.
	VerifyRejects int
	// ConstraintDrops counts residual constraints already
	// unsatisfiable at replan time (deadlines in the past).
	ConstraintDrops int
	// EnergyCost is the total battery energy drawn.
	EnergyCost float64
}

// pipelineSource is the adoption source that does not count as a
// fallback.
const pipelineSource = "minpower"

// adopt computes candidate schedules for prob and returns the first
// that survives the verify gate: the full pipeline result when it is
// schedulable and verified, otherwise the best valid entry of a
// runtime library built from the cheaper pipeline stages. Every
// candidate checked is reported through cfg.OnContingency.
//
// When no observer is installed, outcomes are memoized per worker by
// problem fingerprint (the pipeline, the verify gate, and the library
// selection are all deterministic in the problem content), so repeated
// residual problems across a campaign's runs skip the service round
// trip and re-verification entirely.
func adopt(ctx context.Context, svc *service.Service, prob *model.Problem, cfg RunConfig, at model.Time, sc *runScratch) (schedule.Schedule, string, int, bool) {
	fp := prob.Fingerprint()
	memo := cfg.OnContingency == nil
	if memo {
		if e, hit := sc.adoptMemo[fp]; hit {
			return e.sched, e.source, e.rejects, e.ok
		}
	}
	rejects := 0
	// keep memoizes the outcome before returning it. A canceled
	// context may have turned "infeasible" into "gave up early" — that
	// must not be remembered as infeasibility, so cancel-tainted
	// outcomes are never stored.
	keep := func(s schedule.Schedule, source string, ok bool) (schedule.Schedule, string, int, bool) {
		if memo && ctx.Err() == nil {
			if sc.adoptMemo == nil {
				sc.adoptMemo = make(map[string]adoptEntry)
			} else if len(sc.adoptMemo) >= adoptMemoMax {
				clear(sc.adoptMemo)
			}
			sc.adoptMemo[fp] = adoptEntry{sched: s, source: source, rejects: rejects, ok: ok}
		}
		return s, source, rejects, ok
	}
	check := func(s schedule.Schedule, source string) bool {
		ok := verify.Check(prob, s).OK()
		if cfg.OnContingency != nil {
			cfg.OnContingency(ContingencyEvent{
				Seed: cfg.Seed, MissionTime: at,
				Problem: prob, Schedule: s,
				Source: source, Adopted: ok,
			})
		}
		if !ok {
			rejects++
		}
		return ok
	}
	if r, err := svc.ScheduleFPCtx(ctx, fp, prob, cfg.Opts, service.StageMinPower); err == nil {
		if check(r.Schedule, pipelineSource) {
			return keep(r.Schedule, pipelineSource, true)
		}
	}
	// Full pipeline infeasible (or rejected): fall back to runtime
	// library selection over the cheaper stages. A canceled context
	// makes these fail fast too; the caller detects cancellation
	// itself rather than reading it as infeasibility.
	var lib rtlib.Selector
	for _, st := range []service.Stage{service.StageMaxPower, service.StageTiming} {
		if r, err := svc.ScheduleFPCtx(ctx, fp, prob, cfg.Opts, st); err == nil {
			lib.Add(rtlib.NewEntry(st.String(), prob, r.Schedule))
		}
	}
	clear(sc.tried)
	tried := sc.tried
	for {
		var cand rtlib.Selector
		for _, e := range lib.Entries() {
			if !tried[e.Name] {
				cand.Add(e)
			}
		}
		e, ok := cand.Select(prob.Pmax, prob.Pmin)
		if !ok {
			return keep(schedule.Schedule{}, "", false)
		}
		tried[e.Name] = true
		if check(e.Sched, e.Name) {
			return keep(e.Sched, e.Name, true)
		}
	}
}

// Run executes one seeded fault-injection run: plan the nominal
// mission, realize the seed's faults, replay the schedule against the
// faulted environment, and replan the residual problem at every
// violation until the mission completes or is lost.
func Run(cfg RunConfig) RunResult {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a context. When ctx is done the run stops at the
// next replanning decision and reports FailCanceled — an abandoned
// run, not a mission verdict; campaign aggregation discards it.
func RunCtx(ctx context.Context, cfg RunConfig) RunResult {
	return runOne(ctx, cfg, newRunScratch(), nil)
}

// nominalPlan is the t = 0 planning result. Every run of a campaign
// plans the same nominal problem under the same starting conditions,
// so campaigns hoist this once per fan-out and re-account the outcome
// (rejects, fallback counting) per run — byte-identical to each run
// adopting it itself. The problem and schedule are shared read-only.
type nominalPlan struct {
	p0      *model.Problem
	s0      schedule.Schedule
	source  string
	rejects int
	ok      bool
	finish0 model.Time
}

// hoistNominal plans the nominal mission under the conditions at t=0.
func hoistNominal(ctx context.Context, svc *service.Service, cfg RunConfig, sc *runScratch) *nominalPlan {
	m := cfg.Mission
	p0 := m.Problem.Clone()
	p0.Pmin = m.Phases[0].Cond.Solar
	p0.Pmax = p0.Pmin + m.Battery.MaxPower
	s0, source, rejects, ok := adopt(ctx, svc, p0, cfg, 0, sc)
	nom := &nominalPlan{p0: p0, s0: s0, source: source, rejects: rejects, ok: ok}
	if ok {
		nom.finish0 = s0.Finish(p0.Tasks)
	}
	return nom
}

// runOne executes one seeded run on a worker's scratch state. nom is
// the campaign's hoisted nominal plan (nil when the run must plan the
// nominal mission itself — single runs, and campaigns with an
// OnContingency observer that wants per-run nominal events).
func runOne(ctx context.Context, cfg RunConfig, sc *runScratch, nom *nominalPlan) RunResult {
	res := RunResult{Seed: cfg.Seed}
	svc := cfg.Svc
	if svc == nil {
		svc = service.Shared()
	}
	maxRes := cfg.MaxReschedules
	if maxRes <= 0 {
		maxRes = DefaultMaxReschedules
	}
	m := cfg.Mission
	if m.Problem == nil || len(m.Phases) == 0 {
		res.Failure = FailUnschedulable
		return res
	}
	rng := sc.seed(cfg.Seed)

	// Plan the nominal mission under the conditions at t = 0 (or adopt
	// the campaign's hoisted plan).
	if nom == nil {
		nom = hoistNominal(ctx, svc, cfg, sc)
	}
	res.VerifyRejects += nom.rejects
	if !nom.ok {
		if ctx.Err() != nil {
			res.Failure = FailCanceled
			return res
		}
		res.Failure = FailUnschedulable
		return res
	}
	if nom.source != pipelineSource {
		res.Fallbacks++
	}
	p0, s0, finish0 := nom.p0, nom.s0, nom.finish0

	deadline := m.Deadline
	if deadline <= 0 {
		deadline = DeadlineFactor * finish0
	}

	// Realize this run's faults. Random solar windows are drawn inside
	// the window where they can matter: up to twice the nominal finish
	// (or the deadline if sooner).
	horizon := deadline
	if h := 2 * finish0; h < horizon {
		horizon = h
	}
	cfg.Faults.drawInto(&sc.faults, rng, m.Problem.Tasks, m.Faults, horizon)
	faults := &sc.faults
	for _, t := range m.Problem.Tasks {
		if faults.fatal[t.Name] {
			res.Failure = FailTask
			return res
		}
	}
	env := sc.environment(m.Phases, faults.windows)
	bat := power.Battery{
		MaxPower: m.Battery.MaxPower,
		Capacity: m.Battery.Capacity * (1 - faults.degrade),
	}
	sup := power.Supply{Solar: env.solar, Battery: &bat}

	// The contingency loop. T is the mission time the current segment
	// started; P/S are the segment's problem and schedule (times are
	// segment-relative).
	T := model.Time(0)
	P, S := p0, s0
	for {
		if ctx.Err() != nil {
			res.Failure = FailCanceled
			res.Finish = T
			return res
		}
		until := model.Time(-1)
		tc, hasTC := timingConflict(P, sc.taskIndex(P), faults.actual, S)
		if hasTC {
			until = tc
		}
		rep, execErr := sc.replayer.ExecuteUntil(sc.delayedProblem(P, faults.actual), S, sup, &bat, T, until)
		res.EnergyCost = bat.Drawn()
		switch {
		case execErr != nil:
			// Power or battery violation at rep.ViolationAt.
		case hasTC && tc < rep.Finish:
			// Replay stopped cleanly at the timing conflict.
		default:
			res.Survived = true
			res.Finish = T + rep.Finish
			res.DeadlineMiss = res.Finish > deadline
			return res
		}
		stop := rep.StoppedAt
		if res.Reschedules >= maxRes {
			res.Failure = FailRescheduleLimit
			res.Finish = T + stop
			return res
		}
		res.Reschedules++
		// In-flight work is restarted (tasks are non-preemptive;
		// partial progress is lost), so the pending set is both lists.
		// In-flight tasks have revealed their true duration: the
		// contingency plans with it rather than re-trusting the
		// nominal delay (which would re-create the same conflict).
		// Copies, not aliases: the replayer owns rep's slices and
		// overwrites them on the next replay.
		sc.pending = append(append(sc.pending[:0], rep.InFlight...), rep.NotStarted...)
		pending := sc.pending
		clear(sc.revealed)
		revealed := sc.revealed
		for _, n := range rep.InFlight {
			revealed[n] = faults.actual[n]
		}
		if len(pending) == 0 {
			// The final second of the mission failed with nothing left
			// to replan around.
			res.Failure = FailBattery
			res.Finish = T + stop
			return res
		}

		// Replan at the violation instant, waiting out blackouts at
		// environment breakpoints when no contingency exists yet.
		cur := T + stop
		adopted := false
		for !adopted {
			if ctx.Err() != nil {
				res.Failure = FailCanceled
				res.Finish = cur
				return res
			}
			q, drops := residualProblem(P, S, pending, cur-T, revealed)
			q.Pmin = sup.PminAt(cur)
			headroom := 0.0
			// Offer the battery's output only when it can actually
			// sustain it for at least a second (or is untracked).
			if bat.Capacity == 0 || bat.Remaining() > bat.MaxPower {
				headroom = bat.MaxPower
			}
			q.Pmax = q.Pmin + headroom
			if q.Pmax > 0 { // Pmax == 0 means "unconstrained" to the model; never schedule into a blackout
				s2, source, rejects, ok := adopt(ctx, svc, q, cfg, cur, sc)
				res.VerifyRejects += rejects
				if ok {
					if source != pipelineSource {
						res.Fallbacks++
					}
					res.ConstraintDrops += drops
					T, P, S = cur, q, s2
					adopted = true
					continue
				}
			}
			// No viable contingency now: idle on base power until the
			// environment next changes.
			next := nextChange(env.breaks, cur)
			if next < 0 || next > deadline {
				res.Failure = FailInfeasible
				res.Finish = cur
				res.EnergyCost = bat.Drawn()
				return res
			}
			for t := cur; t < next; t++ {
				need := P.BasePower - sup.PminAt(t)
				if need <= 0 {
					continue
				}
				if need > bat.MaxPower+1e-9 {
					res.Failure = FailBattery
					res.Finish = t
					res.EnergyCost = bat.Drawn()
					return res
				}
				if err := bat.Draw(need); err != nil {
					res.Failure = FailBattery
					res.Finish = t
					res.EnergyCost = bat.Drawn()
					return res
				}
			}
			res.Waits++
			cur = next
		}
	}
}
