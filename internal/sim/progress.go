package sim

import (
	"expvar"
	"sync/atomic"
)

// Campaign progress counters. They are process-global — a campaign is
// a whole-process activity — and expvar-typed so they can be wired
// into /debug/vars, but not auto-published (tests run many campaigns;
// expvar.Publish panics on duplicate names). The web layer snapshots
// them into /stats via Progress.
var (
	progRunsDone      expvar.Int   // runs folded into a reducer (any outcome)
	progRunsFailed    expvar.Int   // folded runs that did not survive
	progReducerMerges expvar.Int   // Reducer.Merge calls (worker + shard merges)
	progHighWater     atomic.Int64 // highest completed run index, CAS-maxed
)

// progRunDone records one completed run: idx is the campaign run index
// (the seed-range position), failed reports a non-survival outcome.
// The high-water mark only ratchets upward.
func progRunDone(idx int, failed bool) {
	progRunsDone.Add(1)
	if failed {
		progRunsFailed.Add(1)
	}
	for {
		cur := progHighWater.Load()
		if int64(idx) <= cur {
			return
		}
		if progHighWater.CompareAndSwap(cur, int64(idx)) {
			return
		}
	}
}

// ProgressStats is a point-in-time snapshot of campaign progress,
// shaped for JSON (the /stats campaign block and -progress output).
type ProgressStats struct {
	RunsDone      int64 `json:"runs_done"`
	RunsFailed    int64 `json:"runs_failed"`
	ReducerMerges int64 `json:"reducer_merges"`
	SeedHighWater int64 `json:"seed_high_water"`
}

// Progress snapshots the process-global campaign counters.
func Progress() ProgressStats {
	return ProgressStats{
		RunsDone:      progRunsDone.Value(),
		RunsFailed:    progRunsFailed.Value(),
		ReducerMerges: progReducerMerges.Value(),
		SeedHighWater: progHighWater.Load(),
	}
}

// ProgressVars assembles the live campaign counters into an expvar.Map
// (names: runs_done, runs_failed, reducer_merges, seed_high_water).
// The map shares the counters, so one wiring stays current.
func ProgressVars() *expvar.Map {
	m := new(expvar.Map)
	m.Set("runs_done", &progRunsDone)
	m.Set("runs_failed", &progRunsFailed)
	m.Set("reducer_merges", &progReducerMerges)
	m.Set("seed_high_water", expvar.Func(func() any { return progHighWater.Load() }))
	return m
}
