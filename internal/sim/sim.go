// Package sim is the Monte-Carlo fault-injection and contingency-
// rescheduling layer on top of the static pipeline: where the paper's
// schedules assume nominal task durations and solar output, sim asks
// whether a mission survives when they are wrong. A seed-driven
// FaultModel perturbs each run — task duration overruns, solar
// brownouts and dropouts, battery capacity degradation, transient task
// failures with bounded retry — and the run engine replays the
// schedule through internal/exec. When the replay detects a violation
// (a broken dependency or resource conflict from an overrun, a power
// budget breach, the battery floor), an online rescheduler builds the
// residual problem from the tasks still pending at the violation
// instant, re-runs the pipeline through internal/service (identical
// residual problems hit the content-addressed cache), falls back to
// internal/runtime library selection when the full pipeline is
// infeasible, and adopts a contingency schedule only after it passes
// the independent internal/verify oracle. A Campaign fans N seeded
// runs across the service worker pool and aggregates survival,
// deadline-miss, reschedule, and energy-cost statistics into a
// byte-deterministic JSON summary.
package sim

import (
	"repro/internal/mission"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/rover"
)

// DeadlineFactor scales the nominal finish time into the default
// mission deadline when a Mission does not set one explicitly.
const DeadlineFactor = 8

// Mission is the nominal world a run perturbs: a scheduling problem,
// the solar conditions over mission time, a battery, scripted fault
// windows, and a completion deadline.
type Mission struct {
	// Problem is the nominal task set. Its Pmax/Pmin are overwritten
	// by the conditions at mission start; the constraint graph and
	// powers are what matter here.
	Problem *model.Problem
	// Phases is the solar staircase over mission time (the final
	// phase is unbounded when its Duration is 0).
	Phases []mission.Phase
	// Faults are scenario-scripted fault windows applied on every run
	// of a campaign, in addition to the randomized FaultModel draws.
	Faults []mission.FaultPhase
	// Battery is the pack template; each run executes against its own
	// copy (possibly capacity-degraded by the fault model). A zero
	// Capacity is an untracked pack: only MaxPower constrains it.
	Battery power.Battery
	// Deadline is the mission time budget. 0 selects
	// DeadlineFactor × the nominal schedule's finish time.
	Deadline model.Time
}

// RoverMission builds the fault-injection mission for a rover travel
// scenario: one power-aware iteration of the case in force at mission
// start, executed under the scenario's solar staircase, battery, and
// scripted fault windows.
func RoverMission(sc *mission.Scenario) Mission {
	m := Mission{
		Problem: rover.BuildIteration(sc.Phases[0].Cond.Case, rover.Cold),
		Phases:  sc.Phases,
		Faults:  sc.Faults,
		Battery: power.Battery{Capacity: 5000, MaxPower: 10},
	}
	if sc.Battery != nil {
		m.Battery = power.Battery{Capacity: sc.Battery.Capacity, MaxPower: sc.Battery.MaxPower}
	}
	return m
}

// PaperMission is the built-in default campaign target: one cold
// best-case rover iteration under the Table 4 solar staircase with
// the 5 kJ / 10 W battery pack.
func PaperMission() Mission {
	return Mission{
		Problem: rover.BuildIteration(rover.Best, rover.Cold),
		Phases:  mission.PaperScenario(),
		Battery: power.Battery{Capacity: 5000, MaxPower: 10},
	}
}

// ProblemMission wraps an arbitrary scheduling problem as a mission:
// constant solar at the problem's Pmin, an untracked battery providing
// the Pmax−Pmin headroom, and no scripted faults. This is how the web
// server simulates its registered problems.
func ProblemMission(p *model.Problem) Mission {
	head := p.Pmax - p.Pmin
	if head < 0 {
		head = 0
	}
	return Mission{
		Problem: p,
		Phases:  []mission.Phase{{Cond: mission.Condition{Solar: p.Pmin}}},
		Battery: power.Battery{MaxPower: head},
	}
}
