package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/sched"
	"repro/internal/service"
)

// Campaign fans N seeded fault-injection runs across the scheduling
// service's worker pool and aggregates the outcomes. Run i uses the
// seed splitmix64(Seed, i), so the sequence of per-run seeds — and
// therefore every statistic — is independent of worker count and
// scheduling order: the same (Seed, Runs) always produces the same
// Summary, byte for byte.
type Campaign struct {
	Mission Mission
	Faults  FaultModel
	// Runs is the number of seeded runs (required, > 0).
	Runs int
	// Seed is the campaign master seed.
	Seed int64
	Opts sched.Options
	// Svc is the scheduling service (Shared() when nil). Its worker
	// pool bounds run concurrency; its cache deduplicates identical
	// residual problems across runs.
	Svc *service.Service
	// MaxReschedules bounds per-run replanning (default 16).
	MaxReschedules int
	// OnContingency observes every verifier-checked candidate across
	// all runs; it may be called concurrently.
	OnContingency func(ContingencyEvent)
}

// Dist summarizes a sample distribution.
type Dist struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
}

// dist computes nearest-rank percentiles over xs (not modified).
func dist(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return Dist{
		Mean: sum / float64(len(sorted)),
		P50:  rank(0.50),
		P95:  rank(0.95),
		Max:  sorted[len(sorted)-1],
	}
}

// Summary aggregates a campaign. Field order (and the sorted Failures
// map keys) make its JSON rendering deterministic.
type Summary struct {
	Runs             int            `json:"runs"`
	Seed             int64          `json:"seed"`
	Survived         int            `json:"survived"`
	SurvivalRate     float64        `json:"survival_rate"`
	DeadlineMisses   int            `json:"deadline_misses"`
	DeadlineMissRate float64        `json:"deadline_miss_rate"`
	Reschedules      int            `json:"reschedules"`
	Fallbacks        int            `json:"fallbacks"`
	Waits            int            `json:"waits"`
	VerifyRejects    int            `json:"verify_rejects"`
	ConstraintDrops  int            `json:"constraint_drops"`
	Failures         map[string]int `json:"failures,omitempty"`
	// EnergyCost is the battery-energy distribution over all runs;
	// Finish is the completion-time distribution over surviving runs.
	EnergyCost Dist `json:"energy_cost"`
	Finish     Dist `json:"finish"`
}

// JSON renders the summary with stable indentation and key order.
func (s Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Run executes the campaign.
func (c Campaign) Run() (Summary, error) {
	return c.RunCtx(context.Background())
}

// RunCtx is Run under a context. A canceled campaign stops submitting
// runs, lets in-flight runs abandon themselves at their next replanning
// decision, and returns the context's error: a partial campaign would
// silently skew every statistic, so there is no partial Summary.
func (c Campaign) RunCtx(ctx context.Context) (Summary, error) {
	if c.Runs <= 0 {
		return Summary{}, fmt.Errorf("sim: campaign needs Runs > 0, got %d", c.Runs)
	}
	if c.Mission.Problem == nil || len(c.Mission.Phases) == 0 {
		return Summary{}, fmt.Errorf("sim: campaign mission needs a problem and at least one phase")
	}
	svc := c.Svc
	if svc == nil {
		svc = service.Shared()
	}
	results := make([]RunResult, c.Runs)
	err := svc.Pool().ForEachCtx(ctx, c.Runs, func(i int) {
		results[i] = RunCtx(ctx, RunConfig{
			Mission:        c.Mission,
			Faults:         c.Faults,
			Opts:           c.Opts,
			Seed:           runSeed(c.Seed, i),
			Svc:            svc,
			MaxReschedules: c.MaxReschedules,
			OnContingency:  c.OnContingency,
		})
	})
	if err == nil {
		err = ctx.Err() // all runs submitted, but late cancellation abandoned some
	}
	for _, r := range results {
		if r.Failure == FailCanceled {
			err = cmpErr(err, ctx.Err())
		}
	}
	if err != nil {
		return Summary{}, fmt.Errorf("sim: campaign aborted: %w", err)
	}
	return summarize(c.Runs, c.Seed, results), nil
}

// cmpErr keeps the first non-nil error.
func cmpErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// summarize folds per-run results, in run order, into a Summary.
func summarize(runs int, seed int64, results []RunResult) Summary {
	sum := Summary{Runs: runs, Seed: seed}
	var energy, finish []float64
	for _, r := range results {
		if r.Survived {
			sum.Survived++
			finish = append(finish, float64(r.Finish))
			if r.DeadlineMiss {
				sum.DeadlineMisses++
			}
		} else {
			if sum.Failures == nil {
				sum.Failures = make(map[string]int)
			}
			sum.Failures[r.Failure]++
		}
		sum.Reschedules += r.Reschedules
		sum.Fallbacks += r.Fallbacks
		sum.Waits += r.Waits
		sum.VerifyRejects += r.VerifyRejects
		sum.ConstraintDrops += r.ConstraintDrops
		energy = append(energy, r.EnergyCost)
	}
	sum.SurvivalRate = float64(sum.Survived) / float64(runs)
	sum.DeadlineMissRate = float64(sum.DeadlineMisses) / float64(runs)
	sum.EnergyCost = dist(energy)
	sum.Finish = dist(finish)
	return sum
}
