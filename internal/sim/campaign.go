package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/service"
)

// Campaign fans N seeded fault-injection runs across worker goroutines
// and folds the outcomes into a streaming Reducer. Run i uses the seed
// splitmix64(Seed, i), so the per-run seeds — and therefore every
// statistic — are independent of worker count and scheduling order;
// the integer reducer algebra makes the fold independent of grouping.
// The same (Seed, Runs) always produces the same Summary, byte for
// byte, at any parallelism and across any seed-range sharding
// (ReduceRange + Reducer.Merge).
type Campaign struct {
	Mission Mission
	Faults  FaultModel
	// Runs is the number of seeded runs (required, > 0).
	Runs int
	// Seed is the campaign master seed.
	Seed int64
	Opts sched.Options
	// Svc is the scheduling service (Shared() when nil). Its worker
	// count sets run concurrency; its cache deduplicates identical
	// residual problems across runs.
	Svc *service.Service
	// MaxReschedules bounds per-run replanning (default 16).
	MaxReschedules int
	// OnContingency observes every verifier-checked candidate across
	// all runs; it may be called concurrently. Setting it disables the
	// nominal-plan hoist and the per-worker adopt memo (every candidate
	// must actually be checked to be observed), so campaigns with an
	// observer run slower.
	OnContingency func(ContingencyEvent)
}

// Dist summarizes a sample distribution. Mean and Max are exact; P50
// and P95 come from the reducer's integer log-bucket sketch (relative
// error <= 2^-5), clamped to the observed [min, max].
type Dist struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
}

// Summary aggregates a campaign. Field order (and the sorted Failures
// map keys) make its JSON rendering deterministic.
type Summary struct {
	Runs             int            `json:"runs"`
	Seed             int64          `json:"seed"`
	Survived         int            `json:"survived"`
	SurvivalRate     float64        `json:"survival_rate"`
	DeadlineMisses   int            `json:"deadline_misses"`
	DeadlineMissRate float64        `json:"deadline_miss_rate"`
	Reschedules      int            `json:"reschedules"`
	Fallbacks        int            `json:"fallbacks"`
	Waits            int            `json:"waits"`
	VerifyRejects    int            `json:"verify_rejects"`
	ConstraintDrops  int            `json:"constraint_drops"`
	Failures         map[string]int `json:"failures,omitempty"`
	// RescheduleHist[k] counts runs that replanned exactly k times
	// (trailing zeros trimmed; omitted when no runs were folded).
	RescheduleHist []int64 `json:"reschedule_hist,omitempty"`
	// EnergyCost is the battery-energy distribution over all runs;
	// Finish is the completion-time distribution over surviving runs.
	EnergyCost Dist `json:"energy_cost"`
	Finish     Dist `json:"finish"`
}

// JSON renders the summary with stable indentation and key order.
func (s Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Run executes the campaign.
func (c Campaign) Run() (Summary, error) {
	return c.RunCtx(context.Background())
}

// RunCtx is Run under a context. A canceled campaign stops claiming
// runs, lets in-flight runs abandon themselves at their next replanning
// decision, and returns the context's error: a partial campaign would
// silently skew every statistic, so there is no partial Summary.
func (c Campaign) RunCtx(ctx context.Context) (Summary, error) {
	red, err := c.ReduceRange(ctx, 0, c.Runs)
	if err != nil {
		return Summary{}, err
	}
	return red.Finalize(c.Seed), nil
}

// ReduceRange executes runs [lo, hi) of the campaign and returns their
// partial reducer. It is the sharding entry point: a coordinator that
// splits [0, Runs) into contiguous sub-ranges, calls ReduceRange for
// each (locally or on remote shards), and merges the partial reducers
// in range order gets exactly RunCtx's summary — run i's outcome
// depends only on splitmix64(Seed, i), and the reducer algebra is
// exact, so the grouping cannot show through.
//
// Memory is constant in (hi - lo): each worker folds runs into a
// private reducer as they finish; no per-run result is retained.
func (c Campaign) ReduceRange(ctx context.Context, lo, hi int) (*Reducer, error) {
	if c.Runs <= 0 {
		return nil, fmt.Errorf("sim: campaign needs Runs > 0, got %d", c.Runs)
	}
	if c.Mission.Problem == nil || len(c.Mission.Phases) == 0 {
		return nil, fmt.Errorf("sim: campaign mission needs a problem and at least one phase")
	}
	if lo < 0 || hi > c.Runs || lo >= hi {
		return nil, fmt.Errorf("sim: campaign range [%d, %d) outside [0, %d)", lo, hi, c.Runs)
	}
	svc := c.Svc
	if svc == nil {
		svc = service.Shared()
	}
	workers := svc.Pool().Workers()
	if workers > hi-lo {
		workers = hi - lo
	}
	if workers < 1 {
		workers = 1
	}

	cfg := RunConfig{
		Mission:        c.Mission,
		Faults:         c.Faults,
		Opts:           c.Opts,
		Svc:            svc,
		MaxReschedules: c.MaxReschedules,
		OnContingency:  c.OnContingency,
	}
	// Hoist the nominal plan: every run plans the same problem under
	// the same t=0 conditions, so one adopt serves the whole range. An
	// OnContingency observer disables the hoist — it must see each
	// run's nominal candidates under that run's seed.
	var nom *nominalPlan
	if c.OnContingency == nil {
		nom = hoistNominal(ctx, svc, cfg, newRunScratch())
		if !nom.ok && ctx.Err() != nil {
			return nil, fmt.Errorf("sim: campaign aborted: %w", ctx.Err())
		}
	}

	// Workers claim run indices from a shared counter and fold results
	// into private reducers. Claim order is racy; the summary is not,
	// because folding is commutative and exact. Dedicated goroutines —
	// not the service pool — so campaign workers can never starve the
	// compute slots their own adopts queue on.
	reds := make([]*Reducer, workers)
	var (
		next     atomic.Int64
		canceled atomic.Bool
		wg       sync.WaitGroup
	)
	next.Store(int64(lo))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			red := NewReducer()
			reds[w] = red
			sc := newRunScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= hi || canceled.Load() || ctx.Err() != nil {
					return
				}
				cfg := cfg
				cfg.Seed = runSeed(c.Seed, i)
				res := runOne(ctx, cfg, sc, nom)
				if res.Failure == FailCanceled {
					// An abandoned run, not a mission verdict: folding
					// it would skew the campaign, so abort instead.
					canceled.Store(true)
					return
				}
				red.Add(res)
				progRunDone(i, !res.Survived)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: campaign aborted: %w", err)
	}
	if canceled.Load() {
		// A run saw cancellation that the context has since cleared —
		// only possible with an exotic context; report it anyway.
		return nil, fmt.Errorf("sim: campaign aborted: %w", context.Canceled)
	}
	// Merge the worker reducers in worker order. (Any order gives the
	// same bytes — the fold is exact — but determinism should not need
	// that argument to be checked twice.)
	total := reds[0]
	for _, r := range reds[1:] {
		total.Merge(r)
	}
	return total, nil
}
