package sim

import (
	"math/rand"

	"repro/internal/exec"
	"repro/internal/mission"
	"repro/internal/model"
	"repro/internal/schedule"
)

// adoptMemoMax bounds the per-worker adopt memo. Campaigns with heavy
// fault models generate an unbounded stream of distinct residual
// problems; clearing the memo at the cap keeps a 10^6-run campaign's
// memory flat while still short-circuiting the common repeats.
const adoptMemoMax = 4096

// adoptEntry is a memoized adopt outcome for one residual-problem
// fingerprint. The pipeline and the verifier are deterministic in the
// problem content, so replaying the stored outcome — including the
// reject count — is indistinguishable from recomputing it.
type adoptEntry struct {
	sched   schedule.Schedule
	source  string
	rejects int
	ok      bool
}

// runScratch is the per-worker reusable state of the run loop: the
// run RNG, the realized fault set, the replayer and its buffers, the
// perturbed-problem copy, and the adopt memo. One scratch serves one
// goroutine for the lifetime of a campaign; nothing in it is shared.
type runScratch struct {
	src rand.Source
	rng *rand.Rand

	faults   runFaults
	replayer exec.Replayer

	// delayed is the reusable perturbed problem handed to the replayer
	// (the scratch equivalent of withActualDelays); taskBuf backs its
	// task slice.
	delayed model.Problem
	taskBuf []model.Task

	// pending and revealed carry the residual state between a replay
	// and the replans that consume it.
	pending  []string
	revealed map[string]model.Time

	// idx memoizes TaskIndex for the current segment problem (keyed by
	// pointer — a campaign's shared nominal problem hits across runs).
	idxProb *model.Problem
	idx     map[string]int

	// tried is the adopt loop's per-call candidate-exclusion set.
	tried map[string]bool

	adoptMemo map[string]adoptEntry

	// env memoizes buildEnvironment for the previous run's window set:
	// most runs draw no random solar windows, so consecutive runs of a
	// campaign share one environment (read-only once built). A scratch
	// serves a single campaign, so the phases are constant.
	env        environment
	envWindows []window
	envValid   bool
}

func newRunScratch() *runScratch {
	src := rand.NewSource(0)
	return &runScratch{
		src:      src,
		rng:      rand.New(src),
		revealed: make(map[string]model.Time),
		tried:    make(map[string]bool),
	}
}

// seed re-seeds the scratch RNG for a run and returns it. The run loop
// consumes only Float64 and Intn — both drawn straight from the
// source — so re-seeding the shared source reproduces a fresh
// rand.New(rand.NewSource(seed)) draw-for-draw.
func (sc *runScratch) seed(seed int64) *rand.Rand {
	sc.src.Seed(seed)
	return sc.rng
}

// delayedProblem is withActualDelays without the Clone: the scratch
// problem shadows p with the run's realized delays applied. Only the
// task slice is copied — the replay reads nothing else that the delay
// overlay changes (constraints alias p's).
func (sc *runScratch) delayedProblem(p *model.Problem, actual map[string]model.Time) *model.Problem {
	sc.taskBuf = append(sc.taskBuf[:0], p.Tasks...)
	sc.delayed = *p
	sc.delayed.Tasks = sc.taskBuf
	for i := range sc.delayed.Tasks {
		if d, ok := actual[sc.delayed.Tasks[i].Name]; ok && d > sc.delayed.Tasks[i].Delay {
			sc.delayed.Tasks[i].Delay = d
		}
	}
	return &sc.delayed
}

// taskIndex memoizes p.TaskIndex() for the current segment problem.
func (sc *runScratch) taskIndex(p *model.Problem) map[string]int {
	if sc.idxProb != p {
		sc.idxProb = p
		sc.idx = p.TaskIndex()
	}
	return sc.idx
}

// environment returns the faulted environment for this run's windows,
// reusing the previous run's when the window set is identical.
func (sc *runScratch) environment(phases []mission.Phase, windows []window) environment {
	if sc.envValid && windowsEqual(sc.envWindows, windows) {
		return sc.env
	}
	sc.env = buildEnvironment(phases, windows)
	sc.envWindows = append(sc.envWindows[:0], windows...)
	sc.envValid = true
	return sc.env
}

func windowsEqual(a, b []window) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
