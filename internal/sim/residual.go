package sim

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/schedule"
)

// timingConflict scans for the earliest instant at which the run's
// overruns break the schedule's structure: a same-resource successor
// whose planned start arrives before its predecessor's actual finish,
// or a finish-to-start separation (Min >= the nominal delay of From)
// whose target starts before From actually finishes. The conflict
// instant is the successor's planned start — the moment the executive
// would discover it cannot start the task and must replan. Starts are
// kept as planned ("start fidelity"): tasks that can start on time do.
// idx must be p.TaskIndex() — callers in hot loops memoize it.
func timingConflict(p *model.Problem, idx map[string]int, actual map[string]model.Time, s schedule.Schedule) (model.Time, bool) {
	best := model.Time(0)
	found := false
	consider := func(t model.Time) {
		if !found || t < best {
			best, found = t, true
		}
	}
	dur := func(name string, nominal model.Time) model.Time {
		if d, ok := actual[name]; ok && d > nominal {
			return d
		}
		return nominal
	}
	for i := range p.Tasks {
		for j := range p.Tasks {
			if i == j || p.Tasks[i].Resource != p.Tasks[j].Resource {
				continue
			}
			si, sj := s.Start[i], s.Start[j]
			if si > sj || (si == sj && p.Tasks[i].Name >= p.Tasks[j].Name) {
				continue // only scan i as the earlier of the pair
			}
			if si+dur(p.Tasks[i].Name, p.Tasks[i].Delay) > sj {
				consider(sj)
			}
		}
	}
	for _, c := range p.Constraints {
		if c.From == model.Anchor || c.To == model.Anchor {
			continue
		}
		u, v := idx[c.From], idx[c.To]
		if c.Min < p.Tasks[u].Delay {
			continue // not a finish-before-start dependency
		}
		su, sv := s.Start[u], s.Start[v]
		if su+dur(c.From, p.Tasks[u].Delay) > sv {
			consider(sv)
		}
	}
	return best, found
}

// residualProblem builds the contingency problem at a violation:
// the pending tasks (in flight or not yet started at the stop instant)
// with every constraint rewritten onto the new time axis that starts at
// `elapsed` seconds into the current segment. Completed tasks are fixed
// history — constraints against them become anchor releases/deadlines
// using their executed start times; the anchor itself behaves as a
// completed task that started at 0. A deadline already in the past is
// unsatisfiable by any rescheduler and is dropped; the drop count is
// returned so campaigns can report how much constraint fidelity
// contingencies cost.
//
// promote carries the *revealed* actual delays of tasks the executive
// has watched overrun (the in-flight set): the contingency plans with
// their true durations — both the task delay itself and the Min of any
// finish-to-start edge out of it — so the same overrun cannot re-break
// the new schedule. Unrevealed future tasks keep nominal delays.
func residualProblem(p *model.Problem, s schedule.Schedule, pending []string, elapsed model.Time, promote map[string]model.Time) (*model.Problem, int) {
	pend := make(map[string]bool, len(pending))
	for _, n := range pending {
		pend[n] = true
	}
	idx := p.TaskIndex()
	q := &model.Problem{
		Name:      fmt.Sprintf("%s@t%d", p.Name, elapsed),
		BasePower: p.BasePower,
		Pmax:      p.Pmax,
		Pmin:      p.Pmin,
	}
	// stretch is how much a promoted task's revealed delay exceeds its
	// nominal one; finish-to-start Mins out of it grow by the same
	// amount (preserving any extra margin the constraint carried).
	stretch := make(map[string]model.Time)
	for _, t := range p.Tasks {
		if !pend[t.Name] {
			continue
		}
		if d, ok := promote[t.Name]; ok && d > t.Delay {
			stretch[t.Name] = d - t.Delay
			t.Delay = d
		}
		q.Tasks = append(q.Tasks, t)
	}
	// start returns the fixed (executed) start time of a non-pending
	// endpoint on the old axis; the anchor started at 0.
	start := func(name string) model.Time {
		if name == model.Anchor {
			return 0
		}
		return s.Start[idx[name]]
	}
	drops := 0
	for _, c := range p.Constraints {
		fromPend := c.From != model.Anchor && pend[c.From]
		toPend := c.To != model.Anchor && pend[c.To]
		switch {
		case fromPend && toPend:
			if ext := stretch[c.From]; ext > 0 && c.Min >= p.Tasks[idx[c.From]].Delay {
				c.Min += ext
				if c.HasMax {
					c.Max += ext
				}
			}
			q.Constraints = append(q.Constraints, c)
		case !fromPend && toPend:
			// sigma(to) >= start(from)+Min, on the new axis
			// sigma'(to) >= start(from)+Min-elapsed.
			if rel := start(c.From) + c.Min - elapsed; rel > 0 {
				q.Constraints = append(q.Constraints, model.Constraint{From: model.Anchor, To: c.To, Min: rel})
			}
			if c.HasMax {
				if d := start(c.From) + c.Max - elapsed; d >= 0 {
					q.Constraints = append(q.Constraints, model.Constraint{From: model.Anchor, To: c.To, Min: 0, Max: d, HasMax: true})
				} else {
					drops++
				}
			}
		case fromPend && !toPend:
			// start(to) >= sigma(from)+Min inverts to a deadline:
			// sigma'(from) <= start(to)-Min-elapsed.
			if d := start(c.To) - c.Min - elapsed; d >= 0 {
				q.Constraints = append(q.Constraints, model.Constraint{From: model.Anchor, To: c.From, Min: 0, Max: d, HasMax: true})
			} else {
				drops++
			}
			if c.HasMax {
				// start(to) <= sigma(from)+Max inverts to a release:
				// sigma'(from) >= start(to)-Max-elapsed.
				if rel := start(c.To) - c.Max - elapsed; rel > 0 {
					q.Constraints = append(q.Constraints, model.Constraint{From: model.Anchor, To: c.From, Min: rel})
				}
			}
		}
	}
	return q, drops
}
