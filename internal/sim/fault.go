package sim

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/mission"
	"repro/internal/model"
)

// FaultModel parameterizes the randomized perturbations a run draws.
// Probabilities are per mission (per task for the task faults); the
// zero value injects nothing, so a zero-model campaign replays the
// nominal schedule and must survive every run.
type FaultModel struct {
	// OverrunProb is the chance a task overruns its nominal delay;
	// the overrun fraction is uniform in [0, OverrunFrac).
	OverrunProb float64
	OverrunFrac float64
	// FailProb is the chance each attempt of a task fails
	// transiently; a failed attempt is retried (re-executing the full
	// task) up to MaxRetries times, after which the failure is fatal.
	FailProb   float64
	MaxRetries int
	// BrownoutProb is the chance of one solar brownout window: solar
	// output scaled by BrownoutFrac for up to BrownoutDur seconds.
	BrownoutProb float64
	BrownoutFrac float64
	BrownoutDur  model.Time
	// DropoutProb is the chance of one total solar dropout window of
	// up to DropoutDur seconds.
	DropoutProb float64
	DropoutDur  model.Time
	// DegradeFrac bounds the uniform battery capacity degradation:
	// each run's capacity is scaled by 1 − U[0, DegradeFrac).
	DegradeFrac float64
}

// DefaultFaults is the campaign default: moderate rates of every
// fault class, calibrated so the paper's rover missions survive most
// runs but exercise the contingency rescheduler in the rest.
func DefaultFaults() FaultModel {
	return FaultModel{
		OverrunProb:  0.25,
		OverrunFrac:  0.5,
		FailProb:     0.05,
		MaxRetries:   2,
		BrownoutProb: 0.3,
		BrownoutFrac: 0.5,
		BrownoutDur:  60,
		DropoutProb:  0.15,
		DropoutDur:   30,
		DegradeFrac:  0.2,
	}
}

// ParseFaults parses the CLI's comma-separated key=value fault spec,
// starting from DefaultFaults. The empty string is the default model;
// "none" (or "off") disables all randomized faults. Keys: overrun,
// overrunfrac, fail, retries, brownout, brownoutfrac, brownoutdur,
// dropout, dropoutdur, degrade.
func ParseFaults(s string) (FaultModel, error) {
	switch strings.TrimSpace(s) {
	case "":
		return DefaultFaults(), nil
	case "none", "off":
		return FaultModel{}, nil
	}
	m := DefaultFaults()
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return m, fmt.Errorf("sim: fault spec %q is not key=value", kv)
		}
		prob := func(dst *float64) error {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 0 || x > 1 {
				return fmt.Errorf("sim: %s wants a probability in [0,1], got %q", k, v)
			}
			*dst = x
			return nil
		}
		frac := func(dst *float64) error {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 0 || x >= 1 {
				return fmt.Errorf("sim: %s wants a fraction in [0,1), got %q", k, v)
			}
			*dst = x
			return nil
		}
		dur := func(dst *model.Time) error {
			x, err := strconv.Atoi(v)
			if err != nil || x <= 0 {
				return fmt.Errorf("sim: %s wants a positive duration, got %q", k, v)
			}
			*dst = model.Time(x)
			return nil
		}
		var err error
		switch k {
		case "overrun":
			err = prob(&m.OverrunProb)
		case "overrunfrac":
			x, perr := strconv.ParseFloat(v, 64)
			if perr != nil || x < 0 {
				err = fmt.Errorf("sim: overrunfrac wants a fraction >= 0, got %q", v)
			} else {
				m.OverrunFrac = x
			}
		case "fail":
			err = prob(&m.FailProb)
		case "retries":
			x, perr := strconv.Atoi(v)
			if perr != nil || x < 0 {
				err = fmt.Errorf("sim: retries wants an int >= 0, got %q", v)
			} else {
				m.MaxRetries = x
			}
		case "brownout":
			err = prob(&m.BrownoutProb)
		case "brownoutfrac":
			err = frac(&m.BrownoutFrac)
		case "brownoutdur":
			err = dur(&m.BrownoutDur)
		case "dropout":
			err = prob(&m.DropoutProb)
		case "dropoutdur":
			err = dur(&m.DropoutDur)
		case "degrade":
			err = frac(&m.DegradeFrac)
		default:
			err = fmt.Errorf("sim: unknown fault key %q", k)
		}
		if err != nil {
			return m, err
		}
	}
	return m, nil
}

// window is one solar degradation interval [start, end) whose output
// is scaled by factor (0 for a dropout).
type window struct {
	start, end model.Time
	factor     float64
}

// runFaults is the realized perturbation of one run.
type runFaults struct {
	// actual maps each task to its realized delay: nominal, scaled by
	// any overrun, multiplied by the retry count.
	actual map[string]model.Time
	// fatal marks tasks whose transient failures exhausted the retry
	// budget; the mission is lost outright.
	fatal map[string]bool
	// windows are the solar degradation intervals, scripted first.
	windows []window
	// degrade is the battery capacity loss fraction.
	degrade float64
}

// draw realizes one run's faults. The RNG consumption order is fixed
// — tasks in problem order (overrun, then retries), then brownout,
// dropout, degradation — so a given (model, seed, task set) always
// yields the same perturbation regardless of scheduling concurrency.
func (m FaultModel) draw(rng *rand.Rand, tasks []model.Task, scripted []mission.FaultPhase, horizon model.Time) runFaults {
	var f runFaults
	m.drawInto(&f, rng, tasks, scripted, horizon)
	return f
}

// drawInto is draw into reused storage: f's maps are cleared and its
// window slice truncated, so a campaign worker redraws every run
// without reallocating. The RNG consumption order is identical to
// draw's.
func (m FaultModel) drawInto(f *runFaults, rng *rand.Rand, tasks []model.Task, scripted []mission.FaultPhase, horizon model.Time) {
	if f.actual == nil {
		f.actual = make(map[string]model.Time, len(tasks))
	} else {
		clear(f.actual)
	}
	if f.fatal == nil {
		f.fatal = make(map[string]bool)
	} else {
		clear(f.fatal)
	}
	f.windows = f.windows[:0]
	f.degrade = 0
	for _, t := range tasks {
		frac := 0.0
		if m.OverrunProb > 0 && rng.Float64() < m.OverrunProb {
			frac = rng.Float64() * m.OverrunFrac
		}
		fails := 0
		if m.FailProb > 0 {
			for fails <= m.MaxRetries && rng.Float64() < m.FailProb {
				fails++
			}
		}
		if fails > m.MaxRetries {
			f.fatal[t.Name] = true
		}
		d := model.Time(math.Ceil(float64(t.Delay) * (1 + frac)))
		if d < t.Delay {
			d = t.Delay
		}
		f.actual[t.Name] = d * model.Time(1+fails)
	}
	for _, fp := range scripted {
		factor := fp.Factor
		if fp.Kind == mission.FaultDropout {
			factor = 0
		}
		f.windows = append(f.windows, window{start: fp.Start, end: fp.Start + fp.Duration, factor: factor})
	}
	if horizon < 1 {
		horizon = 1
	}
	maxDur := func(d model.Time) int {
		if d < 1 {
			return 1
		}
		return int(d)
	}
	if m.BrownoutProb > 0 && rng.Float64() < m.BrownoutProb {
		start := model.Time(rng.Intn(int(horizon)))
		dur := model.Time(1 + rng.Intn(maxDur(m.BrownoutDur)))
		f.windows = append(f.windows, window{start: start, end: start + dur, factor: m.BrownoutFrac})
	}
	if m.DropoutProb > 0 && rng.Float64() < m.DropoutProb {
		start := model.Time(rng.Intn(int(horizon)))
		dur := model.Time(1 + rng.Intn(maxDur(m.DropoutDur)))
		f.windows = append(f.windows, window{start: start, end: start + dur, factor: 0})
	}
	if m.DegradeFrac > 0 {
		f.degrade = rng.Float64() * m.DegradeFrac
	}
}
