package sim

import (
	"strings"
	"testing"

	"repro/internal/mission"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/service"
)

// chainMission is a three-task serial chain on one resource under
// constant 10 W solar with a small untracked battery: demand is
// 1 W base + 5 W task = 6 W, comfortably solar-powered, so a
// zero-fault run never touches the battery.
func chainMission() Mission {
	p := &model.Problem{
		Name:      "chain",
		BasePower: 1,
		Tasks: []model.Task{
			{Name: "a", Resource: "cpu", Delay: 2, Power: 5},
			{Name: "b", Resource: "cpu", Delay: 2, Power: 5},
			{Name: "c", Resource: "cpu", Delay: 2, Power: 5},
		},
		Constraints: []model.Constraint{
			{From: "a", To: "b", Min: 2},
			{From: "b", To: "c", Min: 2},
		},
	}
	return Mission{
		Problem: p,
		Phases:  []mission.Phase{{Cond: mission.Condition{Solar: 10}}},
		Battery: power.Battery{Capacity: 0, MaxPower: 2},
	}
}

func TestRunNominal(t *testing.T) {
	res := Run(RunConfig{
		Mission: chainMission(),
		Seed:    1,
		Svc:     service.New(service.Config{Workers: 1}),
	})
	if !res.Survived || res.Failure != "" {
		t.Fatalf("nominal run did not survive: %+v", res)
	}
	if res.Finish != 6 {
		t.Errorf("Finish = %d, want 6", res.Finish)
	}
	if res.Reschedules != 0 || res.Waits != 0 || res.EnergyCost != 0 {
		t.Errorf("nominal run should be fault-free: %+v", res)
	}
	if res.DeadlineMiss {
		t.Errorf("nominal run missed the deadline: %+v", res)
	}
}

func TestRunScriptedDropout(t *testing.T) {
	m := chainMission()
	// Total solar loss over [3,7): the replay violates at t=3 (demand
	// 6 W vs 2 W battery output), no contingency fits a 2 W budget, so
	// the run idles on base power until solar returns at t=7 and
	// reschedules the in-flight b plus the pending c.
	m.Faults = []mission.FaultPhase{{Kind: mission.FaultDropout, Start: 3, Duration: 4}}
	res := Run(RunConfig{
		Mission: m,
		Seed:    1,
		Svc:     service.New(service.Config{Workers: 1}),
	})
	if !res.Survived || res.Failure != "" {
		t.Fatalf("dropout run did not survive: %+v", res)
	}
	if res.Reschedules != 1 || res.Waits != 1 {
		t.Errorf("Reschedules = %d, Waits = %d, want 1, 1", res.Reschedules, res.Waits)
	}
	// b restarts at 7, c follows: finish 7 + 4 = 11.
	if res.Finish != 11 {
		t.Errorf("Finish = %d, want 11", res.Finish)
	}
	// Battery served only the 1 W base load over the 4 s blackout.
	if res.EnergyCost != 4 {
		t.Errorf("EnergyCost = %g, want 4", res.EnergyCost)
	}
}

func TestRunFatalTaskFailure(t *testing.T) {
	res := Run(RunConfig{
		Mission: chainMission(),
		Faults:  FaultModel{FailProb: 1, MaxRetries: 0},
		Seed:    7,
		Svc:     service.New(service.Config{Workers: 1}),
	})
	if res.Survived || res.Failure != FailTask {
		t.Fatalf("Failure = %q, Survived = %v, want %q", res.Failure, res.Survived, FailTask)
	}
}

func TestRunPermanentBlackoutInfeasible(t *testing.T) {
	m := chainMission()
	m.Phases = []mission.Phase{
		{Duration: 3, Cond: mission.Condition{Solar: 10}},
		{Cond: mission.Condition{Solar: 0}},
	}
	m.Battery = power.Battery{Capacity: 1000, MaxPower: 2}
	res := Run(RunConfig{
		Mission: m,
		Seed:    1,
		Svc:     service.New(service.Config{Workers: 1}),
	})
	if res.Survived {
		t.Fatalf("run survived a permanent blackout: %+v", res)
	}
	if res.Failure != FailInfeasible {
		t.Fatalf("Failure = %q, want %q", res.Failure, FailInfeasible)
	}
}

func TestTimingConflict(t *testing.T) {
	p := &model.Problem{
		Tasks: []model.Task{
			{Name: "a", Resource: "cpu", Delay: 2, Power: 1},
			{Name: "b", Resource: "cpu", Delay: 2, Power: 1},
			{Name: "c", Resource: "arm", Delay: 2, Power: 1},
		},
		Constraints: []model.Constraint{
			{From: "a", To: "c", Min: 2}, // finish-to-start dependency
		},
	}
	s := schedule.Schedule{Start: []model.Time{0, 2, 4}}

	if _, ok := timingConflict(p, p.TaskIndex(), map[string]model.Time{}, s); ok {
		t.Fatal("nominal delays reported a conflict")
	}
	// a overruns to 3: same-resource conflict with b at its start 2.
	if at, ok := timingConflict(p, p.TaskIndex(), map[string]model.Time{"a": 3}, s); !ok || at != 2 {
		t.Errorf("overrun a=3: conflict = %d, %v, want 2, true", at, ok)
	}
	// a overruns to 5: b conflicts at 2 (earlier than c's dependency
	// conflict at 4).
	if at, ok := timingConflict(p, p.TaskIndex(), map[string]model.Time{"a": 5}, s); !ok || at != 2 {
		t.Errorf("overrun a=5: conflict = %d, %v, want 2, true", at, ok)
	}
	// b overruns past c's start: only the dependency a->c is a
	// finish-to-start edge, and b/c share no resource, so b's overrun
	// alone conflicts with nothing.
	if _, ok := timingConflict(p, p.TaskIndex(), map[string]model.Time{"b": 5}, s); ok {
		t.Error("overrun b=5 reported a conflict; b and c are unrelated")
	}
	// c overruns: nothing depends on c.
	if _, ok := timingConflict(p, p.TaskIndex(), map[string]model.Time{"c": 9}, s); ok {
		t.Error("overrun c=9 reported a conflict")
	}
}

func TestResidualProblem(t *testing.T) {
	p := &model.Problem{
		Name:      "resid",
		BasePower: 1,
		Tasks: []model.Task{
			{Name: "a", Resource: "cpu", Delay: 2, Power: 5},
			{Name: "b", Resource: "cpu", Delay: 2, Power: 5},
			{Name: "c", Resource: "arm", Delay: 2, Power: 5},
		},
		Constraints: []model.Constraint{
			{From: "a", To: "b", Min: 2},
			{From: "a", To: "c", Min: 1, Max: 8, HasMax: true},
			{From: model.Anchor, To: "c", Min: 0, Max: 10, HasMax: true},
			{From: "b", To: "c", Min: 2},
		},
	}
	s := schedule.Schedule{Start: []model.Time{0, 2, 5}}
	q, drops := residualProblem(p, s, []string{"b", "c"}, 4, nil)
	if drops != 0 {
		t.Fatalf("drops = %d, want 0", drops)
	}
	if len(q.Tasks) != 2 || q.Tasks[0].Name != "b" || q.Tasks[1].Name != "c" {
		t.Fatalf("residual tasks = %v", q.Tasks)
	}
	want := []model.Constraint{
		// a->c [1,8] with a fixed at 0, elapsed 4: release dead, max
		// becomes an anchor deadline at 8-4.
		{From: model.Anchor, To: "c", Min: 0, Max: 4, HasMax: true},
		// anchor deadline 10 shifts to 6.
		{From: model.Anchor, To: "c", Min: 0, Max: 6, HasMax: true},
		// pending-to-pending edge kept verbatim.
		{From: "b", To: "c", Min: 2},
	}
	if len(q.Constraints) != len(want) {
		t.Fatalf("residual constraints = %v, want %v", q.Constraints, want)
	}
	for i, c := range want {
		if q.Constraints[i] != c {
			t.Errorf("constraint %d = %v, want %v", i, q.Constraints[i], c)
		}
	}
	if err := q.Validate(); err != nil {
		t.Errorf("residual problem invalid: %v", err)
	}

	// A deadline already in the past is dropped and counted.
	p2 := p.Clone()
	p2.Constraints = append(p2.Constraints, model.Constraint{From: model.Anchor, To: "b", Min: 0, Max: 3, HasMax: true})
	_, drops = residualProblem(p2, s, []string{"b", "c"}, 4, nil)
	if drops != 1 {
		t.Errorf("drops = %d, want 1 (deadline 3 at elapsed 4)", drops)
	}
}

func TestResidualProblemPromotesRevealedDelays(t *testing.T) {
	p := &model.Problem{
		Name: "promote",
		Tasks: []model.Task{
			{Name: "a", Resource: "cpu", Delay: 2, Power: 5},
			{Name: "b", Resource: "arm", Delay: 2, Power: 5},
		},
		Constraints: []model.Constraint{
			{From: "a", To: "b", Min: 2},                       // finish-to-start: stretches
			{From: "a", To: "b", Min: 1, Max: 9, HasMax: true}, // start-to-start window: kept as-is
		},
	}
	s := schedule.Schedule{Start: []model.Time{0, 2}}
	q, _ := residualProblem(p, s, []string{"a", "b"}, 1, map[string]model.Time{"a": 5})
	if q.Tasks[0].Delay != 5 {
		t.Errorf("promoted delay = %d, want 5", q.Tasks[0].Delay)
	}
	if q.Tasks[1].Delay != 2 {
		t.Errorf("unrevealed delay = %d, want 2", q.Tasks[1].Delay)
	}
	if q.Constraints[0].Min != 5 {
		t.Errorf("finish-to-start Min = %d, want 5 (stretched by the overrun)", q.Constraints[0].Min)
	}
	if q.Constraints[1].Min != 1 || q.Constraints[1].Max != 9 {
		t.Errorf("start-to-start window changed: %v", q.Constraints[1])
	}
}

func TestParseFaults(t *testing.T) {
	if m, err := ParseFaults(""); err != nil || m != DefaultFaults() {
		t.Errorf("ParseFaults(\"\") = %+v, %v, want defaults", m, err)
	}
	if m, err := ParseFaults("none"); err != nil || m != (FaultModel{}) {
		t.Errorf("ParseFaults(none) = %+v, %v, want zero model", m, err)
	}
	m, err := ParseFaults("overrun=0.5,retries=3,dropoutdur=90, degrade=0")
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	if m.OverrunProb != 0.5 || m.MaxRetries != 3 || m.DropoutDur != 90 || m.DegradeFrac != 0 {
		t.Errorf("overrides not applied: %+v", m)
	}
	if m.BrownoutProb != DefaultFaults().BrownoutProb {
		t.Errorf("untouched keys should keep defaults: %+v", m)
	}
	for _, bad := range []string{"bogus=1", "overrun=2", "overrun=x", "dropoutdur=0", "retries=-1", "degrade=1", "noequals"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
}

func TestParseFaultsErrorsMentionKey(t *testing.T) {
	_, err := ParseFaults("brownoutdur=-5")
	if err == nil || !strings.Contains(err.Error(), "brownoutdur") {
		t.Errorf("error %v should name the offending key", err)
	}
}

func TestBaseSolarAt(t *testing.T) {
	phases := mission.PaperScenario()
	for _, tc := range []struct {
		t    model.Time
		want float64
	}{{0, 14.9}, {599, 14.9}, {600, 12}, {1199, 12}, {1200, 9}, {5000, 9}} {
		if got := baseSolarAt(phases, tc.t); got != tc.want {
			t.Errorf("baseSolarAt(%d) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestBuildEnvironmentOverlay(t *testing.T) {
	env := buildEnvironment(
		[]mission.Phase{{Duration: 10, Cond: mission.Condition{Solar: 8}}, {Cond: mission.Condition{Solar: 4}}},
		[]window{{start: 5, end: 12, factor: 0.5}},
	)
	for _, tc := range []struct {
		t    model.Time
		want float64
	}{{0, 8}, {4, 8}, {5, 4}, {9, 4}, {10, 2}, {11, 2}, {12, 4}, {20, 4}} {
		if got := env.solar.At(tc.t); got != tc.want {
			t.Errorf("solar.At(%d) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if got := nextChange(env.breaks, 0); got != 5 {
		t.Errorf("nextChange(0) = %d, want 5", got)
	}
	if got := nextChange(env.breaks, 12); got != -1 {
		t.Errorf("nextChange(12) = %d, want -1", got)
	}
}
