package sim

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/mission"
	"repro/internal/service"
	"repro/internal/verify"
)

// contingencyLog is a concurrency-safe OnContingency recorder.
type contingencyLog struct {
	mu     sync.Mutex
	events []ContingencyEvent
}

func (l *contingencyLog) record(ev ContingencyEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

// TestCampaignDeterministicAcrossWorkers is the core determinism
// guarantee: the same (seed, runs) produces byte-identical JSON
// summaries regardless of worker-pool width. The -race CI run drives
// the pooled variant concurrently.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	m := chainMission()
	m.Faults = []mission.FaultPhase{{Kind: mission.FaultDropout, Start: 3, Duration: 4}}
	render := func(workers int) []byte {
		c := Campaign{
			Mission: m,
			Faults:  DefaultFaults(),
			Runs:    24,
			Seed:    42,
			Svc:     service.New(service.Config{Workers: workers}),
		}
		sum, err := c.Run()
		if err != nil {
			t.Fatalf("campaign (workers=%d): %v", workers, err)
		}
		b, err := sum.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return b
	}
	seq := render(1)
	pooled := render(4)
	if !bytes.Equal(seq, pooled) {
		t.Fatalf("summaries differ between workers=1 and workers=4:\n--- sequential\n%s\n--- pooled\n%s", seq, pooled)
	}
	// And re-running on a warm cache changes nothing.
	if again := render(4); !bytes.Equal(pooled, again) {
		t.Fatalf("summary not stable across repeat runs:\n%s\nvs\n%s", pooled, again)
	}
}

// TestCampaignContingenciesVerified asserts the adoption gate: every
// contingency schedule a campaign adopts passes the independent
// verifier — zero tolerated violations — and rejected candidates are
// all counted in VerifyRejects.
func TestCampaignContingenciesVerified(t *testing.T) {
	m := chainMission()
	m.Faults = []mission.FaultPhase{{Kind: mission.FaultDropout, Start: 3, Duration: 4}}
	log := &contingencyLog{}
	c := Campaign{
		Mission:       m,
		Faults:        DefaultFaults(),
		Runs:          16,
		Seed:          7,
		Svc:           service.New(service.Config{Workers: 4}),
		OnContingency: log.record,
	}
	sum, err := c.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(log.events) == 0 {
		t.Fatal("no contingency events observed")
	}
	rejected := 0
	for _, ev := range log.events {
		rep := verify.Check(ev.Problem, ev.Schedule)
		if ev.Adopted && !rep.OK() {
			t.Errorf("adopted contingency at t=%d (seed %d, source %s) fails verification: %v",
				ev.MissionTime, ev.Seed, ev.Source, rep.Err())
		}
		if !ev.Adopted {
			rejected++
			if rep.OK() {
				t.Errorf("rejected contingency at t=%d (seed %d) verifies clean", ev.MissionTime, ev.Seed)
			}
		}
	}
	if sum.VerifyRejects != rejected {
		t.Errorf("VerifyRejects = %d, observed %d rejected events", sum.VerifyRejects, rejected)
	}
}

// TestCampaignRover drives the paper's rover mission through the
// default fault model and checks the aggregate invariants.
func TestCampaignRover(t *testing.T) {
	sc, err := mission.ParseScenarioFile("../../testdata/paper.scenario")
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	c := Campaign{
		Mission: RoverMission(sc),
		Faults:  DefaultFaults(),
		Runs:    12,
		Seed:    1,
		Svc:     service.New(service.Config{Workers: 4}),
	}
	sum, err := c.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if sum.Survived == 0 {
		t.Fatalf("no run survived the default fault model: %+v", sum)
	}
	if sum.Survived > sum.Runs {
		t.Fatalf("Survived %d > Runs %d", sum.Survived, sum.Runs)
	}
	failed := 0
	for _, n := range sum.Failures {
		failed += n
	}
	if sum.Survived+failed != sum.Runs {
		t.Errorf("survived %d + failed %d != runs %d", sum.Survived, failed, sum.Runs)
	}
	if sum.EnergyCost.Max < sum.EnergyCost.P95 || sum.EnergyCost.P95 < sum.EnergyCost.P50 {
		t.Errorf("energy distribution not ordered: %+v", sum.EnergyCost)
	}
	if sum.SurvivalRate <= 0 || sum.SurvivalRate > 1 {
		t.Errorf("SurvivalRate = %g out of range", sum.SurvivalRate)
	}
}

func TestCampaignZeroFaultsAlwaysSurvives(t *testing.T) {
	c := Campaign{
		Mission: chainMission(),
		Faults:  FaultModel{},
		Runs:    8,
		Seed:    3,
		Svc:     service.New(service.Config{Workers: 2}),
	}
	sum, err := c.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if sum.Survived != sum.Runs || sum.Reschedules != 0 {
		t.Fatalf("zero-fault campaign should be uneventful: %+v", sum)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := (Campaign{Runs: 0, Mission: chainMission()}).Run(); err == nil {
		t.Error("Runs=0 accepted")
	}
	if _, err := (Campaign{Runs: 1}).Run(); err == nil {
		t.Error("empty mission accepted")
	}
}
