package sim

import (
	"sort"

	"repro/internal/mission"
	"repro/internal/model"
	"repro/internal/power"
)

// environment is the faulted world of one run: the solar source with
// every degradation window applied, plus the sorted instants at which
// the supply level may change (phase boundaries and window edges) —
// the candidate wake-up times for a rescheduler waiting out a blackout.
type environment struct {
	solar  *power.Solar
	breaks []model.Time
}

// baseSolarAt evaluates the phase staircase at mission time t. Before
// the first phase (impossible: phases start at 0) and after the final
// open-ended phase the last level holds.
func baseSolarAt(phases []mission.Phase, t model.Time) float64 {
	at := model.Time(0)
	out := 0.0
	for i, ph := range phases {
		out = ph.Cond.Solar
		if i == len(phases)-1 || ph.Duration == 0 {
			break
		}
		at += ph.Duration
		if t < at {
			break
		}
	}
	return out
}

// factorAt multiplies the degradation factors of every window covering
// mission time t.
func factorAt(windows []window, t model.Time) float64 {
	f := 1.0
	for _, w := range windows {
		if w.start <= t && t < w.end {
			f *= w.factor
		}
	}
	return f
}

// buildEnvironment overlays the fault windows on the phase staircase,
// producing a piecewise-constant solar source whose breakpoints are
// the union of phase starts and window edges.
func buildEnvironment(phases []mission.Phase, windows []window) environment {
	set := map[model.Time]bool{0: true}
	at := model.Time(0)
	for i, ph := range phases {
		if i == len(phases)-1 || ph.Duration == 0 {
			break
		}
		at += ph.Duration
		set[at] = true
	}
	for _, w := range windows {
		if w.start >= 0 {
			set[w.start] = true
		}
		if w.end >= 0 {
			set[w.end] = true
		}
	}
	breaks := make([]model.Time, 0, len(set))
	for t := range set {
		breaks = append(breaks, t)
	}
	sort.Ints(breaks)
	solar := power.NewSolar(baseSolarAt(phases, 0) * factorAt(windows, 0))
	for _, t := range breaks[1:] {
		solar.AddPhase(t, baseSolarAt(phases, t)*factorAt(windows, t))
	}
	return environment{solar: solar, breaks: breaks}
}

// nextChange returns the first breakpoint strictly after t, or -1 when
// the environment never changes again.
func nextChange(breaks []model.Time, t model.Time) model.Time {
	i := sort.SearchInts(breaks, t+1)
	if i == len(breaks) {
		return -1
	}
	return breaks[i]
}

// runSeed derives the per-run seed for run index i of a campaign
// seeded with seed, via a splitmix64 step: well-mixed, and independent
// of the order the worker pool happens to execute runs in.
func runSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
