package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/mission"
	"repro/internal/model"
	"repro/internal/service"
)

var failKinds = []string{FailTask, FailBattery, FailInfeasible, FailUnschedulable, FailRescheduleLimit}

// randResult draws a synthetic RunResult covering the reducer's whole
// input surface: survivals and every failure kind, deadline misses,
// zero and large finishes, and energy costs spanning ~6 orders of
// magnitude to spread across the sketch's bucket range.
func randResult(rng *rand.Rand) RunResult {
	r := RunResult{
		Seed:            rng.Int63(),
		Reschedules:     rng.Intn(8),
		Fallbacks:       rng.Intn(3),
		Waits:           rng.Intn(4),
		VerifyRejects:   rng.Intn(5),
		ConstraintDrops: rng.Intn(3),
		EnergyCost:      rng.ExpFloat64() * float64(int64(1)<<rng.Intn(20)),
		Finish:          model.Time(rng.Intn(100000)),
	}
	if rng.Float64() < 0.75 {
		r.Survived = true
		r.DeadlineMiss = rng.Float64() < 0.2
	} else {
		r.Failure = failKinds[rng.Intn(len(failKinds))]
	}
	return r
}

// TestReducerMergeLaw is the merge homomorphism the sharded campaign
// engine rests on: folding a result stream through any partition into
// private reducers and merging them — in any order — finalizes to the
// byte-identical summary of folding the whole stream into one reducer.
// The reducer accumulates in exact integers, so this holds exactly,
// not approximately.
func TestReducerMergeLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		results := make([]RunResult, n)
		whole := NewReducer()
		for i := range results {
			results[i] = randResult(rng)
			whole.Add(results[i])
		}
		want, err := whole.Finalize(42).JSON()
		if err != nil {
			t.Fatal(err)
		}

		k := 1 + rng.Intn(6)
		parts := make([]*Reducer, k)
		for i := range parts {
			parts[i] = NewReducer()
		}
		for _, res := range results {
			parts[rng.Intn(k)].Add(res)
		}
		rng.Shuffle(k, func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		merged := parts[0]
		for _, p := range parts[1:] {
			merged.Merge(p)
		}
		got, err := merged.Finalize(42).JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("trial %d (n=%d, k=%d): merged summary differs from whole fold:\n--- whole\n%s\n--- merged\n%s",
				trial, n, k, want, got)
		}
	}
}

// TestReducerWireRoundTrip locks the partial-campaign wire format: a
// reducer survives Wire -> JSON -> ReducerFromWire with its finalized
// summary byte-identical, including when the round-tripped halves are
// merged afterwards (the router's scatter-gather path).
func TestReducerWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b, whole := NewReducer(), NewReducer(), NewReducer()
	for i := 0; i < 400; i++ {
		res := randResult(rng)
		whole.Add(res)
		if i%2 == 0 {
			a.Add(res)
		} else {
			b.Add(res)
		}
	}
	roundTrip := func(r *Reducer) *Reducer {
		data, err := json.Marshal(r.Wire())
		if err != nil {
			t.Fatal(err)
		}
		var w ReducerWire
		if err := json.Unmarshal(data, &w); err != nil {
			t.Fatal(err)
		}
		return ReducerFromWire(w)
	}
	want, err := whole.Finalize(7).JSON()
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := roundTrip(a), roundTrip(b)
	ra.Merge(rb)
	got, err := ra.Finalize(7).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("wire round-trip + merge differs:\n--- direct\n%s\n--- round-tripped\n%s", want, got)
	}
}

// TestCampaignDeterministicAcrossWorkersAndShards is the sharding
// determinism guarantee end to end: every combination of worker-pool
// width {1,4,16} and contiguous seed-range shard count {1,2,3} — with
// shard reducers additionally pushed through the wire format, exactly
// as a scatter-gather coordinator would — produces byte-identical
// summary JSON.
func TestCampaignDeterministicAcrossWorkersAndShards(t *testing.T) {
	m := chainMission()
	m.Faults = []mission.FaultPhase{{Kind: mission.FaultDropout, Start: 3, Duration: 4}}
	const runs = 24
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		for _, shards := range []int{1, 2, 3} {
			c := Campaign{
				Mission: m,
				Faults:  DefaultFaults(),
				Runs:    runs,
				Seed:    42,
				Svc:     service.New(service.Config{Workers: workers}),
			}
			var merged *Reducer
			lo := 0
			for s := 0; s < shards; s++ {
				hi := lo + runs/shards
				if s < runs%shards {
					hi++
				}
				red, err := c.ReduceRange(context.Background(), lo, hi)
				if err != nil {
					t.Fatalf("workers=%d shards=%d range [%d,%d): %v", workers, shards, lo, hi, err)
				}
				red = ReducerFromWire(red.Wire())
				if merged == nil {
					merged = red
				} else {
					merged.Merge(red)
				}
				lo = hi
			}
			got, err := merged.Finalize(42).JSON()
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
			} else if !bytes.Equal(want, got) {
				t.Fatalf("workers=%d shards=%d summary differs:\n--- want\n%s\n--- got\n%s", workers, shards, want, got)
			}
		}
	}
}

// TestSketchQuantiles checks the log-bucket sketch's accuracy contract
// directly: quantiles land within one sub-bucket (relative error
// 2^-5) of the exact nearest-rank value, and min/max are exact.
func TestSketchQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s sketch
	vals := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * float64(int64(1)<<rng.Intn(24)))
		s.add(v)
		vals = append(vals, v)
	}
	sortInt64s(vals)
	for _, q := range []float64{0.5, 0.95} {
		idx := int(q * float64(len(vals)))
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		exact := float64(vals[idx])
		got := float64(s.quantile(q))
		lo, hi := exact*(1-1.0/32), exact*(1+1.0/32)+1
		if got < lo || got > hi {
			t.Errorf("quantile(%g) = %g, exact %g (allowed [%g, %g])", q, got, exact, lo, hi)
		}
	}
	if s.min != vals[0] || s.max != vals[len(vals)-1] {
		t.Errorf("min/max = %d/%d, exact %d/%d", s.min, s.max, vals[0], vals[len(vals)-1])
	}
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
