package sim

import (
	"fmt"
	"testing"

	"repro/internal/service"
)

// BenchmarkCampaign measures a 16-run rover fault campaign, sequential
// vs fanned across the worker pool — the headline number for the
// Monte-Carlo layer. Each iteration uses a fresh service so the
// content-addressed cache warms inside the measurement, exactly as a
// CLI invocation would. CI gates both variants on allocs/op (the
// streaming engine's constant-memory property is exact) and, on
// multi-core runners, requires pooled-8 to beat sequential by the
// ratio benchgate's -min-speedup flag demands.
func BenchmarkCampaign(b *testing.B) {
	for _, workers := range []int{1, 8} {
		name := "sequential"
		if workers > 1 {
			name = fmt.Sprintf("pooled-%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := Campaign{
					Mission: PaperMission(),
					Faults:  DefaultFaults(),
					Runs:    16,
					Seed:    1,
					Svc:     service.New(service.Config{Workers: workers}),
				}
				if _, err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
