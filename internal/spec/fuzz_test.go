package spec

import (
	"strings"
	"testing"
)

// FuzzParse exercises the specification parser with arbitrary input:
// it must never panic, and any problem it accepts must round-trip
// through Format and validate.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"problem x\ntask a R 1 2\n",
		"task a R 1 2\ntask b S 3 4\na -> b [1,9]\n",
		"pmax 10\npmin 5\nbase 1\ntask t r 1 0\nrelease t 3\ndeadline t 9\n",
		"# comment only\n",
		"task a R 1 2\nprecede a a\n",
		"task a R -1 2\n",
		"a -> b [,]\n",
		"task a R 1 1e308\n",
		strings.Repeat("task t R 1 1\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParseString(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted problem fails validation: %v", err)
		}
		q, err := ParseString(Format(p))
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, Format(p))
		}
		if !problemsEqual(p, q) {
			t.Fatalf("round-trip changed the problem:\n%s", Format(p))
		}
	})
}
