package spec

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

const sample = `
# sensor node
problem sensor
pmax 10
pmin 6
base 1

task sample sensor 4 3
task tx radio 3 7

sample -> tx [2,20]
precede sample tx
release tx 1
deadline tx 30
`

func TestParseSample(t *testing.T) {
	p, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sensor" || p.Pmax != 10 || p.Pmin != 6 || p.BasePower != 1 {
		t.Fatalf("header mismatch: %+v", p)
	}
	if len(p.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(p.Tasks))
	}
	if !reflect.DeepEqual(p.Tasks[1], model.Task{Name: "tx", Resource: "radio", Delay: 3, Power: 7}) {
		t.Fatalf("task tx = %+v", p.Tasks[1])
	}
	if len(p.Constraints) != 4 {
		t.Fatalf("constraints = %d, want 4", len(p.Constraints))
	}
	w := p.Constraints[0]
	if w.From != "sample" || w.To != "tx" || w.Min != 2 || !w.HasMax || w.Max != 20 {
		t.Fatalf("window = %+v", w)
	}
	pre := p.Constraints[1]
	if pre.Min != 4 || pre.HasMax {
		t.Fatalf("precede = %+v, want min=delay(sample)", pre)
	}
	rel := p.Constraints[2]
	if rel.From != model.Anchor || rel.Min != 1 {
		t.Fatalf("release = %+v", rel)
	}
	dl := p.Constraints[3]
	if dl.From != model.Anchor || !dl.HasMax || dl.Max != 30 {
		t.Fatalf("deadline = %+v", dl)
	}
}

func TestParseAnchorEndpoint(t *testing.T) {
	p, err := ParseString("task a R 1 0\n$anchor -> a [5,9]\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Constraints[0].From != model.Anchor {
		t.Fatalf("constraint = %+v", p.Constraints[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bogus directive":            "bogus x y",
		"task arity":                 "task a R 1",
		"task bad delay":             "task a R x 1",
		"task bad power":             "task a R 1 x",
		"pmax arity":                 "pmax",
		"pmax bad value":             "pmax watts",
		"window no bracket":          "task a R 1 0\ntask b R 1 0\na -> b 5",
		"window no comma":            "task a R 1 0\ntask b R 1 0\na -> b [5]",
		"window bad min":             "task a R 1 0\ntask b R 1 0\na -> b [x,]",
		"window bad max":             "task a R 1 0\ntask b R 1 0\na -> b [1,x]",
		"precede arity":              "precede a",
		"release bad time":           "task a R 1 0\nrelease a x",
		"unknown task in constraint": "task a R 1 0\na -> zz [1,]",
		"no tasks at all":            "problem empty",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseString(text); err == nil {
				t.Fatalf("accepted %q", text)
			}
		})
	}
}

func TestParseReportsLineNumbers(t *testing.T) {
	_, err := ParseString("problem x\n\nbogus\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3", err)
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	p, err := ParseString("# leading\n\ntask a R 1 2 # trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 1 || p.Tasks[0].Power != 2 {
		t.Fatalf("tasks = %+v", p.Tasks)
	}
}

func randomProblem(seed int64) *model.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &model.Problem{Name: "rt", BasePower: float64(rng.Intn(4))}
	n := 2 + rng.Intn(6)
	for i := 0; i < n; i++ {
		p.AddTask(model.Task{
			Name:     "t" + string(rune('a'+i)),
			Resource: "R" + string(rune('0'+rng.Intn(3))),
			Delay:    1 + rng.Intn(9),
			Power:    float64(rng.Intn(16)) / 2,
		})
	}
	for k := 0; k < rng.Intn(6); k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		min := rng.Intn(10)
		if rng.Intn(2) == 0 {
			p.Window(p.Tasks[i].Name, p.Tasks[j].Name, min, min+rng.Intn(20))
		} else {
			p.MinSep(p.Tasks[i].Name, p.Tasks[j].Name, min)
		}
	}
	p.Pmax = 40
	p.Pmin = float64(rng.Intn(30))
	return p
}

// TestQuickTextRoundTrip: Format followed by Parse reproduces the
// problem exactly, for random problems.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProblem(seed)
		if p.Validate() != nil {
			return true // generator made something invalid; skip
		}
		q, err := ParseString(Format(p))
		if err != nil {
			return false
		}
		return problemsEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickJSONRoundTrip mirrors the text round-trip through JSON.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProblem(seed)
		if p.Validate() != nil {
			return true
		}
		data, err := MarshalJSON(p)
		if err != nil {
			return false
		}
		q, err := UnmarshalJSON(data)
		if err != nil {
			return false
		}
		return problemsEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func problemsEqual(a, b *model.Problem) bool {
	if a.Name != b.Name || a.Pmax != b.Pmax || a.Pmin != b.Pmin || a.BasePower != b.BasePower {
		return false
	}
	if len(a.Tasks) != len(b.Tasks) || len(a.Constraints) != len(b.Constraints) {
		return false
	}
	if len(a.Machines) != len(b.Machines) {
		return false
	}
	for i := range a.Machines {
		if a.Machines[i] != b.Machines[i] {
			return false
		}
	}
	for i := range a.Tasks {
		if !reflect.DeepEqual(a.Tasks[i], b.Tasks[i]) {
			return false
		}
	}
	for i := range a.Constraints {
		if a.Constraints[i] != b.Constraints[i] {
			return false
		}
	}
	return true
}

func TestWriteAndParseFile(t *testing.T) {
	p := randomProblem(7)
	path := t.TempDir() + "/x.spec"
	if err := WriteFile(path, p); err != nil {
		t.Fatal(err)
	}
	q, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !problemsEqual(p, q) {
		t.Fatal("file round-trip mismatch")
	}
	if _, err := ParseFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestUnmarshalJSONValidates(t *testing.T) {
	if _, err := UnmarshalJSON([]byte(`{"Tasks":[{"Name":"a","Resource":"R","Delay":0}]}`)); err == nil {
		t.Fatal("invalid problem accepted from JSON")
	}
	if _, err := UnmarshalJSON([]byte(`{nope`)); err == nil {
		t.Fatal("syntax error accepted")
	}
}
