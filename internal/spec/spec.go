// Package spec implements the textual front-end of the scheduler: a
// small line-oriented specification language for power-aware scheduling
// problems (the "system-level behavioral specification" designers feed
// the IMPACCT tool), plus JSON encoding for interchange.
//
// Grammar (one directive per line, '#' starts a comment):
//
//	problem <name>
//	pmax <watts>
//	pmin <watts>
//	base <watts>                        # constant load (e.g. CPU)
//	task <name> <resource> <delay> <power>
//	machine <name> <speed> <powerscale> # heterogeneous machine set
//	level <task> <mult> <power>         # DVS duration-power point
//	pin <task> <machine>                # restrict task to one machine
//	<from> -> <to> [<min>,]             # min separation of start times
//	<from> -> <to> [<min>,<max>]        # min/max separation window
//	precede <from> <to>                 # from finishes before to starts
//	release <task> <t>                  # task starts at or after t
//	deadline <task> <t>                 # task starts at or before t
//
// Constraint endpoints may name the virtual anchor as "$anchor".
package spec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Parse reads a problem specification from r. The returned problem has
// been validated.
func Parse(r io.Reader) (*model.Problem, error) {
	p := &model.Problem{}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := parseDirective(p, fields); err != nil {
			return nil, fmt.Errorf("spec: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseFile parses the specification in the named file.
func ParseFile(path string) (*model.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// ParseString parses a specification held in a string.
func ParseString(s string) (*model.Problem, error) { return Parse(strings.NewReader(s)) }

func parseDirective(p *model.Problem, f []string) error {
	switch f[0] {
	case "problem":
		if len(f) != 2 {
			return fmt.Errorf("problem wants 1 argument, got %d", len(f)-1)
		}
		p.Name = f[1]
	case "pmax":
		return parseWatts(f, &p.Pmax)
	case "pmin":
		return parseWatts(f, &p.Pmin)
	case "base":
		return parseWatts(f, &p.BasePower)
	case "task":
		if len(f) != 5 {
			return fmt.Errorf("task wants <name> <resource> <delay> <power>")
		}
		delay, err := strconv.Atoi(f[3])
		if err != nil {
			return fmt.Errorf("task %s: bad delay %q", f[1], f[3])
		}
		pw, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return fmt.Errorf("task %s: bad power %q", f[1], f[4])
		}
		p.AddTask(model.Task{Name: f[1], Resource: f[2], Delay: delay, Power: pw})
	case "machine":
		if len(f) != 4 {
			return fmt.Errorf("machine wants <name> <speed> <powerscale>")
		}
		speed, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return fmt.Errorf("machine %s: bad speed %q", f[1], f[2])
		}
		scale, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return fmt.Errorf("machine %s: bad power scale %q", f[1], f[3])
		}
		p.Machines = append(p.Machines, model.Machine{Name: f[1], Speed: speed, PowerScale: scale})
	case "level":
		if len(f) != 4 {
			return fmt.Errorf("level wants <task> <mult> <power>")
		}
		mult, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return fmt.Errorf("level %s: bad multiplier %q", f[1], f[2])
		}
		pw, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return fmt.Errorf("level %s: bad power %q", f[1], f[3])
		}
		i, ok := taskIndex(p, f[1])
		if !ok {
			return fmt.Errorf("level: unknown task %q (declare the task first)", f[1])
		}
		p.Tasks[i].Levels = append(p.Tasks[i].Levels, model.DVSLevel{Mult: mult, Power: pw})
	case "pin":
		if len(f) != 3 {
			return fmt.Errorf("pin wants <task> <machine>")
		}
		i, ok := taskIndex(p, f[1])
		if !ok {
			return fmt.Errorf("pin: unknown task %q (declare the task first)", f[1])
		}
		p.Tasks[i].Machine = f[2]
	case "precede":
		if len(f) != 3 {
			return fmt.Errorf("precede wants <from> <to>")
		}
		return p.Precede(f[1], f[2])
	case "release":
		task, t, err := nameTime(f)
		if err != nil {
			return err
		}
		p.Release(task, t)
	case "deadline":
		task, t, err := nameTime(f)
		if err != nil {
			return err
		}
		p.Deadline(task, t)
	default:
		// "<from> -> <to> [min,max]" constraint form.
		if len(f) == 4 && f[1] == "->" {
			return parseSeparation(p, f)
		}
		return fmt.Errorf("unknown directive %q", f[0])
	}
	return nil
}

func taskIndex(p *model.Problem, name string) (int, bool) {
	for i := range p.Tasks {
		if p.Tasks[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

func parseWatts(f []string, dst *float64) error {
	if len(f) != 2 {
		return fmt.Errorf("%s wants 1 argument", f[0])
	}
	v, err := strconv.ParseFloat(f[1], 64)
	if err != nil {
		return fmt.Errorf("%s: bad value %q", f[0], f[1])
	}
	*dst = v
	return nil
}

func nameTime(f []string) (string, model.Time, error) {
	if len(f) != 3 {
		return "", 0, fmt.Errorf("%s wants <task> <time>", f[0])
	}
	t, err := strconv.Atoi(f[2])
	if err != nil {
		return "", 0, fmt.Errorf("%s: bad time %q", f[0], f[2])
	}
	return f[1], t, nil
}

func parseSeparation(p *model.Problem, f []string) error {
	window := f[3]
	if len(window) < 3 || window[0] != '[' || window[len(window)-1] != ']' {
		return fmt.Errorf("bad window %q (want [min,] or [min,max])", window)
	}
	parts := strings.SplitN(window[1:len(window)-1], ",", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad window %q (missing comma)", window)
	}
	min, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return fmt.Errorf("bad window min %q", parts[0])
	}
	c := model.Constraint{From: f[0], To: f[2], Min: min}
	if maxs := strings.TrimSpace(parts[1]); maxs != "" {
		max, err := strconv.Atoi(maxs)
		if err != nil {
			return fmt.Errorf("bad window max %q", maxs)
		}
		c.Max, c.HasMax = max, true
	}
	p.Constraints = append(p.Constraints, c)
	return nil
}

// Format renders a problem in the specification language; the output
// round-trips through Parse.
func Format(p *model.Problem) string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "problem %s\n", p.Name)
	}
	if p.Pmax != 0 {
		fmt.Fprintf(&b, "pmax %g\n", p.Pmax)
	}
	if p.Pmin != 0 {
		fmt.Fprintf(&b, "pmin %g\n", p.Pmin)
	}
	if p.BasePower != 0 {
		fmt.Fprintf(&b, "base %g\n", p.BasePower)
	}
	b.WriteString("\n")
	for _, m := range p.Machines {
		fmt.Fprintf(&b, "machine %s %g %g\n", m.Name, m.Speed, m.PowerScale)
	}
	if len(p.Machines) > 0 {
		b.WriteString("\n")
	}
	for _, t := range p.Tasks {
		fmt.Fprintf(&b, "task %s %s %d %g\n", t.Name, t.Resource, t.Delay, t.Power)
	}
	// Level and pin lines follow the task block so a future Parse sees
	// every task before the directives referencing it; a degenerate
	// problem emits none, keeping its spec text byte-identical.
	for _, t := range p.Tasks {
		for _, l := range t.Levels {
			fmt.Fprintf(&b, "level %s %g %g\n", t.Name, l.Mult, l.Power)
		}
		if t.Machine != "" {
			fmt.Fprintf(&b, "pin %s %s\n", t.Name, t.Machine)
		}
	}
	b.WriteString("\n")
	for _, c := range p.Constraints {
		if c.HasMax {
			fmt.Fprintf(&b, "%s -> %s [%d,%d]\n", c.From, c.To, c.Min, c.Max)
		} else {
			fmt.Fprintf(&b, "%s -> %s [%d,]\n", c.From, c.To, c.Min)
		}
	}
	return b.String()
}

// WriteFile writes the problem's spec text to the named file.
func WriteFile(path string, p *model.Problem) error {
	return os.WriteFile(path, []byte(Format(p)), 0o644)
}

// MarshalJSON encodes the problem as indented JSON.
func MarshalJSON(p *model.Problem) ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// UnmarshalJSON decodes and validates a problem from JSON.
func UnmarshalJSON(data []byte) (*model.Problem, error) {
	var p model.Problem
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
