package spec

import (
	"encoding/json"
	"fmt"

	"repro/internal/model"
	"repro/internal/schedule"
)

// scheduleDoc matches the JSON emitted by `impacct -format json`: only
// the task names and start times are consumed; other fields are
// ignored.
type scheduleDoc struct {
	Tasks []struct {
		Name  string     `json:"name"`
		Start model.Time `json:"start"`
	} `json:"tasks"`
}

// ParseScheduleJSON decodes a schedule for problem p from the JSON
// document format of the impacct tool. Every task of the problem must
// appear exactly once.
func ParseScheduleJSON(p *model.Problem, data []byte) (schedule.Schedule, error) {
	var doc scheduleDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return schedule.Schedule{}, fmt.Errorf("spec: schedule json: %w", err)
	}
	starts := make(map[string]model.Time, len(doc.Tasks))
	for _, t := range doc.Tasks {
		if _, dup := starts[t.Name]; dup {
			return schedule.Schedule{}, fmt.Errorf("spec: schedule json: duplicate task %q", t.Name)
		}
		starts[t.Name] = t.Start
	}
	s := schedule.Schedule{Start: make([]model.Time, len(p.Tasks))}
	for i, t := range p.Tasks {
		at, ok := starts[t.Name]
		if !ok {
			return schedule.Schedule{}, fmt.Errorf("spec: schedule json: missing task %q", t.Name)
		}
		s.Start[i] = at
	}
	if len(starts) != len(p.Tasks) {
		return schedule.Schedule{}, fmt.Errorf("spec: schedule json: %d tasks for a %d-task problem",
			len(starts), len(p.Tasks))
	}
	return s, nil
}

// FormatScheduleJSON encodes a schedule in the same document format.
func FormatScheduleJSON(p *model.Problem, s schedule.Schedule) ([]byte, error) {
	var doc scheduleDoc
	for i, t := range p.Tasks {
		doc.Tasks = append(doc.Tasks, struct {
			Name  string     `json:"name"`
			Start model.Time `json:"start"`
		}{Name: t.Name, Start: s.Start[i]})
	}
	return json.MarshalIndent(doc, "", "  ")
}
