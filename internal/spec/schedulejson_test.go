package spec

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/schedule"
)

func jsonProblem() *model.Problem {
	return &model.Problem{
		Name: "j",
		Tasks: []model.Task{
			{Name: "a", Resource: "R", Delay: 2, Power: 1},
			{Name: "b", Resource: "S", Delay: 3, Power: 1},
		},
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	p := jsonProblem()
	s := schedule.Schedule{Start: []model.Time{4, 9}}
	data, err := FormatScheduleJSON(p, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseScheduleJSON(p, data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip = %v, want %v", got.Start, s.Start)
	}
}

func TestScheduleJSONAcceptsImpacctToolOutput(t *testing.T) {
	// The impacct tool emits extra fields; they must be ignored.
	doc := `{
	  "problem": "j",
	  "finish": 12,
	  "tasks": [
	    {"name": "b", "resource": "S", "start": 7, "end": 10, "power": 1},
	    {"name": "a", "resource": "R", "start": 0, "end": 2, "power": 1}
	  ]
	}`
	got, err := ParseScheduleJSON(jsonProblem(), []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Start[0] != 0 || got.Start[1] != 7 {
		t.Fatalf("starts = %v", got.Start)
	}
}

func TestScheduleJSONErrors(t *testing.T) {
	p := jsonProblem()
	cases := map[string]string{
		"syntax":    `{nope`,
		"missing":   `{"tasks":[{"name":"a","start":0}]}`,
		"duplicate": `{"tasks":[{"name":"a","start":0},{"name":"a","start":1},{"name":"b","start":2}]}`,
		"unknown":   `{"tasks":[{"name":"a","start":0},{"name":"zz","start":1}]}`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseScheduleJSON(p, []byte(doc)); err == nil {
				t.Fatalf("accepted %s", name)
			}
		})
	}
}

func TestScheduleJSONMentionsTaskInError(t *testing.T) {
	_, err := ParseScheduleJSON(jsonProblem(), []byte(`{"tasks":[{"name":"a","start":0}]}`))
	if err == nil || !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("err = %v, want mention of missing task b", err)
	}
}
