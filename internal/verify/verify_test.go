package verify

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/power"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/schedule"
)

func TestCheckAcceptsValidSchedule(t *testing.T) {
	p, s := rover.JPL(rover.Typical)
	rep := Check(p, s)
	if !rep.OK() {
		t.Fatalf("JPL schedule rejected: %v", rep.Err())
	}
	if rep.Err() != nil {
		t.Fatal("Err non-nil for OK report")
	}
}

func TestCheckFindsEveryViolationKind(t *testing.T) {
	p := &model.Problem{
		Name: "bad",
		Tasks: []model.Task{
			{Name: "a", Resource: "R", Delay: 4, Power: 6},
			{Name: "b", Resource: "R", Delay: 4, Power: 6},
			{Name: "c", Resource: "S", Delay: 2, Power: 6},
		},
		Pmax: 10,
	}
	p.MinSep("a", "c", 10)
	p.Window("a", "b", 0, 2)
	// a at -1 (negative), b at 5 (window max 2 exceeded, and overlaps
	// nothing), c at 3 (min sep violated, and a+c parallel... a ends 3)
	// Use starts engineered to trip all four kinds:
	s := schedule.Schedule{Start: []model.Time{-1, 1, 3}}
	// a[-1,3) and b[1,5) overlap on R; c at 3 violates min sep 10;
	// window a->b: 1-(-1)=2 <= 2 ok... adjust: b at 5 breaks window but
	// not overlap. Keep overlap via b at 1. Window sep 2 is legal, so
	// add a second schedule check below for the max case.
	rep := Check(p, s)
	kinds := map[Kind]bool{}
	for _, v := range rep.Violations {
		kinds[v.Kind] = true
	}
	for _, want := range []Kind{KindStart, KindConstraint, KindResource} {
		if !kinds[want] {
			t.Errorf("missing violation kind %s in %v", want, rep.Violations)
		}
	}

	// Spike: b and c parallel (12 W) over budget.
	s2 := schedule.Schedule{Start: []model.Time{0, 4, 10}}
	rep2 := Check(p, s2)
	found := false
	for _, v := range rep2.Violations {
		if v.Kind == KindSpike {
			found = true
		}
	}
	if !found {
		// b[4,8) alone is fine; make c overlap b.
		s3 := schedule.Schedule{Start: []model.Time{0, 4, 10}}
		s3.Start[2] = 5
		rep3 := Check(p, s3)
		for _, v := range rep3.Violations {
			if v.Kind == KindSpike {
				found = true
			}
		}
	}
	if !found {
		t.Error("spike not detected")
	}
}

func TestCheckWrongLength(t *testing.T) {
	p, _ := rover.JPL(rover.Best)
	rep := Check(p, schedule.Schedule{Start: []model.Time{1, 2}})
	if rep.OK() {
		t.Fatal("length mismatch accepted")
	}
}

func TestGapSecondsSoft(t *testing.T) {
	p := &model.Problem{
		Name:  "gap",
		Tasks: []model.Task{{Name: "a", Resource: "R", Delay: 2, Power: 2}},
		Pmax:  10,
		Pmin:  5,
	}
	rep := Check(p, schedule.Schedule{Start: []model.Time{0}})
	if !rep.OK() {
		t.Fatalf("gaps must be soft: %v", rep.Err())
	}
	if rep.GapSeconds != 2 {
		t.Fatalf("GapSeconds = %d, want 2", rep.GapSeconds)
	}
}

// TestOracleAgreesWithProfile: the per-second oracle metrics must match
// the segment-sweep profile metrics on scheduler output, across the
// paper's instances.
func TestOracleAgreesWithProfile(t *testing.T) {
	probs := []*model.Problem{paperex.Nine()}
	for _, c := range rover.Cases {
		probs = append(probs, rover.BuildIteration(c, rover.Cold))
	}
	for _, p := range probs {
		r, err := sched.Run(p, sched.Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		rep := Check(p, r.Schedule)
		if !rep.OK() {
			t.Fatalf("%s: scheduler output rejected: %v", p.Name, rep.Err())
		}
		prof := power.Build(p.Tasks, r.Schedule, p.BasePower)
		checks := []struct {
			name   string
			oracle float64
			sweep  float64
		}{
			{"energy", rep.Metrics.Energy, prof.Energy()},
			{"cost", rep.Metrics.EnergyCost, prof.EnergyCost(p.Pmin)},
			{"freeUsed", rep.Metrics.FreeUsed, prof.FreeEnergyUsed(p.Pmin)},
			{"util", rep.Metrics.Utilization, prof.Utilization(p.Pmin)},
			{"peak", rep.Metrics.Peak, prof.Peak()},
			{"floor", rep.Metrics.Floor, prof.Floor()},
		}
		for _, c := range checks {
			if math.Abs(c.oracle-c.sweep) > 1e-9 {
				t.Errorf("%s: %s oracle %.6f != sweep %.6f", p.Name, c.name, c.oracle, c.sweep)
			}
		}
		if rep.Metrics.Finish != r.Finish() {
			t.Errorf("%s: finish oracle %d != %d", p.Name, rep.Metrics.Finish, r.Finish())
		}
	}
}

// TestQuickOracleValidatesScheduler: on random problems the scheduler's
// output always passes the independent oracle, and the oracle's cost
// matches the profile's.
func TestQuickOracleValidatesScheduler(t *testing.T) {
	f := func(seed int64) bool {
		p := analysis.Generate(analysis.GenConfig{Tasks: 12, Seed: seed})
		r, err := sched.Run(p, sched.Options{})
		if err != nil {
			return false
		}
		rep := Check(p, r.Schedule)
		if !rep.OK() {
			t.Logf("seed %d: %v", seed, rep.Err())
			return false
		}
		prof := power.Build(p.Tasks, r.Schedule, p.BasePower)
		return math.Abs(rep.Metrics.EnergyCost-prof.EnergyCost(p.Pmin)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
