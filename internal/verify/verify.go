// Package verify is an independent schedule checker: it re-derives
// every property a power-aware schedule must satisfy directly from the
// problem statement, using deliberately different algorithms from the
// scheduler's own machinery (pairwise scans instead of graph edges,
// per-second sampling instead of segment sweeps). It serves as a
// cross-validation oracle in tests and as a certificate generator for
// downstream consumers of a schedule.
package verify

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/schedule"
)

// Kind classifies a violation.
type Kind string

// Violation kinds.
const (
	KindStart      Kind = "negative-start"    // task starts before time 0
	KindConstraint Kind = "timing-constraint" // min/max separation violated
	KindResource   Kind = "resource-conflict" // same-resource overlap
	KindSpike      Kind = "power-spike"       // P(t) > Pmax
	KindMachine    Kind = "machine-conflict"  // same-machine overlap
	KindAssignment Kind = "bad-assignment"    // assignment does not fit the problem
)

// Violation is one independently detected problem with a schedule.
type Violation struct {
	Kind   Kind
	Detail string
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Kind, v.Detail) }

// Metrics are the re-derived evaluation quantities, computed by
// per-second integration rather than segment arithmetic.
type Metrics struct {
	Finish      model.Time
	Peak        float64
	Floor       float64
	Energy      float64
	EnergyCost  float64
	FreeUsed    float64
	Utilization float64
}

// Report is the outcome of a full independent check.
type Report struct {
	Violations []Violation
	Metrics    Metrics
	// GapSeconds counts the seconds where P(t) < Pmin (soft; not a
	// violation, reported for completeness).
	GapSeconds int
}

// OK reports whether the schedule is valid (time-valid and under the
// power budget). Power gaps are soft and do not affect OK.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil for a valid schedule, or an error summarizing every
// violation.
func (r Report) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		msgs[i] = v.String()
	}
	return fmt.Errorf("verify: %d violation(s): %s", len(r.Violations), strings.Join(msgs, "; "))
}

// Check independently validates schedule s against problem p and
// recomputes its metrics. It never consults the scheduler's constraint
// graph or profile code. For a heterogeneous problem use CheckAssigned;
// Check validates under the nominal (degenerate) task view.
func Check(p *model.Problem, s schedule.Schedule) Report {
	return CheckAssigned(p, s, nil)
}

// CheckAssigned is Check under a machine/level assignment: every task's
// delay and power are the effective values of its assigned (machine,
// level), and tasks sharing a machine must be serialized like tasks
// sharing a resource. A nil assignment is the degenerate case and
// checks the problem exactly as Check always has.
func CheckAssigned(p *model.Problem, s schedule.Schedule, a model.Assignment) Report {
	var rep Report
	tasks, err := p.EffectiveTasks(a)
	if err != nil {
		rep.Violations = append(rep.Violations, Violation{Kind: KindAssignment, Detail: err.Error()})
		return rep
	}
	if len(s.Start) != len(p.Tasks) {
		rep.Violations = append(rep.Violations, Violation{
			Kind:   KindStart,
			Detail: fmt.Sprintf("schedule has %d starts for %d tasks", len(s.Start), len(p.Tasks)),
		})
		return rep
	}

	start := make(map[string]model.Time, len(p.Tasks))
	for i, t := range tasks {
		start[t.Name] = s.Start[i]
		if s.Start[i] < 0 {
			rep.Violations = append(rep.Violations, Violation{
				Kind:   KindStart,
				Detail: fmt.Sprintf("task %q starts at %d", t.Name, s.Start[i]),
			})
		}
	}
	sigma := func(name string) model.Time {
		if name == model.Anchor {
			return 0
		}
		return start[name]
	}

	// Timing constraints, straight from the problem statement.
	for _, c := range p.Constraints {
		sep := sigma(c.To) - sigma(c.From)
		if sep < c.Min {
			rep.Violations = append(rep.Violations, Violation{
				Kind:   KindConstraint,
				Detail: fmt.Sprintf("%s: separation %d < min %d", c, sep, c.Min),
			})
		}
		if c.HasMax && sep > c.Max {
			rep.Violations = append(rep.Violations, Violation{
				Kind:   KindConstraint,
				Detail: fmt.Sprintf("%s: separation %d > max %d", c, sep, c.Max),
			})
		}
	}

	// Resource serialization by pairwise overlap scan.
	for i := range tasks {
		for j := i + 1; j < len(tasks); j++ {
			ti, tj := tasks[i], tasks[j]
			if ti.Resource != tj.Resource {
				continue
			}
			iEnd := s.Start[i] + ti.Delay
			jEnd := s.Start[j] + tj.Delay
			if s.Start[i] < jEnd && s.Start[j] < iEnd {
				rep.Violations = append(rep.Violations, Violation{
					Kind: KindResource,
					Detail: fmt.Sprintf("%q [%d,%d) overlaps %q [%d,%d) on %s",
						ti.Name, s.Start[i], iEnd, tj.Name, s.Start[j], jEnd, ti.Resource),
				})
			}
		}
	}

	// Machine serialization: two tasks assigned the same machine must
	// never overlap, whatever their resources. (Same-resource pairs are
	// already reported above; repeating them as machine conflicts would
	// double-count one overlap.)
	if a != nil && len(p.Machines) > 0 {
		for i := range tasks {
			for j := i + 1; j < len(tasks); j++ {
				if a[i].Machine < 0 || a[i].Machine != a[j].Machine || tasks[i].Resource == tasks[j].Resource {
					continue
				}
				iEnd := s.Start[i] + tasks[i].Delay
				jEnd := s.Start[j] + tasks[j].Delay
				if s.Start[i] < jEnd && s.Start[j] < iEnd {
					rep.Violations = append(rep.Violations, Violation{
						Kind: KindMachine,
						Detail: fmt.Sprintf("%q [%d,%d) overlaps %q [%d,%d) on machine %s",
							tasks[i].Name, s.Start[i], iEnd, tasks[j].Name, s.Start[j], jEnd, p.Machines[a[i].Machine].Name),
					})
				}
			}
		}
	}

	// Power by per-second sampling.
	rep.Metrics = sampleMetrics(p, tasks, s)
	if p.Pmax > 0 {
		tau := rep.Metrics.Finish
		inSpike := false
		spikeFrom := model.Time(0)
		for t := model.Time(0); t <= tau; t++ {
			over := t < tau && powerAt(p, tasks, s, t) > p.Pmax
			switch {
			case over && !inSpike:
				inSpike, spikeFrom = true, t
			case !over && inSpike:
				inSpike = false
				rep.Violations = append(rep.Violations, Violation{
					Kind:   KindSpike,
					Detail: fmt.Sprintf("P > %.4g W during [%d,%d)", p.Pmax, spikeFrom, t),
				})
			}
		}
	}
	if p.Pmin > 0 {
		for t := model.Time(0); t < rep.Metrics.Finish; t++ {
			if powerAt(p, tasks, s, t) < p.Pmin {
				rep.GapSeconds++
			}
		}
	}
	return rep
}

// powerAt sums the power of tasks active at second t plus base power.
func powerAt(p *model.Problem, tasks []model.Task, s schedule.Schedule, t model.Time) float64 {
	sum := p.BasePower
	for i, task := range tasks {
		if s.Start[i] <= t && t < s.Start[i]+task.Delay {
			sum += task.Power
		}
	}
	return sum
}

// sampleMetrics integrates the power curve one second at a time.
func sampleMetrics(p *model.Problem, tasks []model.Task, s schedule.Schedule) Metrics {
	var m Metrics
	for i, t := range tasks {
		if end := s.Start[i] + t.Delay; end > m.Finish {
			m.Finish = end
		}
	}
	if m.Finish == 0 {
		m.Utilization = 1
		return m
	}
	m.Floor = powerAt(p, tasks, s, 0)
	for t := model.Time(0); t < m.Finish; t++ {
		pw := powerAt(p, tasks, s, t)
		m.Energy += pw
		if pw > m.Peak {
			m.Peak = pw
		}
		if pw < m.Floor {
			m.Floor = pw
		}
		if p.Pmin > 0 {
			if pw > p.Pmin {
				m.EnergyCost += pw - p.Pmin
				m.FreeUsed += p.Pmin
			} else {
				m.FreeUsed += pw
			}
		}
	}
	if p.Pmin > 0 {
		m.Utilization = m.FreeUsed / (p.Pmin * float64(m.Finish))
	} else {
		m.Utilization = 1
	}
	return m
}
