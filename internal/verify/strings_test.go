package verify

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/schedule"
)

func TestViolationString(t *testing.T) {
	v := Violation{Kind: KindSpike, Detail: "P > 10 W during [3,5)"}
	s := v.String()
	if !strings.Contains(s, "power-spike") || !strings.Contains(s, "[3,5)") {
		t.Fatalf("String = %q", s)
	}
}

func TestErrListsEveryViolation(t *testing.T) {
	p := &model.Problem{
		Name: "multi",
		Tasks: []model.Task{
			{Name: "a", Resource: "R", Delay: 2, Power: 1},
			{Name: "b", Resource: "R", Delay: 2, Power: 1},
		},
	}
	p.MinSep("a", "b", 10)
	rep := Check(p, schedule.Schedule{Start: []model.Time{-1, 0}})
	err := rep.Err()
	if err == nil {
		t.Fatal("no error for invalid schedule")
	}
	for _, want := range []string{"negative-start", "timing-constraint", "resource-conflict"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestMetricsOnEmptyProblemSchedule(t *testing.T) {
	// A zero-delay-free problem cannot exist (Validate requires tasks),
	// but Check must behave on the smallest legal one.
	p := &model.Problem{
		Name:  "one",
		Tasks: []model.Task{{Name: "t", Resource: "R", Delay: 1, Power: 0}},
	}
	rep := Check(p, schedule.Schedule{Start: []model.Time{0}})
	if !rep.OK() {
		t.Fatal(rep.Err())
	}
	if rep.Metrics.Utilization != 1 {
		t.Fatalf("utilization with Pmin=0 = %g, want 1", rep.Metrics.Utilization)
	}
}
