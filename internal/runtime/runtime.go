// Package runtime implements the paper's closing observation of section
// 5.3: a statically computed power-aware schedule remains valid for a
// whole *range* of power constraints (the Fig. 7 schedule "can be
// directly applied to all cases where Pmax >= 16, Pmin <= 14, without
// recomputing"), so a library of precomputed schedules can be selected
// at run time as the environment changes, with no on-board scheduling.
package runtime

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

// Entry is one precomputed schedule together with its validity range.
type Entry struct {
	// Name labels the entry (e.g. "rover-best-cold").
	Name string
	// Prob and Sched are the problem instance and its schedule.
	Prob  *model.Problem
	Sched schedule.Schedule
	// Profile is the schedule's power profile.
	Profile power.Profile
	// RequiredPmax is the smallest max-power budget under which the
	// schedule is power-valid: the profile's peak.
	RequiredPmax float64
	// FullUtilPmin is the largest min-power level at which the
	// schedule achieves full utilization (rho = 1): the profile's
	// floor over [0, tau).
	FullUtilPmin float64
	// Finish is the schedule's finish time.
	Finish model.Time
}

// NewEntry computes the validity range of a schedule.
func NewEntry(name string, p *model.Problem, s schedule.Schedule) Entry {
	prof := power.Build(p.Tasks, s, p.BasePower)
	return Entry{
		Name:         name,
		Prob:         p,
		Sched:        s,
		Profile:      prof,
		RequiredPmax: prof.Peak(),
		FullUtilPmin: prof.Floor(),
		Finish:       s.Finish(p.Tasks),
	}
}

// ValidFor reports whether the schedule satisfies a pmax budget.
func (e Entry) ValidFor(pmax float64) bool { return e.RequiredPmax <= pmax }

// FullyUtilizes reports whether the schedule wastes no free power at
// level pmin.
func (e Entry) FullyUtilizes(pmin float64) bool { return pmin <= e.FullUtilPmin }

// CostAt returns the schedule's energy cost for an arbitrary free-power
// level.
func (e Entry) CostAt(pmin float64) float64 { return e.Profile.EnergyCost(pmin) }

// Selector holds a library of precomputed schedules and picks the best
// valid one for the ambient power conditions.
type Selector struct {
	entries []Entry
}

// Add registers an entry.
func (s *Selector) Add(e Entry) { s.entries = append(s.entries, e) }

// Entries returns the registered entries.
func (s *Selector) Entries() []Entry { return append([]Entry(nil), s.entries...) }

// Select returns the best schedule valid under the pmax budget:
// shortest finish time first (performance), then lowest energy cost at
// the given pmin, then registration order. ok is false when no entry
// fits the budget.
func (s *Selector) Select(pmax, pmin float64) (Entry, bool) {
	var best Entry
	found := false
	for _, e := range s.entries {
		if !e.ValidFor(pmax) {
			continue
		}
		if !found {
			best, found = e, true
			continue
		}
		switch {
		case e.Finish < best.Finish:
			best = e
		case e.Finish == best.Finish && e.CostAt(pmin) < best.CostAt(pmin):
			best = e
		}
	}
	if !found {
		return Entry{}, false
	}
	return best, true
}

// Table renders the library as rows of name, validity range, finish
// time — the designer-facing summary of the schedule library.
func (s *Selector) Table() string {
	es := append([]Entry(nil), s.entries...)
	sort.Slice(es, func(i, j int) bool { return es[i].RequiredPmax < es[j].RequiredPmax })
	out := fmt.Sprintf("%-24s %12s %14s %8s\n", "schedule", "needs Pmax>=", "full-util Pmin<=", "tau (s)")
	for _, e := range es {
		out += fmt.Sprintf("%-24s %12.4g %14.4g %8d\n", e.Name, e.RequiredPmax, e.FullUtilPmin, e.Finish)
	}
	return out
}
