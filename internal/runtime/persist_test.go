package runtime

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rover"
	"repro/internal/sched"
)

func builtLibrary(t *testing.T) *Selector {
	t.Helper()
	sel := &Selector{}
	for _, c := range rover.Cases {
		p := rover.BuildIteration(c, rover.Cold)
		r, err := sched.Run(p, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sel.Add(NewEntry(p.Name, p, r.Schedule))
	}
	return sel
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sel := builtLibrary(t)
	var buf bytes.Buffer
	if err := Save(&buf, sel); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, got := sel.Entries(), loaded.Entries()
	if len(orig) != len(got) {
		t.Fatalf("entries: %d vs %d", len(orig), len(got))
	}
	for i := range orig {
		if orig[i].Name != got[i].Name {
			t.Errorf("entry %d name %q vs %q", i, orig[i].Name, got[i].Name)
		}
		if orig[i].RequiredPmax != got[i].RequiredPmax ||
			orig[i].FullUtilPmin != got[i].FullUtilPmin ||
			orig[i].Finish != got[i].Finish {
			t.Errorf("entry %d validity range changed: %+v vs %+v", i, orig[i], got[i])
		}
	}
	// Selection behaviour survives the round trip.
	a, okA := sel.Select(24.9, 14.9)
	b, okB := loaded.Select(24.9, 14.9)
	if okA != okB || a.Name != b.Name {
		t.Fatalf("selection differs after reload: %v/%v", a.Name, b.Name)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"entries":[{"name":"x","spec":"bogus directive","schedule":{}}]}`)); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestLoadRejectsTamperedSchedule(t *testing.T) {
	sel := builtLibrary(t)
	var buf bytes.Buffer
	if err := Save(&buf, sel); err != nil {
		t.Fatal(err)
	}
	// Corrupt a start time: shift the first hz1 onto its steering task.
	doc := buf.String()
	tampered := strings.Replace(doc, `"start": 0`, `"start": 9999`, 1)
	if tampered == doc {
		t.Fatal("test premise broken: no start to tamper with")
	}
	if _, err := Load(strings.NewReader(tampered)); err == nil {
		t.Fatal("tampered library accepted")
	}
}

func TestSaveEmptyLibrary(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, &Selector{}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries()) != 0 {
		t.Fatal("empty library grew entries")
	}
}
