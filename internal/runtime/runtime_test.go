package runtime

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/schedule"
)

func entryFor(t *testing.T, c rover.Case) Entry {
	t.Helper()
	p := rover.BuildIteration(c, rover.Cold)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewEntry(p.Name, p, r.Schedule)
}

func TestEntryValidityRange(t *testing.T) {
	p := &model.Problem{
		Name: "e",
		Tasks: []model.Task{
			{Name: "x", Resource: "A", Delay: 2, Power: 5},
			{Name: "y", Resource: "B", Delay: 2, Power: 3},
		},
		BasePower: 1,
	}
	s := schedule.Schedule{Start: []model.Time{0, 2}}
	e := NewEntry("e", p, s)
	if e.RequiredPmax != 6 {
		t.Errorf("RequiredPmax = %g, want 6 (peak)", e.RequiredPmax)
	}
	if e.FullUtilPmin != 4 {
		t.Errorf("FullUtilPmin = %g, want 4 (floor)", e.FullUtilPmin)
	}
	if e.Finish != 4 {
		t.Errorf("Finish = %d, want 4", e.Finish)
	}
	if !e.ValidFor(6) || e.ValidFor(5.9) {
		t.Error("ValidFor threshold wrong")
	}
	if !e.FullyUtilizes(4) || e.FullyUtilizes(4.1) {
		t.Error("FullyUtilizes threshold wrong")
	}
	if got := e.CostAt(5); got != 2 { // (6-5)*2 over [0,2)
		t.Errorf("CostAt(5) = %g, want 2", got)
	}
}

func TestSelectorPrefersFasterValidSchedule(t *testing.T) {
	var sel Selector
	for _, c := range rover.Cases {
		sel.Add(entryFor(t, c))
	}
	// At a 24.9 W budget every schedule fits; the 50 s one must win.
	e, ok := sel.Select(24.9, 14.9)
	if !ok || e.Finish != 50 {
		t.Fatalf("Select(24.9) = %+v (ok=%v), want the 50 s schedule", e, ok)
	}
	// At 18 W only the worst-case schedule (peak 17.5) fits.
	e, ok = sel.Select(18, 9)
	if !ok || e.Finish != 75 {
		t.Fatalf("Select(18) = %+v (ok=%v), want the 75 s schedule", e, ok)
	}
}

func TestSelectorNoFit(t *testing.T) {
	var sel Selector
	sel.Add(entryFor(t, rover.Worst))
	if _, ok := sel.Select(5, 5); ok {
		t.Fatal("Select returned a schedule that exceeds the budget")
	}
}

func TestSelectorTieBreaksOnCost(t *testing.T) {
	p := &model.Problem{
		Name:  "t",
		Tasks: []model.Task{{Name: "x", Resource: "A", Delay: 4, Power: 4}},
	}
	cheap := NewEntry("cheap", p, schedule.Schedule{Start: []model.Time{0}})
	// Same finish, same peak, but idle head makes the profile worse...
	// use a different problem with higher constant power instead.
	p2 := p.Clone()
	p2.BasePower = 2
	costly := NewEntry("costly", p2, schedule.Schedule{Start: []model.Time{0}})
	var sel Selector
	sel.Add(costly)
	sel.Add(cheap)
	e, ok := sel.Select(10, 3)
	if !ok || e.Name != "cheap" {
		t.Fatalf("Select = %q, want cheap (lower cost at pmin)", e.Name)
	}
}

func TestSelectorEmpty(t *testing.T) {
	var sel Selector
	if _, ok := sel.Select(100, 0); ok {
		t.Fatal("empty selector returned an entry")
	}
}

func TestEntriesCopy(t *testing.T) {
	var sel Selector
	sel.Add(entryFor(t, rover.Best))
	es := sel.Entries()
	es[0].Name = "mutated"
	if sel.Entries()[0].Name == "mutated" {
		t.Fatal("Entries leaked internal storage")
	}
}

func TestTableRendering(t *testing.T) {
	var sel Selector
	for _, c := range rover.Cases {
		sel.Add(entryFor(t, c))
	}
	tbl := sel.Table()
	for _, want := range []string{"schedule", "needs Pmax>=", "rover-best-cold", "rover-worst-cold"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

// TestPaperValidityRangeClaim reproduces the section 5.3 observation on
// the nine-task example's final schedule: it applies unchanged to every
// constraint pair with Pmax >= its peak — scheduling under a looser
// budget yields a schedule no better, and the entry itself stays valid.
func TestPaperValidityRangeClaim(t *testing.T) {
	e := entryFor(t, rover.Typical)
	for _, pmax := range []float64{e.RequiredPmax, e.RequiredPmax + 1, e.RequiredPmax + 50} {
		if !e.ValidFor(pmax) {
			t.Errorf("entry invalid at pmax=%g", pmax)
		}
	}
	for _, pmin := range []float64{0, e.FullUtilPmin / 2, e.FullUtilPmin} {
		if got := e.Profile.Utilization(pmin); got < 1-1e-12 {
			t.Errorf("utilization at pmin=%g is %g, want 1", pmin, got)
		}
	}
}
