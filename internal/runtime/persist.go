package runtime

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/spec"
	"repro/internal/verify"
)

// libraryDoc is the on-disk form of a schedule library: each entry
// carries its problem as spec text (round-trips exactly) and its
// schedule as name/start pairs. Validity ranges are recomputed on load,
// so a library cannot lie about its own safety.
type libraryDoc struct {
	Entries []entryDoc `json:"entries"`
}

type entryDoc struct {
	Name     string          `json:"name"`
	Spec     string          `json:"spec"`
	Schedule json.RawMessage `json:"schedule"`
}

// Save writes the library as JSON.
func Save(w io.Writer, sel *Selector) error {
	var doc libraryDoc
	for _, e := range sel.Entries() {
		schedJSON, err := spec.FormatScheduleJSON(e.Prob, e.Sched)
		if err != nil {
			return fmt.Errorf("runtime: save %s: %w", e.Name, err)
		}
		doc.Entries = append(doc.Entries, entryDoc{
			Name:     e.Name,
			Spec:     spec.Format(e.Prob),
			Schedule: schedJSON,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Load reads a library saved with Save, re-deriving every entry's
// validity range and refusing entries whose schedule does not
// independently verify against its own problem.
func Load(r io.Reader) (*Selector, error) {
	var doc libraryDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("runtime: load: %w", err)
	}
	sel := &Selector{}
	for _, ed := range doc.Entries {
		p, err := spec.ParseString(ed.Spec)
		if err != nil {
			return nil, fmt.Errorf("runtime: load %s: %w", ed.Name, err)
		}
		s, err := spec.ParseScheduleJSON(p, ed.Schedule)
		if err != nil {
			return nil, fmt.Errorf("runtime: load %s: %w", ed.Name, err)
		}
		if rep := verify.Check(p, s); !rep.OK() {
			return nil, fmt.Errorf("runtime: load %s: stored schedule invalid: %w", ed.Name, rep.Err())
		}
		sel.Add(NewEntry(ed.Name, p, s))
	}
	return sel, nil
}
