package exec

import (
	"testing"

	"repro/internal/power"
	"repro/internal/rover"
	"repro/internal/sched"
)

// BenchmarkExecute measures the second-by-second replay of one
// power-aware rover iteration against the worst-case supply — the
// inner loop of every Monte-Carlo simulation run.
func BenchmarkExecute(b *testing.B) {
	prob := rover.BuildIteration(rover.Worst, rover.Cold)
	r, err := sched.Run(prob, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	par := rover.Table2(rover.Worst)
	sup := power.Supply{Solar: power.NewSolar(par.Solar)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat := power.Battery{MaxPower: par.BatteryMax}
		if _, err := Execute(prob, r.Schedule, sup, &bat, 0); err != nil {
			b.Fatal(err)
		}
	}
}
