package exec

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/schedule"
)

func simpleProblem() (*model.Problem, schedule.Schedule) {
	p := &model.Problem{
		Name: "ex",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 3, Power: 4},
			{Name: "b", Resource: "B", Delay: 2, Power: 6},
		},
		BasePower: 1,
	}
	return p, schedule.Schedule{Start: []model.Time{0, 3}}
}

func TestTraceOrderAndPower(t *testing.T) {
	p, s := simpleProblem()
	evs := Trace(p, s)
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	// a starts (5 W), a finishes (1 W), b starts (7 W), b finishes (1 W).
	want := []struct {
		t    model.Time
		kind EventKind
		task string
		pw   float64
	}{
		{0, TaskStart, "a", 5},
		{3, TaskFinish, "a", 1},
		{3, TaskStart, "b", 7},
		{5, TaskFinish, "b", 1},
	}
	for i, w := range want {
		e := evs[i]
		if e.T != w.t || e.Kind != w.kind || e.Task != w.task || math.Abs(e.SystemPower-w.pw) > 1e-12 {
			t.Errorf("event %d = %+v, want %+v", i, e, w)
		}
	}
}

func TestTraceFinishBeforeStartAtSameInstant(t *testing.T) {
	p, s := simpleProblem()
	evs := Trace(p, s)
	// At t=3 the finish of a must precede the start of b.
	if evs[1].Kind != TaskFinish || evs[2].Kind != TaskStart {
		t.Fatalf("tie-break wrong: %+v then %+v", evs[1], evs[2])
	}
}

func TestExecuteSolarOnly(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(10)}
	rep, err := Execute(p, s, sup, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Demand: 5 W for [0,3), 7 W for [3,5): energy 15+14 = 29.
	if math.Abs(rep.Energy-29) > 1e-9 {
		t.Errorf("energy = %g, want 29", rep.Energy)
	}
	if rep.BatteryUsed != 0 || math.Abs(rep.SolarUsed-29) > 1e-9 {
		t.Errorf("split = solar %g battery %g", rep.SolarUsed, rep.BatteryUsed)
	}
	if math.Abs(rep.SolarWasted-(50-29)) > 1e-9 {
		t.Errorf("wasted = %g, want 21", rep.SolarWasted)
	}
	if rep.PeakDemand != 7 {
		t.Errorf("peak = %g, want 7", rep.PeakDemand)
	}
}

func TestExecuteBatteryTopUp(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(4)}
	bat := &power.Battery{MaxPower: 5, Capacity: 100}
	rep, err := Execute(p, s, sup, bat, 0)
	if err != nil {
		t.Fatal(err)
	}
	// [0,3): demand 5, solar 4 -> battery 1/s; [3,5): demand 7 -> 3/s.
	if math.Abs(rep.BatteryUsed-(3*1+2*3)) > 1e-9 {
		t.Errorf("battery used = %g, want 9", rep.BatteryUsed)
	}
	if math.Abs(bat.Drawn()-rep.BatteryUsed) > 1e-9 {
		t.Error("battery ledger disagrees with report")
	}
}

func TestExecuteOverBudgetFails(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(4)}
	bat := &power.Battery{MaxPower: 2} // 4+2 = 6 < 7 W demand at t=3
	_, err := Execute(p, s, sup, bat, 0)
	if err == nil || !strings.Contains(err.Error(), "exceeds available") {
		t.Fatalf("err = %v, want over-budget failure", err)
	}
}

func TestExecuteNoBatteryOverSolarFails(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(6)}
	if _, err := Execute(p, s, sup, nil, 0); err == nil {
		t.Fatal("7 W demand on 6 W solar without battery succeeded")
	}
}

func TestExecuteBatteryExhaustion(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(0)}
	bat := &power.Battery{MaxPower: 10, Capacity: 10}
	_, err := Execute(p, s, sup, bat, 0)
	if err == nil {
		t.Fatal("exhausted battery not detected")
	}
}

// TestExecuteMidSchedulePhaseChange: the solar output drops while the
// schedule runs; battery draw increases from that instant — something
// the static Pmin metrics cannot express.
func TestExecuteMidSchedulePhaseChange(t *testing.T) {
	p, s := simpleProblem()
	sol := power.NewSolar(10)
	sol.AddPhase(2, 3) // drops to 3 W at t=2
	sup := power.Supply{Solar: sol}
	bat := &power.Battery{MaxPower: 10, Capacity: 1000}
	rep, err := Execute(p, s, sup, bat, 0)
	if err != nil {
		t.Fatal(err)
	}
	// [0,2): solar covers 5 W. [2,3): 5-3=2 from battery.
	// [3,5): 7-3=4 per second from battery. Total 2+8 = 10.
	if math.Abs(rep.BatteryUsed-10) > 1e-9 {
		t.Errorf("battery used = %g, want 10", rep.BatteryUsed)
	}
}

// TestExecuteOffsetShiftsPhases: executing the same schedule later in
// mission time sees different solar conditions.
func TestExecuteOffsetShiftsPhases(t *testing.T) {
	p, s := simpleProblem()
	sol := power.NewSolar(10)
	sol.AddPhase(100, 3)
	sup := power.Supply{Solar: sol}
	early, err := Execute(p, s, sup, &power.Battery{MaxPower: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	late, err := Execute(p, s, sup, &power.Battery{MaxPower: 10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if early.BatteryUsed != 0 {
		t.Errorf("early battery = %g, want 0", early.BatteryUsed)
	}
	if late.BatteryUsed <= early.BatteryUsed {
		t.Error("late execution should cost battery energy")
	}
}

// TestExecuteRoverMatchesStaticCost: under constant solar the
// executor's battery usage equals the static energy cost Ec(Pmin) of
// the schedule — the two accounting paths agree.
func TestExecuteRoverMatchesStaticCost(t *testing.T) {
	for _, c := range rover.Cases {
		prob := rover.BuildIteration(c, rover.Cold)
		r, err := sched.Run(prob, sched.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		par := rover.Table2(c)
		sup := power.Supply{Solar: power.NewSolar(par.Solar)}
		bat := &power.Battery{MaxPower: par.BatteryMax}
		rep, err := Execute(prob, r.Schedule, sup, bat, 0)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if math.Abs(rep.BatteryUsed-r.EnergyCost()) > 1e-9 {
			t.Errorf("%s: executor battery %g != static cost %g", c, rep.BatteryUsed, r.EnergyCost())
		}
	}
}

func namesEqual(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestExecuteViolationResidualSolarDropout: the solar output drops to
// zero mid-schedule with no battery; the report must pin the exact
// violation instant and split the tasks into in-flight and
// not-yet-started sets at that instant.
func TestExecuteViolationResidualSolarDropout(t *testing.T) {
	p := &model.Problem{
		Name: "dropout",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 4, Power: 3},
			{Name: "b", Resource: "B", Delay: 4, Power: 3},
			{Name: "c", Resource: "C", Delay: 2, Power: 3},
		},
		BasePower: 1,
	}
	s := schedule.Schedule{Start: []model.Time{0, 2, 6}}
	sol := power.NewSolar(10)
	sol.AddPhase(3, 0) // total dropout at t=3
	rep, err := Execute(p, s, power.Supply{Solar: sol}, nil, 0)
	if err == nil {
		t.Fatal("dropout with no battery did not fail")
	}
	if !rep.Violated || rep.ViolationAt != 3 || rep.StoppedAt != 3 {
		t.Fatalf("violation at %d (stopped %d, violated %v), want instant 3",
			rep.ViolationAt, rep.StoppedAt, rep.Violated)
	}
	// a runs [0,4), b runs [2,6): both in flight at t=3. c has not started.
	if !namesEqual(rep.InFlight, []string{"a", "b"}) {
		t.Errorf("in-flight = %v, want [a b]", rep.InFlight)
	}
	if !namesEqual(rep.NotStarted, []string{"c"}) {
		t.Errorf("not-started = %v, want [c]", rep.NotStarted)
	}
	// Seconds [0,3) were accounted: demand 4 W, 4 W, 7 W.
	if math.Abs(rep.Energy-15) > 1e-9 {
		t.Errorf("energy = %g, want 15 (three accounted seconds)", rep.Energy)
	}
}

// TestExecuteViolationResidualBatteryBoundary: the battery holds
// exactly the energy for the first k seconds and is depleted at the
// boundary second — the violation must land on k, not k±1, and the
// ledgers must account exactly [0,k).
func TestExecuteViolationResidualBatteryBoundary(t *testing.T) {
	p := &model.Problem{
		Name: "boundary",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 6, Power: 5},
		},
		BasePower: 0,
	}
	s := schedule.Schedule{Start: []model.Time{0}}
	// No solar: every second draws 5 J from the battery. Capacity 20 J
	// covers exactly seconds 0..3; second 4 must fail.
	bat := &power.Battery{MaxPower: 10, Capacity: 20}
	rep, err := Execute(p, s, power.Supply{Solar: power.NewSolar(0)}, bat, 0)
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("err = %v, want battery exhaustion", err)
	}
	if rep.ViolationAt != 4 {
		t.Fatalf("violation at %d, want boundary second 4", rep.ViolationAt)
	}
	if math.Abs(rep.BatteryUsed-20) > 1e-9 || math.Abs(bat.Drawn()-20) > 1e-9 {
		t.Errorf("battery used = %g (ledger %g), want exactly 20", rep.BatteryUsed, bat.Drawn())
	}
	if math.Abs(rep.Energy-20) > 1e-9 {
		t.Errorf("energy = %g, want 20 (failed second not accounted)", rep.Energy)
	}
	if !namesEqual(rep.InFlight, []string{"a"}) || len(rep.NotStarted) != 0 {
		t.Errorf("residual = in-flight %v, not-started %v", rep.InFlight, rep.NotStarted)
	}
}

// TestExecuteUntilPartialReplay: a horizon short of the finish stops
// the replay cleanly and still reports the residual state there.
func TestExecuteUntilPartialReplay(t *testing.T) {
	p, s := simpleProblem() // a [0,3), b [3,5)
	sup := power.Supply{Solar: power.NewSolar(10)}
	rep, err := ExecuteUntil(p, s, sup, nil, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated || rep.StoppedAt != 2 {
		t.Fatalf("stopped at %d (violated %v), want clean stop at 2", rep.StoppedAt, rep.Violated)
	}
	if !namesEqual(rep.InFlight, []string{"a"}) || !namesEqual(rep.NotStarted, []string{"b"}) {
		t.Errorf("residual = in-flight %v, not-started %v", rep.InFlight, rep.NotStarted)
	}
	if math.Abs(rep.Energy-10) > 1e-9 { // two seconds at 5 W
		t.Errorf("energy = %g, want 10", rep.Energy)
	}
	// A start exactly at the stop instant is not started.
	rep, err = ExecuteUntil(p, s, sup, nil, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !namesEqual(rep.NotStarted, []string{"b"}) || len(rep.InFlight) != 0 {
		t.Errorf("t=3 residual = in-flight %v, not-started %v", rep.InFlight, rep.NotStarted)
	}
	// Beyond the finish the replay completes and the residual is empty.
	rep, err = ExecuteUntil(p, s, sup, nil, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StoppedAt != rep.Finish || len(rep.NotStarted) != 0 || len(rep.InFlight) != 0 {
		t.Errorf("full replay residual = %v / %v at %d", rep.InFlight, rep.NotStarted, rep.StoppedAt)
	}
}
