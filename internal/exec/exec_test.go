package exec

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/schedule"
)

func simpleProblem() (*model.Problem, schedule.Schedule) {
	p := &model.Problem{
		Name: "ex",
		Tasks: []model.Task{
			{Name: "a", Resource: "A", Delay: 3, Power: 4},
			{Name: "b", Resource: "B", Delay: 2, Power: 6},
		},
		BasePower: 1,
	}
	return p, schedule.Schedule{Start: []model.Time{0, 3}}
}

func TestTraceOrderAndPower(t *testing.T) {
	p, s := simpleProblem()
	evs := Trace(p, s)
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	// a starts (5 W), a finishes (1 W), b starts (7 W), b finishes (1 W).
	want := []struct {
		t    model.Time
		kind EventKind
		task string
		pw   float64
	}{
		{0, TaskStart, "a", 5},
		{3, TaskFinish, "a", 1},
		{3, TaskStart, "b", 7},
		{5, TaskFinish, "b", 1},
	}
	for i, w := range want {
		e := evs[i]
		if e.T != w.t || e.Kind != w.kind || e.Task != w.task || math.Abs(e.SystemPower-w.pw) > 1e-12 {
			t.Errorf("event %d = %+v, want %+v", i, e, w)
		}
	}
}

func TestTraceFinishBeforeStartAtSameInstant(t *testing.T) {
	p, s := simpleProblem()
	evs := Trace(p, s)
	// At t=3 the finish of a must precede the start of b.
	if evs[1].Kind != TaskFinish || evs[2].Kind != TaskStart {
		t.Fatalf("tie-break wrong: %+v then %+v", evs[1], evs[2])
	}
}

func TestExecuteSolarOnly(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(10)}
	rep, err := Execute(p, s, sup, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Demand: 5 W for [0,3), 7 W for [3,5): energy 15+14 = 29.
	if math.Abs(rep.Energy-29) > 1e-9 {
		t.Errorf("energy = %g, want 29", rep.Energy)
	}
	if rep.BatteryUsed != 0 || math.Abs(rep.SolarUsed-29) > 1e-9 {
		t.Errorf("split = solar %g battery %g", rep.SolarUsed, rep.BatteryUsed)
	}
	if math.Abs(rep.SolarWasted-(50-29)) > 1e-9 {
		t.Errorf("wasted = %g, want 21", rep.SolarWasted)
	}
	if rep.PeakDemand != 7 {
		t.Errorf("peak = %g, want 7", rep.PeakDemand)
	}
}

func TestExecuteBatteryTopUp(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(4)}
	bat := &power.Battery{MaxPower: 5, Capacity: 100}
	rep, err := Execute(p, s, sup, bat, 0)
	if err != nil {
		t.Fatal(err)
	}
	// [0,3): demand 5, solar 4 -> battery 1/s; [3,5): demand 7 -> 3/s.
	if math.Abs(rep.BatteryUsed-(3*1+2*3)) > 1e-9 {
		t.Errorf("battery used = %g, want 9", rep.BatteryUsed)
	}
	if math.Abs(bat.Drawn()-rep.BatteryUsed) > 1e-9 {
		t.Error("battery ledger disagrees with report")
	}
}

func TestExecuteOverBudgetFails(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(4)}
	bat := &power.Battery{MaxPower: 2} // 4+2 = 6 < 7 W demand at t=3
	_, err := Execute(p, s, sup, bat, 0)
	if err == nil || !strings.Contains(err.Error(), "exceeds available") {
		t.Fatalf("err = %v, want over-budget failure", err)
	}
}

func TestExecuteNoBatteryOverSolarFails(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(6)}
	if _, err := Execute(p, s, sup, nil, 0); err == nil {
		t.Fatal("7 W demand on 6 W solar without battery succeeded")
	}
}

func TestExecuteBatteryExhaustion(t *testing.T) {
	p, s := simpleProblem()
	sup := power.Supply{Solar: power.NewSolar(0)}
	bat := &power.Battery{MaxPower: 10, Capacity: 10}
	_, err := Execute(p, s, sup, bat, 0)
	if err == nil {
		t.Fatal("exhausted battery not detected")
	}
}

// TestExecuteMidSchedulePhaseChange: the solar output drops while the
// schedule runs; battery draw increases from that instant — something
// the static Pmin metrics cannot express.
func TestExecuteMidSchedulePhaseChange(t *testing.T) {
	p, s := simpleProblem()
	sol := power.NewSolar(10)
	sol.AddPhase(2, 3) // drops to 3 W at t=2
	sup := power.Supply{Solar: sol}
	bat := &power.Battery{MaxPower: 10, Capacity: 1000}
	rep, err := Execute(p, s, sup, bat, 0)
	if err != nil {
		t.Fatal(err)
	}
	// [0,2): solar covers 5 W. [2,3): 5-3=2 from battery.
	// [3,5): 7-3=4 per second from battery. Total 2+8 = 10.
	if math.Abs(rep.BatteryUsed-10) > 1e-9 {
		t.Errorf("battery used = %g, want 10", rep.BatteryUsed)
	}
}

// TestExecuteOffsetShiftsPhases: executing the same schedule later in
// mission time sees different solar conditions.
func TestExecuteOffsetShiftsPhases(t *testing.T) {
	p, s := simpleProblem()
	sol := power.NewSolar(10)
	sol.AddPhase(100, 3)
	sup := power.Supply{Solar: sol}
	early, err := Execute(p, s, sup, &power.Battery{MaxPower: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	late, err := Execute(p, s, sup, &power.Battery{MaxPower: 10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if early.BatteryUsed != 0 {
		t.Errorf("early battery = %g, want 0", early.BatteryUsed)
	}
	if late.BatteryUsed <= early.BatteryUsed {
		t.Error("late execution should cost battery energy")
	}
}

// TestExecuteRoverMatchesStaticCost: under constant solar the
// executor's battery usage equals the static energy cost Ec(Pmin) of
// the schedule — the two accounting paths agree.
func TestExecuteRoverMatchesStaticCost(t *testing.T) {
	for _, c := range rover.Cases {
		prob := rover.BuildIteration(c, rover.Cold)
		r, err := sched.Run(prob, sched.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		par := rover.Table2(c)
		sup := power.Supply{Solar: power.NewSolar(par.Solar)}
		bat := &power.Battery{MaxPower: par.BatteryMax}
		rep, err := Execute(prob, r.Schedule, sup, bat, 0)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if math.Abs(rep.BatteryUsed-r.EnergyCost()) > 1e-9 {
			t.Errorf("%s: executor battery %g != static cost %g", c, rep.BatteryUsed, r.EnergyCost())
		}
	}
}
