package exec

import (
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

// Replayer is an allocation-free ExecuteUntil for hot loops (fault
// campaigns replay thousands of schedules per second). It keeps one
// Report and its residual-set buffers, reusing them across replays.
//
// Differences from ExecuteUntil, both deliberate:
//   - no event trace is built (rep.Events is nil) — campaigns never
//     read it, and Trace is the single largest per-replay allocation;
//   - the returned *Report aliases the Replayer's internal state and
//     is valid only until the next ExecuteUntil call. Callers must
//     copy anything (InFlight, NotStarted) they keep.
//
// The numeric results are bit-identical to ExecuteUntil: both run the
// same replayCore, which sums in a fixed order.
type Replayer struct {
	rep Report
}

// ExecuteUntil replays the first `until` seconds of the schedule (see
// the package-level ExecuteUntil for semantics). The returned report
// is owned by the Replayer and overwritten by the next call.
func (r *Replayer) ExecuteUntil(p *model.Problem, s schedule.Schedule, sup power.Supply, bat *power.Battery, offset, until model.Time) (*Report, error) {
	rep := &r.rep
	rep.Events = nil
	rep.Finish = s.Finish(p.Tasks)
	rep.Energy = 0
	rep.SolarUsed = 0
	rep.BatteryUsed = 0
	rep.SolarWasted = 0
	rep.PeakDemand = 0
	rep.Violated = false
	rep.ViolationAt = 0
	rep.StoppedAt = 0
	err := replayCore(rep, p, s, sup, bat, offset, until)
	return rep, err
}
