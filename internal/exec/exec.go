// Package exec is the execution layer under the static schedules: a
// discrete-event replay of a schedule against live power sources. Where
// the power metrics of internal/power evaluate a schedule against fixed
// Pmax/Pmin levels, Execute runs it second by second against a
// time-varying solar source and a battery, drawing real energy,
// detecting budget violations at the instant they would occur (for
// example when the solar output drops mid-schedule), and producing an
// event trace for inspection or visualization.
package exec

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

// EventKind classifies trace events.
type EventKind int

const (
	// TaskStart marks a task beginning execution.
	TaskStart EventKind = iota
	// TaskFinish marks a task completing.
	TaskFinish
)

func (k EventKind) String() string {
	if k == TaskStart {
		return "start"
	}
	return "finish"
}

// Event is one entry of the execution trace.
type Event struct {
	// T is the schedule-relative time of the event.
	T model.Time
	// Kind is start or finish.
	Kind EventKind
	// Task names the task.
	Task string
	// SystemPower is the total demand immediately after the event.
	SystemPower float64
}

// Trace derives the ordered start/finish event log of a schedule.
// Finishes sort before starts at the same instant (the resource is
// free for the next task), names break remaining ties.
func Trace(p *model.Problem, s schedule.Schedule) []Event {
	var evs []Event
	for i, t := range p.Tasks {
		evs = append(evs,
			Event{T: s.Start[i], Kind: TaskStart, Task: t.Name},
			Event{T: s.Start[i] + t.Delay, Kind: TaskFinish, Task: t.Name},
		)
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].T != evs[b].T {
			return evs[a].T < evs[b].T
		}
		if evs[a].Kind != evs[b].Kind {
			return evs[a].Kind == TaskFinish
		}
		return evs[a].Task < evs[b].Task
	})
	cur := p.BasePower
	byName := p.TaskIndex()
	for i := range evs {
		task := p.Tasks[byName[evs[i].Task]]
		if evs[i].Kind == TaskStart {
			cur += task.Power
		} else {
			cur -= task.Power
		}
		evs[i].SystemPower = cur
	}
	return evs
}

// Report is the outcome of an execution.
type Report struct {
	// Events is the trace.
	Events []Event
	// Finish is the schedule-relative completion time.
	Finish model.Time
	// Energy is total consumption in joules.
	Energy float64
	// SolarUsed is the energy served by the free source.
	SolarUsed float64
	// BatteryUsed is the energy served by the battery.
	BatteryUsed float64
	// SolarWasted is free energy available but not consumed.
	SolarWasted float64
	// PeakDemand is the highest instantaneous demand observed.
	PeakDemand float64
}

// Execute replays the schedule starting at mission time offset against
// the supply. Demand beyond the instantaneous solar output is drawn
// from the battery; demand beyond solar plus the battery's maximum
// output is a hard failure, as is battery exhaustion. The battery may
// be nil when only solar accounting is wanted (any over-solar demand
// then fails).
func Execute(p *model.Problem, s schedule.Schedule, sup power.Supply, bat *power.Battery, offset model.Time) (Report, error) {
	rep := Report{Events: Trace(p, s), Finish: s.Finish(p.Tasks)}
	for t := model.Time(0); t < rep.Finish; t++ {
		demand := p.BasePower
		for i, task := range p.Tasks {
			if s.Start[i] <= t && t < s.Start[i]+task.Delay {
				demand += task.Power
			}
		}
		if demand > rep.PeakDemand {
			rep.PeakDemand = demand
		}
		solar := sup.PminAt(offset + t)
		budget := solar
		if bat != nil {
			budget += bat.MaxPower
		}
		if demand > budget+1e-9 {
			return rep, fmt.Errorf("exec: t=%d (mission %d): demand %.4g W exceeds available %.4g W",
				t, offset+t, demand, budget)
		}
		rep.Energy += demand
		if demand <= solar {
			rep.SolarUsed += demand
			rep.SolarWasted += solar - demand
			continue
		}
		rep.SolarUsed += solar
		draw := demand - solar
		if bat == nil {
			return rep, fmt.Errorf("exec: t=%d: demand %.4g W exceeds solar %.4g W with no battery",
				t, demand, solar)
		}
		if err := bat.Draw(draw); err != nil {
			return rep, fmt.Errorf("exec: t=%d: %w", t, err)
		}
		rep.BatteryUsed += draw
	}
	return rep, nil
}
