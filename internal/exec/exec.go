// Package exec is the execution layer under the static schedules: a
// discrete-event replay of a schedule against live power sources. Where
// the power metrics of internal/power evaluate a schedule against fixed
// Pmax/Pmin levels, Execute runs it second by second against a
// time-varying solar source and a battery, drawing real energy,
// detecting budget violations at the instant they would occur (for
// example when the solar output drops mid-schedule), and producing an
// event trace for inspection or visualization.
package exec

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

// EventKind classifies trace events.
type EventKind int

const (
	// TaskStart marks a task beginning execution.
	TaskStart EventKind = iota
	// TaskFinish marks a task completing.
	TaskFinish
)

func (k EventKind) String() string {
	if k == TaskStart {
		return "start"
	}
	return "finish"
}

// Event is one entry of the execution trace.
type Event struct {
	// T is the schedule-relative time of the event.
	T model.Time
	// Kind is start or finish.
	Kind EventKind
	// Task names the task.
	Task string
	// SystemPower is the total demand immediately after the event.
	SystemPower float64
}

// Trace derives the ordered start/finish event log of a schedule.
// Finishes sort before starts at the same instant (the resource is
// free for the next task), names break remaining ties.
func Trace(p *model.Problem, s schedule.Schedule) []Event {
	var evs []Event
	for i, t := range p.Tasks {
		evs = append(evs,
			Event{T: s.Start[i], Kind: TaskStart, Task: t.Name},
			Event{T: s.Start[i] + t.Delay, Kind: TaskFinish, Task: t.Name},
		)
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].T != evs[b].T {
			return evs[a].T < evs[b].T
		}
		if evs[a].Kind != evs[b].Kind {
			return evs[a].Kind == TaskFinish
		}
		return evs[a].Task < evs[b].Task
	})
	cur := p.BasePower
	byName := p.TaskIndex()
	for i := range evs {
		task := p.Tasks[byName[evs[i].Task]]
		if evs[i].Kind == TaskStart {
			cur += task.Power
		} else {
			cur -= task.Power
		}
		evs[i].SystemPower = cur
	}
	return evs
}

// Report is the outcome of an execution.
type Report struct {
	// Events is the trace.
	Events []Event
	// Finish is the schedule-relative completion time.
	Finish model.Time
	// Energy is total consumption in joules.
	Energy float64
	// SolarUsed is the energy served by the free source.
	SolarUsed float64
	// BatteryUsed is the energy served by the battery.
	BatteryUsed float64
	// SolarWasted is free energy available but not consumed.
	SolarWasted float64
	// PeakDemand is the highest instantaneous demand observed.
	PeakDemand float64

	// Violated reports whether the replay stopped on a violation
	// (over-budget demand or battery exhaustion) rather than running
	// to its horizon.
	Violated bool
	// ViolationAt is the schedule-relative instant of the violation.
	// Seconds [0, ViolationAt) executed and were accounted (energy,
	// battery draw); second ViolationAt itself did not happen. Only
	// meaningful when Violated is true.
	ViolationAt model.Time
	// StoppedAt is the instant the replay stopped: ViolationAt on a
	// violation, min(until, Finish) otherwise. NotStarted and
	// InFlight describe the residual state at this instant.
	StoppedAt model.Time
	// NotStarted lists the tasks whose start time is at or after
	// StoppedAt — the residual set an online rescheduler plans over.
	// Ordered by scheduled start, then name.
	NotStarted []string
	// InFlight lists the tasks that started before StoppedAt but had
	// not finished — work a contingency must restart (tasks are
	// non-preemptive; partial progress is lost). Ordered by scheduled
	// start, then name.
	InFlight []string

	// Sort keys parallel to NotStarted/InFlight, kept on the report so
	// a reused report (Replayer) re-sorts into the same backing arrays
	// instead of allocating per replay.
	nsStarts []model.Time
	ifStarts []model.Time
}

// residual fills the NotStarted/InFlight sets of the report for the
// instant the replay stopped. It reuses the report's slice backing
// (insertion sort by start, then name — residual sets are small), so a
// reused report allocates nothing once the buffers have grown.
func (rep *Report) residual(p *model.Problem, s schedule.Schedule, stop model.Time) {
	rep.StoppedAt = stop
	rep.NotStarted, rep.nsStarts = rep.NotStarted[:0], rep.nsStarts[:0]
	rep.InFlight, rep.ifStarts = rep.InFlight[:0], rep.ifStarts[:0]
	for i, t := range p.Tasks {
		switch {
		case s.Start[i] >= stop:
			rep.NotStarted, rep.nsStarts = insertByStart(rep.NotStarted, rep.nsStarts, t.Name, s.Start[i])
		case s.Start[i]+t.Delay > stop:
			rep.InFlight, rep.ifStarts = insertByStart(rep.InFlight, rep.ifStarts, t.Name, s.Start[i])
		}
	}
}

// insertByStart inserts name into the (start, name)-ordered parallel
// slices, keeping them sorted.
func insertByStart(names []string, starts []model.Time, name string, start model.Time) ([]string, []model.Time) {
	i := len(names)
	for i > 0 && (starts[i-1] > start || (starts[i-1] == start && names[i-1] > name)) {
		i--
	}
	names = append(names, "")
	starts = append(starts, 0)
	copy(names[i+1:], names[i:])
	copy(starts[i+1:], starts[i:])
	names[i] = name
	starts[i] = start
	return names, starts
}

// Execute replays the schedule starting at mission time offset against
// the supply. Demand beyond the instantaneous solar output is drawn
// from the battery; demand beyond solar plus the battery's maximum
// output is a hard failure, as is battery exhaustion. The battery may
// be nil when only solar accounting is wanted (any over-solar demand
// then fails).
func Execute(p *model.Problem, s schedule.Schedule, sup power.Supply, bat *power.Battery, offset model.Time) (Report, error) {
	return ExecuteUntil(p, s, sup, bat, offset, -1)
}

// ExecuteUntil replays only the first `until` seconds of the schedule
// (a negative until, or one at or beyond the finish time, replays the
// whole schedule). Whether the replay completes, stops at the horizon,
// or fails, the report carries the residual state — the violation
// instant when one occurred, plus the NotStarted and InFlight task
// sets at the stop instant — so an online rescheduler can build the
// contingency problem without re-deriving it from the event trace.
func ExecuteUntil(p *model.Problem, s schedule.Schedule, sup power.Supply, bat *power.Battery, offset, until model.Time) (Report, error) {
	rep := Report{Events: Trace(p, s), Finish: s.Finish(p.Tasks)}
	err := replayCore(&rep, p, s, sup, bat, offset, until)
	return rep, err
}

// replayCore is the second-by-second replay shared by ExecuteUntil and
// Replayer. It expects rep.Finish to be set and accounts everything
// else into rep. The float accumulation order (base power, then tasks
// in index order, per second) is part of the contract: campaign
// determinism relies on every replay path summing in the same order.
func replayCore(rep *Report, p *model.Problem, s schedule.Schedule, sup power.Supply, bat *power.Battery, offset, until model.Time) error {
	end := rep.Finish
	if until >= 0 && until < end {
		end = until
	}
	fail := func(t model.Time, err error) error {
		rep.Violated = true
		rep.ViolationAt = t
		rep.residual(p, s, t)
		return err
	}
	for t := model.Time(0); t < end; t++ {
		demand := p.BasePower
		for i, task := range p.Tasks {
			if s.Start[i] <= t && t < s.Start[i]+task.Delay {
				demand += task.Power
			}
		}
		if demand > rep.PeakDemand {
			rep.PeakDemand = demand
		}
		solar := sup.PminAt(offset + t)
		budget := solar
		if bat != nil {
			budget += bat.MaxPower
		}
		if demand > budget+1e-9 {
			return fail(t, fmt.Errorf("exec: t=%d (mission %d): demand %.4g W exceeds available %.4g W",
				t, offset+t, demand, budget))
		}
		rep.Energy += demand
		if demand <= solar {
			rep.SolarUsed += demand
			rep.SolarWasted += solar - demand
			continue
		}
		rep.SolarUsed += solar
		draw := demand - solar
		if bat == nil {
			rep.Energy -= demand
			rep.SolarUsed -= solar
			return fail(t, fmt.Errorf("exec: t=%d: demand %.4g W exceeds solar %.4g W with no battery",
				t, demand, solar))
		}
		if err := bat.Draw(draw); err != nil {
			// Roll the failed second back out of the ledgers so the
			// report accounts exactly [0, ViolationAt).
			rep.Energy -= demand
			rep.SolarUsed -= solar
			return fail(t, fmt.Errorf("exec: t=%d: %w", t, err))
		}
		rep.BatteryUsed += draw
	}
	rep.residual(p, s, end)
	return nil
}
