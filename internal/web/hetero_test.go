package web

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sched"
)

// heteroSpec is a small heterogeneous problem exercising all three new
// directives: machines, DVS levels, and a pin.
const heteroSpec = `problem hetero-up
pmax 20
machine slow 1 1
machine fast 2 1.5
task a R 6 4
task b S 2 3
level b 1 3
level b 2 1.5
pin b slow
`

// TestUploadHeteroThenSchedule uploads a heterogeneous spec and renders
// it in every schedule format; the handlers must accept the new
// directives with the old query syntax unchanged.
func TestUploadHeteroThenSchedule(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/problems", "text/plain", strings.NewReader(heteroSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	for _, q := range []string{
		"problem=hetero-up",
		"problem=hetero-up&format=ascii",
		"problem=hetero-up&format=dot",
		"problem=hetero-up&format=json",
		"problem=hetero-up&format=ascii&seed=3&restarts=2&workers=2",
	} {
		code, body, _ := get(t, ts.URL+"/schedule?"+q)
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", q, code, body)
		}
	}
}

// TestUploadRejectsOversizedHetero mirrors the task-count bound for the
// two new search-space dimensions: machine count and per-task DVS
// levels get a 400, and an admissible-but-unschedulable machine
// pinning gets a 422 from the feasibility probe.
func TestUploadRejectsOversizedHetero(t *testing.T) {
	_, ts := testServer(t)
	var machines strings.Builder
	machines.WriteString("problem too-many-machines\ntask a R 1 1\n")
	for i := 0; i <= maxSpecMachines; i++ {
		fmt.Fprintf(&machines, "machine m%d 1 1\n", i)
	}
	var levels strings.Builder
	levels.WriteString("problem too-many-levels\nmachine m 1 1\ntask a R 4 1\n")
	for i := 0; i <= maxSpecLevels; i++ {
		fmt.Fprintf(&levels, "level a %d 1\n", i+1)
	}
	cases := map[string]struct {
		text string
		want int
	}{
		"machines over bound": {machines.String(), http.StatusBadRequest},
		"levels over bound":   {levels.String(), http.StatusBadRequest},
		"pin to unknown machine": {
			"problem bad-pin\nmachine m 1 1\ntask a R 2 1\npin a nope\n",
			http.StatusBadRequest,
		},
		"same-machine pin conflict": {
			// Both tasks pinned to one machine must serialize, but the
			// window forces them to start together: unschedulable.
			"problem pin-clash\nmachine m 1 1\ntask a R 2 1\ntask b S 2 1\npin a m\npin b m\na -> b [0,0]\n",
			http.StatusUnprocessableEntity,
		},
	}
	for name, tc := range cases {
		resp, err := http.Post(ts.URL+"/problems", "text/plain", strings.NewReader(tc.text))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
}

// TestVerifyEndpointHetero runs the standalone verify endpoint on a
// heterogeneous spec; the oracle must check the machine assignment (a
// task on the fast machine finishes early, which plain Check would
// reject as a delay mismatch).
func TestVerifyEndpointHetero(t *testing.T) {
	s := NewServer(sched.Options{})
	ts := httptest.NewServer(http.HandlerFunc(s.VerifyHandlerFunc))
	defer ts.Close()
	resp, err := http.Post(ts.URL, "text/plain", strings.NewReader(heteroSpec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "finish=") {
		t.Errorf("unexpected body: %s", body)
	}
}
