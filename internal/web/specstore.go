package web

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/spec"
)

// SpecStore is the slice of the persistent store the server uses to
// make uploaded registrations survive restarts, satisfied by
// *store.Store. Registration is otherwise in-memory per process, which
// is exactly wrong for a shard that crashes and comes back: its warm
// L2 results would be unreachable behind 404s. Persisting the spec
// text (not the parsed problem) keeps the record format trivially
// stable, and re-parsing on load re-runs every validation.
type SpecStore interface {
	Put(key string, val []byte) error
	ForEach(fn func(key string, val []byte) error) error
}

// specKeyPrefix version-tags persisted spec records; they share the
// result store's log, so the prefix also keeps the two key spaces
// disjoint.
const specKeyPrefix = "spec1/"

// SetSpecStore makes uploaded registrations durable in the given
// store. Call before LoadPersistedProblems and before serving.
func (s *Server) SetSpecStore(ss SpecStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specStore = ss
}

// persistSpec writes a registered problem's spec text through to the
// spec store, best-effort: persistence failure must not fail the
// registration (the client got what it asked for; only restart
// recovery degrades), so errors only surface as a dropped record.
func (s *Server) persistSpec(p *model.Problem) {
	s.mu.RLock()
	ss := s.specStore
	s.mu.RUnlock()
	if ss == nil {
		return
	}
	ss.Put(specKeyPrefix+p.Name, []byte(spec.Format(p))) //nolint:errcheck // best-effort durability
}

// LoadPersistedProblems re-registers every spec the store holds,
// returning how many loaded. Specs that no longer parse or that
// violate the serving bounds are skipped (and reported in err's
// message) rather than aborting the load — one bad record must not
// hold the rest of the shard's registrations hostage.
func (s *Server) LoadPersistedProblems() (int, error) {
	s.mu.RLock()
	ss := s.specStore
	s.mu.RUnlock()
	if ss == nil {
		return 0, nil
	}
	var loaded int
	var bad []string
	err := ss.ForEach(func(key string, val []byte) error {
		if !strings.HasPrefix(key, specKeyPrefix) {
			return nil
		}
		p, err := spec.ParseString(string(val))
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: %v", key, err))
			return nil
		}
		if err := checkSpecBounds(p); err != nil {
			bad = append(bad, fmt.Sprintf("%s: %v", key, err))
			return nil
		}
		s.Add(p)
		loaded++
		return nil
	})
	if err != nil {
		return loaded, err
	}
	if len(bad) > 0 {
		return loaded, fmt.Errorf("web: %d persisted spec(s) skipped: %s", len(bad), strings.Join(bad, "; "))
	}
	return loaded, nil
}
