package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
)

// webCampaignMaxRuns caps a POST /simulate/campaign request. Campaigns
// stream into constant-memory reducers, so the bound is about CPU-time
// per request, not memory; million-run campaigns are in scope — that
// is what sharding exists for.
const webCampaignMaxRuns = 1 << 20

// CampaignRequest is the POST /simulate/campaign document. Exactly one
// of Problem (a registered name) or Spec (an inline spec document)
// selects the problem. Runs and Seed define the campaign; Faults is
// the CLI fault spec ("" = defaults, "none" = fault-free).
//
// Lo/Hi select the seed sub-range [Lo, Hi) of the campaign (Hi = 0
// means Runs). A coordinator shards a campaign by posting sub-ranges
// of the SAME (runs, seed, faults) campaign to different backends with
// Partial set, then merges the returned reducers in range order; the
// result is byte-identical to one backend running the whole range.
type CampaignRequest struct {
	Problem string `json:"problem,omitempty"`
	Spec    string `json:"spec,omitempty"`
	Runs    int    `json:"runs"`
	Seed    int64  `json:"seed"`
	Faults  string `json:"faults,omitempty"`
	Lo      int    `json:"lo,omitempty"`
	Hi      int    `json:"hi,omitempty"`
	// Partial requests the sub-range's raw reducer (CampaignPartial)
	// instead of a finalized Summary.
	Partial bool `json:"partial,omitempty"`
}

// CampaignPartial is the Partial=true response: the executed range and
// its reducer in wire form, ready for Reducer.Merge at a coordinator.
type CampaignPartial struct {
	Lo      int             `json:"lo"`
	Hi      int             `json:"hi"`
	Reducer sim.ReducerWire `json:"reducer"`
}

// simulateCampaign is POST /simulate/campaign: the body-driven,
// shardable sibling of GET /simulate. It accepts inline specs (so a
// router can fan one campaign over backends that never registered the
// problem), larger run counts, and sub-range execution with reducer
// wire output for scatter-gather coordinators.
func (s *Server) simulateCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("campaign request exceeds %d bytes", tooBig.Limit))
			return
		}
		writeJSONError(w, http.StatusBadRequest, "bad campaign request: "+err.Error())
		return
	}

	var p *model.Problem
	switch {
	case req.Problem != "" && req.Spec != "":
		writeJSONError(w, http.StatusBadRequest, "request sets both problem and spec")
		return
	case req.Problem != "":
		q, ok := s.lookup(req.Problem)
		if !ok {
			writeJSONError(w, http.StatusNotFound, "unknown problem")
			return
		}
		p = q
	case req.Spec != "":
		if len(req.Spec) > maxSpecBytes {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("spec exceeds %d bytes", maxSpecBytes))
			return
		}
		q, err := spec.ParseString(req.Spec)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := checkSpecBounds(q); err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		p = q
	default:
		writeJSONError(w, http.StatusBadRequest, "request needs a problem name or an inline spec")
		return
	}
	if p.Pmax <= 0 {
		writeJSONError(w, http.StatusUnprocessableEntity, "problem has no positive pmax to simulate against")
		return
	}
	if req.Runs < 1 || req.Runs > webCampaignMaxRuns {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad runs (want 1..%d)", webCampaignMaxRuns))
		return
	}
	lo, hi := req.Lo, req.Hi
	if hi == 0 {
		hi = req.Runs
	}
	if lo < 0 || hi > req.Runs || lo >= hi {
		writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("bad range [%d, %d) for %d runs", lo, hi, req.Runs))
		return
	}
	if !req.Partial && (lo != 0 || hi != req.Runs) {
		// A Summary whose header says "runs: N" but which folded a
		// sub-range would be silently wrong; sub-ranges are only served
		// in reducer form.
		writeJSONError(w, http.StatusBadRequest, "sub-range campaigns require partial=true")
		return
	}
	fm, err := sim.ParseFaults(req.Faults)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}

	c := sim.Campaign{
		Mission: sim.ProblemMission(p),
		Faults:  fm,
		Runs:    req.Runs,
		Seed:    req.Seed,
		Opts:    s.opts,
		Svc:     s.svc,
	}
	red, err := c.ReduceRange(r.Context(), lo, hi)
	if err != nil {
		writeScheduleError(w, err)
		return
	}

	var data []byte
	if req.Partial {
		data, err = json.MarshalIndent(CampaignPartial{Lo: lo, Hi: hi, Reducer: red.Wire()}, "", "  ")
	} else {
		data, err = red.Finalize(req.Seed).JSON()
	}
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
