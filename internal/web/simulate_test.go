package web

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestSimulateJSON(t *testing.T) {
	_, ts := testServer(t)
	code, body, hdr := get(t, ts.URL+"/simulate?problem=nine-task-example&n=5&seed=3")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Errorf("content type = %q", hdr.Get("Content-Type"))
	}
	var sum struct {
		Runs         int     `json:"runs"`
		Seed         int64   `json:"seed"`
		SurvivalRate float64 `json:"survival_rate"`
	}
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatalf("summary is not JSON: %v\n%s", err, body)
	}
	if sum.Runs != 5 || sum.Seed != 3 {
		t.Errorf("summary = %+v, want runs 5 seed 3", sum)
	}
	if sum.SurvivalRate < 0 || sum.SurvivalRate > 1 {
		t.Errorf("survival rate %g out of range", sum.SurvivalRate)
	}

	// Same query, same bytes: the endpoint is deterministic.
	_, again, _ := get(t, ts.URL+"/simulate?problem=nine-task-example&n=5&seed=3")
	if body != again {
		t.Errorf("repeated query differs:\n%s\nvs\n%s", body, again)
	}
}

func TestSimulateHTMLCard(t *testing.T) {
	_, ts := testServer(t)
	code, body, hdr := get(t, ts.URL+"/simulate?problem=nine-task-example&n=4&format=html")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "html") {
		t.Errorf("content type = %q", hdr.Get("Content-Type"))
	}
	for _, want := range []string{"sim-card", "survival", "reschedules", "battery energy"} {
		if !strings.Contains(body, want) {
			t.Errorf("card missing %q", want)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/simulate?problem=nope", http.StatusNotFound},
		{"/simulate?problem=nine-task-example&n=0", http.StatusBadRequest},
		{"/simulate?problem=nine-task-example&n=100000", http.StatusBadRequest},
		{"/simulate?problem=nine-task-example&seed=x", http.StatusBadRequest},
		{"/simulate?problem=nine-task-example&faults=bogus=1", http.StatusBadRequest},
		{"/simulate?problem=nine-task-example&format=pdf", http.StatusBadRequest},
	} {
		if code, body, _ := get(t, ts.URL+tc.url); code != tc.code {
			t.Errorf("%s: status = %d, want %d (%s)", tc.url, code, tc.code, strings.TrimSpace(body))
		}
	}
}

func TestIndexLinksSimulate(t *testing.T) {
	_, ts := testServer(t)
	_, body, _ := get(t, ts.URL+"/")
	if !strings.Contains(body, "/simulate?problem=") {
		t.Error("index has no simulate links")
	}
}
