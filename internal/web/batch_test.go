package web

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/spec"
)

func postBatch(t *testing.T, url string, body string) (int, BatchResponse, string) {
	t.Helper()
	resp, err := http.Post(url+"/schedule/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("decode batch response: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, doc, string(raw)
}

func TestBatchEndpoint(t *testing.T) {
	s := NewServer(sched.Options{})
	nine := paperex.Nine()
	s.Add(nine)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	inline := spec.Format(nine)
	body, err := json.Marshal(BatchRequest{Items: []BatchItem{
		{Problem: "nine-task-example"},
		{Problem: "nine-task-example", Stage: "timing"},
		{Spec: inline, Stage: "minpower"},
		{Problem: "no-such-problem"},
		{Problem: "nine-task-example", Stage: "bogus"},
		{},
	}})
	if err != nil {
		t.Fatal(err)
	}
	code, doc, raw := postBatch(t, ts.URL, string(body))
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, raw)
	}
	if len(doc.Items) != 6 {
		t.Fatalf("got %d items, want 6: %s", len(doc.Items), raw)
	}
	wantStatus := []int{200, 200, 200, 404, 400, 400}
	for i, want := range wantStatus {
		if doc.Items[i].Status != want {
			t.Errorf("item %d: status %d, want %d (%s)", i, doc.Items[i].Status, want, doc.Items[i].Error)
		}
	}
	// The inline spec is the same problem as the registered name: same
	// fingerprint, same schedule bytes, and the service must have
	// deduplicated them (one minpower compute, one timing compute).
	if doc.Items[0].Fingerprint != doc.Items[2].Fingerprint {
		t.Errorf("fingerprints differ for identical problems")
	}
	if string(doc.Items[0].Schedule) != string(doc.Items[2].Schedule) {
		t.Errorf("schedules differ for identical problems")
	}
	if doc.Items[0].Finish == 0 {
		t.Errorf("item 0 has no finish time")
	}
	if stats := s.Service().Stats(); stats.Misses != 2 {
		t.Errorf("batch did not dedup identical items: %+v", stats)
	}

	// Batch-vs-single consistency: the embedded schedule document is
	// the compacted form of the single endpoint's JSON.
	resp, err := http.Get(ts.URL + "/schedule?problem=nine-task-example&format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	singleRaw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := json.Marshal(json.RawMessage(singleRaw))
	if string(single) != string(doc.Items[0].Schedule) {
		t.Errorf("batch schedule differs from single endpoint:\n%s\nvs\n%s", doc.Items[0].Schedule, single)
	}
}

func TestBatchBounds(t *testing.T) {
	s := NewServer(sched.Options{})
	s.Add(paperex.Nine())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Malformed document.
	code, _, _ := postBatch(t, ts.URL, "{not json")
	if code != http.StatusBadRequest {
		t.Errorf("malformed: status %d, want 400", code)
	}
	// Empty batch.
	code, _, _ = postBatch(t, ts.URL, `{"items":[]}`)
	if code != http.StatusBadRequest {
		t.Errorf("empty: status %d, want 400", code)
	}
	// Too many items.
	items := make([]BatchItem, maxBatchItems+1)
	for i := range items {
		items[i] = BatchItem{Problem: "nine-task-example"}
	}
	body, _ := json.Marshal(BatchRequest{Items: items})
	code, _, _ = postBatch(t, ts.URL, string(body))
	if code != http.StatusBadRequest {
		t.Errorf("too many items: status %d, want 400", code)
	}
	// Oversized document: 413 like the single-spec contract.
	huge := `{"items":[{"spec":"` + strings.Repeat("x", maxBatchBytes) + `"}]}`
	code, _, _ = postBatch(t, ts.URL, huge)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized: status %d, want 413", code)
	}
	// Per-item option bounds surface as per-item 400s, not batch
	// failures.
	bad := maxRestarts + 1
	body, _ = json.Marshal(BatchRequest{Items: []BatchItem{
		{Problem: "nine-task-example", Restarts: &bad},
		{Problem: "nine-task-example", Workers: &bad},
	}})
	code, doc, raw := postBatch(t, ts.URL, string(body))
	if code != http.StatusOK {
		t.Fatalf("bounds batch: status %d: %s", code, raw)
	}
	for i := range doc.Items {
		if doc.Items[i].Status != http.StatusBadRequest {
			t.Errorf("item %d: status %d, want 400", i, doc.Items[i].Status)
		}
	}
}
