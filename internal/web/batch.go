package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/spec"
)

// Batch wire protocol bounds. The whole document is read under
// maxBatchBytes (413 beyond, matching the single-spec contract); the
// item count is a search-space bound like maxSpecTasks (400 beyond).
const (
	maxBatchBytes = 8 << 20
	maxBatchItems = 256
)

// BatchItem is one entry of a POST /schedule/batch request. Exactly
// one of Problem (a registered problem name) or Spec (an inline spec
// document) selects the problem; the remaining fields mirror the
// single /schedule query parameters.
type BatchItem struct {
	Problem string `json:"problem,omitempty"`
	Spec    string `json:"spec,omitempty"`
	Stage   string `json:"stage,omitempty"`
	// Pointer fields distinguish "omitted" (server default, exactly
	// like the missing query parameter on GET /schedule) from an
	// explicit zero.
	Seed     *int64 `json:"seed,omitempty"`
	Restarts *int   `json:"restarts,omitempty"`
	Workers  *int   `json:"workers,omitempty"`
}

// BatchRequest is the POST /schedule/batch document.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchItemResult is one entry of the response, in request order.
// Status carries the per-item HTTP contract (the envelope itself is
// 200 whenever the document parsed): 200 with the schedule document
// and summary metrics, or the single-endpoint error status with Error
// set. Fingerprint is the problem's content address — the router key.
type BatchItemResult struct {
	Status      int             `json:"status"`
	Error       string          `json:"error,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Schedule    json.RawMessage `json:"schedule,omitempty"`
	Finish      model.Time      `json:"finish,omitempty"`
	Peak        float64         `json:"peak,omitempty"`
	EnergyCost  float64         `json:"energy_cost,omitempty"`
}

// BatchResponse is the POST /schedule/batch response document.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// resolveBatchItem validates one item without scheduling anything,
// returning the problem, options, and stage, or a per-item status.
func (s *Server) resolveBatchItem(it BatchItem) (*model.Problem, sched.Options, service.Stage, int, error) {
	var zero sched.Options
	var p *model.Problem
	switch {
	case it.Problem != "" && it.Spec != "":
		return nil, zero, 0, http.StatusBadRequest, errors.New("item sets both problem and spec")
	case it.Problem != "":
		q, ok := s.lookup(it.Problem)
		if !ok {
			return nil, zero, 0, http.StatusNotFound, fmt.Errorf("unknown problem %q", it.Problem)
		}
		p = q
	case it.Spec != "":
		if len(it.Spec) > maxSpecBytes {
			return nil, zero, 0, http.StatusRequestEntityTooLarge,
				fmt.Errorf("item spec exceeds %d bytes", maxSpecBytes)
		}
		q, err := spec.ParseString(it.Spec)
		if err != nil {
			return nil, zero, 0, http.StatusBadRequest, err
		}
		if err := checkSpecBounds(q); err != nil {
			return nil, zero, 0, http.StatusBadRequest, err
		}
		p = q
	default:
		return nil, zero, 0, http.StatusBadRequest, errors.New("item needs a problem name or an inline spec")
	}
	opts := s.opts
	if it.Seed != nil {
		opts.Seed = *it.Seed
	}
	if it.Restarts != nil {
		if *it.Restarts < 0 || *it.Restarts > maxRestarts {
			return nil, zero, 0, http.StatusBadRequest, fmt.Errorf("bad restarts (want 0..%d)", maxRestarts)
		}
		opts.Restarts = *it.Restarts
	}
	if it.Workers != nil {
		if *it.Workers < 0 || *it.Workers > maxWorkers {
			return nil, zero, 0, http.StatusBadRequest, fmt.Errorf("bad workers (want 0..%d)", maxWorkers)
		}
		opts.Workers = *it.Workers
	}
	stage, err := service.ParseStage(it.Stage)
	if err != nil {
		return nil, zero, 0, http.StatusBadRequest, errors.New("bad stage")
	}
	return p, opts, stage, 0, nil
}

// scheduleBatch is POST /schedule/batch: the amortized entry point for
// bulk scheduling. The document is parsed once, every valid item is
// resolved to a (problem, options, stage) request, and all of them run
// in a single ScheduleBatchCtx pass over the service's worker pool —
// identical items dedup through the cache and singleflight exactly
// like concurrent single requests. The response carries one entry per
// item, in order, each with its own status under the single-endpoint
// error contract.
func (s *Server) scheduleBatch(w http.ResponseWriter, r *http.Request) {
	var doc BatchRequest
	body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if err := json.NewDecoder(body).Decode(&doc); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch exceeds %d bytes", tooBig.Limit))
			return
		}
		writeJSONError(w, http.StatusBadRequest, "bad batch document: "+err.Error())
		return
	}
	if len(doc.Items) == 0 {
		writeJSONError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if len(doc.Items) > maxBatchItems {
		writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d items (max %d)", len(doc.Items), maxBatchItems))
		return
	}

	items := make([]BatchItemResult, len(doc.Items))
	var reqs []service.Request
	var reqIdx []int // reqs[j] answers items[reqIdx[j]]
	for i, it := range doc.Items {
		p, opts, stage, status, err := s.resolveBatchItem(it)
		if err != nil {
			items[i] = BatchItemResult{Status: status, Error: err.Error()}
			continue
		}
		items[i].Fingerprint = p.Fingerprint()
		reqs = append(reqs, service.Request{Problem: p, Opts: opts, Stage: stage})
		reqIdx = append(reqIdx, i)
	}

	resps := s.svc.ScheduleBatchCtx(r.Context(), reqs)
	for j, resp := range resps {
		i := reqIdx[j]
		if resp.Err != nil {
			status, msg := scheduleErrorStatus(resp.Err)
			items[i] = BatchItemResult{Status: status, Error: msg, Fingerprint: items[i].Fingerprint}
			continue
		}
		res := resp.Result
		doc, err := spec.FormatScheduleJSON(res.EffectiveProblem(), res.Schedule)
		if err != nil {
			items[i] = BatchItemResult{Status: http.StatusInternalServerError, Error: err.Error(), Fingerprint: items[i].Fingerprint}
			continue
		}
		items[i].Status = http.StatusOK
		items[i].Schedule = doc
		items[i].Finish = res.Finish()
		items[i].Peak = res.Peak()
		items[i].EnergyCost = res.EnergyCost()
	}

	data, err := json.Marshal(BatchResponse{Items: items})
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// checkSpecBounds applies the upload endpoint's problem-size bounds to
// an already-parsed problem (batch items arrive inside the batch
// document, so the byte bound is enforced separately).
func checkSpecBounds(p *model.Problem) error {
	if len(p.Tasks) > maxSpecTasks {
		return fmt.Errorf("spec has %d tasks (max %d)", len(p.Tasks), maxSpecTasks)
	}
	if len(p.Machines) > maxSpecMachines {
		return fmt.Errorf("spec has %d machines (max %d)", len(p.Machines), maxSpecMachines)
	}
	for _, task := range p.Tasks {
		if len(task.Levels) > maxSpecLevels {
			return fmt.Errorf("task %s has %d DVS levels (max %d)", task.Name, len(task.Levels), maxSpecLevels)
		}
	}
	return nil
}
