package web

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/paperex"
	"repro/internal/sched"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The nondeterministic fields of /stats (elapsed compute time, the
// wall/monotonic clock anchors, and the process-global campaign
// progress counters — cumulative across every campaign the test
// process has run, so shuffle-order dependent) are scrubbed so the
// rest of the document can be compared exactly.
var (
	computeNS   = regexp.MustCompile(`"compute_ns": \{[^{}]*\}`)
	clockFlds   = regexp.MustCompile(`"(start_time|uptime_seconds)": [0-9.e+-]+`)
	campaignFld = regexp.MustCompile(`"campaign": \{[^{}]*\}`)
)

// TestGolden locks the /schedule JSON representation across all three
// pipeline stages, plus the /stats counters after exactly that request
// sequence (three misses, zero hits — then one hit from the repeated
// minpower request). Regenerate with `go test ./internal/web -update`.
func TestGolden(t *testing.T) {
	s := NewServer(sched.Options{})
	s.Add(paperex.Nine())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	cases := []struct {
		golden string
		path   string
	}{
		{"schedule-timing.json", "/schedule?problem=nine-task-example&stage=timing&format=json"},
		{"schedule-maxpower.json", "/schedule?problem=nine-task-example&stage=maxpower&format=json"},
		{"schedule-minpower.json", "/schedule?problem=nine-task-example&stage=minpower&format=json"},
		// Repeat the default stage: must serve from the cache and show
		// up as the single hit in the stats golden below.
		{"schedule-minpower.json", "/schedule?problem=nine-task-example&format=json"},
		{"stats.json", "/stats"},
	}
	for _, tc := range cases {
		code, body, _ := get(t, ts.URL+tc.path)
		if code != 200 {
			t.Fatalf("%s: status %d: %s", tc.path, code, body)
		}
		got := computeNS.ReplaceAllString(body, `"compute_ns": {}`)
		got = clockFlds.ReplaceAllString(got, `"$1": 0`)
		got = campaignFld.ReplaceAllString(got, `"campaign": {}`)
		path := filepath.Join("testdata", tc.golden)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go test ./internal/web -update`)", tc.path, err)
		}
		if got != string(want) {
			t.Errorf("%s: response differs from %s:\ngot:\n%s\nwant:\n%s", tc.path, path, got, want)
		}
	}
}
