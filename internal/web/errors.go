package web

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/service"
)

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// recorded when the client abandoned the request before the scheduler
// finished; the response itself almost never reaches anyone, but the
// code keeps access logs honest about who terminated the exchange.
const StatusClientClosedRequest = 499

// writeJSONError emits the error contract shared by every endpoint: a
// JSON body {"error": "..."} under the given status.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck // headers already sent
}

// writeScheduleError maps a scheduling-service failure onto the HTTP
// contract:
//
//	ErrOverloaded    → 429 + Retry-After (admission control shed it)
//	ErrInternal      → 500, generic body (the stack lives in metrics)
//	DeadlineExceeded → 504 (the request's compute budget ran out)
//	Canceled         → 499 (the client went away first)
//	anything else    → 422 (the problem itself is unschedulable)
func writeScheduleError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	case errors.Is(err, service.ErrInternal):
		writeJSONError(w, http.StatusInternalServerError, "internal error")
	case errors.Is(err, context.DeadlineExceeded):
		writeJSONError(w, http.StatusGatewayTimeout, "scheduling deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeJSONError(w, StatusClientClosedRequest, "client closed request")
	default:
		writeJSONError(w, http.StatusUnprocessableEntity, "scheduling failed: "+err.Error())
	}
}
