package web

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/service"
)

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// recorded when the client abandoned the request before the scheduler
// finished; the response itself almost never reaches anyone, but the
// code keeps access logs honest about who terminated the exchange.
const StatusClientClosedRequest = 499

// writeJSONError emits the error contract shared by every endpoint: a
// JSON body {"error": "..."} under the given status.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck // headers already sent
}

// scheduleErrorStatus maps a scheduling-service failure onto the HTTP
// contract shared by the single and batch endpoints:
//
//	ErrOverloaded    → 429 (admission control shed it; single requests
//	                   also carry Retry-After)
//	ErrInternal      → 500, generic body (the stack lives in metrics)
//	DeadlineExceeded → 504 (the request's compute budget ran out)
//	Canceled         → 499 (the client went away first)
//	anything else    → 422 (the problem itself is unschedulable)
func scheduleErrorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, service.ErrOverloaded):
		return http.StatusTooManyRequests, "server overloaded, retry later"
	case errors.Is(err, service.ErrInternal):
		return http.StatusInternalServerError, "internal error"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "scheduling deadline exceeded"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "client closed request"
	default:
		return http.StatusUnprocessableEntity, "scheduling failed: " + err.Error()
	}
}

// writeScheduleError emits scheduleErrorStatus as a whole-response
// JSON error.
func writeScheduleError(w http.ResponseWriter, err error) {
	status, msg := scheduleErrorStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSONError(w, status, msg)
}
