package web

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/internal/rover"
	"repro/internal/sched"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(sched.Options{})
	s.Add(paperex.Nine())
	s.Add(rover.BuildIteration(rover.Best, rover.Cold))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestIndexListsProblems(t *testing.T) {
	_, ts := testServer(t)
	code, body, _ := get(t, ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"nine-task-example", "rover-best-cold", "/schedule?problem="} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestScheduleSVG(t *testing.T) {
	_, ts := testServer(t)
	code, body, hdr := get(t, ts.URL+"/schedule?problem=nine-task-example")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "svg") {
		t.Errorf("content type = %q", hdr.Get("Content-Type"))
	}
	if !strings.HasPrefix(body, "<svg") {
		t.Error("not an SVG document")
	}
}

func TestScheduleFormatsAndStages(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		query string
		want  string
	}{
		{"problem=nine-task-example&format=ascii", "power view:"},
		{"problem=nine-task-example&format=dot", "digraph"},
		{"problem=nine-task-example&format=json", `"tasks"`},
		{"problem=nine-task-example&stage=timing&format=ascii", "power view:"},
		{"problem=nine-task-example&stage=maxpower&format=ascii", "power view:"},
		{"problem=rover-best-cold&format=ascii&seed=3&restarts=2", "wheels"},
		{"problem=rover-best-cold&format=ascii&seed=3&restarts=2&workers=4", "wheels"},
	}
	for _, tc := range cases {
		code, body, _ := get(t, ts.URL+"/schedule?"+tc.query)
		if code != http.StatusOK {
			t.Errorf("%s: status %d: %s", tc.query, code, body)
			continue
		}
		if !strings.Contains(body, tc.want) {
			t.Errorf("%s: body missing %q", tc.query, tc.want)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	_, ts := testServer(t)
	cases := map[string]int{
		"problem=nope":                                  http.StatusNotFound,
		"problem=nine-task-example&stage=bogus":         http.StatusBadRequest,
		"problem=nine-task-example&format=bogus":        http.StatusBadRequest,
		"problem=nine-task-example&seed=xx":             http.StatusBadRequest,
		"problem=nine-task-example&restarts=-1":         http.StatusBadRequest,
		"problem=nine-task-example&restarts=notanumber": http.StatusBadRequest,
		"problem=nine-task-example&workers=-1":          http.StatusBadRequest,
		"problem=nine-task-example&workers=1000000":     http.StatusBadRequest,
	}
	for q, want := range cases {
		code, _, _ := get(t, ts.URL+"/schedule?"+q)
		if code != want {
			t.Errorf("%s: status = %d, want %d", q, code, want)
		}
	}
}

func TestUploadThenSchedule(t *testing.T) {
	_, ts := testServer(t)
	specText := "problem uploaded\npmax 10\ntask a R 2 4\ntask b S 2 4\n"
	resp, err := http.Post(ts.URL+"/problems", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	code, body, _ := get(t, ts.URL+"/schedule?problem=uploaded&format=ascii")
	if code != http.StatusOK || !strings.Contains(body, "uploaded") {
		t.Fatalf("scheduling uploaded problem failed: %d %s", code, body)
	}
}

func TestUploadRejectsBadSpecs(t *testing.T) {
	_, ts := testServer(t)
	cases := map[string]int{
		"task a R 0 1\n": http.StatusBadRequest, // invalid delay
		"# no tasks\n":   http.StatusBadRequest,
		"task a R 2 1\n": http.StatusBadRequest, // no problem name
		"problem x\ntask a R 2 1\ntask b S 2 1\na -> b [9,]\nb -> a [9,]\n": http.StatusUnprocessableEntity,
	}
	for text, want := range cases {
		resp, err := http.Post(ts.URL+"/problems", "text/plain", strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("upload %q: status = %d, want %d", text, resp.StatusCode, want)
		}
	}
}

func TestVerifyEndpoint(t *testing.T) {
	s := NewServer(sched.Options{})
	ts := httptest.NewServer(http.HandlerFunc(s.VerifyHandlerFunc))
	defer ts.Close()
	resp, err := http.Post(ts.URL, "text/plain",
		strings.NewReader("problem v\npmax 10\npmin 4\ntask a R 2 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "finish=2") {
		t.Errorf("unexpected body: %s", body)
	}
}
