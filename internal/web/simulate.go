package web

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// simulateMaxRuns caps a single HTTP request's campaign size; larger
// sweeps belong on the CLI.
const simulateMaxRuns = 500

// simulate runs a Monte-Carlo fault-injection campaign over a
// registered problem: constant solar at the problem's Pmin, the
// Pmax−Pmin headroom as battery output, and the requested fault model.
// Query: problem=X, n= (runs, default 50), seed=, faults= (key=value
// overrides or "none"), format=json|html (default json). The same
// problem, n, seed, and faults always produce byte-identical JSON.
func (s *Server) simulate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p, ok := s.lookup(q.Get("problem"))
	if !ok {
		writeJSONError(w, http.StatusNotFound, "unknown problem")
		return
	}
	if p.Pmax <= 0 {
		writeJSONError(w, http.StatusUnprocessableEntity, "problem has no positive pmax to simulate against")
		return
	}
	n := 50
	if v := q.Get("n"); v != "" {
		x, err := strconv.Atoi(v)
		if err != nil || x < 1 || x > simulateMaxRuns {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad n (want 1..%d)", simulateMaxRuns))
			return
		}
		n = x
	}
	var seed int64 = 1
	if v := q.Get("seed"); v != "" {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "bad seed")
			return
		}
		seed = x
	}
	fm, err := sim.ParseFaults(q.Get("faults"))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	sum, err := sim.Campaign{
		Mission: sim.ProblemMission(p),
		Faults:  fm,
		Runs:    n,
		Seed:    seed,
		Opts:    s.opts,
		Svc:     s.svc,
	}.RunCtx(r.Context())
	if err != nil {
		writeScheduleError(w, err)
		return
	}

	switch q.Get("format") {
	case "", "json":
		data, err := sum.JSON()
		if err != nil {
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeSimCard(w, p.Name, sum)
	default:
		writeJSONError(w, http.StatusBadRequest, "bad format")
	}
}

// writeSimCard renders the campaign summary as a small stats card.
func writeSimCard(w http.ResponseWriter, name string, sum sim.Summary) {
	e := html.EscapeString(name)
	fmt.Fprintf(w, `<html><head><title>simulate %s</title></head><body>`, e)
	fmt.Fprintf(w, `<div class="sim-card"><h1>Fault campaign: %s</h1>`, e)
	fmt.Fprintf(w, `<p>%d runs, seed %d</p><table border="1" cellpadding="4">`, sum.Runs, sum.Seed)
	row := func(k, v string) { fmt.Fprintf(w, `<tr><td>%s</td><td>%s</td></tr>`, k, v) }
	row("survival", fmt.Sprintf("%d/%d (%.1f%%)", sum.Survived, sum.Runs, 100*sum.SurvivalRate))
	row("deadline misses", fmt.Sprintf("%d (%.1f%%)", sum.DeadlineMisses, 100*sum.DeadlineMissRate))
	row("reschedules", strconv.Itoa(sum.Reschedules))
	row("fallbacks", strconv.Itoa(sum.Fallbacks))
	row("waits", strconv.Itoa(sum.Waits))
	row("verify rejects", strconv.Itoa(sum.VerifyRejects))
	row("constraint drops", strconv.Itoa(sum.ConstraintDrops))
	row("battery energy (J)", fmt.Sprintf("mean %.4g · p50 %.4g · p95 %.4g · max %.4g",
		sum.EnergyCost.Mean, sum.EnergyCost.P50, sum.EnergyCost.P95, sum.EnergyCost.Max))
	if sum.Survived > 0 {
		row("finish time (s)", fmt.Sprintf("mean %.4g · p50 %.4g · p95 %.4g · max %.4g",
			sum.Finish.Mean, sum.Finish.P50, sum.Finish.P95, sum.Finish.Max))
	}
	kinds := make([]string, 0, len(sum.Failures))
	for k := range sum.Failures {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		row("failures: "+html.EscapeString(k), strconv.Itoa(sum.Failures[k]))
	}
	fmt.Fprint(w, `</table></div></body></html>`)
}
