// Package web serves power-aware schedules over HTTP: a browsable
// library of problems rendered as power-aware Gantt charts (SVG or
// ASCII), with stage-by-stage views of the pipeline. It is the
// read-only web counterpart of the paper's interactive design tool.
package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/dot"
	"repro/internal/gantt"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/verify"
)

// Input bounds. Requests beyond them get a 400/413 with a JSON error
// body; bigger jobs belong on the CLI, not behind an HTTP timeout.
const (
	// maxSpecBytes bounds an uploaded spec document.
	maxSpecBytes = 1 << 20
	// maxSpecTasks bounds the task count of an uploaded problem.
	maxSpecTasks = 500
	// maxSpecMachines bounds the machine count of an uploaded problem;
	// the backtracker branches over machines, so this is a search-space
	// bound like maxSpecTasks, not a parser limit.
	maxSpecMachines = 16
	// maxSpecLevels bounds the DVS levels of any single task, for the
	// same reason.
	maxSpecLevels = 8
	// maxRestarts bounds the restarts= query knob; each restart is a
	// full pipeline run.
	maxRestarts = 64
	// maxWorkers bounds the workers= query knob; results are identical
	// for every value, so this only caps per-request goroutine fan-out.
	maxWorkers = 64
)

// Server hosts a library of named problems. All scheduling goes
// through a service.Service, so repeated and concurrent requests for
// the same schedule are served from the content-addressed cache.
// Every handler threads the request's context into the service:
// clients that disconnect or time out stop paying for compute, and the
// service's resilience layer (deadlines, admission control, panic
// containment) maps onto 504, 429+Retry-After, and 500 responses with
// JSON error bodies.
type Server struct {
	mu       sync.RWMutex
	problems map[string]*model.Problem
	opts     sched.Options
	svc      *service.Service
	shardID  string
	// notReady inverts readiness so the zero value serves: a fresh
	// server is ready until SetReady(false) starts a drain.
	notReady atomic.Bool
	// handoffSem bounds concurrent outbound hinted-handoff shipments.
	handoffSem chan struct{}
	// specStore persists uploaded specs so a restarted shard recovers
	// its registrations (nil = registrations are process-local).
	specStore SpecStore
}

// NewServer creates an empty server with the given scheduler options
// and its own private scheduling service.
func NewServer(opts sched.Options) *Server {
	return NewServerWith(opts, service.New(service.Config{}))
}

// NewServerWith creates a server on an existing scheduling service,
// for deployments that share one cache between components.
func NewServerWith(opts sched.Options, svc *service.Service) *Server {
	return &Server{
		problems:   make(map[string]*model.Problem),
		opts:       opts,
		svc:        svc,
		handoffSem: make(chan struct{}, maxHandoffShips),
	}
}

// Service returns the scheduling service backing the server.
func (s *Server) Service() *service.Service { return s.svc }

// Add registers a problem under its own name.
func (s *Server) Add(p *model.Problem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.problems[p.Name] = p
}

// Names lists registered problem names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.problems))
	for n := range s.problems {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler returns the HTTP handler:
//
//	GET /                      problem index (HTML)
//	GET /schedule?problem=X    rendered schedule; optional stage=
//	                           timing|maxpower|minpower (default
//	                           minpower), format=svg|ascii|json|dot
//	                           (default svg), seed=N, restarts=N,
//	                           workers=N (restart fan-out; results are
//	                           identical for every value)
//	POST /schedule/batch       bulk scheduling: one JSON document of
//	                           items (registered names or inline
//	                           specs), one worker-pool pass, per-item
//	                           status in the response (see batch.go)
//	POST /problems             register a problem from a spec document
//	GET /simulate?problem=X    Monte-Carlo fault campaign; optional
//	                           n=, seed=, faults=, format=json|html
//	POST /simulate/campaign    body-driven campaign: inline specs,
//	                           large run counts, seed-range sharding
//	                           with mergeable reducer output (see
//	                           campaign.go)
//	GET /stats                 scheduling-service metrics (JSON)
//	GET /healthz               process liveness (always 200)
//	GET /readyz                readiness; 503 once a drain has begun
//	POST /store/put            hinted-handoff record ingestion from a
//	                           peer shard (verified before storing)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.index)
	mux.HandleFunc("GET /schedule", s.schedule)
	mux.HandleFunc("POST /schedule/batch", s.scheduleBatch)
	mux.HandleFunc("POST /problems", s.upload)
	mux.HandleFunc("GET /simulate", s.simulate)
	mux.HandleFunc("POST /simulate/campaign", s.simulateCampaign)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /readyz", s.readyz)
	mux.HandleFunc("POST /store/put", s.storePut)
	return mux
}

// SetReady flips the /readyz verdict. Serving starts ready; a graceful
// shutdown calls SetReady(false) first, so a router's health prober
// evicts the shard from the live set before connections start failing.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports the current /readyz verdict.
func (s *Server) Ready() bool { return !s.notReady.Load() }

// healthz is process liveness: if this handler runs, the shard runs.
// It stays 200 through a drain — the process is alive while it
// finishes in-flight work; only /readyz flips.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyz is the shard's load-accepting verdict, the endpoint a
// router's active prober polls.
func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	if !s.Ready() {
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// StatsDoc is the /stats response: the service snapshot plus the
// serving-tier identity of this process, so a router aggregating
// shard stats can label each line.
type StatsDoc struct {
	ShardID string `json:"shard_id"`
	service.Stats
	// Campaign is the process-global campaign progress snapshot
	// (counters are cumulative across campaigns, like the rest).
	Campaign sim.ProgressStats `json:"campaign"`
}

// SetShardID labels this server's /stats responses (routers aggregate
// them per shard). The empty default is fine for single-node serving.
func (s *Server) SetShardID(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardID = id
}

// stats serves the scheduling service's metrics snapshot as JSON.
func (s *Server) stats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	shard := s.shardID
	s.mu.RUnlock()
	data, err := json.MarshalIndent(StatsDoc{ShardID: shard, Stats: s.svc.Stats(), Campaign: sim.Progress()}, "", "  ")
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<html><head><title>impacct</title></head><body><h1>Power-aware schedules</h1><ul>")
	for _, n := range s.Names() {
		e := html.EscapeString(n)
		fmt.Fprintf(w, `<li>%s — <a href="/schedule?problem=%s">svg</a> | <a href="/schedule?problem=%s&format=ascii">ascii</a> | <a href="/schedule?problem=%s&format=dot">dot</a> | <a href="/simulate?problem=%s&format=html">simulate</a></li>`,
			e, e, e, e, e)
	}
	fmt.Fprint(w, "</ul></body></html>")
}

func (s *Server) lookup(name string) (*model.Problem, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.problems[name]
	return p, ok
}

func (s *Server) schedule(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p, ok := s.lookup(q.Get("problem"))
	if !ok {
		writeJSONError(w, http.StatusNotFound, "unknown problem")
		return
	}
	opts := s.opts
	if seed := q.Get("seed"); seed != "" {
		v, err := strconv.ParseInt(seed, 10, 64)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "bad seed")
			return
		}
		opts.Seed = v
	}
	if rs := q.Get("restarts"); rs != "" {
		v, err := strconv.Atoi(rs)
		if err != nil || v < 0 || v > maxRestarts {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad restarts (want 0..%d)", maxRestarts))
			return
		}
		opts.Restarts = v
	}
	if ws := q.Get("workers"); ws != "" {
		v, err := strconv.Atoi(ws)
		if err != nil || v < 0 || v > maxWorkers {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad workers (want 0..%d)", maxWorkers))
			return
		}
		opts.Workers = v
	}

	stage, err := service.ParseStage(q.Get("stage"))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad stage")
		return
	}
	res, err := s.svc.ScheduleCtx(r.Context(), p, opts, stage)
	if err != nil {
		writeScheduleError(w, err)
		return
	}
	s.maybeShipHandoff(r, p, opts, stage, res)

	// Render against the effective problem: for heterogeneous runs the
	// bars and profiles must reflect the chosen machine/level delays and
	// powers, not the nominal ones. For degenerate problems this is the
	// compiled problem itself, so the rendered bytes are unchanged.
	ep := res.EffectiveProblem()
	switch q.Get("format") {
	case "", "svg":
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, gantt.New(ep, res.Schedule).SVG())
	case "ascii":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, gantt.New(ep, res.Schedule).ASCII(1))
	case "dot":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, dot.Scheduled(ep, res.Schedule))
	case "json":
		data, err := spec.FormatScheduleJSON(ep, res.Schedule)
		if err != nil {
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	default:
		writeJSONError(w, http.StatusBadRequest, "bad format")
	}
}

// parseBoundedSpec reads a spec document from the request body under
// the input bounds: at most maxSpecBytes of spec (413 beyond that) and
// at most maxSpecTasks tasks (400). On error the response has already
// been written; callers just return.
func parseBoundedSpec(w http.ResponseWriter, r *http.Request) (*model.Problem, error) {
	p, err := spec.Parse(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("spec exceeds %d bytes", tooBig.Limit))
		} else {
			writeJSONError(w, http.StatusBadRequest, err.Error())
		}
		return nil, err
	}
	if err := checkSpecBounds(p); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return nil, err
	}
	return p, nil
}

func (s *Server) upload(w http.ResponseWriter, r *http.Request) {
	p, err := parseBoundedSpec(w, r)
	if err != nil {
		return // parseBoundedSpec wrote the response
	}
	if p.Name == "" {
		writeJSONError(w, http.StatusBadRequest, "spec must carry a problem name")
		return
	}
	// Reject specs whose schedules would be unverifiable garbage early:
	// a quick feasibility probe (through the service, so the result is
	// already cached when the problem is first rendered).
	if _, err := s.svc.ScheduleCtx(r.Context(), p, s.opts, service.StageTiming); err != nil {
		writeScheduleError(w, err)
		return
	}
	s.Add(p)
	s.persistSpec(p)
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "registered %s (%d tasks)\n", p.Name, len(p.Tasks))
}

// VerifyHandlerFunc is a standalone endpoint: POST a spec, get the
// scheduled-and-verified metrics as plain text. Useful for quick
// curl-based checks without registering anything.
func (s *Server) VerifyHandlerFunc(w http.ResponseWriter, r *http.Request) {
	p, err := parseBoundedSpec(w, r)
	if err != nil {
		return // parseBoundedSpec wrote the response
	}
	res, err := s.svc.ScheduleCtx(r.Context(), p, s.opts, service.StageMinPower)
	if err != nil {
		writeScheduleError(w, err)
		return
	}
	rep := verify.CheckAssigned(p, res.Schedule, res.Assignment)
	if !rep.OK() {
		writeJSONError(w, http.StatusInternalServerError, rep.Err().Error())
		return
	}
	fmt.Fprintf(w, "finish=%d peak=%.4g cost=%.4g util=%.4f\n",
		rep.Metrics.Finish, rep.Metrics.Peak, rep.Metrics.EnergyCost, rep.Metrics.Utilization)
}
