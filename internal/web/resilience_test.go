package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/service"
)

// jsonError decodes the {"error": "..."} contract every error response
// must follow.
func jsonError(t *testing.T, body string) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("error body is not the JSON contract: %q (%v)", body, err)
	}
	if e.Error == "" {
		t.Fatalf("error body has empty error field: %q", body)
	}
	return e.Error
}

// TestWebOverloadedMapsTo429 saturates a one-worker, zero-queue service
// and asserts the shed request answers 429 with Retry-After and a JSON
// body.
func TestWebOverloadedMapsTo429(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, MaxQueue: -1})
	s := NewServerWith(sched.Options{}, svc)
	s.Add(paperex.Nine())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	release := make(chan struct{})
	started := make(chan struct{})
	blocked := make(chan error, 1)
	go func() {
		_, err := svc.MemoCtx(context.Background(), "hog", func(context.Context) (any, error) {
			close(started)
			<-release
			return 1, nil
		})
		blocked <- err
	}()
	<-started

	resp, err := http.Get(ts.URL + "/schedule?problem=nine-task-example")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	jsonError(t, body)

	close(release)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	// Capacity restored: the same request now succeeds.
	resp, err = http.Get(ts.URL + "/schedule?problem=nine-task-example")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status = %d, body %q", resp.StatusCode, body)
	}
}

// TestWebPanicMapsTo500AndServerSurvives injects a compute panic via
// the service test hook: the response is a generic 500 JSON error (no
// stack), and the very next request succeeds.
func TestWebPanicMapsTo500AndServerSurvives(t *testing.T) {
	svc := service.New(service.Config{})
	s := NewServerWith(sched.Options{}, svc)
	s.Add(paperex.Nine())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	restore := service.TestingSetComputeHook(func(string) { panic("web-chaos-panic") })
	resp, err := http.Get(ts.URL + "/schedule?problem=nine-task-example")
	restore()
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %q", resp.StatusCode, body)
	}
	if msg := jsonError(t, body); strings.Contains(msg, "web-chaos-panic") || strings.Contains(body, "goroutine") {
		t.Errorf("panic detail leaked into the response: %q", body)
	}
	if st := svc.Stats(); st.Panics != 1 {
		t.Errorf("panics = %d, want 1", st.Panics)
	}
	// The panic was contained; the server keeps serving.
	resp, err = http.Get(ts.URL + "/schedule?problem=nine-task-example")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("after panic: status = %d, body %q", resp.StatusCode, body)
	}
}

// TestWebClientCancelFreesCompute cancels the client's request while
// the compute is parked, then proves the service counted the
// cancellation and an identical follow-up succeeds (nothing poisoned,
// no slot leaked).
func TestWebClientCancelFreesCompute(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	s := NewServerWith(sched.Options{}, svc)
	s.Add(paperex.Nine())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	inHook := make(chan struct{})
	restore := service.TestingSetComputeHook(func(string) {
		close(inHook)
		time.Sleep(50 * time.Millisecond) // outlive the client's cancellation
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/schedule?problem=nine-task-example", nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			t.Error("canceled request unexpectedly completed")
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled request error = %v", err)
		}
	}()
	<-inHook
	cancel()
	wg.Wait()
	restore()

	if err := svc.Drain(contextWithTimeout(t, 5*time.Second)); err != nil {
		t.Fatalf("service did not drain after client cancel: %v", err)
	}
	if st := svc.Stats(); st.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", st.Canceled)
	}
	// The worker slot is free again and the aborted run was not cached.
	resp, err := http.Get(ts.URL + "/schedule?problem=nine-task-example")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up after cancel: status = %d, body %q", resp.StatusCode, body)
	}
}

// TestWebSpecTooLargeMapsTo413: an oversized spec upload is rejected
// with 413 and the JSON error contract.
func TestWebSpecTooLargeMapsTo413(t *testing.T) {
	_, ts := testServer(t)
	line := "# padding line to push the spec past the byte bound\n"
	big := strings.NewReader(strings.Repeat(line, maxSpecBytes/len(line)+2))
	resp, err := http.Post(ts.URL+"/problems", "text/plain", big)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %q", resp.StatusCode, body)
	}
	jsonError(t, body)
}

// TestWebTooManyTasksMapsTo400: a spec over the task cap is rejected
// before any scheduling work happens.
func TestWebTooManyTasksMapsTo400(t *testing.T) {
	_, ts := testServer(t)
	var b strings.Builder
	b.WriteString("problem toomany\npmax 1000\n")
	for i := 0; i <= maxSpecTasks; i++ {
		fmt.Fprintf(&b, "task t%d r%d 1 1\n", i, i)
	}
	resp, err := http.Post(ts.URL+"/problems", "text/plain", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %q", resp.StatusCode, body)
	}
	if msg := jsonError(t, body); !strings.Contains(msg, "tasks") {
		t.Errorf("error %q does not mention the task cap", msg)
	}
}

// TestWebBadInputsAreJSON spot-checks that plain 4xx paths answer with
// the JSON error contract too.
func TestWebBadInputsAreJSON(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/schedule?problem=nope", http.StatusNotFound},
		{"/schedule?problem=nine-task-example&restarts=1000000", http.StatusBadRequest},
		{"/schedule?problem=nine-task-example&format=tiff", http.StatusBadRequest},
		{"/simulate?problem=nine-task-example&n=100000", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d; body %q", tc.url, resp.StatusCode, tc.want, body)
			continue
		}
		jsonError(t, body)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
