package web

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/spec"
)

// mapStore is an in-memory BlobStore for handoff tests.
type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *mapStore) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), val...)
	return nil
}

func (s *mapStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *mapStore) Size() int64 { return 0 }

// storedServer boots a web server whose service writes through st.
func storedServer(t *testing.T, st service.BlobStore) (*Server, *httptest.Server) {
	t.Helper()
	cfg := service.Config{}
	if st != nil {
		cfg.Store = st
	}
	srv := NewServerWith(sched.Options{}, service.New(cfg))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// handoffDoc builds a valid handoff record by computing the result the
// way a non-owner shard would.
func handoffDoc(t *testing.T) (rec handoffRecord, key string) {
	t.Helper()
	p := paperex.Nine()
	svc := service.New(service.Config{})
	res, err := svc.ScheduleCtx(context.Background(), p, sched.Options{}, service.StageMinPower)
	if err != nil {
		t.Fatal(err)
	}
	data, err := service.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	key = service.StoreKey(p, sched.Options{}, service.StageMinPower)
	return handoffRecord{Key: key, Spec: spec.Format(p), Value: data}, key
}

func postPut(t *testing.T, base string, rec handoffRecord) *http.Response {
	t.Helper()
	body, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/store/put", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestStorePutIngestsVerifiedRecord is the receiving half of hinted
// handoff: a shipped record lands in the store only after the key,
// decode, and schedule verification all pass, and the next request for
// that key is served from L2 without recomputing.
func TestStorePutIngestsVerifiedRecord(t *testing.T) {
	st := newMapStore()
	srv, ts := storedServer(t, st)

	rec, key := handoffDoc(t)
	resp := postPut(t, ts.URL, rec)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid handoff: status %d, want 204", resp.StatusCode)
	}
	if _, ok := st.Get(key); !ok {
		t.Fatal("accepted record is not in the store")
	}
	stats := srv.Service().Stats()
	if stats.HandoffsReceived != 1 || stats.HandoffsRejected != 0 {
		t.Errorf("received=%d rejected=%d, want 1/0", stats.HandoffsReceived, stats.HandoffsRejected)
	}

	// The record must be live: the owner serves the key from L2.
	srv.Add(paperex.Nine())
	r, err := http.Get(ts.URL + "/schedule?problem=nine-task-example&format=json")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("schedule after handoff: status %d", r.StatusCode)
	}
	if got := srv.Service().Stats().HitsL2; got != 1 {
		t.Errorf("hits_l2=%d after handoff refill, want 1", got)
	}
}

// TestStorePutRejections walks the validation gauntlet: every invalid
// record must bounce with the right status and never touch the store.
func TestStorePutRejections(t *testing.T) {
	valid, _ := handoffDoc(t)

	t.Run("key for a different problem", func(t *testing.T) {
		st := newMapStore()
		srv, ts := storedServer(t, st)
		rec := valid
		rec.Key = "sr1/0000000000000000/minpower/x"
		if resp := postPut(t, ts.URL, rec); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("status %d, want 422", resp.StatusCode)
		}
		if st.Len() != 0 {
			t.Error("rejected record reached the store")
		}
		if got := srv.Service().Stats().HandoffsRejected; got != 1 {
			t.Errorf("handoffs_rejected=%d, want 1", got)
		}
	})

	t.Run("corrupt value", func(t *testing.T) {
		st := newMapStore()
		_, ts := storedServer(t, st)
		rec := valid
		rec.Value = append([]byte{0xFF, 0xEE}, rec.Value[:len(rec.Value)/2]...)
		if resp := postPut(t, ts.URL, rec); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("status %d, want 422", resp.StatusCode)
		}
		if st.Len() != 0 {
			t.Error("corrupt record reached the store")
		}
	})

	t.Run("no store configured", func(t *testing.T) {
		_, ts := storedServer(t, nil)
		if resp := postPut(t, ts.URL, valid); resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("status %d, want 503", resp.StatusCode)
		}
	})

	t.Run("unparseable spec", func(t *testing.T) {
		_, ts := storedServer(t, newMapStore())
		rec := valid
		rec.Spec = "task bogus"
		if resp := postPut(t, ts.URL, rec); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("missing fields", func(t *testing.T) {
		_, ts := storedServer(t, newMapStore())
		if resp := postPut(t, ts.URL, handoffRecord{}); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})
}

// TestHandoffShipsOnOwnerHeader is the sending half: a request
// arriving with X-Handoff-Owner triggers an asynchronous shipment of
// the computed record to the owner's /store/put.
func TestHandoffShipsOnOwnerHeader(t *testing.T) {
	answering, ats := storedServer(t, newMapStore())
	answering.Add(paperex.Nine())
	ownerStore := newMapStore()
	owner, ots := storedServer(t, ownerStore)

	req, err := http.NewRequest(http.MethodGet, ats.URL+"/schedule?problem=nine-task-example&format=json", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HandoffOwnerHeader, ots.URL)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if owner.Service().Stats().HandoffsReceived > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := owner.Service().Stats().HandoffsReceived; got != 1 {
		t.Fatalf("owner handoffs_received=%d, want 1", got)
	}
	if ownerStore.Len() != 1 {
		t.Errorf("owner store holds %d records, want 1", ownerStore.Len())
	}
	if got := answering.Service().Stats().HandoffsSent; got != 1 {
		t.Errorf("answering shard handoffs_sent=%d, want 1", got)
	}

	// A garbage owner address must be ignored, not shipped to.
	req.Header.Set(HandoffOwnerHeader, "not a url")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule with bogus owner header: status %d", resp.StatusCode)
	}
	if got := answering.Service().Stats().HandoffSendErrors; got != 0 {
		t.Errorf("handoff_send_errors=%d for an unroutable owner, want 0 (silently skipped)", got)
	}
}

// TestReadyzFlipsUnderDrain pins the readiness contract /readyz
// serves to the router's prober.
func TestReadyzFlipsUnderDrain(t *testing.T) {
	srv, ts := storedServer(t, nil)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/healthz", http.StatusOK},
		{"/readyz", http.StatusOK},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
	srv.SetReady(false)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Errorf("draining /readyz: status %d body %q, want 503 draining", resp.StatusCode, body)
	}
	// Liveness must not flip with readiness.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz: status %d, want 200", resp.StatusCode)
	}
	srv.SetReady(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("recovered /readyz: status %d, want 200", resp.StatusCode)
	}
}
