package web

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/verify"
)

// HandoffOwnerHeader names the request header a router sets when it
// forwards a request to a shard that is not the key's rendezvous
// owner (failover, hedge, or a DOWN owner skipped at rank time). Its
// value is the owner's base URL; the answering shard ships the owner
// the computed record asynchronously (hinted handoff), so the owner's
// store is warm when it comes back.
const HandoffOwnerHeader = "X-Handoff-Owner"

// maxHandoffBytes bounds a POST /store/put document: a gob-encoded
// result plus its spec, both well under this for in-bounds problems.
const maxHandoffBytes = 4 << 20

// maxHandoffShips bounds concurrent outbound handoff shipments; beyond
// it, shipments are dropped (counted as send errors) rather than
// queued — handoff is an optimization, and the owner recomputes on
// its next miss anyway.
const maxHandoffShips = 4

// handoffShipTimeout bounds one outbound shipment.
const handoffShipTimeout = 10 * time.Second

// handoffRecord is the POST /store/put wire document: the store key,
// the spec text of the problem the record answers (the receiver
// re-derives and re-verifies everything from it — a shipped record is
// never trusted), and the record bytes (base64 in JSON).
type handoffRecord struct {
	Key   string `json:"key"`
	Spec  string `json:"spec"`
	Value []byte `json:"value"`
}

// storePut ingests a hinted-handoff record shipped by a peer shard:
// the spec is re-parsed under the same bounds as an upload, the key
// must content-address that problem, and the decoded schedule must
// verify before anything lands in the store (service.IngestHandoff).
func (s *Server) storePut(w http.ResponseWriter, r *http.Request) {
	var rec handoffRecord
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHandoffBytes)).Decode(&rec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("handoff record exceeds %d bytes", tooBig.Limit))
			return
		}
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if rec.Key == "" || rec.Spec == "" || len(rec.Value) == 0 {
		writeJSONError(w, http.StatusBadRequest, "handoff record needs key, spec, and value")
		return
	}
	p, err := spec.ParseString(rec.Spec)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "spec: "+err.Error())
		return
	}
	if err := checkSpecBounds(p); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	check := func(p *model.Problem, res *sched.Result) error {
		if rep := verify.CheckAssigned(p, res.Schedule, res.Assignment); !rep.OK() {
			return fmt.Errorf("schedule does not verify: %v", rep.Err())
		}
		return nil
	}
	switch err := s.svc.IngestHandoff(p, rec.Key, rec.Value, check); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, service.ErrNoStore):
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, service.ErrHandoffRejected):
		writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
	default:
		writeJSONError(w, http.StatusInternalServerError, err.Error())
	}
}

// maybeShipHandoff starts an asynchronous hinted-handoff shipment when
// the request carried HandoffOwnerHeader: the just-computed (or
// cached) record is encoded and posted to the owner's /store/put, so
// the key's rendezvous owner warm-starts with the result it missed
// while down. Shipment is strictly best-effort — it never delays or
// fails the response that triggered it, and a dropped or failed ship
// only costs the owner one recompute. Single /schedule requests ship;
// batch items do not (the router retries batches at sub-batch
// granularity, so per-item owner attribution is not available there).
func (s *Server) maybeShipHandoff(r *http.Request, p *model.Problem, opts sched.Options, stage service.Stage, res *sched.Result) {
	owner := r.Header.Get(HandoffOwnerHeader)
	if owner == "" {
		return
	}
	u, err := url.Parse(owner)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return // not a routable owner address; nothing to ship to
	}
	data, err := service.EncodeResult(res)
	if err != nil {
		s.svc.NoteHandoffSent(err)
		return
	}
	rec := handoffRecord{
		Key:   service.StoreKey(p, opts, stage),
		Spec:  spec.Format(p),
		Value: data,
	}
	select {
	case s.handoffSem <- struct{}{}:
	default:
		s.svc.NoteHandoffSent(errors.New("handoff: shipment slots full"))
		return
	}
	go func() {
		defer func() { <-s.handoffSem }()
		s.svc.NoteHandoffSent(s.shipHandoff(u.String(), rec))
	}()
}

// shipHandoff posts one handoff record to the owner's /store/put.
func (s *Server) shipHandoff(ownerBase string, rec handoffRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), handoffShipTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ownerBase+"/store/put", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("handoff: owner answered status %d", resp.StatusCode)
	}
	return nil
}
