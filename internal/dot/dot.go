// Package dot renders constraint graphs in Graphviz DOT form, the
// conventional way to inspect instances like the paper's Fig. 1 and
// Fig. 8. Vertices carry the paper's r(v)/d(v)/p(v) annotation; min
// separations render as solid edges, max separations as dashed back
// edges; tasks sharing a resource share a color.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/schedule"
)

// palette cycles fill colors per resource.
var palette = []string{
	"#cfe2f3", "#d9ead3", "#fff2cc", "#f4cccc", "#d9d2e9", "#fce5cd", "#d0e0e3",
}

// Graph renders the problem's constraint graph as a DOT document.
func Graph(p *model.Problem) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", p.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, style=filled];\n")

	colors := resourceColors(p)
	for _, t := range p.Tasks {
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%s/%d/%.4g\", fillcolor=%q];\n",
			t.Name, t.Name, t.Resource, t.Delay, t.Power, colors[t.Resource])
	}
	writeConstraintEdges(&b, p)
	b.WriteString("}\n")
	return b.String()
}

// Scheduled renders the graph with each vertex annotated by its start
// time in the given schedule.
func Scheduled(p *model.Problem, s schedule.Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", p.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, style=filled];\n")
	colors := resourceColors(p)
	for i, t := range p.Tasks {
		fmt.Fprintf(&b, "  %q [label=\"%s @%d\\n%s/%d/%.4g\", fillcolor=%q];\n",
			t.Name, t.Name, s.Start[i], t.Resource, t.Delay, t.Power, colors[t.Resource])
	}
	writeConstraintEdges(&b, p)
	b.WriteString("}\n")
	return b.String()
}

func resourceColors(p *model.Problem) map[string]string {
	rs := p.Resources()
	sort.Strings(rs)
	out := make(map[string]string, len(rs))
	for i, r := range rs {
		out[r] = palette[i%len(palette)]
	}
	return out
}

func writeConstraintEdges(b *strings.Builder, p *model.Problem) {
	node := func(name string) string {
		if name == model.Anchor {
			return "anchor"
		}
		return name
	}
	anchorUsed := false
	for _, c := range p.Constraints {
		if c.From == model.Anchor || c.To == model.Anchor {
			anchorUsed = true
		}
	}
	if anchorUsed {
		b.WriteString("  anchor [shape=point, label=\"\"];\n")
	}
	for _, c := range p.Constraints {
		fmt.Fprintf(b, "  %q -> %q [label=\"%d\"];\n", node(c.From), node(c.To), c.Min)
		if c.HasMax {
			fmt.Fprintf(b, "  %q -> %q [label=\"-%d\", style=dashed, constraint=false];\n",
				node(c.To), node(c.From), c.Max)
		}
	}
}
