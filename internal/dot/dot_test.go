package dot

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/internal/rover"
	"repro/internal/sched"
)

func TestGraphNineTask(t *testing.T) {
	out := Graph(paperex.Nine())
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT document")
	}
	for _, task := range []string{"\"a\"", "\"i\""} {
		if !strings.Contains(out, task) {
			t.Errorf("missing vertex %s", task)
		}
	}
	// The a->d precedence with weight 3.
	if !strings.Contains(out, `"a" -> "d" [label="3"]`) {
		t.Error("missing min edge a->d")
	}
	// No anchor node without anchor constraints.
	if strings.Contains(out, "anchor") {
		t.Error("anchor rendered without anchor constraints")
	}
}

func TestGraphRoverWindows(t *testing.T) {
	out := Graph(rover.BuildIteration(rover.Best, rover.Cold))
	// Heating windows produce dashed back edges.
	if !strings.Contains(out, `"st1" -> "sh1" [label="-50", style=dashed`) {
		t.Errorf("missing dashed max edge:\n%s", out)
	}
	// Vertex annotation in r/d/p form.
	if !strings.Contains(out, `label="dr1\nwheels/10/7.5"`) {
		t.Error("missing r/d/p annotation for dr1")
	}
}

func TestGraphAnchorRendered(t *testing.T) {
	p := paperex.Nine()
	p.Release("a", 3)
	out := Graph(p)
	if !strings.Contains(out, "anchor [shape=point") {
		t.Error("anchor node missing")
	}
	if !strings.Contains(out, `"anchor" -> "a" [label="3"]`) {
		t.Error("anchor edge missing")
	}
}

func TestScheduledAnnotation(t *testing.T) {
	p := paperex.Nine()
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Scheduled(p, r.Schedule)
	idx := p.TaskIndex()
	want := `label="b @` + strconv.Itoa(r.Schedule.Start[idx["b"]]) + `\n`
	if !strings.Contains(out, want) {
		t.Errorf("missing start annotation %q", want)
	}
}

func TestResourceColorsStable(t *testing.T) {
	p := paperex.Nine()
	a, b := Graph(p), Graph(p)
	if a != b {
		t.Fatal("DOT output not deterministic")
	}
}
