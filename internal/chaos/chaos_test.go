// Package chaos is the in-process chaos harness for the self-healing
// serving tier: it boots real shards (web server + service + store) on
// restartable listeners behind a real router, injects failures — kill,
// restart, drain, slowness, dead addresses — and asserts the tier's
// contract holds through them: zero non-injected errors, responses
// byte-identical to a single-process oracle, warm-started shards
// serving from their recovered store, and hinted handoff refilling an
// owner that missed writes while unavailable. The process-level
// variant (kill -9 against real processes) lives in
// scripts/chaos_smoke.sh; this package covers the same failure modes
// where -race can watch.
package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchkit"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/web"
)

// shard is one restartable backend: a web server over a service with a
// persistent store, listening on a stable address so a restart comes
// back where the router expects it.
type shard struct {
	t    *testing.T
	addr string // stable host:port, reused across restarts
	path string // store log path, reused across restarts
	ts   *httptest.Server
	srv  *web.Server
	st   *store.Store
	// delay, when nonzero, stalls every /schedule response (an
	// injected slow shard for hedging tests).
	delay atomic.Int64
}

// startShard boots a shard. addr "" picks a fresh port; passing a
// previous shard's addr restarts "the same" shard (same identity, same
// store) after a kill.
func startShard(t *testing.T, addr, path string) *shard {
	t.Helper()
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Store: st})
	srv := web.NewServerWith(sched.Options{}, svc)
	srv.SetSpecStore(st)
	if _, err := srv.LoadPersistedProblems(); err != nil {
		t.Logf("spec load: %v", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("POST /verify", srv.VerifyHandlerFunc)

	s := &shard{t: t, addr: addr, path: path, srv: srv, st: st}
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := s.delay.Load(); d > 0 && strings.HasPrefix(r.URL.Path, "/schedule") {
			time.Sleep(time.Duration(d))
		}
		mux.ServeHTTP(w, r)
	})
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	ts := httptest.NewUnstartedServer(handler)
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	s.ts = ts
	s.addr = ln.Addr().String()
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return s
}

func (s *shard) url() string { return "http://" + s.addr }

// kill stops the shard the hard way: connections are severed and the
// store is abandoned without Sync or Close, like a SIGKILL. Appended
// records are already in the page cache (each Put is a write(2)), so a
// restart on the same path warm-starts from them — the property the
// recovery tests pin down.
func (s *shard) kill() {
	s.ts.CloseClientConnections()
	s.ts.Close()
}

// restart boots a replacement shard on the same address and store.
func (s *shard) restart() *shard {
	return startShard(s.t, s.addr, s.path)
}

// chaosConfig is the aggressive router tuning every test uses: a fast
// prober so the tests converge in milliseconds, and enough retries to
// cover one dead shard.
func chaosConfig() router.Config {
	return router.Config{
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		FailThreshold:    2,
		RiseThreshold:    1,
		BreakerThreshold: 2,
		BreakerCooldown:  250 * time.Millisecond,
		Retries:          2,
		RetryBackoff:     2 * time.Millisecond,
	}
}

func newRouter(t *testing.T, cfg router.Config, backends ...string) (*router.Router, *httptest.Server) {
	t.Helper()
	rt, err := router.New(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// backendState reads the router's health verdict for one backend URL.
func backendState(rt *router.Router, url string) string {
	for _, h := range rt.Health() {
		if h.Backend == url {
			return h.State
		}
	}
	return "unknown"
}

// pool generates n deterministic problems, skipping the occasional
// seed whose random power draw violates its own Pmax (uploads would
// reject it). n is chosen so every shard of a 2-shard tier owns at
// least one name with near-certainty (P[all on one shard] = 2^-(n-1)).
func pool(n int) []*model.Problem {
	ps := make([]*model.Problem, 0, n)
	for seed := int64(100); len(ps) < n; seed++ {
		p := benchkit.Generate(8, seed)
		p.Name = fmt.Sprintf("chaos-%02d", len(ps))
		if _, err := spec.ParseString(spec.Format(p)); err != nil {
			continue
		}
		ps = append(ps, p)
	}
	return ps
}

// register uploads every problem through the router (exercising
// registration replication) and onto the oracle directly.
func register(t *testing.T, routerURL string, oracle *web.Server, ps []*model.Problem) {
	t.Helper()
	for _, p := range ps {
		resp, err := http.Post(routerURL+"/problems", "text/plain", strings.NewReader(spec.Format(p)))
		if err != nil {
			t.Fatalf("register %s: %v", p.Name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %s: status %d", p.Name, resp.StatusCode)
		}
		if oracle != nil {
			oracle.Add(p)
		}
	}
}

// get fetches one schedule and returns "status\nbody".
func get(t *testing.T, base, name string) string {
	t.Helper()
	resp, err := http.Get(base + "/schedule?problem=" + name + "&format=json")
	if err != nil {
		t.Fatalf("get %s: %v", name, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("get %s: %v", name, err)
	}
	return fmt.Sprintf("%d\n%s", resp.StatusCode, body)
}

// TestKillRestartRecovery is the core chaos scenario: kill a shard
// under traffic, assert the tier keeps answering every request
// byte-identically to a single-process oracle with zero errors, then
// restart the shard and assert it rejoins warm — re-registered from
// its persisted specs and serving L2 hits from the store it was killed
// over.
func TestKillRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	a := startShard(t, "", filepath.Join(dir, "a.log"))
	b := startShard(t, "", filepath.Join(dir, "b.log"))
	rt, rts := newRouter(t, chaosConfig(), a.url(), b.url())

	oracle := web.NewServer(sched.Options{})
	ots := httptest.NewServer(oracle.Handler())
	t.Cleanup(ots.Close)

	ps := pool(12)
	register(t, rts.URL, oracle, ps)

	// Phase 1: healthy tier. Every response must match the oracle.
	want := make(map[string]string, len(ps))
	for _, p := range ps {
		want[p.Name] = get(t, ots.URL, p.Name)
		if got := get(t, rts.URL, p.Name); got != want[p.Name] {
			t.Fatalf("healthy tier: %s differs from oracle\noracle:\n%s\ntier:\n%s", p.Name, want[p.Name], got)
		}
	}
	bOwned := b.srv.Service().Stats().Misses
	if bOwned == 0 {
		t.Fatalf("12 problems and shard b computed none of them; rendezvous split is broken")
	}

	// Phase 2: kill shard b and sweep immediately — before the prober
	// can react, so b's keys fail over through the retry path — then
	// sweep again after eviction, when rank-order skipping handles them
	// without ever touching the dead address. Both sweeps must stay
	// byte-identical to the oracle (a holds the replicated
	// registrations).
	b.kill()
	for _, p := range ps {
		if got := get(t, rts.URL, p.Name); got != want[p.Name] {
			t.Errorf("kill window: %s differs from oracle\noracle:\n%s\ntier:\n%s", p.Name, want[p.Name], got)
		}
	}
	if rt.Retries() == 0 {
		t.Error("no retries recorded while the dead shard was still in the live set; failover never engaged")
	}
	waitFor(t, "shard b marked down", 5*time.Second, func() bool {
		return backendState(rt, b.url()) == "down"
	})
	for _, p := range ps {
		if got := get(t, rts.URL, p.Name); got != want[p.Name] {
			t.Errorf("one shard down: %s differs from oracle\noracle:\n%s\ntier:\n%s", p.Name, want[p.Name], got)
		}
	}

	// Phase 3: restart shard b on the same address and store. It must
	// rejoin the live set, re-register its problems from the spec
	// store, and serve its keys as L2 hits from the log it was killed
	// over (appends were write(2)s — no fsync needed to survive a
	// process kill).
	b = b.restart()
	waitFor(t, "shard b marked up again", 5*time.Second, func() bool {
		return backendState(rt, b.url()) == "up"
	})
	for _, p := range ps {
		if got := get(t, rts.URL, p.Name); got != want[p.Name] {
			t.Errorf("after recovery: %s differs from oracle\noracle:\n%s\ntier:\n%s", p.Name, want[p.Name], got)
		}
	}
	if st := b.srv.Service().Stats(); st.HitsL2 == 0 {
		t.Errorf("revived shard b served no L2 hits (stats: %+v); warm start from the killed store failed", st)
	}
}

// TestDrainHandoff drains one shard (readiness flip, process alive)
// and asserts hinted handoff: the runner-up answers the drained
// owner's keys and ships it the records, so the owner's store is
// warmer when it returns than when it left.
func TestDrainHandoff(t *testing.T) {
	dir := t.TempDir()
	a := startShard(t, "", filepath.Join(dir, "a.log"))
	b := startShard(t, "", filepath.Join(dir, "b.log"))
	rt, rts := newRouter(t, chaosConfig(), a.url(), b.url())

	ps := pool(12)
	register(t, rts.URL, nil, ps)

	// Drain shard a: /readyz flips to 503, the prober evicts it, but
	// the process keeps serving — exactly the cmd/serve shutdown window.
	a.srv.SetReady(false)
	waitFor(t, "drained shard a marked down", 5*time.Second, func() bool {
		return backendState(rt, a.url()) == "down"
	})

	before := a.srv.Service().Stats()
	for _, p := range ps {
		got := get(t, rts.URL, p.Name)
		if !strings.HasPrefix(got, "200\n") {
			t.Fatalf("%s through drained tier: %s", p.Name, got[:3])
		}
	}
	// Shard b answered a's keys with X-Handoff-Owner set and ships the
	// records asynchronously; the drained-but-alive owner ingests them.
	waitFor(t, "handoff records received by drained owner", 5*time.Second, func() bool {
		return a.srv.Service().Stats().HandoffsReceived > before.HandoffsReceived
	})
	if got := b.srv.Service().Stats().HandoffsSent; got == 0 {
		t.Errorf("handoffs_sent=0 on the answering shard, want > 0")
	}
	if got := a.srv.Service().Stats().HandoffsRejected; got > 0 {
		t.Errorf("handoffs_rejected=%d on the owner; verified self-computed records must ingest cleanly", got)
	}

	// The handed-off records are real store entries: once a is ready
	// again, its own keys come back as L2 hits without recomputing.
	a.srv.SetReady(true)
	waitFor(t, "shard a marked up again", 5*time.Second, func() bool {
		return backendState(rt, a.url()) == "up"
	})
	preL2 := a.srv.Service().Stats().HitsL2
	for _, p := range ps {
		get(t, rts.URL, p.Name)
	}
	if got := a.srv.Service().Stats().HitsL2; got <= preL2 {
		t.Errorf("hits_l2 did not grow (%d -> %d) after handoff refill", preL2, got)
	}
}

// TestHedgingCoversSlowShard injects tail latency into one shard and
// asserts the router's hedge fires the rank-next replica and still
// returns correct bytes — the stall is bounded by HedgeAfter plus the
// fast replica's latency, not the slow shard's.
func TestHedgingCoversSlowShard(t *testing.T) {
	dir := t.TempDir()
	a := startShard(t, "", filepath.Join(dir, "a.log"))
	b := startShard(t, "", filepath.Join(dir, "b.log"))
	cfg := chaosConfig()
	cfg.HedgeAfter = 25 * time.Millisecond
	rt, rts := newRouter(t, cfg, a.url(), b.url())

	oracle := web.NewServer(sched.Options{})
	ots := httptest.NewServer(oracle.Handler())
	t.Cleanup(ots.Close)

	ps := pool(12)
	register(t, rts.URL, oracle, ps)
	for _, p := range ps {
		get(t, rts.URL, p.Name) // warm both shards' caches
	}

	// Shard a develops a 2s stall on /schedule (its /readyz stays
	// fast, so the prober keeps it UP — the regime hedging exists for).
	a.delay.Store(int64(2 * time.Second))
	start := time.Now()
	for _, p := range ps {
		want := get(t, ots.URL, p.Name)
		if got := get(t, rts.URL, p.Name); got != want {
			t.Errorf("hedged %s differs from oracle", p.Name)
		}
	}
	elapsed := time.Since(start)
	if rt.Hedges() == 0 {
		t.Error("hedges=0; the slow shard's keys were never hedged")
	}
	// 12 sequential requests against a 2s-stalled owner would take 8s+
	// even if only a third of the keys land on it; hedged, the whole
	// sweep finishes in fractions of that.
	if elapsed > 6*time.Second {
		t.Errorf("sweep took %v despite hedging (hedge-after %v)", elapsed, cfg.HedgeAfter)
	}
}

// TestBreakerOpensWithoutProber covers the passive path: no prober, a
// dead backend, and the per-backend circuit breaker as the only
// protection. Forwards must keep succeeding via retries, the breaker
// must open after the threshold, and a revived backend must close it
// again through the half-open trial.
func TestBreakerOpensWithoutProber(t *testing.T) {
	dir := t.TempDir()
	a := startShard(t, "", filepath.Join(dir, "a.log"))
	b := startShard(t, "", filepath.Join(dir, "b.log"))
	cfg := router.Config{
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		Retries:          2,
		RetryBackoff:     time.Millisecond,
	}
	rt, rts := newRouter(t, cfg, a.url(), b.url())

	ps := pool(12)
	register(t, rts.URL, nil, ps)

	b.kill()
	for _, p := range ps {
		if got := get(t, rts.URL, p.Name); !strings.HasPrefix(got, "200\n") {
			t.Fatalf("%s with shard b dead: %s", p.Name, got[:3])
		}
	}
	open := false
	for _, h := range rt.Health() {
		if h.Backend == b.url() && h.BreakerOpen {
			open = true
		}
	}
	if !open {
		t.Error("breaker never opened on the dead backend")
	}

	b = b.restart()
	waitFor(t, "breaker closed after revival", 5*time.Second, func() bool {
		for _, p := range ps {
			get(t, rts.URL, p.Name) // traffic drives the half-open trial
		}
		for _, h := range rt.Health() {
			if h.Backend == b.url() {
				return !h.BreakerOpen
			}
		}
		return false
	})
}
