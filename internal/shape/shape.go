// Package shape extends task power models from a single exact value to
// a function over the task's execution, the second generalization the
// paper names in section 4.1 ("the power consumption can be either in
// the form of (min, typical, max), or a function over time"). A Shape
// is a piecewise-constant power curve relative to the task's start —
// for example a motor's inrush surge followed by its steady draw.
//
// Scheduling proceeds conservatively: each shaped task is lowered to
// its peak power, so a schedule that respects Pmax under the lowered
// problem respects it under the true shapes pointwise. Metrics are then
// evaluated against the true shaped profile, which is never worse.
package shape

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/schedule"
)

// Phase is one piece of a power shape: Power watts for Dur seconds.
type Phase struct {
	Dur   model.Time
	Power float64
}

// Shape is a piecewise-constant power curve over a task's execution.
// The phase durations must sum to the task's delay.
type Shape []Phase

// Duration returns the shape's total extent.
func (s Shape) Duration() model.Time {
	var d model.Time
	for _, ph := range s {
		d += ph.Dur
	}
	return d
}

// Peak returns the shape's maximum power.
func (s Shape) Peak() float64 {
	var m float64
	for _, ph := range s {
		if ph.Power > m {
			m = ph.Power
		}
	}
	return m
}

// Energy returns the shape's total energy.
func (s Shape) Energy() float64 {
	var e float64
	for _, ph := range s {
		e += ph.Power * float64(ph.Dur)
	}
	return e
}

// At returns the power at the given offset from the task's start
// (0 outside [0, Duration)).
func (s Shape) At(offset model.Time) float64 {
	if offset < 0 {
		return 0
	}
	for _, ph := range s {
		if offset < ph.Dur {
			return ph.Power
		}
		offset -= ph.Dur
	}
	return 0
}

// Constant builds a flat shape.
func Constant(d model.Time, p float64) Shape { return Shape{{Dur: d, Power: p}} }

// Inrush builds the classic motor shape: a surge of inrushPower for
// inrushDur seconds, then steady for the remainder of d.
func Inrush(d, inrushDur model.Time, inrushPower, steady float64) Shape {
	if inrushDur >= d {
		return Constant(d, inrushPower)
	}
	return Shape{{Dur: inrushDur, Power: inrushPower}, {Dur: d - inrushDur, Power: steady}}
}

// Problem pairs a base problem with per-task shapes. Tasks without a
// shape keep their constant Power.
type Problem struct {
	Base   *model.Problem
	Shapes map[string]Shape
}

// Validate checks that every shape matches its task's delay and has
// non-negative phases.
func (sp *Problem) Validate() error {
	if err := sp.Base.Validate(); err != nil {
		return err
	}
	for name, sh := range sp.Shapes {
		task, ok := sp.Base.TaskByName(name)
		if !ok {
			return fmt.Errorf("shape: shape for unknown task %q", name)
		}
		if sh.Duration() != task.Delay {
			return fmt.Errorf("shape: task %q shape lasts %d, delay is %d",
				name, sh.Duration(), task.Delay)
		}
		if len(sh) == 0 {
			return fmt.Errorf("shape: task %q has an empty shape", name)
		}
		for _, ph := range sh {
			if ph.Dur <= 0 || ph.Power < 0 {
				return fmt.Errorf("shape: task %q has invalid phase %+v", name, ph)
			}
		}
	}
	return nil
}

// Lower returns the conservative constant-power problem: every shaped
// task's power is replaced by its shape's peak.
func (sp *Problem) Lower() *model.Problem {
	q := sp.Base.Clone()
	for i := range q.Tasks {
		if sh, ok := sp.Shapes[q.Tasks[i].Name]; ok {
			q.Tasks[i].Power = sh.Peak()
		}
	}
	return q
}

// Profile computes the true shaped power profile of a schedule: each
// shaped task contributes its curve, others their constant power, plus
// the base load.
func (sp *Problem) Profile(s schedule.Schedule) power.Profile {
	tau := s.Finish(sp.Base.Tasks)
	if tau == 0 {
		return power.Profile{}
	}
	// Build per-second and re-segment; shapes make event-sweeping
	// fiddly and tau is small in this domain.
	var segs []power.Segment
	for t := model.Time(0); t < tau; t++ {
		pw := sp.Base.BasePower
		for i, task := range sp.Base.Tasks {
			if s.Start[i] <= t && t < s.Start[i]+task.Delay {
				if sh, ok := sp.Shapes[task.Name]; ok {
					pw += sh.At(t - s.Start[i])
				} else {
					pw += task.Power
				}
			}
		}
		if n := len(segs); n > 0 && segs[n-1].P == pw {
			segs[n-1].T1 = t + 1
		} else {
			segs = append(segs, power.Segment{T0: t, T1: t + 1, P: pw})
		}
	}
	return power.Profile{Segs: segs}
}

// Result is a shaped scheduling outcome.
type Result struct {
	// Result is the pipeline's outcome on the lowered (peak-power)
	// problem.
	Sched *sched.Result
	// Profile is the true shaped profile of the returned schedule.
	Profile power.Profile
}

// EnergyCost returns the true cost at the base problem's Pmin.
func (r *Result) EnergyCost() float64 { return r.Profile.EnergyCost(r.Sched.Compiled.Prob.Pmin) }

// Utilization returns the true utilization at the base problem's Pmin.
func (r *Result) Utilization() float64 { return r.Profile.Utilization(r.Sched.Compiled.Prob.Pmin) }

// Run schedules the lowered problem with the full pipeline and
// evaluates the schedule under the true shapes.
func Run(sp *Problem, opts sched.Options) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	r, err := sched.Run(sp.Lower(), opts)
	if err != nil {
		return nil, err
	}
	return &Result{Sched: r, Profile: sp.Profile(r.Schedule)}, nil
}
