package shape

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/rover"
	"repro/internal/sched"
)

func TestShapeBasics(t *testing.T) {
	s := Shape{{Dur: 2, Power: 10}, {Dur: 3, Power: 4}}
	if s.Duration() != 5 {
		t.Errorf("Duration = %d", s.Duration())
	}
	if s.Peak() != 10 {
		t.Errorf("Peak = %g", s.Peak())
	}
	if s.Energy() != 32 {
		t.Errorf("Energy = %g", s.Energy())
	}
	at := map[model.Time]float64{-1: 0, 0: 10, 1: 10, 2: 4, 4: 4, 5: 0, 9: 0}
	for off, want := range at {
		if got := s.At(off); got != want {
			t.Errorf("At(%d) = %g, want %g", off, got, want)
		}
	}
}

func TestConstantAndInrush(t *testing.T) {
	c := Constant(4, 3)
	if c.Duration() != 4 || c.Peak() != 3 || c.Energy() != 12 {
		t.Fatalf("Constant wrong: %+v", c)
	}
	in := Inrush(10, 2, 18, 13.8)
	if in.Duration() != 10 || in.Peak() != 18 || in.At(1) != 18 || in.At(2) != 13.8 {
		t.Fatalf("Inrush wrong: %+v", in)
	}
	// Degenerate: inrush as long as the task.
	full := Inrush(3, 5, 9, 1)
	if full.Duration() != 3 || full.At(2) != 9 {
		t.Fatalf("degenerate inrush wrong: %+v", full)
	}
}

func shapedProblem() *Problem {
	p := &model.Problem{
		Name: "shaped",
		Tasks: []model.Task{
			{Name: "motor", Resource: "M", Delay: 6, Power: 5}, // shaped below
			{Name: "cpu", Resource: "C", Delay: 6, Power: 2},
		},
		Pmax:      14,
		Pmin:      4,
		BasePower: 1,
	}
	return &Problem{
		Base:   p,
		Shapes: map[string]Shape{"motor": {{Dur: 2, Power: 9}, {Dur: 4, Power: 3}}},
	}
}

func TestValidateShapes(t *testing.T) {
	sp := shapedProblem()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := shapedProblem()
	bad.Shapes["motor"] = Shape{{Dur: 3, Power: 9}} // wrong duration
	if err := bad.Validate(); err == nil {
		t.Error("duration mismatch accepted")
	}
	bad2 := shapedProblem()
	bad2.Shapes["ghost"] = Constant(2, 1)
	if err := bad2.Validate(); err == nil {
		t.Error("unknown task shape accepted")
	}
	bad3 := shapedProblem()
	bad3.Shapes["motor"] = Shape{{Dur: 6, Power: -1}}
	if err := bad3.Validate(); err == nil {
		t.Error("negative phase accepted")
	}
	bad4 := shapedProblem()
	bad4.Shapes["motor"] = Shape{}
	if err := bad4.Validate(); err == nil {
		t.Error("empty shape accepted")
	}
}

func TestLowerUsesPeaks(t *testing.T) {
	sp := shapedProblem()
	low := sp.Lower()
	m, _ := low.TaskByName("motor")
	if m.Power != 9 {
		t.Errorf("lowered motor power = %g, want peak 9", m.Power)
	}
	c, _ := low.TaskByName("cpu")
	if c.Power != 2 {
		t.Errorf("unshaped task power changed: %g", c.Power)
	}
	if sp.Base.Tasks[0].Power != 5 {
		t.Error("Lower mutated the base problem")
	}
}

func TestShapedProfile(t *testing.T) {
	sp := shapedProblem()
	r, err := Run(sp, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Sched.Schedule
	idx := sp.Base.TaskIndex()
	mStart := s.Start[idx["motor"]]
	// During the inrush the true profile includes 9 W, afterwards 3 W.
	if got := r.Profile.At(mStart); got < 9 {
		t.Errorf("profile at inrush = %g, want >= 9", got)
	}
	if got := r.Profile.At(mStart + 3); got >= 9 {
		t.Errorf("profile after inrush = %g, want < 9", got)
	}
	// Energy identity: profile energy = shape energies + constants.
	want := sp.Shapes["motor"].Energy() + 2*6 + float64(r.Sched.Finish())*1
	if math.Abs(r.Profile.Energy()-want) > 1e-9 {
		t.Errorf("energy = %g, want %g", r.Profile.Energy(), want)
	}
}

// TestConservativeSoundness: the true shaped profile never exceeds the
// lowered profile, so a valid lowered schedule is valid under shapes.
func TestConservativeSoundness(t *testing.T) {
	f := func(seed int64) bool {
		base := analysis.Generate(analysis.GenConfig{Tasks: 8, Seed: seed})
		sp := &Problem{Base: base, Shapes: map[string]Shape{}}
		// Shape every second task as inrush at 120% of its power.
		for i, task := range base.Tasks {
			if i%2 == 0 && task.Delay >= 2 {
				sp.Shapes[task.Name] = Inrush(task.Delay, 1, task.Power*1.2, task.Power*0.8)
			}
		}
		// Loosen Pmax for the raised peaks.
		sp.Base.Pmax *= 1.3
		r, err := Run(sp, sched.Options{})
		if err != nil {
			return false
		}
		lowered := r.Sched.Profile
		for _, seg := range r.Profile.Segs {
			for t := seg.T0; t < seg.T1; t++ {
				if seg.P > lowered.At(t)+1e-9 {
					return false
				}
			}
		}
		return r.Profile.Valid(sp.Base.Pmax)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRoverInrushScenario: give the rover's driving tasks a 2 s inrush
// at ~130% of steady draw. The conservative pipeline still produces a
// valid schedule, and the true cost is at most the lowered cost.
func TestRoverInrushScenario(t *testing.T) {
	base := rover.BuildIteration(rover.Typical, rover.Cold)
	par := rover.Table2(rover.Typical)
	sp := &Problem{
		Base: base,
		Shapes: map[string]Shape{
			"dr1": Inrush(rover.DriveDelay, 2, par.Drive*1.3, par.Drive*0.9),
			"dr2": Inrush(rover.DriveDelay, 2, par.Drive*1.3, par.Drive*0.9),
		},
	}
	r, err := Run(sp, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Profile.Valid(base.Pmax) {
		t.Fatalf("true profile spikes: %v", r.Profile.Spikes(base.Pmax))
	}
	if r.EnergyCost() > r.Sched.EnergyCost()+1e-9 {
		t.Errorf("true cost %.1f exceeds lowered cost %.1f", r.EnergyCost(), r.Sched.EnergyCost())
	}
	if r.Utilization() < 0 || r.Utilization() > 1 {
		t.Errorf("utilization out of range: %g", r.Utilization())
	}
}
