package power

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/schedule"
)

func TestRateBatteryIdealAtExponentOne(t *testing.T) {
	b := &RateBattery{Capacity: 100, MaxPower: 20, RefPower: 5, Exponent: 1}
	if err := b.DrawAt(10, 4); err != nil {
		t.Fatal(err)
	}
	if b.Depleted() != 40 || b.Delivered() != 40 || b.Wasted() != 0 {
		t.Fatalf("ideal battery lost energy: depleted=%g delivered=%g", b.Depleted(), b.Delivered())
	}
}

func TestRateBatteryPeukertLoss(t *testing.T) {
	b := &RateBattery{Capacity: 1000, MaxPower: 50, RefPower: 5, Exponent: 1.2}
	// Below the reference rate: no loss.
	if err := b.DrawAt(5, 2); err != nil {
		t.Fatal(err)
	}
	if b.Wasted() != 0 {
		t.Fatalf("loss below reference rate: %g", b.Wasted())
	}
	// At 4x the reference rate: rate factor 4^0.2 ~ 1.32.
	if err := b.DrawAt(20, 1); err != nil {
		t.Fatal(err)
	}
	wantFactor := math.Pow(4, 0.2)
	wantDepleted := 10 + 20*wantFactor
	if math.Abs(b.Depleted()-wantDepleted) > 1e-9 {
		t.Fatalf("depleted = %g, want %g", b.Depleted(), wantDepleted)
	}
	if b.Wasted() <= 0 {
		t.Fatal("no rate loss at high draw")
	}
}

func TestRateBatteryLimits(t *testing.T) {
	b := &RateBattery{Capacity: 10, MaxPower: 8, RefPower: 8, Exponent: 1.1}
	if err := b.DrawAt(9, 1); err == nil {
		t.Fatal("over-max draw accepted")
	}
	if err := b.DrawAt(-1, 1); err == nil {
		t.Fatal("negative draw accepted")
	}
	if err := b.DrawAt(8, 2); err == nil {
		t.Fatal("over-capacity draw accepted")
	}
	if b.Depleted() != 0 {
		t.Fatal("failed draws mutated the store")
	}
	if err := b.DrawAt(5, 2); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining = %g, want 0", b.Remaining())
	}
	unbounded := &RateBattery{MaxPower: 8, RefPower: 8, Exponent: 1.1}
	if unbounded.Remaining() >= 0 {
		t.Fatal("untracked capacity not signalled")
	}
}

// TestJitterCostsCapacity: two profiles with identical delivered
// energy — one flat, one bursty — deplete a Peukert battery
// differently: the bursty one wastes capacity. This is the paper's
// stated motivation for min-power jitter control, made quantitative.
func TestJitterCostsCapacity(t *testing.T) {
	free := 5.0
	tasks := []model.Task{
		{Name: "x", Resource: "A", Delay: 4, Power: 4},
		{Name: "y", Resource: "B", Delay: 4, Power: 4},
	}
	flat := Build(tasks, schedule.Schedule{Start: []model.Time{0, 4}}, free)  // 9 W for 8 s
	burst := Build(tasks, schedule.Schedule{Start: []model.Time{0, 0}}, free) // 13 W for 4 s

	flatBat := &RateBattery{Capacity: 1000, MaxPower: 20, RefPower: 4, Exponent: 1.3}
	burstBat := &RateBattery{Capacity: 1000, MaxPower: 20, RefPower: 4, Exponent: 1.3}
	fd, err := flatBat.DepleteProfile(flat, free)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := burstBat.DepleteProfile(burst, free)
	if err != nil {
		t.Fatal(err)
	}
	// Same delivered energy above the free level (32 J each).
	if math.Abs(flatBat.Delivered()-burstBat.Delivered()) > 1e-9 {
		t.Fatalf("delivered differ: %g vs %g", flatBat.Delivered(), burstBat.Delivered())
	}
	if bd <= fd {
		t.Fatalf("bursty depletion %g not worse than flat %g", bd, fd)
	}
}

func TestDepleteProfileFailsAtInstant(t *testing.T) {
	tasks := []model.Task{{Name: "x", Resource: "A", Delay: 4, Power: 12}}
	prof := Build(tasks, schedule.Schedule{Start: []model.Time{0}}, 0)
	b := &RateBattery{Capacity: 10, MaxPower: 20, RefPower: 10, Exponent: 1.1}
	if _, err := b.DepleteProfile(prof, 2); err == nil {
		t.Fatal("exhaustion not detected")
	}
}
