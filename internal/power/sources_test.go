package power

import (
	"testing"
)

func TestSolarConstant(t *testing.T) {
	s := NewSolar(12)
	for _, tt := range []int{0, 100, 99999} {
		if got := s.At(tt); got != 12 {
			t.Errorf("At(%d) = %g, want 12", tt, got)
		}
	}
}

func TestSolarPhases(t *testing.T) {
	s := NewSolar(14.9)
	s.AddPhase(600, 12)
	s.AddPhase(1200, 9)
	cases := map[int]float64{0: 14.9, 599: 14.9, 600: 12, 1199: 12, 1200: 9, 5000: 9}
	for tt, want := range cases {
		if got := s.At(tt); got != want {
			t.Errorf("At(%d) = %g, want %g", tt, got, want)
		}
	}
}

func TestSolarPhasesOutOfOrder(t *testing.T) {
	s := &Solar{}
	s.AddPhase(1200, 9)
	s.AddPhase(0, 14.9)
	s.AddPhase(600, 12)
	if got := s.At(700); got != 12 {
		t.Errorf("At(700) = %g, want 12", got)
	}
	// Before any phase: no output.
	s2 := &Solar{}
	s2.AddPhase(10, 5)
	if got := s2.At(3); got != 0 {
		t.Errorf("At(3) = %g, want 0 before first phase", got)
	}
}

func TestBatteryDraw(t *testing.T) {
	b := &Battery{Capacity: 100, MaxPower: 10}
	if err := b.Draw(60); err != nil {
		t.Fatal(err)
	}
	if b.Drawn() != 60 || b.Remaining() != 40 {
		t.Fatalf("drawn=%g remaining=%g", b.Drawn(), b.Remaining())
	}
	if err := b.Draw(50); err == nil {
		t.Fatal("overdraw accepted")
	}
	if b.Drawn() != 60 {
		t.Fatalf("failed draw was applied: drawn=%g", b.Drawn())
	}
	if err := b.Draw(-1); err == nil {
		t.Fatal("negative draw accepted")
	}
}

func TestBatteryUntrackedCapacity(t *testing.T) {
	b := &Battery{MaxPower: 10}
	if err := b.Draw(1e9); err != nil {
		t.Fatalf("untracked battery refused draw: %v", err)
	}
	if b.Remaining() >= 0 {
		t.Fatalf("untracked Remaining = %g, want negative sentinel", b.Remaining())
	}
}

func TestSupplyLevels(t *testing.T) {
	sol := NewSolar(14.9)
	sol.AddPhase(600, 9)
	sup := Supply{Solar: sol, Battery: &Battery{MaxPower: 10}}
	if got := sup.PmaxAt(0); got != 24.9 {
		t.Errorf("PmaxAt(0) = %g, want 24.9", got)
	}
	if got := sup.PminAt(0); got != 14.9 {
		t.Errorf("PminAt(0) = %g, want 14.9", got)
	}
	if got := sup.PmaxAt(700); got != 19 {
		t.Errorf("PmaxAt(700) = %g, want 19", got)
	}
	noBat := Supply{Solar: sol}
	if got := noBat.PmaxAt(0); got != 14.9 {
		t.Errorf("PmaxAt without battery = %g, want 14.9", got)
	}
}
