// Package power implements the power properties of a schedule from
// section 4.2 of the paper: the piecewise-constant power profile
// P_sigma(t), max-power spikes, min-power gaps, the energy cost
// Ec_sigma(Pmin) drawn from non-renewable sources, and the min-power
// utilization rho_sigma(Pmin). It also models the power sources of the
// motivating example: a time-varying free source (solar panel) and a
// non-rechargeable battery with a maximum output power.
package power

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
	"repro/internal/schedule"
)

// Segment is one piece of a piecewise-constant power profile:
// consumption P over [T0, T1).
type Segment struct {
	T0, T1 model.Time
	P      float64
}

// Interval is a half-open time interval [T0, T1).
type Interval struct {
	T0, T1 model.Time
}

// Profile is the power profile P_sigma(t) of a schedule over [0, tau):
// contiguous, non-empty segments covering the whole schedule. The zero
// value is an empty profile of length 0.
type Profile struct {
	Segs []Segment
}

// Build computes the power profile of schedule s for the given tasks
// plus a constant base load. Segments cover [0, Finish) contiguously;
// adjacent segments with equal power are merged.
func Build(tasks []model.Task, s schedule.Schedule, base float64) Profile {
	tau := s.Finish(tasks)
	if tau == 0 {
		return Profile{}
	}
	// Sweep over start/end events accumulating power deltas.
	deltas := make(map[model.Time]float64)
	deltas[0] += base
	deltas[tau] -= base
	for i, t := range tasks {
		deltas[s.Start[i]] += t.Power
		deltas[s.Start[i]+t.Delay] -= t.Power
	}
	times := make([]model.Time, 0, len(deltas))
	for t := range deltas {
		times = append(times, t)
	}
	sort.Ints(times)

	var segs []Segment
	var cur float64
	for k := 0; k+1 < len(times); k++ {
		cur += deltas[times[k]]
		t0, t1 := times[k], times[k+1]
		if t1 > tau {
			t1 = tau
		}
		if t0 >= tau || t1 <= t0 {
			continue
		}
		if n := len(segs); n > 0 && segs[n-1].P == cur && segs[n-1].T1 == t0 {
			segs[n-1].T1 = t1
		} else {
			segs = append(segs, Segment{T0: t0, T1: t1, P: cur})
		}
	}
	return Profile{Segs: segs}
}

// Duration returns the profile's extent tau.
func (p Profile) Duration() model.Time {
	if len(p.Segs) == 0 {
		return 0
	}
	return p.Segs[len(p.Segs)-1].T1
}

// At returns P(t). Queries outside [0, tau) return 0.
func (p Profile) At(t model.Time) float64 {
	// Binary search for the segment containing t.
	i := sort.Search(len(p.Segs), func(i int) bool { return p.Segs[i].T1 > t })
	if i < len(p.Segs) && p.Segs[i].T0 <= t {
		return p.Segs[i].P
	}
	return 0
}

// Peak returns max over t of P(t) (0 for an empty profile).
func (p Profile) Peak() float64 {
	var m float64
	for _, s := range p.Segs {
		if s.P > m {
			m = s.P
		}
	}
	return m
}

// Floor returns min over [0,tau) of P(t) (0 for an empty profile).
func (p Profile) Floor() float64 {
	if len(p.Segs) == 0 {
		return 0
	}
	m := p.Segs[0].P
	for _, s := range p.Segs[1:] {
		if s.P < m {
			m = s.P
		}
	}
	return m
}

// Energy returns the total energy of the profile, integral of P dt.
func (p Profile) Energy() float64 {
	var e float64
	for _, s := range p.Segs {
		e += s.P * float64(s.T1-s.T0)
	}
	return e
}

// Spikes returns the maximal intervals where P(t) > pmax: the power
// spikes that make a schedule power-invalid.
func (p Profile) Spikes(pmax float64) []Interval {
	return p.exceeding(func(v float64) bool { return v > pmax })
}

// Gaps returns the maximal intervals where P(t) < pmin: the power gaps
// the min-power scheduler tries to fill.
func (p Profile) Gaps(pmin float64) []Interval {
	return p.exceeding(func(v float64) bool { return v < pmin })
}

func (p Profile) exceeding(pred func(float64) bool) []Interval {
	var out []Interval
	for _, s := range p.Segs {
		if !pred(s.P) {
			continue
		}
		if n := len(out); n > 0 && out[n-1].T1 == s.T0 {
			out[n-1].T1 = s.T1
		} else {
			out = append(out, Interval{T0: s.T0, T1: s.T1})
		}
	}
	return out
}

// Valid reports whether the profile respects the max power budget.
// Equivalent to len(p.Spikes(pmax)) == 0, but allocation-free: the
// schedulers probe validity after every candidate move.
func (p Profile) Valid(pmax float64) bool {
	for _, s := range p.Segs {
		if s.P > pmax {
			return false
		}
	}
	return true
}

// EnergyCost returns Ec_sigma(pmin): the energy drawn above the free
// power level, i.e. integral of max(0, P(t)-pmin) dt. When pmin is the
// available solar power this is the energy cost charged to the
// non-rechargeable battery.
func (p Profile) EnergyCost(pmin float64) float64 {
	var e float64
	for _, s := range p.Segs {
		if s.P > pmin {
			e += (s.P - pmin) * float64(s.T1-s.T0)
		}
	}
	return e
}

// FreeEnergyUsed returns the energy actually drawn from the free
// source: integral of min(P(t), pmin) dt.
func (p Profile) FreeEnergyUsed(pmin float64) float64 {
	var e float64
	for _, s := range p.Segs {
		v := s.P
		if v > pmin {
			v = pmin
		}
		e += v * float64(s.T1-s.T0)
	}
	return e
}

// Utilization returns rho_sigma(pmin): the ratio of free energy used
// over total available free energy pmin*tau. It is 1 when the profile
// never drops below pmin. For pmin <= 0 or an empty profile it returns 1
// (there is no free energy to waste).
func (p Profile) Utilization(pmin float64) float64 {
	tau := p.Duration()
	if pmin <= 0 || tau == 0 {
		return 1
	}
	return p.FreeEnergyUsed(pmin) / (pmin * float64(tau))
}

// WriteCSV emits the profile as "t,watts" rows, one per second, for
// external plotting of the paper's power views.
func (p Profile) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t,watts"); err != nil {
		return err
	}
	for _, s := range p.Segs {
		for t := s.T0; t < s.T1; t++ {
			if _, err := fmt.Fprintf(w, "%d,%g\n", t, s.P); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the profile compactly for logs and tests.
func (p Profile) String() string {
	s := "profile{"
	for i, seg := range p.Segs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("[%d,%d)=%.4gW", seg.T0, seg.T1, seg.P)
	}
	return s + "}"
}
