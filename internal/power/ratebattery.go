package power

import (
	"fmt"
	"math"
)

// RateBattery models a non-rechargeable battery whose usable capacity
// depends on the draw rate (the Peukert effect): drawing power P for
// one second depletes the store by P * (P/RefPower)^(Exponent-1) joules
// when P exceeds RefPower. High-power bursts therefore waste capacity —
// the quantitative reason the paper gives for controlling power jitter
// ("to control the jitter in the system-level power curve to improve
// battery usage"). At Exponent = 1 the model degrades to the ideal
// Battery.
type RateBattery struct {
	// Capacity is the nominal stored energy in joules at the reference
	// draw rate.
	Capacity float64
	// MaxPower is the maximum output power in watts.
	MaxPower float64
	// RefPower is the draw rate at which the nominal capacity is
	// delivered in full.
	RefPower float64
	// Exponent is the Peukert exponent, >= 1 (typically 1.1-1.3 for
	// real chemistries).
	Exponent float64

	depleted float64 // effective joules removed from Capacity
	drawn    float64 // actual joules delivered to the load
}

// effectiveRate returns the joules of capacity consumed per delivered
// joule at draw power p.
func (b *RateBattery) effectiveRate(p float64) float64 {
	if p <= b.RefPower || b.Exponent <= 1 {
		return 1
	}
	return math.Pow(p/b.RefPower, b.Exponent-1)
}

// DrawAt delivers power p for dt seconds. It returns an error when p
// exceeds MaxPower or the remaining capacity cannot cover the draw; the
// store is unchanged on error.
func (b *RateBattery) DrawAt(p float64, dt float64) error {
	if p < 0 || dt < 0 {
		return fmt.Errorf("power: negative draw (%g W for %g s)", p, dt)
	}
	if p > b.MaxPower+1e-9 {
		return fmt.Errorf("power: draw %g W exceeds battery max output %g W", p, b.MaxPower)
	}
	cost := p * dt * b.effectiveRate(p)
	if b.Capacity > 0 && b.depleted+cost > b.Capacity+1e-9 {
		return fmt.Errorf("power: battery exhausted: draw needs %.4g J of capacity, %.4g J left",
			cost, b.Capacity-b.depleted)
	}
	b.depleted += cost
	b.drawn += p * dt
	return nil
}

// Delivered returns the energy actually supplied to the load.
func (b *RateBattery) Delivered() float64 { return b.drawn }

// Depleted returns the capacity consumed, including rate losses.
func (b *RateBattery) Depleted() float64 { return b.depleted }

// Wasted returns the capacity lost to the rate effect: depleted minus
// delivered.
func (b *RateBattery) Wasted() float64 { return b.depleted - b.drawn }

// Remaining returns the capacity left (negative sentinel when
// untracked).
func (b *RateBattery) Remaining() float64 {
	if b.Capacity == 0 {
		return -1
	}
	return b.Capacity - b.depleted
}

// DepleteProfile drains the battery according to a power profile's
// over-threshold demand: at every second the profile exceeds free,
// the excess is drawn from the battery at that rate. It returns the
// capacity consumed, or an error at the first failing second.
func (b *RateBattery) DepleteProfile(prof Profile, free float64) (float64, error) {
	before := b.depleted
	for _, seg := range prof.Segs {
		if seg.P <= free {
			continue
		}
		draw := seg.P - free
		for t := seg.T0; t < seg.T1; t++ {
			if err := b.DrawAt(draw, 1); err != nil {
				return b.depleted - before, fmt.Errorf("t=%d: %w", t, err)
			}
		}
	}
	return b.depleted - before, nil
}
