package power

import (
	"math"
	"sort"

	"repro/internal/model"
)

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// segIndex is a hierarchical max/min index over a materialized
// profile's segments: a power-of-two-padded implicit segment tree whose
// node aggregates answer "first segment at or after i whose power
// crosses a threshold" in O(log m) instead of the linear segment walk
// the heuristics previously performed per query. All comparisons are
// exact float comparisons against the same segment powers the linear
// walk reads, so every answer is bitwise-identical to the walk's.
//
// The tree is rebuilt from the segment slice in O(m); the tracker does
// so lazily on the first query after each materialization, and the node
// banks are reused across rebuilds.
type segIndex struct {
	m    int       // live leaf count (number of segments)
	size int       // padded leaf count: smallest power of two >= m
	max  []float64 // 2*size nodes, 1-based; leaf i lives at size+i
	min  []float64
}

func (ix *segIndex) build(segs []Segment) {
	ix.m = len(segs)
	size := 1
	for size < ix.m {
		size *= 2
	}
	ix.size = size
	if cap(ix.max) < 2*size {
		ix.max = make([]float64, 2*size)
		ix.min = make([]float64, 2*size)
	}
	ix.max = ix.max[:2*size]
	ix.min = ix.min[:2*size]
	for i := 0; i < size; i++ {
		if i < ix.m {
			ix.max[size+i] = segs[i].P
			ix.min[size+i] = segs[i].P
		} else {
			ix.max[size+i] = negInf
			ix.min[size+i] = posInf
		}
	}
	for i := size - 1; i >= 1; i-- {
		l, r := ix.max[2*i], ix.max[2*i+1]
		if l >= r {
			ix.max[i] = l
		} else {
			ix.max[i] = r
		}
		l, r = ix.min[2*i], ix.min[2*i+1]
		if l <= r {
			ix.min[i] = l
		} else {
			ix.min[i] = r
		}
	}
}

// descendMax and friends walk from a tree node known to contain a
// qualifying leaf down to its leftmost qualifying leaf, steering by the
// node aggregates (one comparison per level).
func (ix *segIndex) descendMax(v int, above float64) int {
	for v < ix.size {
		if ix.max[2*v] > above {
			v = 2 * v
		} else {
			v = 2*v + 1
		}
	}
	return v - ix.size
}

func (ix *segIndex) descendMaxAtOr(v int, above float64) int {
	for v < ix.size {
		if ix.max[2*v] >= above {
			v = 2 * v
		} else {
			v = 2*v + 1
		}
	}
	return v - ix.size
}

func (ix *segIndex) descendMinAtOr(v int, below float64) int {
	for v < ix.size {
		if ix.min[2*v] <= below {
			v = 2 * v
		} else {
			v = 2*v + 1
		}
	}
	return v - ix.size
}

// firstAbove returns the smallest segment index >= from whose power is
// strictly greater than x, or -1 when no such segment exists.
func (ix *segIndex) firstAbove(from int, x float64) int {
	if from < 0 {
		from = 0
	}
	if from >= ix.m {
		return -1
	}
	// Climb from the leaf, checking right siblings' subtrees.
	v := ix.size + from
	if ix.max[v] > x {
		return from
	}
	for v > 1 {
		if v%2 == 0 && ix.max[v+1] > x {
			return ix.descendMax(v+1, x)
		}
		v /= 2
	}
	return -1
}

// firstAtOrAbove is firstAbove with a >= threshold (power >= x).
func (ix *segIndex) firstAtOrAbove(from int, x float64) int {
	if from < 0 {
		from = 0
	}
	if from >= ix.m {
		return -1
	}
	v := ix.size + from
	if ix.max[v] >= x {
		return from
	}
	for v > 1 {
		if v%2 == 0 && ix.max[v+1] >= x {
			return ix.descendMaxAtOr(v+1, x)
		}
		v /= 2
	}
	return -1
}

// firstAtOrBelow returns the smallest segment index >= from whose power
// is at most x, or -1.
func (ix *segIndex) firstAtOrBelow(from int, x float64) int {
	if from < 0 {
		from = 0
	}
	if from >= ix.m {
		return -1
	}
	v := ix.size + from
	if ix.min[v] <= x {
		return from
	}
	for v > 1 {
		if v%2 == 0 && ix.min[v+1] <= x {
			return ix.descendMinAtOr(v+1, x)
		}
		v /= 2
	}
	return -1
}

// ensureIndex materializes the profile if needed and (re)builds the
// segment index for it.
func (tr *Tracker) ensureIndex() {
	tr.Profile()
	if !tr.idxOK {
		tr.idx.build(tr.prof.Segs)
		tr.idxOK = true
	}
}

// segAt returns the index of the materialized segment containing t, or
// -1 when t falls outside [0, tau).
func (tr *Tracker) segAt(t model.Time) int {
	segs := tr.prof.Segs
	i := sort.Search(len(segs), func(i int) bool { return segs[i].T1 > t })
	if i < len(segs) && segs[i].T0 <= t {
		return i
	}
	return -1
}

// ValidMax reports whether the tracked profile respects the max power
// budget. Identical to Profile().Valid(pmax) — a profile is invalid iff
// its exact peak exceeds pmax — but O(1) after materialization: the
// peak is maintained during the segment sweep.
func (tr *Tracker) ValidMax(pmax float64) bool {
	tr.Profile()
	return !(tr.maxP > pmax)
}

// FirstAbove returns the start of the earliest profile segment whose
// power strictly exceeds pmax (the first spike's start), or false when
// the profile never exceeds pmax. Identical to scanning Profile().Segs
// for the first P > pmax, in O(log m) via the segment index.
func (tr *Tracker) FirstAbove(pmax float64) (model.Time, bool) {
	tr.Profile()
	if !(tr.maxP > pmax) {
		return 0, false
	}
	tr.ensureIndex()
	i := tr.idx.firstAbove(0, pmax)
	if i < 0 {
		return 0, false
	}
	return tr.prof.Segs[i].T0, true
}

// RunEndAbove returns the end of the maximal contiguous run of
// over-budget segments (P > pmax) containing time t, or t+1 when the
// profile at t does not exceed pmax. This is the spike-interval end
// query of the max-power stage: profile segments are contiguous, so a
// maximal over-budget run is exactly a maximal consecutive sequence of
// over-budget segments.
func (tr *Tracker) RunEndAbove(t model.Time, pmax float64) model.Time {
	tr.Profile()
	i := tr.segAt(t)
	if i < 0 || !(tr.prof.Segs[i].P > pmax) {
		return t + 1
	}
	tr.ensureIndex()
	j := tr.idx.firstAtOrBelow(i+1, pmax)
	if j < 0 {
		j = len(tr.prof.Segs)
	}
	return tr.prof.Segs[j-1].T1
}

// RunEndBelow returns the end of the maximal contiguous run of
// below-pmin segments (P < pmin) containing time t, or t+1 when the
// profile at t is not below pmin. This is the gap-interval end query of
// the min-power stage.
func (tr *Tracker) RunEndBelow(t model.Time, pmin float64) model.Time {
	tr.Profile()
	i := tr.segAt(t)
	if i < 0 || !(tr.prof.Segs[i].P < pmin) {
		return t + 1
	}
	tr.ensureIndex()
	j := tr.idx.firstAtOrAbove(i+1, pmin)
	if j < 0 {
		j = len(tr.prof.Segs)
	}
	return tr.prof.Segs[j-1].T1
}
