package power

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/schedule"
)

func buildSimple() Profile {
	tasks := []model.Task{
		{Name: "a", Resource: "A", Delay: 4, Power: 5},
		{Name: "b", Resource: "B", Delay: 4, Power: 3},
	}
	s := schedule.Schedule{Start: []model.Time{0, 2}}
	return Build(tasks, s, 1)
}

func TestBuildSegments(t *testing.T) {
	p := buildSimple()
	// [0,2): 6, [2,4): 9, [4,6): 4.
	want := []Segment{{0, 2, 6}, {2, 4, 9}, {4, 6, 4}}
	if len(p.Segs) != len(want) {
		t.Fatalf("segments = %v, want %v", p.Segs, want)
	}
	for i, w := range want {
		if p.Segs[i] != w {
			t.Errorf("seg[%d] = %v, want %v", i, p.Segs[i], w)
		}
	}
}

func TestBuildMergesEqualAdjacent(t *testing.T) {
	tasks := []model.Task{
		{Name: "a", Resource: "A", Delay: 2, Power: 5},
		{Name: "b", Resource: "B", Delay: 2, Power: 5},
	}
	s := schedule.Schedule{Start: []model.Time{0, 2}}
	p := Build(tasks, s, 0)
	if len(p.Segs) != 1 || p.Segs[0] != (Segment{0, 4, 5}) {
		t.Fatalf("segments = %v, want one merged segment", p.Segs)
	}
}

func TestEmptyProfile(t *testing.T) {
	p := Build(nil, schedule.Schedule{}, 3)
	if p.Duration() != 0 || p.Energy() != 0 || p.Peak() != 0 || p.Floor() != 0 {
		t.Fatalf("empty profile not empty: %+v", p)
	}
	if p.Utilization(5) != 1 {
		t.Fatal("empty profile utilization != 1")
	}
}

func TestAt(t *testing.T) {
	p := buildSimple()
	cases := map[model.Time]float64{0: 6, 1: 6, 2: 9, 3: 9, 4: 4, 5: 4, 6: 0, -1: 0, 100: 0}
	for tt, want := range cases {
		if got := p.At(tt); got != want {
			t.Errorf("At(%d) = %g, want %g", tt, got, want)
		}
	}
}

func TestPeakFloorEnergy(t *testing.T) {
	p := buildSimple()
	if p.Peak() != 9 {
		t.Errorf("Peak = %g, want 9", p.Peak())
	}
	if p.Floor() != 4 {
		t.Errorf("Floor = %g, want 4", p.Floor())
	}
	if p.Energy() != 6*2+9*2+4*2 {
		t.Errorf("Energy = %g, want 38", p.Energy())
	}
	if p.Duration() != 6 {
		t.Errorf("Duration = %d, want 6", p.Duration())
	}
}

func TestSpikesAndGaps(t *testing.T) {
	p := buildSimple()
	if sp := p.Spikes(8); len(sp) != 1 || sp[0] != (Interval{2, 4}) {
		t.Errorf("Spikes(8) = %v", sp)
	}
	if sp := p.Spikes(9); len(sp) != 0 {
		t.Errorf("Spikes(9) = %v, want none (boundary is not a spike)", sp)
	}
	if gp := p.Gaps(6); len(gp) != 1 || gp[0] != (Interval{4, 6}) {
		t.Errorf("Gaps(6) = %v", gp)
	}
	if gp := p.Gaps(4); len(gp) != 0 {
		t.Errorf("Gaps(4) = %v, want none (boundary is not a gap)", gp)
	}
	if !p.Valid(9) || p.Valid(8.5) {
		t.Error("Valid() disagrees with Spikes()")
	}
}

func TestAdjacentViolationsMerge(t *testing.T) {
	tasks := []model.Task{
		{Name: "a", Resource: "A", Delay: 2, Power: 9},
		{Name: "b", Resource: "B", Delay: 2, Power: 10},
	}
	s := schedule.Schedule{Start: []model.Time{0, 2}}
	p := Build(tasks, s, 0)
	if sp := p.Spikes(8); len(sp) != 1 || sp[0] != (Interval{0, 4}) {
		t.Errorf("adjacent spikes did not merge: %v", sp)
	}
}

func TestEnergyCostAndUtilization(t *testing.T) {
	p := buildSimple()
	// pmin = 5: cost = (6-5)*2 + (9-5)*2 = 10; free used = 5*2+5*2+4*2 = 28.
	if got := p.EnergyCost(5); got != 10 {
		t.Errorf("EnergyCost(5) = %g, want 10", got)
	}
	if got := p.FreeEnergyUsed(5); got != 28 {
		t.Errorf("FreeEnergyUsed(5) = %g, want 28", got)
	}
	if got := p.Utilization(5); math.Abs(got-28.0/30.0) > 1e-12 {
		t.Errorf("Utilization(5) = %g, want %g", got, 28.0/30.0)
	}
	if got := p.Utilization(0); got != 1 {
		t.Errorf("Utilization(0) = %g, want 1 (no free energy)", got)
	}
	// pmin at the floor: full utilization.
	if got := p.Utilization(4); got != 1 {
		t.Errorf("Utilization(floor) = %g, want 1", got)
	}
}

func TestProfileString(t *testing.T) {
	p := buildSimple()
	if got := p.String(); got != "profile{[0,2)=6W [2,4)=9W [4,6)=4W}" {
		t.Errorf("String = %q", got)
	}
}

// randomProfile builds a profile from a random schedule for property
// tests.
func randomProfile(seed int64) (Profile, float64) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(8)
	tasks := make([]model.Task, n)
	starts := make([]model.Time, n)
	for i := range tasks {
		tasks[i] = model.Task{
			Name:     string(rune('a' + i)),
			Resource: "R",
			Delay:    1 + rng.Intn(10),
			Power:    rng.Float64() * 12,
		}
		starts[i] = rng.Intn(20)
	}
	base := rng.Float64() * 3
	return Build(tasks, schedule.Schedule{Start: starts}, base), base
}

// TestQuickProfileContiguous: segments always tile [0, tau) with no
// holes, no empty segments, and no two adjacent segments of equal
// power.
func TestQuickProfileContiguous(t *testing.T) {
	f := func(seed int64) bool {
		p, _ := randomProfile(seed)
		if len(p.Segs) == 0 {
			return true
		}
		if p.Segs[0].T0 != 0 {
			return false
		}
		for i, s := range p.Segs {
			if s.T1 <= s.T0 {
				return false
			}
			if i > 0 {
				if s.T0 != p.Segs[i-1].T1 {
					return false
				}
				if s.P == p.Segs[i-1].P {
					return false
				}
			}
		}
		return p.Segs[len(p.Segs)-1].T1 == p.Duration()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEnergySplitIdentity: for any profile and any pmin,
// EnergyCost + FreeEnergyUsed == Energy: the free/costly split is a
// partition of total consumption.
func TestQuickEnergySplitIdentity(t *testing.T) {
	f := func(seed int64, pminRaw uint8) bool {
		p, _ := randomProfile(seed)
		pmin := float64(pminRaw) / 8
		total := p.EnergyCost(pmin) + p.FreeEnergyUsed(pmin)
		return math.Abs(total-p.Energy()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickUtilizationBounds: utilization is always within [0, 1], is
// exactly 1 at or below the floor, and is monotonically non-increasing
// in pmin.
func TestQuickUtilizationBounds(t *testing.T) {
	f := func(seed int64) bool {
		p, _ := randomProfile(seed)
		if p.Duration() == 0 {
			return true
		}
		prev := 1.0
		for pmin := 0.5; pmin < 16; pmin += 0.5 {
			u := p.Utilization(pmin)
			if u < 0 || u > 1+1e-12 {
				return false
			}
			if u > prev+1e-12 {
				return false
			}
			prev = u
		}
		return p.Utilization(p.Floor()) > 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickEnergyMatchesTasks: profile energy equals the sum of task
// energies plus base power over the duration.
func TestQuickEnergyMatchesTasks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		tasks := make([]model.Task, n)
		starts := make([]model.Time, n)
		want := 0.0
		for i := range tasks {
			tasks[i] = model.Task{Name: string(rune('a' + i)), Resource: "R",
				Delay: 1 + rng.Intn(10), Power: rng.Float64() * 12}
			starts[i] = rng.Intn(20)
			want += tasks[i].Energy()
		}
		base := rng.Float64() * 3
		p := Build(tasks, schedule.Schedule{Start: starts}, base)
		want += base * float64(p.Duration())
		return math.Abs(p.Energy()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSpikeGapDisjoint: no instant is both a spike and a gap, and
// At() agrees with the spike/gap classification.
func TestQuickSpikeGapDisjoint(t *testing.T) {
	f := func(seed int64, levelRaw uint8) bool {
		p, _ := randomProfile(seed)
		level := float64(levelRaw) / 10
		spikes := p.Spikes(level)
		gaps := p.Gaps(level)
		for _, s := range spikes {
			for _, g := range gaps {
				if s.T0 < g.T1 && g.T0 < s.T1 {
					return false
				}
			}
			if p.At(s.T0) <= level {
				return false
			}
		}
		for _, g := range gaps {
			if p.At(g.T0) >= level {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWriteCSV(t *testing.T) {
	p := buildSimple()
	var buf strings.Builder
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "t,watts\n") {
		t.Fatalf("missing header: %q", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 1+int(p.Duration()) {
		t.Fatalf("lines = %d, want %d", lines, 1+p.Duration())
	}
	if !strings.Contains(out, "2,9\n") {
		t.Errorf("missing row for t=2: %q", out)
	}
}
