package power

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/schedule"
)

func randomInstance(rng *rand.Rand, n int) ([]model.Task, schedule.Schedule) {
	tasks := make([]model.Task, n)
	starts := make([]model.Time, n)
	for i := range tasks {
		tasks[i] = model.Task{
			Name:  fmt.Sprintf("t%d", i),
			Delay: 1 + rng.Intn(7),
			// Irrational-ish powers so floating-point accumulation
			// order differences would actually show up.
			Power: rng.Float64() * 13.7,
		}
		starts[i] = model.Time(rng.Intn(40))
	}
	return tasks, schedule.Schedule{Start: starts}
}

func profilesEqual(a, b Profile) bool {
	if len(a.Segs) == 0 && len(b.Segs) == 0 {
		return true
	}
	return reflect.DeepEqual(a.Segs, b.Segs)
}

// TestTrackerMatchesBuild drives a tracker through random move
// sequences and checks after every single move that its profile is
// bit-identical (same segment boundaries, same float64 power values) to
// a from-scratch Build of the same schedule.
func TestTrackerMatchesBuild(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		base := 0.0
		if rng.Intn(2) == 0 {
			base = rng.Float64() * 3.3
		}
		tasks, s := randomInstance(rng, n)
		tr := NewTracker(tasks, s, base)
		if got, want := tr.Profile(), Build(tasks, s, base); !profilesEqual(got, want) {
			t.Fatalf("seed %d: initial profile mismatch\n got %v\nwant %v", seed, got, want)
		}
		for move := 0; move < 60; move++ {
			v := rng.Intn(n)
			s.Start[v] = model.Time(rng.Intn(50))
			tr.Move(v, s.Start[v])
			got, want := tr.Profile(), Build(tasks, s, base)
			if !profilesEqual(got, want) {
				t.Fatalf("seed %d move %d: profile mismatch after moving task %d to %d\n got %v\nwant %v",
					seed, move, v, s.Start[v], got, want)
			}
		}
		// Reset back onto a fresh schedule and re-check.
		_, s2 := randomInstance(rng, n)
		tr.Reset(s2)
		if got, want := tr.Profile(), Build(tasks, s2, base); !profilesEqual(got, want) {
			t.Fatalf("seed %d: post-Reset profile mismatch\n got %v\nwant %v", seed, got, want)
		}
	}
}

// TestTrackerMoveNoop checks that moving a task onto its current start
// leaves the cached profile valid.
func TestTrackerMoveNoop(t *testing.T) {
	tasks := []model.Task{{Name: "a", Delay: 3, Power: 2.5}}
	s := schedule.Schedule{Start: []model.Time{4}}
	tr := NewTracker(tasks, s, 1)
	before := tr.Profile().String()
	tr.Move(0, 4)
	if after := tr.Profile().String(); after != before {
		t.Fatalf("no-op move changed profile: %s -> %s", before, after)
	}
}

// TestTrackerDerivedQuantities spot-checks that the quantities the
// schedulers actually branch on (At, Spikes, Gaps, Utilization,
// EnergyCost) agree between tracker and Build profiles, including after
// moves that change the finish time tau.
func TestTrackerDerivedQuantities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tasks, s := randomInstance(rng, 9)
	base := 0.75
	tr := NewTracker(tasks, s, base)
	for move := 0; move < 40; move++ {
		v := rng.Intn(len(tasks))
		s.Start[v] = model.Time(rng.Intn(60))
		tr.Move(v, s.Start[v])
		got, want := tr.Profile(), Build(tasks, s, base)
		if got.Utilization(5) != want.Utilization(5) {
			t.Fatalf("move %d: utilization %v != %v", move, got.Utilization(5), want.Utilization(5))
		}
		if got.EnergyCost(5) != want.EnergyCost(5) {
			t.Fatalf("move %d: energy cost %v != %v", move, got.EnergyCost(5), want.EnergyCost(5))
		}
		if !reflect.DeepEqual(got.Spikes(10), want.Spikes(10)) || !reflect.DeepEqual(got.Gaps(5), want.Gaps(5)) {
			t.Fatalf("move %d: spikes/gaps diverge", move)
		}
		for q := model.Time(0); q < got.Duration(); q += 3 {
			if got.At(q) != want.At(q) {
				t.Fatalf("move %d: At(%d) %v != %v", move, q, got.At(q), want.At(q))
			}
		}
	}
}
