package power

import (
	"repro/internal/model"
	"repro/internal/schedule"
)

// Tracker maintains the power profile of a schedule incrementally: when
// one task moves, only the four affected breakpoints (old start/end, new
// start/end) are updated instead of rebuilding the whole profile with
// Build. This is the scheduler's hottest data structure — spike fixing,
// gap filling, and compaction all probe the profile after every
// candidate move.
//
// The tracker is bit-exact with Build: Profile returns segments whose
// power values are produced by the same floating-point operations in
// the same order Build performs them (base load first, then task
// contributions in task-index order, per-breakpoint sums rounded before
// the running prefix sum). Heuristics that compare profile values
// against thresholds therefore make identical decisions on the
// incremental and the from-scratch path.
type Tracker struct {
	tasks []model.Task
	base  float64
	start []model.Time
	// delays and powers are flat per-task banks mirroring the Delay and
	// Power fields of tasks, refreshed on Reset (a heterogeneous
	// scheduler rewrites the task view between restarts). The hot loops
	// — materialize's finish-time scan and Move's breakpoint updates —
	// read these dense 8-byte entries instead of copying ~88-byte
	// model.Task values (runtime.duffcopy on profiles).
	delays []model.Time
	powers []float64
	// buckets holds, per breakpoint time, the ordered task
	// contributions (base is handled virtually at 0 and tau, which
	// moves as the finish time changes). Sorted by time.
	buckets []bucket
	// free recycles the contribution slices of emptied buckets so that
	// steady-state Move/Reset churn allocates nothing once the slices
	// have grown to their working sizes.
	free  [][]contrib
	prof  Profile
	dirty bool
	// maxP and minP are the materialized profile's peak and floor,
	// maintained for free during the segment sweep so per-probe validity
	// checks are O(1); idx is the hierarchical spike/gap index over the
	// materialized segments, rebuilt lazily on first query per
	// materialization (see index.go).
	maxP, minP float64
	idx        segIndex
	idxOK      bool
}

const (
	kindStart = 0 // +Power at the task's start time
	kindEnd   = 1 // -Power at the task's end time
)

type contrib struct {
	task int
	kind int
	p    float64 // signed contribution
}

type bucket struct {
	t  model.Time
	cs []contrib
}

// NewTracker builds a tracker for the given tasks positioned at s.
func NewTracker(tasks []model.Task, s schedule.Schedule, base float64) *Tracker {
	tr := &Tracker{
		tasks:  tasks,
		base:   base,
		start:  make([]model.Time, len(tasks)),
		delays: make([]model.Time, len(tasks)),
		powers: make([]float64, len(tasks)),
	}
	tr.Reset(s)
	return tr
}

// Reset repositions every task at the starts of s, discarding all
// incremental state (used at stage boundaries, where the working
// schedule is re-derived wholesale). The flat delay/power banks are
// refreshed here too: a heterogeneous scheduler rewrites the task
// view's effective delays and powers between restarts.
func (tr *Tracker) Reset(s schedule.Schedule) {
	copy(tr.start, s.Start)
	for i := range tr.buckets {
		tr.recycle(tr.buckets[i].cs)
		tr.buckets[i].cs = nil
	}
	tr.buckets = tr.buckets[:0]
	for v := range tr.tasks {
		tr.delays[v] = tr.tasks[v].Delay
		tr.powers[v] = tr.tasks[v].Power
	}
	for v := range tr.delays {
		tr.add(tr.start[v], v, kindStart, tr.powers[v])
		tr.add(tr.start[v]+tr.delays[v], v, kindEnd, -tr.powers[v])
	}
	tr.dirty = true
}

// Move repositions task v to start at s, updating the affected
// breakpoints. Cost is O(log B) to locate each breakpoint plus the
// slice splice, independent of how the rest of the schedule looks.
func (tr *Tracker) Move(v int, s model.Time) {
	if s == tr.start[v] {
		return
	}
	d, p := tr.delays[v], tr.powers[v]
	old := tr.start[v]
	tr.remove(old, v, kindStart)
	tr.remove(old+d, v, kindEnd)
	tr.start[v] = s
	tr.add(s, v, kindStart, p)
	tr.add(s+d, v, kindEnd, -p)
	tr.dirty = true
}

// Start returns the tracked start time of task v.
func (tr *Tracker) Start(v int) model.Time { return tr.start[v] }

// Profile materializes the current power profile. The result is cached
// until the next Move/Reset; callers must not retain it across
// mutations (its segment slice is reused).
func (tr *Tracker) Profile() Profile {
	if !tr.dirty {
		return tr.prof
	}
	tr.prof = tr.materialize(tr.prof.Segs[:0])
	tr.dirty = false
	return tr.prof
}

// bucketIdx returns the position of time t in the bucket list and
// whether a bucket at exactly t exists.
func (tr *Tracker) bucketIdx(t model.Time) (int, bool) {
	lo, hi := 0, len(tr.buckets)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr.buckets[mid].t < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(tr.buckets) && tr.buckets[lo].t == t
}

// add inserts the contribution of (task, kind) at time t, keeping the
// bucket's contributions ordered the way Build accumulates them: by
// task index, start before end.
func (tr *Tracker) add(t model.Time, task, kind int, p float64) {
	i, ok := tr.bucketIdx(t)
	if !ok {
		tr.buckets = append(tr.buckets, bucket{})
		copy(tr.buckets[i+1:], tr.buckets[i:])
		tr.buckets[i] = bucket{t: t, cs: tr.grab()}
	}
	b := &tr.buckets[i]
	j := len(b.cs)
	for j > 0 {
		c := b.cs[j-1]
		if c.task < task || (c.task == task && c.kind < kind) {
			break
		}
		j--
	}
	b.cs = append(b.cs, contrib{})
	copy(b.cs[j+1:], b.cs[j:])
	b.cs[j] = contrib{task: task, kind: kind, p: p}
}

// recycle returns a bucket's contribution slice to the freelist.
func (tr *Tracker) recycle(cs []contrib) {
	if cap(cs) > 0 {
		tr.free = append(tr.free, cs[:0])
	}
}

// grab pops a recycled contribution slice, or returns nil so the first
// append sizes a fresh one.
func (tr *Tracker) grab() []contrib {
	n := len(tr.free)
	if n == 0 {
		return nil
	}
	cs := tr.free[n-1]
	tr.free[n-1] = nil
	tr.free = tr.free[:n-1]
	return cs
}

// remove deletes the contribution of (task, kind) at time t. Buckets
// left without contributors are removed entirely, matching Build, which
// only creates breakpoints for times some task currently touches.
func (tr *Tracker) remove(t model.Time, task, kind int) {
	i, ok := tr.bucketIdx(t)
	if !ok {
		panic("power: tracker removal at unknown breakpoint")
	}
	b := &tr.buckets[i]
	for j, c := range b.cs {
		if c.task == task && c.kind == kind {
			b.cs = append(b.cs[:j], b.cs[j+1:]...)
			if len(b.cs) == 0 {
				tr.recycle(b.cs)
				tr.buckets = append(tr.buckets[:i], tr.buckets[i+1:]...)
			}
			return
		}
	}
	panic("power: tracker removal of unknown contribution")
}

// materialize sweeps the breakpoints into merged segments exactly the
// way Build does: each breakpoint's contributions are summed into a
// single delta (base first at 0 and tau), the running power is the
// prefix sum of those deltas, and adjacent equal-power segments merge.
func (tr *Tracker) materialize(segs []Segment) Profile {
	tr.maxP = negInf
	tr.minP = posInf
	tr.idxOK = false
	// The finish time is the largest breakpoint: every task's end is a
	// breakpoint at start+delay, and any breakpoint is a start or end
	// bounded by some end, so max(breakpoint) == max(start+delay). The
	// bucket list is time-ordered, making this O(1) instead of an O(n)
	// scan over the task set per materialization.
	var tau model.Time
	if len(tr.buckets) > 0 {
		tau = tr.buckets[len(tr.buckets)-1].t
	}
	if tau == 0 {
		return Profile{}
	}
	var cur float64
	prevT := model.Time(0)
	started := false
	flush := func(t0, t1 model.Time) {
		if t1 <= t0 || t0 >= tau {
			return
		}
		if t1 > tau {
			t1 = tau
		}
		if cur > tr.maxP {
			tr.maxP = cur
		}
		if cur < tr.minP {
			tr.minP = cur
		}
		if n := len(segs); n > 0 && segs[n-1].P == cur && segs[n-1].T1 == t0 {
			segs[n-1].T1 = t1
		} else {
			segs = append(segs, Segment{T0: t0, T1: t1, P: cur})
		}
	}
	step := func(t model.Time, bs float64, cs []contrib) {
		for _, c := range cs {
			bs += c.p
		}
		if started {
			flush(prevT, t)
		}
		cur += bs
		prevT = t
		started = true
	}
	seen0 := false
	for i := 0; i < len(tr.buckets) && tr.buckets[i].t < tau; i++ {
		b := tr.buckets[i]
		var bs float64
		if b.t == 0 {
			bs = tr.base
			seen0 = true
		} else if !seen0 {
			// Build always has a breakpoint at 0 (the base load starts
			// there), even when no task does.
			step(0, tr.base, nil)
			seen0 = true
		}
		step(b.t, bs, b.cs)
	}
	if !seen0 {
		step(0, tr.base, nil)
	}
	// Build's final breakpoint is tau (where the base load ends); its
	// delta is never added to the running power, it only terminates the
	// last segment.
	flush(prevT, tau)
	return Profile{Segs: segs}
}
