package power

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Solar models a free, non-storable power source whose output level
// varies over mission time as a piecewise-constant function (the paper's
// best/typical/worst solar output, and the mission scenario's 14.9 W ->
// 12 W -> 9 W staircase). Energy not consumed while available is lost.
type Solar struct {
	phases []solarPhase
}

type solarPhase struct {
	start model.Time // phase begins at this mission time
	watts float64
}

// NewSolar returns a constant source producing watts forever.
func NewSolar(watts float64) *Solar {
	return &Solar{phases: []solarPhase{{start: 0, watts: watts}}}
}

// AddPhase sets the output to watts from mission time start onward
// (until a later phase overrides it). Phases may be added in any order.
func (s *Solar) AddPhase(start model.Time, watts float64) {
	s.phases = append(s.phases, solarPhase{start: start, watts: watts})
	sort.Slice(s.phases, func(i, j int) bool { return s.phases[i].start < s.phases[j].start })
}

// At returns the solar output at mission time t. Before the first phase
// the output is 0.
func (s *Solar) At(t model.Time) float64 {
	out := 0.0
	for _, ph := range s.phases {
		if ph.start > t {
			break
		}
		out = ph.watts
	}
	return out
}

// Battery models the non-rechargeable battery pack: a finite energy
// store with a maximum output power. Draw debits energy; once Remaining
// hits zero the mission is over.
type Battery struct {
	// Capacity is the total stored energy in joules (0 means untracked:
	// infinite energy, only MaxPower constrains the system).
	Capacity float64
	// MaxPower is the maximum output power in watts (10 W for the
	// rover's pack in Table 2).
	MaxPower float64

	drawn float64
}

// Draw debits j joules from the battery. It returns an error if the
// battery lacks the energy; the debit is not applied in that case.
func (b *Battery) Draw(j float64) error {
	if j < 0 {
		return fmt.Errorf("power: negative battery draw %g J", j)
	}
	if b.Capacity > 0 && b.drawn+j > b.Capacity {
		return fmt.Errorf("power: battery exhausted: need %g J, %g J remaining", j, b.Remaining())
	}
	b.drawn += j
	return nil
}

// Drawn returns the total energy debited so far.
func (b *Battery) Drawn() float64 { return b.drawn }

// Remaining returns the energy left, or +Inf-like semantics via a
// negative value when Capacity is untracked (0).
func (b *Battery) Remaining() float64 {
	if b.Capacity == 0 {
		return -1
	}
	return b.Capacity - b.drawn
}

// Supply couples the two sources into the constraint parameters the
// scheduler consumes: at mission time t the max power budget is
// solar(t) + battery max output, and the min power goal (the free
// level) is solar(t). This is exactly how the paper derives Pmax and
// Pmin for the rover.
type Supply struct {
	Solar   *Solar
	Battery *Battery
}

// PmaxAt returns the hard power budget available at mission time t.
func (s Supply) PmaxAt(t model.Time) float64 {
	pm := s.Solar.At(t)
	if s.Battery != nil {
		pm += s.Battery.MaxPower
	}
	return pm
}

// PminAt returns the free power level at mission time t.
func (s Supply) PminAt(t model.Time) float64 { return s.Solar.At(t) }
