// Package gantt renders the power-aware Gantt chart of paper section
// 4.3: a two-view visualization of a schedule. The time view places
// task bins on one row per execution resource, with bin length equal to
// execution delay; the power view collapses all bins onto the time axis,
// showing the power profile against the min and max power constraints
// so spikes, gaps, energy cost, and free-power usage can be read
// directly.
//
// Two renderers are provided: a fixed-pitch ASCII renderer for
// terminals and tests, and an SVG renderer for documents. Both consume
// the same Chart value.
package gantt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/schedule"
)

// Chart is a schedule prepared for rendering.
type Chart struct {
	Title   string
	Tasks   []model.Task
	Starts  []model.Time
	Profile power.Profile
	Pmax    float64
	Pmin    float64
	Tau     model.Time
}

// New builds a chart from a problem and one of its schedules.
func New(p *model.Problem, s schedule.Schedule) *Chart {
	return &Chart{
		Title:   p.Name,
		Tasks:   p.Tasks,
		Starts:  append([]model.Time(nil), s.Start...),
		Profile: power.Build(p.Tasks, s, p.BasePower),
		Pmax:    p.Pmax,
		Pmin:    p.Pmin,
		Tau:     s.Finish(p.Tasks),
	}
}

// rows groups task indices by resource, resources sorted by name and
// tasks within a resource by start time.
func (c *Chart) rows() [][]int {
	byRes := make(map[string][]int)
	for i, t := range c.Tasks {
		byRes[t.Resource] = append(byRes[t.Resource], i)
	}
	names := make([]string, 0, len(byRes))
	for r := range byRes {
		names = append(names, r)
	}
	sort.Strings(names)
	out := make([][]int, len(names))
	for k, r := range names {
		idxs := byRes[r]
		sort.Slice(idxs, func(a, b int) bool { return c.Starts[idxs[a]] < c.Starts[idxs[b]] })
		out[k] = idxs
	}
	return out
}

// ASCII renders both views as fixed-pitch text. scale is the number of
// time units per character column (0 means 1).
func (c *Chart) ASCII(scale int) string {
	if scale <= 0 {
		scale = 1
	}
	cols := int(c.Tau)/scale + 1
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (tau=%d s, Pmax=%.4g W, Pmin=%.4g W)\n", c.Title, c.Tau, c.Pmax, c.Pmin)

	// Time view.
	b.WriteString("time view:\n")
	label := 0
	for _, row := range c.rows() {
		if len(row) == 0 {
			continue
		}
		res := c.Tasks[row[0]].Resource
		line := make([]byte, cols)
		for i := range line {
			line[i] = '.'
		}
		for _, v := range row {
			t := c.Tasks[v]
			from, to := c.Starts[v]/scale, (c.Starts[v]+t.Delay)/scale
			for x := from; x < to && x < cols; x++ {
				ch := byte(t.Name[0])
				if x == from && len(t.Name) > 0 {
					ch = t.Name[0]
				}
				line[x] = ch
			}
		}
		fmt.Fprintf(&b, "  %-8s |%s|\n", res, string(line))
		label++
	}

	// Power view: one row per descending power level, using the set of
	// levels that actually occur plus Pmax and Pmin.
	b.WriteString("power view:\n")
	levels := c.levels()
	for _, lv := range levels {
		line := make([]byte, cols)
		for x := 0; x < cols; x++ {
			p := c.Profile.At(model.Time(x * scale))
			switch {
			case p >= lv && p > c.Pmax && c.Pmax > 0:
				line[x] = '!'
			case p >= lv:
				line[x] = '#'
			default:
				line[x] = ' '
			}
		}
		mark := "  "
		if c.Pmax > 0 && lv == c.Pmax {
			mark = "=x"
		}
		if c.Pmin > 0 && lv == c.Pmin {
			mark = "=n"
		}
		fmt.Fprintf(&b, "  %7.4g%s|%s|\n", lv, mark, string(line))
	}
	// Time axis.
	axis := make([]byte, cols)
	for i := range axis {
		axis[i] = '-'
		if (i*scale)%10 == 0 {
			axis[i] = '+'
		}
	}
	fmt.Fprintf(&b, "  %7s  |%s|\n", "t", string(axis))
	fmt.Fprintf(&b, "  cost=%.4g J  util=%.2f%%  peak=%.4g W\n",
		c.Profile.EnergyCost(c.Pmin), 100*c.Profile.Utilization(c.Pmin), c.Profile.Peak())
	return b.String()
}

// levels picks the horizontal slices drawn in the ASCII power view:
// every distinct profile level plus the two constraints, descending,
// capped to a readable count.
func (c *Chart) levels() []float64 {
	set := map[float64]bool{}
	for _, s := range c.Profile.Segs {
		if s.P > 0 {
			set[s.P] = true
		}
	}
	if c.Pmax > 0 {
		set[c.Pmax] = true
	}
	if c.Pmin > 0 {
		set[c.Pmin] = true
	}
	var ls []float64
	for v := range set {
		ls = append(ls, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ls)))
	const maxRows = 16
	if len(ls) > maxRows {
		// Keep constraints, thin the rest evenly.
		kept := ls[:0]
		stride := (len(ls) + maxRows - 1) / maxRows
		for i, v := range ls {
			if v == c.Pmax || v == c.Pmin || i%stride == 0 {
				kept = append(kept, v)
			}
		}
		ls = kept
	}
	return ls
}
