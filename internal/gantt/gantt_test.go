package gantt

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/sched"
	"repro/internal/schedule"
)

func demoChart(t *testing.T) (*model.Problem, *Chart) {
	t.Helper()
	p := &model.Problem{
		Name: "demo",
		Tasks: []model.Task{
			{Name: "alpha", Resource: "cpu", Delay: 3, Power: 4},
			{Name: "beta", Resource: "radio", Delay: 2, Power: 6},
		},
		Pmax:      12,
		Pmin:      3,
		BasePower: 1,
	}
	s := schedule.Schedule{Start: []model.Time{0, 3}}
	return p, New(p, s)
}

func TestASCIIStructure(t *testing.T) {
	_, c := demoChart(t)
	out := c.ASCII(1)
	for _, want := range []string{
		"demo", "time view:", "power view:",
		"cpu", "radio", // one row per resource
		"=x", "=n", // Pmax and Pmin markers
		"cost=", "util=", "peak=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
}

func TestASCIIBinsPlacement(t *testing.T) {
	_, c := demoChart(t)
	out := c.ASCII(1)
	lines := strings.Split(out, "\n")
	var cpuLine, radioLine string
	for _, l := range lines {
		if strings.Contains(l, "cpu") {
			cpuLine = l
		}
		if strings.Contains(l, "radio") {
			radioLine = l
		}
	}
	if !strings.Contains(cpuLine, "aaa") {
		t.Errorf("cpu row missing alpha bin: %q", cpuLine)
	}
	if !strings.Contains(radioLine, "...bb") {
		t.Errorf("radio row misplaces beta bin: %q", radioLine)
	}
}

func TestASCIIScale(t *testing.T) {
	_, c := demoChart(t)
	wide := c.ASCII(1)
	narrow := c.ASCII(5)
	if len(narrow) >= len(wide) {
		t.Error("scaling did not shrink the chart")
	}
}

func TestASCIIMarksSpikes(t *testing.T) {
	p := &model.Problem{
		Name: "spiky",
		Tasks: []model.Task{
			{Name: "x", Resource: "A", Delay: 2, Power: 9},
			{Name: "y", Resource: "B", Delay: 2, Power: 9},
		},
		Pmax: 10,
		Pmin: 2,
	}
	s := schedule.Schedule{Start: []model.Time{0, 0}}
	out := New(p, s).ASCII(1)
	if !strings.Contains(out, "!") {
		t.Errorf("spike not marked with '!':\n%s", out)
	}
}

func TestSVGStructure(t *testing.T) {
	_, c := demoChart(t)
	out := c.SVG()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a closed SVG document")
	}
	for _, want := range []string{"Pmax=12", "Pmin=3", "alpha", "beta", "<rect", "cost="} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One rect per task bin plus one per profile segment, at minimum.
	if strings.Count(out, "<rect") < 3 {
		t.Errorf("too few rects: %d", strings.Count(out, "<rect"))
	}
}

func TestSVGEscapesNames(t *testing.T) {
	p := &model.Problem{
		Name:  "a<b>&\"c\"",
		Tasks: []model.Task{{Name: "t<1>", Resource: "r&d", Delay: 1, Power: 1}},
	}
	s := schedule.Schedule{Start: []model.Time{0}}
	out := New(p, s).SVG()
	for _, bad := range []string{"a<b>", "t<1>", "r&d\""} {
		if strings.Contains(out, bad) {
			t.Errorf("unescaped %q in SVG", bad)
		}
	}
	if !strings.Contains(out, "&lt;") || !strings.Contains(out, "&amp;") {
		t.Error("expected escaped entities in SVG")
	}
}

func TestChartOnScheduledExample(t *testing.T) {
	p := paperex.Nine()
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, r.Schedule)
	ascii := c.ASCII(1)
	for _, res := range []string{"A", "B", "C"} {
		if !strings.Contains(ascii, res) {
			t.Errorf("resource %s row missing", res)
		}
	}
	svg := c.SVG()
	for _, name := range []string{"a", "i"} {
		if !strings.Contains(svg, ">"+name+"<") {
			t.Errorf("task %s label missing from SVG", name)
		}
	}
}
