package gantt

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/schedule"
)

func TestTickStride(t *testing.T) {
	cases := map[int]int{
		10:    5,
		100:   5,
		150:   10,
		400:   25,
		900:   50,
		1900:  100,
		4900:  250,
		20000: 500,
	}
	for tau, want := range cases {
		if got := tickStride(tau); got != want {
			t.Errorf("tickStride(%d) = %d, want %d", tau, got, want)
		}
	}
}

func TestLevelsIncludeConstraints(t *testing.T) {
	p := &model.Problem{
		Name:  "lv",
		Tasks: []model.Task{{Name: "x", Resource: "R", Delay: 2, Power: 3}},
		Pmax:  9,
		Pmin:  2,
	}
	c := New(p, schedule.Schedule{Start: []model.Time{0}})
	ls := c.levels()
	hasPmax, hasPmin := false, false
	for _, v := range ls {
		if v == 9 {
			hasPmax = true
		}
		if v == 2 {
			hasPmin = true
		}
	}
	if !hasPmax || !hasPmin {
		t.Fatalf("levels %v missing constraints", ls)
	}
	// Descending order.
	for i := 1; i < len(ls); i++ {
		if ls[i] >= ls[i-1] {
			t.Fatalf("levels not descending: %v", ls)
		}
	}
}

func TestLevelsThinning(t *testing.T) {
	// 30 distinct power levels: the ASCII power view must thin them but
	// keep the constraint rules.
	p := &model.Problem{Name: "many", Pmax: 100, Pmin: 1}
	starts := make([]model.Time, 30)
	for i := 0; i < 30; i++ {
		p.AddTask(model.Task{
			Name:     string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Resource: p.Name + string(rune('a'+i)),
			Delay:    1,
			Power:    float64(i + 2),
		})
		starts[i] = model.Time(i)
	}
	c := New(p, schedule.Schedule{Start: starts})
	ls := c.levels()
	if len(ls) > 20 {
		t.Fatalf("levels not thinned: %d rows", len(ls))
	}
	out := c.ASCII(1)
	if !strings.Contains(out, "=x") || !strings.Contains(out, "=n") {
		t.Fatal("constraint markers lost in thinning")
	}
}

func TestASCIIDefaultsScale(t *testing.T) {
	p := &model.Problem{
		Name:  "s",
		Tasks: []model.Task{{Name: "x", Resource: "R", Delay: 2, Power: 3}},
	}
	c := New(p, schedule.Schedule{Start: []model.Time{0}})
	if c.ASCII(0) != c.ASCII(1) {
		t.Fatal("scale 0 should default to 1")
	}
}
