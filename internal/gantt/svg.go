package gantt

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// svg geometry constants (pixels).
const (
	svgPxPerSec   = 12
	svgRowHeight  = 28
	svgRowGap     = 6
	svgMarginL    = 90
	svgMarginT    = 40
	svgPowerH     = 180
	svgViewGap    = 30
	svgMarginB    = 40
	svgMarginR    = 20
	svgWattsScale = 6 // pixels per watt in the power view
)

// SVG renders the chart as a standalone SVG document with the time view
// above the power view, sharing the time axis. Task bins in the time
// view are scaled vertically by power, so bin area is energy, exactly
// as in the paper's figures.
func (c *Chart) SVG() string {
	rows := c.rows()
	maxPower := c.Profile.Peak()
	if c.Pmax > maxPower {
		maxPower = c.Pmax
	}
	timeH := len(rows) * (svgRowHeight + svgRowGap)
	width := svgMarginL + int(c.Tau)*svgPxPerSec + svgMarginR
	height := svgMarginT + timeH + svgViewGap + svgPowerH + svgMarginB

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s (tau=%d s)</text>`+"\n",
		svgMarginL, escape(c.Title), c.Tau)

	x := func(t model.Time) int { return svgMarginL + int(t)*svgPxPerSec }

	// Time view: one row per resource; bin height proportional to power.
	maxTaskPower := 0.0
	for _, t := range c.Tasks {
		if t.Power > maxTaskPower {
			maxTaskPower = t.Power
		}
	}
	for r, row := range rows {
		y := svgMarginT + r*(svgRowHeight+svgRowGap)
		res := c.Tasks[row[0]].Resource
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", svgMarginL-8, y+svgRowHeight-8, escape(res))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ccc"/>`+"\n",
			svgMarginL, y+svgRowHeight, x(c.Tau), y+svgRowHeight)
		for _, v := range row {
			t := c.Tasks[v]
			h := svgRowHeight
			if maxTaskPower > 0 {
				h = int(float64(svgRowHeight) * t.Power / maxTaskPower)
				if h < 4 {
					h = 4
				}
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#7aa6d6" stroke="#33547a"/>`+"\n",
				x(c.Starts[v]), y+svgRowHeight-h, t.Delay*svgPxPerSec, h)
			fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
				x(c.Starts[v])+2, y+svgRowHeight-h+12, escape(t.Name))
		}
	}

	// Power view: filled step function with Pmax/Pmin rules.
	py := svgMarginT + timeH + svgViewGap
	baseY := py + svgPowerH
	wy := func(p float64) int {
		yy := baseY - int(p*float64(svgWattsScale))
		if yy < py {
			yy = py
		}
		return yy
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#000"/>`+"\n", svgMarginL, baseY, x(c.Tau), baseY)
	for _, seg := range c.Profile.Segs {
		fill := "#9dc183"
		if c.Pmax > 0 && seg.P > c.Pmax {
			fill = "#d66a6a" // spike
		} else if c.Pmin > 0 && seg.P < c.Pmin {
			fill = "#e8d27a" // gap
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#555" stroke-width="0.5"/>`+"\n",
			x(seg.T0), wy(seg.P), (seg.T1-seg.T0)*svgPxPerSec, baseY-wy(seg.P), fill)
	}
	for _, rule := range []struct {
		p     float64
		label string
		color string
	}{{c.Pmax, "Pmax", "#b03030"}, {c.Pmin, "Pmin", "#306030"}} {
		if rule.p <= 0 {
			continue
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-dasharray="6,3"/>`+"\n",
			svgMarginL, wy(rule.p), x(c.Tau), wy(rule.p), rule.color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s">%s=%.4g W</text>`+"\n",
			x(c.Tau)+4, wy(rule.p)+4, rule.color, rule.label, rule.p)
	}

	// Time axis ticks every 10 s.
	ticks := tickStride(int(c.Tau))
	for t := 0; t <= int(c.Tau); t += ticks {
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#000"/>`+"\n", x(model.Time(t)), baseY, x(model.Time(t)), baseY+4)
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%d</text>`+"\n", x(model.Time(t)), baseY+16, t)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d">cost=%.4g J, util=%.1f%%, peak=%.4g W</text>`+"\n",
		svgMarginL, baseY+32, c.Profile.EnergyCost(c.Pmin), 100*c.Profile.Utilization(c.Pmin), c.Profile.Peak())
	b.WriteString("</svg>\n")
	return b.String()
}

func tickStride(tau int) int {
	for _, s := range []int{5, 10, 25, 50, 100, 250} {
		if tau/s <= 20 {
			return s
		}
	}
	return 500
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
