// Package loadgen drives a serving tier (one serve process or a
// router fronting several) with Zipf-skewed closed-loop load and
// reports latency quantiles, throughput, and cache effectiveness.
//
// The generator registers a pool of deterministic synthetic problems
// (benchkit instances), then runs W workers, each looping: draw a
// problem index from a Zipf distribution, request its schedule, record
// the latency. Zipf skew is the realistic regime for a
// content-addressed cache — a hot head that should live in L1, a long
// tail that exercises L2 and the compute path — so the reported
// hit-rate split is the serving tier's actual figure of merit.
// Cache-effectiveness numbers are measured from the target's own
// /stats counters (deltas across the run), which works against both a
// single serve process and a router's aggregated stats document.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/benchkit"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/web"
)

// Config parameterizes one load run.
type Config struct {
	Target   string        // base URL of the serve process or router
	Problems int           // distinct problems in the pool
	Tasks    int           // tasks per synthetic problem
	Seed     int64         // base seed for problems and the Zipf draws
	Zipf     float64       // Zipf s parameter (must be > 1; larger = more skew)
	Workers  int           // concurrent closed-loop workers
	Duration time.Duration // how long to generate load
	Batch    int           // items per request: <= 1 uses GET /schedule, else POST /schedule/batch
	Register bool          // register the problem pool before the run (off to re-drive an already-registered tier)

	// CampaignRuns, when positive, switches the workload to
	// POST /simulate/campaign: each request is an inline-spec
	// Monte-Carlo campaign of that many runs over a Zipf-drawn problem
	// (takes precedence over Batch). Against a router, full-range
	// campaigns fan out as seed sub-ranges across the live shards, so
	// this is the load shape that exercises the scatter-gather path.
	CampaignRuns int
}

// Report is the outcome of one load run. Latencies are per request
// (a batch request is one latency sample covering all its items).
type Report struct {
	Requests   int           `json:"requests"`
	Items      int           `json:"items"` // scheduled items (== Requests unless batching)
	Errors     int           `json:"errors"`
	Elapsed    float64       `json:"elapsed_seconds"`
	Throughput float64       `json:"throughput_rps"` // items per second
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`

	// Error breakdown. Errors above is the request-level total
	// (transport + 4xx + 5xx); the classes tell a chaos run whether a
	// failure was a dead connection, a client bug, or a server fault.
	// ItemErrors counts non-200 items inside 200 batch envelopes (the
	// envelope itself is not an error) and is NOT part of Errors.
	ErrorsTransport int `json:"errors_transport"`
	Errors4xx       int `json:"errors_4xx"`
	Errors5xx       int `json:"errors_5xx"`
	ItemErrors      int `json:"item_errors"`

	// Cache-effectiveness deltas from the target's /stats counters.
	Hits    int64   `json:"hits"`
	HitsL2  int64   `json:"hits_l2"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"` // (hits+hits_l2) / (hits+hits_l2+misses)
}

// String renders the human-readable report.
func (r *Report) String() string {
	return fmt.Sprintf(
		"requests=%d items=%d errors=%d (transport=%d 4xx=%d 5xx=%d) item_errors=%d elapsed=%.2fs throughput=%.1f/s p50=%s p99=%s hits=%d hits_l2=%d misses=%d hit_rate=%.3f",
		r.Requests, r.Items, r.Errors, r.ErrorsTransport, r.Errors4xx, r.Errors5xx, r.ItemErrors,
		r.Elapsed, r.Throughput, r.P50, r.P99,
		r.Hits, r.HitsL2, r.Misses, r.HitRate)
}

// statusError is a request that completed with a non-200 status, as
// opposed to one that failed in transport.
type statusError struct{ code int }

func (e statusError) Error() string { return fmt.Sprintf("status %d", e.code) }

// Run executes one load run against cfg.Target. The context bounds
// the whole run (registration included); cfg.Duration bounds the
// load-generation phase.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Zipf <= 1 {
		return nil, fmt.Errorf("loadgen: zipf s must be > 1, got %g", cfg.Zipf)
	}
	if cfg.Problems < 1 || cfg.Workers < 1 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: need problems >= 1, workers >= 1, duration > 0")
	}
	client := &http.Client{Timeout: 60 * time.Second}
	target := strings.TrimSuffix(cfg.Target, "/")

	names := make([]string, cfg.Problems)
	for i := range names {
		names[i] = fmt.Sprintf("load-%04d", i)
	}
	if cfg.Register {
		if err := register(ctx, client, target, names, cfg); err != nil {
			return nil, err
		}
	}
	// Campaign mode sends inline specs (so an unregistered tier works
	// and the router can fan the campaign over every shard); build the
	// pool's spec documents once up front.
	var specs []string
	if cfg.CampaignRuns > 0 {
		specs = make([]string, cfg.Problems)
		for i := range specs {
			p := benchkit.Generate(cfg.Tasks, cfg.Seed+int64(i))
			p.Name = names[i]
			specs[i] = spec.Format(p)
		}
	}

	before, err := statsSnapshot(ctx, client, target)
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats before run: %w", err)
	}

	lctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		total     Report
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*1_000_003))
			zipf := rand.NewZipf(rng, cfg.Zipf, 1, uint64(cfg.Problems-1))
			var local []time.Duration
			var sub Report
			for lctx.Err() == nil {
				n, itemErrs, lat, err := oneRequest(lctx, client, target, names, specs, zipf, cfg)
				if err != nil {
					if lctx.Err() != nil {
						break // the run ended mid-request; not a target failure
					}
					sub.Errors++
					var se statusError
					switch {
					case errors.As(err, &se) && se.code >= 500:
						sub.Errors5xx++
					case errors.As(err, &se):
						sub.Errors4xx++
					default:
						sub.ErrorsTransport++
					}
					continue
				}
				sub.Requests++
				sub.Items += n
				sub.ItemErrors += itemErrs
				local = append(local, lat)
			}
			mu.Lock()
			latencies = append(latencies, local...)
			total.Requests += sub.Requests
			total.Items += sub.Items
			total.Errors += sub.Errors
			total.ErrorsTransport += sub.ErrorsTransport
			total.Errors4xx += sub.Errors4xx
			total.Errors5xx += sub.Errors5xx
			total.ItemErrors += sub.ItemErrors
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := statsSnapshot(ctx, client, target)
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats after run: %w", err)
	}

	rep := &total
	rep.Elapsed = elapsed.Seconds()
	rep.Hits = after.Hits - before.Hits
	rep.HitsL2 = after.HitsL2 - before.HitsL2
	rep.Misses = after.Misses - before.Misses
	if elapsed > 0 {
		rep.Throughput = float64(rep.Items) / elapsed.Seconds()
	}
	if served := rep.Hits + rep.HitsL2 + rep.Misses; served > 0 {
		rep.HitRate = float64(rep.Hits+rep.HitsL2) / float64(served)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = quantile(latencies, 0.50)
	rep.P99 = quantile(latencies, 0.99)
	return rep, nil
}

// register uploads the problem pool. Each upload runs the server's
// feasibility probe, so on a warm store this is also the first wave of
// L2 hits.
func register(ctx context.Context, client *http.Client, target string, names []string, cfg Config) error {
	for i, name := range names {
		p := benchkit.Generate(cfg.Tasks, cfg.Seed+int64(i))
		p.Name = name
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/problems", strings.NewReader(spec.Format(p)))
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("loadgen: register %s: %w", name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("loadgen: register %s: status %d: %s", name, resp.StatusCode, body)
		}
	}
	return nil
}

// oneRequest issues one closed-loop request — a single GET /schedule,
// a POST /schedule/batch of batch Zipf draws, or (in campaign mode) a
// POST /simulate/campaign over one Zipf-drawn problem — and returns
// how many items it scheduled (campaign runs count as items), how many
// items inside a 200 batch envelope came back non-200, and its
// latency. A non-200 response is a statusError; anything else is a
// transport failure.
func oneRequest(ctx context.Context, client *http.Client, target string, names, specs []string, zipf *rand.Zipf, cfg Config) (int, int, time.Duration, error) {
	batch := cfg.Batch
	var req *http.Request
	var err error
	n := 1
	switch {
	case cfg.CampaignRuns > 0:
		batch = 0
		n = cfg.CampaignRuns
		var body []byte
		body, err = json.Marshal(web.CampaignRequest{
			Spec: specs[zipf.Uint64()],
			Runs: cfg.CampaignRuns,
			Seed: cfg.Seed,
		})
		if err == nil {
			req, err = http.NewRequestWithContext(ctx, http.MethodPost,
				target+"/simulate/campaign", strings.NewReader(string(body)))
			if req != nil {
				req.Header.Set("Content-Type", "application/json")
			}
		}
	case batch <= 1:
		name := names[zipf.Uint64()]
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			target+"/schedule?problem="+name+"&format=json", nil)
	default:
		n = batch
		items := make([]web.BatchItem, batch)
		for i := range items {
			items[i] = web.BatchItem{Problem: names[zipf.Uint64()]}
		}
		var body []byte
		body, err = json.Marshal(web.BatchRequest{Items: items})
		if err == nil {
			req, err = http.NewRequestWithContext(ctx, http.MethodPost,
				target+"/schedule/batch", strings.NewReader(string(body)))
			if req != nil {
				req.Header.Set("Content-Type", "application/json")
			}
		}
	}
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, 0, err
	}
	lat := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, statusError{code: resp.StatusCode}
	}
	itemErrs := 0
	if batch > 1 {
		var doc struct {
			Items []web.BatchItemResult `json:"items"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			return 0, 0, 0, err
		}
		for _, it := range doc.Items {
			if it.Status != http.StatusOK {
				itemErrs++
			}
		}
	}
	return n, itemErrs, lat, nil
}

// statsSnapshot fetches the target's service counters, accepting both
// stats shapes: a serve process's flat document and a router's
// aggregated one.
func statsSnapshot(ctx context.Context, client *http.Client, target string) (service.Stats, error) {
	var zero service.Stats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/stats", nil)
	if err != nil {
		return zero, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return zero, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return zero, err
	}
	if resp.StatusCode != http.StatusOK {
		return zero, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var routed struct {
		Aggregate *service.Stats `json:"aggregate"`
	}
	if err := json.Unmarshal(body, &routed); err == nil && routed.Aggregate != nil {
		return *routed.Aggregate, nil
	}
	var flat web.StatsDoc
	if err := json.Unmarshal(body, &flat); err != nil {
		return zero, err
	}
	return flat.Stats, nil
}

// quantile returns the q-quantile of sorted latencies (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ErrAssertion marks a failed -min/-max assertion so callers can
// distinguish "the tier is unhealthy" from "the run itself broke".
var ErrAssertion = errors.New("loadgen assertion failed")

// Assert checks CI-style bounds on a report: minL2 requires at least
// that many L2 hits (negative disables), minHitRate a floor on the
// combined hit rate (negative disables), maxP99 a latency budget (zero
// disables), and maxErrors a ceiling on request-plus-item errors. A
// negative maxErrors keeps the historical strictness — any error at
// all fails; an explicit value lets a chaos run tolerate the bounded
// blip it injected. All violations are reported at once.
func (r *Report) Assert(minL2 int64, minHitRate float64, maxP99 time.Duration, maxErrors int) error {
	var fails []string
	if minL2 >= 0 && r.HitsL2 < minL2 {
		fails = append(fails, fmt.Sprintf("hits_l2=%d < %d", r.HitsL2, minL2))
	}
	if minHitRate >= 0 && r.HitRate < minHitRate {
		fails = append(fails, fmt.Sprintf("hit_rate=%.3f < %.3f", r.HitRate, minHitRate))
	}
	if maxP99 > 0 && r.P99 > maxP99 {
		fails = append(fails, fmt.Sprintf("p99=%s > %s", r.P99, maxP99))
	}
	if all := r.Errors + r.ItemErrors; maxErrors >= 0 && all > maxErrors {
		fails = append(fails, fmt.Sprintf("errors=%d item_errors=%d > max %d (transport=%d 4xx=%d 5xx=%d)",
			r.Errors, r.ItemErrors, maxErrors, r.ErrorsTransport, r.Errors4xx, r.Errors5xx))
	} else if maxErrors < 0 && all > 0 {
		fails = append(fails, fmt.Sprintf("errors=%d item_errors=%d (transport=%d 4xx=%d 5xx=%d)",
			r.Errors, r.ItemErrors, r.ErrorsTransport, r.Errors4xx, r.Errors5xx))
	}
	if len(fails) > 0 {
		return fmt.Errorf("%w: %s", ErrAssertion, strings.Join(fails, ", "))
	}
	return nil
}
