package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/web"
)

func testTier(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(web.NewServer(sched.Options{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRunSingle(t *testing.T) {
	ts := testTier(t)
	rep, err := Run(context.Background(), Config{
		Target:   ts.URL,
		Problems: 4,
		Tasks:    10,
		Seed:     1,
		Zipf:     1.2,
		Workers:  2,
		Duration: 300 * time.Millisecond,
		Register: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Items != rep.Requests {
		t.Errorf("requests=%d items=%d, want some and equal", rep.Requests, rep.Items)
	}
	if rep.Errors != 0 {
		t.Errorf("errors=%d, want 0", rep.Errors)
	}
	// The pool is tiny and Zipf-skewed: the closed loop must revisit
	// problems, so the cache serves most of the run.
	if rep.Hits == 0 {
		t.Errorf("hits=0 after %d requests over 4 problems", rep.Requests)
	}
	if rep.HitRate <= 0 {
		t.Errorf("hit_rate=%f, want > 0", rep.HitRate)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("quantiles out of order: p50=%s p99=%s", rep.P50, rep.P99)
	}
	if err := rep.Assert(-1, 0.1, 0, -1); err != nil {
		t.Errorf("healthy run failed assertions: %v", err)
	}
	if err := rep.Assert(1, -1, 0, -1); err == nil {
		t.Errorf("no store configured, but the min-l2-hits assertion passed")
	}
}

func TestRunBatch(t *testing.T) {
	ts := testTier(t)
	rep, err := Run(context.Background(), Config{
		Target:   ts.URL,
		Problems: 4,
		Tasks:    10,
		Seed:     2,
		Zipf:     1.2,
		Workers:  2,
		Duration: 300 * time.Millisecond,
		Batch:    3,
		Register: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors=%d, want 0", rep.Errors)
	}
	if rep.Items != 3*rep.Requests {
		t.Errorf("items=%d for %d batch requests, want x3", rep.Items, rep.Requests)
	}
	if rep.ItemErrors != 0 {
		t.Errorf("item_errors=%d, want 0 (every item names a registered problem)", rep.ItemErrors)
	}
}

// TestErrorClasses drives the generator into a tier that always
// answers 503 and checks the per-class split plus the -max-errors
// assertion semantics.
func TestErrorClasses(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/stats" {
			fmt.Fprint(w, `{"hits":0,"hits_l2":0,"misses":0}`)
			return
		}
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	t.Cleanup(down.Close)
	rep, err := Run(context.Background(), Config{
		Target:   down.URL,
		Problems: 2,
		Tasks:    5,
		Seed:     3,
		Zipf:     1.2,
		Workers:  1,
		Duration: 100 * time.Millisecond,
		Register: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 || rep.Errors5xx != rep.Errors {
		t.Errorf("errors=%d errors_5xx=%d, want all errors classed 5xx", rep.Errors, rep.Errors5xx)
	}
	if rep.ErrorsTransport != 0 || rep.Errors4xx != 0 {
		t.Errorf("transport=%d 4xx=%d, want 0", rep.ErrorsTransport, rep.Errors4xx)
	}
	if err := rep.Assert(-1, -1, 0, -1); err == nil {
		t.Error("strict assertion passed despite errors")
	}
	if err := rep.Assert(-1, -1, 0, rep.Errors); err != nil {
		t.Errorf("max-errors=%d should tolerate %d errors: %v", rep.Errors, rep.Errors, err)
	}
	if err := rep.Assert(-1, -1, 0, rep.Errors-1); err == nil {
		t.Error("max-errors below the observed count passed")
	}
}

func TestStatsSnapshotShapes(t *testing.T) {
	// A router-shaped /stats document: the aggregate is what counts.
	agg := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"aggregate":{"hits":7,"hits_l2":3,"misses":2},"shards":[]}`)
	}))
	t.Cleanup(agg.Close)
	st, err := statsSnapshot(context.Background(), http.DefaultClient, agg.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 7 || st.HitsL2 != 3 || st.Misses != 2 {
		t.Errorf("aggregate shape misparsed: %+v", st)
	}

	// A flat serve-process document.
	flat := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"shard_id":"s0","hits":5,"hits_l2":1,"misses":4}`)
	}))
	t.Cleanup(flat.Close)
	st, err = statsSnapshot(context.Background(), http.DefaultClient, flat.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 5 || st.HitsL2 != 1 || st.Misses != 4 {
		t.Errorf("flat shape misparsed: %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Target: "http://x", Problems: 4, Zipf: 1.0, Workers: 1, Duration: time.Second},
		{Target: "http://x", Problems: 0, Zipf: 1.1, Workers: 1, Duration: time.Second},
		{Target: "http://x", Problems: 4, Zipf: 1.1, Workers: 0, Duration: time.Second},
		{Target: "http://x", Problems: 4, Zipf: 1.1, Workers: 1},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %+v: expected an error", cfg)
		}
	}
}

func TestRunCampaign(t *testing.T) {
	ts := testTier(t)
	rep, err := Run(context.Background(), Config{
		Target:       ts.URL,
		Problems:     4,
		Tasks:        10,
		Seed:         3,
		Zipf:         1.2,
		Workers:      2,
		Duration:     300 * time.Millisecond,
		Register:     false, // campaign mode carries inline specs; no registration needed
		CampaignRuns: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors=%d, want 0", rep.Errors)
	}
	if rep.Requests == 0 || rep.Items != 8*rep.Requests {
		t.Errorf("items=%d for %d campaign requests, want x8", rep.Items, rep.Requests)
	}
}
