package impacct_test

import (
	"errors"
	"strings"
	"testing"

	"repro"
	"repro/internal/schedule"
)

func sensorProblem() *impacct.Problem {
	p := &impacct.Problem{
		Name:      "sensor-node",
		Pmax:      10,
		Pmin:      6,
		BasePower: 1,
	}
	p.AddTask(impacct.Task{Name: "sample", Resource: "sensor", Delay: 4, Power: 3})
	p.AddTask(impacct.Task{Name: "filter", Resource: "cpu", Delay: 6, Power: 2})
	p.AddTask(impacct.Task{Name: "tx", Resource: "radio", Delay: 3, Power: 7})
	p.Window("sample", "tx", 2, 20)
	return p
}

func TestFacadeRunPipeline(t *testing.T) {
	p := sensorProblem()
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Peak() > p.Pmax {
		t.Errorf("peak %.1f exceeds Pmax", r.Peak())
	}
	if r.Finish() <= 0 {
		t.Error("empty schedule")
	}
	if u := r.Utilization(); u < 0 || u > 1 {
		t.Errorf("utilization out of range: %g", u)
	}
}

func TestFacadeStages(t *testing.T) {
	p := sensorProblem()
	rt, err := impacct.Timing(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := impacct.MaxPower(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := impacct.MinPower(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Peak() > p.Pmax || rf.Peak() > p.Pmax {
		t.Error("power stages left spikes")
	}
	if rt.Finish() > rm.Finish() || rm.Finish() > rf.Finish()+1000 {
		t.Error("stage finish times implausible")
	}
}

func TestFacadeInfeasible(t *testing.T) {
	p := sensorProblem()
	p.MinSep("sample", "tx", 30) // contradicts the [2,20] window
	_, err := impacct.Run(p, impacct.Options{})
	if !errors.Is(err, impacct.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestFacadeSpecRoundTrip(t *testing.T) {
	p := sensorProblem()
	text := impacct.FormatSpec(p)
	q, err := impacct.ParseSpecString(text)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || len(q.Tasks) != len(p.Tasks) {
		t.Fatal("spec round-trip lost data")
	}
}

func TestFacadeSpecReader(t *testing.T) {
	p, err := impacct.ParseSpec(strings.NewReader("task a R 2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 1 {
		t.Fatal("reader parse failed")
	}
}

func TestFacadeChart(t *testing.T) {
	p := sensorProblem()
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := impacct.NewChart(p, r.Schedule)
	if !strings.Contains(c.ASCII(1), "sensor-node") {
		t.Error("ASCII chart missing title")
	}
	if !strings.Contains(c.SVG(), "<svg") {
		t.Error("SVG chart malformed")
	}
}

func TestFacadeLibrary(t *testing.T) {
	p := sensorProblem()
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sel impacct.Selector
	sel.Add(impacct.NewLibraryEntry("sensor", p, r.Schedule))
	if _, ok := sel.Select(p.Pmax, p.Pmin); !ok {
		t.Fatal("library rejected its own schedule at the problem's budget")
	}
}

func TestFacadeSweepAndPareto(t *testing.T) {
	p := sensorProblem()
	pts := impacct.SweepPmax(p, []float64{8, 10, 14}, impacct.Options{})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	front := impacct.Pareto(pts)
	if len(front) == 0 {
		t.Fatal("empty pareto front from feasible sweep")
	}
}

func TestFacadeGenerate(t *testing.T) {
	p := impacct.GenerateProblem(impacct.GenConfig{Tasks: 10, Seed: 1})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := impacct.Run(p, impacct.Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestSatPassEndToEnd schedules the second shipped case study — a LEO
// ground-station pass with a hard contact window — and checks the
// domain facts: the downlink happens inside the window, the power
// amplifier is warm, and the whole pass runs on free solar power.
func TestSatPassEndToEnd(t *testing.T) {
	p, err := impacct.ParseSpecFile("testdata/satpass.spec")
	if err != nil {
		t.Fatal(err)
	}
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := impacct.Verify(p, r.Schedule); !rep.OK() {
		t.Fatal(rep.Err())
	}
	idx := p.TaskIndex()
	dl := r.Schedule.Start[idx["downlink"]]
	if dl < 120 || dl > 210 {
		t.Errorf("downlink starts at %d, want inside [120,210]", dl)
	}
	if sep := dl - r.Schedule.Start[idx["pa-heat"]]; sep < 20 || sep > 120 {
		t.Errorf("PA heated %d s before TX, want 20..120", sep)
	}
	if cost := r.EnergyCost(); cost != 0 {
		t.Errorf("pass drew %.1f J from the battery; solar should cover it", cost)
	}
	if r.Peak() > p.Pmax {
		t.Errorf("peak %.1f over budget", r.Peak())
	}
}

// TestSpecFileEndToEnd drives the shipped example spec through the
// whole stack: parse, schedule, validate, render.
func TestSpecFileEndToEnd(t *testing.T) {
	p, err := impacct.ParseSpecFile("testdata/example9.spec")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "nine-task-example" || len(p.Tasks) != 9 {
		t.Fatalf("unexpected spec contents: %s, %d tasks", p.Name, len(p.Tasks))
	}
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.CheckTimeValid(r.Graph, r.Compiled, r.Schedule); err != nil {
		t.Fatal(err)
	}
	if r.Peak() > p.Pmax {
		t.Errorf("peak %.1f over budget", r.Peak())
	}
	out := impacct.NewChart(p, r.Schedule).ASCII(1)
	for _, res := range []string{"A", "B", "C"} {
		if !strings.Contains(out, res) {
			t.Errorf("chart missing resource %s", res)
		}
	}
}
